/**
 * @file
 * Adaptive associativity — a working prototype of the paper's
 * future-work idea (Section VIII): "the zcache makes it trivial to
 * increase or reduce associativity with the same hardware design ...
 * adaptive replacement schemes that use the high associativity only
 * when it improves performance, saving cache bandwidth and energy."
 *
 * A small controller samples the miss rate every epoch and moves the
 * walk's early-stop cap up when extra candidates are paying for
 * themselves, down when they are not (set-dueling-style comparison of
 * consecutive epochs). The demo runs a phase-changing workload —
 * cache-friendly, then thrashy, then friendly again — and shows the cap
 * tracking the phases, with walk-bandwidth savings versus an
 * always-max-R zcache at nearly the same miss rate.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "cache/cache_model.hpp"
#include "cache/z_array.hpp"
#include "replacement/bucketed_lru.hpp"
#include "trace/generator.hpp"

using namespace zc;

namespace {

/** Hill-climbing cap controller: probe up/down, keep what helps. */
class AdaptiveController
{
  public:
    AdaptiveController(ZArray& array, std::uint32_t min_cap,
                       std::uint32_t max_cap)
        : array_(array), minCap_(min_cap), maxCap_(max_cap), cap_(max_cap)
    {
        array_.setMaxCandidates(cap_);
    }

    void
    onEpochEnd(double miss_rate)
    {
        // If misses changed materially since the last epoch, credit or
        // blame the last cap move and continue/revert; otherwise prefer
        // the cheaper (smaller) cap.
        if (lastMissRate_ >= 0.0) {
            double delta = miss_rate - lastMissRate_;
            if (delta > 0.002) {
                // Got worse: move opposite to the last adjustment.
                direction_ = -direction_;
            } else if (delta > -0.002) {
                // Flat: drift down to save bandwidth.
                direction_ = -1;
            }
            std::int64_t next = static_cast<std::int64_t>(cap_) +
                                direction_ * static_cast<std::int64_t>(step_);
            cap_ = static_cast<std::uint32_t>(std::min<std::int64_t>(
                maxCap_, std::max<std::int64_t>(minCap_, next)));
            array_.setMaxCandidates(cap_);
        }
        lastMissRate_ = miss_rate;
    }

    std::uint32_t cap() const { return cap_; }

  private:
    ZArray& array_;
    std::uint32_t minCap_, maxCap_, cap_;
    std::uint32_t step_ = 8;
    int direction_ = -1;
    double lastMissRate_ = -1.0;
};

/** Three-phase workload: friendly -> thrashing -> friendly. */
class PhasedWorkload
{
  public:
    explicit PhasedWorkload(std::uint32_t cache_blocks)
        : friendly_(0, cache_blocks / 2, 1.1, 7),
          thrash_(1 << 22, cache_blocks * 6, 0.4, 8)
    {
    }

    Addr
    next(std::uint64_t i, std::uint64_t total)
    {
        bool thrash = i > total / 3 && i < 2 * total / 3;
        return (thrash ? thrash_ : friendly_).next().lineAddr;
    }

  private:
    ZipfGenerator friendly_;
    ZipfGenerator thrash_;
};

struct RunOut
{
    double miss_rate;
    std::uint64_t walk_tag_reads;
};

RunOut
run(bool adaptive, std::uint32_t blocks, std::uint64_t total)
{
    ZArrayConfig cfg;
    cfg.ways = 4;
    cfg.levels = 3; // up to 52 candidates
    auto array = std::make_unique<ZArray>(
        blocks, cfg, std::make_unique<BucketedLruPolicy>(blocks));
    ZArray& z = *array;
    CacheModel m(std::move(array));

    AdaptiveController ctl(z, /*min_cap=*/4, /*max_cap=*/52);
    PhasedWorkload wl(blocks);

    const std::uint64_t epoch = 50000;
    std::uint64_t epoch_start_misses = 0;
    if (adaptive) std::printf("%10s %8s %10s\n", "access", "cap", "missrate");

    for (std::uint64_t i = 0; i < total; i++) {
        m.access(wl.next(i, total));
        if (adaptive && (i + 1) % epoch == 0) {
            double mr = static_cast<double>(m.stats().misses -
                                            epoch_start_misses) /
                        static_cast<double>(epoch);
            epoch_start_misses = m.stats().misses;
            ctl.onEpochEnd(mr);
            if ((i + 1) % (epoch * 8) == 0) {
                std::printf("%10llu %8u %10.4f\n",
                            static_cast<unsigned long long>(i + 1),
                            ctl.cap(), mr);
            }
        }
    }
    return {m.stats().missRate(), z.stats().tagReads};
}

} // namespace

int
main()
{
    constexpr std::uint32_t kBlocks = 16384;
    constexpr std::uint64_t kTotal = 2400000;

    std::printf("=== adaptive cap (phase-changing workload) ===\n");
    RunOut adaptive = run(true, kBlocks, kTotal);
    std::printf("\n=== fixed Z4/52 (always max associativity) ===\n");
    RunOut fixed = run(false, kBlocks, kTotal);

    std::printf("\n%-22s %10s %16s\n", "", "missrate", "L2 tag reads");
    std::printf("%-22s %10.4f %16llu\n", "adaptive cap",
                adaptive.miss_rate,
                static_cast<unsigned long long>(adaptive.walk_tag_reads));
    std::printf("%-22s %10.4f %16llu\n", "fixed Z4/52", fixed.miss_rate,
                static_cast<unsigned long long>(fixed.walk_tag_reads));
    std::printf("\ntag-bandwidth saved: %.1f%% at %+.2f%% miss-rate "
                "delta\n",
                100.0 * (1.0 - static_cast<double>(adaptive.walk_tag_reads) /
                                   static_cast<double>(fixed.walk_tag_reads)),
                100.0 * (adaptive.miss_rate - fixed.miss_rate) /
                    fixed.miss_rate);
    return 0;
}
