/**
 * @file
 * Highly-associative TLBs — the paper's first named future-work target
 * (Section VIII: "using zcaches to build highly associative first-level
 * caches and TLBs for multithreaded cores").
 *
 * Simulates a 64-entry data TLB (4 KB pages) over the suite's data
 * streams: a 4-way set-associative TLB against a 4-way zcache TLB with
 * a two-level walk and the Bloom repeat filter (which matters in small
 * arrays — Section III-D). Reports miss rates and the page-walk CPI
 * overhead at a fixed walk cost.
 *
 *   $ ./tlb_simulation [--workload=mcf] [--entries=64]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "trace/workloads.hpp"

using namespace zc;

namespace {

std::string
argOr(int argc, char** argv, const char* key, const char* fallback)
{
    std::string prefix = std::string("--") + key + "=";
    for (int i = 1; i < argc; i++) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return argv[i] + prefix.size();
        }
    }
    return fallback;
}

struct TlbResult
{
    double missRate;
    double walkCpi; ///< page-walk stall cycles per instruction
};

TlbResult
runTlb(const ArraySpec& spec, const std::string& workload,
       std::uint64_t accesses)
{
    constexpr std::uint32_t kPageWalkCycles = 30; // two-level walk, hot
    constexpr std::uint32_t kLinesPerPage = 4096 / 64;

    CacheModel tlb(makeArray(spec));
    const WorkloadProfile& w = WorkloadRegistry::byName(workload);
    auto gen = WorkloadRegistry::makeCoreGenerator(w, 0, 32, 1);

    std::uint64_t instructions = 0, walk_cycles = 0;
    for (std::uint64_t i = 0; i < accesses; i++) {
        MemRecord r = gen->next();
        instructions += r.instGap + 1;
        Addr vpn = r.lineAddr / kLinesPerPage;
        if (!tlb.access(vpn)) walk_cycles += kPageWalkCycles;
    }
    return {tlb.stats().missRate(),
            static_cast<double>(walk_cycles) /
                static_cast<double>(instructions)};
}

} // namespace

int
main(int argc, char** argv)
{
    auto entries = static_cast<std::uint32_t>(
        std::atoi(argOr(argc, argv, "entries", "64").c_str()));
    auto accesses = static_cast<std::uint64_t>(
        std::atoll(argOr(argc, argv, "accesses", "400000").c_str()));

    ArraySpec sa;
    sa.kind = ArrayKind::SetAssoc;
    sa.blocks = entries;
    sa.ways = 4;
    sa.hashKind = HashKind::H3;
    sa.policy = PolicyKind::Lru;

    ArraySpec z = sa;
    z.kind = ArrayKind::ZCache;
    z.levels = 2;
    z.bloomRepeatFilter = true; // repeats are common in small arrays

    ArraySpec fa = sa;
    fa.kind = ArrayKind::FullyAssoc;

    std::printf("%u-entry data TLB, 4 KB pages (Section VIII use case)\n\n",
                entries);
    std::printf("%-14s | %9s %9s | %9s %9s | %9s %9s\n", "workload",
                "SA4 miss", "walkCPI", "Z4/16 miss", "walkCPI", "FA miss",
                "walkCPI");
    for (const char* wl :
         {"gcc", "mcf", "omnetpp", "xalancbmk", "milc", "gamess",
          "sphinx3", "canneal"}) {
        TlbResult rs = runTlb(sa, wl, accesses);
        TlbResult rz = runTlb(z, wl, accesses);
        TlbResult rf = runTlb(fa, wl, accesses);
        std::printf("%-14s | %9.4f %9.4f | %9.4f %9.4f | %9.4f %9.4f\n",
                    wl, rs.missRate, rs.walkCpi, rz.missRate, rz.walkCpi,
                    rf.missRate, rf.walkCpi);
    }
    std::printf("\nExpected shape: Z4/16 closes most of the gap between a "
                "4-way TLB and the fully-associative ideal while keeping "
                "4-way lookup cost.\n");
    return 0;
}
