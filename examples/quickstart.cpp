/**
 * @file
 * Quickstart — the zcache library in ~60 lines.
 *
 * Builds a 1 MB, 4-way zcache with a two-level walk (Z4/16: 16
 * replacement candidates per eviction), drives it with a Zipfian
 * reference stream, and prints hit/miss statistics alongside a 4-way
 * set-associative cache of identical capacity.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "trace/generator.hpp"

int
main()
{
    using namespace zc;

    constexpr std::uint32_t kBlocks = 16384; // 1 MB of 64 B lines

    // A cache = array organization + replacement policy. ArraySpec is
    // the one-stop configuration record; makeArray() builds the design.
    ArraySpec zspec;
    zspec.kind = ArrayKind::ZCache;
    zspec.blocks = kBlocks;
    zspec.ways = 4;           // hit cost of a 4-way cache...
    zspec.levels = 2;         // ...but 16 replacement candidates
    zspec.policy = PolicyKind::BucketedLru;
    CacheModel zcache(makeArray(zspec));

    ArraySpec sspec = zspec;
    sspec.kind = ArrayKind::SetAssoc;
    sspec.hashKind = HashKind::H3; // hashed index (strong baseline)
    CacheModel setassoc(makeArray(sspec));

    // A skewed working set 6x the cache size — capacity + conflict
    // pressure where associativity pays off.
    ZipfGenerator gen_a(0, kBlocks * 6, 0.9, /*seed=*/42);
    ZipfGenerator gen_b(0, kBlocks * 6, 0.9, /*seed=*/42);

    for (int i = 0; i < 3000000; i++) {
        zcache.access(gen_a.next().lineAddr);
        setassoc.access(gen_b.next().lineAddr);
    }

    std::printf("%s\n  accesses %llu, miss rate %.4f\n",
                zcache.name().c_str(),
                static_cast<unsigned long long>(zcache.stats().accesses),
                zcache.stats().missRate());
    std::printf("%s\n  accesses %llu, miss rate %.4f\n",
                setassoc.name().c_str(),
                static_cast<unsigned long long>(setassoc.stats().accesses),
                setassoc.stats().missRate());
    std::printf("\nSame hit path width (4 ways), %.1f%% fewer misses from "
                "the walk's extra candidates.\n",
                100.0 * (1.0 - zcache.stats().missRate() /
                                   setassoc.stats().missRate()));
    return 0;
}
