/**
 * @file
 * Associativity study — the Section IV framework as a user-facing tool.
 *
 * Measures the associativity distribution (eviction-priority CDF) of a
 * chosen cache design on a chosen workload from the suite, and compares
 * it with the analytic uniformity curve F_A(x) = x^R. This is how you
 * would evaluate a new array organization with the library.
 *
 *   $ ./associativity_study --design=z4/16 --workload=canneal
 *   $ ./associativity_study --design=sa32 --workload=wupwise
 *
 * Designs: saN (bit-select), saN-h3, skewN, z4/16, z4/52, rcN (random
 * candidates).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "assoc/eviction_tracker.hpp"
#include "assoc/uniformity.hpp"
#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "common/stats.hpp"
#include "trace/workloads.hpp"

using namespace zc;

namespace {

std::string
argOr(int argc, char** argv, const char* key, const char* fallback)
{
    std::string prefix = std::string("--") + key + "=";
    for (int i = 1; i < argc; i++) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return argv[i] + prefix.size();
        }
    }
    return fallback;
}

/** Parse a design name into an ArraySpec + nominal candidate count. */
bool
parseDesign(const std::string& name, std::uint32_t blocks, ArraySpec* spec,
            std::uint32_t* candidates)
{
    spec->blocks = blocks;
    spec->policy = PolicyKind::Lru;
    if (name == "z4/16" || name == "z4/52") {
        spec->kind = ArrayKind::ZCache;
        spec->ways = 4;
        spec->levels = name == "z4/16" ? 2 : 3;
        *candidates = ZArray::nominalCandidates(4, spec->levels);
        return true;
    }
    if (name.rfind("skew", 0) == 0) {
        spec->kind = ArrayKind::SkewAssoc;
        spec->ways = static_cast<std::uint32_t>(std::atoi(name.c_str() + 4));
        *candidates = spec->ways;
        return spec->ways >= 2;
    }
    if (name.rfind("rc", 0) == 0) {
        spec->kind = ArrayKind::RandomCandidates;
        spec->candidates =
            static_cast<std::uint32_t>(std::atoi(name.c_str() + 2));
        *candidates = spec->candidates;
        return spec->candidates >= 1;
    }
    if (name.rfind("sa", 0) == 0) {
        spec->kind = ArrayKind::SetAssoc;
        bool hashed = name.size() > 3 && name.substr(name.size() - 3) == "-h3";
        std::string ways = name.substr(2, name.size() - 2 - (hashed ? 3 : 0));
        spec->ways = static_cast<std::uint32_t>(std::atoi(ways.c_str()));
        spec->hashKind = hashed ? HashKind::H3 : HashKind::BitSelect;
        *candidates = spec->ways;
        return spec->ways >= 1;
    }
    return false;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string design = argOr(argc, argv, "design", "z4/16");
    std::string workload = argOr(argc, argv, "workload", "canneal");
    auto blocks = static_cast<std::uint32_t>(
        std::atoll(argOr(argc, argv, "blocks", "32768").c_str()));
    auto accesses = static_cast<std::uint64_t>(
        std::atoll(argOr(argc, argv, "accesses", "2000000").c_str()));

    ArraySpec spec;
    std::uint32_t candidates = 0;
    if (!parseDesign(design, blocks, &spec, &candidates)) {
        std::fprintf(stderr,
                     "unknown design '%s' (try z4/16, z4/52, sa4, sa16-h3, "
                     "skew4, rc16)\n",
                     design.c_str());
        return 1;
    }

    CacheModel model(makeArray(spec));
    EvictionPriorityTracker tracker(100, /*sample_period=*/8);
    tracker.attach(model.array());

    // Feed the merged 32-thread reference stream of the named workload.
    constexpr std::uint32_t kCores = 32;
    const WorkloadProfile& w = WorkloadRegistry::byName(workload);
    std::vector<GeneratorPtr> gens;
    for (std::uint32_t c = 0; c < kCores; c++) {
        gens.push_back(WorkloadRegistry::makeCoreGenerator(w, c, kCores, 1));
    }
    for (std::uint64_t i = 0; i < accesses; i++) {
        model.access(gens[i % kCores]->next().lineAddr);
    }

    std::printf("design   : %s\n", model.name().c_str());
    std::printf("workload : %s (%llu merged references)\n", workload.c_str(),
                static_cast<unsigned long long>(accesses));
    std::printf("miss rate: %.4f   evictions sampled: %llu\n",
                model.stats().missRate(),
                static_cast<unsigned long long>(tracker.samples()));

    auto cdf = tracker.cdf();
    auto ideal = uniformityCdf(candidates, 100);
    std::printf("\n%8s %14s %14s\n", "e", "P(E<=e)", "uniformity x^R");
    for (int bin : {9, 19, 29, 39, 49, 59, 69, 79, 89, 94, 99}) {
        std::printf("%8.2f %14.6f %14.6f\n", (bin + 1) / 100.0, cdf[bin],
                    ideal[bin]);
    }
    std::printf("\nmean eviction priority: %.4f (uniformity: %.4f)\n",
                tracker.histogram().mean(), uniformityMean(candidates));
    std::printf("KS distance to x^%u: %.4f\n", candidates,
                ksDistance(cdf, ideal));
    return 0;
}
