/**
 * @file
 * Pinned-block buffering — the paper's Section I motivation, measured.
 *
 * Schemes like transactional memory, thread-level speculation and
 * deterministic replay pin blocks in the cache; when a replacement
 * finds every candidate pinned, the scheme takes its expensive
 * fall-back (e.g. transaction abort). This example sweeps the pinned
 * fraction and compares how often each organization is forced to
 * surrender a pin: under the uniformity model the rate is ~f^R per
 * fill, so a Z4/52 sustains pinned fractions that wreck a 4-way
 * set-associative cache — at identical hit cost.
 *
 *   $ ./pinned_buffering
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "cache/array_factory.hpp"
#include "common/rng.hpp"
#include "replacement/lru.hpp"
#include "replacement/pinning.hpp"

using namespace zc;

namespace {

struct Design
{
    const char* label;
    ArrayKind kind;
    std::uint32_t ways;
    std::uint32_t levels;
};

double
forcedRate(const Design& d, double pin_frac, std::uint32_t blocks,
           int fills)
{
    auto pinning =
        std::make_unique<PinningPolicy>(std::make_unique<LruPolicy>(blocks));
    PinningPolicy* policy = pinning.get();

    // Build the array around the externally-held pinning policy.
    std::unique_ptr<CacheArray> array;
    if (d.kind == ArrayKind::SetAssoc) {
        array = std::make_unique<SetAssociativeArray>(
            blocks, d.ways, std::move(pinning),
            makeHash(HashKind::H3, blocks / d.ways, 7));
    } else {
        ZArrayConfig cfg;
        cfg.ways = d.ways;
        cfg.levels = d.levels;
        array = std::make_unique<ZArray>(blocks, cfg, std::move(pinning));
    }

    AccessContext c;
    Pcg32 rng(11);
    while (array->validCount() < blocks) {
        Addr a = rng.next64();
        if (array->probe(a) == kInvalidPos) array->insert(a, c);
    }
    array->forEachValid([&](BlockPos pos, Addr) {
        if (rng.uniform() < pin_frac) policy->pin(pos);
    });

    int done = 0;
    while (done < fills) {
        Addr a = rng.next64();
        if (array->probe(a) != kInvalidPos) continue;
        array->insert(a, c);
        done++;
        // Keep pressure constant: re-pin to the target fraction.
        if (policy->pinnedCount() <
            static_cast<std::uint32_t>(pin_frac * blocks)) {
            BlockPos p = rng.below(blocks);
            if (array->addrAt(p) != kInvalidAddr) policy->pin(p);
        }
    }
    return static_cast<double>(policy->forcedEvictions()) / fills;
}

} // namespace

int
main()
{
    constexpr std::uint32_t kBlocks = 4096;
    constexpr int kFills = 20000;

    const std::vector<Design> designs{
        {"SA-4+H3", ArrayKind::SetAssoc, 4, 0},
        {"SA-16+H3", ArrayKind::SetAssoc, 16, 0},
        {"Z4/16", ArrayKind::ZCache, 4, 2},
        {"Z4/52", ArrayKind::ZCache, 4, 3},
    };

    std::printf("Forced pin surrenders per fill (fall-back events for a "
                "TM-style scheme), %u-block cache:\n\n", kBlocks);
    std::printf("%10s", "pinned");
    for (const auto& d : designs) std::printf(" %12s", d.label);
    std::printf("\n");
    for (double f : {0.2, 0.4, 0.6, 0.8, 0.9}) {
        std::printf("%9.0f%%", 100 * f);
        for (const auto& d : designs) {
            std::printf(" %12.2e", forcedRate(d, f, kBlocks, kFills));
        }
        std::printf("\n");
    }
    std::printf("\nUniformity model predicts ~f^R per fill: a Z4/52 keeps "
                "buffering where 4- and 16-way caches abort constantly.\n");
    return 0;
}
