/**
 * @file
 * Stats export — the observability stack end to end.
 *
 * Runs one small experiment with the epoch sampler and the walk-event
 * trace enabled, then shows the three ways to consume the telemetry:
 *
 *   1. the hierarchical stats tree (RunResult::stats), printed as
 *      pretty JSON and optionally written to a file;
 *   2. the epoch time series (RunResult::epochs) as a plottable table;
 *   3. the per-bank walk-trace summary, read back out of the tree.
 *
 *   $ ./stats_export [out.json]
 *
 * See docs/observability.md for the schema.
 */

#include <cstdio>
#include <fstream>

#include "sim/experiment.hpp"

int
main(int argc, char** argv)
{
    using namespace zc;

    RunParams p;
    p.workload = "canneal";
    p.l2Spec.kind = ArrayKind::ZCache;
    p.l2Spec.ways = 4;
    p.l2Spec.levels = 3; // Z4/52
    p.l2Spec.policy = PolicyKind::BucketedLru;
    p.warmupInstr = 20000;
    p.measureInstr = 40000;
    p.epochInstr = 0;         // auto: ~8 samples over the run
    p.walkTraceCapacity = 64; // keep the last 64 walk events per bank

    RunResult r = runExperiment(p);

    // 1. The full stats tree. Every component registered its counters
    //    into one registry; the dump is deterministic and diffable.
    std::printf("== stats tree (top level) ==\n");
    for (const auto& [key, value] : r.stats.obj()) {
        std::printf("  %-8s %zu entries\n", key.c_str(), value.size());
    }
    if (argc > 1) {
        std::ofstream out(argv[1]);
        out << r.stats.str(2) << "\n";
        std::printf("wrote %s\n", argv[1]);
    }

    // 2. The epoch series: counters sampled every N instructions.
    std::printf("\n== epoch series (%zu samples) ==\n", r.epochs.size());
    std::printf("%14s %14s %10s %10s %8s\n", "instructions", "cycles",
                "l2-misses", "missrate", "avg-R");
    for (const EpochSample& e : r.epochs) {
        std::printf("%14llu %14llu %10llu %10.4f %8.2f\n",
                    static_cast<unsigned long long>(e.instructions),
                    static_cast<unsigned long long>(e.cycles),
                    static_cast<unsigned long long>(e.l2Misses),
                    e.missRate(), e.avgWalkCandidates());
    }

    // 3. Walk-trace summary of bank 0, read back out of the tree the
    //    way an analysis script would.
    const JsonValue* sys = r.stats.find("system");
    const JsonValue* l2 = sys ? sys->find("l2") : nullptr;
    const JsonValue* bank0 = l2 ? l2->find("bank0") : nullptr;
    const JsonValue* trace = bank0 ? bank0->find("walk_trace") : nullptr;
    if (trace) {
        std::printf("\n== bank 0 walk trace ==\n");
        for (const auto& [key, value] : trace->obj()) {
            if (key == "ring") {
                std::printf("  %-22s %zu retained events\n", key.c_str(),
                            value.size());
            } else {
                std::printf("  %-22s %s\n", key.c_str(),
                            value.str().c_str());
            }
        }
    }
    return 0;
}
