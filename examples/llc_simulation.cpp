/**
 * @file
 * Full-system LLC simulation — the paper's Table I CMP end to end.
 *
 * Runs a named workload on the 32-core simulator with a chosen L2
 * organization and prints performance, miss, coherence, bandwidth and
 * energy figures — the raw material of Fig. 4/5 for a single cell.
 *
 *   $ ./llc_simulation --workload=cactusADM --design=z4/52
 *   $ ./llc_simulation --workload=gamess --design=sa32 --parallel
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/experiment.hpp"
#include "trace/workloads.hpp"

using namespace zc;

namespace {

std::string
argOr(int argc, char** argv, const char* key, const char* fallback)
{
    std::string prefix = std::string("--") + key + "=";
    for (int i = 1; i < argc; i++) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return argv[i] + prefix.size();
        }
    }
    return fallback;
}

bool
hasFlag(int argc, char** argv, const char* key)
{
    std::string bare = std::string("--") + key;
    for (int i = 1; i < argc; i++) {
        if (bare == argv[i]) return true;
    }
    return false;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string workload = argOr(argc, argv, "workload", "cactusADM");
    std::string design = argOr(argc, argv, "design", "z4/52");
    std::string policy = argOr(argc, argv, "policy", "lru");

    RunParams p;
    p.workload = workload;
    p.serialLookup = !hasFlag(argc, argv, "parallel");
    p.warmupInstr = static_cast<std::uint64_t>(
        std::atoll(argOr(argc, argv, "warmup", "150000").c_str()));
    p.measureInstr = static_cast<std::uint64_t>(
        std::atoll(argOr(argc, argv, "instr", "150000").c_str()));

    if (design == "z4/16" || design == "z4/52" || design == "z4/4") {
        p.l2Spec.kind = design == "z4/4" ? ArrayKind::SkewAssoc
                                         : ArrayKind::ZCache;
        p.l2Spec.ways = 4;
        p.l2Spec.levels = design == "z4/52" ? 3 : 2;
    } else if (design.rfind("sa", 0) == 0) {
        p.l2Spec.kind = ArrayKind::SetAssoc;
        p.l2Spec.ways =
            static_cast<std::uint32_t>(std::atoi(design.c_str() + 2));
        p.l2Spec.hashKind = HashKind::H3;
    } else {
        std::fprintf(stderr, "unknown design '%s'\n", design.c_str());
        return 1;
    }
    p.l2Spec.policy =
        policy == "opt" ? PolicyKind::Opt : PolicyKind::BucketedLru;

    std::printf("simulating %s on the Table I CMP, L2 = %s, policy = %s, "
                "%s lookup...\n",
                workload.c_str(), design.c_str(), policy.c_str(),
                p.serialLookup ? "serial" : "parallel");
    RunResult r = runExperiment(p);

    std::printf("\n-- performance --\n");
    std::printf("instructions        %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("cycles (max core)   %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("aggregate IPC       %.3f (of %u cores)\n", r.ipc, 32u);
    std::printf("L2 MPKI             %.3f\n", r.mpki);
    std::printf("L2 accesses/misses  %llu / %llu\n",
                static_cast<unsigned long long>(r.l2Accesses),
                static_cast<unsigned long long>(r.l2Misses));
    std::printf("L2 bank latency     %u cycles\n", r.bankLatencyCycles);
    if (r.avgWalkCandidates > 0) {
        std::printf("walk candidates     %.2f avg (%.2f relocations)\n",
                    r.avgWalkCandidates, r.avgRelocations);
    }

    std::printf("\n-- bandwidth (Section VI-D) --\n");
    std::printf("demand load         %.4f accesses/bank-cycle\n",
                r.loadPerBankCycle);
    std::printf("tag-array load      %.4f accesses/bank-cycle\n",
                r.tagPerBankCycle);
    std::printf("misses              %.4f /bank-cycle\n",
                r.missPerBankCycle);

    std::printf("\n-- energy --\n");
    std::printf("total               %.4f J\n", r.totalJoules);
    std::printf("  core %.4f | L1 %.4f | L2 %.4f | NoC %.4f | DRAM %.4f "
                "| static %.4f\n",
                r.energy.coreJ, r.energy.l1J, r.energy.l2J, r.energy.nocJ,
                r.energy.dramJ, r.energy.staticJ);
    std::printf("efficiency          %.3f BIPS/W\n", r.bipsPerWatt);
    return 0;
}
