/**
 * @file
 * zkv store tests (docs/store.md): single-thread shard semantics
 * (get/put/erase, eviction picks the relocation walk's victim),
 * deterministic stats for a fixed seed, structured-error fault
 * injection at store.alloc / store.walk, and concurrent
 * read-your-writes under >= 4 threads over >= 2 shards (the target of
 * the CI ThreadSanitizer job).
 */

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "store/loadgen.hpp"
#include "store/zkv.hpp"

namespace zc {
namespace {

/** Small single-shard zcache store: evicts early, walk-heavy. */
ZkvConfig
tinyConfig(std::uint32_t shards = 1, std::uint32_t blocks = 64)
{
    ZkvConfig cfg;
    cfg.shards = shards;
    cfg.array.kind = ArrayKind::ZCache;
    cfg.array.blocks = blocks;
    cfg.array.ways = 4;
    cfg.array.levels = 2;
    cfg.array.policy = PolicyKind::Lru;
    cfg.array.seed = 0xbeef;
    return cfg;
}

std::unique_ptr<ZkvStore>
mustCreate(const ZkvConfig& cfg)
{
    auto store = ZkvStore::create(cfg);
    EXPECT_TRUE(store.hasValue()) << store.status().str();
    return std::move(*store);
}

// ---------------------------------------------------------------------
// Single-thread shard semantics.

TEST(ZkvStore, GetPutEraseRoundTrip)
{
    auto kv = mustCreate(tinyConfig());

    EXPECT_EQ(kv->get(10), std::nullopt);

    auto put = kv->put(10, 111);
    ASSERT_TRUE(put.hasValue());
    EXPECT_TRUE(put->inserted);
    EXPECT_FALSE(put->evicted);
    EXPECT_EQ(kv->get(10), std::optional<std::uint64_t>(111));
    EXPECT_EQ(kv->size(), 1u);

    // Update in place: no insert, value replaced.
    put = kv->put(10, 222);
    ASSERT_TRUE(put.hasValue());
    EXPECT_FALSE(put->inserted);
    EXPECT_EQ(kv->get(10), std::optional<std::uint64_t>(222));
    EXPECT_EQ(kv->size(), 1u);

    EXPECT_TRUE(kv->erase(10));
    EXPECT_EQ(kv->get(10), std::nullopt);
    EXPECT_FALSE(kv->erase(10));
    EXPECT_EQ(kv->size(), 0u);
}

TEST(ZkvStore, ReservedKeyRejectedStructurally)
{
    auto kv = mustCreate(tinyConfig());
    auto put = kv->put(ZkvStore::kReservedKey, 1);
    ASSERT_FALSE(put.hasValue());
    EXPECT_EQ(put.status().code(), ErrorCode::InvalidArgument);
}

TEST(ZkvStore, InvalidConfigRejected)
{
    ZkvConfig cfg = tinyConfig();
    cfg.shards = 0;
    auto store = ZkvStore::create(cfg);
    ASSERT_FALSE(store.hasValue());
    EXPECT_EQ(store.status().code(), ErrorCode::InvalidArgument);

    cfg = tinyConfig();
    cfg.array.blocks = 60; // blocks/ways not a power of two
    store = ZkvStore::create(cfg);
    ASSERT_FALSE(store.hasValue());
    EXPECT_EQ(store.status().code(), ErrorCode::InvalidArgument);
}

TEST(ZkvStore, ShardSelectionCoversAllShards)
{
    auto kv = mustCreate(tinyConfig(/*shards=*/4));
    std::vector<std::uint64_t> hits(4, 0);
    for (std::uint64_t k = 0; k < 4000; k++) {
        std::uint32_t s = kv->shardOf(k);
        ASSERT_LT(s, 4u);
        hits[s]++;
    }
    for (std::uint64_t h : hits) {
        EXPECT_GT(h, 700u); // ~1000 each; splitmix64 spreads uniformly
    }
}

/**
 * Eviction picks the walk victim: a shard must report exactly the
 * eviction sequence a bare factory-built array with the shard's spec
 * produces under the identical access/insert sequence — the value
 * mirror may not perturb the walk.
 */
TEST(ZkvStore, EvictionPicksTheWalkVictim)
{
    ZkvConfig cfg = tinyConfig(/*shards=*/1, /*blocks=*/64);
    auto kv = mustCreate(cfg);

    // Reference: the same array + policy the shard builds (shardSpec
    // exposes the derived per-shard seed).
    auto bare = makeArray(cfg.shardSpec(0));

    std::vector<std::uint64_t> store_evicted;
    std::vector<std::uint64_t> bare_evicted;
    Pcg32 rng(99);
    for (int i = 0; i < 2000; i++) {
        std::uint64_t key = rng.next64() % 256;
        if (rng.uniform() < 0.5) {
            // put: access (hit => update) else insert.
            auto pr = kv->put(key, key * 3);
            ASSERT_TRUE(pr.hasValue());
            if (pr->evicted) store_evicted.push_back(pr->evictedKey);

            AccessContext ctx{key, kNoNextUse};
            if (bare->access(key, ctx) == kInvalidPos) {
                Replacement r = bare->insert(key, ctx);
                if (r.evictedValid()) {
                    bare_evicted.push_back(r.evictedAddr);
                }
            }
        } else {
            (void)kv->get(key);
            AccessContext ctx{key, kNoNextUse};
            (void)bare->access(key, ctx);
        }
    }
    ASSERT_GT(store_evicted.size(), 100u); // footprint 4x capacity
    EXPECT_EQ(store_evicted, bare_evicted);
}

TEST(ZkvStore, EvictedValueTravelsWithTheKey)
{
    auto kv = mustCreate(tinyConfig(/*shards=*/1, /*blocks=*/16));
    // Value = key * 7 + 1: when an insert displaces a resident key,
    // the reported pair must still match — values must have followed
    // their blocks through every walk relocation.
    Pcg32 rng(3);
    std::uint64_t evictions = 0;
    for (int i = 0; i < 3000; i++) {
        std::uint64_t key = rng.next64() % 64;
        auto pr = kv->put(key, key * 7 + 1);
        ASSERT_TRUE(pr.hasValue());
        if (pr->evicted) {
            evictions++;
            EXPECT_EQ(pr->evictedValue, pr->evictedKey * 7 + 1)
                << "value lost in relocation for key " << pr->evictedKey;
        }
    }
    EXPECT_GT(evictions, 500u);
}

TEST(ZkvStore, SetAssociativeBaselineShards)
{
    ZkvConfig cfg = tinyConfig(/*shards=*/2, /*blocks=*/64);
    cfg.array.kind = ArrayKind::SetAssoc;
    auto kv = mustCreate(cfg);

    std::uint64_t evictions = 0;
    for (std::uint64_t k = 0; k < 1000; k++) {
        auto pr = kv->put(k, k + 5);
        ASSERT_TRUE(pr.hasValue());
        if (pr->evicted) evictions++;
    }
    EXPECT_GT(evictions, 0u);
    EXPECT_LE(kv->size(), 128u);
    // Resident keys still read back exactly.
    std::uint64_t hits = 0;
    for (std::uint64_t k = 0; k < 1000; k++) {
        if (auto v = kv->get(k)) {
            hits++;
            EXPECT_EQ(*v, k + 5);
        }
    }
    EXPECT_GT(hits, 0u);
}

TEST(ZkvStore, SkewAssociativeShards)
{
    ZkvConfig cfg = tinyConfig(/*shards=*/2, /*blocks=*/64);
    cfg.array.kind = ArrayKind::SkewAssoc;
    auto kv = mustCreate(cfg);
    for (std::uint64_t k = 0; k < 500; k++) {
        ASSERT_TRUE(kv->put(k, ~k).hasValue());
    }
    std::uint64_t hits = 0;
    for (std::uint64_t k = 0; k < 500; k++) {
        if (auto v = kv->get(k)) {
            hits++;
            EXPECT_EQ(*v, ~k);
        }
    }
    EXPECT_GT(hits, 0u);
}

// ---------------------------------------------------------------------
// Stats.

TEST(ZkvStore, StatsTreeShapeAndTotals)
{
    auto kv = mustCreate(tinyConfig(/*shards=*/2));
    for (std::uint64_t k = 0; k < 100; k++) {
        ASSERT_TRUE(kv->put(k, k).hasValue());
    }
    for (std::uint64_t k = 0; k < 100; k++) (void)kv->get(k);
    (void)kv->erase(7);

    StatsRegistry reg;
    kv->registerStats(reg.root());
    JsonValue dump = reg.toJson();

    const JsonValue* store = dump.find("store");
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->find("shards")->asU64(), 2u);
    ASSERT_NE(store->find("totals"), nullptr);
    ASSERT_NE(store->find("shard0"), nullptr);
    ASSERT_NE(store->find("shard1"), nullptr);
    ASSERT_NE(store->find("shard0")->find("array"), nullptr);
    // ZCache shards expose the walk group.
    EXPECT_NE(store->find("shard0")->find("array")->find("walk"), nullptr);

    ZkvShardStats tot = kv->totals();
    EXPECT_EQ(tot.puts, 100u);
    EXPECT_EQ(tot.gets, 100u);
    EXPECT_EQ(tot.erases, 1u);
    EXPECT_EQ(store->find("totals")->find("puts")->asU64(), tot.puts);
    EXPECT_EQ(store->find("totals")->find("gets")->asU64(), tot.gets);
    EXPECT_EQ(store->find("resident_keys")->asU64(), kv->size());

    ZkvShardStats sum;
    sum.add(kv->shardStats(0));
    sum.add(kv->shardStats(1));
    EXPECT_EQ(sum.puts, tot.puts);
    EXPECT_EQ(sum.getHits, tot.getHits);
}

// ---------------------------------------------------------------------
// Fault injection (docs/robustness.md sites store.alloc, store.walk).

TEST(ZkvStore, AllocFaultFailsCreateStructurally)
{
    ScopedFault fault("store.alloc");
    auto store = ZkvStore::create(tinyConfig(/*shards=*/4));
    ASSERT_FALSE(store.hasValue());
    EXPECT_EQ(store.status().code(), ErrorCode::ResourceExhausted);
    EXPECT_NE(store.status().message().find("store.alloc"),
              std::string::npos);
}

TEST(ZkvStore, WalkFaultSurfacesAsStatusNotCrash)
{
    auto kv = mustCreate(tinyConfig());
    ASSERT_TRUE(kv->put(1, 10).hasValue());

    {
        ScopedFault fault("store.walk");
        // Update path never walks: unaffected.
        EXPECT_TRUE(kv->put(1, 11).hasValue());
        // Insert path: the injected walk failure is a structured error.
        auto pr = kv->put(2, 20);
        ASSERT_FALSE(pr.hasValue());
        EXPECT_EQ(pr.status().code(), ErrorCode::ResourceExhausted);
        EXPECT_NE(pr.status().message().find("store.walk"),
                  std::string::npos);
        // The failed insert left no partial state.
        EXPECT_EQ(kv->get(2), std::nullopt);
        EXPECT_EQ(kv->get(1), std::optional<std::uint64_t>(11));
    }

    // Site disarmed: the same insert now succeeds.
    ASSERT_TRUE(kv->put(2, 20).hasValue());
    EXPECT_EQ(kv->get(2), std::optional<std::uint64_t>(20));
}

// ---------------------------------------------------------------------
// Determinism: 1 thread + fixed seed => byte-identical stats.

TEST(ZkvLoadGen, SingleThreadStatsAreByteIdentical)
{
    LoadGenConfig cfg;
    cfg.store = tinyConfig(/*shards=*/2, /*blocks=*/256);
    cfg.threads = 1;
    cfg.opsPerThread = 20000;
    cfg.seed = 42;
    cfg.workload = "canneal";

    auto a = runLoadGen(cfg);
    ASSERT_TRUE(a.hasValue()) << a.status().str();
    auto b = runLoadGen(cfg);
    ASSERT_TRUE(b.hasValue()) << b.status().str();

    EXPECT_EQ(a->storeStats.str(2), b->storeStats.str(2));
    // And the run did real work.
    ThreadStats agg = a->aggregate();
    EXPECT_EQ(agg.ops, 20000u);
    EXPECT_GT(agg.gets, 0u);
    EXPECT_GT(agg.puts, 0u);
    EXPECT_EQ(agg.verifyFailures, 0u);
}

TEST(ZkvLoadGen, DifferentSeedsDiverge)
{
    LoadGenConfig cfg;
    cfg.store = tinyConfig(/*shards=*/2, /*blocks=*/256);
    cfg.threads = 1;
    cfg.opsPerThread = 20000;
    cfg.workload = "canneal";

    cfg.seed = 1;
    auto a = runLoadGen(cfg);
    ASSERT_TRUE(a.hasValue());
    cfg.seed = 2;
    auto b = runLoadGen(cfg);
    ASSERT_TRUE(b.hasValue());
    EXPECT_NE(a->storeStats.str(), b->storeStats.str());
}

TEST(ZkvLoadGen, UnknownWorkloadIsStructuredNotFound)
{
    LoadGenConfig cfg;
    cfg.workload = "no-such-workload";
    auto r = runLoadGen(cfg);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.status().code(), ErrorCode::NotFound);
}

TEST(ZkvLoadGen, InvalidMixRejected)
{
    LoadGenConfig cfg;
    cfg.getFrac = 0.9;
    cfg.eraseFrac = 0.2;
    auto r = runLoadGen(cfg);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument);
}

/**
 * Regression: ThreadStats once hardcoded 64 latency bins regardless of
 * LoadGenConfig::latencyBins — a non-default bin count must propagate
 * into every per-thread histogram and the aggregate.
 */
TEST(ZkvLoadGen, LatencyBinsConfigPropagates)
{
    LoadGenConfig cfg;
    cfg.store = tinyConfig(/*shards=*/2, /*blocks=*/256);
    cfg.threads = 2;
    cfg.opsPerThread = 2000;
    cfg.workload = "canneal";
    cfg.latencyBins = 32;

    auto r = runLoadGen(cfg);
    ASSERT_TRUE(r.hasValue()) << r.status().str();
    ASSERT_EQ(r->perThread.size(), 2u);
    for (const ThreadStats& t : r->perThread) {
        EXPECT_EQ(t.latency.bins(), 32u);
        EXPECT_GT(t.latency.samples(), 0u);
    }
    EXPECT_EQ(r->aggregate().latency.bins(), 32u);
}

// ---------------------------------------------------------------------
// Concurrency (run under TSan in CI): >= 4 threads over >= 2 shards
// with strict read-your-writes on per-thread key ranges.

TEST(ZkvConcurrency, ReadYourWritesAcrossFourThreads)
{
    ZkvConfig cfg = tinyConfig(/*shards=*/4, /*blocks=*/1024);
    auto kv = mustCreate(cfg);

    constexpr std::uint32_t kThreads = 4;
    constexpr std::uint64_t kKeysPerThread = 512;
    constexpr std::uint64_t kOps = 20000;
    std::vector<std::uint64_t> failures(kThreads, 0);

    std::vector<std::thread> workers;
    for (std::uint32_t tid = 0; tid < kThreads; tid++) {
        workers.emplace_back([&, tid] {
            // Disjoint key range per thread: only this thread writes
            // these keys, so any hit must return exactly its last put.
            const std::uint64_t base = 1 + tid * kKeysPerThread;
            std::vector<std::uint64_t> last(kKeysPerThread, 0);
            Pcg32 rng(tid + 1);
            for (std::uint64_t i = 0; i < kOps; i++) {
                std::uint64_t idx = rng.next64() % kKeysPerThread;
                std::uint64_t key = base + idx;
                double u = rng.uniform();
                if (u < 0.5) {
                    if (auto v = kv->get(key)) {
                        if (last[idx] == 0 || *v != last[idx]) {
                            failures[tid]++;
                        }
                    }
                } else if (u < 0.9) {
                    std::uint64_t val = (i << 8) | tid | 0x100;
                    auto pr = kv->put(key, val);
                    if (pr.hasValue()) {
                        last[idx] = val;
                    } else {
                        failures[tid]++;
                    }
                } else {
                    (void)kv->erase(key);
                    last[idx] = 0; // next hit must be a fresh put
                }
            }
        });
    }
    for (auto& w : workers) w.join();

    for (std::uint32_t tid = 0; tid < kThreads; tid++) {
        EXPECT_EQ(failures[tid], 0u) << "thread " << tid;
    }
    // All four threads really hammered the same store.
    ZkvShardStats tot = kv->totals();
    EXPECT_EQ(tot.gets + tot.puts + tot.erases, kThreads * kOps);
}

TEST(ZkvConcurrency, SpinLockModeIsEquallySafe)
{
    ZkvConfig cfg = tinyConfig(/*shards=*/2, /*blocks=*/256);
    cfg.lock = ShardLockKind::Spin;
    auto kv = mustCreate(cfg);

    constexpr std::uint32_t kThreads = 4;
    std::vector<std::thread> workers;
    for (std::uint32_t tid = 0; tid < kThreads; tid++) {
        workers.emplace_back([&, tid] {
            Pcg32 rng(tid + 10);
            for (int i = 0; i < 5000; i++) {
                std::uint64_t key = 1 + rng.next64() % 512;
                if (rng.uniform() < 0.5) {
                    (void)kv->get(key);
                } else {
                    (void)kv->put(key, key);
                }
            }
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(kv->totals().gets + kv->totals().puts, kThreads * 5000u);
}

TEST(ZkvConcurrency, LoadGenMultithreadVerifiesPayloads)
{
    LoadGenConfig cfg;
    cfg.store = tinyConfig(/*shards=*/2, /*blocks=*/512);
    cfg.threads = 4;
    cfg.opsPerThread = 10000;
    cfg.seed = 7;
    cfg.workload = "canneal";

    auto r = runLoadGen(cfg);
    ASSERT_TRUE(r.hasValue()) << r.status().str();
    ASSERT_EQ(r->perThread.size(), 4u);
    ThreadStats agg = r->aggregate();
    EXPECT_EQ(agg.ops, 40000u);
    EXPECT_EQ(agg.verifyFailures, 0u);
    EXPECT_EQ(agg.putErrors, 0u);
    EXPECT_GT(r->opsPerSec, 0.0);
    EXPECT_GT(r->seconds, 0.0);
    // Timing block carries aggregate + per-thread latency.
    JsonValue timing = r->timing();
    EXPECT_EQ(timing.find("ops_total")->asU64(), 40000u);
    EXPECT_EQ(timing.find("per_thread")->arr().size(), 4u);
    EXPECT_GT(timing.find("latency")->find("count")->asU64(), 0u);
}

} // namespace
} // namespace zc
