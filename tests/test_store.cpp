/**
 * @file
 * zkv store tests (docs/store.md): single-thread shard semantics
 * (get/put/erase, eviction picks the relocation walk's victim),
 * deterministic stats for a fixed seed, structured-error fault
 * injection at store.alloc / store.walk, and concurrent
 * read-your-writes under >= 4 threads over >= 2 shards (the target of
 * the CI ThreadSanitizer job).
 */

#include <gtest/gtest.h>

#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "obs/tracer.hpp"
#include "store/loadgen.hpp"
#include "store/zkv.hpp"

namespace zc {
namespace {

/** Small single-shard zcache store: evicts early, walk-heavy. */
ZkvConfig
tinyConfig(std::uint32_t shards = 1, std::uint32_t blocks = 64)
{
    ZkvConfig cfg;
    cfg.shards = shards;
    cfg.array.kind = ArrayKind::ZCache;
    cfg.array.blocks = blocks;
    cfg.array.ways = 4;
    cfg.array.levels = 2;
    cfg.array.policy = PolicyKind::Lru;
    cfg.array.seed = 0xbeef;
    return cfg;
}

std::unique_ptr<ZkvStore>
mustCreate(const ZkvConfig& cfg)
{
    auto store = ZkvStore::create(cfg);
    EXPECT_TRUE(store.hasValue()) << store.status().str();
    return std::move(*store);
}

// ---------------------------------------------------------------------
// Single-thread shard semantics.

TEST(ZkvStore, GetPutEraseRoundTrip)
{
    auto kv = mustCreate(tinyConfig());

    EXPECT_EQ(kv->get(10), std::nullopt);

    auto put = kv->put(10, 111);
    ASSERT_TRUE(put.hasValue());
    EXPECT_TRUE(put->inserted);
    EXPECT_FALSE(put->evicted);
    EXPECT_EQ(kv->get(10), std::optional<std::uint64_t>(111));
    EXPECT_EQ(kv->size(), 1u);

    // Update in place: no insert, value replaced.
    put = kv->put(10, 222);
    ASSERT_TRUE(put.hasValue());
    EXPECT_FALSE(put->inserted);
    EXPECT_EQ(kv->get(10), std::optional<std::uint64_t>(222));
    EXPECT_EQ(kv->size(), 1u);

    EXPECT_TRUE(kv->erase(10));
    EXPECT_EQ(kv->get(10), std::nullopt);
    EXPECT_FALSE(kv->erase(10));
    EXPECT_EQ(kv->size(), 0u);
}

TEST(ZkvStore, ReservedKeyRejectedStructurally)
{
    auto kv = mustCreate(tinyConfig());
    auto put = kv->put(ZkvStore::kReservedKey, 1);
    ASSERT_FALSE(put.hasValue());
    EXPECT_EQ(put.status().code(), ErrorCode::InvalidArgument);
}

TEST(ZkvStore, InvalidConfigRejected)
{
    ZkvConfig cfg = tinyConfig();
    cfg.shards = 0;
    auto store = ZkvStore::create(cfg);
    ASSERT_FALSE(store.hasValue());
    EXPECT_EQ(store.status().code(), ErrorCode::InvalidArgument);

    cfg = tinyConfig();
    cfg.array.blocks = 60; // blocks/ways not a power of two
    store = ZkvStore::create(cfg);
    ASSERT_FALSE(store.hasValue());
    EXPECT_EQ(store.status().code(), ErrorCode::InvalidArgument);
}

TEST(ZkvStore, ShardSelectionCoversAllShards)
{
    auto kv = mustCreate(tinyConfig(/*shards=*/4));
    std::vector<std::uint64_t> hits(4, 0);
    for (std::uint64_t k = 0; k < 4000; k++) {
        std::uint32_t s = kv->shardOf(k);
        ASSERT_LT(s, 4u);
        hits[s]++;
    }
    for (std::uint64_t h : hits) {
        EXPECT_GT(h, 700u); // ~1000 each; splitmix64 spreads uniformly
    }
}

/**
 * Eviction picks the walk victim: a shard must report exactly the
 * eviction sequence a bare factory-built array with the shard's spec
 * produces under the identical access/insert sequence — the value
 * mirror may not perturb the walk.
 */
TEST(ZkvStore, EvictionPicksTheWalkVictim)
{
    ZkvConfig cfg = tinyConfig(/*shards=*/1, /*blocks=*/64);
    auto kv = mustCreate(cfg);

    // Reference: the same array + policy the shard builds (shardSpec
    // exposes the derived per-shard seed).
    auto bare = makeArray(cfg.shardSpec(0));

    std::vector<std::uint64_t> store_evicted;
    std::vector<std::uint64_t> bare_evicted;
    Pcg32 rng(99);
    for (int i = 0; i < 2000; i++) {
        std::uint64_t key = rng.next64() % 256;
        if (rng.uniform() < 0.5) {
            // put: access (hit => update) else insert.
            auto pr = kv->put(key, key * 3);
            ASSERT_TRUE(pr.hasValue());
            if (pr->evicted) store_evicted.push_back(pr->evictedKey);

            AccessContext ctx{key, kNoNextUse};
            if (bare->access(key, ctx) == kInvalidPos) {
                Replacement r = bare->insert(key, ctx);
                if (r.evictedValid()) {
                    bare_evicted.push_back(r.evictedAddr);
                }
            }
        } else {
            (void)kv->get(key);
            AccessContext ctx{key, kNoNextUse};
            (void)bare->access(key, ctx);
        }
    }
    ASSERT_GT(store_evicted.size(), 100u); // footprint 4x capacity
    EXPECT_EQ(store_evicted, bare_evicted);
}

TEST(ZkvStore, EvictedValueTravelsWithTheKey)
{
    auto kv = mustCreate(tinyConfig(/*shards=*/1, /*blocks=*/16));
    // Value = key * 7 + 1: when an insert displaces a resident key,
    // the reported pair must still match — values must have followed
    // their blocks through every walk relocation.
    Pcg32 rng(3);
    std::uint64_t evictions = 0;
    for (int i = 0; i < 3000; i++) {
        std::uint64_t key = rng.next64() % 64;
        auto pr = kv->put(key, key * 7 + 1);
        ASSERT_TRUE(pr.hasValue());
        if (pr->evicted) {
            evictions++;
            EXPECT_EQ(pr->evictedValue, pr->evictedKey * 7 + 1)
                << "value lost in relocation for key " << pr->evictedKey;
        }
    }
    EXPECT_GT(evictions, 500u);
}

TEST(ZkvStore, SetAssociativeBaselineShards)
{
    ZkvConfig cfg = tinyConfig(/*shards=*/2, /*blocks=*/64);
    cfg.array.kind = ArrayKind::SetAssoc;
    auto kv = mustCreate(cfg);

    std::uint64_t evictions = 0;
    for (std::uint64_t k = 0; k < 1000; k++) {
        auto pr = kv->put(k, k + 5);
        ASSERT_TRUE(pr.hasValue());
        if (pr->evicted) evictions++;
    }
    EXPECT_GT(evictions, 0u);
    EXPECT_LE(kv->size(), 128u);
    // Resident keys still read back exactly.
    std::uint64_t hits = 0;
    for (std::uint64_t k = 0; k < 1000; k++) {
        if (auto v = kv->get(k)) {
            hits++;
            EXPECT_EQ(*v, k + 5);
        }
    }
    EXPECT_GT(hits, 0u);
}

TEST(ZkvStore, SkewAssociativeShards)
{
    ZkvConfig cfg = tinyConfig(/*shards=*/2, /*blocks=*/64);
    cfg.array.kind = ArrayKind::SkewAssoc;
    auto kv = mustCreate(cfg);
    for (std::uint64_t k = 0; k < 500; k++) {
        ASSERT_TRUE(kv->put(k, ~k).hasValue());
    }
    std::uint64_t hits = 0;
    for (std::uint64_t k = 0; k < 500; k++) {
        if (auto v = kv->get(k)) {
            hits++;
            EXPECT_EQ(*v, ~k);
        }
    }
    EXPECT_GT(hits, 0u);
}

// ---------------------------------------------------------------------
// Stats.

TEST(ZkvStore, StatsTreeShapeAndTotals)
{
    auto kv = mustCreate(tinyConfig(/*shards=*/2));
    for (std::uint64_t k = 0; k < 100; k++) {
        ASSERT_TRUE(kv->put(k, k).hasValue());
    }
    for (std::uint64_t k = 0; k < 100; k++) (void)kv->get(k);
    (void)kv->erase(7);

    StatsRegistry reg;
    kv->registerStats(reg.root());
    JsonValue dump = reg.toJson();

    const JsonValue* store = dump.find("store");
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->find("shards")->asU64(), 2u);
    ASSERT_NE(store->find("totals"), nullptr);
    ASSERT_NE(store->find("shard0"), nullptr);
    ASSERT_NE(store->find("shard1"), nullptr);
    ASSERT_NE(store->find("shard0")->find("array"), nullptr);
    // ZCache shards expose the walk group.
    EXPECT_NE(store->find("shard0")->find("array")->find("walk"), nullptr);

    ZkvShardStats tot = kv->totals();
    EXPECT_EQ(tot.puts, 100u);
    EXPECT_EQ(tot.gets, 100u);
    EXPECT_EQ(tot.erases, 1u);
    EXPECT_EQ(store->find("totals")->find("puts")->asU64(), tot.puts);
    EXPECT_EQ(store->find("totals")->find("gets")->asU64(), tot.gets);
    EXPECT_EQ(store->find("resident_keys")->asU64(), kv->size());

    ZkvShardStats sum;
    sum.add(kv->shardStats(0));
    sum.add(kv->shardStats(1));
    EXPECT_EQ(sum.puts, tot.puts);
    EXPECT_EQ(sum.getHits, tot.getHits);
}

// ---------------------------------------------------------------------
// Fault injection (docs/robustness.md sites store.alloc, store.walk).

TEST(ZkvStore, AllocFaultFailsCreateStructurally)
{
    ScopedFault fault("store.alloc");
    auto store = ZkvStore::create(tinyConfig(/*shards=*/4));
    ASSERT_FALSE(store.hasValue());
    EXPECT_EQ(store.status().code(), ErrorCode::ResourceExhausted);
    EXPECT_NE(store.status().message().find("store.alloc"),
              std::string::npos);
}

TEST(ZkvStore, WalkFaultSurfacesAsStatusNotCrash)
{
    auto kv = mustCreate(tinyConfig());
    ASSERT_TRUE(kv->put(1, 10).hasValue());

    {
        ScopedFault fault("store.walk");
        // Update path never walks: unaffected.
        EXPECT_TRUE(kv->put(1, 11).hasValue());
        // Insert path: the injected walk failure is a structured error.
        auto pr = kv->put(2, 20);
        ASSERT_FALSE(pr.hasValue());
        EXPECT_EQ(pr.status().code(), ErrorCode::ResourceExhausted);
        EXPECT_NE(pr.status().message().find("store.walk"),
                  std::string::npos);
        // The failed insert left no partial state.
        EXPECT_EQ(kv->get(2), std::nullopt);
        EXPECT_EQ(kv->get(1), std::optional<std::uint64_t>(11));
    }

    // Site disarmed: the same insert now succeeds.
    ASSERT_TRUE(kv->put(2, 20).hasValue());
    EXPECT_EQ(kv->get(2), std::optional<std::uint64_t>(20));
}

// ---------------------------------------------------------------------
// Determinism: 1 thread + fixed seed => byte-identical stats.

TEST(ZkvLoadGen, SingleThreadStatsAreByteIdentical)
{
    LoadGenConfig cfg;
    cfg.store = tinyConfig(/*shards=*/2, /*blocks=*/256);
    cfg.threads = 1;
    cfg.opsPerThread = 20000;
    cfg.seed = 42;
    cfg.workload = "canneal";

    auto a = runLoadGen(cfg);
    ASSERT_TRUE(a.hasValue()) << a.status().str();
    auto b = runLoadGen(cfg);
    ASSERT_TRUE(b.hasValue()) << b.status().str();

    EXPECT_EQ(a->storeStats.str(2), b->storeStats.str(2));
    // And the run did real work.
    ThreadStats agg = a->aggregate();
    EXPECT_EQ(agg.ops, 20000u);
    EXPECT_GT(agg.gets, 0u);
    EXPECT_GT(agg.puts, 0u);
    EXPECT_EQ(agg.verifyFailures, 0u);
}

TEST(ZkvLoadGen, DifferentSeedsDiverge)
{
    LoadGenConfig cfg;
    cfg.store = tinyConfig(/*shards=*/2, /*blocks=*/256);
    cfg.threads = 1;
    cfg.opsPerThread = 20000;
    cfg.workload = "canneal";

    cfg.seed = 1;
    auto a = runLoadGen(cfg);
    ASSERT_TRUE(a.hasValue());
    cfg.seed = 2;
    auto b = runLoadGen(cfg);
    ASSERT_TRUE(b.hasValue());
    EXPECT_NE(a->storeStats.str(), b->storeStats.str());
}

TEST(ZkvLoadGen, UnknownWorkloadIsStructuredNotFound)
{
    LoadGenConfig cfg;
    cfg.workload = "no-such-workload";
    auto r = runLoadGen(cfg);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.status().code(), ErrorCode::NotFound);
}

TEST(ZkvLoadGen, InvalidMixRejected)
{
    LoadGenConfig cfg;
    cfg.getFrac = 0.9;
    cfg.eraseFrac = 0.2;
    auto r = runLoadGen(cfg);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument);
}

/**
 * Regression: ThreadStats once hardcoded 64 latency bins regardless of
 * LoadGenConfig::latencyBins — a non-default bin count must propagate
 * into every per-thread histogram and the aggregate.
 */
TEST(ZkvLoadGen, LatencyBinsConfigPropagates)
{
    LoadGenConfig cfg;
    cfg.store = tinyConfig(/*shards=*/2, /*blocks=*/256);
    cfg.threads = 2;
    cfg.opsPerThread = 2000;
    cfg.workload = "canneal";
    cfg.latencyBins = 32;

    auto r = runLoadGen(cfg);
    ASSERT_TRUE(r.hasValue()) << r.status().str();
    ASSERT_EQ(r->perThread.size(), 2u);
    for (const ThreadStats& t : r->perThread) {
        EXPECT_EQ(t.latency.bins(), 32u);
        EXPECT_GT(t.latency.samples(), 0u);
    }
    EXPECT_EQ(r->aggregate().latency.bins(), 32u);
}

// ---------------------------------------------------------------------
// Optimistic (seqlock) read path, docs/store.md "Read path". Run under
// TSan in CI: lock-free readers race writers' value-mirror stores.

/** tinyConfig on the lock-free get path. */
ZkvConfig
optimisticConfig(std::uint32_t shards = 1, std::uint32_t blocks = 64)
{
    ZkvConfig cfg = tinyConfig(shards, blocks);
    cfg.readPath = ReadPath::Optimistic;
    return cfg;
}

/** Torture payload: any hit on key k must decode to exactly this. */
std::uint64_t
tortureValue(std::uint64_t key)
{
    return zkvMix64(key) | 1;
}

TEST(ZkvOptimistic, CreateRejectsArraysWithoutLookupWays)
{
    // The lock-free reader needs the array to enumerate a key's W
    // candidate positions as a pure function (lookupWays); designs
    // with victim buffers or indirection tables can't, and must be
    // refused structurally instead of racing.
    for (ArrayKind kind : {ArrayKind::FullyAssoc, ArrayKind::VWay}) {
        ZkvConfig cfg = optimisticConfig();
        cfg.array.kind = kind;
        cfg.array.ways = 1;
        cfg.array.levels = 1;
        auto store = ZkvStore::create(cfg);
        ASSERT_FALSE(store.hasValue()) << arrayKindName(kind);
        EXPECT_EQ(store.status().code(), ErrorCode::InvalidArgument);
        EXPECT_NE(store.status().message().find("optimistic"),
                  std::string::npos);
    }
    // The supported kinds create fine.
    for (ArrayKind kind :
         {ArrayKind::ZCache, ArrayKind::SetAssoc, ArrayKind::SkewAssoc}) {
        ZkvConfig cfg = optimisticConfig();
        cfg.array.kind = kind;
        EXPECT_TRUE(ZkvStore::create(cfg).hasValue()) << arrayKindName(kind);
    }
}

TEST(ZkvOptimistic, RoundTripAndCountersSingleThread)
{
    auto kv = mustCreate(optimisticConfig());

    EXPECT_EQ(kv->get(10), std::nullopt);
    ASSERT_TRUE(kv->put(10, 111).hasValue());
    EXPECT_EQ(kv->get(10), std::optional<std::uint64_t>(111));
    ASSERT_TRUE(kv->put(10, 222).hasValue());
    EXPECT_EQ(kv->get(10), std::optional<std::uint64_t>(222));
    EXPECT_TRUE(kv->erase(10));
    EXPECT_EQ(kv->get(10), std::nullopt);

    // Single-threaded, every optimistic read validates on its first
    // attempt: no retries, no fallbacks, and the seq counters fold
    // into the ordinary gets/get_hits totals.
    ZkvShardStats tot = kv->totals();
    EXPECT_EQ(tot.gets, 4u);
    EXPECT_EQ(tot.getHits, 2u);
    ZkvShardObs obs = kv->obsTotals();
    EXPECT_EQ(obs.getOptimistic, 4u);
    EXPECT_EQ(obs.getRetried, 0u);
    EXPECT_EQ(obs.getFallback, 0u);
}

/**
 * On the optimistic path gets never touch the replacement policy (on
 * the lock-free AND the fallback arm), so eviction decisions are a
 * pure function of the put/erase sequence: a bare factory-built array
 * fed ONLY the puts must report the identical eviction sequence even
 * though the store additionally serves interleaved gets.
 */
TEST(ZkvOptimistic, EvictionIgnoresGetsAndMatchesBareArray)
{
    ZkvConfig cfg = optimisticConfig(/*shards=*/1, /*blocks=*/64);
    auto kv = mustCreate(cfg);
    auto bare = makeArray(cfg.shardSpec(0));

    std::vector<std::uint64_t> store_evicted;
    std::vector<std::uint64_t> bare_evicted;
    Pcg32 rng(99);
    for (int i = 0; i < 2000; i++) {
        std::uint64_t key = rng.next64() % 256;
        if (rng.uniform() < 0.5) {
            auto pr = kv->put(key, key * 3);
            ASSERT_TRUE(pr.hasValue());
            if (pr->evicted) store_evicted.push_back(pr->evictedKey);

            AccessContext ctx{key, kNoNextUse};
            if (bare->access(key, ctx) == kInvalidPos) {
                Replacement r = bare->insert(key, ctx);
                if (r.evictedValid()) {
                    bare_evicted.push_back(r.evictedAddr);
                }
            }
        } else {
            (void)kv->get(key); // no bare-array mirror: gets are inert
        }
    }
    ASSERT_GT(store_evicted.size(), 100u);
    EXPECT_EQ(store_evicted, bare_evicted);
}

/**
 * Seqlock torture: one walk-heavy writer (footprint 4x capacity, so
 * inserts relocate constantly) races lock-free readers. Readers check
 * two invariants: (a) no torn pair — any hit on a writer key decodes
 * to tortureValue(key); (b) read-your-writes — each reader owns a
 * disjoint key range and any hit there returns exactly its last put.
 */
TEST(ZkvOptimistic, SeqlockTortureNoTornOrStaleReads)
{
    ZkvConfig cfg = optimisticConfig(/*shards=*/2, /*blocks=*/128);
    auto kv = mustCreate(cfg);

    constexpr std::uint64_t kWriterKeys = 1024; // keys 1..1024
    constexpr std::uint32_t kReaders = 3;
    constexpr std::uint64_t kOwnKeys = 64;

    std::vector<std::uint64_t> torn(kReaders, 0);
    std::vector<std::uint64_t> stale(kReaders, 0);

    std::thread writer([&] {
        Pcg32 rng(1);
        for (int i = 0; i < 60000; i++) {
            std::uint64_t key = 1 + rng.next64() % kWriterKeys;
            ASSERT_TRUE(kv->put(key, tortureValue(key)).hasValue());
        }
    });
    std::vector<std::thread> readers;
    for (std::uint32_t tid = 0; tid < kReaders; tid++) {
        readers.emplace_back([&, tid] {
            const std::uint64_t base = 10000 + tid * kOwnKeys;
            std::vector<std::uint64_t> last(kOwnKeys, 0);
            Pcg32 rng(100 + tid);
            for (int i = 0; i < 40000; i++) {
                if (rng.uniform() < 0.8) {
                    // Writer range: value is a pure function of key.
                    std::uint64_t key = 1 + rng.next64() % kWriterKeys;
                    if (auto v = kv->get(key)) {
                        if (*v != tortureValue(key)) torn[tid]++;
                    }
                } else {
                    std::uint64_t idx = rng.next64() % kOwnKeys;
                    std::uint64_t key = base + idx;
                    if (rng.uniform() < 0.5) {
                        std::uint64_t val =
                            (std::uint64_t{tid} << 32) | (i + 1);
                        if (kv->put(key, val).hasValue()) last[idx] = val;
                    } else if (auto v = kv->get(key)) {
                        if (last[idx] != 0 && *v != last[idx]) stale[tid]++;
                    }
                }
            }
        });
    }
    writer.join();
    for (auto& r : readers) r.join();

    for (std::uint32_t tid = 0; tid < kReaders; tid++) {
        EXPECT_EQ(torn[tid], 0u) << "torn read, reader " << tid;
        EXPECT_EQ(stale[tid], 0u) << "stale read, reader " << tid;
    }
    // The lock-free path actually served reads (not everything fell
    // back); retries/fallbacks are race-dependent and not asserted.
    ZkvShardObs obs = kv->obsTotals();
    EXPECT_GT(obs.getOptimistic, 0u);
    EXPECT_EQ(kv->totals().gets,
              obs.getOptimistic + obs.getFallback);
}

TEST(ZkvOptimistic, AllGetsBatchAnswersLockFree)
{
    auto kv = mustCreate(optimisticConfig(/*shards=*/1, /*blocks=*/64));
    for (std::uint64_t k = 1; k <= 8; k++) {
        ASSERT_TRUE(kv->put(k, k * 11).hasValue());
    }
    std::vector<StoreBatchOp> ops;
    for (std::uint64_t k = 1; k <= 16; k++) {
        StoreBatchOp op;
        op.kind = ObsOp::Get;
        op.key = k;
        ops.push_back(op);
    }
    std::vector<StoreBatchResult> out(ops.size());
    kv->runShardBatch(0, std::span<const StoreBatchOp>(ops), out.data());
    for (std::uint64_t k = 1; k <= 16; k++) {
        const StoreBatchResult& r = out[k - 1];
        EXPECT_EQ(r.code, ErrorCode::Ok);
        if (k <= 8) {
            EXPECT_TRUE(r.hit) << "key " << k;
            EXPECT_EQ(r.value, k * 11);
        } else {
            EXPECT_FALSE(r.hit) << "key " << k;
        }
    }
    // Uncontended, the whole batch — hits and validated misses alike —
    // is answered without the shard lock.
    ZkvShardObs obs = kv->obsTotals();
    EXPECT_EQ(obs.getOptimistic, 16u);
    EXPECT_EQ(obs.getFallback, 0u);
}

TEST(ZkvOptimistic, MixedBatchKeepsInOrderSemantics)
{
    auto kv = mustCreate(optimisticConfig(/*shards=*/1, /*blocks=*/64));
    // put -> get -> erase -> get on the same key: the gets must see
    // the preceding ops in program order, so a mixed batch may not
    // take the lock-free fork.
    std::vector<StoreBatchOp> ops(4);
    ops[0].kind = ObsOp::Put;
    ops[0].key = 5;
    ops[0].value = 55;
    ops[1].kind = ObsOp::Get;
    ops[1].key = 5;
    ops[2].kind = ObsOp::Erase;
    ops[2].key = 5;
    ops[3].kind = ObsOp::Get;
    ops[3].key = 5;
    std::vector<StoreBatchResult> out(ops.size());
    kv->runShardBatch(0, std::span<const StoreBatchOp>(ops), out.data());
    EXPECT_TRUE(out[0].inserted);
    EXPECT_TRUE(out[1].hit);
    EXPECT_EQ(out[1].value, 55u);
    EXPECT_TRUE(out[2].hit);
    EXPECT_FALSE(out[3].hit);
}

TEST(ZkvOptimistic, TracedPathMatchesPlain)
{
    // Same op sequence with and without live telemetry: identical
    // answers and identical op/seq counters (the traced twins add
    // attribution, never semantics).
    auto plain = mustCreate(optimisticConfig(/*shards=*/2, /*blocks=*/128));
    auto traced = mustCreate(optimisticConfig(/*shards=*/2, /*blocks=*/128));
    ObsTracerConfig tc; // empty path: count-only collector
    ObsTracer tracer(std::move(tc));
    traced->enableObs(&tracer);

    Pcg32 rng(17);
    for (int i = 0; i < 4000; i++) {
        std::uint64_t key = 1 + rng.next64() % 512;
        double u = rng.uniform();
        if (u < 0.6) {
            EXPECT_EQ(plain->get(key), traced->get(key));
        } else if (u < 0.9) {
            ASSERT_TRUE(plain->put(key, key + i).hasValue());
            ASSERT_TRUE(traced->put(key, key + i).hasValue());
        } else {
            EXPECT_EQ(plain->erase(key), traced->erase(key));
        }
    }
    traced->disableObs();

    ZkvShardStats ps = plain->totals();
    ZkvShardStats ts = traced->totals();
    EXPECT_EQ(ps.gets, ts.gets);
    EXPECT_EQ(ps.getHits, ts.getHits);
    EXPECT_EQ(ps.evictions, ts.evictions);
    ZkvShardObs po = plain->obsTotals();
    ZkvShardObs to = traced->obsTotals();
    EXPECT_EQ(po.getOptimistic, to.getOptimistic);
    EXPECT_EQ(po.getFallback, to.getFallback);
}

// ---------------------------------------------------------------------
// Concurrency (run under TSan in CI): >= 4 threads over >= 2 shards
// with strict read-your-writes on per-thread key ranges.

TEST(ZkvConcurrency, ReadYourWritesAcrossFourThreads)
{
    ZkvConfig cfg = tinyConfig(/*shards=*/4, /*blocks=*/1024);
    auto kv = mustCreate(cfg);

    constexpr std::uint32_t kThreads = 4;
    constexpr std::uint64_t kKeysPerThread = 512;
    constexpr std::uint64_t kOps = 20000;
    std::vector<std::uint64_t> failures(kThreads, 0);

    std::vector<std::thread> workers;
    for (std::uint32_t tid = 0; tid < kThreads; tid++) {
        workers.emplace_back([&, tid] {
            // Disjoint key range per thread: only this thread writes
            // these keys, so any hit must return exactly its last put.
            const std::uint64_t base = 1 + tid * kKeysPerThread;
            std::vector<std::uint64_t> last(kKeysPerThread, 0);
            Pcg32 rng(tid + 1);
            for (std::uint64_t i = 0; i < kOps; i++) {
                std::uint64_t idx = rng.next64() % kKeysPerThread;
                std::uint64_t key = base + idx;
                double u = rng.uniform();
                if (u < 0.5) {
                    if (auto v = kv->get(key)) {
                        if (last[idx] == 0 || *v != last[idx]) {
                            failures[tid]++;
                        }
                    }
                } else if (u < 0.9) {
                    std::uint64_t val = (i << 8) | tid | 0x100;
                    auto pr = kv->put(key, val);
                    if (pr.hasValue()) {
                        last[idx] = val;
                    } else {
                        failures[tid]++;
                    }
                } else {
                    (void)kv->erase(key);
                    last[idx] = 0; // next hit must be a fresh put
                }
            }
        });
    }
    for (auto& w : workers) w.join();

    for (std::uint32_t tid = 0; tid < kThreads; tid++) {
        EXPECT_EQ(failures[tid], 0u) << "thread " << tid;
    }
    // All four threads really hammered the same store.
    ZkvShardStats tot = kv->totals();
    EXPECT_EQ(tot.gets + tot.puts + tot.erases, kThreads * kOps);
}

TEST(ZkvConcurrency, SpinLockModeIsEquallySafe)
{
    ZkvConfig cfg = tinyConfig(/*shards=*/2, /*blocks=*/256);
    cfg.lock = ShardLockKind::Spin;
    auto kv = mustCreate(cfg);

    constexpr std::uint32_t kThreads = 4;
    std::vector<std::thread> workers;
    for (std::uint32_t tid = 0; tid < kThreads; tid++) {
        workers.emplace_back([&, tid] {
            Pcg32 rng(tid + 10);
            for (int i = 0; i < 5000; i++) {
                std::uint64_t key = 1 + rng.next64() % 512;
                if (rng.uniform() < 0.5) {
                    (void)kv->get(key);
                } else {
                    (void)kv->put(key, key);
                }
            }
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(kv->totals().gets + kv->totals().puts, kThreads * 5000u);
}

TEST(ZkvConcurrency, LoadGenMultithreadVerifiesPayloads)
{
    LoadGenConfig cfg;
    cfg.store = tinyConfig(/*shards=*/2, /*blocks=*/512);
    cfg.threads = 4;
    cfg.opsPerThread = 10000;
    cfg.seed = 7;
    cfg.workload = "canneal";

    auto r = runLoadGen(cfg);
    ASSERT_TRUE(r.hasValue()) << r.status().str();
    ASSERT_EQ(r->perThread.size(), 4u);
    ThreadStats agg = r->aggregate();
    EXPECT_EQ(agg.ops, 40000u);
    EXPECT_EQ(agg.verifyFailures, 0u);
    EXPECT_EQ(agg.putErrors, 0u);
    EXPECT_GT(r->opsPerSec, 0.0);
    EXPECT_GT(r->seconds, 0.0);
    // Timing block carries aggregate + per-thread latency.
    JsonValue timing = r->timing();
    EXPECT_EQ(timing.find("ops_total")->asU64(), 40000u);
    EXPECT_EQ(timing.find("per_thread")->arr().size(), 4u);
    EXPECT_GT(timing.find("latency")->find("count")->asU64(), 0u);
}

TEST(ZkvConcurrency, LoadGenOptimisticReadPathVerifies)
{
    // The loadgen's payload verification (value must decode to the
    // writing thread + op) through the lock-free read path, 4 threads
    // over 2 shards — the CI TSan smoke in miniature.
    LoadGenConfig cfg;
    cfg.store = tinyConfig(/*shards=*/2, /*blocks=*/512);
    cfg.store.readPath = ReadPath::Optimistic;
    cfg.threads = 4;
    cfg.opsPerThread = 10000;
    cfg.seed = 9;
    cfg.workload = "canneal";
    cfg.getFrac = 0.9;
    cfg.eraseFrac = 0.0;

    auto r = runLoadGen(cfg);
    ASSERT_TRUE(r.hasValue()) << r.status().str();
    ThreadStats agg = r->aggregate();
    EXPECT_EQ(agg.ops, 40000u);
    EXPECT_EQ(agg.verifyFailures, 0u);
    EXPECT_EQ(agg.putErrors, 0u);
}

} // namespace
} // namespace zc
