/**
 * @file
 * Tests for src/trace: generators, the workload registry, and the
 * future-use annotator that powers OPT.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "trace/future_use.hpp"
#include "trace/generator.hpp"
#include "trace/mem_record.hpp"
#include "trace/workloads.hpp"

namespace zc {
namespace {

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

TEST(Strided, WrapsAtFootprint)
{
    StridedGenerator g(1000, 4, 1);
    std::vector<Addr> seen;
    for (int i = 0; i < 8; i++) seen.push_back(g.next().lineAddr);
    EXPECT_EQ(seen, (std::vector<Addr>{1000, 1001, 1002, 1003, 1000, 1001,
                                       1002, 1003}));
}

TEST(Strided, StrideSkipsLines)
{
    StridedGenerator g(0, 8, 2);
    std::set<Addr> seen;
    for (int i = 0; i < 16; i++) seen.insert(g.next().lineAddr);
    EXPECT_EQ(seen, (std::set<Addr>{0, 2, 4, 6}));
}

TEST(UniformRandom, StaysInRegion)
{
    UniformRandomGenerator g(500, 100, 1);
    for (int i = 0; i < 1000; i++) {
        Addr a = g.next().lineAddr;
        EXPECT_GE(a, 500u);
        EXPECT_LT(a, 600u);
    }
}

TEST(Zipf, HotLinesDominate)
{
    ZipfGenerator g(0, 10000, 1.2, 42);
    std::unordered_map<Addr, int> counts;
    for (int i = 0; i < 50000; i++) counts[g.next().lineAddr]++;
    // With alpha=1.2 the top line takes a large share.
    int max_count = 0;
    for (const auto& [a, c] : counts) max_count = std::max(max_count, c);
    EXPECT_GT(max_count, 50000 / 20);
    // And far fewer distinct lines than uniform would produce.
    EXPECT_LT(counts.size(), 9000u);
}

TEST(Zipf, DeterministicUnderSeed)
{
    ZipfGenerator a(0, 1000, 1.0, 7), b(0, 1000, 1.0, 7);
    for (int i = 0; i < 500; i++) {
        EXPECT_EQ(a.next().lineAddr, b.next().lineAddr);
    }
}

TEST(PointerChase, VisitsWholeFootprintOnce)
{
    PointerChaseGenerator g(100, 64, 3);
    std::set<Addr> seen;
    for (int i = 0; i < 64; i++) {
        Addr a = g.next().lineAddr;
        EXPECT_TRUE(seen.insert(a).second) << "revisit before full cycle";
        EXPECT_GE(a, 100u);
        EXPECT_LT(a, 164u);
    }
    EXPECT_EQ(seen.size(), 64u);
    // The next access restarts the same cycle.
    EXPECT_TRUE(seen.count(g.next().lineAddr));
}

TEST(PointerChase, SkipAdvancesPhase)
{
    PointerChaseGenerator a(0, 32, 9), b(0, 32, 9);
    b.skip(5);
    for (int i = 0; i < 5; i++) a.next();
    EXPECT_EQ(a.next().lineAddr, b.next().lineAddr);
}

TEST(Composite, MixesComponentsByWeight)
{
    std::vector<MixComponent> comps;
    comps.push_back({std::make_unique<StridedGenerator>(0, 10, 1), 0.8});
    comps.push_back({std::make_unique<StridedGenerator>(1000, 10, 1), 0.2});
    CompositeGenerator g(std::move(comps), 0.0, 0.0, 5);
    int low = 0, high = 0;
    for (int i = 0; i < 10000; i++) {
        Addr a = g.next().lineAddr;
        (a < 1000 ? low : high)++;
    }
    EXPECT_NEAR(low, 8000, 400);
    EXPECT_NEAR(high, 2000, 400);
}

TEST(Composite, StoreFractionHonoured)
{
    std::vector<MixComponent> comps;
    comps.push_back({std::make_unique<StridedGenerator>(0, 100, 1), 1.0});
    CompositeGenerator g(std::move(comps), 0.3, 0.0, 6);
    int stores = 0;
    for (int i = 0; i < 10000; i++) {
        if (g.next().type == AccessType::Store) stores++;
    }
    EXPECT_NEAR(stores, 3000, 300);
}

TEST(Composite, InstGapMeanMatches)
{
    std::vector<MixComponent> comps;
    comps.push_back({std::make_unique<StridedGenerator>(0, 100, 1), 1.0});
    CompositeGenerator g(std::move(comps), 0.0, 5.0, 7);
    double total = 0;
    for (int i = 0; i < 20000; i++) total += g.next().instGap;
    EXPECT_NEAR(total / 20000.0, 5.0, 0.4);
}

// ---------------------------------------------------------------------
// Workload registry
// ---------------------------------------------------------------------

TEST(Workloads, PopulationMatchesPaper)
{
    const auto& all = WorkloadRegistry::all();
    ASSERT_EQ(all.size(), 72u);
    int parsec = 0, omp = 0, rate = 0, mix = 0;
    for (const auto& w : all) {
        switch (w.category) {
          case WorkloadCategory::Parsec: parsec++; break;
          case WorkloadCategory::SpecOmp: omp++; break;
          case WorkloadCategory::Spec2006Rate: rate++; break;
          case WorkloadCategory::Spec2006Mix: mix++; break;
        }
    }
    EXPECT_EQ(parsec, 6);
    EXPECT_EQ(omp, 10);
    EXPECT_EQ(rate, 26);
    EXPECT_EQ(mix, 30);
}

TEST(Workloads, NamesUniqueAndNonEmpty)
{
    std::unordered_set<std::string> names;
    for (const auto& w : WorkloadRegistry::all()) {
        EXPECT_FALSE(w.name.empty());
        EXPECT_TRUE(names.insert(w.name).second) << "dup " << w.name;
    }
}

TEST(Workloads, MultithreadedFlagsConsistent)
{
    for (const auto& w : WorkloadRegistry::all()) {
        bool should_be_mt = w.category == WorkloadCategory::Parsec ||
                            w.category == WorkloadCategory::SpecOmp;
        EXPECT_EQ(w.multithreaded, should_be_mt) << w.name;
        if (!w.multithreaded) {
            EXPECT_EQ(w.sharedFrac, 0.0) << w.name;
        }
    }
}

TEST(Workloads, MixesReferenceRealApps)
{
    for (const auto& w : WorkloadRegistry::all()) {
        if (w.category != WorkloadCategory::Spec2006Mix) continue;
        ASSERT_EQ(w.mixApps.size(), 32u) << w.name;
        for (const auto& app : w.mixApps) {
            const auto& p = WorkloadRegistry::byName(app);
            EXPECT_EQ(p.category, WorkloadCategory::Spec2006Rate);
        }
    }
}

TEST(Workloads, RateCoresGetPrivateRegions)
{
    const auto& w = WorkloadRegistry::byName("mcf");
    auto g0 = WorkloadRegistry::makeCoreGenerator(w, 0, 32, 1);
    auto g1 = WorkloadRegistry::makeCoreGenerator(w, 1, 32, 1);
    std::set<Addr> a0, a1;
    for (int i = 0; i < 2000; i++) {
        a0.insert(g0->next().lineAddr);
        a1.insert(g1->next().lineAddr);
    }
    for (Addr a : a0) EXPECT_EQ(a1.count(a), 0u);
}

TEST(Workloads, MultithreadedCoresShareLines)
{
    const auto& w = WorkloadRegistry::byName("canneal");
    auto g0 = WorkloadRegistry::makeCoreGenerator(w, 0, 32, 1);
    auto g1 = WorkloadRegistry::makeCoreGenerator(w, 1, 32, 1);
    std::set<Addr> a0;
    for (int i = 0; i < 30000; i++) a0.insert(g0->next().lineAddr);
    int shared = 0;
    for (int i = 0; i < 30000; i++) {
        if (a0.count(g1->next().lineAddr)) shared++;
    }
    EXPECT_GT(shared, 1000);
}

TEST(Workloads, GeneratorsDeterministic)
{
    const auto& w = WorkloadRegistry::byName("gcc");
    auto g1 = WorkloadRegistry::makeCoreGenerator(w, 3, 32, 9);
    auto g2 = WorkloadRegistry::makeCoreGenerator(w, 3, 32, 9);
    for (int i = 0; i < 1000; i++) {
        MemRecord r1 = g1->next(), r2 = g2->next();
        EXPECT_EQ(r1.lineAddr, r2.lineAddr);
        EXPECT_EQ(r1.instGap, r2.instGap);
        EXPECT_EQ(r1.type, r2.type);
    }
}

// ---------------------------------------------------------------------
// Future-use annotation (OPT oracle)
// ---------------------------------------------------------------------

TEST(FutureUse, AnnotatesNextUseDistanceExactly)
{
    std::vector<MemRecord> t(6);
    Addr addrs[] = {10, 20, 10, 30, 20, 10};
    for (int i = 0; i < 6; i++) t[i].lineAddr = addrs[i];
    FutureUseAnnotator::annotate(t);
    EXPECT_EQ(t[0].nextUse, 2u); // 10 reused at index 2
    EXPECT_EQ(t[1].nextUse, 3u); // 20 reused at index 4
    EXPECT_EQ(t[2].nextUse, 3u); // 10 reused at index 5
    EXPECT_EQ(t[3].nextUse, std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(t[4].nextUse, std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(t[5].nextUse, std::numeric_limits<std::uint64_t>::max());
}

TEST(FutureUse, ReplayPreservesOrder)
{
    StridedGenerator g(0, 16, 1);
    auto trace = recordTrace(g, 40);
    FutureUseAnnotator::annotate(trace);
    ReplayGenerator replay(trace);
    for (int i = 0; i < 40; i++) {
        MemRecord r = replay.next();
        EXPECT_EQ(r.lineAddr, static_cast<Addr>(i % 16));
        if (i + 16 < 40) {
            EXPECT_EQ(r.nextUse, 16u); // cyclic stream: distance 16
        }
    }
    EXPECT_EQ(replay.remaining(), 0u);
}

} // namespace
} // namespace zc
