/**
 * @file
 * Tests for the CacheModel composite: stat bookkeeping invariants
 * across every array kind (parameterized).
 */

#include <gtest/gtest.h>

#include <string>

#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "common/rng.hpp"

namespace zc {
namespace {

class ModelContract : public ::testing::TestWithParam<ArrayKind>
{
  protected:
    CacheModel
    make(std::uint32_t blocks)
    {
        ArraySpec spec;
        spec.kind = GetParam();
        spec.blocks = blocks;
        spec.ways = 4;
        spec.levels = 2;
        spec.candidates = 8;
        spec.policy = PolicyKind::Lru;
        return CacheModel(makeArray(spec));
    }
};

TEST_P(ModelContract, CountsAddUp)
{
    CacheModel m = make(256);
    Pcg32 rng(1);
    for (int i = 0; i < 20000; i++) m.access(rng.next64() % 2048);
    const CacheModelStats& s = m.stats();
    EXPECT_EQ(s.accesses, 20000u);
    EXPECT_EQ(s.hits + s.misses, s.accesses);
    // Evictions can never exceed misses, and the gap is exactly the
    // fills absorbed while the array had room.
    EXPECT_LE(s.evictions, s.misses);
    EXPECT_GE(s.misses - s.evictions, 1u);
    EXPECT_NEAR(s.missRate(),
                static_cast<double>(s.misses) / s.accesses, 1e-12);
}

TEST_P(ModelContract, RepeatAccessHits)
{
    CacheModel m = make(64);
    EXPECT_FALSE(m.access(42));
    EXPECT_TRUE(m.access(42));
    EXPECT_EQ(m.stats().hits, 1u);
    EXPECT_EQ(m.stats().misses, 1u);
}

TEST_P(ModelContract, ResetStatsKeepsContents)
{
    CacheModel m = make(64);
    m.access(7);
    m.resetStats();
    EXPECT_EQ(m.stats().accesses, 0u);
    EXPECT_TRUE(m.access(7)) << "contents must survive a stats reset";
}

TEST_P(ModelContract, ResidencyBoundedByCapacity)
{
    CacheModel m = make(128);
    Pcg32 rng(2);
    for (int i = 0; i < 5000; i++) m.access(rng.next64());
    EXPECT_LE(m.array().validCount(), m.array().numBlocks());
    // Under pure-miss traffic the array must be (essentially) full.
    EXPECT_GE(m.array().validCount(), m.array().numBlocks() * 9 / 10);
}

TEST_P(ModelContract, NameIsDescriptive)
{
    CacheModel m = make(64);
    EXPECT_FALSE(m.name().empty());
    EXPECT_NE(m.name().find("repl"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ModelContract,
    ::testing::Values(ArrayKind::SetAssoc, ArrayKind::SkewAssoc,
                      ArrayKind::ZCache, ArrayKind::FullyAssoc,
                      ArrayKind::RandomCandidates, ArrayKind::VictimCache,
                      ArrayKind::VWay, ArrayKind::ColumnAssoc,
                      ArrayKind::CompressedZ,
                      ArrayKind::CompressedSetAssoc),
    [](const ::testing::TestParamInfo<ArrayKind>& info) {
        switch (info.param) {
          case ArrayKind::SetAssoc: return std::string("SetAssoc");
          case ArrayKind::SkewAssoc: return std::string("SkewAssoc");
          case ArrayKind::ZCache: return std::string("ZCache");
          case ArrayKind::FullyAssoc: return std::string("FullyAssoc");
          case ArrayKind::RandomCandidates: return std::string("RandCand");
          case ArrayKind::VictimCache: return std::string("VictimCache");
          case ArrayKind::VWay: return std::string("VWay");
          case ArrayKind::ColumnAssoc: return std::string("ColumnAssoc");
          case ArrayKind::CompressedZ: return std::string("CompressedZ");
          case ArrayKind::CompressedSetAssoc:
            return std::string("CompressedSA");
        }
        return std::string("unknown");
    });

TEST(CacheModel, RelocationsCountedForZcacheOnly)
{
    ArraySpec z;
    z.kind = ArrayKind::ZCache;
    z.blocks = 256;
    z.ways = 4;
    z.levels = 3;
    z.policy = PolicyKind::Lru;
    CacheModel zm(makeArray(z));
    ArraySpec s = z;
    s.kind = ArrayKind::SetAssoc;
    CacheModel sm(makeArray(s));
    Pcg32 rng(3);
    for (int i = 0; i < 20000; i++) {
        Addr a = rng.next64() % 2048;
        zm.access(a);
        sm.access(a);
    }
    EXPECT_GT(zm.stats().relocations, 0u);
    EXPECT_EQ(sm.stats().relocations, 0u);
}

} // namespace
} // namespace zc
