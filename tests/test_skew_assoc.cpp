/**
 * @file
 * Tests for SkewAssociativeArray (Seznec, ISCA 1993; paper Section
 * II-A). The header's central claim — the class *is* a ZArray
 * constrained to levels = 1, so the two designs coincide by
 * construction — is asserted here operation-by-operation, alongside
 * the structural properties that distinguish a skew cache from the
 * set-associative baseline: per-way hashing, candidate sets bounded by
 * W, and no relocations.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "assoc/eviction_tracker.hpp"
#include "cache/array_factory.hpp"
#include "cache/skew_associative_array.hpp"
#include "cache/z_array.hpp"
#include "common/rng.hpp"
#include "replacement/lru.hpp"

namespace zc {
namespace {

TEST(SkewAssoc, CoincidesWithLevelOneZArray)
{
    // Drive a SkewAssociativeArray and a hand-built Z(W, L=1) through an
    // identical access/insert stream: every probe outcome and every
    // eviction must agree. This is the "Z4/4" identity the paper uses
    // when it plots the skew cache on the zcache axes.
    constexpr std::uint32_t kBlocks = 256;
    constexpr std::uint32_t kWays = 4;
    constexpr std::uint64_t kSeed = 0x51ce;

    auto skew = std::make_unique<SkewAssociativeArray>(
        kBlocks, kWays, std::make_unique<LruPolicy>(kBlocks), HashKind::H3,
        kSeed);

    ZArrayConfig cfg;
    cfg.ways = kWays;
    cfg.levels = 1;
    cfg.hashKind = HashKind::H3;
    cfg.seed = kSeed;
    auto z = std::make_unique<ZArray>(kBlocks, cfg,
                                      std::make_unique<LruPolicy>(kBlocks));

    AccessContext c;
    Pcg32 rng(9);
    std::uint64_t evictions = 0;
    for (int i = 0; i < 8000; i++) {
        Addr a = rng.next64() % 1024;
        BlockPos ps = skew->access(a, c);
        BlockPos pz = z->access(a, c);
        ASSERT_EQ(ps, pz) << "probe diverged at op " << i;
        if (ps != kInvalidPos) continue;
        Replacement rs = skew->insert(a, c);
        Replacement rz = z->insert(a, c);
        ASSERT_EQ(rs.evictedAddr, rz.evictedAddr) << "op " << i;
        ASSERT_EQ(rs.victimPos, rz.victimPos) << "op " << i;
        ASSERT_EQ(rs.candidates, rz.candidates) << "op " << i;
        ASSERT_EQ(rs.relocations, rz.relocations) << "op " << i;
        if (rs.evictedValid()) evictions++;
    }
    EXPECT_GT(evictions, 1000u) << "stream too small to exercise evictions";
}

TEST(SkewAssoc, CandidatesBoundedByWaysAndNoRelocations)
{
    // A one-level walk sees exactly the W first-level conflicting
    // blocks, and with no deeper levels there is nothing to relocate.
    constexpr std::uint32_t kWays = 4;
    auto arr = std::make_unique<SkewAssociativeArray>(
        128, kWays, std::make_unique<LruPolicy>(128));
    AccessContext c;
    Pcg32 rng(11);
    std::uint64_t full_sets = 0;
    for (int i = 0; i < 4000; i++) {
        Addr a = rng.next64() % 512;
        if (arr->access(a, c) != kInvalidPos) continue;
        Replacement r = arr->insert(a, c);
        ASSERT_LE(r.candidates, kWays);
        ASSERT_EQ(r.relocations, 0u);
        if (r.candidates == kWays) full_sets++;
    }
    EXPECT_GT(full_sets, 0u);
}

TEST(SkewAssoc, FactorySpecBuildsSkewWithExpectedLabel)
{
    ArraySpec spec;
    spec.kind = ArrayKind::SkewAssoc;
    spec.blocks = 128;
    spec.ways = 4;
    EXPECT_EQ(spec.label(), "Skew4");

    auto arr = makeArray(spec);
    EXPECT_NE(arr->name().find("SkewAssoc"), std::string::npos);
    EXPECT_EQ(arr->numBlocks(), 128u);
}

TEST(SkewAssoc, SpecValidationRejectsDegenerateShapes)
{
    ArraySpec spec;
    spec.kind = ArrayKind::SkewAssoc;
    spec.blocks = 128;
    spec.ways = 1; // one hashed way is just a direct-mapped cache
    EXPECT_EQ(validateSpec(spec).code(), ErrorCode::InvalidArgument);

    spec.ways = 4;
    spec.blocks = 96; // blocks/ways = 24, not a power of two
    EXPECT_EQ(validateSpec(spec).code(), ErrorCode::InvalidArgument);
}

TEST(SkewAssoc, DeterministicUnderSeedAndDivergentAcrossSeeds)
{
    auto run = [](std::uint64_t seed) {
        auto arr = std::make_unique<SkewAssociativeArray>(
            64, 4, std::make_unique<LruPolicy>(64), HashKind::H3, seed);
        AccessContext c;
        Pcg32 rng(5);
        std::vector<Addr> victims;
        for (int i = 0; i < 3000; i++) {
            Addr a = rng.next64() % 256;
            if (arr->access(a, c) != kInvalidPos) continue;
            Replacement r = arr->insert(a, c);
            if (r.evictedValid()) victims.push_back(r.evictedAddr);
        }
        return victims;
    };
    EXPECT_EQ(run(0xaaaa), run(0xaaaa));
    EXPECT_NE(run(0xaaaa), run(0xbbbb));
}

TEST(SkewAssoc, AssociativityDistributionBeatsUniform)
{
    // Fig. 2: the skew cache's associativity CDF stays well below the
    // uniform line F(x) = x that a single random candidate (direct
    // mapping) would produce — low-priority blocks are rarely evicted.
    auto arr = std::make_unique<SkewAssociativeArray>(
        256, 4, std::make_unique<LruPolicy>(256));
    EvictionPriorityTracker tracker(100);
    tracker.attach(*arr);

    AccessContext c;
    Pcg32 rng(17);
    for (int i = 0; i < 40000; i++) {
        Addr a = rng.next64() % 1024;
        if (arr->access(a, c) != kInvalidPos) continue;
        arr->insert(a, c);
    }
    ASSERT_GT(tracker.samples(), 5000u);
    std::vector<double> cdf = tracker.cdf();
    // F(0.5): uniform gives 0.5; four candidates give roughly
    // 0.5^4 = 0.0625. Allow generous slack for LRU correlation.
    EXPECT_LT(cdf[49], 0.25);
    // The worst-priority tail must carry real mass: F(1) == 1 with a
    // visible step in the last decile.
    EXPECT_GT(1.0 - cdf[89], 0.2);
}

} // namespace
} // namespace zc
