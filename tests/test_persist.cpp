/**
 * @file
 * Durability-tier tests (src/persist, docs/durability.md): config
 * validation, log round-trips through a real ZkvStore, compaction
 * snapshots, torn-tail salvage at EVERY byte offset of the final
 * record, hand-crafted seqno gaps, the persist.* fault sites,
 * backpressure drop accounting, persistence-on-vs-off equivalence,
 * MANIFEST identity refusal, and a fork+SIGKILL crash test proving
 * fsync=always acked writes survive an unclean death (the CI
 * crash-recovery smoke job's in-process twin).
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "persist/oplog.hpp"
#include "persist/persist.hpp"
#include "store/zkv.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ZC_TSAN 1
#endif
#endif
#if !defined(ZC_TSAN) && defined(__SANITIZE_THREAD__)
#define ZC_TSAN 1
#endif

namespace zc {
namespace {

// ---------------------------------------------------------------------
// Shared helpers.

/** List regular files in @p dir (flat; persist dirs have no subdirs). */
std::vector<std::string>
listDir(const std::string& dir)
{
    std::vector<std::string> out;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return out;
    while (dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name != "." && name != "..") out.push_back(name);
    }
    ::closedir(d);
    return out;
}

void
removeAll(const std::string& dir)
{
    for (const std::string& f : listDir(dir)) {
        std::remove((dir + "/" + f).c_str());
    }
    ::rmdir(dir.c_str());
}

std::vector<std::uint8_t>
readFileBytes(const std::string& path)
{
    std::vector<std::uint8_t> out;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return out;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        out.insert(out.end(), buf, buf + n);
    }
    std::fclose(f);
    return out;
}

bool
writeFileBytes(const std::string& path,
               const std::vector<std::uint8_t>& bytes)
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    bool ok = bytes.empty() ||
              std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                  bytes.size();
    return std::fclose(f) == 0 && ok;
}

class PersistTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        FaultInjection::resetAll();
        const auto* info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = ::testing::TempDir() + "zc_persist_" + info->name() +
               "_" + std::to_string(::getpid());
        removeAll(dir_);
    }

    void
    TearDown() override
    {
        FaultInjection::resetAll();
        removeAll(dir_);
    }

    /** Single-shard zcache store with the persist tier at dir_. */
    ZkvConfig
    config(persist::FsyncPolicy fsync = persist::FsyncPolicy::Always,
           std::uint32_t blocks = 4096) const
    {
        ZkvConfig cfg;
        cfg.shards = 1;
        cfg.array.kind = ArrayKind::ZCache;
        cfg.array.blocks = blocks;
        cfg.array.ways = 4;
        cfg.array.levels = 2;
        cfg.array.policy = PolicyKind::Lru;
        cfg.array.seed = 0xbeef;
        cfg.persist.dataDir = dir_;
        cfg.persist.fsync = fsync;
        return cfg;
    }

    /** Create + recover, asserting both succeed. */
    std::unique_ptr<ZkvStore>
    open(const ZkvConfig& cfg,
         persist::RecoveryReport* report = nullptr)
    {
        auto store_or = ZkvStore::create(cfg);
        EXPECT_TRUE(store_or.hasValue()) << store_or.status().str();
        if (!store_or.hasValue()) return nullptr;
        auto rep_or = (*store_or)->recover();
        EXPECT_TRUE(rep_or.hasValue()) << rep_or.status().str();
        if (!rep_or.hasValue()) return nullptr;
        if (report != nullptr) *report = std::move(*rep_or);
        return std::move(*store_or);
    }

    /** All resident (key, value) pairs across every shard. */
    static std::map<std::uint64_t, std::uint64_t>
    dump(const ZkvStore& kv, std::uint32_t shards = 1)
    {
        std::map<std::uint64_t, std::uint64_t> out;
        for (std::uint32_t s = 0; s < shards; s++) {
            kv.forEachInShard(s,
                              [&](std::uint64_t k, std::uint64_t v) {
                                  out[k] = v;
                              });
        }
        return out;
    }

    std::string dir_;
};

// ---------------------------------------------------------------------
// Config validation.

TEST(PersistConfigTest, DisabledConfigAlwaysValidates)
{
    persist::PersistConfig cfg;
    cfg.queueCap = 0; // nonsense, but the tier is off
    EXPECT_FALSE(cfg.enabled());
    EXPECT_TRUE(cfg.validate().isOk());
}

TEST(PersistConfigTest, RejectsZeroQueueCap)
{
    persist::PersistConfig cfg;
    cfg.dataDir = "/tmp/x";
    cfg.queueCap = 0;
    EXPECT_EQ(cfg.validate().code(), ErrorCode::InvalidArgument);
}

TEST(PersistConfigTest, RejectsZeroIntervalWithIntervalFsync)
{
    persist::PersistConfig cfg;
    cfg.dataDir = "/tmp/x";
    cfg.fsync = persist::FsyncPolicy::Interval;
    cfg.fsyncIntervalMs = 0;
    EXPECT_EQ(cfg.validate().code(), ErrorCode::InvalidArgument);
}

TEST(PersistConfigTest, RejectsAlwaysFsyncWithDropBackpressure)
{
    // A dropped record can never become durable, so an acked write
    // could wait on waitDurable() forever: structurally impossible.
    persist::PersistConfig cfg;
    cfg.dataDir = "/tmp/x";
    cfg.fsync = persist::FsyncPolicy::Always;
    cfg.backpressure = persist::Backpressure::Drop;
    Status s = cfg.validate();
    EXPECT_EQ(s.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(s.message().find("drop"), std::string::npos);
}

TEST(PersistConfigTest, ParseRoundTrips)
{
    EXPECT_EQ(*persist::parseFsyncPolicy("always"),
              persist::FsyncPolicy::Always);
    EXPECT_EQ(*persist::parseFsyncPolicy("interval"),
              persist::FsyncPolicy::Interval);
    EXPECT_EQ(*persist::parseFsyncPolicy("never"),
              persist::FsyncPolicy::Never);
    EXPECT_FALSE(persist::parseFsyncPolicy("sometimes").hasValue());
    EXPECT_EQ(*persist::parseBackpressure("block"),
              persist::Backpressure::Block);
    EXPECT_EQ(*persist::parseBackpressure("drop"),
              persist::Backpressure::Drop);
    EXPECT_FALSE(persist::parseBackpressure("spill").hasValue());
}

// ---------------------------------------------------------------------
// Round trip: mutate, shut down cleanly, recover, compare.

TEST_F(PersistTest, RoundTripRestoresExactContents)
{
    std::map<std::uint64_t, std::uint64_t> before;
    {
        auto kv = open(config());
        ASSERT_NE(kv, nullptr);
        for (std::uint64_t k = 1; k <= 200; k++) {
            ASSERT_TRUE(kv->put(k, k * 31 + 7).hasValue());
        }
        for (std::uint64_t k = 1; k <= 200; k += 5) {
            kv->erase(k);
        }
        // Overwrites must replay last-write-wins.
        for (std::uint64_t k = 2; k <= 200; k += 7) {
            ASSERT_TRUE(kv->put(k, k ^ 0xabcdULL).hasValue());
        }
        before = dump(*kv);
        EXPECT_TRUE(kv->stopPersist().isOk());
    }
    ASSERT_FALSE(before.empty());

    // Replay applies the op sequence in original order to the same
    // array seed, so the recovered state matches exactly — not just
    // on hits (no snapshot, no gets: recovery is a pure replay).
    persist::RecoveryReport rep;
    auto kv = open(config(), &rep);
    ASSERT_NE(kv, nullptr);
    EXPECT_EQ(rep.totalSalvagedBytes(), 0u);
    EXPECT_EQ(rep.totalGaps(), 0u);
    EXPECT_GT(rep.totalReplayed(), 0u);
    EXPECT_EQ(dump(*kv), before);

    // Erased keys stay gone.
    EXPECT_EQ(kv->get(1), std::nullopt);
    EXPECT_EQ(kv->get(6), std::nullopt);
}

TEST_F(PersistTest, RecoverTwiceIsRejected)
{
    auto kv = open(config());
    ASSERT_NE(kv, nullptr);
    EXPECT_FALSE(kv->recover().hasValue());
}

TEST_F(PersistTest, RecoverWithoutPersistenceIsRejected)
{
    ZkvConfig cfg = config();
    cfg.persist.dataDir.clear();
    auto store_or = ZkvStore::create(cfg);
    ASSERT_TRUE(store_or.hasValue());
    EXPECT_FALSE((*store_or)->persistEnabled());
    auto rep = (*store_or)->recover();
    EXPECT_EQ(rep.status().code(), ErrorCode::InvalidArgument);
}

// ---------------------------------------------------------------------
// Snapshots + compaction.

TEST_F(PersistTest, SnapshotCompactsLogAndRecovers)
{
    std::map<std::uint64_t, std::uint64_t> before;
    {
        auto kv = open(config());
        ASSERT_NE(kv, nullptr);
        for (std::uint64_t k = 1; k <= 50; k++) {
            ASSERT_TRUE(kv->put(k, k + 1000).hasValue());
        }
        ASSERT_TRUE(kv->persistTier()->snapshotNow().isOk());
        for (std::uint64_t k = 51; k <= 60; k++) {
            ASSERT_TRUE(kv->put(k, k + 1000).hasValue());
        }
        before = dump(*kv);
        EXPECT_TRUE(kv->stopPersist().isOk());
    }

    // Compaction rotated to segment 1 and deleted segment 0: the
    // snapshot covers everything behind the rotation point.
    std::set<std::string> files;
    for (const std::string& f : listDir(dir_)) files.insert(f);
    EXPECT_TRUE(files.count("shard0.snap") == 1) << "no snapshot";
    EXPECT_TRUE(files.count("shard0-000001.log") == 1)
        << "no rotated segment";
    EXPECT_TRUE(files.count("shard0-000000.log") == 0)
        << "compaction left the old segment behind";

    persist::RecoveryReport rep;
    auto kv = open(config(), &rep);
    ASSERT_NE(kv, nullptr);
    ASSERT_EQ(rep.shards.size(), 1u);
    EXPECT_TRUE(rep.shards[0].snapshotLoaded);
    EXPECT_GT(rep.shards[0].snapshotRecords, 0u);
    EXPECT_EQ(rep.shards[0].replayed, 10u);
    EXPECT_EQ(rep.shards[0].skipped, 0u);

    // Snapshot reload changes replacement metadata, so the contract
    // is the shadow-map one: hits bit-identical, misses only for
    // keys the recovered array re-evicted, no resurrections.
    auto after = dump(*kv);
    for (const auto& [k, v] : after) {
        auto it = before.find(k);
        ASSERT_NE(it, before.end())
            << "key " << k << " resurrected from nowhere";
        EXPECT_EQ(it->second, v);
    }
}

// ---------------------------------------------------------------------
// Satellite: torn-tail salvage at EVERY byte offset of the last
// record. Fixed 33-byte records make each boundary exact.

TEST_F(PersistTest, TornTailSalvagedAtEveryByteOffset)
{
    constexpr std::uint64_t kOps = 8;
    {
        auto kv = open(config());
        ASSERT_NE(kv, nullptr);
        for (std::uint64_t k = 1; k <= kOps; k++) {
            ASSERT_TRUE(kv->put(k, k * 11).hasValue());
        }
        EXPECT_TRUE(kv->stopPersist().isOk());
    }
    const std::string log = dir_ + "/shard0-000000.log";
    const std::vector<std::uint8_t> pristine = readFileBytes(log);
    ASSERT_EQ(pristine.size(), kOps * persist::kOpRecordSize);

    const std::size_t base = (kOps - 1) * persist::kOpRecordSize;
    for (std::size_t cut = 0; cut < persist::kOpRecordSize; cut++) {
        SCOPED_TRACE("cut=" + std::to_string(cut));
        std::vector<std::uint8_t> torn(pristine.begin(),
                                       pristine.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               base + cut));
        ASSERT_TRUE(writeFileBytes(log, torn));

        persist::RecoveryReport rep;
        auto kv = open(config(), &rep);
        ASSERT_NE(kv, nullptr);
        ASSERT_EQ(rep.shards.size(), 1u);
        const persist::ShardRecovery& sr = rep.shards[0];
        EXPECT_EQ(sr.logRecords, kOps - 1);
        EXPECT_EQ(sr.replayed, kOps - 1);
        EXPECT_EQ(sr.salvagedBytes, cut);
        if (cut == 0) {
            // A clean record boundary is not a torn tail.
            EXPECT_TRUE(sr.warnings.empty());
        } else {
            EXPECT_FALSE(sr.warnings.empty());
        }

        // Everything before the tear survives bit-identically; the
        // torn record is gone, never a crash or a half-applied op.
        for (std::uint64_t k = 1; k < kOps; k++) {
            EXPECT_EQ(kv->get(k), std::optional<std::uint64_t>(k * 11));
        }
        EXPECT_EQ(kv->get(kOps), std::nullopt);
        EXPECT_TRUE(kv->stopPersist().isOk());
        kv.reset();

        // Salvage truncated the file back to the last whole record.
        EXPECT_EQ(readFileBytes(log).size(), base);
        // Restore for the next iteration (recovery re-opened the
        // tier, which may have appended nothing but keeps the file).
        ASSERT_TRUE(writeFileBytes(log, pristine));
    }
}

// ---------------------------------------------------------------------
// Seqno gaps: drop evidence with exact offsets, never fatal.

TEST_F(PersistTest, SeqnoGapReportedWithExactOffset)
{
    {
        auto kv = open(config());
        ASSERT_NE(kv, nullptr);
        ASSERT_TRUE(kv->put(1, 100).hasValue()); // seq 1
        ASSERT_TRUE(kv->put(2, 200).hasValue()); // seq 2
        EXPECT_TRUE(kv->stopPersist().isOk());
    }
    // Append seq 5 by hand: seqs 3 and 4 were "dropped".
    std::vector<std::uint8_t> rec;
    persist::OpRecord r;
    r.seqno = 5;
    r.kind = persist::OpKind::Put;
    r.key = 777;
    r.value = 888;
    persist::encodeOpRecord(rec, r);
    {
        std::FILE* f =
            std::fopen((dir_ + "/shard0-000000.log").c_str(), "ab");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(rec.data(), 1, rec.size(), f),
                  rec.size());
        std::fclose(f);
    }

    persist::RecoveryReport rep;
    auto kv = open(config(), &rep);
    ASSERT_NE(kv, nullptr);
    ASSERT_EQ(rep.shards.size(), 1u);
    const persist::ShardRecovery& sr = rep.shards[0];
    EXPECT_EQ(sr.replayed, 3u);
    ASSERT_EQ(sr.gaps.size(), 1u);
    EXPECT_EQ(sr.gaps[0].prevSeqno, 2u);
    EXPECT_EQ(sr.gaps[0].nextSeqno, 5u);
    EXPECT_EQ(sr.gaps[0].byteOffset, 2 * persist::kOpRecordSize);
    EXPECT_EQ(sr.droppedRecords, 2u);
    EXPECT_EQ(kv->get(777), std::optional<std::uint64_t>(888));

    // The tier resumes after the high-water mark, not the gap.
    ASSERT_TRUE(kv->put(9, 900).hasValue());
    EXPECT_EQ(kv->persistTier()->lastSeqno(0), 6u);
}

TEST_F(PersistTest, EvictRecordReplaysAsEraseNoResurrection)
{
    {
        auto kv = open(config());
        ASSERT_NE(kv, nullptr);
        ASSERT_TRUE(kv->put(42, 4242).hasValue()); // seq 1
        EXPECT_TRUE(kv->stopPersist().isOk());
    }
    std::vector<std::uint8_t> rec;
    persist::OpRecord r;
    r.seqno = 2;
    r.kind = persist::OpKind::Evict;
    r.key = 42;
    persist::encodeOpRecord(rec, r);
    {
        std::FILE* f =
            std::fopen((dir_ + "/shard0-000000.log").c_str(), "ab");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(rec.data(), 1, rec.size(), f),
                  rec.size());
        std::fclose(f);
    }
    auto kv = open(config());
    ASSERT_NE(kv, nullptr);
    EXPECT_EQ(kv->get(42), std::nullopt)
        << "an evicted key resurrected through recovery";
}

// ---------------------------------------------------------------------
// MANIFEST identity.

TEST_F(PersistTest, ManifestMismatchRefusesRecovery)
{
    {
        auto kv = open(config());
        ASSERT_NE(kv, nullptr);
        ASSERT_TRUE(kv->put(1, 1).hasValue());
        EXPECT_TRUE(kv->stopPersist().isOk());
    }
    ZkvConfig other = config();
    other.array.seed = 0xdead; // different store identity
    auto store_or = ZkvStore::create(other);
    ASSERT_FALSE(store_or.hasValue());
    EXPECT_EQ(store_or.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(store_or.status().message().find("MANIFEST"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Fault sites (docs/robustness.md): structured errors, never crashes.

TEST_F(PersistTest, AppendFaultFailsAckedWritesStickily)
{
    auto kv = open(config(persist::FsyncPolicy::Always));
    ASSERT_NE(kv, nullptr);
    ASSERT_TRUE(kv->put(1, 1).hasValue());

    ScopedFault fault("persist.append");
    auto r = kv->put(2, 2);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.status().code(), ErrorCode::IoError);

    // Failure is sticky: the log is no longer trustworthy, so later
    // acked writes fail too even though the injected fault is done.
    auto r2 = kv->put(3, 3);
    ASSERT_FALSE(r2.hasValue());
    auto c = kv->persistTier()->counters(0);
    EXPECT_GE(c.appendErrors, 1u);
    EXPECT_FALSE(kv->stopPersist().isOk());
}

TEST_F(PersistTest, FsyncFaultFailsAckedWrites)
{
    auto kv = open(config(persist::FsyncPolicy::Always));
    ASSERT_NE(kv, nullptr);
    ScopedFault fault("persist.fsync");
    auto r = kv->put(1, 1);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.status().code(), ErrorCode::IoError);
    EXPECT_GE(kv->persistTier()->counters(0).fsyncErrors, 1u);
}

TEST_F(PersistTest, SnapshotFaultIsCountedAndRetryable)
{
    auto kv = open(config());
    ASSERT_NE(kv, nullptr);
    for (std::uint64_t k = 1; k <= 10; k++) {
        ASSERT_TRUE(kv->put(k, k).hasValue());
    }
    {
        ScopedFault fault("persist.snapshot");
        EXPECT_FALSE(kv->persistTier()->snapshotNow().isOk());
        EXPECT_GE(kv->persistTier()->counters(0).snapshotErrors, 1u);
    }
    // A failed snapshot keeps the log: the tier still recovers, and
    // the next attempt succeeds.
    EXPECT_TRUE(kv->persistTier()->snapshotNow().isOk());
    EXPECT_TRUE(kv->stopPersist().isOk());
}

TEST_F(PersistTest, RecoverFaultSurfacesStructured)
{
    auto store_or = ZkvStore::create(config());
    ASSERT_TRUE(store_or.hasValue());
    ScopedFault fault("persist.recover");
    auto rep = (*store_or)->recover();
    ASSERT_FALSE(rep.hasValue());
    EXPECT_EQ(rep.status().code(), ErrorCode::IoError);
}

// ---------------------------------------------------------------------
// Backpressure accounting: drops are counted, never silent.

TEST_F(PersistTest, DropBackpressureCountsEveryRecord)
{
    ZkvConfig cfg = config(persist::FsyncPolicy::Never);
    cfg.persist.backpressure = persist::Backpressure::Drop;
    cfg.persist.queueCap = 2;
    std::uint64_t logged = 0;
    {
        auto kv = open(cfg);
        ASSERT_NE(kv, nullptr);
        for (std::uint64_t k = 1; k <= 20000; k++) {
            auto r = kv->put(k % 512 + 1, k);
            ASSERT_TRUE(r.hasValue());
            logged += 1 + (r->evicted ? 1 : 0);
        }
        EXPECT_TRUE(kv->stopPersist().isOk());
        auto c = kv->persistTier()->counters(0);
        // Every op either reached the queue or was counted dropped —
        // nothing vanishes silently.
        EXPECT_EQ(c.enqueued + c.dropped, logged);
        EXPECT_EQ(c.appended, c.enqueued);
    }

    // Dropped records leave seqno gaps; recovery replays what
    // survived and reports the holes without failing.
    persist::RecoveryReport rep;
    auto kv = open(cfg, &rep);
    ASSERT_NE(kv, nullptr);
    ASSERT_EQ(rep.shards.size(), 1u);
    EXPECT_EQ(rep.shards[0].replayed + rep.shards[0].skipped,
              rep.shards[0].logRecords);
}

// ---------------------------------------------------------------------
// Persistence off by default, and on/off equivalence: the tier must
// not perturb eviction decisions.

TEST_F(PersistTest, PersistenceOffByDefault)
{
    ZkvConfig cfg;
    cfg.shards = 1;
    cfg.array.blocks = 64;
    auto store_or = ZkvStore::create(cfg);
    ASSERT_TRUE(store_or.hasValue());
    EXPECT_FALSE((*store_or)->persistEnabled());
    EXPECT_EQ((*store_or)->persistTier(), nullptr);
}

TEST_F(PersistTest, OnVsOffOpStreamsAreBitIdentical)
{
    // Small array so the stream genuinely evicts.
    ZkvConfig on = config(persist::FsyncPolicy::Never, /*blocks=*/64);
    ZkvConfig off = on;
    off.persist.dataDir.clear();

    auto kv_on = open(on);
    ASSERT_NE(kv_on, nullptr);
    auto off_or = ZkvStore::create(off);
    ASSERT_TRUE(off_or.hasValue());
    auto kv_off = std::move(*off_or);

    std::uint64_t state = 0x243f6a8885a308d3ULL;
    for (int i = 0; i < 5000; i++) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        std::uint64_t key = (state >> 33) % 512 + 1;
        if (state % 10 < 7) {
            auto a = kv_on->put(key, state);
            auto b = kv_off->put(key, state);
            ASSERT_TRUE(a.hasValue() && b.hasValue());
            EXPECT_EQ(a->inserted, b->inserted);
            EXPECT_EQ(a->evicted, b->evicted);
            EXPECT_EQ(a->evictedKey, b->evictedKey);
        } else if (state % 10 < 9) {
            EXPECT_EQ(kv_on->get(key), kv_off->get(key));
        } else {
            EXPECT_EQ(kv_on->erase(key), kv_off->erase(key));
        }
    }
    EXPECT_EQ(dump(*kv_on), dump(*kv_off));
    EXPECT_TRUE(kv_on->stopPersist().isOk());
}

// ---------------------------------------------------------------------
// The crash test: SIGKILL a child mid-load, recover in the parent,
// and demand read-your-writes for every write the child saw acked.

#if !defined(ZC_TSAN)
TEST_F(PersistTest, SigkillAckedWritesSurvive)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: ack writes one by one, reporting each DURABLE key
        // up the pipe only after its put returned (fsync=always: the
        // ack means the record is on disk). Killed mid-stream.
        ::close(fds[0]);
        ZkvConfig cfg;
        cfg.shards = 1;
        cfg.array.kind = ArrayKind::ZCache;
        cfg.array.blocks = 8192;
        cfg.array.ways = 4;
        cfg.array.levels = 2;
        cfg.array.policy = PolicyKind::Lru;
        cfg.array.seed = 0xbeef;
        cfg.persist.dataDir = dir_;
        cfg.persist.fsync = persist::FsyncPolicy::Always;
        auto store_or = ZkvStore::create(cfg);
        if (!store_or.hasValue()) ::_exit(10);
        if (!(*store_or)->recover().hasValue()) ::_exit(11);
        for (std::uint64_t k = 1; k <= 500; k++) {
            if (!(*store_or)->put(k, k * 31 + 7).hasValue()) {
                ::_exit(12);
            }
            if (::write(fds[1], &k, sizeof k) != sizeof k) {
                ::_exit(13);
            }
        }
        ::_exit(0); // finished before the parent got around to it
    }

    // Parent: collect acked keys until a healthy batch arrived, then
    // kill without warning.
    ::close(fds[1]);
    std::vector<std::uint64_t> acked;
    std::uint64_t k = 0;
    while (acked.size() < 300 &&
           ::read(fds[0], &k, sizeof k) == sizeof k) {
        acked.push_back(k);
    }
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ::close(fds[0]);
    ASSERT_FALSE(acked.empty()) << "child never acked a write";

    ZkvConfig cfg = config();
    cfg.array.blocks = 8192;
    persist::RecoveryReport rep;
    auto kv = open(cfg, &rep);
    ASSERT_NE(kv, nullptr);
    EXPECT_GE(rep.totalReplayed(), acked.size());

    // fsync=always: every write the child saw acked is recovered
    // bit-identically. A torn tail may legally drop the LAST,
    // un-acked record — never an acked one.
    for (std::uint64_t key : acked) {
        auto got = kv->get(key);
        ASSERT_TRUE(got.has_value())
            << "acked key " << key << " lost by the crash";
        EXPECT_EQ(*got, key * 31 + 7);
    }
}
#endif // !ZC_TSAN

} // namespace
} // namespace zc
