/**
 * @file
 * Tests of the throughput telemetry layer (common/perf_telemetry.hpp):
 * PerfMeter's harvesting of both stats-tree shapes (full CMP dumps and
 * array-level ablation dumps), the recursive walk-candidate sum, the
 * counters' presence in a StatsRegistry dump and its schema, and the
 * "perf" block's JSON shape that the CI gate and diff tooling key on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "common/perf_telemetry.hpp"
#include "common/stats_registry.hpp"

namespace zc {
namespace {

// A miniature CMP-shaped stats tree: system.instructions,
// system.l2.accesses, and walk groups nested under two banks.
JsonValue
cmpTree()
{
    JsonValue walk0 = JsonValue::object();
    walk0.set("candidates_total", JsonValue(std::uint64_t{100}));
    JsonValue walk1 = JsonValue::object();
    walk1.set("candidates_total", JsonValue(std::uint64_t{23}));
    JsonValue bank0 = JsonValue::object();
    bank0.set("walk", std::move(walk0));
    JsonValue bank1 = JsonValue::object();
    bank1.set("walk", std::move(walk1));
    JsonValue l2 = JsonValue::object();
    l2.set("accesses", JsonValue(std::uint64_t{5000}));
    l2.set("bank0", std::move(bank0));
    l2.set("bank1", std::move(bank1));
    JsonValue sys = JsonValue::object();
    sys.set("instructions", JsonValue(std::uint64_t{20000}));
    sys.set("l2", std::move(l2));
    JsonValue root = JsonValue::object();
    root.set("system", std::move(sys));
    return root;
}

// The ablation drivers' array-level shape: summary.accesses and a walk
// group directly under "array".
JsonValue
ablationTree()
{
    JsonValue walk = JsonValue::object();
    walk.set("candidates_total", JsonValue(std::uint64_t{77}));
    JsonValue arr = JsonValue::object();
    arr.set("walk", std::move(walk));
    JsonValue summary = JsonValue::object();
    summary.set("accesses", JsonValue(std::uint64_t{1234}));
    JsonValue root = JsonValue::object();
    root.set("summary", std::move(summary));
    root.set("array", std::move(arr));
    return root;
}

TEST(PerfMeter, HarvestsCmpShapedStats)
{
    PerfMeter m;
    m.addRun(cmpTree());
    EXPECT_EQ(m.runs(), 1u);
    EXPECT_EQ(m.instructions(), 20000u);
    EXPECT_EQ(m.accesses(), 5000u);
    EXPECT_EQ(m.walkCandidates(), 123u); // both banks summed
}

TEST(PerfMeter, HarvestsAblationShapedStats)
{
    PerfMeter m;
    m.addRun(ablationTree());
    EXPECT_EQ(m.instructions(), 0u); // shape has no instruction count
    EXPECT_EQ(m.accesses(), 1234u);
    EXPECT_EQ(m.walkCandidates(), 77u);
}

TEST(PerfMeter, AccumulatesAcrossRunsAndDirectCounts)
{
    PerfMeter m;
    m.addRun(cmpTree());
    m.addRun(cmpTree());
    m.addCounts(10, 20, 30);
    EXPECT_EQ(m.runs(), 2u);
    EXPECT_EQ(m.instructions(), 40010u);
    EXPECT_EQ(m.accesses(), 10020u);
    EXPECT_EQ(m.walkCandidates(), 276u);
}

TEST(PerfMeter, UnknownShapeContributesNothing)
{
    PerfMeter m;
    JsonValue junk = JsonValue::object();
    junk.set("whatever", JsonValue(std::uint64_t{9}));
    m.addRun(junk);
    EXPECT_EQ(m.runs(), 1u);
    EXPECT_EQ(m.accesses(), 0u);
    EXPECT_EQ(m.walkCandidates(), 0u);
}

TEST(PerfTelemetry, PeakRssIsNonzeroOnThisPlatform)
{
    EXPECT_GT(peakRssBytes(), 0u);
}

// The counters must show up in the stats tree a registry dumps, and in
// the schema (docs/observability.md): dashboards discover them there.
TEST(PerfTelemetry, CountersAppearInStatsTreeAndSchema)
{
    PerfMeter m;
    m.addRun(cmpTree());
    StatsRegistry reg;
    m.registerStats(reg.root().group("perf", "throughput telemetry"));

    JsonValue dump = reg.toJson();
    const JsonValue* perf = dump.find("perf");
    ASSERT_NE(perf, nullptr);
    ASSERT_TRUE(perf->isObject());
    for (const char* key :
         {"runs", "instructions_total", "sim_accesses_total",
          "walk_candidates_total", "wall_seconds", "instructions_per_sec",
          "sim_accesses_per_sec", "walk_candidates_per_sec",
          "peak_rss_bytes"}) {
        EXPECT_NE(perf->find(key), nullptr) << "dump missing " << key;
    }
    EXPECT_EQ(perf->find("sim_accesses_total")->asU64(), 5000u);
    EXPECT_EQ(perf->find("walk_candidates_total")->asU64(), 123u);
    EXPECT_GT(perf->find("peak_rss_bytes")->asU64(), 0u);

    JsonValue schema = reg.schema();
    std::string text = schema.str(2);
    for (const char* key :
         {"sim_accesses_per_sec", "walk_candidates_per_sec",
          "peak_rss_bytes", "wall_seconds"}) {
        EXPECT_NE(text.find(key), std::string::npos)
            << "schema missing " << key;
    }
}

// The JSON block drivers embed: same keys, sane values, rates strictly
// positive once any time has elapsed and work was metered.
TEST(PerfTelemetry, ToJsonShape)
{
    PerfMeter m;
    m.addRun(cmpTree());
    JsonValue perf = m.toJson();
    ASSERT_TRUE(perf.isObject());
    EXPECT_EQ(perf.find("runs")->asU64(), 1u);
    EXPECT_EQ(perf.find("instructions_total")->asU64(), 20000u);
    EXPECT_EQ(perf.find("sim_accesses_total")->asU64(), 5000u);
    EXPECT_GE(perf.find("wall_seconds")->asDouble(), 0.0);
    EXPECT_GT(perf.find("sim_accesses_per_sec")->asDouble(), 0.0);
}

} // namespace
} // namespace zc
