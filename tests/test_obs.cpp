/**
 * @file
 * Live-telemetry tests (docs/telemetry.md): the SPSC trace ring's
 * FIFO/overflow accounting (single-thread and producer/consumer under
 * the CI ThreadSanitizer job), the collector.overflow fault site's
 * deterministic drop counting, tracer end-to-end trace-file structure
 * and the recorded + dropped == ops reconciliation, the metrics
 * snapshotter's windows-partition-the-run exactness contract, the
 * Prometheus exposition shape, writeEpochSeries, the shared latency
 * bin scale, and the store's traced-path equivalence / disabled-mode
 * zero-event guarantees.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/json.hpp"
#include "common/stats.hpp"
#include "obs/latency_scale.hpp"
#include "obs/metrics.hpp"
#include "obs/spsc_ring.hpp"
#include "obs/trace_event.hpp"
#include "obs/tracer.hpp"
#include "store/loadgen.hpp"
#include "store/zkv.hpp"

namespace zc {
namespace {

std::string
tmpPath(const std::string& leaf)
{
    return ::testing::TempDir() + "zc_obs_" + leaf;
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<JsonValue>
parseNdjson(const std::string& path)
{
    std::vector<JsonValue> records;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        auto v = JsonValue::parse(line);
        EXPECT_TRUE(v.has_value()) << "bad NDJSON line: " << line;
        if (v) records.push_back(std::move(*v));
    }
    return records;
}

// ---------------------------------------------------------------------
// SpscRing.

TEST(SpscRing, CeilPow2)
{
    EXPECT_EQ(ceilPow2(1), 2u);
    EXPECT_EQ(ceilPow2(2), 2u);
    EXPECT_EQ(ceilPow2(3), 4u);
    EXPECT_EQ(ceilPow2(64), 64u);
    EXPECT_EQ(ceilPow2(65), 128u);
}

TEST(SpscRing, FifoOrderAcrossWraparound)
{
    SpscRing<int> ring(4); // capacity 4
    std::vector<int> out;
    int next = 0;
    // Push/pop in bursts so the indices wrap several times.
    for (int round = 0; round < 10; round++) {
        for (int i = 0; i < 3; i++) ASSERT_TRUE(ring.tryPush(next++));
        ring.popBatch(out, 3);
    }
    ASSERT_EQ(out.size(), 30u);
    for (int i = 0; i < 30; i++) EXPECT_EQ(out[i], i);
}

TEST(SpscRing, OverflowFailsExactlyPastCapacity)
{
    SpscRing<int> ring(8);
    for (int i = 0; i < 8; i++) EXPECT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(8));
    EXPECT_FALSE(ring.tryPush(9));
    EXPECT_EQ(ring.size(), 8u);

    std::vector<int> out;
    EXPECT_EQ(ring.popBatch(out, 3), 3u);
    EXPECT_TRUE(ring.tryPush(8)); // freed space is reusable
    EXPECT_EQ(ring.size(), 6u);
}

TEST(SpscRing, PopBatchHonoursMax)
{
    SpscRing<int> ring(16);
    for (int i = 0; i < 10; i++) ASSERT_TRUE(ring.tryPush(i));
    std::vector<int> out;
    EXPECT_EQ(ring.popBatch(out, 4), 4u);
    EXPECT_EQ(ring.popBatch(out, 100), 6u);
    EXPECT_EQ(ring.popBatch(out, 100), 0u);
    ASSERT_EQ(out.size(), 10u);
    EXPECT_EQ(out.front(), 0);
    EXPECT_EQ(out.back(), 9);
}

/**
 * The TSan target: one producer hammering tryPush while a consumer
 * drains. Every pushed item must come out exactly once, in order, and
 * pushed + dropped must equal the number produced.
 */
TEST(SpscRing, ConcurrentProducerConsumerLosesNothing)
{
    SpscRing<std::uint64_t> ring(64);
    constexpr std::uint64_t kOps = 200000;

    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kOps; i++) {
            if (ring.tryPush(i)) {
                ring.countPush();
            } else {
                ring.countDrop();
            }
        }
    });

    std::vector<std::uint64_t> got;
    std::uint64_t last = 0;
    bool monotone = true;
    while (true) {
        std::vector<std::uint64_t> batch;
        ring.popBatch(batch, 128);
        for (std::uint64_t v : batch) {
            if (!got.empty() && v <= last) monotone = false;
            last = v;
            got.push_back(v);
        }
        if (batch.empty() &&
            ring.pushed() + ring.dropped() == kOps &&
            got.size() == ring.pushed()) {
            // Producer may still be between tryPush and countPush;
            // only exit once the tallies and the drain agree.
            if (ring.size() == 0) break;
        }
        std::this_thread::yield();
    }
    producer.join();
    ring.popBatch(got, kOps); // anything raced in after the last check

    EXPECT_TRUE(monotone) << "items reordered";
    EXPECT_EQ(got.size(), ring.pushed());
    EXPECT_EQ(ring.pushed() + ring.dropped(), kOps);
    EXPECT_GT(got.size(), 0u);
}

// ---------------------------------------------------------------------
// collector.overflow fault site.

TEST(ObsChannel, CollectorOverflowFaultCountsExactDrops)
{
    ObsTracerConfig cfg; // count-only
    cfg.ringCapacity = 1 << 10;
    ObsTracer tracer(std::move(cfg));
    ObsThreadChannel* ch = tracer.registerThread("t0");

    FaultSpec spec;
    spec.afterHits = 5;
    spec.failCount = 3;
    ScopedFault fault("collector.overflow", spec);

    ObsOpRecord rec;
    int ok = 0, drop = 0;
    for (int i = 0; i < 20; i++) {
        if (ch->record(rec)) {
            ok++;
        } else {
            drop++;
        }
    }
    EXPECT_EQ(drop, 3);
    EXPECT_EQ(ok, 17);
    EXPECT_EQ(ch->dropped(), 3u);
    EXPECT_EQ(ch->pushed(), 17u);

    auto sum = tracer.finish(20);
    ASSERT_TRUE(sum.hasValue()) << sum.status().str();
    EXPECT_EQ(sum->recorded, 17u);
    EXPECT_EQ(sum->dropped, 3u);
    EXPECT_EQ(sum->recorded + sum->dropped, 20u);
}

// ---------------------------------------------------------------------
// ObsTracer end to end.

TEST(ObsTracer, WritesParseableTraceWithExactReconciliation)
{
    std::string path = tmpPath("trace.json");
    ObsTracerConfig cfg;
    cfg.path = path;
    ObsTracer tracer(std::move(cfg));

    constexpr int kThreads = 3;
    constexpr int kOpsPerThread = 500;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; t++) {
        workers.emplace_back([&tracer, t] {
            ObsThreadChannel* ch =
                tracer.registerThread("worker-" + std::to_string(t));
            for (int i = 0; i < kOpsPerThread; i++) {
                ObsOpRecord rec;
                rec.tsBeginNs = obsNowNs();
                rec.key = static_cast<std::uint64_t>(i);
                rec.durNs = 1000;
                rec.lockWaitNs = 100;
                rec.probeNs = 200;
                rec.op = i % 2 == 0 ? ObsOp::Get : ObsOp::Put;
                if (i % 7 == 0) {
                    rec.walkNs = 300;
                    rec.flags = kObsFlagInserted | kObsFlagEvicted;
                }
                ch->record(rec);
            }
        });
    }
    for (auto& w : workers) w.join();

    auto sum = tracer.finish(kThreads * kOpsPerThread);
    ASSERT_TRUE(sum.hasValue()) << sum.status().str();
    EXPECT_EQ(sum->threads, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(sum->recorded + sum->dropped,
              static_cast<std::uint64_t>(kThreads * kOpsPerThread));

    auto doc = JsonValue::parse(slurp(path));
    ASSERT_TRUE(doc.has_value()) << "trace is not valid JSON";
    const JsonValue* events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::uint64_t op_spans = 0, children = 0, instants = 0, meta = 0;
    for (const JsonValue& e : events->arr()) {
        const JsonValue* ph = e.find("ph");
        const JsonValue* name = e.find("name");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(name, nullptr);
        const std::string& n = name->asString();
        if (ph->asString() == "M") {
            meta++;
        } else if (ph->asString() == "i") {
            instants++;
        } else if (n == "get" || n == "put" || n == "erase") {
            op_spans++;
        } else {
            EXPECT_TRUE(n == "lock_wait" || n == "probe" || n == "walk")
                << "unexpected event name " << n;
            children++;
        }
    }
    EXPECT_EQ(op_spans, sum->recorded);
    EXPECT_GT(children, 0u);
    EXPECT_GT(instants, 0u); // the i%7 evictions
    EXPECT_GT(meta, 0u);     // process/thread names

    const JsonValue* other = doc->find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->find("ops_recorded")->asU64(), sum->recorded);
    EXPECT_EQ(other->find("ops_dropped")->asU64(), sum->dropped);
    EXPECT_EQ(other->find("ops_expected")->asU64(),
              static_cast<std::uint64_t>(kThreads * kOpsPerThread));

    // finish() is idempotent: same summary, no double-close.
    auto again = tracer.finish();
    ASSERT_TRUE(again.hasValue());
    EXPECT_EQ(again->recorded, sum->recorded);

    std::remove(path.c_str());
}

TEST(ObsTracer, CountOnlyModeWritesNoFile)
{
    ObsTracerConfig cfg; // path empty
    ObsTracer tracer(std::move(cfg));
    ObsThreadChannel* ch = tracer.channel();
    ObsOpRecord rec;
    for (int i = 0; i < 100; i++) ch->record(rec);
    auto sum = tracer.finish(100);
    ASSERT_TRUE(sum.hasValue());
    EXPECT_EQ(sum->recorded, 100u);
    EXPECT_EQ(sum->dropped, 0u);
    EXPECT_EQ(sum->threads, 1u);
}

// ---------------------------------------------------------------------
// Store integration: traced twins and the disabled-mode guarantee.

ZkvConfig
storeConfig()
{
    ZkvConfig cfg;
    cfg.shards = 2;
    cfg.array.kind = ArrayKind::ZCache;
    cfg.array.blocks = 256;
    cfg.array.ways = 4;
    cfg.array.levels = 2;
    cfg.array.policy = PolicyKind::Lru;
    cfg.array.seed = 0xbeef;
    return cfg;
}

TEST(ZkvObs, DisabledStoreEmitsZeroEvents)
{
    auto store = ZkvStore::create(storeConfig());
    ASSERT_TRUE(store.hasValue());
    ZkvStore& kv = **store;
    EXPECT_FALSE(kv.obsEnabled());

    for (std::uint64_t k = 0; k < 2000; k++) {
        (void)kv.put(k, k);
        (void)kv.get(k);
        if (k % 5 == 0) (void)kv.erase(k);
    }
    // No instrumented path ran: every obs counter is still zero.
    ZkvShardObs totals = kv.obsTotals();
    EXPECT_EQ(totals.lockAcquisitions, 0u);
    EXPECT_EQ(totals.opNs, 0u);
}

TEST(ZkvObs, TracedPathMatchesPlainPathObservably)
{
    auto plain = ZkvStore::create(storeConfig());
    auto traced = ZkvStore::create(storeConfig());
    ASSERT_TRUE(plain.hasValue());
    ASSERT_TRUE(traced.hasValue());

    ObsTracerConfig tc; // count-only
    ObsTracer tracer(std::move(tc));
    (*traced)->enableObs(&tracer);
    EXPECT_TRUE((*traced)->obsEnabled());

    // Same deterministic op sequence against both stores: every
    // observable result must agree op for op.
    std::uint64_t ops = 0;
    for (std::uint64_t i = 0; i < 4000; i++) {
        std::uint64_t k = (i * 2654435761u) % 1024;
        if (i % 3 == 0) {
            auto a = (*plain)->put(k, i);
            auto b = (*traced)->put(k, i);
            ASSERT_EQ(a.hasValue(), b.hasValue());
            if (a.hasValue()) {
                EXPECT_EQ(a->inserted, b->inserted);
                EXPECT_EQ(a->evicted, b->evicted);
            }
        } else if (i % 3 == 1) {
            EXPECT_EQ((*plain)->get(k), (*traced)->get(k));
        } else {
            EXPECT_EQ((*plain)->erase(k), (*traced)->erase(k));
        }
        ops++;
    }
    EXPECT_EQ((*plain)->size(), (*traced)->size());

    (*traced)->disableObs();
    EXPECT_FALSE((*traced)->obsEnabled());

    // The instrumented path really ran and recorded one record per op.
    ZkvShardObs totals = (*traced)->obsTotals();
    EXPECT_EQ(totals.lockAcquisitions, ops);
    auto sum = tracer.finish(ops);
    ASSERT_TRUE(sum.hasValue());
    EXPECT_EQ(sum->recorded + sum->dropped, ops);
}

// ---------------------------------------------------------------------
// MetricsSnapshotter.

TEST(MetricsSnapshotter, WindowsPartitionTheRunExactly)
{
    std::string nd = tmpPath("metrics.ndjson");
    std::string prom = tmpPath("metrics.prom");

    std::atomic<std::uint64_t> ops{0}, hits{0};
    MetricsSnapshotterConfig cfg;
    cfg.ndjsonPath = nd;
    cfg.promPath = prom;
    cfg.intervalMs = 20;
    MetricsSnapshotter snap(cfg, [&] {
        MetricsSample s;
        s.counters.emplace_back("ops",
                                ops.load(std::memory_order_relaxed));
        s.counters.emplace_back("gets",
                                ops.load(std::memory_order_relaxed));
        s.counters.emplace_back("get_hits",
                                hits.load(std::memory_order_relaxed));
        s.latencyBins.assign(64, 0);
        s.latencyBins[10] = ops.load(std::memory_order_relaxed);
        return s;
    });

    snap.start();
    for (int burst = 0; burst < 5; burst++) {
        for (int i = 0; i < 1000; i++) {
            ops.fetch_add(1, std::memory_order_relaxed);
            if (i % 2 == 0) hits.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    Status st = snap.stop();
    ASSERT_TRUE(st.isOk()) << st.str();
    EXPECT_GE(snap.windowsEmitted(), 1u);

    auto windows = parseNdjson(nd);
    ASSERT_EQ(windows.size(), snap.windowsEmitted());

    std::uint64_t d_sum = 0;
    bool saw_hit_rate = false;
    for (const JsonValue& w : windows) {
        const JsonValue* d = w.find("d_ops");
        ASSERT_NE(d, nullptr);
        d_sum += d->asU64();
        ASSERT_NE(w.find("ops_per_sec"), nullptr);
        ASSERT_NE(w.find("p50_ns"), nullptr);
        ASSERT_NE(w.find("p99_ns"), nullptr);
        // hit_rate is windowed: present iff the window saw gets.
        const JsonValue* hr = w.find("hit_rate");
        EXPECT_EQ(hr != nullptr, w.find("d_gets")->asU64() > 0);
        if (hr != nullptr) {
            saw_hit_rate = true;
            // Hits accrue on every other op; a window boundary can
            // split a pair, so windowed rates are only near 0.5.
            EXPECT_NEAR(hr->asDouble(), 0.5, 0.05);
        }
    }
    EXPECT_TRUE(saw_hit_rate);
    // Exactness: the d_* columns partition the run.
    EXPECT_EQ(d_sum, 5000u);
    EXPECT_EQ(windows.back().find("ops")->asU64(), 5000u);

    // Prometheus exposition: typed counters with the zkv_ prefix.
    std::string exposition = slurp(prom);
    EXPECT_NE(exposition.find("# TYPE zkv_ops_total counter"),
              std::string::npos);
    EXPECT_NE(exposition.find("zkv_ops_total 5000"), std::string::npos);

    // stop() is idempotent.
    EXPECT_TRUE(snap.stop().isOk());

    std::remove(nd.c_str());
    std::remove(prom.c_str());
}

// ---------------------------------------------------------------------
// writeEpochSeries.

TEST(EpochSeries, WritesTaggedRecordsAndAppends)
{
    std::string path = tmpPath("epochs.ndjson");

    JsonValue samples = JsonValue::array();
    for (int i = 0; i < 2; i++) {
        JsonValue s = JsonValue::object();
        s.set("instructions", JsonValue(std::uint64_t(1000 * (i + 1))));
        s.set("miss_rate", JsonValue(0.25));
        samples.push(std::move(s));
    }
    JsonValue tags = JsonValue::object();
    tags.set("workload", JsonValue(std::string("canneal")));

    Status st = writeEpochSeries(path, samples, tags);
    ASSERT_TRUE(st.isOk()) << st.str();
    auto recs = parseNdjson(path);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].find("epoch")->asU64(), 0u);
    EXPECT_EQ(recs[1].find("epoch")->asU64(), 1u);
    EXPECT_EQ(recs[0].find("workload")->asString(), "canneal");
    EXPECT_EQ(recs[1].find("instructions")->asU64(), 2000u);

    // Append mode extends; plain mode truncates.
    ASSERT_TRUE(writeEpochSeries(path, samples, tags, true).isOk());
    EXPECT_EQ(parseNdjson(path).size(), 4u);
    ASSERT_TRUE(writeEpochSeries(path, samples, tags).isOk());
    EXPECT_EQ(parseNdjson(path).size(), 2u);

    EXPECT_FALSE(
        writeEpochSeries(path, JsonValue(std::uint64_t{1}), tags).isOk());

    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Latency scale.

TEST(LatencyScale, BinIndexMatchesUnitHistogram)
{
    for (std::size_t bins : {32u, 64u, 128u}) {
        UnitHistogram h(bins);
        for (double ns : {0.0, 1.0, 99.0, 1e3, 5e4, 1e6, 1e9, 1e12}) {
            h.reset();
            h.record(latencyToUnit(ns));
            std::size_t idx = latencyBinIndex(ns, bins);
            ASSERT_LT(idx, bins);
            EXPECT_EQ(h.binCount(idx), 1u)
                << "ns=" << ns << " bins=" << bins << " idx=" << idx;
        }
    }
}

TEST(LatencyScale, QuantileInvertsScale)
{
    std::vector<std::uint64_t> counts(64, 0);
    counts[32] = 100; // all mass in one bin
    double p50 = binsQuantileNs(counts, 0.5);
    double p99 = binsQuantileNs(counts, 0.99);
    EXPECT_EQ(p50, p99); // single-bin mass: every quantile at its edge
    // Bin 32 of 64 covers log2(1+ns)/32 in [0.5, 0.515625]: right edge
    // is 2^16.5 - 1.
    EXPECT_NEAR(p50, std::exp2(16.5) - 1.0, 1.0);
    EXPECT_EQ(binsQuantileNs(std::vector<std::uint64_t>(64, 0), 0.5), 0.0);
}

// ---------------------------------------------------------------------
// Load-generator end to end.

TEST(ZkvObsLoadGen, ObsRunReconcilesAndWindowsSum)
{
    std::string trace = tmpPath("lg_trace.json");
    std::string nd = tmpPath("lg_metrics.ndjson");

    LoadGenConfig cfg;
    cfg.store = storeConfig();
    cfg.threads = 4;
    cfg.opsPerThread = 5000;
    cfg.seed = 7;
    cfg.workload = "canneal";
    cfg.obs.tracePath = trace;
    cfg.obs.metricsPath = nd;
    cfg.obs.metricsIntervalMs = 20;

    auto r = runLoadGen(cfg);
    ASSERT_TRUE(r.hasValue()) << r.status().str();

    const std::uint64_t total = 4u * 5000u;
    EXPECT_EQ(r->aggregate().ops, total);
    EXPECT_EQ(r->obsRecorded + r->obsDropped, total);
    EXPECT_EQ(r->obsThreads, 4u);
    EXPECT_GE(r->obsWindows, 1u);

    // Trace file parses and its otherData matches the result block.
    auto doc = JsonValue::parse(slurp(trace));
    ASSERT_TRUE(doc.has_value());
    const JsonValue* other = doc->find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->find("ops_recorded")->asU64(), r->obsRecorded);
    EXPECT_EQ(other->find("ops_expected")->asU64(), total);

    // Metrics windows partition the run.
    auto windows = parseNdjson(nd);
    ASSERT_EQ(windows.size(), r->obsWindows);
    std::uint64_t d_sum = 0;
    for (const JsonValue& w : windows) d_sum += w.find("d_ops")->asU64();
    EXPECT_EQ(d_sum, total);
    EXPECT_EQ(windows.back().find("ops")->asU64(), total);

    std::remove(trace.c_str());
    std::remove(nd.c_str());
}

TEST(ZkvObsLoadGen, DefaultRunStaysUninstrumented)
{
    LoadGenConfig cfg;
    cfg.store = storeConfig();
    cfg.threads = 1;
    cfg.opsPerThread = 2000;
    cfg.workload = "canneal";

    auto r = runLoadGen(cfg);
    ASSERT_TRUE(r.hasValue()) << r.status().str();
    EXPECT_EQ(r->obsRecorded, 0u);
    EXPECT_EQ(r->obsDropped, 0u);
    EXPECT_EQ(r->obsThreads, 0u);
    EXPECT_EQ(r->obsWindows, 0u);
}

TEST(ZkvObsLoadGen, InvalidObsConfigRejected)
{
    LoadGenConfig cfg;
    cfg.store = storeConfig();
    cfg.obs.enabled = true;
    cfg.obs.metricsIntervalMs = 0;
    auto r = runLoadGen(cfg);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument);
}

} // namespace
} // namespace zc
