/**
 * @file
 * Regression tests for defects found and fixed during development —
 * each one pins the failure mode so it cannot silently return.
 */

#include <gtest/gtest.h>

#include <set>

#include "assoc/eviction_tracker.hpp"
#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "cache/z_array.hpp"
#include "common/rng.hpp"
#include "hash/h3_hash.hpp"
#include "replacement/lru.hpp"
#include "sim/experiment.hpp"

namespace zc {
namespace {

/**
 * Regression: H3 members drawn fully at random can be rank-deficient
 * on the low address bits — in a 64-entry TLB two of four ways covered
 * only half their buckets, making a Z4/16 TLB *worse* than 4-way SA.
 * The identity component on the low output bits guarantees full
 * coverage for inputs varying only in low bits, for every seed.
 */
TEST(Regression, H3CoversAllBucketsOnLowBitInputs)
{
    for (std::uint64_t seed = 1; seed <= 40; seed++) {
        H3Hash h(16, seed);
        std::set<std::uint64_t> buckets;
        // Inputs share a high base and vary only in the low 7 bits —
        // the structure of a small hot page set.
        for (Addr low = 0; low < 128; low++) {
            buckets.insert(h.hash((Addr{1} << 26) + low));
        }
        EXPECT_EQ(buckets.size(), 16u) << "seed " << seed;
    }
}

/**
 * Same property must hold for every way of a family. (The guarantee
 * covers inputs whose low out_bits vary; sparser patterns — e.g. pure
 * stride-2 — fall back to the random high columns, as for any H3.)
 */
TEST(Regression, H3FamilyHasNoWeakWays)
{
    auto fam = makeHashFamily(HashKind::H3, 4, 16, 0x5eed);
    for (std::size_t w = 0; w < fam.size(); w++) {
        std::set<std::uint64_t> buckets;
        for (Addr low = 0; low < 128; low++) {
            buckets.insert(fam[w]->hash((Addr{1} << 30) + low));
        }
        EXPECT_EQ(buckets.size(), 16u) << "way " << w;
    }
}

/**
 * Regression: the eviction tracker required the whole array to be
 * valid before recording, so bit-select caches (whose sets fill
 * unevenly) produced zero samples in the Fig. 3a experiment.
 */
TEST(Regression, TrackerRecordsOnPartiallyFilledArrays)
{
    ArraySpec spec;
    spec.kind = ArrayKind::SetAssoc;
    spec.blocks = 256;
    spec.ways = 4;
    spec.hashKind = HashKind::BitSelect;
    spec.policy = PolicyKind::Lru;
    CacheModel m(makeArray(spec));
    EvictionPriorityTracker tracker(100);
    tracker.attach(m.array());
    // Every access lands in set 0: the array never fills globally, but
    // set-0 evictions are real replacement decisions.
    for (int i = 0; i < 2000; i++) {
        m.access(static_cast<Addr>(i % 16) * 64);
    }
    EXPECT_GT(tracker.samples(), 100u);
    EXPECT_LT(m.array().validCount(), m.array().numBlocks());
}

/**
 * Regression: next-use was annotated as an absolute per-core record
 * index, which is incomparable across cores and starved instruction
 * lines (kNoNextUse -> inclusive L1I thrash under OPT). Distances are
 * what the policy must receive.
 */
TEST(Regression, OptNextUseIsADistance)
{
    RunParams p;
    p.workload = "soplex";
    p.base.numCores = 2;
    p.base.l2SizeBytes = 512 * 1024;
    p.l2Spec.policy = PolicyKind::Opt;
    p.warmupInstr = 40000;
    p.measureInstr = 40000;
    RunResult opt = runExperiment(p);
    p.l2Spec.policy = PolicyKind::BucketedLru;
    RunResult lru = runExperiment(p);
    // With distances + finite code next-use, OPT must beat LRU here.
    EXPECT_LT(opt.mpki, lru.mpki);
}

/**
 * Regression: ZipfGenerator's per-line spatial-locality repeats and
 * calibrated weights keep baseline MPKIs in published ranges; a
 * one-access-per-line streaming model produced canneal at 195 MPKI.
 */
TEST(Regression, CannealMpkiInPublishedRange)
{
    RunParams p;
    p.workload = "canneal";
    p.l2Spec.kind = ArrayKind::SetAssoc;
    p.l2Spec.ways = 4;
    p.l2Spec.hashKind = HashKind::H3;
    p.l2Spec.policy = PolicyKind::BucketedLru;
    p.warmupInstr = 80000;
    p.measureInstr = 80000;
    RunResult r = runExperiment(p);
    EXPECT_GT(r.mpki, 5.0);
    EXPECT_LT(r.mpki, 50.0);
}

/**
 * Regression: walk-throttle token clocks must reset with the stats
 * (core cycles restart at zero after warmup); stale stamps starved the
 * buckets and throttled every walk regardless of window.
 */
TEST(Regression, ThrottleWindowsDifferentiateAfterWarmup)
{
    auto tag_ops = [](std::uint32_t window) {
        RunParams p;
        p.workload = "mcf";
        p.base.numCores = 4;
        p.base.l2SizeBytes = 1 << 20;
        p.base.walkThrottle = true;
        p.base.walkTokenWindow = window;
        p.l2Spec.kind = ArrayKind::ZCache;
        p.l2Spec.ways = 4;
        p.l2Spec.levels = 3;
        p.l2Spec.policy = PolicyKind::BucketedLru;
        p.warmupInstr = 50000;
        p.measureInstr = 50000;
        return runExperiment(p).tagPerBankCycle;
    };
    // A generous window must admit clearly more walk traffic than a
    // tight one — stale clocks would collapse them together.
    EXPECT_GT(tag_ops(64), tag_ops(4) * 1.5);
}

/**
 * Regression: runtime candidate caps (adaptive associativity) must
 * take effect immediately and be liftable again.
 */
TEST(Regression, SetMaxCandidatesIsLive)
{
    ZArrayConfig cfg;
    cfg.ways = 4;
    cfg.levels = 3;
    ZArray z(1024, cfg, std::make_unique<LruPolicy>(1024));
    AccessContext c;
    Pcg32 rng(1);
    while (z.validCount() < z.numBlocks()) {
        Addr a = rng.next64();
        if (z.probe(a) == kInvalidPos) z.insert(a, c);
    }

    auto insert_fresh = [&] {
        Addr a;
        do {
            a = rng.next64();
        } while (z.probe(a) != kInvalidPos);
        return z.insert(a, c);
    };

    z.setMaxCandidates(8);
    EXPECT_LE(insert_fresh().candidates, 8u);
    z.setMaxCandidates(0);
    EXPECT_GT(insert_fresh().candidates, 40u);
}

} // namespace
} // namespace zc
