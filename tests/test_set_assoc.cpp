/**
 * @file
 * Unit tests for SetAssociativeArray: lookup/insert/invalidate
 * semantics, set confinement, LRU interaction, hashing effects, and
 * traffic accounting.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cache/cache_model.hpp"
#include "cache/set_associative_array.hpp"
#include "hash/bit_select_hash.hpp"
#include "hash/h3_hash.hpp"
#include "replacement/lru.hpp"

namespace zc {
namespace {

std::unique_ptr<SetAssociativeArray>
makeSA(std::uint32_t blocks, std::uint32_t ways)
{
    return std::make_unique<SetAssociativeArray>(
        blocks, ways, std::make_unique<LruPolicy>(blocks),
        std::make_unique<BitSelectHash>(blocks / ways));
}

TEST(SetAssoc, MissThenHit)
{
    auto a = makeSA(64, 4);
    AccessContext c;
    EXPECT_EQ(a->access(100, c), kInvalidPos);
    a->insert(100, c);
    EXPECT_NE(a->access(100, c), kInvalidPos);
    EXPECT_EQ(a->validCount(), 1u);
}

TEST(SetAssoc, ProbeDoesNotTouchReplacement)
{
    auto a = makeSA(16, 4);
    AccessContext c;
    a->insert(1, c);
    a->insert(2, c);
    std::uint64_t tag_reads = a->stats().tagReads;
    EXPECT_NE(a->probe(1), kInvalidPos);
    EXPECT_EQ(a->probe(99), kInvalidPos);
    EXPECT_EQ(a->stats().tagReads, tag_reads); // no traffic counted
}

TEST(SetAssoc, EvictionWithinSetUsesLru)
{
    // 4 sets x 2 ways; addresses 0,4,8 all map to set 0.
    auto a = makeSA(8, 2);
    AccessContext c;
    a->insert(0, c);
    a->insert(4, c);
    a->access(0, c); // 0 is now MRU
    Replacement r = a->insert(8, c);
    EXPECT_EQ(r.evictedAddr, 4u);
    EXPECT_EQ(r.candidates, 2u);
    EXPECT_EQ(r.relocations, 0u);
}

TEST(SetAssoc, EmptyWayPreferredOverEviction)
{
    auto a = makeSA(8, 2);
    AccessContext c;
    a->insert(0, c);
    Replacement r = a->insert(4, c); // same set, one way still free
    EXPECT_FALSE(r.evictedValid());
    EXPECT_EQ(a->validCount(), 2u);
}

TEST(SetAssoc, ConflictingBlocksThrashSmallSet)
{
    // Classic conflict pattern: 3 blocks in a 2-way set always miss.
    CacheModel m(makeSA(8, 2));
    for (int round = 0; round < 50; round++) {
        for (Addr a : {0, 4, 8}) m.access(a);
    }
    // After the first round everything is a conflict miss under LRU.
    EXPECT_EQ(m.stats().hits, 0u);
}

TEST(SetAssoc, HashedIndexBreaksPathologicalStride)
{
    // Same 3-address working set, but H3-indexed: the three blocks
    // almost surely land in different sets and hit thereafter.
    auto arr = std::make_unique<SetAssociativeArray>(
        64, 2, std::make_unique<LruPolicy>(64),
        std::make_unique<H3Hash>(32, 1234));
    CacheModel m(std::move(arr));
    std::uint64_t last_round_hits = 0;
    for (int round = 0; round < 50; round++) {
        std::uint64_t before = m.stats().hits;
        for (Addr a : {0, 32, 64}) m.access(a);
        last_round_hits = m.stats().hits - before;
    }
    EXPECT_EQ(last_round_hits, 3u);
}

TEST(SetAssoc, InvalidateRemovesBlock)
{
    auto a = makeSA(16, 4);
    AccessContext c;
    a->insert(7, c);
    EXPECT_TRUE(a->invalidate(7));
    EXPECT_EQ(a->probe(7), kInvalidPos);
    EXPECT_FALSE(a->invalidate(7));
    EXPECT_EQ(a->validCount(), 0u);
}

TEST(SetAssoc, ForEachValidEnumeratesExactly)
{
    auto a = makeSA(16, 4);
    AccessContext c;
    std::set<Addr> inserted{3, 17, 33, 49};
    for (Addr x : inserted) a->insert(x, c);
    std::set<Addr> seen;
    a->forEachValid([&](BlockPos, Addr addr) { seen.insert(addr); });
    EXPECT_EQ(seen, inserted);
}

TEST(SetAssoc, LookupTrafficCountsAllWays)
{
    auto a = makeSA(64, 4);
    AccessContext c;
    a->access(5, c); // miss still reads the whole set
    EXPECT_EQ(a->stats().tagReads, 4u);
    a->insert(5, c);
    a->access(5, c);
    EXPECT_EQ(a->stats().tagReads, 8u);
    EXPECT_EQ(a->stats().dataReads, 1u); // only the hit reads data
}

TEST(SetAssoc, CandidatesEqualWays)
{
    // The structural property the paper breaks: R == W for set-assoc.
    for (std::uint32_t ways : {2u, 4u, 8u, 16u}) {
        auto a = makeSA(128, ways);
        AccessContext c;
        // Fill one set completely, then force a replacement in it.
        std::uint32_t sets = 128 / ways;
        for (std::uint32_t i = 0; i <= ways; i++) {
            Addr addr = static_cast<Addr>(i) * sets; // all map to set 0
            if (a->probe(addr) == kInvalidPos) a->insert(addr, c);
        }
        // The last insert replaced within a full set.
        // Re-insert one more conflicting block and check candidates.
        Replacement r = a->insert(static_cast<Addr>(ways + 1) * sets, c);
        EXPECT_EQ(r.candidates, ways);
    }
}

TEST(SetAssoc, RejectsMismatchedHashBuckets)
{
    EXPECT_DEATH(
        {
            SetAssociativeArray bad(64, 4, std::make_unique<LruPolicy>(64),
                                    std::make_unique<BitSelectHash>(64));
        },
        "buckets");
}

} // namespace
} // namespace zc
