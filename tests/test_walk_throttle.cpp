/**
 * @file
 * Tests for in-system walk-bandwidth throttling — Section III's "the
 * replacement process can be stopped early, simply resulting in a
 * worse replacement candidate", wired into the CMP's banks.
 */

#include <gtest/gtest.h>

#include "cache/z_array.hpp"
#include "sim/cmp_system.hpp"
#include "trace/workloads.hpp"

namespace zc {
namespace {

struct ThrottleResult
{
    double avgCandidates;
    std::uint64_t throttledWalks;
    std::uint64_t misses;
    std::uint64_t tagReads;
};

ThrottleResult
run(bool throttle, std::uint32_t window)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.l2SizeBytes = 512 * 1024;
    cfg.l2Banks = 4;
    cfg.l2Spec.kind = ArrayKind::ZCache;
    cfg.l2Spec.ways = 4;
    cfg.l2Spec.levels = 3; // Z4/52
    cfg.l2Spec.policy = PolicyKind::BucketedLru;
    cfg.walkThrottle = throttle;
    cfg.walkTokenWindow = window;

    CmpSystem sys(cfg);
    const auto& w = WorkloadRegistry::byName("lbm"); // miss-intensive
    std::vector<GeneratorPtr> gens;
    for (std::uint32_t c = 0; c < cfg.numCores; c++) {
        gens.push_back(
            WorkloadRegistry::makeCoreGenerator(w, c, cfg.numCores, 2));
    }
    sys.setGenerators(std::move(gens));
    sys.run(120000);

    ThrottleResult r{};
    std::uint64_t walks = 0, cands = 0;
    for (std::uint32_t b = 0; b < sys.numBanks(); b++) {
        auto& z = dynamic_cast<const ZArray&>(sys.bank(b));
        walks += z.walkStats().walks;
        cands += z.walkStats().candidatesTotal;
        r.tagReads += sys.bank(b).stats().tagReads;
    }
    r.avgCandidates =
        walks ? static_cast<double>(cands) / static_cast<double>(walks)
              : 0.0;
    r.throttledWalks = sys.stats().throttledWalks;
    r.misses = sys.stats().l2Misses;
    return r;
}

TEST(WalkThrottle, OffByDefaultWalksAreFull)
{
    ThrottleResult r = run(false, 0);
    EXPECT_EQ(r.throttledWalks, 0u);
    // Fill-phase walks absorb into empty slots after few candidates,
    // so the average sits below the nominal 52 even unthrottled.
    EXPECT_GT(r.avgCandidates, 25.0);
}

TEST(WalkThrottle, GenerousWindowRarelyThrottles)
{
    ThrottleResult full = run(false, 0);
    ThrottleResult r = run(true, 256);
    EXPECT_LT(static_cast<double>(r.throttledWalks),
              0.2 * static_cast<double>(r.misses));
    EXPECT_GT(r.avgCandidates, 0.9 * full.avgCandidates);
}

TEST(WalkThrottle, TightWindowTruncatesWalksAndSavesTagBandwidth)
{
    ThrottleResult full = run(false, 0);
    ThrottleResult tight = run(true, 4);
    EXPECT_GT(tight.throttledWalks, tight.misses / 4);
    EXPECT_LT(tight.avgCandidates, full.avgCandidates * 0.9);
    EXPECT_LT(tight.tagReads, full.tagReads);
    // The cost is bounded: a worse candidate, not a broken cache.
    EXPECT_LT(static_cast<double>(tight.misses),
              1.10 * static_cast<double>(full.misses));
}

TEST(WalkThrottle, StarvationDegradesToSkewNotBrokenness)
{
    // Even fully starved, every *evicting* replacement still examines
    // the W first-level candidates (the skew-associative floor —
    // asserted per-replacement in test_zarray); system-wide, the cost
    // is a bounded miss-rate increase, never a broken cache.
    ThrottleResult full = run(false, 0);
    ThrottleResult starved = run(true, 1);
    EXPECT_GE(starved.avgCandidates, 3.0);
    EXPECT_LT(static_cast<double>(starved.misses),
              1.15 * static_cast<double>(full.misses));
    EXPECT_LT(starved.tagReads, full.tagReads / 2)
        << "starved walks must save the bulk of walk bandwidth";
}

} // namespace
} // namespace zc
