/**
 * @file
 * Tests for the CMP simulator: L1 mechanics, coherence (MESI
 * simplifications), inclusion, latency accounting, and end-to-end runs
 * over the workload suite.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/cmp_system.hpp"
#include "sim/l1_cache.hpp"
#include "trace/future_use.hpp"
#include "trace/workloads.hpp"

namespace zc {
namespace {

// ---------------------------------------------------------------------
// L1Cache
// ---------------------------------------------------------------------

TEST(L1, MissThenHit)
{
    L1Cache l1(32 * 1024, 4, 64);
    EXPECT_EQ(l1.access(5, false), L1Cache::LineState::Invalid);
    l1.insert(5, L1Cache::LineState::Exclusive, false);
    EXPECT_EQ(l1.access(5, false), L1Cache::LineState::Exclusive);
}

TEST(L1, GeometryMatchesTableI)
{
    L1Cache l1(32 * 1024, 4, 64);
    EXPECT_EQ(l1.sets(), 128u);
    EXPECT_EQ(l1.ways(), 4u);
}

TEST(L1, LruEvictionWithinSet)
{
    L1Cache l1(4 * 64 * 2, 2, 64); // 4 sets, 2 ways
    // Set 0: lines 0, 4, 8.
    l1.insert(0, L1Cache::LineState::Exclusive, false);
    l1.insert(4, L1Cache::LineState::Exclusive, false);
    l1.access(0, false);
    auto v = l1.insert(8, L1Cache::LineState::Exclusive, false);
    ASSERT_TRUE(v.valid());
    EXPECT_EQ(v.addr, 4u);
}

TEST(L1, DirtyVictimReported)
{
    L1Cache l1(2 * 64 * 1, 1, 64); // direct-mapped, 2 sets
    l1.insert(0, L1Cache::LineState::Exclusive, true); // dirty store
    auto v = l1.insert(2, L1Cache::LineState::Exclusive, false); // same set
    ASSERT_TRUE(v.valid());
    EXPECT_EQ(v.addr, 0u);
    EXPECT_TRUE(v.dirty);
}

TEST(L1, StoreToSharedNeedsUpgrade)
{
    L1Cache l1(32 * 1024, 4, 64);
    l1.insert(9, L1Cache::LineState::Shared, false);
    EXPECT_EQ(l1.access(9, true), L1Cache::LineState::Shared);
    l1.markExclusive(9, true);
    EXPECT_EQ(l1.access(9, true), L1Cache::LineState::Exclusive);
}

TEST(L1, InvalidateReportsDirty)
{
    L1Cache l1(32 * 1024, 4, 64);
    l1.insert(3, L1Cache::LineState::Exclusive, true);
    auto r = l1.invalidate(3);
    EXPECT_TRUE(r.present);
    EXPECT_TRUE(r.dirty);
    EXPECT_EQ(l1.access(3, false), L1Cache::LineState::Invalid);
    EXPECT_FALSE(l1.invalidate(3).present);
}

TEST(L1, DowngradeClearsDirty)
{
    L1Cache l1(32 * 1024, 4, 64);
    l1.insert(3, L1Cache::LineState::Exclusive, true);
    EXPECT_TRUE(l1.downgrade(3));
    EXPECT_EQ(l1.access(3, false), L1Cache::LineState::Shared);
    EXPECT_FALSE(l1.downgrade(3)); // now clean
}

// ---------------------------------------------------------------------
// CmpSystem
// ---------------------------------------------------------------------

SystemConfig
smallConfig(ArrayKind kind = ArrayKind::ZCache, std::uint32_t cores = 4)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.l2SizeBytes = 1 << 20; // 1 MB to keep tests fast
    cfg.l2Banks = 4;
    cfg.l2Spec.kind = kind;
    cfg.l2Spec.ways = 4;
    cfg.l2Spec.levels = 2;
    cfg.l2Spec.policy = PolicyKind::BucketedLru;
    return cfg;
}

std::vector<GeneratorPtr>
gensFor(const std::string& workload, const SystemConfig& cfg,
        std::uint64_t seed = 1)
{
    const auto& w = WorkloadRegistry::byName(workload);
    std::vector<GeneratorPtr> gens;
    for (std::uint32_t c = 0; c < cfg.numCores; c++) {
        gens.push_back(WorkloadRegistry::makeCoreGenerator(
            w, c, cfg.numCores, seed));
    }
    return gens;
}

TEST(Cmp, RunsRequestedInstructions)
{
    SystemConfig cfg = smallConfig();
    CmpSystem sys(cfg);
    sys.setGenerators(gensFor("gcc", cfg));
    sys.run(20000);
    for (const auto& c : sys.stats().cores) {
        EXPECT_GE(c.instructions, 20000u);
        EXPECT_LT(c.instructions, 32000u); // overshoot < one record
        EXPECT_GE(c.cycles, c.instructions) << "IPC can never exceed 1";
    }
}

TEST(Cmp, CacheFriendlyWorkloadHasLowMpki)
{
    SystemConfig cfg = smallConfig();
    CmpSystem sys(cfg);
    sys.setGenerators(gensFor("blackscholes", cfg));
    sys.run(60000);
    sys.resetStats();
    sys.run(60000);
    EXPECT_LT(sys.stats().l2Mpki(), 1.0);
    EXPECT_GT(sys.stats().aggregateIpc(), 0.8 * cfg.numCores);
}

TEST(Cmp, MissIntensiveWorkloadHasHighMpki)
{
    SystemConfig cfg = smallConfig();
    CmpSystem sys(cfg);
    sys.setGenerators(gensFor("mcf", cfg));
    sys.run(30000);
    sys.resetStats();
    sys.run(30000);
    EXPECT_GT(sys.stats().l2Mpki(), 5.0);
    EXPECT_LT(sys.stats().aggregateIpc(), 0.6 * cfg.numCores);
}

TEST(Cmp, StatsAreInternallyConsistent)
{
    SystemConfig cfg = smallConfig();
    CmpSystem sys(cfg);
    sys.setGenerators(gensFor("soplex", cfg));
    sys.run(40000);
    const auto& s = sys.stats();
    EXPECT_EQ(s.l2Hits + s.l2Misses, s.l2Accesses);
    std::uint64_t l1d_misses = 0;
    for (const auto& c : s.cores) l1d_misses += c.l1dMisses;
    EXPECT_LE(s.l2Misses, s.l2Accesses);
    EXPECT_GE(s.l2Accesses, l1d_misses);
    EXPECT_GE(s.dramAccesses, s.l2Misses);
}

TEST(Cmp, DeterministicUnderSeed)
{
    auto run = [] {
        SystemConfig cfg = smallConfig();
        CmpSystem sys(cfg);
        sys.setGenerators(gensFor("canneal", cfg, 7));
        sys.run(20000);
        return std::make_tuple(sys.stats().l2Misses,
                               sys.stats().maxCycles(),
                               sys.stats().invalidations);
    };
    EXPECT_EQ(run(), run());
}

TEST(Cmp, CoherenceInvalidationsOccurOnSharedWorkloads)
{
    SystemConfig cfg = smallConfig();
    CmpSystem sys(cfg);
    sys.setGenerators(gensFor("canneal", cfg));
    sys.run(40000);
    EXPECT_GT(sys.stats().invalidations + sys.stats().upgrades +
                  sys.stats().downgrades,
              0u);
}

TEST(Cmp, NoCoherenceTrafficOnPrivateWorkloads)
{
    SystemConfig cfg = smallConfig();
    CmpSystem sys(cfg);
    sys.setGenerators(gensFor("gamess", cfg));
    sys.run(40000);
    EXPECT_EQ(sys.stats().invalidations, 0u);
    EXPECT_EQ(sys.stats().downgrades, 0u);
}

TEST(Cmp, HigherBankLatencyLowersIpc)
{
    // The Fig. 4 mechanism: same array behaviour, more hit latency.
    auto ipc_for_ways = [](std::uint32_t ways) {
        SystemConfig cfg = smallConfig(ArrayKind::SetAssoc);
        cfg.l2Spec.ways = ways;
        cfg.l2Spec.hashKind = HashKind::H3;
        CmpSystem sys(cfg);
        // gamess: hot set far larger than the L1 but well inside the
        // L2, so L2 hit latency dominates and extra ways cannot win
        // back misses.
        sys.setGenerators(gensFor("gamess", cfg));
        sys.run(40000);
        sys.resetStats();
        sys.run(40000);
        return sys.stats().aggregateIpc();
    };
    // 32-way pays 2 extra cycles per L2 hit vs 4-way.
    EXPECT_GT(ipc_for_ways(4), ipc_for_ways(32));
}

TEST(Cmp, ZcacheKeepsLowWayLatencyAtHighAssociativity)
{
    SystemConfig z = smallConfig(ArrayKind::ZCache);
    z.l2Spec.levels = 3; // Z4/52
    SystemConfig sa = smallConfig(ArrayKind::SetAssoc);
    sa.l2Spec.ways = 32;
    CmpSystem zs(z), ss(sa);
    EXPECT_LT(zs.bankLatencyCycles(), ss.bankLatencyCycles());
}

TEST(Cmp, EnergyEventsPopulated)
{
    SystemConfig cfg = smallConfig();
    CmpSystem sys(cfg);
    sys.setGenerators(gensFor("milc", cfg));
    sys.run(30000);
    EnergyEvents ev = sys.energyEvents();
    EXPECT_GT(ev.instructions, 0u);
    EXPECT_GT(ev.l1Accesses, ev.instructions / 20);
    EXPECT_GT(ev.l2TagReads, 0u);
    EXPECT_GT(ev.dramAccesses, 0u);
    EXPECT_EQ(ev.cycles, sys.stats().maxCycles());
}

TEST(Cmp, ZcacheWalksConsumeTagBandwidthOnly)
{
    // Section VI-D: the walk adds tag traffic, not data traffic.
    auto traffic = [](ArrayKind kind, std::uint32_t levels) {
        SystemConfig cfg = smallConfig(kind);
        cfg.l2SizeBytes = 256 * 1024; // small enough to fill and churn
        cfg.l2Spec.levels = levels;
        CmpSystem sys(cfg);
        sys.setGenerators(gensFor("lbm", cfg)); // streaming, miss heavy
        sys.run(150000);
        std::uint64_t tags = 0, data = 0;
        for (std::uint32_t b = 0; b < sys.numBanks(); b++) {
            tags += sys.bank(b).stats().tagReads;
            data += sys.bank(b).stats().dataReads +
                    sys.bank(b).stats().dataWrites;
        }
        return std::make_pair(tags, data);
    };
    auto [tag_z52, data_z52] = traffic(ArrayKind::ZCache, 3);
    auto [tag_z4, data_z4] = traffic(ArrayKind::SkewAssoc, 1);
    EXPECT_GT(tag_z52, tag_z4 * 3 / 2) << "walk should add tag reads";
    // ~1.4 relocations/miss add ~2.8 data ops to the ~2 of a plain
    // fill: data traffic grows a few-fold while candidates grow 13x.
    EXPECT_LT(data_z52, data_z4 * 4) << "data traffic must stay modest";
}

TEST(Cmp, OptOracleRunsEndToEnd)
{
    SystemConfig cfg = smallConfig();
    cfg.l2Spec.policy = PolicyKind::Opt;
    CmpSystem sys(cfg);

    const auto& w = WorkloadRegistry::byName("astar");
    std::vector<GeneratorPtr> gens;
    for (std::uint32_t c = 0; c < cfg.numCores; c++) {
        auto raw = WorkloadRegistry::makeCoreGenerator(w, c, cfg.numCores, 1);
        auto trace = recordTrace(*raw, 20000);
        FutureUseAnnotator::annotate(trace);
        gens.push_back(std::make_unique<ReplayGenerator>(std::move(trace)));
    }
    sys.setGenerators(std::move(gens));
    sys.run(15000); // < records available, annotated nextUse flows in
    EXPECT_GT(sys.stats().l2Accesses, 0u);
}

TEST(Cmp, OptBeatsLruOnMisses)
{
    auto misses_for = [](PolicyKind policy) {
        SystemConfig cfg = smallConfig();
        cfg.numCores = 2;
        cfg.l2SizeBytes = 512 * 1024;
        cfg.l2Spec.policy = policy;
        CmpSystem sys(cfg);
        // soplex: large Zipf hot set in the capacity-pressure regime,
        // where replacement quality decides misses. (A pure pointer
        // chase would defeat every policy equally.)
        const auto& w = WorkloadRegistry::byName("soplex");
        std::vector<GeneratorPtr> gens;
        for (std::uint32_t c = 0; c < cfg.numCores; c++) {
            auto raw =
                WorkloadRegistry::makeCoreGenerator(w, c, cfg.numCores, 1);
            auto trace = recordTrace(*raw, 120000);
            FutureUseAnnotator::annotate(trace);
            gens.push_back(
                std::make_unique<ReplayGenerator>(std::move(trace)));
        }
        sys.setGenerators(std::move(gens));
        // Long enough for several reuse generations: policy quality,
        // not cold misses, must dominate the difference.
        sys.run(400000);
        return sys.stats().l2Misses;
    };
    EXPECT_LT(misses_for(PolicyKind::Opt),
              misses_for(PolicyKind::BucketedLru));
}

} // namespace
} // namespace zc
