/**
 * @file
 * Equivalence proofs for the walk hot-path optimizations: the
 * epoch-stamped flat candidate dedup and the batched/devirtualized
 * WayIndexer must be *bit-identical* to the reference implementation
 * (per-way virtual hash() calls + std::unordered_set dedup) that
 * ZArrayConfig::referenceWalk preserves. Identity is checked at every
 * level a divergence could hide: per-access hit/miss and Replacement
 * fields, aggregate ZWalkStats, the walk-event trace (ring and
 * streaming summary), and the final tag-array contents — across every
 * hash kind, walk strategy, candidate cap and the Bloom repeat filter.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/array_factory.hpp"
#include "cache/z_array.hpp"
#include "common/rng.hpp"
#include "hash/hash_factory.hpp"
#include "hash/way_index.hpp"
#include "replacement/policy_factory.hpp"

namespace zc {
namespace {

constexpr std::uint32_t kBlocks = 1024; // 4 ways x 256 lines
constexpr std::uint64_t kFootprint = 4096;

std::unique_ptr<ZArray>
makeArray(ZArrayConfig cfg, bool reference, PolicyKind pk)
{
    cfg.referenceWalk = reference;
    return std::make_unique<ZArray>(kBlocks, cfg,
                                    makePolicy(pk, kBlocks, 99));
}

/**
 * Drive the optimized and reference arrays with the same stream and
 * require identical behaviour at every step and in every aggregate.
 */
void
expectEquivalent(const ZArrayConfig& cfg, PolicyKind pk, int accesses,
                 const std::string& label)
{
    auto fast = makeArray(cfg, false, pk);
    auto ref = makeArray(cfg, true, pk);
    Pcg32 rng(7);
    for (int i = 0; i < accesses; i++) {
        Addr a = rng.next64() % kFootprint;
        AccessContext ctx;
        ctx.lineAddr = a;
        BlockPos pf = fast->access(a, ctx);
        BlockPos pr = ref->access(a, ctx);
        ASSERT_EQ(pf, pr) << label << ": access " << i << " addr " << a;
        if (pf != kInvalidPos) continue;
        Replacement rf = fast->insert(a, ctx);
        Replacement rr = ref->insert(a, ctx);
        ASSERT_EQ(rf.evictedAddr, rr.evictedAddr)
            << label << ": access " << i;
        ASSERT_EQ(rf.victimPos, rr.victimPos) << label << ": access " << i;
        ASSERT_EQ(rf.candidates, rr.candidates)
            << label << ": access " << i;
        ASSERT_EQ(rf.relocations, rr.relocations)
            << label << ": access " << i;
    }

    const ZWalkStats& sf = fast->walkStats();
    const ZWalkStats& sr = ref->walkStats();
    EXPECT_EQ(sf.walks, sr.walks) << label;
    EXPECT_EQ(sf.candidatesTotal, sr.candidatesTotal) << label;
    EXPECT_EQ(sf.relocationsTotal, sr.relocationsTotal) << label;
    EXPECT_EQ(sf.repeatsTotal, sr.repeatsTotal) << label;
    EXPECT_EQ(sf.emptyAbsorbed, sr.emptyAbsorbed) << label;

    if (cfg.traceCapacity > 0) {
        const WalkTraceSummary& tf = fast->walkTraceSummary();
        const WalkTraceSummary& tr = ref->walkTraceSummary();
        EXPECT_EQ(tf.events, tr.events) << label;
        EXPECT_EQ(tf.hidden, tr.hidden) << label;
        EXPECT_EQ(tf.capped, tr.capped) << label;
        EXPECT_EQ(tf.emptyAbsorbed, tr.emptyAbsorbed) << label;
        EXPECT_EQ(tf.candidates.sum(), tr.candidates.sum()) << label;
        EXPECT_EQ(tf.victimDepth.sum(), tr.victimDepth.sum()) << label;
        EXPECT_EQ(tf.evictionRank.sum(), tr.evictionRank.sum()) << label;
        EXPECT_EQ(tf.latencyCycles.sum(), tr.latencyCycles.sum()) << label;

        auto ef = fast->walkTraceSnapshot();
        auto er = ref->walkTraceSnapshot();
        ASSERT_EQ(ef.size(), er.size()) << label;
        for (std::size_t i = 0; i < ef.size(); i++) {
            EXPECT_EQ(ef[i].candidates, er[i].candidates)
                << label << ": event " << i;
            EXPECT_EQ(ef[i].levels, er[i].levels) << label << ": event "
                                                  << i;
            EXPECT_EQ(ef[i].victimDepth, er[i].victimDepth)
                << label << ": event " << i;
            EXPECT_EQ(ef[i].evictionRank, er[i].evictionRank)
                << label << ": event " << i;
            EXPECT_EQ(ef[i].latencyCycles, er[i].latencyCycles)
                << label << ": event " << i;
            EXPECT_EQ(ef[i].emptyAbsorbed, er[i].emptyAbsorbed)
                << label << ": event " << i;
            EXPECT_EQ(ef[i].capped, er[i].capped)
                << label << ": event " << i;
            EXPECT_EQ(ef[i].hiddenUnderMissLatency,
                      er[i].hiddenUnderMissLatency)
                << label << ": event " << i;
        }
    }

    // Final array contents: same valid count and the same address at
    // every position.
    ASSERT_EQ(fast->validCount(), ref->validCount()) << label;
    for (BlockPos p = 0; p < kBlocks; p++) {
        ASSERT_EQ(fast->addrAt(p), ref->addrAt(p))
            << label << ": position " << p;
    }
}

std::string
comboLabel(HashKind hk, WalkStrategy ws, std::uint32_t cap, bool bloom)
{
    std::string s = hashKindName(hk);
    s += ws == WalkStrategy::Bfs   ? "/bfs"
         : ws == WalkStrategy::Dfs ? "/dfs"
                                   : "/hybrid";
    s += "/cap" + std::to_string(cap);
    if (bloom) s += "/bloom";
    return s;
}

// Every hash kind x every walk strategy, uncapped, trace on. Sha1 has
// no WayIndexer specialization and exercises the Generic fallback.
TEST(WalkEquivalence, AllHashKindsAllStrategies)
{
    for (HashKind hk : kAllHashKinds) {
        for (WalkStrategy ws :
             {WalkStrategy::Bfs, WalkStrategy::Dfs, WalkStrategy::Hybrid}) {
            ZArrayConfig cfg;
            cfg.ways = 4;
            cfg.levels = 3;
            cfg.strategy = ws;
            cfg.hashKind = hk;
            cfg.traceCapacity = 64;
            expectEquivalent(cfg, PolicyKind::Srrip, 4000,
                             comboLabel(hk, ws, 0, false));
        }
    }
}

// The early-stop cap changes which candidates exist at all, so the
// dedup rewrite must agree about *order* of discovery, not just the
// final set. A tight cap makes any ordering slip visible immediately.
TEST(WalkEquivalence, CandidateCaps)
{
    for (std::uint32_t cap : {6u, 16u}) {
        for (WalkStrategy ws :
             {WalkStrategy::Bfs, WalkStrategy::Hybrid}) {
            ZArrayConfig cfg;
            cfg.ways = 4;
            cfg.levels = 3;
            cfg.strategy = ws;
            cfg.maxCandidates = cap;
            cfg.traceCapacity = 64;
            expectEquivalent(cfg, PolicyKind::Srrip, 4000,
                             comboLabel(cfg.hashKind, ws, cap, false));
        }
    }
}

// The Bloom repeat filter marks nodes before dedup sees them; both
// paths must count repeats identically.
TEST(WalkEquivalence, BloomRepeatFilter)
{
    for (WalkStrategy ws : {WalkStrategy::Bfs, WalkStrategy::Dfs}) {
        ZArrayConfig cfg;
        cfg.ways = 4;
        cfg.levels = 3;
        cfg.strategy = ws;
        cfg.bloomRepeatFilter = true;
        cfg.traceCapacity = 64;
        expectEquivalent(cfg, PolicyKind::Lru, 4000,
                         comboLabel(cfg.hashKind, ws, 0, true));
    }
}

// L=1 (skew-associative degenerate) and a wider array: shapes at the
// edges of the walk-tree recurrence.
TEST(WalkEquivalence, DegenerateAndWideShapes)
{
    {
        ZArrayConfig cfg;
        cfg.ways = 4;
        cfg.levels = 1;
        cfg.traceCapacity = 32;
        expectEquivalent(cfg, PolicyKind::Lru, 3000, "h3/bfs/L1");
    }
    {
        ZArrayConfig cfg;
        cfg.ways = 8;
        cfg.levels = 2;
        cfg.traceCapacity = 32;
        expectEquivalent(cfg, PolicyKind::Srrip, 3000, "h3/bfs/W8L2");
    }
}

// ------------------------------------------- Compressed degeneration

/**
 * The compressed tier's no-op configuration must be *bit-identical* to
 * the plain zcache (docs/compression.md): with extraTagRatio=1 the tag
 * count matches, and with the null codec every stored size equals
 * lineBytes exactly, so the data budget (blocks x lineBytes) can never
 * be exceeded and makeSpace never fires. The SizeMirror decorator
 * forwards every ranking/notification call to the inner policy
 * untouched, so replacement decisions — and therefore the whole walk
 * event stream and final tag contents — must match position for
 * position. A divergence here means the decorator perturbed policy
 * state or the budget check fired spuriously.
 */
TEST(WalkEquivalence, CompressedNullCodecRatio1IsBitIdentical)
{
    for (PolicyKind pk : {PolicyKind::Lru, PolicyKind::Srrip}) {
        ArraySpec plain;
        plain.kind = ArrayKind::ZCache;
        plain.blocks = kBlocks;
        plain.ways = 4;
        plain.levels = 3;
        plain.policy = pk;
        plain.seed = 99;

        ArraySpec comp = plain;
        comp.kind = ArrayKind::CompressedZ;
        comp.extraTagRatio = 1;
        comp.codec = CodecKind::None;
        comp.lineBytes = 64;

        auto p = zc::makeArray(plain);
        auto c = zc::makeArray(comp);
        auto* pz = dynamic_cast<ZArray*>(p.get());
        auto* cz = dynamic_cast<CompressedZArray*>(c.get());
        ASSERT_NE(pz, nullptr);
        ASSERT_NE(cz, nullptr);

        Pcg32 rng(7);
        for (int i = 0; i < 6000; i++) {
            Addr a = rng.next64() % kFootprint;
            AccessContext ctx;
            ctx.lineAddr = a;
            BlockPos hp = p->access(a, ctx);
            BlockPos hc = c->access(a, ctx);
            ASSERT_EQ(hp, hc) << policyKindName(pk) << ": access " << i;
            if (hp != kInvalidPos) continue;
            Replacement rp = p->insert(a, ctx);
            Replacement rc = c->insert(a, ctx);
            ASSERT_EQ(rp.evictedAddr, rc.evictedAddr)
                << policyKindName(pk) << ": access " << i;
            ASSERT_EQ(rp.victimPos, rc.victimPos)
                << policyKindName(pk) << ": access " << i;
            ASSERT_EQ(rp.candidates, rc.candidates)
                << policyKindName(pk) << ": access " << i;
            ASSERT_EQ(rp.relocations, rc.relocations)
                << policyKindName(pk) << ": access " << i;
            ASSERT_EQ(rc.extraEvictions, 0u)
                << policyKindName(pk) << ": access " << i;
        }

        EXPECT_EQ(cz->sizeMirror().extraEvictions(), 0u);
        EXPECT_EQ(cz->sizeMirror().occupiedBytes(),
                  static_cast<std::uint64_t>(cz->validCount()) * 64);
        const ZWalkStats& sp = pz->walkStats();
        const ZWalkStats& sc = cz->walkStats();
        EXPECT_EQ(sp.walks, sc.walks);
        EXPECT_EQ(sp.candidatesTotal, sc.candidatesTotal);
        EXPECT_EQ(sp.relocationsTotal, sc.relocationsTotal);
        ASSERT_EQ(pz->validCount(), cz->validCount());
        for (BlockPos pos = 0; pos < kBlocks; pos++) {
            ASSERT_EQ(pz->addrAt(pos), cz->addrAt(pos))
                << policyKindName(pk) << ": position " << pos;
        }
    }
}

// ------------------------------------------------------- WayIndexer

// For every specializable kind, the indexer must (a) leave the virtual
// path, and (b) agree with the virtual hashes on every way for a large
// random address sample — including the batched positionsAll entry
// point the walk actually uses.
TEST(WayIndexer, MatchesVirtualHashesForEveryKind)
{
    const std::uint32_t ways = 4, lines = 256;
    for (HashKind hk : kAllHashKinds) {
        auto fam = makeHashFamily(hk, ways, lines, 0x5eed);
        WayIndexer idx(fam, lines);
        if (hk == HashKind::Sha1) {
            EXPECT_FALSE(idx.devirtualized());
            EXPECT_STREQ(idx.modeName(), "generic-virtual");
        } else {
            EXPECT_TRUE(idx.devirtualized()) << hashKindName(hk);
        }
        Pcg32 rng(11);
        std::vector<BlockPos> batched(ways);
        for (int i = 0; i < 20000; i++) {
            Addr a = rng.next64();
            idx.positionsAll(a, batched.data());
            for (std::uint32_t w = 0; w < ways; w++) {
                BlockPos want = static_cast<BlockPos>(
                    w * lines + fam[w]->hash(a));
                ASSERT_EQ(idx.position(w, a), want)
                    << hashKindName(hk) << " way " << w << " addr " << a;
                ASSERT_EQ(batched[w], want)
                    << hashKindName(hk) << " way " << w << " addr " << a;
            }
        }
    }
}

// A mixed family must stay on the virtual path — specializing on the
// first way's type would silently evaluate the wrong function.
TEST(WayIndexer, MixedFamilyFallsBackToGeneric)
{
    const std::uint32_t lines = 256;
    std::vector<HashPtr> fam;
    fam.push_back(makeHash(HashKind::H3, lines, 1));
    fam.push_back(makeHash(HashKind::FoldedXor, lines, 2));
    WayIndexer idx(fam, lines);
    EXPECT_FALSE(idx.devirtualized());
    Pcg32 rng(3);
    for (int i = 0; i < 1000; i++) {
        Addr a = rng.next64();
        for (std::uint32_t w = 0; w < 2; w++) {
            EXPECT_EQ(idx.position(w, a),
                      static_cast<BlockPos>(w * lines + fam[w]->hash(a)));
        }
    }
}

} // namespace
} // namespace zc
