/**
 * @file
 * Tests for Tree-PLRU and for the structural constraint the paper
 * states in Section II-A: set-ordering policies cannot serve skewed
 * designs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache_model.hpp"
#include "cache/set_associative_array.hpp"
#include "cache/z_array.hpp"
#include "common/rng.hpp"
#include "hash/bit_select_hash.hpp"
#include "replacement/lru.hpp"
#include "replacement/tree_plru.hpp"

namespace zc {
namespace {

AccessContext
ctx()
{
    return AccessContext{};
}

TEST(TreePlru, ReverseTouchOrderGivesExactLru)
{
    // Touching every way in an order that descends the tree leaves the
    // bits in the exact-LRU configuration: first-touched way 3 is the
    // victim.
    TreePlruPolicy p(4, 4); // one 4-way set
    for (BlockPos i : {3u, 2u, 1u, 0u}) p.onInsert(i, ctx());
    std::vector<BlockPos> cands{0, 1, 2, 3};
    EXPECT_EQ(p.select(cands), 3u);
}

TEST(TreePlru, MostRecentlyTouchedNeverSelected)
{
    // The one guarantee Tree-PLRU makes unconditionally: every node on
    // the last-touched way's path points away from it.
    TreePlruPolicy p(8, 8);
    for (BlockPos i = 0; i < 8; i++) p.onInsert(i, ctx());
    std::vector<BlockPos> cands{0, 1, 2, 3, 4, 5, 6, 7};
    Pcg32 rng(1);
    for (int i = 0; i < 200; i++) {
        BlockPos touched = rng.below(8);
        p.onHit(touched, ctx());
        EXPECT_NE(p.select(cands), touched);
    }
}

TEST(TreePlru, SelectionRotatesUnderRoundRobinTouches)
{
    TreePlruPolicy p(4, 4);
    for (BlockPos i = 0; i < 4; i++) p.onInsert(i, ctx());
    std::vector<BlockPos> cands{0, 1, 2, 3};
    std::set<BlockPos> victims;
    for (int round = 0; round < 4; round++) {
        BlockPos v = p.select(cands);
        victims.insert(v);
        p.onHit(v, ctx()); // touching the victim redirects the tree
    }
    EXPECT_GE(victims.size(), 3u) << "PLRU must spread victims";
}

TEST(TreePlru, RequiresAlignedCompleteSet)
{
    TreePlruPolicy p(16, 4);
    for (BlockPos i = 0; i < 16; i++) p.onInsert(i, ctx());
    std::vector<BlockPos> subset{0, 1, 2};
    EXPECT_DEATH(p.select(subset), "cands");
    std::vector<BlockPos> crossing{2, 3, 4, 5};
    EXPECT_DEATH(p.select(crossing), "cands");
}

TEST(TreePlru, CannotFollowRelocations)
{
    // The Section II-A constraint, as an executable fact: a zcache
    // relocation must trip Tree-PLRU's onMove.
    TreePlruPolicy p(16, 4);
    p.onInsert(0, ctx());
    EXPECT_DEATH(p.onMove(0, 7), "relocations");
}

TEST(TreePlru, WorksAsSetAssociativePolicy)
{
    // End-to-end on a real set-associative array, close to true LRU.
    auto run = [](auto policy) {
        SetAssociativeArray arr(256, 4, std::move(policy),
                                std::make_unique<BitSelectHash>(64));
        Pcg32 rng(5);
        AccessContext c;
        std::uint64_t hits = 0, accesses = 0;
        for (int i = 0; i < 60000; i++) {
            Addr a = rng.next64() % 1024;
            accesses++;
            if (arr.access(a, c) != kInvalidPos) {
                hits++;
            } else {
                arr.insert(a, c);
            }
        }
        return static_cast<double>(hits) / accesses;
    };
    double plru = run(std::make_unique<TreePlruPolicy>(256, 4));
    double lru = run(std::make_unique<LruPolicy>(256));
    EXPECT_NEAR(plru, lru, 0.02) << "PLRU approximates LRU";
}

} // namespace
} // namespace zc
