/**
 * @file
 * Tests for the replacement-process timing model against the paper's
 * Fig. 1g example and its Section III-B properties.
 */

#include <gtest/gtest.h>

#include "cache/walk_timeline.hpp"
#include "cache/z_array.hpp"

namespace zc {
namespace {

TEST(WalkTimeline, PaperExampleTwentyCycles)
{
    // Fig. 1g: 3 ways, 3 levels, 4-cycle tag reads, 2 relocations at
    // 4-cycle data slots: walk 12 cycles, total 20, hidden under the
    // 100-cycle memory fill.
    auto t = WalkTimelineModel::bfs(3, 3, 2, 4, 4);
    EXPECT_EQ(t.walkCycles, 12u);
    EXPECT_EQ(t.relocationCycles, 8u);
    EXPECT_EQ(t.totalCycles, 20u);
    EXPECT_TRUE(t.hiddenUnder(100));
}

TEST(WalkTimeline, MatchesZArrayStaticFormula)
{
    for (std::uint32_t w : {2u, 3u, 4u, 8u}) {
        for (std::uint32_t l : {1u, 2u, 3u}) {
            auto t = WalkTimelineModel::bfs(w, l, 0, 4, 4);
            EXPECT_EQ(t.walkCycles, ZArray::walkLatency(w, l, 4));
        }
    }
}

TEST(WalkTimeline, WideFansCoverTagLatency)
{
    // Once a level issues more accesses than the tag latency, the
    // level's duration is access-bound: W=5, levels of 1/4/16 accesses
    // vs 4-cycle tags -> 4 + 4 + 16.
    auto t = WalkTimelineModel::bfs(5, 3, 0, 4, 4);
    EXPECT_EQ(t.walkCycles, 24u);
}

TEST(WalkTimeline, TypicalLlcConfigsHideUnderMemory)
{
    // Table I: 200-cycle memory; Z4/16 and Z4/52 with 4-6 cycle arrays
    // must always complete in the shadow of the fill, even at maximum
    // relocation depth.
    for (std::uint32_t levels : {2u, 3u}) {
        auto t = WalkTimelineModel::bfs(4, levels, levels - 1, 6, 6);
        EXPECT_TRUE(t.hiddenUnder(200)) << "L=" << levels << " takes "
                                        << t.totalCycles;
    }
}

TEST(WalkTimeline, DfsSerializesTheWalk)
{
    // Same candidates, no pipelining: the Section III-D latency
    // argument for BFS.
    auto bfs = WalkTimelineModel::bfs(4, 3, 2, 4, 4);
    auto dfs = WalkTimelineModel::dfs(
        ZArray::nominalCandidates(4, 3), 12, 4, 4);
    EXPECT_GT(dfs.walkCycles, 5 * bfs.walkCycles);
    EXPECT_FALSE(dfs.hiddenUnder(100))
        << "a 52-candidate DFS cannot hide under a 100-cycle miss";
}

} // namespace
} // namespace zc
