/**
 * @file
 * Unit and property tests for src/hash.
 *
 * The parameterized suites sweep every hash kind over multiple bucket
 * counts, checking range, determinism and coarse uniformity — the
 * properties skew/zcache indexing depends on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "hash/bit_select_hash.hpp"
#include "hash/folded_xor_hash.hpp"
#include "hash/h3_hash.hpp"
#include "hash/hash_factory.hpp"
#include "hash/prime_modulo_hash.hpp"
#include "hash/strong_hash.hpp"

namespace zc {
namespace {

// ---------------------------------------------------------------------
// Parameterized: every kind x several bucket counts
// ---------------------------------------------------------------------

using HashCase = std::tuple<HashKind, std::uint64_t>;

class HashProperty : public ::testing::TestWithParam<HashCase>
{
};

TEST_P(HashProperty, InRange)
{
    auto [kind, buckets] = GetParam();
    auto h = makeHash(kind, buckets, 123);
    Pcg32 rng(7);
    for (int i = 0; i < 2000; i++) {
        EXPECT_LT(h->hash(rng.next64()), buckets);
    }
}

TEST_P(HashProperty, Deterministic)
{
    auto [kind, buckets] = GetParam();
    auto h1 = makeHash(kind, buckets, 77);
    auto h2 = makeHash(kind, buckets, 77);
    Pcg32 rng(8);
    for (int i = 0; i < 500; i++) {
        Addr a = rng.next64();
        EXPECT_EQ(h1->hash(a), h2->hash(a));
    }
}

TEST_P(HashProperty, RoughlyUniformOnRandomKeys)
{
    auto [kind, buckets] = GetParam();
    auto h = makeHash(kind, buckets, 5);
    Pcg32 rng(9);
    std::vector<std::uint64_t> counts(buckets, 0);
    const std::uint64_t draws = 200 * buckets;
    for (std::uint64_t i = 0; i < draws; i++) {
        counts[h->hash(rng.next64())]++;
    }
    // Chi-square-ish sanity: each bucket within 50% of expectation.
    // (PrimeModulo leaves buckets >= p empty by design.)
    std::uint64_t covered = 0;
    for (auto c : counts) {
        if (c > 0) covered++;
    }
    if (kind == HashKind::BitSelect || kind == HashKind::H3 ||
        kind == HashKind::Strong || kind == HashKind::FoldedXor) {
        EXPECT_EQ(covered, buckets);
        for (auto c : counts) {
            EXPECT_NEAR(static_cast<double>(c), 200.0, 100.0);
        }
    } else {
        EXPECT_GE(covered, buckets * 9 / 10);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, HashProperty,
    ::testing::Combine(::testing::Values(HashKind::BitSelect,
                                         HashKind::FoldedXor, HashKind::H3,
                                         HashKind::Strong),
                       ::testing::Values(std::uint64_t{16},
                                         std::uint64_t{256},
                                         std::uint64_t{4096})),
    [](const ::testing::TestParamInfo<HashCase>& info) {
        return std::string(hashKindName(std::get<0>(info.param))) + "_" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Kind-specific behaviour
// ---------------------------------------------------------------------

TEST(BitSelect, ExtractsLowBits)
{
    BitSelectHash h(256);
    EXPECT_EQ(h.hash(0x12345), 0x45u);
    EXPECT_EQ(h.hash(0xFF00), 0x00u);
}

TEST(BitSelect, StridedPatternCollides)
{
    // The pathological pattern: stride == buckets maps everything to
    // one bucket. This is exactly what hashing-based indexing avoids.
    BitSelectHash h(128);
    std::uint64_t first = h.hash(0);
    for (int i = 1; i < 100; i++) {
        EXPECT_EQ(h.hash(static_cast<Addr>(i) * 128), first);
    }
}

TEST(H3, SpreadsStridedPattern)
{
    H3Hash h(128, 42);
    std::vector<int> counts(128, 0);
    for (int i = 0; i < 1280; i++) {
        counts[h.hash(static_cast<Addr>(i) * 128)]++;
    }
    int max_bucket = 0;
    for (int c : counts) max_bucket = std::max(max_bucket, c);
    // Perfectly spread would be 10 per bucket; pathological is 1280.
    EXPECT_LT(max_bucket, 40);
}

TEST(H3, DistinctSeedsGiveDistinctFunctions)
{
    H3Hash h1(1024, 1), h2(1024, 2);
    Pcg32 rng(3);
    int same = 0;
    for (int i = 0; i < 2000; i++) {
        Addr a = rng.next64();
        if (h1.hash(a) == h2.hash(a)) same++;
    }
    // Expected collisions for independent functions: ~2000/1024 ~ 2.
    EXPECT_LT(same, 20);
}

TEST(H3, ZeroAddressMapsToZero)
{
    // H3 is linear over GF(2): hash(0) == 0 for every member.
    for (std::uint64_t seed : {1ULL, 99ULL, 0xabcULL}) {
        H3Hash h(512, seed);
        EXPECT_EQ(h.hash(0), 0u);
    }
}

TEST(H3, LinearOverXor)
{
    // Pairwise independence of H3 rests on GF(2) linearity:
    // hash(a ^ b) == hash(a) ^ hash(b).
    H3Hash h(4096, 17);
    Pcg32 rng(4);
    for (int i = 0; i < 500; i++) {
        Addr a = rng.next64(), b = rng.next64();
        EXPECT_EQ(h.hash(a ^ b), h.hash(a) ^ h.hash(b));
    }
}

TEST(FoldedXor, SaltChangesFunction)
{
    FoldedXorHash h1(256, 0), h2(256, 0x5a5a5a5a);
    int same = 0;
    Pcg32 rng(6);
    for (int i = 0; i < 1000; i++) {
        Addr a = rng.next64();
        if (h1.hash(a) == h2.hash(a)) same++;
    }
    EXPECT_LT(same, 30);
}

TEST(PrimeModulo, UsesLargestPrime)
{
    PrimeModuloHash h(1024);
    EXPECT_EQ(h.prime(), 1021u);
    EXPECT_EQ(PrimeModuloHash::largestPrimeAtMost(2), 2u);
    EXPECT_EQ(PrimeModuloHash::largestPrimeAtMost(3), 3u);
    EXPECT_EQ(PrimeModuloHash::largestPrimeAtMost(4), 3u);
    EXPECT_EQ(PrimeModuloHash::largestPrimeAtMost(100), 97u);
}

TEST(PrimeModulo, SpreadsPowerOfTwoStrides)
{
    PrimeModuloHash h(128); // p = 127
    std::vector<int> counts(128, 0);
    for (int i = 0; i < 1270; i++) {
        counts[h.hash(static_cast<Addr>(i) * 128)]++;
    }
    int max_bucket = 0;
    for (int c : counts) max_bucket = std::max(max_bucket, c);
    EXPECT_LT(max_bucket, 30);
}

TEST(HashFamily, PerWayFunctionsDiffer)
{
    auto fam = makeHashFamily(HashKind::H3, 4, 1024, 9);
    ASSERT_EQ(fam.size(), 4u);
    Pcg32 rng(10);
    for (std::size_t i = 0; i < fam.size(); i++) {
        for (std::size_t j = i + 1; j < fam.size(); j++) {
            int same = 0;
            Pcg32 r2(10);
            for (int k = 0; k < 1000; k++) {
                Addr a = r2.next64();
                if (fam[i]->hash(a) == fam[j]->hash(a)) same++;
            }
            EXPECT_LT(same, 20) << "ways " << i << " and " << j;
        }
    }
}

} // namespace
} // namespace zc
