/**
 * @file
 * Unit tests for src/common: RNG, bit utilities, statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace zc {
namespace {

// ---------------------------------------------------------------------
// Pcg32
// ---------------------------------------------------------------------

TEST(Pcg32, DeterministicUnderSeed)
{
    Pcg32 a(42), b(42);
    for (int i = 0; i < 1000; i++) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; i++) {
        if (a.next() == b.next()) same++;
    }
    EXPECT_LT(same, 5);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(7, 100), b(7, 200);
    int same = 0;
    for (int i = 0; i < 1000; i++) {
        if (a.next() == b.next()) same++;
    }
    EXPECT_LT(same, 5);
}

TEST(Pcg32, BelowIsInRange)
{
    Pcg32 rng(3);
    for (std::uint32_t bound : {1u, 2u, 3u, 7u, 100u, 12345u}) {
        for (int i = 0; i < 200; i++) {
            EXPECT_LT(rng.below(bound), bound);
        }
    }
}

TEST(Pcg32, BelowIsRoughlyUniform)
{
    Pcg32 rng(11);
    constexpr std::uint32_t kBound = 10;
    constexpr int kDraws = 100000;
    std::vector<int> counts(kBound, 0);
    for (int i = 0; i < kDraws; i++) counts[rng.below(kBound)]++;
    for (std::uint32_t v = 0; v < kBound; v++) {
        EXPECT_NEAR(counts[v], kDraws / kBound, kDraws / kBound * 0.1);
    }
}

TEST(Pcg32, UniformInUnitInterval)
{
    Pcg32 rng(5);
    double sum = 0.0;
    for (int i = 0; i < 100000; i++) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

// ---------------------------------------------------------------------
// bitops
// ---------------------------------------------------------------------

TEST(BitOps, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ULL << 63));
    EXPECT_FALSE(isPow2((1ULL << 63) + 1));
}

TEST(BitOps, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4), 2u);
    EXPECT_EQ(log2Floor(1023), 9u);
    EXPECT_EQ(log2Floor(1024), 10u);
}

TEST(BitOps, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
}

TEST(BitOps, RoundUpPow2)
{
    EXPECT_EQ(roundUpPow2(0), 1u);
    EXPECT_EQ(roundUpPow2(1), 1u);
    EXPECT_EQ(roundUpPow2(3), 4u);
    EXPECT_EQ(roundUpPow2(4), 4u);
    EXPECT_EQ(roundUpPow2(1000), 1024u);
}

TEST(BitOps, Bits)
{
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffu);
    EXPECT_EQ(bits(0xdeadbeef, 0, 4), 0xfu);
    EXPECT_EQ(bits(0xdeadbeef, 28, 4), 0xdu);
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
}

// ---------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------

TEST(UnitHistogram, CdfReachesOne)
{
    UnitHistogram h(10);
    for (int i = 0; i < 100; i++) h.record(i / 100.0);
    auto cdf = h.cdf();
    ASSERT_EQ(cdf.size(), 10u);
    EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
    // CDF must be nondecreasing.
    for (std::size_t i = 1; i < cdf.size(); i++) {
        EXPECT_GE(cdf[i], cdf[i - 1]);
    }
}

TEST(UnitHistogram, ClampsOutOfRange)
{
    UnitHistogram h(4);
    h.record(-0.5);
    h.record(1.5);
    EXPECT_EQ(h.samples(), 2u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(UnitHistogram, MeanApproximatesSampleMean)
{
    UnitHistogram h(100);
    Pcg32 rng(9);
    double acc = 0.0;
    for (int i = 0; i < 20000; i++) {
        double x = rng.uniform();
        h.record(x);
        acc += x;
    }
    EXPECT_NEAR(h.mean(), acc / 20000.0, 0.01);
}

TEST(UnitHistogram, NanSamplesAreDroppedNotClamped)
{
    // Regression: std::clamp on NaN is UB; record() must drop NaN
    // before clamping and keep the histogram untouched.
    UnitHistogram h(4);
    h.record(std::nan(""));
    h.record(-std::nan(""));
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.nanSamples(), 2u);
    for (std::size_t i = 0; i < h.bins(); i++) {
        EXPECT_EQ(h.binCount(i), 0u);
    }
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);

    // Finite samples still work afterwards, and reset clears the tally.
    h.record(0.5);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_EQ(h.nanSamples(), 2u);
    h.reset();
    EXPECT_EQ(h.nanSamples(), 0u);

    // Infinities are finite-comparable and clamp as before.
    h.record(std::numeric_limits<double>::infinity());
    h.record(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.samples(), 2u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(RunningStat, TracksMinMeanMax)
{
    RunningStat s;
    for (double v : {1.0, 2.0, 3.0, 4.0}) s.record(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStat, VarianceMatchesClosedForm)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.record(v);
    // Textbook population variance of this set is 4.
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStat, VarianceDegenerateCases)
{
    RunningStat s;
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    s.record(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.record(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, WelfordIsStableForLargeOffsets)
{
    // Naive sum-of-squares cancels catastrophically here; Welford must
    // recover the exact small variance on top of a 1e9 offset.
    RunningStat s;
    for (int i = 0; i < 10000; i++) {
        s.record(1e9 + (i % 2 ? 0.5 : -0.5));
    }
    EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(Geomean, MatchesClosedForm)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(KsDistance, ZeroForIdentical)
{
    std::vector<double> a{0.1, 0.5, 1.0};
    EXPECT_DOUBLE_EQ(ksDistance(a, a), 0.0);
}

TEST(KsDistance, MaxAbsoluteGap)
{
    std::vector<double> a{0.1, 0.5, 1.0};
    std::vector<double> b{0.3, 0.5, 1.0};
    EXPECT_NEAR(ksDistance(a, b), 0.2, 1e-12);
}

TEST(Quantile, Endpoints)
{
    std::vector<double> xs{3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
}

} // namespace
} // namespace zc
