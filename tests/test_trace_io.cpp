/**
 * @file
 * Round-trip and robustness tests for the binary trace format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/future_use.hpp"
#include "trace/trace_io.hpp"
#include "trace/workloads.hpp"

namespace zc {
namespace {

class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "zc_trace_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                ".trc";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(TraceIoTest, RoundTripPreservesEverything)
{
    const auto& w = WorkloadRegistry::byName("soplex");
    auto gen = WorkloadRegistry::makeCoreGenerator(w, 0, 32, 9);
    auto trace = recordTrace(*gen, 5000);
    FutureUseAnnotator::annotate(trace);

    TraceIo::write(path_, trace);
    auto back = TraceIo::read(path_);

    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); i++) {
        ASSERT_EQ(back[i].lineAddr, trace[i].lineAddr) << i;
        ASSERT_EQ(back[i].type, trace[i].type) << i;
        ASSERT_EQ(back[i].instGap, trace[i].instGap) << i;
        ASSERT_EQ(back[i].nextUse, trace[i].nextUse) << i;
    }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips)
{
    TraceIo::write(path_, {});
    EXPECT_TRUE(TraceIo::read(path_).empty());
}

TEST_F(TraceIoTest, LargeTraceCrossesChunkBoundaries)
{
    // > one 4096-record chunk, not a multiple of the chunk size.
    StridedGenerator gen(0, 1 << 20, 3);
    auto trace = recordTrace(gen, 10000);
    TraceIo::write(path_, trace);
    auto back = TraceIo::read(path_);
    ASSERT_EQ(back.size(), 10000u);
    EXPECT_EQ(back.front().lineAddr, trace.front().lineAddr);
    EXPECT_EQ(back.back().lineAddr, trace.back().lineAddr);
}

TEST_F(TraceIoTest, RejectsGarbage)
{
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a trace", f);
    std::fclose(f);
    EXPECT_DEATH(TraceIo::read(path_), "trace");
}

TEST_F(TraceIoTest, RejectsMissingFile)
{
    EXPECT_DEATH(TraceIo::read("/nonexistent/zc.trc"), "trace");
}

TEST_F(TraceIoTest, ReplaysThroughGenerator)
{
    StridedGenerator gen(100, 64, 1);
    auto trace = recordTrace(gen, 200);
    TraceIo::write(path_, trace);
    ReplayGenerator replay(TraceIo::read(path_));
    for (int i = 0; i < 200; i++) {
        EXPECT_EQ(replay.next().lineAddr,
                  static_cast<Addr>(100 + i % 64));
    }
}

} // namespace
} // namespace zc
