/**
 * @file
 * Round-trip and robustness tests for the binary trace format (v2:
 * record-count header + CRC-32 footer; structured errors instead of
 * process exits). The deeper corruption / fault-injection matrix lives
 * in tests/test_faults.cpp.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/future_use.hpp"
#include "trace/trace_io.hpp"
#include "trace/workloads.hpp"

namespace zc {
namespace {

class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "zc_trace_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                ".trc";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(TraceIoTest, RoundTripPreservesEverything)
{
    const auto& w = WorkloadRegistry::byName("soplex");
    auto gen = WorkloadRegistry::makeCoreGenerator(w, 0, 32, 9);
    auto trace = recordTrace(*gen, 5000);
    FutureUseAnnotator::annotate(trace);

    ASSERT_TRUE(TraceIo::write(path_, trace).isOk());
    auto back = TraceIo::read(path_);
    ASSERT_TRUE(back.hasValue()) << back.status().str();

    ASSERT_EQ(back->size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); i++) {
        ASSERT_EQ((*back)[i].lineAddr, trace[i].lineAddr) << i;
        ASSERT_EQ((*back)[i].type, trace[i].type) << i;
        ASSERT_EQ((*back)[i].instGap, trace[i].instGap) << i;
        ASSERT_EQ((*back)[i].nextUse, trace[i].nextUse) << i;
    }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips)
{
    ASSERT_TRUE(TraceIo::write(path_, {}).isOk());
    auto back = TraceIo::read(path_);
    ASSERT_TRUE(back.hasValue()) << back.status().str();
    EXPECT_TRUE(back->empty());
}

TEST_F(TraceIoTest, LargeTraceCrossesChunkBoundaries)
{
    // > one 4096-record chunk, not a multiple of the chunk size.
    StridedGenerator gen(0, 1 << 20, 3);
    auto trace = recordTrace(gen, 10000);
    ASSERT_TRUE(TraceIo::write(path_, trace).isOk());
    auto back = TraceIo::read(path_);
    ASSERT_TRUE(back.hasValue()) << back.status().str();
    ASSERT_EQ(back->size(), 10000u);
    EXPECT_EQ(back->front().lineAddr, trace.front().lineAddr);
    EXPECT_EQ(back->back().lineAddr, trace.back().lineAddr);
}

TEST_F(TraceIoTest, RejectsGarbageWithStructuredError)
{
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a trace, padded past the header size", f);
    std::fclose(f);
    auto back = TraceIo::read(path_);
    ASSERT_FALSE(back.hasValue());
    EXPECT_EQ(back.status().code(), ErrorCode::Corruption);
    EXPECT_NE(back.status().message().find(path_), std::string::npos);
    EXPECT_NE(back.status().message().find("magic"), std::string::npos);
}

TEST_F(TraceIoTest, RejectsMissingFile)
{
    auto back = TraceIo::read("/nonexistent/zc.trc");
    ASSERT_FALSE(back.hasValue());
    EXPECT_EQ(back.status().code(), ErrorCode::IoError);
    EXPECT_NE(back.status().message().find("/nonexistent/zc.trc"),
              std::string::npos);
}

TEST_F(TraceIoTest, ReportsUnwritablePath)
{
    Status s = TraceIo::write("/nonexistent-dir/zc.trc", {});
    EXPECT_EQ(s.code(), ErrorCode::IoError);
    EXPECT_NE(s.message().find("/nonexistent-dir/zc.trc"),
              std::string::npos);
}

TEST_F(TraceIoTest, ReplaysThroughGenerator)
{
    StridedGenerator gen(100, 64, 1);
    auto trace = recordTrace(gen, 200);
    ASSERT_TRUE(TraceIo::write(path_, trace).isOk());
    auto back = TraceIo::read(path_);
    ASSERT_TRUE(back.hasValue()) << back.status().str();
    ReplayGenerator replay(std::move(back).valueOrThrow());
    for (int i = 0; i < 200; i++) {
        EXPECT_EQ(replay.next().lineAddr,
                  static_cast<Addr>(100 + i % 64));
    }
}

} // namespace
} // namespace zc
