/**
 * @file
 * Round-trip and robustness tests for the binary trace format (v2:
 * record-count header + CRC-32 footer; structured errors instead of
 * process exits). The deeper corruption / fault-injection matrix lives
 * in tests/test_faults.cpp.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/future_use.hpp"
#include "trace/trace_io.hpp"
#include "trace/workloads.hpp"

namespace zc {
namespace {

class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "zc_trace_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                ".trc";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(TraceIoTest, RoundTripPreservesEverything)
{
    const auto& w = WorkloadRegistry::byName("soplex");
    auto gen = WorkloadRegistry::makeCoreGenerator(w, 0, 32, 9);
    auto trace = recordTrace(*gen, 5000);
    FutureUseAnnotator::annotate(trace);

    ASSERT_TRUE(TraceIo::write(path_, trace).isOk());
    auto back = TraceIo::read(path_);
    ASSERT_TRUE(back.hasValue()) << back.status().str();

    ASSERT_EQ(back->size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); i++) {
        ASSERT_EQ((*back)[i].lineAddr, trace[i].lineAddr) << i;
        ASSERT_EQ((*back)[i].type, trace[i].type) << i;
        ASSERT_EQ((*back)[i].instGap, trace[i].instGap) << i;
        ASSERT_EQ((*back)[i].nextUse, trace[i].nextUse) << i;
    }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips)
{
    ASSERT_TRUE(TraceIo::write(path_, {}).isOk());
    auto back = TraceIo::read(path_);
    ASSERT_TRUE(back.hasValue()) << back.status().str();
    EXPECT_TRUE(back->empty());
}

TEST_F(TraceIoTest, LargeTraceCrossesChunkBoundaries)
{
    // > one 4096-record chunk, not a multiple of the chunk size.
    StridedGenerator gen(0, 1 << 20, 3);
    auto trace = recordTrace(gen, 10000);
    ASSERT_TRUE(TraceIo::write(path_, trace).isOk());
    auto back = TraceIo::read(path_);
    ASSERT_TRUE(back.hasValue()) << back.status().str();
    ASSERT_EQ(back->size(), 10000u);
    EXPECT_EQ(back->front().lineAddr, trace.front().lineAddr);
    EXPECT_EQ(back->back().lineAddr, trace.back().lineAddr);
}

TEST_F(TraceIoTest, RejectsGarbageWithStructuredError)
{
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a trace, padded past the header size", f);
    std::fclose(f);
    auto back = TraceIo::read(path_);
    ASSERT_FALSE(back.hasValue());
    EXPECT_EQ(back.status().code(), ErrorCode::Corruption);
    EXPECT_NE(back.status().message().find(path_), std::string::npos);
    EXPECT_NE(back.status().message().find("magic"), std::string::npos);
}

TEST_F(TraceIoTest, RejectsMissingFile)
{
    auto back = TraceIo::read("/nonexistent/zc.trc");
    ASSERT_FALSE(back.hasValue());
    EXPECT_EQ(back.status().code(), ErrorCode::IoError);
    EXPECT_NE(back.status().message().find("/nonexistent/zc.trc"),
              std::string::npos);
}

TEST_F(TraceIoTest, ReportsUnwritablePath)
{
    Status s = TraceIo::write("/nonexistent-dir/zc.trc", {});
    EXPECT_EQ(s.code(), ErrorCode::IoError);
    EXPECT_NE(s.message().find("/nonexistent-dir/zc.trc"),
              std::string::npos);
}

TEST_F(TraceIoTest, StreamingReaderMatchesMaterializedRead)
{
    // > one chunk so refills are exercised, not a multiple of 4096.
    const auto& w = WorkloadRegistry::byName("soplex");
    auto gen = WorkloadRegistry::makeCoreGenerator(w, 0, 32, 9);
    auto trace = recordTrace(*gen, 9000);
    ASSERT_TRUE(TraceIo::write(path_, trace).isOk());

    TraceReader reader;
    ASSERT_TRUE(reader.open(path_).isOk());
    EXPECT_EQ(reader.count(), trace.size());
    MemRecord r;
    std::size_t i = 0;
    for (;;) {
        auto got = reader.next(r);
        ASSERT_TRUE(got.hasValue()) << got.status().str();
        if (!*got) break;
        ASSERT_LT(i, trace.size());
        ASSERT_EQ(r.lineAddr, trace[i].lineAddr) << i;
        ASSERT_EQ(r.type, trace[i].type) << i;
        ASSERT_EQ(r.instGap, trace[i].instGap) << i;
        ASSERT_EQ(r.nextUse, trace[i].nextUse) << i;
        i++;
    }
    EXPECT_EQ(i, trace.size());
    EXPECT_EQ(reader.consumed(), trace.size());
}

TEST_F(TraceIoTest, StreamingReaderCatchesCorruptionAtEndOfStream)
{
    StridedGenerator gen(0, 1 << 16, 5);
    auto trace = recordTrace(gen, 500);
    ASSERT_TRUE(TraceIo::write(path_, trace).isOk());
    // Flip one payload byte mid-file. Streaming validates the CRC at
    // end-of-stream (it cannot know earlier without reading ahead), so
    // records flow until the footer, where the error must surface.
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 16 + 24 * 100 + 3, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);

    TraceReader reader;
    ASSERT_TRUE(reader.open(path_).isOk());
    MemRecord r;
    Status err = Status::ok();
    for (;;) {
        auto got = reader.next(r);
        if (!got.hasValue()) {
            err = got.status();
            break;
        }
        ASSERT_TRUE(*got) << "clean EOF despite bit corruption";
    }
    EXPECT_EQ(err.code(), ErrorCode::Corruption);
    EXPECT_NE(err.message().find("CRC-32 mismatch"), std::string::npos);
}

TEST_F(TraceIoTest, StreamedGeneratorReplaysAndReportsExhaustion)
{
    StridedGenerator gen(100, 64, 1);
    auto trace = recordTrace(gen, 200);
    ASSERT_TRUE(TraceIo::write(path_, trace).isOk());

    StreamedTraceGenerator streamed(path_);
    EXPECT_EQ(streamed.count(), 200u);
    for (int i = 0; i < 200; i++) {
        EXPECT_EQ(streamed.next().lineAddr,
                  static_cast<Addr>(100 + i % 64));
    }
    EXPECT_EQ(streamed.consumed(), 200u);
    // Asking for more than the trace holds is a caller error with a
    // structured message, not an infinite loop or a silent wrap.
    try {
        streamed.next();
        FAIL() << "expected StatusError on stream exhaustion";
    } catch (const StatusError& e) {
        EXPECT_NE(std::string(e.what()).find("exhausted"),
                  std::string::npos);
    }
}

TEST_F(TraceIoTest, StreamedGeneratorRejectsMissingFile)
{
    EXPECT_THROW(StreamedTraceGenerator("/nonexistent/zc.trc"),
                 StatusError);
}

TEST_F(TraceIoTest, ReplaysThroughGenerator)
{
    StridedGenerator gen(100, 64, 1);
    auto trace = recordTrace(gen, 200);
    ASSERT_TRUE(TraceIo::write(path_, trace).isOk());
    auto back = TraceIo::read(path_);
    ASSERT_TRUE(back.hasValue()) << back.status().str();
    ReplayGenerator replay(std::move(back).valueOrThrow());
    for (int i = 0; i < 200; i++) {
        EXPECT_EQ(replay.next().lineAddr,
                  static_cast<Addr>(100 + i % 64));
    }
}

} // namespace
} // namespace zc
