/**
 * @file
 * Tests for VWayArray — Section II-B's tag-indirection baseline.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "assoc/eviction_tracker.hpp"
#include "assoc/uniformity.hpp"
#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "cache/vway_array.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "hash/h3_hash.hpp"
#include "replacement/lru.hpp"

namespace zc {
namespace {

std::unique_ptr<VWayArray>
makeVWay(std::uint32_t data_blocks, std::uint32_t tag_ratio,
         std::uint32_t tag_ways, std::uint32_t sample)
{
    std::uint32_t tag_sets = data_blocks * tag_ratio / tag_ways;
    return std::make_unique<VWayArray>(
        data_blocks, tag_ratio, tag_ways, sample,
        std::make_unique<LruPolicy>(data_blocks),
        std::make_unique<H3Hash>(tag_sets, 11));
}

TEST(VWay, MissThenHit)
{
    auto a = makeVWay(64, 2, 4, 8);
    AccessContext c;
    EXPECT_EQ(a->access(9, c), kInvalidPos);
    a->insert(9, c);
    EXPECT_NE(a->access(9, c), kInvalidPos);
    EXPECT_EQ(a->validCount(), 1u);
    EXPECT_EQ(a->tagEntries(), 128u);
}

TEST(VWay, GlobalReplacementAfterDataFull)
{
    auto a = makeVWay(32, 2, 4, 8);
    AccessContext c;
    Pcg32 rng(1);
    std::set<Addr> resident;
    for (int i = 0; i < 3000; i++) {
        Addr addr = rng.next64() % 256;
        if (a->access(addr, c) != kInvalidPos) continue;
        Replacement r = a->insert(addr, c);
        if (r.evictedValid()) {
            EXPECT_TRUE(resident.count(r.evictedAddr));
            resident.erase(r.evictedAddr);
        }
        resident.insert(addr);
        ASSERT_LE(a->validCount(), 32u);
    }
    EXPECT_EQ(a->validCount(), 32u);
    std::set<Addr> seen;
    a->forEachValid([&](BlockPos, Addr addr) {
        EXPECT_TRUE(seen.insert(addr).second);
    });
    EXPECT_EQ(seen, resident);
}

TEST(VWay, TagConflictsRareWithDoubleTags)
{
    // The design goal: with 2x tags, almost every replacement is a
    // global data replacement, not a set-conflict eviction.
    CacheModel m(makeVWay(256, 2, 8, 16));
    Pcg32 rng(2);
    for (int i = 0; i < 40000; i++) m.access(rng.next64() % 2048);
    auto& v = dynamic_cast<VWayArray&>(m.array());
    EXPECT_LT(static_cast<double>(v.tagConflictEvictions()) /
                  static_cast<double>(m.stats().evictions),
              0.05);
}

TEST(VWay, TagConflictStillCorrect)
{
    // Force tag conflicts with ratio 1 and tiny ways: behaviour must
    // degrade to set-associative-like, never corrupt.
    auto a = makeVWay(16, 1, 2, 4);
    AccessContext c;
    Pcg32 rng(3);
    std::set<Addr> resident;
    for (int i = 0; i < 4000; i++) {
        Addr addr = rng.next64() % 128;
        if (a->access(addr, c) != kInvalidPos) continue;
        Replacement r = a->insert(addr, c);
        if (r.evictedValid()) resident.erase(r.evictedAddr);
        resident.insert(addr);
    }
    auto& v = *a;
    EXPECT_GT(v.tagConflictEvictions(), 0u);
    std::set<Addr> seen;
    v.forEachValid([&](BlockPos, Addr addr) {
        EXPECT_TRUE(seen.insert(addr).second);
    });
    EXPECT_EQ(seen, resident);
}

TEST(VWay, InvalidateFreesDataBlock)
{
    auto a = makeVWay(16, 2, 4, 4);
    AccessContext c;
    a->insert(1, c);
    a->insert(2, c);
    EXPECT_TRUE(a->invalidate(1));
    EXPECT_EQ(a->probe(1), kInvalidPos);
    EXPECT_EQ(a->validCount(), 1u);
    EXPECT_FALSE(a->invalidate(1));
}

TEST(VWay, SampledGlobalReplacementNearsUniformity)
{
    // With n random global candidates the V-Way behaves like the
    // Section IV-B random-candidates cache: its associativity
    // distribution should track x^n.
    CacheModel m(makeVWay(512, 2, 8, 16));
    EvictionPriorityTracker tracker(100);
    tracker.attach(m.array());
    Pcg32 rng(4);
    for (int i = 0; i < 120000; i++) m.access(rng.next64() % 4096);
    ASSERT_GT(tracker.samples(), 5000u);
    EXPECT_LT(ksDistance(tracker.cdf(), uniformityCdf(16, 100)), 0.05);
}

TEST(VWay, FactoryBuilds)
{
    ArraySpec spec;
    spec.kind = ArrayKind::VWay;
    spec.blocks = 128;
    spec.ways = 8;       // tag ways
    spec.tagRatio = 2;
    spec.candidates = 16;
    auto arr = makeArray(spec);
    EXPECT_EQ(arr->numBlocks(), 128u);
    EXPECT_NE(arr->name().find("VWay"), std::string::npos);
    EXPECT_EQ(spec.label(), "VWay8/16");
}

} // namespace
} // namespace zc
