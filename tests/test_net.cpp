/**
 * @file
 * Networked-zkv tests (docs/server.md): wire-protocol round trips for
 * every (type, direction, crc) combination; exact structured error
 * codes for truncated, corrupt, oversized and unknown-type frames;
 * streaming decode over split byte windows; an end-to-end localhost
 * server whose read-your-writes view matches a direct ZkvStore built
 * from the identical config; pipelined per-connection ordering;
 * graceful-drain delivery of in-flight responses; and the net.* fault
 * sites (docs/robustness.md) surfacing as structured failures, not
 * crashes.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "net/client.hpp"
#include "net/openloop.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "store/zkv.hpp"

namespace zc::net {
namespace {

ZkvConfig
tinyStore(std::uint32_t shards = 4, std::uint32_t blocks = 64)
{
    ZkvConfig cfg;
    cfg.shards = shards;
    cfg.array.kind = ArrayKind::ZCache;
    cfg.array.blocks = blocks;
    cfg.array.ways = 4;
    cfg.array.levels = 2;
    cfg.array.policy = PolicyKind::Lru;
    cfg.array.seed = 0xbeef;
    return cfg;
}

/** A live server on an ephemeral port with its loop on its own thread. */
class ServerFixture
{
  public:
    explicit ServerFixture(ZkvServerConfig cfg = {})
    {
        if (cfg.store.array.blocks == 0) cfg.store = tinyStore();
        cfg.port = 0;
        auto s = ZkvServer::create(cfg);
        EXPECT_TRUE(s.hasValue()) << s.status().str();
        server_ = std::move(*s);
        loop_ = std::thread([this] { serveStatus_ = server_->serve(); });
    }

    ~ServerFixture()
    {
        stop();
    }

    void
    stop()
    {
        if (loop_.joinable()) {
            server_->shutdown();
            loop_.join();
            EXPECT_TRUE(serveStatus_.isOk()) << serveStatus_.str();
        }
    }

    std::unique_ptr<ZkvClient>
    client(bool crc = false)
    {
        ZkvClientConfig c;
        c.port = server_->port();
        c.crc = crc;
        auto cl = ZkvClient::connect(c);
        EXPECT_TRUE(cl.hasValue()) << cl.status().str();
        return std::move(*cl);
    }

    ZkvServer& server() { return *server_; }

  private:
    std::unique_ptr<ZkvServer> server_;
    std::thread loop_;
    Status serveStatus_;
};

// ---------------------------------------------------------------------
// Protocol: encode/decode round trips.

TEST(NetProtocol, RequestRoundTripAllTypesAndCrc)
{
    Pcg32 rng(7, 7);
    for (auto type : {MsgType::Get, MsgType::Put, MsgType::Erase,
                      MsgType::Ping}) {
        for (bool crc : {false, true}) {
            for (int i = 0; i < 64; i++) {
                Request req;
                req.type = type;
                req.id = rng.next64();
                req.key = rng.next64();
                if (type == MsgType::Put) req.value = rng.next64();
                req.crc = crc;

                std::vector<std::uint8_t> buf;
                encodeRequest(req, buf);

                Request got;
                auto n = decodeRequest(buf.data(), buf.size(), &got);
                ASSERT_TRUE(n.hasValue()) << n.status().str();
                EXPECT_EQ(*n, buf.size());
                EXPECT_EQ(got.type, req.type);
                EXPECT_EQ(got.id, req.id);
                if (type != MsgType::Ping) {
                    EXPECT_EQ(got.key, req.key);
                }
                if (type == MsgType::Put) {
                    EXPECT_EQ(got.value, req.value);
                }
                EXPECT_EQ(got.crc, crc);
            }
        }
    }
}

TEST(NetProtocol, ResponseRoundTripAllShapes)
{
    Pcg32 rng(11, 3);
    for (auto type : {MsgType::Get, MsgType::Put, MsgType::Erase,
                      MsgType::Ping}) {
        for (bool crc : {false, true}) {
            for (int i = 0; i < 64; i++) {
                Response resp;
                resp.type = type;
                resp.id = rng.next64();
                resp.status = ErrorCode::Ok;
                resp.rflags = static_cast<std::uint8_t>(rng.next64() & 7);
                if (type == MsgType::Get) resp.value = rng.next64();
                if (type == MsgType::Put) {
                    resp.candidates =
                        static_cast<std::uint32_t>(rng.next64());
                    resp.relocations =
                        static_cast<std::uint32_t>(rng.next64());
                    resp.evictedKey = rng.next64();
                    resp.evictedValue = rng.next64();
                }
                resp.crc = crc;

                std::vector<std::uint8_t> buf;
                encodeResponse(resp, buf);

                Response got;
                auto n = decodeResponse(buf.data(), buf.size(), &got);
                ASSERT_TRUE(n.hasValue()) << n.status().str();
                EXPECT_EQ(*n, buf.size());
                EXPECT_EQ(got.type, resp.type);
                EXPECT_EQ(got.id, resp.id);
                EXPECT_EQ(got.status, resp.status);
                EXPECT_EQ(got.rflags, resp.rflags);
                EXPECT_EQ(got.value, resp.value);
                EXPECT_EQ(got.candidates, resp.candidates);
                EXPECT_EQ(got.relocations, resp.relocations);
                EXPECT_EQ(got.evictedKey, resp.evictedKey);
                EXPECT_EQ(got.evictedValue, resp.evictedValue);
                EXPECT_EQ(got.crc, crc);
            }
        }
    }
}

TEST(NetProtocol, ErrorResponseCarriesStatusByte)
{
    Response resp;
    resp.type = MsgType::Put;
    resp.id = 9;
    resp.status = ErrorCode::ResourceExhausted;

    std::vector<std::uint8_t> buf;
    encodeResponse(resp, buf);

    Response got;
    auto n = decodeResponse(buf.data(), buf.size(), &got);
    ASSERT_TRUE(n.hasValue()) << n.status().str();
    EXPECT_EQ(got.status, ErrorCode::ResourceExhausted);
}

/** Streaming contract: every prefix shorter than the frame decodes to
 *  0 (partial, read more); trailing bytes are left unconsumed. */
TEST(NetProtocol, PartialWindowsAndBackToBackFrames)
{
    Request a;
    a.type = MsgType::Put;
    a.id = 1;
    a.key = 42;
    a.value = 99;
    a.crc = true;
    Request b;
    b.type = MsgType::Get;
    b.id = 2;
    b.key = 42;

    std::vector<std::uint8_t> buf;
    encodeRequest(a, buf);
    const std::size_t frameA = buf.size();
    encodeRequest(b, buf);

    Request got;
    for (std::size_t n = 0; n < frameA; n++) {
        auto r = decodeRequest(buf.data(), n, &got);
        ASSERT_TRUE(r.hasValue()) << "prefix " << n << ": "
                                  << r.status().str();
        EXPECT_EQ(*r, 0u) << "prefix " << n;
    }

    auto r1 = decodeRequest(buf.data(), buf.size(), &got);
    ASSERT_TRUE(r1.hasValue());
    EXPECT_EQ(*r1, frameA);
    EXPECT_EQ(got.id, 1u);
    auto r2 = decodeRequest(buf.data() + *r1, buf.size() - *r1, &got);
    ASSERT_TRUE(r2.hasValue());
    EXPECT_EQ(*r2, buf.size() - frameA);
    EXPECT_EQ(got.id, 2u);
}

// ---------------------------------------------------------------------
// Protocol: exact error codes for malformed frames.

std::vector<std::uint8_t>
goodFrame(bool crc = false)
{
    Request req;
    req.type = MsgType::Put;
    req.id = 5;
    req.key = 10;
    req.value = 20;
    req.crc = crc;
    std::vector<std::uint8_t> buf;
    encodeRequest(req, buf);
    return buf;
}

ErrorCode
decodeErr(const std::vector<std::uint8_t>& buf)
{
    Request got;
    auto r = decodeRequest(buf.data(), buf.size(), &got);
    EXPECT_FALSE(r.hasValue()) << "decode unexpectedly consumed " << *r;
    return r.hasValue() ? ErrorCode::Ok : r.status().code();
}

TEST(NetProtocolErrors, BadMagicIsCorruption)
{
    auto buf = goodFrame();
    buf[4] = 0x00; // magic byte, right after the u32 length prefix
    EXPECT_EQ(decodeErr(buf), ErrorCode::Corruption);
}

TEST(NetProtocolErrors, UnknownVersionIsUnsupported)
{
    auto buf = goodFrame();
    buf[5] = kProtoVersion + 1;
    EXPECT_EQ(decodeErr(buf), ErrorCode::Unsupported);
}

TEST(NetProtocolErrors, UnknownTypeIsInvalidArgument)
{
    auto buf = goodFrame();
    buf[6] = 0x7f;
    EXPECT_EQ(decodeErr(buf), ErrorCode::InvalidArgument);
}

TEST(NetProtocolErrors, OversizedFrameIsInvalidArgument)
{
    std::vector<std::uint8_t> buf(4 + kMaxFrameBody + 1, 0);
    const std::uint32_t len =
        static_cast<std::uint32_t>(kMaxFrameBody + 1);
    buf[0] = static_cast<std::uint8_t>(len);
    buf[1] = static_cast<std::uint8_t>(len >> 8);
    buf[2] = static_cast<std::uint8_t>(len >> 16);
    buf[3] = static_cast<std::uint8_t>(len >> 24);
    EXPECT_EQ(decodeErr(buf), ErrorCode::InvalidArgument);
}

TEST(NetProtocolErrors, BodyShorterThanHeaderIsCorruption)
{
    // Claimed body length below the 12 header bytes; ship that many
    // zero bytes so the frame is "complete" but structurally short.
    std::vector<std::uint8_t> buf(4 + 4, 0);
    buf[0] = 4;
    EXPECT_EQ(decodeErr(buf), ErrorCode::Corruption);
}

TEST(NetProtocolErrors, PayloadLengthMismatchIsCorruption)
{
    auto buf = goodFrame();
    // Shrink the claimed body length by one: the PUT payload no longer
    // fits the (type, flags) contract.
    buf[0] = static_cast<std::uint8_t>(buf[0] - 1);
    buf.pop_back();
    EXPECT_EQ(decodeErr(buf), ErrorCode::Corruption);
}

TEST(NetProtocolErrors, CrcMismatchIsCorruption)
{
    auto buf = goodFrame(/*crc=*/true);
    buf[buf.size() - 1] ^= 0xff; // flip a CRC byte
    EXPECT_EQ(decodeErr(buf), ErrorCode::Corruption);

    buf = goodFrame(/*crc=*/true);
    buf[16] ^= 0x01; // flip a payload byte under the CRC
    EXPECT_EQ(decodeErr(buf), ErrorCode::Corruption);
}

TEST(NetProtocolErrors, TruncatedAtEofHelper)
{
    EXPECT_EQ(truncatedAtEof(3).code(), ErrorCode::Truncated);
}

// ---------------------------------------------------------------------
// Bytes mode (kFrameFlagBytes, docs/compression.md).

TEST(NetProtocolBytes, PutRequestAndGetResponseRoundTrip)
{
    Pcg32 rng(13, 5);
    for (bool crc : {false, true}) {
        for (std::size_t len :
             {std::size_t{0}, std::size_t{1}, std::size_t{100},
              kMaxValueBytes}) {
            Request req;
            req.type = MsgType::Put;
            req.id = rng.next64();
            req.key = rng.next64();
            req.bytes = true;
            req.valueBytes.resize(len);
            for (auto& b : req.valueBytes) {
                b = static_cast<std::uint8_t>(rng.next64());
            }
            req.crc = crc;

            std::vector<std::uint8_t> buf;
            encodeRequest(req, buf);
            Request got;
            auto n = decodeRequest(buf.data(), buf.size(), &got);
            ASSERT_TRUE(n.hasValue()) << n.status().str();
            EXPECT_EQ(*n, buf.size());
            EXPECT_TRUE(got.bytes);
            EXPECT_EQ(got.key, req.key);
            EXPECT_EQ(got.valueBytes, req.valueBytes);

            Response resp;
            resp.type = MsgType::Get;
            resp.id = rng.next64();
            resp.status = ErrorCode::Ok;
            resp.rflags = 1; // hit
            resp.bytes = true;
            resp.valueBytes = req.valueBytes;
            resp.crc = crc;

            buf.clear();
            encodeResponse(resp, buf);
            Response rgot;
            auto m = decodeResponse(buf.data(), buf.size(), &rgot);
            ASSERT_TRUE(m.hasValue()) << m.status().str();
            EXPECT_EQ(*m, buf.size());
            EXPECT_TRUE(rgot.bytes);
            EXPECT_EQ(rgot.valueBytes, req.valueBytes);
        }
    }
}

TEST(NetProtocolBytes, OversizedDeclaredLengthIsInvalidArgument)
{
    // Hand-build a bytes PUT whose u16 length field claims more than
    // kMaxValueBytes: must be rejected before any allocation.
    Request req;
    req.type = MsgType::Put;
    req.id = 1;
    req.key = 2;
    req.bytes = true;
    req.valueBytes.assign(8, 0xcd);
    std::vector<std::uint8_t> buf;
    encodeRequest(req, buf);
    // Body layout: u32 len | 12B header | key(8) | u16 vlen | bytes.
    const std::size_t vlen_off = 4 + kHeaderBytes + 8;
    buf[vlen_off] = 0xff;
    buf[vlen_off + 1] = 0xff;
    Request got;
    auto n = decodeRequest(buf.data(), buf.size(), &got);
    ASSERT_FALSE(n.hasValue());
    EXPECT_EQ(n.status().code(), ErrorCode::InvalidArgument);
}

TEST(NetProtocolBytes, LengthBodyMismatchIsCorruption)
{
    Request req;
    req.type = MsgType::Put;
    req.id = 1;
    req.key = 2;
    req.bytes = true;
    req.valueBytes.assign(8, 0xcd);
    std::vector<std::uint8_t> buf;
    encodeRequest(req, buf);
    const std::size_t vlen_off = 4 + kHeaderBytes + 8;
    buf[vlen_off] = 9; // declares one byte more than the body carries
    Request got;
    auto n = decodeRequest(buf.data(), buf.size(), &got);
    ASSERT_FALSE(n.hasValue());
    EXPECT_EQ(n.status().code(), ErrorCode::Corruption);
}

// ---------------------------------------------------------------------
// End-to-end: server over localhost.

TEST(NetServer, EphemeralPortResolves)
{
    ServerFixture f;
    EXPECT_GT(f.server().port(), 0);
}

TEST(NetServer, PingAndBasicOps)
{
    ServerFixture f;
    auto cl = f.client();
    ASSERT_TRUE(cl);

    EXPECT_TRUE(cl->ping().isOk());

    auto miss = cl->get(123);
    ASSERT_TRUE(miss.hasValue()) << miss.status().str();
    EXPECT_FALSE(miss->has_value());

    auto put = cl->put(123, 456);
    ASSERT_TRUE(put.hasValue()) << put.status().str();
    EXPECT_TRUE(put->inserted());

    auto hit = cl->get(123);
    ASSERT_TRUE(hit.hasValue());
    ASSERT_TRUE(hit->has_value());
    EXPECT_EQ(**hit, 456u);

    auto erased = cl->erase(123);
    ASSERT_TRUE(erased.hasValue());
    EXPECT_TRUE(*erased);
    auto gone = cl->get(123);
    ASSERT_TRUE(gone.hasValue());
    EXPECT_FALSE(gone->has_value());
}

TEST(NetServer, ReservedKeyIsInvalidArgumentOverTheWire)
{
    ServerFixture f;
    auto cl = f.client();
    auto r = cl->put(ZkvStore::kReservedKey, 1);
    EXPECT_FALSE(r.hasValue());
    EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument);
}

/**
 * Read-your-writes equivalence: the same deterministic op stream
 * against the server and against a direct ZkvStore with the identical
 * config must agree on every get result — the server's shard batching
 * and response routing add no semantics.
 */
TEST(NetServer, MatchesDirectStoreReadYourWrites)
{
    const ZkvConfig storeCfg = tinyStore(/*shards=*/4, /*blocks=*/128);

    ZkvServerConfig scfg;
    scfg.store = storeCfg;
    ServerFixture f(scfg);
    auto cl = f.client(/*crc=*/true);
    ASSERT_TRUE(cl);

    auto direct = ZkvStore::create(storeCfg);
    ASSERT_TRUE(direct.hasValue()) << direct.status().str();

    Pcg32 rng(0xe2e, 1);
    for (int i = 0; i < 2000; i++) {
        const std::uint64_t key = rng.next64() % 300;
        const std::uint64_t roll = rng.next64() % 100;
        if (roll < 50) {
            auto want = (*direct)->get(key);
            auto got = cl->get(key);
            ASSERT_TRUE(got.hasValue()) << got.status().str();
            ASSERT_EQ(got->has_value(), want.has_value()) << "op " << i;
            if (want) {
                EXPECT_EQ(**got, *want) << "op " << i;
            }
        } else if (roll < 90) {
            const std::uint64_t val = rng.next64();
            auto want = (*direct)->put(key, val);
            ASSERT_TRUE(want.hasValue());
            auto got = cl->put(key, val);
            ASSERT_TRUE(got.hasValue()) << got.status().str();
            EXPECT_EQ(got->inserted(), want->inserted) << "op " << i;
            EXPECT_EQ(got->evicted(), want->evicted) << "op " << i;
            if (want->evicted) {
                EXPECT_EQ(got->evictedKey, want->evictedKey);
                EXPECT_EQ(got->evictedValue, want->evictedValue);
            }
        } else {
            const bool want = (*direct)->erase(key);
            auto got = cl->erase(key);
            ASSERT_TRUE(got.hasValue());
            EXPECT_EQ(*got, want) << "op " << i;
        }
    }
}

/** Bytes mode end to end: byte-exact round trips through the wire,
 *  updates, misses, erases — against a BDI-compressed store. */
TEST(NetServer, BytesModeRoundTripsByteExactly)
{
    ZkvServerConfig scfg;
    scfg.store = tinyStore(/*shards=*/2, /*blocks=*/256);
    scfg.store.value.maxBytes = kZkvMaxValueBytes;
    scfg.store.value.codec = CodecKind::Bdi;
    ServerFixture f(scfg);
    auto cl = f.client(/*crc=*/true);
    ASSERT_TRUE(cl);

    Pcg32 rng(0xb17e, 1);
    for (std::size_t len : {std::size_t{0}, std::size_t{1},
                            std::size_t{64}, kMaxValueBytes}) {
        std::vector<std::uint8_t> v(len);
        for (auto& b : v) b = static_cast<std::uint8_t>(rng.next64());
        auto put = cl->putBytes(len + 1, v);
        ASSERT_TRUE(put.hasValue()) << put.status().str();
        auto got = cl->getBytes(len + 1);
        ASSERT_TRUE(got.hasValue()) << got.status().str();
        ASSERT_TRUE(got->has_value()) << len;
        EXPECT_EQ(**got, v) << len;
    }

    // Update in place, then miss and erase semantics.
    std::vector<std::uint8_t> v2(100, 0x5a);
    ASSERT_TRUE(cl->putBytes(65, v2).hasValue());
    auto updated = cl->getBytes(65);
    ASSERT_TRUE(updated.hasValue());
    ASSERT_TRUE(updated->has_value());
    EXPECT_EQ(**updated, v2);

    auto miss = cl->getBytes(0xdeadULL);
    ASSERT_TRUE(miss.hasValue());
    EXPECT_FALSE(miss->has_value());

    auto erased = cl->erase(65);
    ASSERT_TRUE(erased.hasValue());
    EXPECT_TRUE(*erased);
    auto gone = cl->getBytes(65);
    ASSERT_TRUE(gone.hasValue());
    EXPECT_FALSE(gone->has_value());

    auto over = cl->putBytes(1, std::vector<std::uint8_t>(
                                    kMaxValueBytes + 1, 0));
    ASSERT_FALSE(over.hasValue());
    EXPECT_EQ(over.status().code(), ErrorCode::InvalidArgument);
}

/**
 * A bytes-flagged op against a u64 server (and vice versa) answers
 * InvalidArgument at dispatch — never a mis-parsed payload — and the
 * mismatch is counted in the server's mode_errors stat. Ping and
 * erase are representation-free and work in both modes.
 */
TEST(NetServer, ModeMismatchIsInvalidArgumentAndCounted)
{
    { // u64 server, bytes client ops
        ServerFixture f;
        auto cl = f.client();
        std::vector<std::uint8_t> v(8, 1);
        auto put = cl->putBytes(1, v);
        ASSERT_FALSE(put.hasValue());
        EXPECT_EQ(put.status().code(), ErrorCode::InvalidArgument);
        auto get = cl->getBytes(1);
        ASSERT_FALSE(get.hasValue());
        EXPECT_EQ(get.status().code(), ErrorCode::InvalidArgument);
        EXPECT_TRUE(cl->ping().isOk());
        EXPECT_EQ(f.server().stats().modeErrors, 2u);
    }
    { // bytes server, u64 client ops
        ZkvServerConfig scfg;
        scfg.store = tinyStore();
        scfg.store.value.maxBytes = kZkvMaxValueBytes;
        ServerFixture f(scfg);
        auto cl = f.client();
        auto put = cl->put(1, 2);
        ASSERT_FALSE(put.hasValue());
        EXPECT_EQ(put.status().code(), ErrorCode::InvalidArgument);
        auto get = cl->get(1);
        ASSERT_FALSE(get.hasValue());
        EXPECT_EQ(get.status().code(), ErrorCode::InvalidArgument);
        EXPECT_TRUE(cl->ping().isOk());
        auto erased = cl->erase(1);
        ASSERT_TRUE(erased.hasValue());
        EXPECT_FALSE(*erased);
        EXPECT_EQ(f.server().stats().modeErrors, 2u);
    }
}

/** K pipelined sends then K receives: responses come back in send
 *  order with the ids echoed, across shard-interleaved keys. */
TEST(NetServer, PipelinedResponsesPreserveOrder)
{
    ServerFixture f;
    auto cl = f.client();
    ASSERT_TRUE(cl);

    constexpr int kDepth = 64;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < kDepth; i++) {
        Request req;
        req.id = cl->nextId();
        // Alternate puts and gets over keys spread across shards.
        if (i % 2 == 0) {
            req.type = MsgType::Put;
            req.key = static_cast<std::uint64_t>(i) * 977;
            req.value = req.key + 1;
        } else {
            req.type = MsgType::Get;
            req.key = static_cast<std::uint64_t>(i - 1) * 977;
        }
        ids.push_back(req.id);
        ASSERT_TRUE(cl->sendRaw(req).isOk());
    }
    for (int i = 0; i < kDepth; i++) {
        auto resp = cl->recvResponse();
        ASSERT_TRUE(resp.hasValue()) << resp.status().str();
        EXPECT_EQ(resp->id, ids[static_cast<std::size_t>(i)])
            << "response " << i << " out of order";
        if (i % 2 == 1) {
            // The get pipelined directly behind its put must hit.
            EXPECT_TRUE(resp->hit()) << "response " << i;
            EXPECT_EQ(resp->value,
                      static_cast<std::uint64_t>(i - 1) * 977 + 1);
        }
    }
}

/** A garbage frame closes only the offending connection; the server
 *  keeps serving others and counts the framing error. */
TEST(NetServer, FramingErrorClosesOnlyThatConnection)
{
    ServerFixture f;
    auto bad = f.client();
    auto good = f.client();
    ASSERT_TRUE(bad && good);

    auto buf = goodFrame();
    buf[4] = 0x00; // corrupt the magic
    ASSERT_EQ(::send(bad->fd(), buf.data(), buf.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(buf.size()));
    auto r = bad->recvResponse();
    EXPECT_FALSE(r.hasValue()); // server closed us without replying

    EXPECT_TRUE(good->ping().isOk());
    auto put = good->put(1, 2);
    ASSERT_TRUE(put.hasValue()) << put.status().str();

    // protocolErrors is loop-thread-written; the surviving round trips
    // above ordered us after the close.
    EXPECT_GE(f.server().stats().protocolErrors, 1u);
}

/** Shutdown mid-pipeline: every already-sent request still gets its
 *  response before the server closes (the drain contract). */
TEST(NetServer, DrainDeliversInFlightResponses)
{
    ServerFixture f;
    auto cl = f.client();
    ASSERT_TRUE(cl);

    constexpr int kDepth = 128;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < kDepth; i++) {
        Request req;
        req.id = cl->nextId();
        req.type = MsgType::Put;
        req.key = static_cast<std::uint64_t>(i);
        req.value = static_cast<std::uint64_t>(i) + 7;
        ids.push_back(req.id);
        ASSERT_TRUE(cl->sendRaw(req).isOk());
    }
    f.server().shutdown();

    int got = 0;
    for (int i = 0; i < kDepth; i++) {
        auto resp = cl->recvResponse();
        if (!resp.hasValue()) break;
        EXPECT_EQ(resp->id, ids[static_cast<std::size_t>(got)]);
        got++;
    }
    EXPECT_EQ(got, kDepth);

    f.stop();
    const auto st = f.server().stats();
    EXPECT_EQ(st.framesOut, static_cast<std::uint64_t>(kDepth));
    EXPECT_GE(st.drained, 1u);
    EXPECT_EQ(st.drainAborted, 0u);
}

TEST(NetServer, StatsReconcileFramesAndOps)
{
    ServerFixture f;
    {
        auto cl = f.client();
        ASSERT_TRUE(cl);
        for (int i = 0; i < 100; i++) {
            auto r = cl->put(static_cast<std::uint64_t>(i), 1);
            ASSERT_TRUE(r.hasValue());
        }
        ASSERT_TRUE(cl->ping().isOk());
    }
    f.stop();

    const auto st = f.server().stats();
    EXPECT_EQ(st.framesIn, 101u);
    EXPECT_EQ(st.framesOut, 101u);
    EXPECT_EQ(st.batchedOps, 100u); // pings are answered inline
    EXPECT_EQ(st.pings, 1u);
    EXPECT_GE(st.batches, 1u);
    EXPECT_LE(st.batches, st.batchedOps);
    EXPECT_EQ(st.accepted, 1u);
    EXPECT_EQ(st.closed, 1u);
}

// ---------------------------------------------------------------------
// Fault sites (docs/robustness.md): structured failure, no crash.

class NetFaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjection::resetAll(); }
    void TearDown() override { FaultInjection::resetAll(); }
};

TEST_F(NetFaultTest, AcceptFaultRejectsConnectionServerSurvives)
{
    ServerFixture f;
    {
        ScopedFault fault("net.accept", {.failCount = 1});
        ZkvClientConfig c;
        c.port = f.server().port();
        c.connectRetries = 0;
        // The TCP handshake completes in the kernel before accept()
        // runs, so connect() itself succeeds; the injected accept
        // failure surfaces as an immediate close (EOF on first read).
        auto cl = ZkvClient::connect(c);
        if (cl.hasValue()) {
            auto r = (*cl)->ping();
            EXPECT_FALSE(r.isOk());
        }
    }
    EXPECT_GE(f.server().stats().acceptErrors, 1u);

    auto cl = f.client();
    ASSERT_TRUE(cl);
    EXPECT_TRUE(cl->ping().isOk());
}

TEST_F(NetFaultTest, ReadFaultClosesConnectionServerSurvives)
{
    ServerFixture f;
    auto cl = f.client();
    ASSERT_TRUE(cl);
    ASSERT_TRUE(cl->ping().isOk()); // connection is up and serving

    {
        ScopedFault fault("net.read", {.failCount = 1});
        auto r = cl->call(MsgType::Get, 1);
        EXPECT_FALSE(r.hasValue()); // conn died before a response
    }
    EXPECT_GE(f.server().stats().readErrors, 1u);

    auto cl2 = f.client();
    ASSERT_TRUE(cl2);
    EXPECT_TRUE(cl2->ping().isOk());
}

TEST_F(NetFaultTest, WriteFaultClosesConnectionServerSurvives)
{
    ServerFixture f;
    auto cl = f.client();
    ASSERT_TRUE(cl);
    ASSERT_TRUE(cl->ping().isOk());

    {
        ScopedFault fault("net.write", {.failCount = 1});
        auto r = cl->call(MsgType::Put, 3, 4);
        EXPECT_FALSE(r.hasValue());
    }
    EXPECT_GE(f.server().stats().writeErrors, 1u);

    auto cl2 = f.client();
    ASSERT_TRUE(cl2);
    EXPECT_TRUE(cl2->ping().isOk());
}

TEST_F(NetFaultTest, FrameFaultCountsProtocolError)
{
    ServerFixture f;
    auto cl = f.client();
    ASSERT_TRUE(cl);
    ASSERT_TRUE(cl->ping().isOk());

    {
        ScopedFault fault("net.frame", {.failCount = 1});
        auto r = cl->call(MsgType::Get, 9);
        EXPECT_FALSE(r.hasValue());
    }
    EXPECT_GE(f.server().stats().protocolErrors, 1u);

    auto cl2 = f.client();
    ASSERT_TRUE(cl2);
    EXPECT_TRUE(cl2->ping().isOk());
}

// ---------------------------------------------------------------------
// Open-loop arrival schedules (net/openloop.hpp).

TEST(ArrivalScheduleTest, FixedIsDriftFreeMetronome)
{
    ArrivalSchedule s(ArrivalKind::Fixed, 1e6, /*seed=*/1);
    EXPECT_EQ(s.nextOffsetNs(), 0u);
    EXPECT_EQ(s.nextOffsetNs(), 1000u);
    for (int i = 2; i < 10000; i++) {
        EXPECT_EQ(s.nextOffsetNs(), static_cast<std::uint64_t>(i) * 1000);
    }
}

TEST(ArrivalScheduleTest, PoissonMeanMatchesRateAndIsDeterministic)
{
    constexpr int kN = 200000;
    ArrivalSchedule a(ArrivalKind::Poisson, 1e6, 42);
    ArrivalSchedule b(ArrivalKind::Poisson, 1e6, 42);
    std::uint64_t last = 0;
    for (int i = 0; i < kN; i++) {
        const std::uint64_t t = a.nextOffsetNs();
        EXPECT_EQ(t, b.nextOffsetNs()); // same seed, same schedule
        EXPECT_GE(t, last);             // nondecreasing
        last = t;
    }
    // Mean inter-arrival over kN samples must be within 2% of 1us.
    const double meanNs = static_cast<double>(last) / (kN - 1);
    EXPECT_NEAR(meanNs, 1000.0, 20.0);
}

TEST(ArrivalScheduleTest, ParseNames)
{
    auto p = parseArrivalKind("poisson");
    ASSERT_TRUE(p.hasValue());
    EXPECT_EQ(*p, ArrivalKind::Poisson);
    auto x = parseArrivalKind("bursty");
    EXPECT_FALSE(x.hasValue());
    EXPECT_EQ(x.status().code(), ErrorCode::InvalidArgument);
}

} // namespace
} // namespace zc::net
