/**
 * @file
 * Tests for the tracker's rank tie handling (TieMode) with
 * coarse-scored policies, plus the onSwap score-exchange contract
 * across all flat-metadata policies.
 */

#include <gtest/gtest.h>

#include <memory>

#include "assoc/eviction_tracker.hpp"
#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "common/rng.hpp"
#include "replacement/policy_factory.hpp"

namespace zc {
namespace {

double
meanWithTieMode(TieMode mode)
{
    ArraySpec spec;
    spec.kind = ArrayKind::ZCache;
    spec.blocks = 512;
    spec.ways = 4;
    spec.levels = 2;
    spec.policy = PolicyKind::BucketedLru; // wide rank ties
    CacheModel m(makeArray(spec));
    EvictionPriorityTracker tracker(100, 1, mode);
    tracker.attach(m.array());
    Pcg32 rng(4);
    for (int i = 0; i < 60000; i++) m.access(rng.next64() % 4096);
    return tracker.histogram().mean();
}

TEST(TieModes, OrderedAsDefined)
{
    // Optimistic excludes the victim's tie class from the keep-count,
    // so it reports the lowest priority of the three modes; midpoint
    // adds half the class; the refined order adds the tied blocks that
    // sort after the victim (about half, on average).
    double optimistic = meanWithTieMode(TieMode::Optimistic);
    double midpoint = meanWithTieMode(TieMode::Midpoint);
    double refined = meanWithTieMode(TieMode::Refined);
    EXPECT_LE(optimistic, midpoint + 1e-9);
    EXPECT_LE(midpoint, refined + 0.01);
    // All three agree to first order (ties are narrow for k=5%).
    EXPECT_NEAR(optimistic, refined, 0.05);
}

TEST(TieModes, IdenticalForTieFreePolicies)
{
    // Full LRU has unique scores: tie mode must not matter at all.
    auto run = [](TieMode mode) {
        ArraySpec spec;
        spec.kind = ArrayKind::SetAssoc;
        spec.blocks = 256;
        spec.ways = 4;
        spec.hashKind = HashKind::H3;
        spec.policy = PolicyKind::Lru;
        CacheModel m(makeArray(spec));
        EvictionPriorityTracker tracker(100, 1, mode);
        tracker.attach(m.array());
        Pcg32 rng(5);
        for (int i = 0; i < 40000; i++) m.access(rng.next64() % 2048);
        return tracker.histogram().mean();
    };
    EXPECT_DOUBLE_EQ(run(TieMode::Refined), run(TieMode::Optimistic));
    EXPECT_DOUBLE_EQ(run(TieMode::Refined), run(TieMode::Midpoint));
}

// ---------------------------------------------------------------------
// onSwap contract across policies
// ---------------------------------------------------------------------

class SwapContract : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(SwapContract, SwapExchangesScores)
{
    auto p = makePolicy(GetParam(), 16, 7);
    AccessContext c;
    for (BlockPos i = 0; i < 8; i++) {
        c.nextUse = 100 + 13 * i;
        p->onInsert(i, c);
    }
    p->onHit(2, c);
    double s2 = p->score(2), s5 = p->score(5);
    p->onSwap(2, 5);
    EXPECT_DOUBLE_EQ(p->score(5), s2);
    EXPECT_DOUBLE_EQ(p->score(2), s5);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SwapContract,
    ::testing::Values(PolicyKind::Lru, PolicyKind::BucketedLru,
                      PolicyKind::Lfu, PolicyKind::Random, PolicyKind::Opt,
                      PolicyKind::Nru, PolicyKind::Srrip, PolicyKind::Bip),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
        std::string n = policyKindName(info.param);
        for (auto& ch : n) {
            if (ch == '-') ch = '_';
        }
        return n;
    });

} // namespace
} // namespace zc
