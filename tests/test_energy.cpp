/**
 * @file
 * Tests for the CACTI-lite and system-energy models: the calibrated
 * ratios the paper's Table II / Fig. 5 arguments rest on.
 */

#include <gtest/gtest.h>

#include "energy/cacti_lite.hpp"
#include "energy/system_energy.hpp"

namespace zc {
namespace {

BankGeometry
geom(std::uint32_t ways, bool serial)
{
    BankGeometry g;
    g.capacityBytes = 1 << 20;
    g.ways = ways;
    g.serialLookup = serial;
    return g;
}

TEST(CactiLite, SerialHitEnergyRatioMatchesPaper)
{
    auto c4 = CactiLite::model(geom(4, true));
    auto c32 = CactiLite::model(geom(32, true));
    // Paper: ~2x hit energy for 32-way serial vs 4-way.
    EXPECT_NEAR(c32.hitEnergyNj / c4.hitEnergyNj, 2.0, 0.25);
}

TEST(CactiLite, ParallelHitEnergyRatioMatchesPaper)
{
    auto c4 = CactiLite::model(geom(4, false));
    auto c32 = CactiLite::model(geom(32, false));
    // Paper: up to 3.3x for parallel lookups.
    EXPECT_NEAR(c32.hitEnergyNj / c4.hitEnergyNj, 3.3, 0.4);
}

TEST(CactiLite, SerialLatencyRatioMatchesPaper)
{
    auto c4 = CactiLite::model(geom(4, true));
    auto c32 = CactiLite::model(geom(32, true));
    EXPECT_NEAR(c32.hitLatencyNs / c4.hitLatencyNs, 1.23, 0.05);
}

TEST(CactiLite, ParallelLatencyRatioMatchesPaper)
{
    auto c4 = CactiLite::model(geom(4, false));
    auto c32 = CactiLite::model(geom(32, false));
    // Paper intro: 32-way is "32% slower" than 4-way.
    EXPECT_NEAR(c32.hitLatencyNs / c4.hitLatencyNs, 1.32, 0.05);
}

TEST(CactiLite, AreaRatioMatchesPaper)
{
    auto c4 = CactiLite::model(geom(4, true));
    auto c32 = CactiLite::model(geom(32, true));
    EXPECT_NEAR(c32.areaMm2 / c4.areaMm2, 1.22, 0.06);
}

TEST(CactiLite, LatencyCyclesStepAt16And32Ways)
{
    // Fig. 4's mechanism: +1 cycle at 16 ways, +2 at 32 (serial, 2GHz).
    auto c4 = CactiLite::model(geom(4, true));
    auto c16 = CactiLite::model(geom(16, true));
    auto c32 = CactiLite::model(geom(32, true));
    EXPECT_EQ(c16.hitLatencyCycles, c4.hitLatencyCycles + 1);
    EXPECT_EQ(c32.hitLatencyCycles, c4.hitLatencyCycles + 2);
}

TEST(CactiLite, ParallelFasterThanSerial)
{
    for (std::uint32_t w : {4u, 8u, 16u, 32u}) {
        auto s = CactiLite::model(geom(w, true));
        auto p = CactiLite::model(geom(w, false));
        EXPECT_LT(p.hitLatencyNs, s.hitLatencyNs) << w;
        EXPECT_GT(p.hitEnergyNj, s.hitEnergyNj) << w;
    }
}

TEST(CactiLite, BankLatencyInPaperRange)
{
    // Table I: 6-11 cycle L2 bank latency.
    for (std::uint32_t w : {4u, 8u, 16u, 32u}) {
        for (bool serial : {true, false}) {
            auto c = CactiLite::model(geom(w, serial));
            EXPECT_GE(c.hitLatencyCycles, 5u);
            EXPECT_LE(c.hitLatencyCycles, 11u);
        }
    }
}

TEST(CactiLite, ZcacheHitCostsTrackWaysNotCandidates)
{
    // The zcache's defining cost property: a Z4/52 hits like a 4-way
    // cache. (Hit cost is a function of the geometry only.)
    auto z4 = CactiLite::model(geom(4, true));
    auto sa4 = CactiLite::model(geom(4, true));
    EXPECT_DOUBLE_EQ(z4.hitEnergyNj, sa4.hitEnergyNj);
    EXPECT_DOUBLE_EQ(z4.hitLatencyNs, sa4.hitLatencyNs);
}

TEST(CactiLite, ZcacheMissEnergyComparableToHighAssocSA)
{
    // Paper: a serial Z4/52 has ~1.3x the miss energy of a 32-way SA —
    // higher, but the same order. Our analytic constants land the ratio
    // near 2x; the claim under test is "comparable, not a multiple".
    auto z = CactiLite::model(geom(4, true));
    auto sa32 = CactiLite::model(geom(32, true));
    double z_miss =
        CactiLite::zcacheMissEnergyNj(z, 52, /*relocations=*/1.5);
    double sa_miss = CactiLite::setAssocMissEnergyNj(sa32, 32);
    double ratio = z_miss / sa_miss;
    EXPECT_GT(ratio, 1.0) << "zcache must pay more per miss";
    EXPECT_LT(ratio, 3.0) << "but stay within the same order";
}

TEST(CactiLite, MissEnergyGrowsWithCandidatesLogarithmicallyInData)
{
    // Walk energy grows linearly in R (tag array only); relocation
    // (data array) energy grows with L ~ log R — Section III-B's point
    // that the expensive component grows slowly.
    auto c = CactiLite::model(geom(4, true));
    double e16 = CactiLite::zcacheMissEnergyNj(c, 16, 1.0);
    double e52 = CactiLite::zcacheMissEnergyNj(c, 52, 1.5);
    EXPECT_GT(e52, e16);
    EXPECT_LT(e52 / e16, 52.0 / 16.0) << "growth must be sublinear in R";
}

TEST(CactiLite, EnergyScalesWithCapacity)
{
    BankGeometry small = geom(4, true);
    BankGeometry big = geom(4, true);
    big.capacityBytes = 4 << 20;
    auto cs = CactiLite::model(small);
    auto cb = CactiLite::model(big);
    EXPECT_GT(cb.hitEnergyNj, cs.hitEnergyNj);
    EXPECT_GT(cb.areaMm2, cs.areaMm2 * 3.5);
    EXPECT_GT(cb.hitLatencyNs, cs.hitLatencyNs);
}

// ---------------------------------------------------------------------
// System energy
// ---------------------------------------------------------------------

SystemEnergyParams
defaultParams()
{
    SystemEnergyParams p;
    p.l2Bank = CactiLite::model(geom(4, true));
    return p;
}

TEST(SystemEnergy, ZeroEventsZeroEnergy)
{
    SystemEnergyModel m(defaultParams());
    EnergyEvents ev;
    EXPECT_DOUBLE_EQ(m.energy(ev).totalJ(), 0.0);
    EXPECT_DOUBLE_EQ(m.bipsPerWatt(ev), 0.0);
}

TEST(SystemEnergy, BreakdownSumsToTotal)
{
    SystemEnergyModel m(defaultParams());
    EnergyEvents ev;
    ev.instructions = 1000000;
    ev.l1Accesses = 300000;
    ev.l2TagReads = 50000;
    ev.l2DataReads = 10000;
    ev.l2Accesses = 12000;
    ev.dramAccesses = 2000;
    ev.cycles = 2000000;
    auto b = m.energy(ev);
    EXPECT_NEAR(b.totalJ(),
                b.coreJ + b.l1J + b.l2J + b.nocJ + b.dramJ + b.staticJ,
                1e-15);
    EXPECT_GT(b.staticJ, 0.0);
    EXPECT_GT(m.bipsPerWatt(ev), 0.0);
}

TEST(SystemEnergy, FasterRunImprovesEfficiency)
{
    // Same work in fewer cycles -> less static energy -> better BIPS/W.
    SystemEnergyModel m(defaultParams());
    EnergyEvents fast, slow;
    fast.instructions = slow.instructions = 10000000;
    fast.l1Accesses = slow.l1Accesses = 3000000;
    fast.cycles = 10000000;
    slow.cycles = 20000000;
    EXPECT_GT(m.bipsPerWatt(fast), m.bipsPerWatt(slow));
}

TEST(SystemEnergy, DramDominatesMissHeavyRuns)
{
    SystemEnergyModel m(defaultParams());
    EnergyEvents ev;
    ev.instructions = 1000000;
    ev.dramAccesses = 500000;
    ev.cycles = 1; // isolate dynamic energy
    auto b = m.energy(ev);
    EXPECT_GT(b.dramJ, b.coreJ);
}

} // namespace
} // namespace zc
