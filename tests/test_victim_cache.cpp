/**
 * @file
 * Tests for VictimCacheArray — the Section II-B background baseline.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "cache/victim_cache_array.hpp"
#include "common/rng.hpp"
#include "hash/bit_select_hash.hpp"
#include "replacement/lru.hpp"

namespace zc {
namespace {

std::unique_ptr<VictimCacheArray>
makeVC(std::uint32_t main_blocks, std::uint32_t ways,
       std::uint32_t victims)
{
    return std::make_unique<VictimCacheArray>(
        main_blocks, ways, victims,
        std::make_unique<LruPolicy>(main_blocks + victims),
        std::make_unique<BitSelectHash>(main_blocks / ways));
}

TEST(VictimCache, MissThenHit)
{
    auto a = makeVC(16, 2, 4);
    AccessContext c;
    EXPECT_EQ(a->access(5, c), kInvalidPos);
    a->insert(5, c);
    EXPECT_NE(a->access(5, c), kInvalidPos);
    EXPECT_EQ(a->validCount(), 1u);
}

TEST(VictimCache, EvictedBlockParksInBuffer)
{
    // 8 sets x 2 ways; addresses 0, 8, 16 conflict in set 0.
    auto a = makeVC(16, 2, 4);
    AccessContext c;
    a->insert(0, c);
    a->insert(8, c);
    Replacement r = a->insert(16, c); // displaces LRU block 0
    EXPECT_FALSE(r.evictedValid()) << "victim buffer absorbs the block";
    EXPECT_EQ(r.relocations, 1u);
    // Block 0 is still resident (in the buffer).
    EXPECT_NE(a->probe(0), kInvalidPos);
    EXPECT_GE(a->probe(0), 16u) << "parked block lives in buffer space";
}

TEST(VictimCache, BufferHitPromotesAndSwaps)
{
    auto a = makeVC(16, 2, 4);
    AccessContext c;
    a->insert(0, c);
    a->insert(8, c);
    a->insert(16, c); // 0 parked in buffer
    std::uint64_t hits_before = a->victimHits();
    BlockPos pos = a->access(0, c); // buffer hit: promote
    EXPECT_NE(pos, kInvalidPos);
    EXPECT_LT(pos, 16u) << "promoted into the main array";
    EXPECT_EQ(a->victimHits(), hits_before + 1);
    // The displaced main block swapped into the buffer.
    EXPECT_EQ(a->validCount(), 3u);
    EXPECT_NE(a->probe(8), kInvalidPos);
    EXPECT_NE(a->probe(16), kInvalidPos);
}

TEST(VictimCache, BufferOverflowEvictsForReal)
{
    auto a = makeVC(16, 2, 2); // 2-entry buffer
    AccessContext c;
    // Five conflicting blocks in set 0: 2 in main + 2 in buffer, the
    // next displacement must truly evict.
    std::uint64_t evictions = 0;
    for (Addr addr : {0, 8, 16, 24, 32}) {
        Replacement r = a->insert(addr, c);
        if (r.evictedValid()) evictions++;
    }
    EXPECT_EQ(evictions, 1u);
    EXPECT_EQ(a->validCount(), 4u);
}

TEST(VictimCache, AvoidsShortReuseConflictMisses)
{
    // The design's raison d'etre: conflict victims re-referenced soon
    // come back from the buffer instead of memory. 3 blocks thrash a
    // 2-way set; with a buffer, all re-references hit.
    CacheModel with_buffer(makeVC(16, 2, 4));
    for (int round = 0; round < 50; round++) {
        for (Addr addr : {0, 8, 16}) with_buffer.access(addr);
    }
    EXPECT_EQ(with_buffer.stats().misses, 3u) << "only cold misses";
}

TEST(VictimCache, HotWaysOverwhelmSmallBuffer)
{
    // The paper's criticism: many conflict victims in hot ways defeat a
    // small buffer. 8 blocks cycling through one 2-way set + 2-entry
    // buffer miss every time.
    CacheModel m(makeVC(16, 2, 2));
    for (int round = 0; round < 30; round++) {
        for (Addr addr = 0; addr < 64; addr += 8) m.access(addr);
    }
    EXPECT_EQ(m.stats().hits, 0u);
}

TEST(VictimCache, InvalidateWorksInBothStructures)
{
    auto a = makeVC(16, 2, 4);
    AccessContext c;
    a->insert(0, c);
    a->insert(8, c);
    a->insert(16, c); // 0 parked
    EXPECT_TRUE(a->invalidate(0));  // buffer resident
    EXPECT_TRUE(a->invalidate(16)); // main resident
    EXPECT_FALSE(a->invalidate(99));
    EXPECT_EQ(a->validCount(), 1u);
}

TEST(VictimCache, IntegrityUnderRandomTraffic)
{
    auto a = makeVC(64, 4, 8);
    AccessContext c;
    Pcg32 rng(7);
    std::set<Addr> resident;
    for (int i = 0; i < 20000; i++) {
        Addr addr = rng.next64() % 512;
        BlockPos pos = a->access(addr, c);
        if (pos != kInvalidPos) {
            EXPECT_TRUE(resident.count(addr));
            continue;
        }
        Replacement r = a->insert(addr, c);
        if (r.evictedValid()) {
            EXPECT_TRUE(resident.count(r.evictedAddr));
            resident.erase(r.evictedAddr);
        }
        resident.insert(addr);
    }
    std::set<Addr> seen;
    a->forEachValid([&](BlockPos, Addr addr) {
        EXPECT_TRUE(seen.insert(addr).second) << "duplicate " << addr;
    });
    EXPECT_EQ(seen, resident);
    EXPECT_EQ(a->validCount(), resident.size());
}

TEST(VictimCache, FactoryBuildsComposite)
{
    ArraySpec spec;
    spec.kind = ArrayKind::VictimCache;
    spec.blocks = 64;
    spec.ways = 4;
    spec.victimBlocks = 8;
    spec.hashKind = HashKind::BitSelect;
    auto arr = makeArray(spec);
    EXPECT_EQ(arr->numBlocks(), 72u);
    EXPECT_NE(arr->name().find("VictimCache"), std::string::npos);
}

} // namespace
} // namespace zc
