/**
 * @file
 * The robustness matrix (docs/robustness.md): structured errors from
 * every recoverable failure path, trace-file corruption and truncation
 * detection, deterministic fault injection, the per-job watchdog, and
 * crash-resumable sweep journals — including resume byte-identity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/status.hpp"
#include "common/watchdog.hpp"
#include "runner/journal.hpp"
#include "runner/sweep.hpp"
#include "sim/experiment.hpp"
#include "trace/future_use.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"
#include "trace/workloads.hpp"

namespace zc {
namespace {

// ---------------------------------------------------------------------
// Shared helpers.

class FaultsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        FaultInjection::resetAll();
        path_ = ::testing::TempDir() + "zc_faults_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this));
    }

    void
    TearDown() override
    {
        FaultInjection::resetAll();
        std::remove(path_.c_str());
    }

    /** Read the file at path_ into a byte string. */
    std::string
    slurp() const
    {
        std::FILE* f = std::fopen(path_.c_str(), "rb");
        if (!f) {
            ADD_FAILURE() << "cannot open " << path_;
            return "";
        }
        std::string out;
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
            out.append(buf, n);
        }
        std::fclose(f);
        return out;
    }

    void
    spit(const std::string& bytes) const
    {
        std::FILE* f = std::fopen(path_.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);
    }

    std::string path_;
};

std::vector<MemRecord>
sampleTrace(std::size_t n)
{
    StridedGenerator gen(0x1000, 512, 3);
    return recordTrace(gen, n);
}

/** A quick experiment: 2 cores, 64 KB single-bank L2, tiny budgets. */
RunParams
quickParams()
{
    RunParams p;
    p.workload = "gcc";
    p.warmupInstr = 500;
    p.measureInstr = 1000;
    p.base.numCores = 2;
    p.base.l2Banks = 1;
    p.base.l2SizeBytes = 64 * 1024;
    return p;
}

SweepSpec
quickSpec(std::size_t points = 3)
{
    SweepSpec spec;
    spec.name = "faults-sweep";
    spec.baseSeed = 7;
    for (std::size_t i = 0; i < points; i++) {
        RunParams p = quickParams();
        p.l2Spec.ways = i % 2 ? 8 : 4;
        spec.add(p, {{"point", JsonValue(static_cast<std::uint64_t>(i))}});
    }
    return spec;
}

SweepOptions
quietOpts()
{
    SweepOptions o;
    o.jobs = 2;
    o.progress = false;
    return o;
}

// ---------------------------------------------------------------------
// Trace integrity: corruption, truncation, version compat.

TEST_F(FaultsTest, TraceBitFlipFailsTheCrc)
{
    ASSERT_TRUE(TraceIo::write(path_, sampleTrace(500)).isOk());
    std::string bytes = slurp();
    bytes[bytes.size() / 2] ^= 0x40; // one bit, mid-payload
    spit(bytes);

    auto back = TraceIo::read(path_);
    ASSERT_FALSE(back.hasValue());
    EXPECT_EQ(back.status().code(), ErrorCode::Corruption);
    EXPECT_NE(back.status().message().find("CRC-32"), std::string::npos);
}

TEST_F(FaultsTest, TraceTruncationNamesTheByteOffset)
{
    ASSERT_TRUE(TraceIo::write(path_, sampleTrace(100)).isOk());
    std::string bytes = slurp();
    spit(bytes.substr(0, bytes.size() - 40));

    auto back = TraceIo::read(path_);
    ASSERT_FALSE(back.hasValue());
    EXPECT_EQ(back.status().code(), ErrorCode::Truncated);
    EXPECT_NE(back.status().message().find("byte offset"),
              std::string::npos);
    EXPECT_NE(back.status().message().find(path_), std::string::npos);
}

TEST_F(FaultsTest, TraceBogusCountRejectedBeforeAllocation)
{
    ASSERT_TRUE(TraceIo::write(path_, sampleTrace(10)).isOk());
    std::string bytes = slurp();
    // Patch the u64 count at offset 8 to an absurd value. If the reader
    // allocated before the size check, this test would OOM instead of
    // getting a structured error.
    std::uint64_t huge = std::uint64_t{1} << 60;
    std::memcpy(bytes.data() + 8, &huge, sizeof huge);
    spit(bytes);

    auto back = TraceIo::read(path_);
    ASSERT_FALSE(back.hasValue());
    EXPECT_EQ(back.status().code(), ErrorCode::Truncated);
    EXPECT_NE(back.status().message().find("declares"), std::string::npos);
}

TEST_F(FaultsTest, TracePayloadLongerThanCountIsCorruption)
{
    ASSERT_TRUE(TraceIo::write(path_, sampleTrace(10)).isOk());
    std::string bytes = slurp();
    bytes += "trailing garbage";
    spit(bytes);

    auto back = TraceIo::read(path_);
    ASSERT_FALSE(back.hasValue());
    EXPECT_EQ(back.status().code(), ErrorCode::Corruption);
    EXPECT_NE(back.status().message().find(
                  "payload length disagrees with the record count"),
              std::string::npos);
}

TEST_F(FaultsTest, TraceV1WithoutFooterStillReadable)
{
    // Craft a v1 file by hand: same header layout, version 1, packed
    // 24-byte records, no footer.
    auto records = sampleTrace(7);
    std::string bytes;
    std::uint32_t magic = TraceIo::kMagic, version = 1;
    std::uint64_t count = records.size();
    bytes.append(reinterpret_cast<char*>(&magic), 4);
    bytes.append(reinterpret_cast<char*>(&version), 4);
    bytes.append(reinterpret_cast<char*>(&count), 8);
    for (const MemRecord& r : records) {
        struct
        {
            std::uint64_t lineAddr, nextUse;
            std::uint32_t instGap;
            std::uint8_t type, pad[3];
        } d{r.lineAddr, r.nextUse, r.instGap,
            static_cast<std::uint8_t>(r.type), {}};
        bytes.append(reinterpret_cast<char*>(&d), 24);
    }
    spit(bytes);

    auto back = TraceIo::read(path_);
    ASSERT_TRUE(back.hasValue()) << back.status().str();
    ASSERT_EQ(back->size(), records.size());
    EXPECT_EQ(back->front().lineAddr, records.front().lineAddr);
    EXPECT_EQ(back->back().nextUse, records.back().nextUse);
}

TEST_F(FaultsTest, TraceUnknownVersionIsUnsupported)
{
    ASSERT_TRUE(TraceIo::write(path_, sampleTrace(5)).isOk());
    std::string bytes = slurp();
    std::uint32_t v9 = 9;
    std::memcpy(bytes.data() + 4, &v9, sizeof v9);
    spit(bytes);

    auto back = TraceIo::read(path_);
    ASSERT_FALSE(back.hasValue());
    EXPECT_EQ(back.status().code(), ErrorCode::Unsupported);
}

// ---------------------------------------------------------------------
// Injected I/O and allocation faults.

TEST_F(FaultsTest, InjectedShortReadSurfacesAsTruncation)
{
    ASSERT_TRUE(TraceIo::write(path_, sampleTrace(200)).isOk());
    // Hit 0 is the header read; fail the record-region read.
    ScopedFault fault("trace.read.short_read", {.afterHits = 1});
    auto back = TraceIo::read(path_);
    ASSERT_FALSE(back.hasValue());
    EXPECT_EQ(back.status().code(), ErrorCode::Truncated);
    EXPECT_NE(back.status().message().find("short read"),
              std::string::npos);
}

TEST_F(FaultsTest, InjectedOpenFailureSurfacesAsIoError)
{
    ScopedFault fault("trace.write.open");
    Status s = TraceIo::write(path_, sampleTrace(5));
    EXPECT_EQ(s.code(), ErrorCode::IoError);
}

TEST_F(FaultsTest, InjectedShortWriteSurfacesAsIoError)
{
    ScopedFault fault("trace.write.short_write", {.afterHits = 1});
    Status s = TraceIo::write(path_, sampleTrace(200));
    EXPECT_EQ(s.code(), ErrorCode::IoError);
    EXPECT_NE(s.message().find("write failed"), std::string::npos);
}

TEST_F(FaultsTest, InjectedAllocFailureSurfacesAsResourceExhausted)
{
    ASSERT_TRUE(TraceIo::write(path_, sampleTrace(5)).isOk());
    ScopedFault fault("trace.read.alloc");
    auto back = TraceIo::read(path_);
    ASSERT_FALSE(back.hasValue());
    EXPECT_EQ(back.status().code(), ErrorCode::ResourceExhausted);
}

// ---------------------------------------------------------------------
// Fault-injection registry semantics.

TEST_F(FaultsTest, RegistryDisarmedCostsNothingAndNeverFires)
{
    EXPECT_FALSE(FaultInjection::armed());
    EXPECT_FALSE(ZC_INJECT_FAULT("some.site"));
    EXPECT_EQ(FaultInjection::hitCount("some.site"), 0u);
}

TEST_F(FaultsTest, RegistryAfterHitsAndFailCountWindow)
{
    ScopedFault fault("t.win", {.afterHits = 2, .failCount = 2});
    std::vector<bool> fired;
    for (int i = 0; i < 6; i++) fired.push_back(ZC_INJECT_FAULT("t.win"));
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false,
                                        false}));
    EXPECT_EQ(FaultInjection::hitCount("t.win"), 6u);
}

TEST_F(FaultsTest, RegistryProbabilisticFiringIsSeededAndDeterministic)
{
    FaultSpec spec{.afterHits = 0, .failCount = 0, .probability = 0.5,
                   .seed = 42};
    auto sample = [&] {
        ScopedFault fault("t.prob", spec);
        std::vector<bool> fired;
        for (int i = 0; i < 64; i++) {
            fired.push_back(ZC_INJECT_FAULT("t.prob"));
        }
        return fired;
    };
    auto a = sample();
    auto b = sample();
    EXPECT_EQ(a, b);
    std::size_t fires = std::count(a.begin(), a.end(), true);
    EXPECT_GT(fires, 0u);
    EXPECT_LT(fires, 64u);

    spec.seed = 43; // a different seed gives a different pattern
    ScopedFault fault("t.prob", spec);
    std::vector<bool> c;
    for (int i = 0; i < 64; i++) c.push_back(ZC_INJECT_FAULT("t.prob"));
    EXPECT_NE(a, c);
}

// ---------------------------------------------------------------------
// RunParams validation and factory diagnostics.

TEST_F(FaultsTest, ValidateUnknownWorkloadNamesTheField)
{
    RunParams p = quickParams();
    p.workload = "definitely-not-a-workload";
    Status s = p.validate();
    EXPECT_EQ(s.code(), ErrorCode::NotFound);
    EXPECT_NE(s.message().find("RunParams.workload"), std::string::npos);
    EXPECT_NE(s.message().find("definitely-not-a-workload"),
              std::string::npos);
}

TEST_F(FaultsTest, ValidateRejectsZeroMeasureBudget)
{
    RunParams p = quickParams();
    p.measureInstr = 0;
    Status s = p.validate();
    EXPECT_EQ(s.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(s.message().find("measureInstr"), std::string::npos);
}

TEST_F(FaultsTest, ValidateRejectsImpossibleSystemConfig)
{
    RunParams p = quickParams();
    p.base.numCores = 65;
    Status s = p.validate();
    EXPECT_EQ(s.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(s.message().find("numCores"), std::string::npos);
    EXPECT_NE(s.message().find("65"), std::string::npos);

    p = quickParams();
    p.base.l2Banks = 3;
    s = p.validate();
    EXPECT_EQ(s.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(s.message().find("l2Banks"), std::string::npos);
}

TEST_F(FaultsTest, ValidateChecksTheDerivedArraySpec)
{
    RunParams p = quickParams();
    p.l2Spec.kind = ArrayKind::ZCache;
    p.l2Spec.ways = 3; // does not divide the derived 1024 blocks/bank
    Status s = p.validate();
    EXPECT_EQ(s.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(s.message().find("RunParams.l2Spec"), std::string::npos);
    EXPECT_NE(s.message().find("derived"), std::string::npos);
    EXPECT_NE(s.message().find("divisible by ways"), std::string::npos);
}

TEST_F(FaultsTest, RunExperimentThrowsStructuredError)
{
    RunParams p = quickParams();
    p.workload = "nope";
    try {
        runExperiment(p);
        FAIL() << "expected StatusError";
    } catch (const StatusError& e) {
        EXPECT_EQ(e.code(), ErrorCode::NotFound);
        EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
    }
}

TEST_F(FaultsTest, FactoryParsersListValidNames)
{
    auto pol = parsePolicyKind("least-recently");
    ASSERT_FALSE(pol.hasValue());
    EXPECT_EQ(pol.status().code(), ErrorCode::NotFound);
    EXPECT_NE(pol.status().message().find("lru"), std::string::npos);
    EXPECT_NE(pol.status().message().find("srrip"), std::string::npos);

    auto arr = parseArrayKind("zcash");
    ASSERT_FALSE(arr.hasValue());
    EXPECT_NE(arr.status().message().find("zcache"), std::string::npos);

    auto hash = parseHashKind("md5");
    ASSERT_FALSE(hash.hasValue());
    EXPECT_NE(hash.status().message().find("h3"), std::string::npos);

    EXPECT_EQ(parsePolicyKind("lru").value(), PolicyKind::Lru);
    EXPECT_EQ(parseArrayKind("zcache").value(), ArrayKind::ZCache);
    EXPECT_EQ(parseHashKind("sha1").value(), HashKind::Sha1);
}

TEST_F(FaultsTest, WorkloadLookupThrowsNotFound)
{
    EXPECT_EQ(WorkloadRegistry::find("gcc") != nullptr, true);
    EXPECT_EQ(WorkloadRegistry::find("nope"), nullptr);
    try {
        WorkloadRegistry::byName("nope");
        FAIL() << "expected StatusError";
    } catch (const StatusError& e) {
        EXPECT_EQ(e.code(), ErrorCode::NotFound);
    }
}

TEST_F(FaultsTest, ArraySpecValidationNamesFieldAndValue)
{
    ArraySpec spec;
    spec.kind = ArrayKind::ZCache;
    spec.blocks = 1000; // 1000/4 = 250: not a power of two
    Status s = validateSpec(spec);
    EXPECT_EQ(s.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(s.message().find("zcache"), std::string::npos);
    EXPECT_NE(s.message().find("250"), std::string::npos);
    EXPECT_THROW(makeArray(spec), StatusError);
}

// ---------------------------------------------------------------------
// Watchdog.

TEST_F(FaultsTest, WatchdogCheckpointThrowsPastDeadline)
{
    ScopedWatchdog wd(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    try {
        for (int i = 0; i < 100000; i++) JobWatchdog::checkpoint();
        FAIL() << "expected StatusError(Timeout)";
    } catch (const StatusError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Timeout);
        EXPECT_NE(std::string(e.what()).find("watchdog"),
                  std::string::npos);
    }
}

TEST_F(FaultsTest, WatchdogDisarmedIsANoOp)
{
    EXPECT_FALSE(JobWatchdog::armed());
    for (int i = 0; i < 100000; i++) JobWatchdog::checkpoint();
    ScopedWatchdog off(0); // 0 = no deadline
    EXPECT_FALSE(JobWatchdog::armed());
}

// ---------------------------------------------------------------------
// Grid engine retry policy.

TEST_F(FaultsTest, GridPermanentErrorsFailWithoutRetry)
{
    SweepOptions opts = quietOpts();
    opts.maxAttempts = 3;
    auto out = runGrid<int>(
        2,
        [](std::size_t) -> int {
            throw StatusError(Status::invalidArgument("impossible config"));
        },
        opts);
    for (const auto& o : out) {
        EXPECT_FALSE(o.ok);
        EXPECT_EQ(o.attempts, 1u) << "permanent errors must not retry";
        EXPECT_NE(o.error.find("impossible config"), std::string::npos);
    }
}

TEST_F(FaultsTest, GridTransientErrorsAreRetried)
{
    std::vector<std::atomic<int>> calls(3);
    SweepOptions opts = quietOpts();
    opts.maxAttempts = 2;
    opts.retryBackoffMs = 1;
    auto out = runGrid<int>(
        3,
        [&](std::size_t i) -> int {
            if (calls[i]++ == 0) throw std::runtime_error("transient");
            return static_cast<int>(i);
        },
        opts);
    for (const auto& o : out) {
        EXPECT_TRUE(o.ok) << o.error;
        EXPECT_EQ(o.attempts, 2u);
        EXPECT_EQ(o.result, static_cast<int>(o.index));
        EXPECT_NE(o.error.find("attempt 1: transient"), std::string::npos);
    }
}

TEST_F(FaultsTest, GridTimeoutMarksOutcomeAndSkipsRetry)
{
    SweepOptions opts = quietOpts();
    opts.maxAttempts = 3;
    auto out = runGrid<int>(
        1,
        [](std::size_t) -> int {
            throw StatusError(Status::timeout("too slow"));
        },
        opts);
    EXPECT_FALSE(out[0].ok);
    EXPECT_TRUE(out[0].timedOut);
    EXPECT_EQ(out[0].attempts, 1u);
}

// ---------------------------------------------------------------------
// Journal format and salvage.

TEST_F(FaultsTest, JournalFingerprintTracksEveryParameter)
{
    SweepSpec a = quickSpec(), b = quickSpec();
    EXPECT_EQ(SweepJournal::fingerprint(a), SweepJournal::fingerprint(b));
    b.points[1].params.measureInstr++;
    EXPECT_NE(SweepJournal::fingerprint(a), SweepJournal::fingerprint(b));
}

TEST_F(FaultsTest, JournalCorruptionMidRecordSalvagesThePrefix)
{
    SweepSpec spec = quickSpec(3);
    {
        auto j = SweepJournal::create(path_, spec);
        ASSERT_TRUE(j.hasValue()) << j.status().str();
        for (std::size_t i = 0; i < 3; i++) {
            SweepJournal::Entry e;
            e.index = i;
            e.ok = false; // error-only entries keep the test light
            e.attempts = 1;
            e.error = "synthetic";
            ASSERT_TRUE(j->append(e).isOk());
        }
    }
    std::string bytes = slurp();
    // Corrupt the payload of the middle record (line 3 of 4).
    std::size_t line3 = bytes.find('\n', bytes.find('\n') + 1) + 1;
    bytes[line3 + 20] ^= 0x01;
    spit(bytes);

    ::testing::internal::CaptureStderr();
    auto resumed = SweepJournal::resume(path_, spec);
    std::string warning = ::testing::internal::GetCapturedStderr();
    ASSERT_TRUE(resumed.hasValue()) << resumed.status().str();
    // Record 0 survives; the corrupt record 1 and everything after it
    // (even the intact record 2) are dropped and re-run.
    ASSERT_EQ(resumed->entries.size(), 1u);
    EXPECT_EQ(resumed->entries[0].index, 0u);
    EXPECT_NE(warning.find("CRC mismatch"), std::string::npos);
    EXPECT_NE(warning.find("byte offset"), std::string::npos);

    // The journal stays appendable after salvage.
    SweepJournal::Entry e;
    e.index = 2;
    e.ok = false;
    e.attempts = 1;
    e.error = "after salvage";
    EXPECT_TRUE(resumed->journal.append(e).isOk());
}

TEST_F(FaultsTest, JournalRefusesAForeignGrid)
{
    SweepSpec spec = quickSpec(3);
    {
        auto j = SweepJournal::create(path_, spec);
        ASSERT_TRUE(j.hasValue()) << j.status().str();
    }
    SweepSpec other = quickSpec(3);
    other.points[0].params.seed ^= 1;
    auto resumed = SweepJournal::resume(path_, other);
    ASSERT_FALSE(resumed.hasValue());
    EXPECT_EQ(resumed.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(resumed.status().message().find("fingerprint"),
              std::string::npos);
}

TEST_F(FaultsTest, JournalMissingFileIsIoError)
{
    auto resumed = SweepJournal::resume(path_ + ".nope", quickSpec());
    ASSERT_FALSE(resumed.hasValue());
    EXPECT_EQ(resumed.status().code(), ErrorCode::IoError);
}

TEST_F(FaultsTest, JournalInjectedWriteFaultIsStructured)
{
    SweepSpec spec = quickSpec(1);
    auto j = SweepJournal::create(path_, spec);
    ASSERT_TRUE(j.hasValue()) << j.status().str();
    ScopedFault fault("journal.write");
    SweepJournal::Entry e;
    e.index = 0;
    e.ok = false;
    e.attempts = 1;
    Status s = j->append(e);
    EXPECT_EQ(s.code(), ErrorCode::IoError);
    EXPECT_NE(s.message().find("journal.write"), std::string::npos);
}

// ---------------------------------------------------------------------
// RunResult JSON round-trip (what makes resume byte-identical).

TEST_F(FaultsTest, RunResultJsonRoundTripsExactly)
{
    RunResult r = runExperiment(quickParams());
    JsonValue j = runResultToJson(r);
    std::string first = j.str();
    auto reparsed = JsonValue::parse(first);
    ASSERT_TRUE(reparsed.has_value());
    auto back = runResultFromJson(*reparsed);
    ASSERT_TRUE(back.hasValue()) << back.status().str();
    // The serialized forms must match byte-for-byte — doubles included.
    EXPECT_EQ(runResultToJson(*back).str(), first);
    EXPECT_EQ(back->ipc, r.ipc);
    EXPECT_EQ(back->mpki, r.mpki);
    EXPECT_EQ(back->cycles, r.cycles);
    EXPECT_EQ(back->epochs.size(), r.epochs.size());
    EXPECT_EQ(back->stats.str(), r.stats.str());
}

TEST_F(FaultsTest, RunResultJsonRejectsMissingFields)
{
    RunResult r;
    JsonValue j = runResultToJson(r);
    std::string text = j.str();
    auto v = JsonValue::parse(text);
    ASSERT_TRUE(v.has_value());
    JsonValue broken = *v;
    broken.set("cycles", JsonValue("not-a-number"));
    auto back = runResultFromJson(broken);
    ASSERT_FALSE(back.hasValue());
    EXPECT_EQ(back.status().code(), ErrorCode::Corruption);
    EXPECT_NE(back.status().message().find("cycles"), std::string::npos);
}

// ---------------------------------------------------------------------
// SweepRunner end-to-end: resume identity, watchdog, induced faults.

TEST_F(FaultsTest, SweepResumeReproducesOutcomesByteIdentically)
{
    SweepSpec spec = quickSpec(3);

    SweepOptions full_opts = quietOpts();
    full_opts.journalPath = path_;
    auto full = SweepRunner(full_opts).run(spec);
    ASSERT_EQ(gridFailures(full), 0u);

    // Simulate a crash after the first completed point: keep the header
    // plus one record, exactly what a SIGKILL mid-sweep leaves behind.
    std::string bytes = slurp();
    std::size_t second_line = bytes.find('\n') + 1;
    std::size_t third_line = bytes.find('\n', second_line) + 1;
    spit(bytes.substr(0, third_line));

    SweepOptions resume_opts = quietOpts();
    resume_opts.resumePath = path_;
    auto resumed = SweepRunner(resume_opts).run(spec);

    ASSERT_EQ(resumed.size(), full.size());
    for (std::size_t i = 0; i < full.size(); i++) {
        EXPECT_EQ(resumed[i].ok, full[i].ok) << i;
        EXPECT_EQ(resumed[i].attempts, full[i].attempts) << i;
        EXPECT_EQ(resumed[i].timedOut, full[i].timedOut) << i;
        EXPECT_EQ(resumed[i].error, full[i].error) << i;
        EXPECT_EQ(runResultToJson(resumed[i].result).str(),
                  runResultToJson(full[i].result).str())
            << "point " << i << " must be byte-identical after resume";
    }
}

TEST_F(FaultsTest, SweepResumeStartsFreshWhenJournalAbsent)
{
    SweepOptions opts = quietOpts();
    opts.resumePath = path_; // does not exist yet
    auto out = SweepRunner(opts).run(quickSpec(1));
    EXPECT_EQ(gridFailures(out), 0u);
    EXPECT_NE(slurp().find("ZCJH"), std::string::npos);
}

TEST_F(FaultsTest, SweepWatchdogCancelsAHungJob)
{
    // The job.timeout site stalls runExperiment until the armed
    // watchdog's deadline passes — a deterministic stand-in for a hung
    // simulation.
    ScopedFault fault("job.timeout");
    SweepOptions opts = quietOpts();
    opts.jobs = 1;
    opts.jobTimeoutMs = 50;
    opts.maxAttempts = 3;
    auto out = SweepRunner(opts).run(quickSpec(1));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].ok);
    EXPECT_TRUE(out[0].timedOut);
    EXPECT_EQ(out[0].attempts, 1u) << "timeouts must not retry";
    EXPECT_EQ(gridFailures(out), 1u);
}

TEST_F(FaultsTest, SweepInducedExceptionIsRetriedOnce)
{
    ScopedFault fault("job.exception"); // fails the first hit only
    SweepOptions opts = quietOpts();
    opts.jobs = 1;
    opts.maxAttempts = 2;
    auto out = SweepRunner(opts).run(quickSpec(1));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].ok) << out[0].error;
    EXPECT_EQ(out[0].attempts, 2u);
    EXPECT_NE(out[0].error.find("job.exception"), std::string::npos);
}

TEST_F(FaultsTest, SweepSurvivesJournalWriteFailures)
{
    ScopedFault fault("journal.write", {.failCount = 0}); // every append
    SweepOptions opts = quietOpts();
    opts.journalPath = path_;
    ::testing::internal::CaptureStderr();
    auto out = SweepRunner(opts).run(quickSpec(2));
    std::string warning = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(gridFailures(out), 0u)
        << "a dead journal must not kill the sweep";
    EXPECT_NE(warning.find("journaling"), std::string::npos);
}

} // namespace
} // namespace zc
