/**
 * @file
 * Tests for ColumnAssociativeArray — the first of the paper's Section
 * II-B "more locations" baselines.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cache/cache_model.hpp"
#include "cache/column_associative_array.hpp"
#include "common/rng.hpp"
#include "replacement/lru.hpp"

namespace zc {
namespace {

std::unique_ptr<ColumnAssociativeArray>
makeCol(std::uint32_t blocks)
{
    return std::make_unique<ColumnAssociativeArray>(
        blocks, std::make_unique<LruPolicy>(blocks));
}

TEST(ColumnAssoc, MissThenHitPrimary)
{
    auto a = makeCol(16);
    AccessContext c;
    EXPECT_EQ(a->access(3, c), kInvalidPos);
    a->insert(3, c);
    EXPECT_EQ(a->access(3, c), 3u); // primary slot
}

TEST(ColumnAssoc, ConflictingBlockUsesSecondarySlot)
{
    // 3 and 3+16 share primary slot 3 in a 16-block array; the second
    // block lands in the rehash slot 3 ^ 8 = 11.
    auto a = makeCol(16);
    AccessContext c;
    a->insert(3, c);
    Replacement r = a->insert(19, c);
    EXPECT_FALSE(r.evictedValid());
    EXPECT_EQ(a->probe(19), 11u);
    EXPECT_EQ(a->validCount(), 2u);
}

TEST(ColumnAssoc, SecondaryHitSwapsTowardPrimary)
{
    auto a = makeCol(16);
    AccessContext c;
    a->insert(3, c);
    a->insert(19, c); // at slot 11 (secondary)
    std::uint64_t before = a->secondaryHits();
    EXPECT_EQ(a->access(19, c), 3u) << "promoted into its primary slot";
    EXPECT_EQ(a->secondaryHits(), before + 1);
    // Block 3 was displaced into the rehash slot and is still resident.
    EXPECT_EQ(a->probe(3), 11u);
    // Hitting 19 again is now a first-probe hit.
    EXPECT_EQ(a->access(19, c), 3u);
    EXPECT_EQ(a->secondaryHits(), before + 1);
}

TEST(ColumnAssoc, ThirdConflictEvicts)
{
    auto a = makeCol(16);
    AccessContext c;
    a->insert(3, c);   // primary 3
    a->insert(19, c);  // secondary 11
    a->access(19, c);  // refresh 19 (now at 3); 3 at 11
    Replacement r = a->insert(35, c); // primary 3 again, both slots full
    ASSERT_TRUE(r.evictedValid());
    EXPECT_EQ(r.evictedAddr, 3u) << "LRU of the two-slot pair goes";
    EXPECT_EQ(r.candidates, 2u);
}

TEST(ColumnAssoc, TwoConflictingBlocksCoexist)
{
    // The design's win over direct-mapped: two blocks sharing a primary
    // slot both stay resident (a direct-mapped cache would thrash).
    CacheModel m(makeCol(16));
    for (int round = 0; round < 50; round++) {
        for (Addr a : {3, 19}) m.access(a);
    }
    EXPECT_EQ(m.stats().misses, 2u) << "only the two cold misses";
}

TEST(ColumnAssoc, ThreeConflictingBlocksThrash)
{
    // And its limit: only two locations per block, so a rotating
    // three-block conflict set misses forever under LRU — the capacity
    // a zcache walk would recover.
    CacheModel m(makeCol(16));
    for (int round = 0; round < 50; round++) {
        for (Addr a : {3, 19, 35}) m.access(a);
    }
    EXPECT_EQ(m.stats().hits, 0u);
}

TEST(ColumnAssoc, IntegrityUnderRandomTraffic)
{
    auto a = makeCol(64);
    AccessContext c;
    Pcg32 rng(5);
    std::set<Addr> resident;
    for (int i = 0; i < 20000; i++) {
        Addr addr = rng.next64() % 512;
        BlockPos pos = a->access(addr, c);
        if (pos != kInvalidPos) {
            EXPECT_TRUE(resident.count(addr));
            continue;
        }
        Replacement r = a->insert(addr, c);
        if (r.evictedValid()) {
            EXPECT_TRUE(resident.count(r.evictedAddr));
            resident.erase(r.evictedAddr);
        }
        resident.insert(addr);
    }
    std::set<Addr> seen;
    a->forEachValid([&](BlockPos, Addr addr) {
        EXPECT_TRUE(seen.insert(addr).second);
    });
    EXPECT_EQ(seen, resident);
    EXPECT_EQ(a->validCount(), resident.size());
}

TEST(ColumnAssoc, InvalidateBothLocations)
{
    auto a = makeCol(16);
    AccessContext c;
    a->insert(3, c);
    a->insert(19, c);
    EXPECT_TRUE(a->invalidate(19)); // secondary resident
    EXPECT_TRUE(a->invalidate(3));  // primary resident
    EXPECT_EQ(a->validCount(), 0u);
}

} // namespace
} // namespace zc
