/**
 * @file
 * Tests for PinningPolicy and the buffering experiment it enables (the
 * paper's Section I motivation: TM/speculation-style block pinning).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/set_associative_array.hpp"
#include "cache/z_array.hpp"
#include "common/rng.hpp"
#include "hash/h3_hash.hpp"
#include "replacement/lru.hpp"
#include "replacement/pinning.hpp"

namespace zc {
namespace {

AccessContext
ctx()
{
    return AccessContext{};
}

TEST(Pinning, PinnedBlockNeverSelectedWhileAlternativesExist)
{
    PinningPolicy p(std::make_unique<LruPolicy>(4));
    for (BlockPos i = 0; i < 4; i++) p.onInsert(i, ctx());
    p.pin(0); // the LRU block
    std::vector<BlockPos> cands{0, 1, 2, 3};
    EXPECT_EQ(p.select(cands), 1u);
    EXPECT_EQ(p.forcedEvictions(), 0u);
}

TEST(Pinning, AllPinnedForcesFallback)
{
    PinningPolicy p(std::make_unique<LruPolicy>(4));
    for (BlockPos i = 0; i < 4; i++) {
        p.onInsert(i, ctx());
        p.pin(i);
    }
    std::vector<BlockPos> cands{0, 1, 2, 3};
    EXPECT_EQ(p.select(cands), 0u); // inner LRU decides the surrender
    EXPECT_EQ(p.forcedEvictions(), 1u);
}

TEST(Pinning, PinTravelsWithRelocation)
{
    PinningPolicy p(std::make_unique<LruPolicy>(8));
    p.onInsert(2, ctx());
    p.pin(2);
    p.onMove(2, 5);
    EXPECT_FALSE(p.isPinned(2));
    EXPECT_TRUE(p.isPinned(5));
    EXPECT_EQ(p.pinnedCount(), 1u);
}

TEST(Pinning, EvictionAndReinsertionClearPin)
{
    PinningPolicy p(std::make_unique<LruPolicy>(4));
    p.onInsert(1, ctx());
    p.pin(1);
    p.onEvict(1);
    EXPECT_FALSE(p.isPinned(1));
    p.pin(3);
    p.onInsert(3, ctx()); // new block lands on a stale pin slot
    EXPECT_FALSE(p.isPinned(3));
}

TEST(Pinning, ScoreRanksPinnedAsMostKeepWorthy)
{
    PinningPolicy p(std::make_unique<LruPolicy>(4));
    p.onInsert(0, ctx());
    p.onInsert(1, ctx());
    p.pin(0);
    EXPECT_TRUE(p.ordersBefore(1, 0));
}

/**
 * The end-to-end claim, as buffering capacity: a transaction pins every
 * block it touches; the buffer fails the first time a replacement finds
 * all candidates pinned. With 4 candidates per replacement the first
 * over-full set appears long before the cache is full; with 52
 * candidates (and relocations spreading pins across ways) nearly the
 * whole capacity is usable — the Section I motivation, quantified.
 */
TEST(Pinning, ZcacheBuffersFarMorePinnedBlocksThanSetAssoc)
{
    constexpr std::uint32_t kBlocks = 1024;

    // Returns the fraction of capacity pinned when the first forced
    // surrender happens.
    auto capacity = [&](auto make_array) {
        auto policy_owner = std::make_unique<PinningPolicy>(
            std::make_unique<LruPolicy>(kBlocks));
        PinningPolicy* policy = policy_owner.get();
        auto array = make_array(std::move(policy_owner));
        AccessContext c;
        Pcg32 rng(3);

        while (policy->forcedEvictions() == 0) {
            Addr a = rng.next64();
            if (array->probe(a) != kInvalidPos) continue;
            Replacement r = array->insert(a, c);
            if (policy->forcedEvictions() > 0) break;
            policy->pin(array->probe(a));
            (void)r;
        }
        return static_cast<double>(policy->pinnedCount()) / kBlocks;
    };

    double sa_cap = capacity([&](auto policy) {
        return std::make_unique<SetAssociativeArray>(
            kBlocks, 4, std::move(policy),
            std::make_unique<H3Hash>(kBlocks / 4, 42));
    });
    double z_cap = capacity([&](auto policy) {
        ZArrayConfig cfg;
        cfg.ways = 4;
        cfg.levels = 3; // Z4/52
        return std::make_unique<ZArray>(kBlocks, cfg, std::move(policy));
    });

    EXPECT_LT(sa_cap, 0.80) << "an early over-full set must stop SA-4";
    EXPECT_GT(z_cap, 0.85) << "Z4/52 should buffer near full capacity";
    EXPECT_GT(z_cap, sa_cap + 0.15);
}

} // namespace
} // namespace zc
