/**
 * @file
 * Golden reconstruction of the paper's Fig. 1 replacement example.
 *
 * A 3-way zcache with 8 lines per way misses on block Y and walks three
 * levels: the 3 first-level candidates (A, D, M — the blocks in Y's
 * hash positions), 6 second-level candidates (K, X under A; B, P under
 * D; Z, S under M), and 12 third-level candidates — 21 in total, the
 * paper's number, including one repeat (K's way-0 alternative is Z's
 * position, "some hash values are repeated and lead to the same
 * address"). The LRU victim N sits at level 3 under X: the zcache
 * evicts N, relocates X into N's slot and A into X's slot, and writes Y
 * at A's old position — after which, exactly as the paper remarks,
 * "N and Y both used way 0, but completely different locations."
 *
 * Hash functions are explicit lookup tables, so every step is
 * deterministic and asserted.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "cache/z_array.hpp"
#include "replacement/lru.hpp"

namespace zc {
namespace {

/** Explicit-table hash for fully scripted walk trees. */
class TableHash final : public HashFunction
{
  public:
    TableHash(std::uint64_t buckets, std::map<Addr, std::uint64_t> table)
        : buckets_(buckets), table_(std::move(table))
    {
    }

    std::uint64_t
    hash(Addr lineAddr) const override
    {
        auto it = table_.find(lineAddr);
        return it != table_.end() ? it->second : lineAddr % buckets_;
    }

    std::uint64_t buckets() const override { return buckets_; }
    std::string name() const override { return "Table"; }

  private:
    std::uint64_t buckets_;
    std::map<Addr, std::uint64_t> table_;
};

// Named blocks. Fillers occupy the remaining lines so the walk never
// finds an empty slot.
enum : Addr {
    A = 'A', B = 'B', D = 'D', K = 'K', M = 'M', N = 'N', P = 'P',
    S = 'S', T = 'T', X = 'X', Y = 'Y', Z = 'Z',
    F00 = 1000, F01, F03, F07,          // way-0 fillers (lines 0,1,3,7)
    F10 = 1100, F11, F14, F17,          // way-1 fillers (lines 0,1,4,7)
    F20 = 1200, F22, F23, F25, F26,     // way-2 fillers
};

class Fig1Example : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Way 0 index: placement lines for way-0 residents, plus the
        // walk edges the example prescribes.
        std::map<Addr, std::uint64_t> h0{
            {F00, 0}, {F01, 1}, {Z, 2}, {F03, 3}, {N, 4}, {A, 5},
            {B, 6},   {F07, 7},
            {Y, 5},              // Y conflicts with A in way 0
            {D, 6},              // D's way-0 alternative holds B
            {M, 2},              // M's -> Z
            {K, 2},              // K's -> Z again: the repeat
            {X, 4},              // X's -> N (the eventual victim)
            {P, 0},  {S, 1},
        };
        std::map<Addr, std::uint64_t> h1{
            {F10, 0}, {F11, 1}, {K, 2}, {D, 3}, {F14, 4}, {T, 5},
            {S, 6},   {F17, 7},
            {Y, 3},              // Y conflicts with D in way 1
            {A, 2},              // A's way-1 alternative holds K
            {M, 6},              // M's -> S
            {X, 5},              // X's -> T
            {B, 0},  {P, 1},  {Z, 4},
        };
        std::map<Addr, std::uint64_t> h2{
            {F20, 0}, {X, 1}, {F22, 2}, {F23, 3}, {P, 4}, {F25, 5},
            {F26, 6}, {M, 7},
            {Y, 7},              // Y conflicts with M in way 2
            {A, 1},              // A's way-2 alternative holds X
            {D, 4},              // D's -> P
            {K, 3},  {B, 6},  {Z, 2},  {S, 5},
        };

        ZArrayConfig cfg;
        cfg.ways = 3;
        cfg.levels = 3;
        std::vector<HashPtr> hashes;
        hashes.push_back(std::make_unique<TableHash>(8, std::move(h0)));
        hashes.push_back(std::make_unique<TableHash>(8, std::move(h1)));
        hashes.push_back(std::make_unique<TableHash>(8, std::move(h2)));
        z_ = std::make_unique<ZArray>(24, cfg,
                                      std::make_unique<LruPolicy>(24),
                                      std::move(hashes));

        // Fill: way-0 residents first (their way-0 line is free), then
        // way 1 (way-0 slots all taken), then way 2. N is inserted
        // first, making it the global LRU block.
        AccessContext c;
        for (Addr addr : {N, Z, B, A, F00, F01, F03, F07}) {
            z_->insert(addr, c);
        }
        for (Addr addr : {K, D, T, S, F10, F11, F14, F17}) {
            z_->insert(addr, c);
        }
        for (Addr addr : {X, P, M, F20, F22, F23, F25, F26}) {
            z_->insert(addr, c);
        }
    }

    BlockPos
    pos(std::uint32_t way, std::uint32_t line) const
    {
        return way * 8 + line;
    }

    std::unique_ptr<ZArray> z_;
};

TEST_F(Fig1Example, SetupPlacesEveryBlockWhereTheFigureSays)
{
    ASSERT_EQ(z_->validCount(), 24u);
    EXPECT_EQ(z_->probe(A), pos(0, 5));
    EXPECT_EQ(z_->probe(N), pos(0, 4));
    EXPECT_EQ(z_->probe(Z), pos(0, 2));
    EXPECT_EQ(z_->probe(B), pos(0, 6));
    EXPECT_EQ(z_->probe(D), pos(1, 3));
    EXPECT_EQ(z_->probe(K), pos(1, 2));
    EXPECT_EQ(z_->probe(T), pos(1, 5));
    EXPECT_EQ(z_->probe(S), pos(1, 6));
    EXPECT_EQ(z_->probe(X), pos(2, 1));
    EXPECT_EQ(z_->probe(P), pos(2, 4));
    EXPECT_EQ(z_->probe(M), pos(2, 7));
    // Y misses: its three positions hold A, D, M.
    EXPECT_EQ(z_->probe(Y), kInvalidPos);
}

TEST_F(Fig1Example, WalkFindsTwentyOneCandidatesAndEvictsN)
{
    AccessContext c;
    Replacement r = z_->insert(Y, c);

    // 3 + 6 + 12 candidates, as in Fig. 1d.
    EXPECT_EQ(r.candidates, 21u);
    // One repeated candidate (K -> Z's position) was deduplicated.
    EXPECT_EQ(z_->walkStats().repeatsTotal, 1u);
    // N — the oldest block, reachable at level 3 under X — is evicted.
    EXPECT_EQ(r.evictedAddr, static_cast<Addr>(N));
    EXPECT_EQ(r.victimPos, pos(0, 4));
    // Two relocations: X down into N's slot, A down into X's slot.
    EXPECT_EQ(r.relocations, 2u);
}

TEST_F(Fig1Example, RelocationsMatchFigure1f)
{
    AccessContext c;
    z_->insert(Y, c);

    // Fig. 1f: Y sits where A was; A moved to X's old slot; X moved to
    // N's old slot; N is gone. "N and Y both used way 0, but completely
    // different locations."
    EXPECT_EQ(z_->probe(Y), pos(0, 5));
    EXPECT_EQ(z_->probe(A), pos(2, 1));
    EXPECT_EQ(z_->probe(X), pos(0, 4));
    EXPECT_EQ(z_->probe(N), kInvalidPos);
    // Everyone else is untouched.
    EXPECT_EQ(z_->probe(D), pos(1, 3));
    EXPECT_EQ(z_->probe(M), pos(2, 7));
    EXPECT_EQ(z_->probe(K), pos(1, 2));
    EXPECT_EQ(z_->validCount(), 24u);
}

TEST_F(Fig1Example, RelocatedBlocksKeepTheirAge)
{
    AccessContext c;
    // Touch A just before the replacement: it must remain the youngest
    // after being relocated (metadata travels with the block).
    z_->access(A, c);
    z_->insert(Y, c);
    BlockPos a_pos = z_->probe(A);
    ASSERT_NE(a_pos, kInvalidPos);
    double a_score = z_->policy().score(a_pos);
    // Only Y (inserted after the touch) may score higher.
    std::uint32_t higher = 0;
    z_->forEachValid([&](BlockPos p, Addr) {
        if (z_->policy().score(p) > a_score) higher++;
    });
    EXPECT_EQ(higher, 1u);
}

TEST_F(Fig1Example, WalkEnergyAccountingMatchesSectionIIIB)
{
    // E_miss = R*E_rt + m*(E_rt + E_rd + E_wt + E_wd): the array must
    // report the traffic that formula charges: (R - W) walk tag reads
    // (the first level came with the missing lookup) and per-relocation
    // tag+data read+write pairs, plus the fill write.
    z_->resetStats();
    AccessContext c;
    Replacement r = z_->insert(Y, c);
    const ArrayStats& s = z_->stats();
    EXPECT_EQ(s.tagReads, (r.candidates - 3) + r.relocations);
    EXPECT_EQ(s.tagWrites, r.relocations + 1);
    EXPECT_EQ(s.dataReads, r.relocations);
    EXPECT_EQ(s.dataWrites, r.relocations + 1);
}

} // namespace
} // namespace zc
