/**
 * @file
 * SHA-1 correctness (FIPS 180-1 test vectors) and its use as a cache
 * index hash.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hash/sha1.hpp"

namespace zc {
namespace {

std::string
sha1Hex(const std::string& msg)
{
    return Sha1::hex(Sha1::digest(msg.data(), msg.size()));
}

TEST(Sha1, FipsTestVectors)
{
    // FIPS 180-1 Appendix A/B and the standard empty-string vector.
    EXPECT_EQ(sha1Hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    EXPECT_EQ(sha1Hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    EXPECT_EQ(
        sha1Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, OneMillionA)
{
    // FIPS 180-1 Appendix C: 10^6 repetitions of 'a'.
    std::string msg(1000000, 'a');
    EXPECT_EQ(sha1Hex(msg), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, MultiBlockBoundaries)
{
    // Lengths straddling the 55/56/64-byte padding boundaries must all
    // hash without corruption (distinct digests, deterministic).
    std::vector<std::string> digests;
    for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 127u,
                            128u, 129u}) {
        std::string msg(len, 'x');
        digests.push_back(sha1Hex(msg));
        EXPECT_EQ(sha1Hex(msg), digests.back());
    }
    for (std::size_t i = 0; i < digests.size(); i++) {
        for (std::size_t j = i + 1; j < digests.size(); j++) {
            EXPECT_NE(digests[i], digests[j]);
        }
    }
}

TEST(Sha1Hash, InRangeAndDeterministic)
{
    Sha1Hash h(4096, 7);
    Pcg32 rng(1);
    for (int i = 0; i < 500; i++) {
        Addr a = rng.next64();
        std::uint64_t v = h.hash(a);
        EXPECT_LT(v, 4096u);
        EXPECT_EQ(h.hash(a), v);
    }
}

TEST(Sha1Hash, SeedsGiveIndependentFunctions)
{
    Sha1Hash h1(1024, 1), h2(1024, 2);
    Pcg32 rng(2);
    int same = 0;
    for (int i = 0; i < 2000; i++) {
        Addr a = rng.next64();
        if (h1.hash(a) == h2.hash(a)) same++;
    }
    EXPECT_LT(same, 20);
}

TEST(Sha1Hash, UniformOverStructuredInputs)
{
    // The Section IV-C role: even highly structured addresses (dense
    // small integers) must spread uniformly.
    Sha1Hash h(64, 3);
    std::vector<int> counts(64, 0);
    for (Addr a = 0; a < 6400; a++) counts[h.hash(a)]++;
    for (int c : counts) EXPECT_NEAR(c, 100, 45);
}

} // namespace
} // namespace zc
