/**
 * @file
 * Tests for RandomCandidatesArray, the Section IV-B reference design:
 * replacement picks the best of n uniform random draws over the whole
 * array, so its associativity distribution is analytically F_A(x) = x^n
 * (Fig. 2). The tests pin that distribution empirically, plus the
 * mechanical properties (victims are resident, seeds are load-bearing,
 * the factory wires `candidates` through) that test_fully_assoc.cpp's
 * smoke coverage does not reach.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "assoc/eviction_tracker.hpp"
#include "cache/array_factory.hpp"
#include "cache/random_candidates_array.hpp"
#include "common/rng.hpp"
#include "replacement/lru.hpp"

namespace zc {
namespace {

/**
 * Drive @p arr with a uniform random stream far larger than its
 * capacity and return the tracked associativity CDF (100 bins).
 */
std::vector<double>
measureCdf(CacheArray& arr, std::uint64_t footprint, int ops,
           EvictionPriorityTracker& tracker)
{
    tracker.attach(arr);
    AccessContext c;
    Pcg32 rng(23);
    for (int i = 0; i < ops; i++) {
        Addr a = rng.next64() % footprint;
        if (arr.access(a, c) != kInvalidPos) continue;
        arr.insert(a, c);
    }
    return tracker.cdf();
}

TEST(RandomCandidates, MatchesAnalyticalAssociativityCdf)
{
    // n iid uniform draws evict the max-priority sample, so the eviction
    // priority's CDF is x^n. Compare the empirical CDF against the
    // analytical curve at every decile; with >5000 samples the KS
    // deviation of a faithful implementation is ~0.02.
    constexpr std::uint32_t kCands = 8;
    auto arr = std::make_unique<RandomCandidatesArray>(
        256, kCands, std::make_unique<LruPolicy>(256));
    EvictionPriorityTracker tracker(100);
    std::vector<double> cdf = measureCdf(*arr, 2048, 60000, tracker);
    ASSERT_GT(tracker.samples(), 5000u);

    for (int decile = 1; decile <= 9; decile++) {
        double x = decile / 10.0;
        double analytical = std::pow(x, static_cast<double>(kCands));
        // cdf[i] accumulates through bin i's right edge.
        double empirical = cdf[decile * 10 - 1];
        EXPECT_NEAR(empirical, analytical, 0.06)
            << "F_A(" << x << ") off the x^" << kCands << " curve";
    }
}

TEST(RandomCandidates, SingleCandidateIsUniformRandomReplacement)
{
    // n = 1 degenerates to random replacement: F_A(x) = x.
    auto arr = std::make_unique<RandomCandidatesArray>(
        128, 1, std::make_unique<LruPolicy>(128));
    EvictionPriorityTracker tracker(100);
    std::vector<double> cdf = measureCdf(*arr, 1024, 40000, tracker);
    ASSERT_GT(tracker.samples(), 5000u);
    EXPECT_NEAR(cdf[24], 0.25, 0.06);
    EXPECT_NEAR(cdf[49], 0.50, 0.06);
    EXPECT_NEAR(cdf[74], 0.75, 0.06);
}

TEST(RandomCandidates, VictimIsAlwaysResident)
{
    auto arr = std::make_unique<RandomCandidatesArray>(
        64, 4, std::make_unique<LruPolicy>(64));
    AccessContext c;
    Pcg32 rng(31);
    std::set<Addr> resident;
    std::uint64_t evictions = 0;
    for (int i = 0; i < 4000; i++) {
        Addr a = rng.next64() % 512;
        if (arr->access(a, c) != kInvalidPos) {
            ASSERT_TRUE(resident.count(a));
            continue;
        }
        Replacement r = arr->insert(a, c);
        if (r.evictedValid()) {
            evictions++;
            ASSERT_EQ(resident.erase(r.evictedAddr), 1u)
                << "evicted a non-resident address at op " << i;
        }
        resident.insert(a);
        ASSERT_EQ(arr->validCount(), resident.size());
    }
    EXPECT_GT(evictions, 2000u);
}

TEST(RandomCandidates, ReportsAccessorAndName)
{
    auto arr = std::make_unique<RandomCandidatesArray>(
        64, 8, std::make_unique<LruPolicy>(64));
    EXPECT_EQ(arr->numCandidates(), 8u);
    EXPECT_NE(arr->name().find("RandomCandidates"), std::string::npos);
    EXPECT_NE(arr->name().find("n=8"), std::string::npos);
}

TEST(RandomCandidates, FactorySpecWiresCandidateCountThrough)
{
    ArraySpec spec;
    spec.kind = ArrayKind::RandomCandidates;
    spec.blocks = 128;
    spec.candidates = 16;
    EXPECT_EQ(spec.label(), "Rand/16");

    auto arr = makeArray(spec);
    auto* rc = dynamic_cast<RandomCandidatesArray*>(arr.get());
    ASSERT_NE(rc, nullptr);
    EXPECT_EQ(rc->numCandidates(), 16u);
}

TEST(RandomCandidates, SpecValidationBoundsCandidates)
{
    ArraySpec spec;
    spec.kind = ArrayKind::RandomCandidates;
    spec.blocks = 64;
    spec.candidates = 0;
    EXPECT_EQ(validateSpec(spec).code(), ErrorCode::InvalidArgument);
    spec.candidates = 65; // more draws than blocks makes no sense
    EXPECT_EQ(validateSpec(spec).code(), ErrorCode::InvalidArgument);
    spec.candidates = 64;
    EXPECT_TRUE(validateSpec(spec).isOk());
}

TEST(RandomCandidates, SeedChangesVictimSequence)
{
    auto run = [](std::uint64_t seed) {
        auto arr = std::make_unique<RandomCandidatesArray>(
            32, 4, std::make_unique<LruPolicy>(32), seed);
        AccessContext c;
        Pcg32 rng(3);
        std::vector<Addr> victims;
        for (int i = 0; i < 2000; i++) {
            Addr a = rng.next64() % 256;
            if (arr->access(a, c) != kInvalidPos) continue;
            Replacement r = arr->insert(a, c);
            if (r.evictedValid()) victims.push_back(r.evictedAddr);
        }
        return victims;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

} // namespace
} // namespace zc
