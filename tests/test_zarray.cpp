/**
 * @file
 * Unit + property tests for ZArray — the paper's contribution.
 *
 * Covers: hit path, walk candidate counts (Section III-B formula),
 * relocation-chain integrity (no lost or duplicated blocks under any
 * walk strategy), victim optimality among candidates, empty-slot
 * absorption, early stop, Bloom repeat filtering, skew==Z(L=1)
 * equivalence, and the figure-of-merit helpers.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "cache/cache_model.hpp"
#include "cache/skew_associative_array.hpp"
#include "cache/z_array.hpp"
#include "common/rng.hpp"
#include "replacement/lru.hpp"
#include "replacement/opt.hpp"
#include "replacement/random_policy.hpp"

namespace zc {
namespace {

std::unique_ptr<ZArray>
makeZ(std::uint32_t blocks, std::uint32_t ways, std::uint32_t levels,
      WalkStrategy strat = WalkStrategy::Bfs, std::uint32_t cap = 0,
      bool bloom = false)
{
    ZArrayConfig cfg;
    cfg.ways = ways;
    cfg.levels = levels;
    cfg.strategy = strat;
    cfg.maxCandidates = cap;
    cfg.bloomRepeatFilter = bloom;
    return std::make_unique<ZArray>(blocks, cfg,
                                    std::make_unique<LruPolicy>(blocks));
}

/**
 * Structural invariant: every resident address is probe-able, resides
 * at a position consistent with one of its way hashes, and appears
 * exactly once; validCount matches.
 */
void
checkIntegrity(const ZArray& z, const std::set<Addr>& expected_resident)
{
    std::map<Addr, int> seen;
    z.forEachValid([&](BlockPos pos, Addr addr) {
        seen[addr]++;
        EXPECT_EQ(z.addrAt(pos), addr);
        EXPECT_EQ(z.probe(addr), pos)
            << "block must be locatable through its way hashes";
    });
    EXPECT_EQ(seen.size(), expected_resident.size());
    for (const auto& [addr, count] : seen) {
        EXPECT_EQ(count, 1) << "duplicated block " << addr;
        EXPECT_TRUE(expected_resident.count(addr)) << "ghost block " << addr;
    }
    EXPECT_EQ(z.validCount(), expected_resident.size());
}

// ---------------------------------------------------------------------
// Figures of merit (Section III-B)
// ---------------------------------------------------------------------

TEST(ZArrayMath, NominalCandidates)
{
    // R = W * sum_{l=0}^{L-1} (W-1)^l
    EXPECT_EQ(ZArray::nominalCandidates(4, 1), 4u);   // skew
    EXPECT_EQ(ZArray::nominalCandidates(4, 2), 16u);  // Z4/16
    EXPECT_EQ(ZArray::nominalCandidates(4, 3), 52u);  // Z4/52
    EXPECT_EQ(ZArray::nominalCandidates(2, 2), 4u);
    EXPECT_EQ(ZArray::nominalCandidates(3, 3), 21u);  // the Fig. 1 example
    EXPECT_EQ(ZArray::nominalCandidates(8, 2), 64u);
}

TEST(ZArrayMath, WalkLatencyPipelines)
{
    // T_walk = sum_l max(T_tag, (W-1)^l); the paper's example: W=3,
    // L=3, T_tag=4 -> 12 cycles.
    EXPECT_EQ(ZArray::walkLatency(3, 3, 4), 12u);
    // Wide fans cover the tag latency: W=5, levels 1+4+16 vs T_tag=4
    // -> 4 + 4 + 16.
    EXPECT_EQ(ZArray::walkLatency(5, 3, 4), 24u);
}

// ---------------------------------------------------------------------
// Basic operation
// ---------------------------------------------------------------------

TEST(ZArray, MissThenHit)
{
    auto z = makeZ(64, 4, 2);
    AccessContext c;
    EXPECT_EQ(z->access(42, c), kInvalidPos);
    z->insert(42, c);
    BlockPos pos = z->access(42, c);
    EXPECT_NE(pos, kInvalidPos);
    EXPECT_EQ(z->addrAt(pos), 42u);
}

TEST(ZArray, HitReadsOneTagPerWay)
{
    auto z = makeZ(64, 4, 2);
    AccessContext c;
    z->insert(42, c);
    z->resetStats();
    z->access(42, c);
    EXPECT_EQ(z->stats().tagReads, 4u);
    EXPECT_EQ(z->stats().dataReads, 1u);
}

TEST(ZArray, FillsAbsorbIntoEmptySlots)
{
    auto z = makeZ(64, 4, 2);
    AccessContext c;
    Pcg32 rng(1);
    // While the array has free space, inserts should never evict:
    // either a first-level slot is free or a short relocation chain
    // reaches one.
    std::set<Addr> resident;
    for (int i = 0; i < 48; i++) { // fill to 75%
        Addr a = rng.next64();
        if (z->probe(a) != kInvalidPos) continue;
        Replacement r = z->insert(a, c);
        EXPECT_FALSE(r.evictedValid())
            << "evicted while the array still had room everywhere";
        resident.insert(a);
    }
    checkIntegrity(*z, resident);
}

TEST(ZArray, EvictionReportsVictimAddress)
{
    auto z = makeZ(16, 4, 2); // tiny: 4 lines/way
    AccessContext c;
    Pcg32 rng(2);
    std::set<Addr> resident;
    while (z->validCount() < 16) {
        Addr a = rng.next64();
        if (z->probe(a) == kInvalidPos) {
            // In a tiny array a walk can evict before the array is
            // completely full (no empty slot reachable).
            Replacement rf = z->insert(a, c);
            if (rf.evictedValid()) resident.erase(rf.evictedAddr);
            resident.insert(a);
        }
    }
    Addr incoming;
    do {
        incoming = rng.next64();
    } while (z->probe(incoming) != kInvalidPos);
    Replacement r = z->insert(incoming, c);
    ASSERT_TRUE(r.evictedValid());
    EXPECT_TRUE(resident.count(r.evictedAddr));
    resident.erase(r.evictedAddr);
    resident.insert(incoming);
    checkIntegrity(*z, resident);
}

// ---------------------------------------------------------------------
// Walk properties
// ---------------------------------------------------------------------

class ZWalkProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, WalkStrategy>>
{
};

TEST_P(ZWalkProperty, LongRunIntegrityAndConservation)
{
    auto [ways, levels, strat] = GetParam();
    std::uint32_t blocks = ways * 64;
    auto z = makeZ(blocks, ways, levels, strat);
    AccessContext c;
    Pcg32 rng(3);

    std::set<Addr> resident;
    for (int i = 0; i < 5000; i++) {
        Addr a = rng.next64() % 4096; // working set 2x-16x cache size
        if (z->access(a, c) != kInvalidPos) {
            EXPECT_TRUE(resident.count(a));
            continue;
        }
        Replacement r = z->insert(a, c);
        if (r.evictedValid()) {
            EXPECT_TRUE(resident.count(r.evictedAddr));
            resident.erase(r.evictedAddr);
        }
        resident.insert(a);
    }
    checkIntegrity(*z, resident);
    EXPECT_EQ(z->validCount(), blocks) << "array should be full by now";
}

TEST_P(ZWalkProperty, CandidateCountsBounded)
{
    auto [ways, levels, strat] = GetParam();
    std::uint32_t blocks = ways * 256;
    auto z = makeZ(blocks, ways, levels, strat);
    AccessContext c;
    Pcg32 rng(4);

    std::uint32_t nominal = ZArray::nominalCandidates(ways, levels);
    std::uint32_t limit =
        (strat == WalkStrategy::Hybrid) ? 2 * nominal + ways : nominal;
    for (int i = 0; i < 3000; i++) {
        Addr a = rng.next64() % (blocks * 4);
        if (z->probe(a) != kInvalidPos) {
            z->access(a, c);
            continue;
        }
        Replacement r = z->insert(a, c);
        // A cold fill may absorb into an empty slot after examining
        // fewer than W candidates; a real eviction implies the full
        // first level was examined.
        if (r.evictedValid()) {
            EXPECT_GE(r.candidates, ways);
        }
        EXPECT_GE(r.candidates, 1u);
        EXPECT_LE(r.candidates, limit);
        EXPECT_LT(r.relocations, levels + (strat == WalkStrategy::Hybrid
                                               ? levels + 1
                                               : 0) +
                                     (strat == WalkStrategy::Dfs
                                          ? nominal
                                          : 0));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZWalkProperty,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 8u),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Values(WalkStrategy::Bfs,
                                         WalkStrategy::Dfs,
                                         WalkStrategy::Hybrid)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::uint32_t, std::uint32_t, WalkStrategy>>& info) {
        std::uint32_t w = std::get<0>(info.param);
        std::uint32_t l = std::get<1>(info.param);
        WalkStrategy s = std::get<2>(info.param);
        const char* sn = s == WalkStrategy::Bfs
                             ? "bfs"
                             : (s == WalkStrategy::Dfs ? "dfs" : "hybrid");
        return "W" + std::to_string(w) + "_L" + std::to_string(l) + "_" + sn;
    });

// ---------------------------------------------------------------------
// Victim quality
// ---------------------------------------------------------------------

TEST(ZArray, FullWalkReachesNominalCandidates)
{
    // In a large, full array repeats are rare (paper Section III-A), so
    // almost every walk should reach the nominal R.
    auto z = makeZ(4 * 1024, 4, 2);
    AccessContext c;
    Pcg32 rng(5);
    while (z->validCount() < z->numBlocks()) {
        Addr a = rng.next64();
        if (z->probe(a) == kInvalidPos) z->insert(a, c);
    }
    z->resetStats();
    std::uint64_t walks = 0;
    for (int i = 0; i < 500; i++) {
        Addr a = rng.next64();
        if (z->probe(a) != kInvalidPos) continue;
        z->insert(a, c);
        walks++;
    }
    double avg = z->walkStats().avgCandidates();
    EXPECT_GT(walks, 400u);
    EXPECT_GT(avg, 15.5); // nominal is 16
    EXPECT_LE(avg, 16.0);
}

TEST(ZArray, VictimIsPolicyBestAmongCandidates)
{
    // With an LRU policy and a full array, the evicted block must never
    // be the globally most-recently-used block (it is always a worse
    // candidate than at least W-1 others in the walk).
    auto z = makeZ(256, 4, 2);
    AccessContext c;
    Pcg32 rng(6);
    while (z->validCount() < z->numBlocks()) {
        Addr a = rng.next64() % 2048;
        if (z->probe(a) == kInvalidPos) z->insert(a, c);
    }
    for (int i = 0; i < 2000; i++) {
        Addr a = rng.next64() % 2048;
        if (z->access(a, c) != kInvalidPos) continue;
        // Find the globally most recent block before inserting.
        double best_score = -1e300;
        Addr best_addr = kInvalidAddr;
        z->forEachValid([&](BlockPos pos, Addr addr) {
            double s = z->policy().score(pos);
            if (s > best_score) {
                best_score = s;
                best_addr = addr;
            }
        });
        Replacement r = z->insert(a, c);
        ASSERT_TRUE(r.evictedValid());
        EXPECT_NE(r.evictedAddr, best_addr)
            << "evicted the globally MRU block";
    }
}

TEST(ZArray, MoreLevelsEvictOlderBlocksOnAverage)
{
    // Associativity should rise with R: the average LRU-age rank of
    // evicted blocks must improve from L=1 to L=3.
    auto run = [](std::uint32_t levels) {
        auto z = makeZ(512, 4, levels);
        AccessContext c;
        Pcg32 rng(7);
        while (z->validCount() < z->numBlocks()) {
            Addr a = rng.next64() % 4096;
            if (z->probe(a) == kInvalidPos) z->insert(a, c);
        }
        double rank_sum = 0.0;
        int evictions = 0;
        for (int i = 0; i < 1500; i++) {
            Addr a = rng.next64() % 4096;
            if (z->access(a, c) != kInvalidPos) continue;
            // Compute the victim's age rank after the fact via the
            // eviction observer.
            double e = -1.0;
            z->setEvictionObserver(
                [&](const CacheArray& arr, BlockPos victim) {
                    std::uint64_t worse = 0, total = 0;
                    arr.forEachValid([&](BlockPos pos, Addr) {
                        total++;
                        if (pos == victim) return;
                        if (arr.policy().ordersBefore(victim, pos)) worse++;
                    });
                    e = static_cast<double>(worse) /
                        static_cast<double>(total - 1);
                });
            z->insert(a, c);
            z->setEvictionObserver(nullptr);
            if (e >= 0.0) {
                rank_sum += e;
                evictions++;
            }
        }
        return rank_sum / evictions;
    };

    double e1 = run(1), e2 = run(2), e3 = run(3);
    // Uniformity predicts E[A] = R/(R+1): 0.80, 0.94, 0.98. L=1 matches
    // exactly; deeper walks land slightly below the ideal because walk
    // candidates are not fully independent (see EXPERIMENTS.md), but
    // associativity must still rise monotonically with R.
    EXPECT_GT(e2, e1 + 0.05);
    EXPECT_GT(e3, e2 + 0.01);
    EXPECT_NEAR(e1, 4.0 / 5.0, 0.05);
    EXPECT_NEAR(e2, 16.0 / 17.0, 0.035);
    EXPECT_GT(e3, 0.95);
}

// ---------------------------------------------------------------------
// Extensions (Section III-D)
// ---------------------------------------------------------------------

TEST(ZArray, EarlyStopCapsCandidates)
{
    auto z = makeZ(1024, 4, 3, WalkStrategy::Bfs, /*cap=*/10);
    AccessContext c;
    Pcg32 rng(8);
    while (z->validCount() < z->numBlocks()) {
        Addr a = rng.next64();
        if (z->probe(a) == kInvalidPos) z->insert(a, c);
    }
    std::set<Addr> resident;
    z->forEachValid([&](BlockPos, Addr a) { resident.insert(a); });
    for (int i = 0; i < 300; i++) {
        Addr a = rng.next64();
        if (z->probe(a) != kInvalidPos) continue;
        Replacement r = z->insert(a, c);
        EXPECT_LE(r.candidates, 10u);
        resident.erase(r.evictedAddr);
        resident.insert(a);
    }
    checkIntegrity(*z, resident);
}

TEST(ZArray, BloomFilterLimitsRepeatExpansion)
{
    // In a tiny array the L=3 walk revisits blocks; the Bloom variant
    // must stay consistent and count skipped repeats.
    auto z = makeZ(12, 3, 3, WalkStrategy::Bfs, 0, /*bloom=*/true);
    AccessContext c;
    Pcg32 rng(9);
    std::set<Addr> resident;
    for (int i = 0; i < 2000; i++) {
        Addr a = rng.next64() % 64;
        if (z->access(a, c) != kInvalidPos) continue;
        Replacement r = z->insert(a, c);
        if (r.evictedValid()) resident.erase(r.evictedAddr);
        resident.insert(a);
    }
    checkIntegrity(*z, resident);
    EXPECT_GT(z->walkStats().repeatsTotal, 0u);
}

TEST(ZArray, DfsUsesSinglePath)
{
    // DFS relocation chains can be long (up to R/W), unlike BFS (< L).
    auto z = makeZ(2048, 4, 3, WalkStrategy::Dfs);
    AccessContext c;
    Pcg32 rng(10);
    while (z->validCount() < z->numBlocks()) {
        Addr a = rng.next64();
        if (z->probe(a) == kInvalidPos) z->insert(a, c);
    }
    std::uint32_t max_relocs = 0;
    for (int i = 0; i < 500; i++) {
        Addr a = rng.next64();
        if (z->probe(a) != kInvalidPos) continue;
        Replacement r = z->insert(a, c);
        max_relocs = std::max(max_relocs, r.relocations);
    }
    // BFS L=3 would cap relocations at 2; DFS chains go deeper.
    EXPECT_GT(max_relocs, 2u);
}

TEST(ZArray, HybridDoublesCandidates)
{
    auto z = makeZ(4096, 4, 2, WalkStrategy::Hybrid);
    AccessContext c;
    Pcg32 rng(11);
    while (z->validCount() < z->numBlocks()) {
        Addr a = rng.next64();
        if (z->probe(a) == kInvalidPos) z->insert(a, c);
    }
    z->resetStats();
    for (int i = 0; i < 300; i++) {
        Addr a = rng.next64();
        if (z->probe(a) != kInvalidPos) continue;
        z->insert(a, c);
    }
    // Phase 1 gives 16; phase 2 expands the victim subtree.
    EXPECT_GT(z->walkStats().avgCandidates(), 20.0);
}

// ---------------------------------------------------------------------
// Skew-associative equivalence
// ---------------------------------------------------------------------

TEST(SkewAssoc, MatchesOneLevelZArray)
{
    SkewAssociativeArray skew(256, 4, std::make_unique<LruPolicy>(256));
    auto z1 = makeZ(256, 4, 1);
    AccessContext c;
    Pcg32 rng(12);
    for (int i = 0; i < 4000; i++) {
        Addr a = rng.next64() % 1024;
        BlockPos ps = skew.access(a, c);
        BlockPos pz = z1->access(a, c);
        EXPECT_EQ(ps == kInvalidPos, pz == kInvalidPos) << "iter " << i;
        if (ps == kInvalidPos) {
            Replacement rs = skew.insert(a, c);
            Replacement rz = z1->insert(a, c);
            EXPECT_EQ(rs.evictedAddr, rz.evictedAddr);
            EXPECT_EQ(rs.candidates, rz.candidates);
            EXPECT_EQ(rs.relocations, 0u);
            EXPECT_EQ(rz.relocations, 0u);
        }
    }
}

TEST(SkewAssoc, NeverRelocates)
{
    SkewAssociativeArray skew(64, 4, std::make_unique<LruPolicy>(64));
    AccessContext c;
    Pcg32 rng(13);
    for (int i = 0; i < 2000; i++) {
        Addr a = rng.next64() % 512;
        if (skew.probe(a) != kInvalidPos) continue;
        EXPECT_EQ(skew.insert(a, c).relocations, 0u);
    }
}

// ---------------------------------------------------------------------
// Invalidations (coherence path)
// ---------------------------------------------------------------------

TEST(ZArray, InvalidateThenReinsert)
{
    auto z = makeZ(64, 4, 2);
    AccessContext c;
    z->insert(5, c);
    EXPECT_TRUE(z->invalidate(5));
    EXPECT_EQ(z->probe(5), kInvalidPos);
    EXPECT_EQ(z->validCount(), 0u);
    z->insert(5, c);
    EXPECT_NE(z->probe(5), kInvalidPos);
}

TEST(ZArray, InsertingResidentBlockDies)
{
    auto z = makeZ(64, 4, 2);
    AccessContext c;
    z->insert(5, c);
    EXPECT_DEATH(z->insert(5, c), "probe");
}

} // namespace
} // namespace zc
