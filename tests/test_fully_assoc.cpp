/**
 * @file
 * Tests for FullyAssociativeArray and RandomCandidatesArray.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cache/cache_model.hpp"
#include "cache/fully_associative_array.hpp"
#include "cache/random_candidates_array.hpp"
#include "common/rng.hpp"
#include "replacement/lru.hpp"
#include "replacement/opt.hpp"

namespace zc {
namespace {

TEST(FullyAssoc, NoConflictMissesWithinCapacity)
{
    // Any working set <= capacity hits forever after the first touch,
    // regardless of address pattern — the defining property.
    CacheModel m(std::make_unique<FullyAssociativeArray>(
        64, std::make_unique<LruPolicy>(64)));
    for (int round = 0; round < 10; round++) {
        for (Addr a = 0; a < 64; a++) {
            m.access(a * 4096); // any pathological stride
        }
    }
    EXPECT_EQ(m.stats().misses, 64u);
    EXPECT_EQ(m.stats().hits, 9u * 64u);
}

TEST(FullyAssoc, LruEvictsGlobalOldest)
{
    auto arr = std::make_unique<FullyAssociativeArray>(
        4, std::make_unique<LruPolicy>(4));
    AccessContext c;
    for (Addr a = 0; a < 4; a++) arr->insert(a, c);
    arr->access(0, c); // refresh 0
    Replacement r = arr->insert(100, c);
    EXPECT_EQ(r.evictedAddr, 1u);
    EXPECT_EQ(r.candidates, 4u);
}

TEST(FullyAssoc, EveryResidentBlockIsACandidate)
{
    auto arr = std::make_unique<FullyAssociativeArray>(
        32, std::make_unique<LruPolicy>(32));
    AccessContext c;
    for (Addr a = 0; a < 32; a++) arr->insert(a, c);
    Replacement r = arr->insert(1000, c);
    EXPECT_EQ(r.candidates, 32u);
}

TEST(FullyAssoc, InvalidateFreesSlotForReuse)
{
    auto arr = std::make_unique<FullyAssociativeArray>(
        2, std::make_unique<LruPolicy>(2));
    AccessContext c;
    arr->insert(1, c);
    arr->insert(2, c);
    EXPECT_TRUE(arr->invalidate(1));
    Replacement r = arr->insert(3, c);
    EXPECT_FALSE(r.evictedValid());
    EXPECT_EQ(arr->validCount(), 2u);
}

TEST(FullyAssoc, LruSequenceStress)
{
    // Reference model check: a map-based LRU simulation must agree on
    // every eviction.
    constexpr std::uint32_t kBlocks = 16;
    auto arr = std::make_unique<FullyAssociativeArray>(
        kBlocks, std::make_unique<LruPolicy>(kBlocks));
    AccessContext c;
    Pcg32 rng(1);

    std::vector<Addr> ref_order; // front = LRU
    auto ref_touch = [&](Addr a) {
        for (auto it = ref_order.begin(); it != ref_order.end(); ++it) {
            if (*it == a) {
                ref_order.erase(it);
                break;
            }
        }
        ref_order.push_back(a);
    };

    for (int i = 0; i < 5000; i++) {
        Addr a = rng.next64() % 64;
        if (arr->access(a, c) != kInvalidPos) {
            ref_touch(a);
            continue;
        }
        Replacement r = arr->insert(a, c);
        if (r.evictedValid()) {
            ASSERT_EQ(r.evictedAddr, ref_order.front()) << "iter " << i;
            ref_order.erase(ref_order.begin());
        }
        ref_order.push_back(a);
    }
}

TEST(RandomCandidates, DrawsRequestedCandidateCount)
{
    auto arr = std::make_unique<RandomCandidatesArray>(
        64, 8, std::make_unique<LruPolicy>(64));
    AccessContext c;
    for (Addr a = 0; a < 64; a++) arr->insert(a, c);
    Replacement r = arr->insert(1000, c);
    // Reported candidates equal the full population for bookkeeping of
    // FullyAssociative? No: the subclass overrides selection, and the
    // replacement still reports the array's candidate policy — verify
    // the draw count through repeated evictions instead: the evicted
    // block should often NOT be the global LRU block.
    (void)r;
    std::uint64_t non_lru_evictions = 0;
    std::uint64_t evictions = 0;
    Pcg32 rng(2);
    for (int i = 0; i < 2000; i++) {
        Addr a = 2000 + rng.next64() % 4096;
        if (arr->probe(a) != kInvalidPos) continue;
        // Find the global LRU block first.
        double worst = 1e300;
        Addr lru_addr = kInvalidAddr;
        arr->forEachValid([&](BlockPos pos, Addr addr) {
            double s = arr->policy().score(pos);
            if (s < worst) {
                worst = s;
                lru_addr = addr;
            }
        });
        Replacement rr = arr->insert(a, c);
        if (rr.evictedValid()) {
            evictions++;
            if (rr.evictedAddr != lru_addr) non_lru_evictions++;
        }
    }
    EXPECT_GT(evictions, 1500u);
    // With 8 random draws from 64 blocks, the true LRU block is picked
    // only when sampled: P ~ 1-(1-1/64)^8 ~ 12%.
    EXPECT_GT(non_lru_evictions, evictions / 2);
}

TEST(RandomCandidates, DeterministicUnderSeed)
{
    auto make = [] {
        return std::make_unique<RandomCandidatesArray>(
            32, 4, std::make_unique<LruPolicy>(32), /*seed=*/77);
    };
    auto a1 = make(), a2 = make();
    AccessContext c;
    Pcg32 rng(3);
    for (int i = 0; i < 3000; i++) {
        Addr a = rng.next64() % 256;
        BlockPos p1 = a1->access(a, c);
        BlockPos p2 = a2->access(a, c);
        ASSERT_EQ(p1 == kInvalidPos, p2 == kInvalidPos);
        if (p1 == kInvalidPos) {
            ASSERT_EQ(a1->insert(a, c).evictedAddr,
                      a2->insert(a, c).evictedAddr);
        }
    }
}

} // namespace
} // namespace zc
