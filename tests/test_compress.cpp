/**
 * @file
 * The compressed-value tier (docs/compression.md), bottom to top:
 *
 *  - codec unit + property tests: round-trips over random and
 *    adversarial payloads (all-zero, all-distinct, incompressible,
 *    max-size), the maxCompressedSize bound, the raw-fallback
 *    passthrough guarantee, name/parse/factory plumbing, and the
 *    compress.codec fault site's structured Corruption;
 *  - ContentModel determinism and validation;
 *  - compressed-array invariants: the byte budget is never exceeded
 *    (makeSpace), extra evictions appear exactly when compression
 *    falls short of the tag surplus, and the equal-data-budget
 *    miss-rate acceptance claim (extra-tag BDI zcache strictly below
 *    the uncompressed zcache);
 *  - zkv bytes mode: byte-exact round trips, in-place updates,
 *    evictions, config validation of every rejected combination,
 *    decode-failure containment (Corruption, never a torn value),
 *    stats accounting, and multithreaded read-your-writes through the
 *    loadgen's deterministic payload scheme.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "cache/compressed_array.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "compress/codec.hpp"
#include "store/loadgen.hpp"
#include "store/zkv.hpp"
#include "trace/generator.hpp"

namespace zc {
namespace {

// ------------------------------------------------------------ codecs

std::vector<std::uint8_t>
roundTrip(const Codec& c, const std::vector<std::uint8_t>& src)
{
    std::vector<std::uint8_t> comp(c.maxCompressedSize(src.size()));
    auto n = c.compress(src.data(), src.size(), comp.data(), comp.size());
    EXPECT_TRUE(n.hasValue()) << c.name() << ": " << n.status().str();
    EXPECT_LE(*n, c.maxCompressedSize(src.size())) << c.name();
    std::vector<std::uint8_t> out(src.size());
    auto m = c.decompress(comp.data(), *n, out.data(), out.size());
    EXPECT_TRUE(m.hasValue()) << c.name() << ": " << m.status().str();
    EXPECT_EQ(*m, src.size()) << c.name();
    return out;
}

std::vector<std::uint8_t>
adversarialPayload(int kind, std::size_t n, Pcg32& rng)
{
    std::vector<std::uint8_t> v(n);
    switch (kind) {
      case 0: // all zero — the best case every scheme must nail
        break;
      case 1: // one repeated non-zero byte
        std::fill(v.begin(), v.end(), std::uint8_t{0xa5});
        break;
      case 2: // all-distinct ramp — defeats repeat detection, feeds delta
        for (std::size_t i = 0; i < n; i++)
            v[i] = static_cast<std::uint8_t>(i);
        break;
      default: // incompressible random — must hit the raw fallback
        for (auto& b : v) b = static_cast<std::uint8_t>(rng.next64());
        break;
    }
    return v;
}

TEST(Codec, RoundTripsRandomPayloadsAtEverySize)
{
    Pcg32 rng(1);
    for (CodecKind k : kAllCodecKinds) {
        auto c = makeCodec(k);
        for (std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{7}, std::size_t{8},
                              std::size_t{63}, std::size_t{64},
                              std::size_t{100}, std::size_t{224}}) {
            std::vector<std::uint8_t> src(n);
            for (auto& b : src) b = static_cast<std::uint8_t>(rng.next64());
            EXPECT_EQ(roundTrip(*c, src), src)
                << c->name() << " n=" << n;
        }
    }
}

TEST(Codec, RoundTripsAdversarialPayloads)
{
    Pcg32 rng(2);
    for (CodecKind k : kAllCodecKinds) {
        auto c = makeCodec(k);
        for (int kind = 0; kind < 4; kind++) {
            for (std::size_t n : {std::size_t{16}, std::size_t{64},
                                  std::size_t{224}}) {
                auto src = adversarialPayload(kind, n, rng);
                EXPECT_EQ(roundTrip(*c, src), src)
                    << c->name() << " kind=" << kind << " n=" << n;
            }
        }
    }
}

TEST(Codec, BdiCompressesTheCompressibleClasses)
{
    auto c = makeCodec(CodecKind::Bdi);
    Pcg32 rng(3);
    std::vector<std::vector<std::uint8_t>> cases;
    cases.push_back(adversarialPayload(0, 64, rng)); // all zero
    cases.push_back(adversarialPayload(1, 64, rng)); // repeated byte
    {
        // Small-delta u64 ramp — the base+delta sweet spot (BDI works
        // at word granularity; a byte ramp is raw-fallback territory).
        std::vector<std::uint8_t> v(64);
        for (std::size_t w = 0; w < 8; w++) {
            std::uint64_t word = 0x1000 + w * 3;
            std::memcpy(v.data() + w * 8, &word, 8);
        }
        cases.push_back(std::move(v));
    }
    for (std::size_t i = 0; i < cases.size(); i++) {
        const auto& src = cases[i];
        std::vector<std::uint8_t> comp(c->maxCompressedSize(src.size()));
        auto n =
            c->compress(src.data(), src.size(), comp.data(), comp.size());
        ASSERT_TRUE(n.hasValue());
        EXPECT_LT(*n, src.size()) << "class " << i;
        EXPECT_EQ(roundTrip(*c, src), src) << "class " << i;
    }
}

// The passthrough guarantee: incompressible input may grow only by the
// fixed header, never more — the bound maxCompressedSize promises.
TEST(Codec, IncompressibleInputStaysWithinTheRawFallbackBound)
{
    auto c = makeCodec(CodecKind::Bdi);
    Pcg32 rng(4);
    auto src = adversarialPayload(3, 224, rng);
    std::vector<std::uint8_t> comp(c->maxCompressedSize(src.size()));
    auto n = c->compress(src.data(), src.size(), comp.data(), comp.size());
    ASSERT_TRUE(n.hasValue());
    EXPECT_LE(*n, c->maxCompressedSize(src.size()));
    EXPECT_GE(*n, src.size()); // raw fallback carries the payload whole
}

TEST(Codec, UndersizedOutputBufferIsAStructuredError)
{
    for (CodecKind k : kAllCodecKinds) {
        auto c = makeCodec(k);
        std::uint8_t src[64] = {};
        std::uint8_t dst[4];
        auto n = c->compress(src, sizeof src, dst, sizeof dst);
        ASSERT_FALSE(n.hasValue()) << c->name();
        EXPECT_EQ(n.status().code(), ErrorCode::InvalidArgument)
            << c->name();
    }
}

TEST(Codec, BdiRejectsCorruptStreams)
{
    auto c = makeCodec(CodecKind::Bdi);
    std::uint8_t dst[64];
    // Shorter than the header.
    std::uint8_t tiny[2] = {0, 1};
    auto a = c->decompress(tiny, sizeof tiny, dst, sizeof dst);
    ASSERT_FALSE(a.hasValue());
    EXPECT_EQ(a.status().code(), ErrorCode::Corruption);
    // Unknown scheme byte.
    std::uint8_t bad[8] = {0xff, 8, 0, 0, 0, 0, 0, 0};
    auto b = c->decompress(bad, sizeof bad, dst, sizeof dst);
    ASSERT_FALSE(b.hasValue());
    EXPECT_EQ(b.status().code(), ErrorCode::Corruption);
}

TEST(Codec, FaultSiteInjectsStructuredCorruption)
{
    for (CodecKind k : kAllCodecKinds) {
        auto c = makeCodec(k);
        std::uint8_t src[16] = {1, 2, 3};
        std::vector<std::uint8_t> comp(c->maxCompressedSize(sizeof src));
        auto n = c->compress(src, sizeof src, comp.data(), comp.size());
        ASSERT_TRUE(n.hasValue());
        std::uint8_t out[16];
        ScopedFault fault("compress.codec");
        auto m = c->decompress(comp.data(), *n, out, sizeof out);
        ASSERT_FALSE(m.hasValue()) << c->name();
        EXPECT_EQ(m.status().code(), ErrorCode::Corruption) << c->name();
    }
}

TEST(Codec, NamesParseAndFactoryAgree)
{
    for (CodecKind k : kAllCodecKinds) {
        auto parsed = parseCodecKind(codecKindName(k));
        ASSERT_TRUE(parsed.hasValue()) << codecKindName(k);
        EXPECT_EQ(*parsed, k);
        auto c = makeCodec(k);
        EXPECT_EQ(c->kind(), k);
        EXPECT_EQ(c->name(), std::string(codecKindName(k)));
    }
    auto bad = parseCodecKind("gzip");
    ASSERT_FALSE(bad.hasValue());
    EXPECT_EQ(bad.status().code(), ErrorCode::NotFound);
}

// ------------------------------------------------------ ContentModel

TEST(ContentModel, FillIsAPureFunctionOfAddrAndSeed)
{
    ContentModel m;
    std::uint8_t a[64], b[64];
    for (std::uint64_t addr : {0ULL, 1ULL, 0x1234ULL, ~0ULL >> 1}) {
        m.fill(addr, a, sizeof a);
        m.fill(addr, b, sizeof b);
        EXPECT_EQ(std::memcmp(a, b, sizeof a), 0) << addr;
    }
    ContentModel other = m;
    other.seed = m.seed + 1;
    m.fill(42, a, sizeof a);
    other.fill(42, b, sizeof b);
    EXPECT_NE(std::memcmp(a, b, sizeof a), 0);
}

TEST(ContentModel, ValidateRejectsOverfullClassMix)
{
    ContentModel m;
    m.zeroPct = 60;
    m.repeatPct = 30;
    m.deltaPct = 20; // 110% total
    EXPECT_FALSE(m.validate().isOk());
}

// -------------------------------------------------- compressed array

ArraySpec
compressedSpec(std::uint32_t data_blocks, std::uint32_t ratio,
               CodecKind codec, const ContentModel& content)
{
    ArraySpec s;
    s.kind = ArrayKind::CompressedZ;
    s.blocks = data_blocks * ratio;
    s.ways = 4;
    s.levels = 2;
    s.policy = PolicyKind::Lru;
    s.seed = 5;
    s.extraTagRatio = ratio;
    s.lineBytes = 64;
    s.codec = codec;
    s.content = content;
    return s;
}

/**
 * The defining invariant: occupied stored bytes never exceed the data
 * budget, at any point in the run — makeSpace must fire extra
 * evictions before an insert that would overflow, and those show up
 * in extraEvictions exactly when the content is too incompressible to
 * fund the tag surplus.
 */
TEST(CompressedArray, ByteBudgetIsNeverExceeded)
{
    ContentModel incompressible;
    incompressible.zeroPct = 0;
    incompressible.repeatPct = 0;
    incompressible.deltaPct = 0;
    auto spec = compressedSpec(256, 2, CodecKind::Bdi, incompressible);
    CacheModel m(makeArray(spec));
    const auto& cz = static_cast<const CompressedZArray&>(m.array());
    Pcg32 rng(6);
    for (int i = 0; i < 20000; i++) {
        m.access(rng.next64() % 2048);
        ASSERT_LE(cz.sizeMirror().occupiedBytes(), cz.dataBudgetBytes())
            << "access " << i;
    }
    // Random content cannot compress 2x, so the doubled tag count must
    // have been paid for with budget evictions.
    EXPECT_GT(m.stats().extraEvictions, 0u);
    EXPECT_EQ(m.stats().extraEvictions,
              cz.sizeMirror().extraEvictions());
}

TEST(CompressedArray, CompressibleContentFundsTheExtraTagsWithoutEvictions)
{
    ContentModel zeros;
    zeros.zeroPct = 100;
    zeros.repeatPct = 0;
    zeros.deltaPct = 0;
    auto spec = compressedSpec(256, 2, CodecKind::Bdi, zeros);
    CacheModel m(makeArray(spec));
    Pcg32 rng(6);
    // Footprint fits the doubled tag count: all-zero lines compress
    // far better than 2x, so no budget eviction may ever fire.
    for (int i = 0; i < 20000; i++) m.access(rng.next64() % 512);
    EXPECT_EQ(m.stats().extraEvictions, 0u);
    const auto& cz = static_cast<const CompressedZArray&>(m.array());
    EXPECT_GT(static_cast<double>(cz.sizeMirror().rawBytesTotal()) /
                  static_cast<double>(cz.sizeMirror().storedBytesTotal()),
              2.0);
}

/**
 * The acceptance claim (ISSUE 10): on the pinned profile, at an EQUAL
 * data byte budget, the extra-tag BDI zcache has a strictly lower
 * miss rate than the uncompressed zcache. Mirrors
 * bench/compressed_curves.cpp at a test-sized scale: 512 data lines,
 * footprint 2x — past the uncompressed capacity, inside the
 * compressed tier's effective capacity on the default content mix.
 */
TEST(CompressedArray, ExtraTagBdiBeatsUncompressedAtEqualDataBudget)
{
    const std::uint32_t data_blocks = 512;
    const std::uint64_t footprint = 1024; // 2x the uncompressed capacity
    const std::uint64_t accesses = 200000;

    ArraySpec plain;
    plain.kind = ArrayKind::ZCache;
    plain.blocks = data_blocks;
    plain.ways = 4;
    plain.levels = 2;
    plain.policy = PolicyKind::Lru;
    plain.seed = 5;

    ContentModel content; // default mix: 20% zero, 20% repeat, 40% delta
    auto comp = compressedSpec(data_blocks, 2, CodecKind::Bdi, content);

    auto run = [&](const ArraySpec& s) {
        CacheModel m(makeArray(s));
        ZipfGenerator gen(0, footprint, 0.9, 17);
        for (std::uint64_t i = 0; i < accesses; i++) {
            m.access(gen.next().lineAddr);
        }
        return m.stats().missRate();
    };

    double plain_miss = run(plain);
    double comp_miss = run(comp);
    EXPECT_LT(comp_miss, plain_miss)
        << "compressed " << comp_miss << " vs plain " << plain_miss;
}

// ----------------------------------------------------- zkv bytes mode

ZkvConfig
bytesConfig(std::uint32_t blocks = 4096)
{
    ZkvConfig cfg;
    cfg.shards = 2;
    cfg.array.blocks = blocks;
    cfg.value.maxBytes = kZkvMaxValueBytes;
    cfg.value.codec = CodecKind::Bdi;
    return cfg;
}

TEST(ZkvBytes, RoundTripsAndUpdatesInPlace)
{
    auto store = ZkvStore::create(bytesConfig());
    ASSERT_TRUE(store.hasValue());
    ZkvStore& kv = **store;
    EXPECT_TRUE(kv.bytesMode());

    Pcg32 rng(7);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{4},
                          std::size_t{64},
                          std::size_t{kZkvMaxValueBytes}}) {
        std::vector<std::uint8_t> v(n);
        for (auto& b : v) b = static_cast<std::uint8_t>(rng.next64());
        auto pr = kv.putBytes(n + 1, v);
        ASSERT_TRUE(pr.hasValue()) << n;
        EXPECT_TRUE(pr->inserted);
        auto got = kv.getBytes(n + 1);
        ASSERT_TRUE(got.hasValue()) << n;
        ASSERT_TRUE(got->has_value()) << n;
        EXPECT_EQ(**got, v) << n;
    }

    // Update in place: longer, shorter, then equal-length payloads.
    for (std::size_t n : {std::size_t{200}, std::size_t{8},
                          std::size_t{8}}) {
        std::vector<std::uint8_t> v(n);
        for (auto& b : v) b = static_cast<std::uint8_t>(rng.next64());
        auto pr = kv.putBytes(65, v);
        ASSERT_TRUE(pr.hasValue());
        auto got = kv.getBytes(65);
        ASSERT_TRUE(got.hasValue());
        ASSERT_TRUE(got->has_value());
        EXPECT_EQ(**got, v);
    }

    auto miss = kv.getBytes(0xdeadULL);
    ASSERT_TRUE(miss.hasValue());
    EXPECT_FALSE(miss->has_value());
}

TEST(ZkvBytes, RejectsOversizeAndWrongModeCalls)
{
    ZkvConfig cfg = bytesConfig();
    cfg.value.maxBytes = 32;
    auto store = ZkvStore::create(cfg);
    ASSERT_TRUE(store.hasValue());
    ZkvStore& kv = **store;

    std::vector<std::uint8_t> big(33, 0xab);
    auto pr = kv.putBytes(1, big);
    ASSERT_FALSE(pr.hasValue());
    EXPECT_EQ(pr.status().code(), ErrorCode::InvalidArgument);

    // u64 put on a bytes store (get() asserts — it is compile-time
    // unreachable for bytes-mode callers, docs/store.md).
    EXPECT_EQ(kv.put(1, 1).status().code(), ErrorCode::InvalidArgument);

    // Bytes entry points on a u64 store.
    auto u64store = ZkvStore::create(ZkvConfig{});
    ASSERT_TRUE(u64store.hasValue());
    std::vector<std::uint8_t> small(4, 1);
    EXPECT_EQ((*u64store)->putBytes(1, small).status().code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ((*u64store)->getBytes(1).status().code(),
              ErrorCode::InvalidArgument);
}

TEST(ZkvBytes, ValidateRejectsIncompatibleConfigs)
{
    { // over the protocol cap
        ZkvConfig cfg = bytesConfig();
        cfg.value.maxBytes = kZkvMaxValueBytes + 1;
        EXPECT_FALSE(ZkvStore::create(cfg).hasValue());
    }
    { // optimistic read path cannot snapshot byte payloads
        ZkvConfig cfg = bytesConfig();
        cfg.readPath = ReadPath::Optimistic;
        auto r = ZkvStore::create(cfg);
        ASSERT_FALSE(r.hasValue());
        EXPECT_EQ(r.status().code(), ErrorCode::Unsupported);
    }
    { // durability tier records u64 values
        ZkvConfig cfg = bytesConfig();
        cfg.persist.dataDir = "/tmp/zc-test-compress-persist";
        auto r = ZkvStore::create(cfg);
        ASSERT_FALSE(r.hasValue());
        EXPECT_EQ(r.status().code(), ErrorCode::Unsupported);
    }
    { // compressed array kinds are simulator-only
        ZkvConfig cfg;
        cfg.array.kind = ArrayKind::CompressedZ;
        auto r = ZkvStore::create(cfg);
        ASSERT_FALSE(r.hasValue());
        EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument);
    }
}

TEST(ZkvBytes, EvictionReportsTheEvictedKey)
{
    ZkvConfig cfg = bytesConfig(64);
    cfg.shards = 1;
    auto store = ZkvStore::create(cfg);
    ASSERT_TRUE(store.hasValue());
    ZkvStore& kv = **store;
    std::vector<std::uint8_t> v(32, 0x11);
    bool evicted = false;
    for (std::uint64_t key = 1; key <= 256 && !evicted; key++) {
        auto pr = kv.putBytes(key, v);
        ASSERT_TRUE(pr.hasValue()) << key;
        if (pr->evicted) {
            evicted = true;
            // The evicted key must be gone; the payload is dropped,
            // never decompressed into the result.
            auto got = kv.getBytes(pr->evictedKey);
            ASSERT_TRUE(got.hasValue());
            EXPECT_FALSE(got->has_value());
            EXPECT_EQ(pr->evictedValue, 0u);
        }
    }
    EXPECT_TRUE(evicted);
}

/**
 * Satellite (a): a decode failure surfaces as Corruption and never as
 * a torn or partial value — and it is per-operation: the entry stays
 * resident and readable once the fault clears.
 */
TEST(ZkvBytes, DecompressFailureIsCorruptionNeverATornValue)
{
    auto store = ZkvStore::create(bytesConfig());
    ASSERT_TRUE(store.hasValue());
    ZkvStore& kv = **store;
    std::vector<std::uint8_t> v(100);
    for (std::size_t i = 0; i < v.size(); i++) {
        v[i] = static_cast<std::uint8_t>(i * 3);
    }
    ASSERT_TRUE(kv.putBytes(9, v).hasValue());
    {
        ScopedFault fault("compress.codec");
        auto got = kv.getBytes(9);
        ASSERT_FALSE(got.hasValue());
        EXPECT_EQ(got.status().code(), ErrorCode::Corruption);
    }
    auto after = kv.getBytes(9);
    ASSERT_TRUE(after.hasValue());
    ASSERT_TRUE(after->has_value());
    EXPECT_EQ(**after, v);
}

TEST(ZkvBytes, CompressionTotalsAccountResidentBytes)
{
    auto store = ZkvStore::create(bytesConfig());
    ASSERT_TRUE(store.hasValue());
    ZkvStore& kv = **store;
    std::vector<std::uint8_t> zeros(64, 0);
    for (std::uint64_t key = 1; key <= 100; key++) {
        ASSERT_TRUE(kv.putBytes(key, zeros).hasValue());
    }
    ZkvCompressionStats cp = kv.compressionTotals();
    EXPECT_EQ(cp.compressCalls, 100u);
    EXPECT_EQ(cp.rawBytesTotal, 6400u);
    EXPECT_LT(cp.storedBytesTotal, cp.rawBytesTotal);
    EXPECT_EQ(cp.residentRawBytes, 6400u);
    EXPECT_EQ(cp.residentStoredBytes, cp.storedBytesTotal);
    EXPECT_GT(cp.ratio(), 1.0);

    // Erase returns the resident accounting to zero.
    for (std::uint64_t key = 1; key <= 100; key++) {
        ASSERT_TRUE(kv.erase(key));
    }
    cp = kv.compressionTotals();
    EXPECT_EQ(cp.residentRawBytes, 0u);
    EXPECT_EQ(cp.residentStoredBytes, 0u);
}

/**
 * The acceptance run, in-process: multithreaded loadgen against a
 * compressed store, byte-exact read-your-writes (verifyFailures == 0
 * — every hit regenerated from (key, writer tid) and compared whole)
 * and a realized ratio >= 1 on the mixed payload classes.
 */
TEST(ZkvBytes, MultithreadedLoadgenReadsItsWritesByteExactly)
{
    LoadGenConfig cfg;
    cfg.store = bytesConfig();
    cfg.threads = 4;
    cfg.opsPerThread = 20000;
    cfg.seed = 11;
    cfg.valueBytesMin = 8;
    cfg.valueBytesMax = 128;
    auto r = runLoadGen(cfg);
    ASSERT_TRUE(r.hasValue()) << r.status().str();
    ThreadStats agg = r->aggregate();
    EXPECT_GT(agg.getHits, 0u);
    EXPECT_EQ(agg.verifyFailures, 0u);
    EXPECT_EQ(agg.getErrors, 0u);
    EXPECT_EQ(agg.putErrors, 0u);
    EXPECT_GE(r->compression.ratio(), 1.0);
    EXPECT_GT(r->compression.compressCalls, 0u);
    EXPECT_GT(r->residentKeys, 0u);
}

} // namespace
} // namespace zc
