/**
 * @file
 * Property tests over the full 72-workload suite (parameterized): every
 * profile must build generators for every core, stay inside its address
 * regions, honour its store fraction and memory intensity, and be
 * deterministic — the contract the experiment harnesses rely on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "trace/workloads.hpp"

namespace zc {
namespace {

class SuiteProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    const WorkloadProfile& profile() const
    {
        return WorkloadRegistry::byName(GetParam());
    }
};

TEST_P(SuiteProperty, BuildsGeneratorsForAllCores)
{
    const auto& w = profile();
    for (std::uint32_t c : {0u, 1u, 15u, 31u}) {
        auto gen = WorkloadRegistry::makeCoreGenerator(w, c, 32, 1);
        ASSERT_NE(gen, nullptr);
        for (int i = 0; i < 100; i++) {
            MemRecord r = gen->next();
            EXPECT_NE(r.lineAddr, kInvalidAddr);
        }
    }
}

TEST_P(SuiteProperty, StoreFractionWithinTolerance)
{
    const auto& w = profile();
    auto gen = WorkloadRegistry::makeCoreGenerator(w, 0, 32, 1);
    int stores = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++) {
        if (gen->next().type == AccessType::Store) stores++;
    }
    double expect = w.category == WorkloadCategory::Spec2006Mix
                        ? -1.0 // mixes vary per core; skip exact check
                        : w.params.storeFrac;
    if (expect >= 0.0) {
        EXPECT_NEAR(static_cast<double>(stores) / n, expect, 0.03)
            << w.name;
    } else {
        EXPECT_GT(stores, 0);
        EXPECT_LT(stores, n);
    }
}

TEST_P(SuiteProperty, MeanInstGapWithinTolerance)
{
    const auto& w = profile();
    if (w.category == WorkloadCategory::Spec2006Mix) GTEST_SKIP();
    auto gen = WorkloadRegistry::makeCoreGenerator(w, 3, 32, 1);
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++) total += gen->next().instGap;
    EXPECT_NEAR(total / n, w.params.meanInstGap,
                0.15 * w.params.meanInstGap + 0.3)
        << w.name;
}

TEST_P(SuiteProperty, DeterministicAcrossConstruction)
{
    const auto& w = profile();
    auto g1 = WorkloadRegistry::makeCoreGenerator(w, 7, 32, 42);
    auto g2 = WorkloadRegistry::makeCoreGenerator(w, 7, 32, 42);
    for (int i = 0; i < 2000; i++) {
        MemRecord a = g1->next(), b = g2->next();
        ASSERT_EQ(a.lineAddr, b.lineAddr) << w.name << " at " << i;
        ASSERT_EQ(a.instGap, b.instGap);
        ASSERT_EQ(a.type, b.type);
    }
}

TEST_P(SuiteProperty, SeedChangesPrivateStreams)
{
    const auto& w = profile();
    auto g1 = WorkloadRegistry::makeCoreGenerator(w, 0, 32, 1);
    auto g2 = WorkloadRegistry::makeCoreGenerator(w, 0, 32, 2);
    int same = 0;
    for (int i = 0; i < 2000; i++) {
        if (g1->next().lineAddr == g2->next().lineAddr) same++;
    }
    // Strided components coincide across seeds by design; the mix and
    // hot components must not make the streams identical.
    EXPECT_LT(same, 1900) << w.name;
}

TEST_P(SuiteProperty, PrivateRegionsDisjointAcrossCores)
{
    const auto& w = profile();
    if (w.multithreaded && w.sharedFrac > 0.3) GTEST_SKIP();
    auto g0 = WorkloadRegistry::makeCoreGenerator(w, 0, 32, 1);
    auto g1 = WorkloadRegistry::makeCoreGenerator(w, 1, 32, 1);
    std::set<Addr> a0;
    for (int i = 0; i < 5000; i++) a0.insert(g0->next().lineAddr);
    int shared = 0;
    for (int i = 0; i < 5000; i++) {
        if (a0.count(g1->next().lineAddr)) shared++;
    }
    if (w.multithreaded) {
        EXPECT_LT(shared, 5000 * (w.sharedFrac + 0.1)) << w.name;
    } else {
        EXPECT_EQ(shared, 0) << w.name;
    }
}

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const auto& w : WorkloadRegistry::all()) names.push_back(w.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(All72, SuiteProperty,
                         ::testing::ValuesIn(allNames()),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (auto& ch : n) {
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(ch))) {
                                     ch = '_';
                                 }
                             }
                             return n;
                         });

} // namespace
} // namespace zc
