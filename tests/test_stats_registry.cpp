/**
 * @file
 * Tests for the observability stack: JSON document model, hierarchical
 * stats registry, the zcache walk-event trace, and the CmpSystem epoch
 * sampler (via runExperiment).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <memory>
#include <string>

#include "cache/z_array.hpp"
#include "common/json.hpp"
#include "common/stats_registry.hpp"
#include "replacement/bucketed_lru.hpp"
#include "sim/experiment.hpp"

namespace zc {
namespace {

// ---------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------

TEST(Json, WriterBasics)
{
    JsonValue v = JsonValue::object();
    v.set("u", JsonValue(std::uint64_t{42}));
    v.set("d", JsonValue(1.5));
    v.set("s", JsonValue("hi\n\"there\""));
    v.set("b", JsonValue(true));
    v.set("n", JsonValue());
    EXPECT_EQ(v.str(),
              "{\"u\":42,\"d\":1.5,\"s\":\"hi\\n\\\"there\\\"\","
              "\"b\":true,\"n\":null}");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    JsonValue v = JsonValue::object();
    v.set("zebra", JsonValue(1u));
    v.set("apple", JsonValue(2u));
    v.set("mango", JsonValue(3u));
    EXPECT_EQ(v.obj()[0].first, "zebra");
    EXPECT_EQ(v.obj()[1].first, "apple");
    EXPECT_EQ(v.obj()[2].first, "mango");
    // Overwriting keeps the original slot.
    v.set("apple", JsonValue(9u));
    EXPECT_EQ(v.obj()[1].first, "apple");
    EXPECT_EQ(v.obj()[1].second.asU64(), 9u);
}

TEST(Json, NonFiniteDoublesSerializeAsNull)
{
    JsonValue v = JsonValue::array();
    v.push(JsonValue(std::nan("")));
    v.push(JsonValue(std::numeric_limits<double>::infinity()));
    EXPECT_EQ(v.str(), "[null,null]");
}

TEST(Json, ParseRoundTrip)
{
    JsonValue v = JsonValue::object();
    v.set("counters", JsonValue::array());
    for (std::uint64_t i = 0; i < 4; i++) {
        v.obj()[0].second.push(JsonValue(i * 1000));
    }
    v.set("pi", JsonValue(3.25)); // exactly representable
    v.set("name", JsonValue("walk trace"));
    v.set("on", JsonValue(false));

    for (int indent : {-1, 2}) {
        auto parsed = JsonValue::parse(v.str(indent));
        ASSERT_TRUE(parsed.has_value()) << "indent=" << indent;
        EXPECT_EQ(parsed->str(), v.str());
    }
}

TEST(Json, ParseRejectsMalformed)
{
    for (const char* bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\":1} trailing", "nul",
          "\"unterminated", "{\"a\" 1}"}) {
        EXPECT_FALSE(JsonValue::parse(bad).has_value()) << bad;
    }
}

TEST(Json, ParseNumberKinds)
{
    auto doc = JsonValue::parse("[18446744073709551615, -3, 2.5, 1e3]");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->arr()[0].kind(), JsonValue::Kind::U64);
    EXPECT_EQ(doc->arr()[0].asU64(), 18446744073709551615ull);
    EXPECT_EQ(doc->arr()[1].kind(), JsonValue::Kind::F64);
    EXPECT_DOUBLE_EQ(doc->arr()[1].asDouble(), -3.0);
    EXPECT_DOUBLE_EQ(doc->arr()[2].asDouble(), 2.5);
    EXPECT_DOUBLE_EQ(doc->arr()[3].asDouble(), 1000.0);
}

// ---------------------------------------------------------------------
// StatGroup / StatsRegistry
// ---------------------------------------------------------------------

TEST(StatsRegistry, BoundStatsReadLiveValues)
{
    StatsRegistry reg;
    std::uint64_t hits = 0;
    reg.root().addCounter("hits", "demand hits", [&] { return hits; });

    EXPECT_EQ(reg.toJson().find("hits")->asU64(), 0u);
    hits = 7;
    EXPECT_EQ(reg.toJson().find("hits")->asU64(), 7u);
}

TEST(StatsRegistry, HierarchyAndDumpOrder)
{
    StatsRegistry reg;
    StatGroup& l2 = reg.root().group("l2", "shared L2");
    l2.addConst("banks", "bank count", JsonValue(8u));
    StatGroup& b0 = l2.group("bank0");
    b0.addConst("blocks", "", JsonValue(1024u));
    // group() is get-or-create.
    EXPECT_EQ(&l2.group("bank0"), &b0);

    JsonValue doc = reg.toJson();
    const JsonValue* l2j = doc.find("l2");
    ASSERT_NE(l2j, nullptr);
    // Stats come before child groups, in registration order.
    EXPECT_EQ(l2j->obj()[0].first, "banks");
    EXPECT_EQ(l2j->obj()[1].first, "bank0");
    EXPECT_EQ(l2j->find("bank0")->find("blocks")->asU64(), 1024u);
}

TEST(StatsRegistry, DuplicateNamesThrow)
{
    StatsRegistry reg;
    reg.root().addConst("x", "", JsonValue(1u));
    EXPECT_THROW(reg.root().addConst("x", "", JsonValue(2u)),
                 std::invalid_argument);
    EXPECT_THROW(reg.root().group("x"), std::invalid_argument);

    reg.root().group("g");
    EXPECT_THROW(reg.root().addConst("g", "", JsonValue(3u)),
                 std::invalid_argument);
}

TEST(StatsRegistry, ResetRunsHooksDepthFirst)
{
    StatsRegistry reg;
    std::string order;
    reg.root().addResetHook([&] { order += "root"; });
    reg.root().group("child").addResetHook([&] { order += "child,"; });
    reg.reset();
    EXPECT_EQ(order, "child,root");
}

TEST(StatsRegistry, HistogramDump)
{
    StatsRegistry reg;
    UnitHistogram h(4);
    h.record(0.1);
    h.record(0.9);
    reg.root().addHistogram("prio", "eviction priorities", &h);

    JsonValue doc = reg.toJson();
    const JsonValue* d = doc.find("prio");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->find("samples")->asU64(), 2u);
    EXPECT_EQ(d->find("bins")->asU64(), 4u);
    EXPECT_EQ(d->find("counts")->arr()[0].asU64(), 1u);
    EXPECT_EQ(d->find("counts")->arr()[3].asU64(), 1u);
}

TEST(StatsRegistry, SchemaMirrorsTree)
{
    StatsRegistry reg;
    reg.root().addConst("ipc", "aggregate IPC", JsonValue(1.0));
    reg.root().group("l2", "shared L2").addConst("misses", "L2 misses",
                                                 JsonValue(0u));
    JsonValue schema = reg.schema();
    EXPECT_EQ(schema.find("ipc")->asString(), "aggregate IPC");
    EXPECT_EQ(schema.find("l2")->find("_desc")->asString(), "shared L2");
    EXPECT_EQ(schema.find("l2")->find("misses")->asString(), "L2 misses");
}

TEST(StatsRegistry, WriteJsonFileRoundTrips)
{
    StatsRegistry reg;
    reg.root().addConst("answer", "", JsonValue(42u));
    std::string path = testing::TempDir() + "zc_stats_registry_test.json";
    ASSERT_TRUE(reg.writeJsonFile(path));

    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    auto parsed = JsonValue::parse(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("answer")->asU64(), 42u);
}

// ---------------------------------------------------------------------
// ZArray walk-event trace
// ---------------------------------------------------------------------

ZArray
makeTracedArray(std::uint32_t blocks, std::uint32_t capacity)
{
    ZArrayConfig cfg;
    cfg.ways = 4;
    cfg.levels = 2;
    cfg.traceCapacity = capacity;
    return ZArray(blocks, cfg,
                  std::make_unique<BucketedLruPolicy>(blocks));
}

TEST(WalkTrace, RecordsEventsAndCapsRing)
{
    ZArray z = makeTracedArray(64, 8);
    ASSERT_TRUE(z.walkTraceEnabled());
    // 4x footprint forces steady-state replacements.
    for (Addr a = 0; a < 2000; a++) {
        AccessContext ctx;
        if (z.access(a % 256, ctx) == kInvalidPos) z.insert(a % 256, ctx);
    }
    const WalkTraceSummary& s = z.walkTraceSummary();
    EXPECT_EQ(s.events, z.walkStats().walks);
    EXPECT_GT(s.events, 8u);

    auto ring = z.walkTraceSnapshot();
    EXPECT_EQ(ring.size(), 8u); // capped at capacity, not event count
    for (const WalkEvent& e : ring) {
        EXPECT_GE(e.candidates, 1u);
        EXPECT_LE(e.candidates, ZArray::nominalCandidates(4, 2));
        EXPECT_LE(e.victimDepth, e.levels);
        EXPECT_LT(e.evictionRank, e.candidates);
        EXPECT_EQ(e.latencyCycles > 0, true);
    }
    // Default 200-cycle budget dwarfs a 2-level walk: all hidden.
    EXPECT_EQ(s.hidden, s.events);
}

TEST(WalkTrace, DisabledByDefaultAndZeroCost)
{
    ZArrayConfig cfg;
    cfg.ways = 4;
    cfg.levels = 2;
    ZArray z(64, cfg, std::make_unique<BucketedLruPolicy>(64));
    EXPECT_FALSE(z.walkTraceEnabled());
    for (Addr a = 0; a < 1000; a++) {
        AccessContext ctx;
        if (z.access(a % 256, ctx) == kInvalidPos) z.insert(a % 256, ctx);
    }
    EXPECT_EQ(z.walkTraceSummary().events, 0u);
    EXPECT_TRUE(z.walkTraceSnapshot().empty());
}

TEST(WalkTrace, ResetStatsClearsTrace)
{
    ZArray z = makeTracedArray(64, 8);
    for (Addr a = 0; a < 1000; a++) {
        AccessContext ctx;
        if (z.access(a % 256, ctx) == kInvalidPos) z.insert(a % 256, ctx);
    }
    ASSERT_GT(z.walkTraceSummary().events, 0u);
    z.resetStats();
    EXPECT_EQ(z.walkTraceSummary().events, 0u);
    EXPECT_TRUE(z.walkTraceSnapshot().empty());
}

TEST(WalkTrace, AppearsInRegisteredStats)
{
    ZArray z = makeTracedArray(64, 8);
    for (Addr a = 0; a < 1000; a++) {
        AccessContext ctx;
        if (z.access(a % 256, ctx) == kInvalidPos) z.insert(a % 256, ctx);
    }
    StatsRegistry reg;
    z.registerStats(reg.root().group("array"));
    JsonValue doc = reg.toJson();
    const JsonValue* arr = doc.find("array");
    ASSERT_NE(arr, nullptr);
    const JsonValue* walk = arr->find("walk");
    ASSERT_NE(walk, nullptr);
    EXPECT_EQ(walk->find("walks")->asU64(), z.walkStats().walks);
    const JsonValue* trace = arr->find("walk_trace");
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(trace->find("events")->asU64(),
              z.walkTraceSummary().events);
    EXPECT_EQ(trace->find("ring")->size(), 8u);
}

// ---------------------------------------------------------------------
// Epoch sampler + full experiment stats tree
// ---------------------------------------------------------------------

TEST(EpochSampler, SeriesMonotoneAndStatsTreeComplete)
{
    RunParams p;
    p.workload = "gcc";
    p.l2Spec.kind = ArrayKind::ZCache;
    p.l2Spec.ways = 4;
    p.l2Spec.levels = 2;
    p.l2Spec.policy = PolicyKind::BucketedLru;
    p.warmupInstr = 1500;
    p.measureInstr = 6000;
    p.epochInstr = 0; // auto: ~8 samples
    p.walkTraceCapacity = 16;
    RunResult r = runExperiment(p);

    // Epoch series: at least 2 samples, strictly monotone in the
    // cumulative axes.
    ASSERT_GE(r.epochs.size(), 2u);
    for (std::size_t i = 1; i < r.epochs.size(); i++) {
        EXPECT_GT(r.epochs[i].instructions, r.epochs[i - 1].instructions);
        EXPECT_GE(r.epochs[i].cycles, r.epochs[i - 1].cycles);
    }

    // The stats tree carries the acceptance-critical subtrees.
    const JsonValue* sys = r.stats.find("system");
    ASSERT_NE(sys, nullptr);
    const JsonValue* core0 = sys->find("cores")->find("core0");
    ASSERT_NE(core0, nullptr);
    EXPECT_GT(core0->find("ipc")->asDouble(), 0.0);

    const JsonValue* bank0 = sys->find("l2")->find("bank0");
    ASSERT_NE(bank0, nullptr);
    EXPECT_NE(bank0->find("walk"), nullptr);
    EXPECT_GT(bank0->find("walk")->find("walks")->asU64(), 0u);

    const JsonValue* energy = r.stats.find("energy");
    ASSERT_NE(energy, nullptr);
    EXPECT_GT(energy->find("total_j")->asDouble(), 0.0);

    const JsonValue* samples = sys->find("epochs")->find("samples");
    ASSERT_NE(samples, nullptr);
    EXPECT_EQ(samples->size(), r.epochs.size());

    // The whole tree must survive a serialize -> parse round trip.
    auto parsed = JsonValue::parse(r.stats.str(2));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->str(), r.stats.str());
}

TEST(EpochSampler, DisabledWhenIntervalLargerThanRun)
{
    RunParams p;
    p.workload = "gcc";
    p.l2Spec.kind = ArrayKind::SetAssoc;
    p.l2Spec.ways = 4;
    p.l2Spec.policy = PolicyKind::BucketedLru;
    p.warmupInstr = 0;
    p.measureInstr = 2000;
    p.epochInstr = 1ull << 40;
    RunResult r = runExperiment(p);
    EXPECT_TRUE(r.epochs.empty());
}

} // namespace
} // namespace zc
