/**
 * @file
 * Tests of the parallel sweep engine (src/runner): the thread pool's
 * execution and backpressure, runGrid's grid-order determinism and
 * fault isolation (exception capture + bounded retry), the SweepSpec
 * seed derivation, and the SweepRunner end-to-end contract that
 * --jobs=N produces byte-identical results to --jobs=1.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"

namespace zc {
namespace {

SweepOptions
quiet(unsigned jobs)
{
    SweepOptions o;
    o.jobs = jobs;
    o.progress = false;
    return o;
}

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsEverySubmittedTask)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 200; i++) {
            pool.submit([&count] { count.fetch_add(1); });
        }
        pool.waitIdle();
        EXPECT_EQ(count.load(), 200);
    }
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency)
{
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, ExplicitZeroThreadsClampsToAtLeastOne)
{
    // --jobs=0 means "auto". std::thread::hardware_concurrency() is
    // allowed to return 0 (the value is only a hint), so the auto path
    // must clamp to one worker — a pool with zero workers would accept
    // tasks and never run them. This pins the clamp in place.
    ThreadPool pool(0);
    EXPECT_GE(pool.threadCount(), 1u);
    std::atomic<int> count{0};
    for (int i = 0; i < 16; i++) {
        pool.submit([&count] { count.fetch_add(1); });
    }
    pool.waitIdle();
    EXPECT_EQ(count.load(), 16);
}

TEST(Grid, DefaultJobsIsNeverZero)
{
    // Same clamp one layer up: the sweep engine's jobs=0 fallback.
    EXPECT_GE(detail::defaultJobs(), 1u);
}

TEST(Grid, JobsZeroRunsTheWholeGrid)
{
    std::atomic<int> ran{0};
    auto outs = runGrid<int>(
        12,
        [&](std::size_t i) {
            ran.fetch_add(1);
            return static_cast<int>(i) * 2;
        },
        quiet(0));
    ASSERT_EQ(outs.size(), 12u);
    EXPECT_EQ(ran.load(), 12);
    for (std::size_t i = 0; i < outs.size(); i++) {
        EXPECT_TRUE(outs[i].ok);
        EXPECT_EQ(outs[i].result, static_cast<int>(i) * 2);
    }
}

TEST(ThreadPool, TinyQueueCapacityStillDrainsEverything)
{
    // Capacity 1 forces submit() to block on backpressure repeatedly;
    // every task must still run exactly once.
    std::atomic<int> count{0};
    ThreadPool pool(2, 1);
    for (int i = 0; i < 100; i++) {
        pool.submit([&count] { count.fetch_add(1); });
    }
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleThenReuse)
{
    std::atomic<int> count{0};
    ThreadPool pool(2);
    pool.submit([&count] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 1);
    for (int i = 0; i < 10; i++) {
        pool.submit([&count] { count.fetch_add(1); });
    }
    pool.waitIdle();
    EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1, 8);
        for (int i = 0; i < 8; i++) {
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                count.fetch_add(1);
            });
        }
        // No waitIdle: the destructor must drain, not drop.
    }
    EXPECT_EQ(count.load(), 8);
}

// -------------------------------------------------------------- runGrid

TEST(RunGrid, EmptyGrid)
{
    auto out = runGrid<int>(
        0, [](std::size_t) { return 0; }, quiet(4));
    EXPECT_TRUE(out.empty());
}

TEST(RunGrid, SinglePoint)
{
    auto out = runGrid<int>(
        1, [](std::size_t i) { return static_cast<int>(i) + 41; },
        quiet(4));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].ok);
    EXPECT_EQ(out[0].index, 0u);
    EXPECT_EQ(out[0].attempts, 1u);
    EXPECT_EQ(out[0].result, 41);
    EXPECT_TRUE(out[0].error.empty());
}

TEST(RunGrid, OutcomesInGridOrderRegardlessOfCompletionOrder)
{
    // Early indices sleep longest, so completion order is roughly the
    // reverse of grid order; the outcome vector must not care.
    constexpr std::size_t kN = 32;
    auto out = runGrid<std::size_t>(
        kN,
        [](std::size_t i) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(50 * (kN - i)));
            return i * i;
        },
        quiet(8));
    ASSERT_EQ(out.size(), kN);
    for (std::size_t i = 0; i < kN; i++) {
        EXPECT_EQ(out[i].index, i);
        EXPECT_TRUE(out[i].ok);
        EXPECT_EQ(out[i].result, i * i);
    }
}

TEST(RunGrid, CapturesPersistentFailureWithoutAbortingSweep)
{
    auto out = runGrid<int>(
        5,
        [](std::size_t i) -> int {
            if (i == 2) throw std::runtime_error("point 2 is broken");
            return static_cast<int>(i);
        },
        quiet(4));
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(gridFailures(out), 1u);
    EXPECT_FALSE(out[2].ok);
    EXPECT_EQ(out[2].attempts, 2u); // one bounded retry
    EXPECT_NE(out[2].error.find("point 2 is broken"), std::string::npos);
    EXPECT_NE(out[2].error.find("attempt 1"), std::string::npos);
    EXPECT_NE(out[2].error.find("attempt 2"), std::string::npos);
    for (std::size_t i : {0u, 1u, 3u, 4u}) {
        EXPECT_TRUE(out[i].ok);
        EXPECT_EQ(out[i].result, static_cast<int>(i));
    }
}

TEST(RunGrid, RetrySucceedsAfterTransientFailure)
{
    std::atomic<int> calls{0};
    auto out = runGrid<int>(
        1,
        [&calls](std::size_t) -> int {
            if (calls.fetch_add(1) == 0) {
                throw std::runtime_error("transient");
            }
            return 7;
        },
        quiet(2));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].ok);
    EXPECT_EQ(out[0].attempts, 2u);
    EXPECT_EQ(out[0].result, 7);
    // The first attempt's message is preserved for diagnostics.
    EXPECT_NE(out[0].error.find("transient"), std::string::npos);
    EXPECT_EQ(calls.load(), 2);
}

TEST(RunGrid, NonStandardExceptionIsCaptured)
{
    auto out = runGrid<int>(
        1, [](std::size_t) -> int { throw 42; }, quiet(1));
    EXPECT_FALSE(out[0].ok);
    EXPECT_NE(out[0].error.find("non-standard exception"),
              std::string::npos);
}

TEST(RunGrid, MaxAttemptsIsHonoured)
{
    std::atomic<int> calls{0};
    SweepOptions opts = quiet(1);
    opts.maxAttempts = 3;
    auto out = runGrid<int>(
        1,
        [&calls](std::size_t) -> int {
            calls.fetch_add(1);
            throw std::runtime_error("always");
        },
        opts);
    EXPECT_FALSE(out[0].ok);
    EXPECT_EQ(out[0].attempts, 3u);
    EXPECT_EQ(calls.load(), 3);
}

// ------------------------------------------------------------ SweepSpec

TEST(SweepSpec, PointSeedIsStableAndDistinct)
{
    // Golden values: recorded results depend on this derivation, so a
    // change here is a breaking change, not a refactor.
    EXPECT_EQ(SweepSpec::pointSeed(7, 0), 7191089600892374487ULL);
    EXPECT_EQ(SweepSpec::pointSeed(7, 1), 309689372594955804ULL);
    EXPECT_EQ(SweepSpec::pointSeed(7, 2), 16616101746815609346ULL);
    // Pure function of (base, index).
    EXPECT_EQ(SweepSpec::pointSeed(7, 1), SweepSpec::pointSeed(7, 1));
    EXPECT_NE(SweepSpec::pointSeed(7, 1), SweepSpec::pointSeed(8, 1));
}

RunParams
tinyRun(const std::string& workload)
{
    RunParams p;
    p.workload = workload;
    p.warmupInstr = 1500;
    p.measureInstr = 1500;
    return p;
}

SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.name = "test-sweep";
    for (const char* wl : {"gcc", "mcf"}) {
        for (std::uint32_t ways : {4u, 8u}) {
            RunParams p = tinyRun(wl);
            p.l2Spec.ways = ways;
            spec.add(p, {{"workload", JsonValue(std::string(wl))},
                         {"ways", JsonValue(ways)}});
        }
    }
    return spec;
}

TEST(SweepRunner, EmptySpec)
{
    SweepSpec spec;
    spec.name = "empty";
    auto outs = SweepRunner(quiet(4)).run(spec);
    EXPECT_TRUE(outs.empty());
    EXPECT_EQ(SweepRunner::reportFailures(spec, outs), 0u);
}

TEST(SweepRunner, ParallelRunIsByteIdenticalToSerial)
{
    SweepSpec spec = tinySpec();
    auto serial = SweepRunner(quiet(1)).run(spec);
    auto parallel = SweepRunner(quiet(8)).run(spec);
    ASSERT_EQ(serial.size(), spec.size());
    ASSERT_EQ(parallel.size(), spec.size());
    for (std::size_t i = 0; i < spec.size(); i++) {
        EXPECT_TRUE(serial[i].ok);
        EXPECT_TRUE(parallel[i].ok);
        EXPECT_EQ(serial[i].index, i);
        EXPECT_EQ(parallel[i].index, i);
        // The full stats tree — every counter the run produced — must
        // serialize identically: the determinism contract.
        EXPECT_EQ(serial[i].result.stats.str(2),
                  parallel[i].result.stats.str(2))
            << "grid point " << i << " diverged between --jobs=1 and "
            << "--jobs=8";
        EXPECT_EQ(serial[i].result.mpki, parallel[i].result.mpki);
        EXPECT_EQ(serial[i].result.ipc, parallel[i].result.ipc);
    }
}

TEST(SweepRunner, BaseSeedDerivesPerPointSeeds)
{
    SweepSpec spec;
    spec.name = "seeded";
    spec.baseSeed = 7;
    spec.add(tinyRun("gcc"));
    spec.add(tinyRun("gcc"));
    auto outs = SweepRunner(quiet(2)).run(spec);
    ASSERT_EQ(outs.size(), 2u);
    for (std::size_t i = 0; i < 2; i++) {
        ASSERT_TRUE(outs[i].ok);
        // The run group records the seed each experiment actually used.
        std::string dump = outs[i].result.stats.str(2);
        std::string want =
            std::to_string(SweepSpec::pointSeed(7, i));
        EXPECT_NE(dump.find(want), std::string::npos)
            << "point " << i << " did not run with pointSeed(7, " << i
            << ")";
    }
    // Same params, different derived seeds: the runs must differ.
    EXPECT_NE(outs[0].result.stats.str(2), outs[1].result.stats.str(2));
}

TEST(SweepRunner, ZeroBaseSeedKeepsDeclaredSeeds)
{
    SweepSpec spec;
    spec.name = "declared-seed";
    RunParams p = tinyRun("gcc");
    p.seed = 123;
    spec.add(p);
    auto outs = SweepRunner(quiet(1)).run(spec);
    ASSERT_TRUE(outs[0].ok);
    EXPECT_NE(outs[0].result.stats.str(2).find("\"seed\": 123"),
              std::string::npos);
}

TEST(SweepRunner, JobsZeroRunsFullSweep)
{
    // End-to-end cover for the drivers' --jobs=0 default: the auto
    // worker count must be clamped to >= 1 and the sweep must complete.
    SweepSpec spec;
    spec.name = "jobs0";
    spec.add(tinyRun("gcc"));
    spec.add(tinyRun("mcf"));
    auto outs = SweepRunner(quiet(0)).run(spec);
    ASSERT_EQ(outs.size(), 2u);
    for (const auto& o : outs) EXPECT_TRUE(o.ok) << o.error;
}

} // namespace
} // namespace zc
