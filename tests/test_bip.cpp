/**
 * @file
 * Tests for BIP (bimodal insertion) on zcaches.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "cache/z_array.hpp"
#include "common/rng.hpp"
#include "replacement/bip.hpp"
#include "replacement/lru.hpp"
#include "trace/generator.hpp"

namespace zc {
namespace {

AccessContext
ctx()
{
    return AccessContext{};
}

TEST(Bip, LruEndInsertionIsNextVictim)
{
    BipPolicy p(8, /*epsilon=*/0.0); // every fill at the LRU end
    for (BlockPos i = 0; i < 4; i++) {
        p.onInsert(i, ctx());
        p.onHit(i, ctx()); // promote 0..3 to real recency
    }
    p.onInsert(4, ctx()); // LRU-end fill
    std::vector<BlockPos> cands{0, 1, 2, 3, 4};
    EXPECT_EQ(p.select(cands), 4u);
}

TEST(Bip, HitPromotesProbationaryBlock)
{
    BipPolicy p(8, 0.0);
    p.onInsert(0, ctx());
    p.onHit(0, ctx()); // proves reuse
    p.onInsert(1, ctx());
    std::vector<BlockPos> cands{0, 1};
    EXPECT_EQ(p.select(cands), 1u) << "the unproven block goes first";
}

TEST(Bip, EpsilonOneBehavesLikeLru)
{
    BipPolicy bip(16, /*epsilon=*/1.0);
    LruPolicy lru(16);
    Pcg32 rng(3);
    for (int i = 0; i < 2000; i++) {
        BlockPos pos = rng.below(16);
        if (i % 3 == 0) {
            bip.onInsert(pos, ctx());
            lru.onInsert(pos, ctx());
        } else {
            bip.onHit(pos, ctx());
            lru.onHit(pos, ctx());
        }
        std::vector<BlockPos> cands{0, 5, 9, 14};
        ASSERT_EQ(bip.select(cands), lru.select(cands)) << "iter " << i;
    }
}

TEST(Bip, ProtectsHotSetFromStreamingThrash)
{
    // The raison d'etre: a hot set plus a one-touch stream bigger than
    // the cache. LRU lets the stream flush the hot set; BIP keeps it.
    auto run = [](PolicyKind kind) {
        ArraySpec spec;
        spec.kind = ArrayKind::ZCache;
        spec.blocks = 1024;
        spec.ways = 4;
        spec.levels = 2;
        spec.policy = kind;
        CacheModel m(makeArray(spec));
        ZipfGenerator hot(0, 700, 0.6, 5);
        StridedGenerator stream(1 << 20, 1 << 18, 1);
        Pcg32 rng(6);
        std::uint64_t hot_hits = 0, hot_accesses = 0;
        for (int i = 0; i < 400000; i++) {
            if (rng.uniform() < 0.5) {
                hot_accesses++;
                if (m.access(hot.next().lineAddr)) hot_hits++;
            } else {
                m.access(stream.next().lineAddr);
            }
        }
        return static_cast<double>(hot_hits) /
               static_cast<double>(hot_accesses);
    };
    double lru = run(PolicyKind::Lru);
    double bip = run(PolicyKind::Bip);
    EXPECT_GT(bip, lru + 0.1)
        << "BIP must shield the hot set from the stream";
}

} // namespace
} // namespace zc
