/**
 * @file
 * Unit tests for src/replacement: every policy's selection semantics,
 * the onMove metadata-carry contract (zcache relocations), and the
 * global-rank total order the Section IV framework requires.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "replacement/bucketed_lru.hpp"
#include "replacement/lfu.hpp"
#include "replacement/lru.hpp"
#include "replacement/nru.hpp"
#include "replacement/opt.hpp"
#include "replacement/policy_factory.hpp"
#include "replacement/random_policy.hpp"
#include "replacement/srrip.hpp"

namespace zc {
namespace {

AccessContext
ctx(Addr a = 0, std::uint64_t next_use = kNoNextUse)
{
    AccessContext c;
    c.lineAddr = a;
    c.nextUse = next_use;
    return c;
}

// ---------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy p(4);
    for (BlockPos i = 0; i < 4; i++) p.onInsert(i, ctx());
    std::vector<BlockPos> cands{0, 1, 2, 3};
    EXPECT_EQ(p.select(cands), 0u);

    p.onHit(0, ctx());
    EXPECT_EQ(p.select(cands), 1u);
    p.onHit(1, ctx());
    p.onHit(2, ctx());
    EXPECT_EQ(p.select(cands), 3u);
}

TEST(Lru, SubsetSelection)
{
    LruPolicy p(8);
    for (BlockPos i = 0; i < 8; i++) p.onInsert(i, ctx());
    // Candidates need not be the full population (zcache case).
    std::vector<BlockPos> cands{5, 2, 7};
    EXPECT_EQ(p.select(cands), 2u);
}

TEST(Lru, MoveCarriesRecency)
{
    LruPolicy p(4);
    p.onInsert(0, ctx()); // oldest
    p.onInsert(1, ctx());
    p.onInsert(2, ctx());
    // Relocate block at 0 to position 3: its age must travel.
    p.onMove(0, 3);
    std::vector<BlockPos> cands{1, 2, 3};
    EXPECT_EQ(p.select(cands), 3u);
}

TEST(Lru, ScoreGivesTotalOrderByAge)
{
    LruPolicy p(3);
    p.onInsert(0, ctx());
    p.onInsert(1, ctx());
    p.onInsert(2, ctx());
    EXPECT_LT(p.score(0), p.score(1));
    EXPECT_LT(p.score(1), p.score(2));
    EXPECT_TRUE(p.ordersBefore(0, 1));
    EXPECT_FALSE(p.ordersBefore(1, 0));
}

// ---------------------------------------------------------------------
// Bucketed LRU
// ---------------------------------------------------------------------

TEST(BucketedLru, DefaultsToFivePercentTick)
{
    BucketedLruPolicy p(100);
    EXPECT_EQ(p.accessesPerTick(), 5u);
}

TEST(BucketedLru, ApproximatesLruAcrossBuckets)
{
    BucketedLruPolicy p(64, /*timestamp_bits=*/8, /*accesses_per_tick=*/4);
    for (BlockPos i = 0; i < 64; i++) p.onInsert(i, ctx());
    // Block 0 was inserted ~16 ticks before block 63.
    std::vector<BlockPos> cands{0, 30, 63};
    EXPECT_EQ(p.select(cands), 0u);
}

TEST(BucketedLru, SurvivesWraparound)
{
    // 4-bit timestamps wrap every 16 ticks; a recently touched block
    // must still rank younger than an old one right after wrap.
    BucketedLruPolicy p(4, /*timestamp_bits=*/4, /*accesses_per_tick=*/1);
    p.onInsert(0, ctx());
    for (int i = 0; i < 10; i++) p.onHit(1, ctx());
    // Counter moved 11 ticks; ages: block0 = 10, block1 = 0.
    std::vector<BlockPos> cands{0, 1};
    EXPECT_EQ(p.select(cands), 0u);
}

TEST(BucketedLru, TieBreakIsTotal)
{
    BucketedLruPolicy p(8, 8, /*accesses_per_tick=*/100);
    for (BlockPos i = 0; i < 8; i++) p.onInsert(i, ctx());
    // All in the same bucket: scores tie, tieBreaker must totally order.
    for (BlockPos i = 0; i < 8; i++) {
        for (BlockPos j = 0; j < 8; j++) {
            if (i == j) continue;
            EXPECT_NE(p.ordersBefore(i, j), p.ordersBefore(j, i));
        }
    }
    // Selection ignores the measurement-only refinement: within a
    // bucket the tie-break is arbitrary (first candidate wins).
    std::vector<BlockPos> cands{3, 1, 6};
    EXPECT_EQ(p.select(cands), 3u);
}

// ---------------------------------------------------------------------
// LFU
// ---------------------------------------------------------------------

TEST(Lfu, EvictsLeastFrequent)
{
    LfuPolicy p(4);
    for (BlockPos i = 0; i < 4; i++) p.onInsert(i, ctx());
    p.onHit(0, ctx());
    p.onHit(0, ctx());
    p.onHit(1, ctx());
    p.onHit(2, ctx());
    std::vector<BlockPos> cands{0, 1, 2, 3};
    EXPECT_EQ(p.select(cands), 3u);
}

TEST(Lfu, CountSaturatesAtCap)
{
    LfuPolicy p(2, /*count_cap=*/3);
    p.onInsert(0, ctx());
    for (int i = 0; i < 100; i++) p.onHit(0, ctx());
    EXPECT_DOUBLE_EQ(p.score(0), 3.0);
}

TEST(Lfu, EvictionResetsCount)
{
    LfuPolicy p(2);
    p.onInsert(0, ctx());
    p.onHit(0, ctx());
    p.onEvict(0);
    p.onInsert(0, ctx());
    EXPECT_DOUBLE_EQ(p.score(0), 1.0);
}

// ---------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------

TEST(RandomPolicy, DeterministicUnderSeed)
{
    RandomPolicy a(16, 5), b(16, 5);
    for (BlockPos i = 0; i < 16; i++) {
        a.onInsert(i, ctx());
        b.onInsert(i, ctx());
    }
    std::vector<BlockPos> cands{0, 3, 7, 11};
    EXPECT_EQ(a.select(cands), b.select(cands));
}

TEST(RandomPolicy, SelectionsSpreadOverCandidates)
{
    RandomPolicy p(4, 9);
    std::vector<int> wins(4, 0);
    std::vector<BlockPos> cands{0, 1, 2, 3};
    for (int trial = 0; trial < 4000; trial++) {
        for (BlockPos i = 0; i < 4; i++) p.onInsert(i, ctx());
        wins[p.select(cands)]++;
    }
    for (int w : wins) EXPECT_NEAR(w, 1000, 150);
}

// ---------------------------------------------------------------------
// OPT
// ---------------------------------------------------------------------

TEST(Opt, EvictsFurthestNextUse)
{
    OptPolicy p(3);
    p.onInsert(0, ctx(0, 100));
    p.onInsert(1, ctx(0, 50));
    p.onInsert(2, ctx(0, 200));
    std::vector<BlockPos> cands{0, 1, 2};
    EXPECT_EQ(p.select(cands), 2u);
}

TEST(Opt, NeverUsedAgainGoesFirst)
{
    OptPolicy p(3);
    p.onInsert(0, ctx(0, 10));
    p.onInsert(1, ctx(0, kNoNextUse));
    p.onInsert(2, ctx(0, 20));
    std::vector<BlockPos> cands{0, 1, 2};
    EXPECT_EQ(p.select(cands), 1u);
}

TEST(Opt, HitUpdatesNextUse)
{
    OptPolicy p(2);
    p.onInsert(0, ctx(0, 10));
    p.onInsert(1, ctx(0, 20));
    p.onHit(0, ctx(0, 1000)); // now reused furthest
    std::vector<BlockPos> cands{0, 1};
    EXPECT_EQ(p.select(cands), 0u);
}

TEST(Opt, MoveCarriesNextUse)
{
    OptPolicy p(4);
    p.onInsert(0, ctx(0, 999));
    p.onInsert(1, ctx(0, 5));
    p.onMove(0, 2);
    EXPECT_EQ(p.nextUseOf(2), 999u);
    std::vector<BlockPos> cands{1, 2};
    EXPECT_EQ(p.select(cands), 2u);
}

// ---------------------------------------------------------------------
// NRU
// ---------------------------------------------------------------------

TEST(Nru, PrefersUnreferenced)
{
    NruPolicy p(4);
    for (BlockPos i = 0; i < 4; i++) p.onInsert(i, ctx());
    p.onEvict(2);
    p.onInsert(2, ctx());
    // Everyone referenced: candidate-scoped clear, oldest evicted.
    std::vector<BlockPos> cands{0, 1, 2, 3};
    EXPECT_EQ(p.select(cands), 0u);
    // After the clear, a re-touch marks 1; 0 and 3 stay unreferenced.
    p.onHit(1, ctx());
    EXPECT_EQ(p.select(cands), 0u);
}

// ---------------------------------------------------------------------
// SRRIP
// ---------------------------------------------------------------------

TEST(Srrip, InsertsAtLongInterval)
{
    SrripPolicy p(4);
    for (BlockPos i = 0; i < 4; i++) p.onInsert(i, ctx());
    // All at RRPV 2; aging promotes everyone to 3, oldest evicted.
    std::vector<BlockPos> cands{0, 1, 2, 3};
    EXPECT_EQ(p.select(cands), 0u);
}

TEST(Srrip, HitProtectsBlock)
{
    SrripPolicy p(4);
    for (BlockPos i = 0; i < 4; i++) p.onInsert(i, ctx());
    p.onHit(0, ctx()); // RRPV 0
    std::vector<BlockPos> cands{0, 1, 2, 3};
    BlockPos victim = p.select(cands);
    EXPECT_NE(victim, 0u);
}

// ---------------------------------------------------------------------
// Factory + generic contracts (parameterized over all policies)
// ---------------------------------------------------------------------

class PolicyContract : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(PolicyContract, SelectsFromCandidates)
{
    auto p = makePolicy(GetParam(), 32, 3);
    for (BlockPos i = 0; i < 32; i++) {
        p->onInsert(i, ctx(i, 100 + i));
    }
    std::vector<BlockPos> cands{4, 9, 17, 30};
    BlockPos v = p->select(cands);
    EXPECT_TRUE(v == 4 || v == 9 || v == 17 || v == 30);
}

TEST_P(PolicyContract, SingleCandidateIsForced)
{
    auto p = makePolicy(GetParam(), 8, 3);
    for (BlockPos i = 0; i < 8; i++) p->onInsert(i, ctx(i, 10 + i));
    std::vector<BlockPos> cands{5};
    EXPECT_EQ(p->select(cands), 5u);
}

TEST_P(PolicyContract, GlobalOrderIsTotalAndAntisymmetric)
{
    auto p = makePolicy(GetParam(), 16, 3);
    for (BlockPos i = 0; i < 16; i++) {
        p->onInsert(i, ctx(i, 100 + 7 * i));
    }
    for (BlockPos i = 0; i < 16; i++) p->onHit(i % 5, ctx(i % 5, 500 + i));
    for (BlockPos a = 0; a < 16; a++) {
        for (BlockPos b = 0; b < 16; b++) {
            if (a == b) continue;
            EXPECT_NE(p->ordersBefore(a, b), p->ordersBefore(b, a))
                << policyKindName(GetParam()) << " " << a << "," << b;
        }
    }
}

TEST_P(PolicyContract, MovePreservesOrder)
{
    auto p = makePolicy(GetParam(), 16, 3);
    for (BlockPos i = 0; i < 8; i++) p->onInsert(i, ctx(i, 100 + i));
    // Snapshot the keep-values of blocks 0..7, then move them to 8..15.
    // Scores must travel with the blocks (zcache relocation contract);
    // tie-breakers may be position-derived, so only scores are checked.
    std::vector<double> before;
    for (BlockPos i = 0; i < 8; i++) before.push_back(p->score(i));
    for (BlockPos i = 0; i < 8; i++) p->onMove(i, i + 8);
    for (BlockPos i = 0; i < 8; i++) {
        EXPECT_DOUBLE_EQ(p->score(i + 8), before[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyContract,
    ::testing::Values(PolicyKind::Lru, PolicyKind::BucketedLru,
                      PolicyKind::Lfu, PolicyKind::Random, PolicyKind::Opt,
                      PolicyKind::Nru, PolicyKind::Srrip, PolicyKind::Bip),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
        std::string n = policyKindName(info.param);
        for (auto& ch : n) {
            if (ch == '-') ch = '_';
        }
        return n;
    });

} // namespace
} // namespace zc
