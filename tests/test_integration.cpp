/**
 * @file
 * Cross-module integration tests: the experiment runner end to end, the
 * paper's comparative claims at small scale, inclusive-hierarchy
 * invariants inside the CMP, and energy consistency between the
 * simulator's event counts and the cost models.
 */

#include <gtest/gtest.h>

#include <set>

#include "assoc/eviction_tracker.hpp"
#include "sim/experiment.hpp"
#include "trace/workloads.hpp"

namespace zc {
namespace {

RunParams
baseParams(const std::string& workload)
{
    RunParams p;
    p.workload = workload;
    p.base.l2SizeBytes = 2 << 20; // 2MB: fast but big enough to matter
    p.warmupInstr = 60000;
    p.measureInstr = 60000;
    p.l2Spec.policy = PolicyKind::BucketedLru;
    return p;
}

RunResult
runDesign(const std::string& workload, ArrayKind kind, std::uint32_t ways,
          std::uint32_t levels, bool serial = true)
{
    RunParams p = baseParams(workload);
    p.l2Spec.kind = kind;
    p.l2Spec.ways = ways;
    p.l2Spec.levels = levels;
    p.l2Spec.hashKind = HashKind::H3;
    p.serialLookup = serial;
    return runExperiment(p);
}

// ---------------------------------------------------------------------
// Experiment runner plumbing
// ---------------------------------------------------------------------

TEST(Integration, RunnerProducesCompleteResult)
{
    RunResult r = runDesign("soplex", ArrayKind::ZCache, 4, 2);
    EXPECT_GT(r.instructions, 32u * 60000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.mpki, 0.0);
    EXPECT_GT(r.bipsPerWatt, 0.0);
    EXPECT_GT(r.totalJoules, 0.0);
    EXPECT_GT(r.l2TagAccesses, r.l2Accesses);
    EXPECT_GT(r.avgWalkCandidates, 4.0);
    EXPECT_GT(r.loadPerBankCycle, 0.0);
    EXPECT_GE(r.tagPerBankCycle, r.loadPerBankCycle);
}

TEST(Integration, RunnerIsDeterministic)
{
    RunResult a = runDesign("milc", ArrayKind::ZCache, 4, 2);
    RunResult b = runDesign("milc", ArrayKind::ZCache, 4, 2);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_DOUBLE_EQ(a.totalJoules, b.totalJoules);
}

TEST(Integration, EnergyBreakdownSumsAndScales)
{
    RunResult r = runDesign("canneal", ArrayKind::ZCache, 4, 3);
    EXPECT_NEAR(r.energy.totalJ(),
                r.energy.coreJ + r.energy.l1J + r.energy.l2J +
                    r.energy.nocJ + r.energy.dramJ + r.energy.staticJ,
                1e-12);
    // A miss-heavy workload must burn real DRAM energy.
    EXPECT_GT(r.energy.dramJ, r.energy.l2J);
}

// ---------------------------------------------------------------------
// The paper's comparative claims at test scale
// ---------------------------------------------------------------------

TEST(Integration, AssociativityImprovesMpkiMonotonically)
{
    // Fig. 4 claim: higher R lowers misses on capacity/conflict-bound
    // workloads; equal-R designs land close.
    double sa4 = runDesign("soplex", ArrayKind::SetAssoc, 4, 1).mpki;
    double sa16 = runDesign("soplex", ArrayKind::SetAssoc, 16, 1).mpki;
    double z16 = runDesign("soplex", ArrayKind::ZCache, 4, 2).mpki;
    double z52 = runDesign("soplex", ArrayKind::ZCache, 4, 3).mpki;
    EXPECT_LT(sa16, sa4);
    EXPECT_LT(z16, sa4);
    EXPECT_LE(z52, z16 * 1.02);
    EXPECT_NEAR(z16 / sa16, 1.0, 0.12) << "equal-R designs track";
}

TEST(Integration, ZcacheKeepsFourWayLatency)
{
    RunResult sa32 = runDesign("gamess", ArrayKind::SetAssoc, 32, 1);
    RunResult z52 = runDesign("gamess", ArrayKind::ZCache, 4, 3);
    EXPECT_GT(sa32.bankLatencyCycles, z52.bankLatencyCycles);
}

TEST(Integration, ParallelLookupHelpsHitLatencyBoundWorkloads)
{
    // Fig. 5: ammp/gamess-style workloads gain from parallel lookups.
    RunResult serial = runDesign("ammp", ArrayKind::ZCache, 4, 2, true);
    RunResult parallel = runDesign("ammp", ArrayKind::ZCache, 4, 2, false);
    EXPECT_GT(parallel.ipc, serial.ipc);
}

TEST(Integration, ParallelLookupCostsEnergyOnWideSA)
{
    // Fig. 5's energy story: at 32 ways the parallel premium bites.
    RunResult serial =
        runDesign("gamess", ArrayKind::SetAssoc, 32, 1, true);
    RunResult parallel =
        runDesign("gamess", ArrayKind::SetAssoc, 32, 1, false);
    EXPECT_GT(parallel.energy.l2J, serial.energy.l2J * 1.25);
}

TEST(Integration, VictimBufferHelpsButLessThanZcache)
{
    // Section II-B: the buffer catches short-reuse conflict victims but
    // does not provide general associativity.
    RunParams p = baseParams("soplex");
    p.l2Spec.kind = ArrayKind::VictimCache;
    p.l2Spec.ways = 4;
    p.l2Spec.victimBlocks = 64;
    double vc = runExperiment(p).mpki;
    double sa4 = runDesign("soplex", ArrayKind::SetAssoc, 4, 1).mpki;
    double z52 = runDesign("soplex", ArrayKind::ZCache, 4, 3).mpki;
    EXPECT_LE(vc, sa4 * 1.01);
    EXPECT_LT(z52, vc);
}

// ---------------------------------------------------------------------
// Hierarchy invariants
// ---------------------------------------------------------------------

TEST(Integration, InclusionHoldsAfterRun)
{
    // Every line resident in an L1 must be resident in the L2
    // (inclusive hierarchy with back-invalidation). We verify via the
    // directory-driven invariant: the union of L2 banks covers all
    // generator-visible hits... directly: run, then probe each L2 bank
    // for a sample of recently hit lines through the CacheModel-free
    // interface. CmpSystem does not expose L1 contents, so the
    // invariant is checked indirectly: a second run of the same trace
    // through the same system must never produce an L1 hit for a line
    // the L2 lacks — which would trip the zc_assert in dataAccess's
    // upgrade path. The run completing is the assertion.
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.l2SizeBytes = 512 * 1024;
    cfg.l2Spec.kind = ArrayKind::ZCache;
    cfg.l2Spec.ways = 4;
    cfg.l2Spec.levels = 2;
    cfg.l2Spec.policy = PolicyKind::BucketedLru;
    CmpSystem sys(cfg);
    const auto& w = WorkloadRegistry::byName("canneal");
    std::vector<GeneratorPtr> gens;
    for (std::uint32_t c = 0; c < cfg.numCores; c++) {
        gens.push_back(
            WorkloadRegistry::makeCoreGenerator(w, c, cfg.numCores, 3));
    }
    sys.setGenerators(std::move(gens));
    sys.run(120000); // heavy sharing + back-invalidation churn
    EXPECT_GT(sys.stats().invalidations, 0u);
    SUCCEED();
}

TEST(Integration, TrackerOnLiveL2Bank)
{
    // The Section IV framework attaches to a bank inside a running CMP.
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.l2SizeBytes = 1 << 20;
    cfg.l2Spec.kind = ArrayKind::ZCache;
    cfg.l2Spec.ways = 4;
    cfg.l2Spec.levels = 2;
    cfg.l2Spec.policy = PolicyKind::BucketedLru;
    CmpSystem sys(cfg);
    EvictionPriorityTracker tracker(100, 4);
    tracker.attach(sys.bank(0));
    const auto& w = WorkloadRegistry::byName("milc");
    std::vector<GeneratorPtr> gens;
    for (std::uint32_t c = 0; c < cfg.numCores; c++) {
        gens.push_back(
            WorkloadRegistry::makeCoreGenerator(w, c, cfg.numCores, 4));
    }
    sys.setGenerators(std::move(gens));
    sys.run(150000);
    ASSERT_GT(tracker.samples(), 200u);
    // Z4/16 in-system: decidedly better than a 4-candidate design
    // (uniformity means: 4 cands -> 0.80, 16 -> 0.94).
    EXPECT_GT(tracker.histogram().mean(), 0.82);
}

} // namespace
} // namespace zc
