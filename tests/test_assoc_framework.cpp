/**
 * @file
 * Tests for the Section IV associativity framework: analytic curves,
 * the eviction-priority tracker, and the paper's central analytical
 * claims (random-candidates matches x^n; fully-associative always
 * evicts e = 1; zcache associativity tracks R, not W).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "assoc/eviction_tracker.hpp"
#include "assoc/uniformity.hpp"
#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace zc {
namespace {

// ---------------------------------------------------------------------
// Analytic helpers
// ---------------------------------------------------------------------

TEST(Uniformity, CdfIsPower)
{
    EXPECT_DOUBLE_EQ(uniformityCdfAt(0.5, 1), 0.5);
    EXPECT_DOUBLE_EQ(uniformityCdfAt(0.5, 2), 0.25);
    EXPECT_NEAR(uniformityCdfAt(0.4, 16), 4.3e-7, 1e-7);
    // The paper's Fig. 2 callout: 16 candidates, e < 0.4 -> ~1e-6.
    EXPECT_LT(lowPriorityEvictionProb(0.4, 16), 1e-6);
}

TEST(Uniformity, GridMatchesPointwise)
{
    auto grid = uniformityCdf(4, 100);
    ASSERT_EQ(grid.size(), 100u);
    EXPECT_DOUBLE_EQ(grid.back(), 1.0);
    for (std::size_t i = 0; i < grid.size(); i++) {
        double x = (i + 1) / 100.0;
        EXPECT_DOUBLE_EQ(grid[i], std::pow(x, 4));
    }
}

TEST(Uniformity, MeanClosedForm)
{
    EXPECT_DOUBLE_EQ(uniformityMean(1), 0.5);
    EXPECT_DOUBLE_EQ(uniformityMean(4), 0.8);
    EXPECT_NEAR(uniformityMean(52), 52.0 / 53.0, 1e-12);
}

// ---------------------------------------------------------------------
// Tracker mechanics
// ---------------------------------------------------------------------

CacheModel
modelFor(ArrayKind kind, std::uint32_t blocks, std::uint32_t ways,
         std::uint32_t levels_or_cands, PolicyKind policy)
{
    ArraySpec spec;
    spec.kind = kind;
    spec.blocks = blocks;
    spec.ways = ways;
    spec.levels = levels_or_cands;
    spec.candidates = levels_or_cands;
    spec.policy = policy;
    return CacheModel(makeArray(spec));
}

TEST(Tracker, IgnoresColdFills)
{
    auto m = modelFor(ArrayKind::FullyAssoc, 32, 1, 1, PolicyKind::Lru);
    EvictionPriorityTracker tracker(10);
    tracker.attach(m.array());
    for (Addr a = 0; a < 32; a++) m.access(a); // cold fills only
    EXPECT_EQ(tracker.samples(), 0u);
    m.access(100); // first real replacement
    EXPECT_EQ(tracker.samples(), 1u);
}

TEST(Tracker, FullyAssociativeAlwaysEvictsTop)
{
    // e = 1.0 on every eviction: the framework's reference point.
    auto m = modelFor(ArrayKind::FullyAssoc, 64, 1, 1, PolicyKind::Lru);
    EvictionPriorityTracker tracker(100);
    tracker.attach(m.array());
    Pcg32 rng(1);
    for (int i = 0; i < 20000; i++) m.access(rng.next64() % 512);
    ASSERT_GT(tracker.samples(), 1000u);
    // All samples must land in the last bin.
    EXPECT_NEAR(tracker.histogram().mean(), 0.995, 0.006);
    auto cdf = tracker.cdf();
    EXPECT_LT(cdf[cdf.size() - 2], 1e-12);
}

TEST(Tracker, SamplingIsUnbiased)
{
    auto run = [](std::uint64_t period) {
        auto m =
            modelFor(ArrayKind::SetAssoc, 256, 4, 1, PolicyKind::Lru);
        EvictionPriorityTracker tracker(50, period);
        tracker.attach(m.array());
        Pcg32 rng(2);
        for (int i = 0; i < 60000; i++) m.access(rng.next64() % 2048);
        return tracker.histogram().mean();
    };
    double full = run(1);
    double sampled = run(7);
    EXPECT_NEAR(full, sampled, 0.02);
}

// ---------------------------------------------------------------------
// The paper's analytical claims (Sections IV-B, IV-C)
// ---------------------------------------------------------------------

double
ksAgainstUniformity(CacheModel& m, std::uint32_t n,
                    std::uint64_t accesses, std::uint64_t footprint,
                    std::uint64_t seed)
{
    EvictionPriorityTracker tracker(100);
    tracker.attach(m.array());
    Pcg32 rng(seed);
    for (std::uint64_t i = 0; i < accesses; i++) {
        m.access(rng.next64() % footprint);
    }
    EXPECT_GT(tracker.samples(), 2000u) << m.name();
    return ksDistance(tracker.cdf(), uniformityCdf(n, 100));
}

class RandomCandidatesMatchesUniformity
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(RandomCandidatesMatchesUniformity, KsSmall)
{
    std::uint32_t n = GetParam();
    auto m = modelFor(ArrayKind::RandomCandidates, 512, 1, n,
                      PolicyKind::Lru);
    double ks = ksAgainstUniformity(m, n, 80000, 4096, 3);
    EXPECT_LT(ks, 0.03) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Fig2, RandomCandidatesMatchesUniformity,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(AssocClaims, ZcacheTracksUniformityFarBetterThanSetAssoc)
{
    // Section IV-C, Fig. 3b/3d: at equal candidate counts the zcache's
    // distribution is much closer to x^R than a hashed set-associative
    // cache's. (Our measured zcache deviates from exact uniformity at
    // deeper levels — walk candidates are not fully independent, see
    // EXPERIMENTS.md — but stays firmly between uniformity and SA.)
    auto mz = modelFor(ArrayKind::ZCache, 1024, 4, 2, PolicyKind::Lru);
    double ks_z = ksAgainstUniformity(mz, 16, 120000, 8192, 4);

    auto ms = modelFor(ArrayKind::SetAssoc, 1024, 16, 1, PolicyKind::Lru);
    double ks_sa = ksAgainstUniformity(ms, 16, 120000, 8192, 4);

    EXPECT_LT(ks_z, 0.20);
    EXPECT_GT(ks_sa, ks_z * 1.5)
        << "zcache must dominate hashed SA at equal R";
}

TEST(AssocClaims, RandomPolicyZcacheMatchesUniformityClosely)
{
    // Under random replacement the walk-candidate correlations that LRU
    // exposes vanish and the zcache tracks x^R tightly.
    auto m = modelFor(ArrayKind::ZCache, 1024, 4, 2, PolicyKind::Random);
    double ks = ksAgainstUniformity(m, 16, 120000, 8192, 4);
    EXPECT_LT(ks, 0.06);
}

TEST(AssocClaims, EffectiveAssociativityGrowsWithLevelsNotWays)
{
    // The decoupling claim, in effective-candidate terms: with W fixed
    // at 4, mean eviction priority rises toward 1 as R grows 4->16->52;
    // uniformity means are R/(R+1) = 0.80, 0.94, 0.98.
    auto mean_for_levels = [](std::uint32_t levels) {
        auto m = modelFor(ArrayKind::ZCache, 1024, 4, levels,
                          PolicyKind::Lru);
        EvictionPriorityTracker tracker(100);
        tracker.attach(m.array());
        Pcg32 rng(8);
        for (int i = 0; i < 120000; i++) m.access(rng.next64() % 8192);
        return tracker.histogram().mean();
    };
    double e1 = mean_for_levels(1);
    double e2 = mean_for_levels(2);
    double e3 = mean_for_levels(3);
    EXPECT_NEAR(e1, 0.80, 0.02); // skew matches uniformity exactly
    EXPECT_GT(e2, 0.90);
    EXPECT_GT(e3, e2 + 0.02);
}

TEST(AssocClaims, SkewMatchesUniformityOnRandomTraffic)
{
    // Fig. 3c: skew-associative caches track x^W.
    auto m = modelFor(ArrayKind::SkewAssoc, 1024, 4, 1, PolicyKind::Lru);
    double ks = ksAgainstUniformity(m, 4, 120000, 8192, 5);
    EXPECT_LT(ks, 0.05);
}

TEST(AssocClaims, ZcacheAssociativityIndependentOfWays)
{
    // The headline decoupling claim: Z4 with 16 candidates and Z8 with
    // 16 candidates (cap) have the same associativity distribution.
    ArraySpec a;
    a.kind = ArrayKind::ZCache;
    a.blocks = 1024;
    a.ways = 4;
    a.levels = 2; // R = 16
    a.policy = PolicyKind::Lru;

    ArraySpec b = a;
    b.ways = 8;
    b.levels = 2;
    b.maxCandidates = 16; // early-stop at 16 of nominal 64

    auto run = [](const ArraySpec& spec) {
        CacheModel m(makeArray(spec));
        EvictionPriorityTracker tracker(100);
        tracker.attach(m.array());
        Pcg32 rng(6);
        for (int i = 0; i < 120000; i++) m.access(rng.next64() % 8192);
        return tracker.cdf();
    };

    double ks = ksDistance(run(a), run(b));
    EXPECT_LT(ks, 0.08);
}

TEST(AssocClaims, UnhashedSetAssocSuffersOnStridedTraffic)
{
    // Fig. 3a: pathological strides give set-associative caches far
    // worse associativity than uniformity predicts; the zcache is
    // immune (Fig. 3d).
    std::uint32_t sets = 256 / 4;
    auto strided_mean = [&](ArrayKind kind) {
        ArraySpec spec;
        spec.kind = kind;
        spec.blocks = 256;
        spec.ways = 4;
        spec.levels = 1; // skew/z: 4 candidates, same as 4-way SA
        spec.policy = PolicyKind::Lru;
        spec.hashKind = (kind == ArrayKind::SetAssoc) ? HashKind::BitSelect
                                                      : HashKind::H3;
        CacheModel m(makeArray(spec));
        EvictionPriorityTracker tracker(100);
        tracker.attach(m.array());
        Pcg32 rng(7);
        for (int i = 0; i < 150000; i++) {
            // Hot strided pattern: many blocks per set, plus background.
            Addr a = (rng.next64() % 512) * sets;
            if (rng.next() % 4 == 0) a = 1 + rng.next64() % 4096;
            m.access(a);
        }
        return tracker.histogram().mean();
    };

    double sa = strided_mean(ArrayKind::SetAssoc);
    double z = strided_mean(ArrayKind::SkewAssoc);
    // Uniformity mean for 4 candidates is 0.8. The strided SA should
    // fall well below it; the skewed design should stay close.
    EXPECT_LT(sa, z - 0.05);
    EXPECT_GT(z, 0.7);
}

} // namespace
} // namespace zc
