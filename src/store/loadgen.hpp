/**
 * @file
 * Closed-loop multithreaded load generator for ZkvStore.
 *
 * Each worker thread draws keys from its own deterministic synthetic
 * workload stream (src/trace generators via WorkloadRegistry — the same
 * profiles the simulator benches replay) and issues a seeded get/put/
 * erase mix against the shared store, timing every operation. Workers
 * start together behind a std::barrier and run a fixed operation count
 * (closed loop: the next request issues as soon as the previous one
 * returns).
 *
 * Results split along the repo's determinism contract
 * (docs/observability.md): LoadGenResult::storeStats — the store's
 * stats tree plus per-thread operation counters — is a pure function of
 * (config, seed) for a single-thread run, while wall-clock derived
 * numbers (throughput, latency histogram/moments) live in timing().
 * Put values encode (key, thread): value = zkvMix64(key) + tid, so
 * every get hit is integrity-checked by decoding the writer thread; a
 * mismatch counts in verifyFailures (always 0 unless the store loses
 * or cross-wires a payload).
 *
 * Bytes mode (cfg.store.value.maxBytes > 0, docs/compression.md) keeps
 * the same contract with variable-length payloads: each key's payload
 * length and content are deterministic functions of the key alone
 * (zkvPayloadLen / zkvFillPayload below), except the first four bytes,
 * which carry the writer tid — so any reader can regenerate the
 * expected bytes from (key, decoded tid) and compare byte-exactly.
 * The content generator mixes BDI-friendly patterns (zeros, repeats,
 * small-delta runs) with incompressible streams per key, giving the
 * codec a realistic ratio distribution.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "net/openloop.hpp"
#include "store/zkv.hpp"

namespace zc {

/**
 * Deterministic payload length for @p key, uniform over
 * [lenMin, lenMax] (inclusive). Pure function of (key, lenMin, lenMax)
 * so every loadgen worker — local or across the wire — agrees on it.
 */
inline std::uint32_t
zkvPayloadLen(std::uint64_t key, std::uint32_t lenMin,
              std::uint32_t lenMax)
{
    if (lenMax <= lenMin) return lenMin;
    std::uint64_t span = lenMax - lenMin + 1;
    return lenMin +
           static_cast<std::uint32_t>(zkvMix64(key ^ 0x6c656eULL) % span);
}

/**
 * Fill @p out with the deterministic payload for (@p key, @p tid):
 * bytes [0,4) are the writer tid (LE), the rest is one of four
 * patterns selected by the key — zeros, a repeated byte, a small-delta
 * byte ramp (BDI-friendly), or an incompressible mix64 stream.
 */
inline void
zkvFillPayload(std::uint64_t key, std::uint32_t tid, std::uint32_t len,
               std::vector<std::uint8_t>& out)
{
    out.resize(len);
    std::uint64_t h = zkvMix64(key ^ 0x706179ULL);
    switch (h & 3) {
      case 0: // zeros
        std::fill(out.begin(), out.end(), std::uint8_t{0});
        break;
      case 1: { // repeated byte
        std::fill(out.begin(), out.end(),
                  static_cast<std::uint8_t>(h >> 8));
        break;
      }
      case 2: { // small-delta ramp: base + i*delta (mod 256)
        auto base = static_cast<std::uint8_t>(h >> 8);
        auto delta = static_cast<std::uint8_t>(((h >> 16) & 3) + 1);
        for (std::uint32_t i = 0; i < len; i++) {
            out[i] = static_cast<std::uint8_t>(base + i * delta);
        }
        break;
      }
      default: { // incompressible: chained mix64 stream
        std::uint64_t s = h;
        for (std::uint32_t i = 0; i < len; i++) {
            if ((i & 7) == 0) s = zkvMix64(s);
            out[i] = static_cast<std::uint8_t>(s >> ((i & 7) * 8));
        }
        break;
      }
    }
    for (std::uint32_t i = 0; i < 4 && i < len; i++) {
        out[i] = static_cast<std::uint8_t>(tid >> (i * 8));
    }
}

/**
 * Byte-exact payload check: decode the writer tid from the first four
 * bytes, regenerate the expected payload for (key, tid), and compare.
 * Returns false on any mismatch (wrong length, tid out of range, or
 * content drift) — the bytes-mode analogue of the u64 value check.
 */
inline bool
zkvVerifyPayload(std::uint64_t key, std::uint32_t threads,
                 std::uint32_t lenMin, std::uint32_t lenMax,
                 const std::vector<std::uint8_t>& got,
                 std::vector<std::uint8_t>& scratch)
{
    std::uint32_t len = zkvPayloadLen(key, lenMin, lenMax);
    if (got.size() != len || len < 4) return false;
    std::uint32_t tid = static_cast<std::uint32_t>(got[0]) |
                        (static_cast<std::uint32_t>(got[1]) << 8) |
                        (static_cast<std::uint32_t>(got[2]) << 16) |
                        (static_cast<std::uint32_t>(got[3]) << 24);
    if (tid >= threads) return false;
    zkvFillPayload(key, tid, len, scratch);
    return got == scratch;
}

/**
 * Live-telemetry knobs for a load-generation run (docs/telemetry.md).
 * Default-disabled: the store runs its uninstrumented op paths and the
 * run is bit-identical to one without this struct.
 */
struct LoadGenObsConfig
{
    /**
     * Master switch: route ops through the instrumented store paths
     * (latency attribution + contention counters). Setting any path
     * below implies enabling; enabled with no paths = counters only.
     */
    bool enabled = false;

    /** Chrome trace-event JSON (Perfetto-loadable); empty = no trace. */
    std::string tracePath;

    /** Windowed metrics NDJSON, one record per window; empty = none. */
    std::string metricsPath;

    /** Prometheus text exposition, rewritten per window; empty = none. */
    std::string promPath;

    std::uint32_t metricsIntervalMs = 100;

    /** Per-thread trace ring capacity in records. */
    std::size_t ringCapacity = 1 << 16;

    bool
    anyEnabled() const
    {
        return enabled || !tracePath.empty() || !metricsPath.empty() ||
               !promPath.empty();
    }
};

/** One load-generation run's shape. */
struct LoadGenConfig
{
    ZkvConfig store;

    std::uint32_t threads = 1;
    std::uint64_t opsPerThread = 100000;

    /** Operation mix; the remainder after gets and erases is puts. */
    double getFrac = 0.70;
    double eraseFrac = 0.05;

    /** Workload profile name (WorkloadRegistry) used as key stream. */
    std::string workload = "canneal";

    std::uint64_t seed = 1;

    /**
     * Bytes-mode payload length range (inclusive), used iff
     * store.value.bytesMode(). Each key's length is zkvPayloadLen(key)
     * over this range; the minimum is 4 (the tid prefix) and the
     * maximum is capped by store.value.maxBytes at validate().
     */
    std::uint32_t valueBytesMin = 16;
    std::uint32_t valueBytesMax = 64;

    /** Latency histogram bins over log2(1+ns)/32 (64 ~= 0.5-bit bins). */
    std::size_t latencyBins = 64;

    /**
     * Open-loop mode (net/openloop.hpp): TOTAL target ops/sec across
     * all threads; each worker issues its share at scheduled arrival
     * times and measures latency from the INTENDED arrival, so store
     * stalls land in the histogram as the queueing delay a paced
     * client population would see (the coordinated-omission-safe
     * measurement net_loadgen makes over the wire, docs/server.md).
     * 0 = closed loop (the default): the next op issues when the
     * previous returns.
     */
    double openLoopRate = 0.0;

    /** Arrival process for open-loop mode: fixed metronome or
     *  Poisson (memoryless clients). Ignored when openLoopRate == 0. */
    ArrivalKind arrivals = ArrivalKind::Poisson;

    LoadGenObsConfig obs;

    Status validate() const;
};

/** One worker's counters; latency fields are wall-clock derived. */
struct ThreadStats
{
    /** Bin count must match LoadGenConfig::latencyBins (regression-
     *  tested in tests/test_store.cpp with a non-default count). */
    explicit ThreadStats(std::size_t latency_bins = 64)
        : latency(latency_bins)
    {
    }

    std::uint64_t ops = 0;
    std::uint64_t gets = 0;
    std::uint64_t getHits = 0;
    std::uint64_t puts = 0;
    std::uint64_t putErrors = 0; ///< puts rejected with a Status
    std::uint64_t getErrors = 0; ///< gets failed with a Status (bytes
                                 ///< mode: decompress Corruption)
    std::uint64_t erases = 0;
    std::uint64_t eraseHits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t verifyFailures = 0;

    /** Nondeterministic (timing) fields. */
    double seconds = 0.0;
    UnitHistogram latency;
    RunningStat latencyNs;
};

struct LoadGenResult
{
    std::vector<ThreadStats> perThread;

    /** Wall time from barrier release to last worker finish. */
    double seconds = 0.0;

    /** Aggregate ops (all threads) / seconds. */
    double opsPerSec = 0.0;

    /**
     * Deterministic block: store stats tree + per-thread operation
     * counters. Byte-identical across runs for threads == 1 and a
     * fixed seed (the test_store determinism test).
     */
    JsonValue storeStats;

    /** Merged per-thread counters (deterministic for 1 thread). */
    ThreadStats aggregate() const;

    /**
     * Nondeterministic block: wall seconds, aggregate and per-thread
     * throughput, latency histogram and moments. The store-report
     * analogue of the bench reports' "perf" block.
     */
    JsonValue timing() const;

    /**
     * Telemetry accounting when LoadGenConfig::obs was enabled (all
     * zeros otherwise). obsRecorded + obsDropped == total ops whenever
     * a tracer ran — the reconciliation invariant trace_report.py and
     * tests/test_obs.cpp check against the trace file.
     */
    std::uint64_t obsRecorded = 0;
    std::uint64_t obsDropped = 0;
    std::uint64_t obsThreads = 0;
    std::uint64_t obsWindows = 0; ///< metrics windows emitted

    /** End-of-run codec totals (bytes mode only; zeros otherwise). */
    ZkvCompressionStats compression;

    /** Resident keys at end of run (bytes mode only; for the
     *  resident-bytes-per-key report in store_loadgen --json). */
    std::uint64_t residentKeys = 0;
};

/**
 * Run one closed-loop load generation. Fails with a structured Status
 * for an unknown workload name, an invalid config, or a store-creation
 * fault; per-operation store.walk faults are counted per thread (the
 * run completes) rather than aborting the run.
 */
Expected<LoadGenResult> runLoadGen(const LoadGenConfig& cfg);

} // namespace zc
