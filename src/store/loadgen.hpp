/**
 * @file
 * Closed-loop multithreaded load generator for ZkvStore.
 *
 * Each worker thread draws keys from its own deterministic synthetic
 * workload stream (src/trace generators via WorkloadRegistry — the same
 * profiles the simulator benches replay) and issues a seeded get/put/
 * erase mix against the shared store, timing every operation. Workers
 * start together behind a std::barrier and run a fixed operation count
 * (closed loop: the next request issues as soon as the previous one
 * returns).
 *
 * Results split along the repo's determinism contract
 * (docs/observability.md): LoadGenResult::storeStats — the store's
 * stats tree plus per-thread operation counters — is a pure function of
 * (config, seed) for a single-thread run, while wall-clock derived
 * numbers (throughput, latency histogram/moments) live in timing().
 * Put values encode (key, thread): value = zkvMix64(key) + tid, so
 * every get hit is integrity-checked by decoding the writer thread; a
 * mismatch counts in verifyFailures (always 0 unless the store loses
 * or cross-wires a payload).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "net/openloop.hpp"
#include "store/zkv.hpp"

namespace zc {

/**
 * Live-telemetry knobs for a load-generation run (docs/telemetry.md).
 * Default-disabled: the store runs its uninstrumented op paths and the
 * run is bit-identical to one without this struct.
 */
struct LoadGenObsConfig
{
    /**
     * Master switch: route ops through the instrumented store paths
     * (latency attribution + contention counters). Setting any path
     * below implies enabling; enabled with no paths = counters only.
     */
    bool enabled = false;

    /** Chrome trace-event JSON (Perfetto-loadable); empty = no trace. */
    std::string tracePath;

    /** Windowed metrics NDJSON, one record per window; empty = none. */
    std::string metricsPath;

    /** Prometheus text exposition, rewritten per window; empty = none. */
    std::string promPath;

    std::uint32_t metricsIntervalMs = 100;

    /** Per-thread trace ring capacity in records. */
    std::size_t ringCapacity = 1 << 16;

    bool
    anyEnabled() const
    {
        return enabled || !tracePath.empty() || !metricsPath.empty() ||
               !promPath.empty();
    }
};

/** One load-generation run's shape. */
struct LoadGenConfig
{
    ZkvConfig store;

    std::uint32_t threads = 1;
    std::uint64_t opsPerThread = 100000;

    /** Operation mix; the remainder after gets and erases is puts. */
    double getFrac = 0.70;
    double eraseFrac = 0.05;

    /** Workload profile name (WorkloadRegistry) used as key stream. */
    std::string workload = "canneal";

    std::uint64_t seed = 1;

    /** Latency histogram bins over log2(1+ns)/32 (64 ~= 0.5-bit bins). */
    std::size_t latencyBins = 64;

    /**
     * Open-loop mode (net/openloop.hpp): TOTAL target ops/sec across
     * all threads; each worker issues its share at scheduled arrival
     * times and measures latency from the INTENDED arrival, so store
     * stalls land in the histogram as the queueing delay a paced
     * client population would see (the coordinated-omission-safe
     * measurement net_loadgen makes over the wire, docs/server.md).
     * 0 = closed loop (the default): the next op issues when the
     * previous returns.
     */
    double openLoopRate = 0.0;

    /** Arrival process for open-loop mode: fixed metronome or
     *  Poisson (memoryless clients). Ignored when openLoopRate == 0. */
    ArrivalKind arrivals = ArrivalKind::Poisson;

    LoadGenObsConfig obs;

    Status validate() const;
};

/** One worker's counters; latency fields are wall-clock derived. */
struct ThreadStats
{
    /** Bin count must match LoadGenConfig::latencyBins (regression-
     *  tested in tests/test_store.cpp with a non-default count). */
    explicit ThreadStats(std::size_t latency_bins = 64)
        : latency(latency_bins)
    {
    }

    std::uint64_t ops = 0;
    std::uint64_t gets = 0;
    std::uint64_t getHits = 0;
    std::uint64_t puts = 0;
    std::uint64_t putErrors = 0; ///< puts rejected with a Status
    std::uint64_t erases = 0;
    std::uint64_t eraseHits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t verifyFailures = 0;

    /** Nondeterministic (timing) fields. */
    double seconds = 0.0;
    UnitHistogram latency;
    RunningStat latencyNs;
};

struct LoadGenResult
{
    std::vector<ThreadStats> perThread;

    /** Wall time from barrier release to last worker finish. */
    double seconds = 0.0;

    /** Aggregate ops (all threads) / seconds. */
    double opsPerSec = 0.0;

    /**
     * Deterministic block: store stats tree + per-thread operation
     * counters. Byte-identical across runs for threads == 1 and a
     * fixed seed (the test_store determinism test).
     */
    JsonValue storeStats;

    /** Merged per-thread counters (deterministic for 1 thread). */
    ThreadStats aggregate() const;

    /**
     * Nondeterministic block: wall seconds, aggregate and per-thread
     * throughput, latency histogram and moments. The store-report
     * analogue of the bench reports' "perf" block.
     */
    JsonValue timing() const;

    /**
     * Telemetry accounting when LoadGenConfig::obs was enabled (all
     * zeros otherwise). obsRecorded + obsDropped == total ops whenever
     * a tracer ran — the reconciliation invariant trace_report.py and
     * tests/test_obs.cpp check against the trace file.
     */
    std::uint64_t obsRecorded = 0;
    std::uint64_t obsDropped = 0;
    std::uint64_t obsThreads = 0;
    std::uint64_t obsWindows = 0; ///< metrics windows emitted
};

/**
 * Run one closed-loop load generation. Fails with a structured Status
 * for an unknown workload name, an invalid config, or a store-creation
 * fault; per-operation store.walk faults are counted per thread (the
 * run completes) rather than aborting the run.
 */
Expected<LoadGenResult> runLoadGen(const LoadGenConfig& cfg);

} // namespace zc
