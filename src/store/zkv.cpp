/**
 * @file
 * ZkvStore implementation: the value-mirroring policy decorator and the
 * shard operations built on the simulator's CacheArray protocol.
 */

#include "store/zkv.hpp"

#include <utility>

#include "common/fault_injection.hpp"
#include "common/log.hpp"
#include "obs/tracer.hpp"

namespace zc {

namespace {

/**
 * Decorates the shard's real replacement policy, forwarding every
 * notification and ranking call unchanged — the array's walk decisions
 * are bit-identical to a bare array with the same inner policy — while
 * mirroring the value payload through the same position-based protocol:
 *
 *  - onInsert installs the pending put value at the new block's slot;
 *  - onMove carries the value along a walk relocation (values travel
 *    with blocks exactly like replacement metadata, Section II);
 *  - onSwap exchanges the two values;
 *  - onEvict captures the dying block's value so put() can report the
 *    evicted key+value pair. ZArray::commit notifies onEvict before any
 *    relocation touches the victim's slot, so the capture reads the
 *    pre-walk value.
 *
 * The mirrors are relaxed std::atomic arrays, and a *key* mirror rides
 * alongside the value one, because the optimistic read path
 * (ReadPath::Optimistic, docs/store.md) scans them with no lock held:
 * the array's own tags_ are non-atomic and may be mid-relocation, so a
 * lock-free reader must never touch them. Relaxed is sufficient — the
 * per-shard ShardSeq's fences order these accesses against the version
 * word, and torn snapshots are discarded by seq validation. All
 * notifications still arrive under the shard lock, so the mirror
 * updates themselves are never concurrent with each other. The key
 * mirror is maintained entirely through the notification protocol:
 * onInsert records the incoming address, onMove/onSwap carry it with
 * relocations, and onEvict clears it (ZArray::invalidate also funnels
 * through onEvict, so erases clear it too).
 *
 * In bytes mode (ZkvValueConfig::bytesMode) a per-position owned
 * compressed payload rides alongside the u64 mirror, moved through the
 * same onMove/onSwap/onEvict protocol. Byte payloads are only ever
 * touched under the shard lock — bytes mode rejects the optimistic
 * read path at validate() — so they are plain vectors, not atomics.
 * The mirror also keeps the shard's compression accounting (resident
 * raw vs stored bytes), since it is the one place that sees every
 * payload arrive and leave.
 */
class ValueMirror final : public ReplacementPolicy
{
  public:
    ValueMirror(std::unique_ptr<ReplacementPolicy> inner,
                const ZkvValueConfig& vcfg)
        : ReplacementPolicy(inner->numBlocks()),
          inner_(std::move(inner)),
          keys_(numBlocks()),
          values_(numBlocks()),
          bytesMode_(vcfg.bytesMode())
    {
        for (std::uint32_t i = 0; i < numBlocks(); i++) {
            keys_[i].store(static_cast<std::uint64_t>(kInvalidAddr),
                           std::memory_order_relaxed);
            values_[i].store(0, std::memory_order_relaxed);
        }
        if (bytesMode_) {
            bytes_.resize(numBlocks());
            rawLens_.assign(numBlocks(), 0);
        }
    }

    void
    onInsert(BlockPos pos, const AccessContext& ctx) override
    {
        keys_[pos].store(ctx.lineAddr, std::memory_order_relaxed);
        values_[pos].store(pending_, std::memory_order_relaxed);
        if (bytesMode_) {
            dropResident(pos);
            bytes_[pos] = std::move(pendingBytes_);
            rawLens_[pos] = pendingRawLen_;
            comp_.residentRawBytes += rawLens_[pos];
            comp_.residentStoredBytes += bytes_[pos].size();
            pendingBytes_.clear();
            pendingRawLen_ = 0;
        }
        inner_->onInsert(pos, ctx);
    }

    void
    onHit(BlockPos pos, const AccessContext& ctx) override
    {
        inner_->onHit(pos, ctx);
    }

    void
    onMove(BlockPos from, BlockPos to) override
    {
        keys_[to].store(keys_[from].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
        values_[to].store(values_[from].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
        if (bytesMode_) {
            bytes_[to] = std::move(bytes_[from]);
            bytes_[from].clear();
            rawLens_[to] = rawLens_[from];
            rawLens_[from] = 0;
        }
        inner_->onMove(from, to);
    }

    void
    onSwap(BlockPos a, BlockPos b) override
    {
        std::uint64_t ka = keys_[a].load(std::memory_order_relaxed);
        std::uint64_t kb = keys_[b].load(std::memory_order_relaxed);
        keys_[a].store(kb, std::memory_order_relaxed);
        keys_[b].store(ka, std::memory_order_relaxed);
        std::uint64_t va = values_[a].load(std::memory_order_relaxed);
        std::uint64_t vb = values_[b].load(std::memory_order_relaxed);
        values_[a].store(vb, std::memory_order_relaxed);
        values_[b].store(va, std::memory_order_relaxed);
        if (bytesMode_) {
            std::swap(bytes_[a], bytes_[b]);
            std::swap(rawLens_[a], rawLens_[b]);
        }
        inner_->onSwap(a, b);
    }

    void
    onEvict(BlockPos pos) override
    {
        lastEvicted_ = values_[pos].load(std::memory_order_relaxed);
        keys_[pos].store(static_cast<std::uint64_t>(kInvalidAddr),
                         std::memory_order_relaxed);
        if (bytesMode_) {
            // PutResult reports only the evicted *key* in bytes mode —
            // the payload dies compressed, never decoded.
            dropResident(pos);
            bytes_[pos].clear();
            rawLens_[pos] = 0;
        }
        inner_->onEvict(pos);
    }

    BlockPos
    select(std::span<const BlockPos> cands) override
    {
        return inner_->select(cands);
    }

    double score(BlockPos pos) const override { return inner_->score(pos); }

    std::uint64_t
    tieBreaker(BlockPos pos) const override
    {
        return inner_->tieBreaker(pos);
    }

    std::string name() const override { return inner_->name(); }

    void setPending(std::uint64_t v) { pending_ = v; }

    std::uint64_t
    valueAt(BlockPos pos) const
    {
        return values_[pos].load(std::memory_order_relaxed);
    }

    /** Resident key at @p pos, kInvalidAddr if empty — the lock-free
     *  reader's tag check (safe: relaxed atomic, seq-validated). */
    std::uint64_t
    keyAt(BlockPos pos) const
    {
        return keys_[pos].load(std::memory_order_relaxed);
    }

    void
    setValue(BlockPos pos, std::uint64_t v)
    {
        values_[pos].store(v, std::memory_order_relaxed);
    }

    std::uint64_t lastEvicted() const { return lastEvicted_; }

    // ---- bytes mode (shard lock held for all of these) -------------

    /** Stage the compressed payload for the next onInsert, counting
     *  the compression in the shard's accounting. */
    void
    stagePendingBytes(std::vector<std::uint8_t> compressed,
                      std::uint32_t rawLen)
    {
        comp_.compressCalls++;
        comp_.rawBytesTotal += rawLen;
        comp_.storedBytesTotal += compressed.size();
        pendingBytes_ = std::move(compressed);
        pendingRawLen_ = rawLen;
    }

    /** Update-in-place twin of stagePendingBytes. */
    void
    setValueBytes(BlockPos pos, std::vector<std::uint8_t> compressed,
                  std::uint32_t rawLen)
    {
        comp_.compressCalls++;
        comp_.rawBytesTotal += rawLen;
        comp_.storedBytesTotal += compressed.size();
        dropResident(pos);
        bytes_[pos] = std::move(compressed);
        rawLens_[pos] = rawLen;
        comp_.residentRawBytes += rawLen;
        comp_.residentStoredBytes += bytes_[pos].size();
    }

    const std::vector<std::uint8_t>&
    bytesAt(BlockPos pos) const
    {
        return bytes_[pos];
    }

    void noteDecompress() { comp_.decompressCalls++; }

    const ZkvCompressionStats& compressionStats() const { return comp_; }

  private:
    void
    dropResident(BlockPos pos)
    {
        comp_.residentRawBytes -= rawLens_[pos];
        comp_.residentStoredBytes -= bytes_[pos].size();
    }

    std::unique_ptr<ReplacementPolicy> inner_;
    std::vector<std::atomic<std::uint64_t>> keys_;
    std::vector<std::atomic<std::uint64_t>> values_;
    std::uint64_t pending_ = 0;
    std::uint64_t lastEvicted_ = 0;

    const bool bytesMode_;
    std::vector<std::vector<std::uint8_t>> bytes_; ///< stored payloads
    std::vector<std::uint32_t> rawLens_; ///< pre-codec length per pos
    std::vector<std::uint8_t> pendingBytes_;
    std::uint32_t pendingRawLen_ = 0;
    ZkvCompressionStats comp_;
};

} // namespace

struct ZkvStore::Shard
{
    explicit Shard(ShardLockKind lock_kind) : lock(lock_kind) {}

    ShardLock lock;
    ShardSeq seq; ///< odd while a locked writer mutates the shard
    std::unique_ptr<CacheArray> array;
    ValueMirror* mirror = nullptr; ///< owned by array's policy chain
    ZkvShardStats stats;
    ZkvShardObs obs; ///< written only on the instrumented op paths
    ZkvSeqCounters seqc; ///< lock-free read-path counters (relaxed)

    /**
     * RAII seqlock write section. Every mutation that can move, change
     * or remove an entry — put update, walk insert (relocations +
     * eviction + fill), erase, recovery replay — runs inside one of
     * these, always while `lock` is held. Gets don't: in Locked mode
     * readers hold the lock, and optimistic-mode gets touch no shard
     * state a reader can see (policy metadata is never read
     * lock-free).
     */
    struct WriteSection
    {
        explicit WriteSection(Shard& s) : seq(s.seq) { seq.beginWrite(); }
        ~WriteSection() { seq.endWrite(); }
        WriteSection(const WriteSection&) = delete;
        WriteSection& operator=(const WriteSection&) = delete;
        ShardSeq& seq;
    };
};

ZkvStore::ZkvStore(ZkvConfig cfg) : cfg_(cfg) {}

ZkvStore::~ZkvStore()
{
    // Join the tier's threads while the shards (which its snapshot
    // callback locks) are still alive; member order alone also
    // guarantees this, but the intent deserves to be explicit.
    if (persist_ != nullptr) {
        Status ignored = persist_->stop();
        (void)ignored;
    }
}

Expected<std::unique_ptr<ZkvStore>>
ZkvStore::create(const ZkvConfig& cfg)
{
    if (Status s = cfg.validate(); !s.isOk()) return s;

    auto store = std::unique_ptr<ZkvStore>(new ZkvStore(cfg));
    if (cfg.value.bytesMode()) store->codec_ = makeCodec(cfg.value.codec);
    store->shards_.reserve(cfg.shards);
    for (std::uint32_t i = 0; i < cfg.shards; i++) {
        if (ZC_INJECT_FAULT("store.alloc")) {
            return Status::resourceExhausted(
                "zkv: injected shard allocation failure (site store.alloc, "
                "shard " +
                std::to_string(i) + ")");
        }
        ArraySpec spec = cfg.shardSpec(i);
        // Same inner-policy construction as the one-argument makeArray,
        // so a bare makeArray(shardSpec(i)) reproduces this shard's
        // walk decisions exactly (tests/test_store.cpp relies on it).
        auto mirror = std::make_unique<ValueMirror>(
            makePolicy(spec.policy, policyBlocksFor(spec),
                       spec.seed ^ 0x9d2c),
            cfg.value);
        ValueMirror* mirror_ptr = mirror.get();
        auto shard = std::make_unique<Shard>(cfg.lock);
        shard->array = makeArray(spec, std::move(mirror));
        shard->mirror = mirror_ptr;
        if (i == 0 && cfg.readPath == ReadPath::Optimistic) {
            // The lock-free reader computes a key's candidate positions
            // itself; an array kind that cannot enumerate them (victim
            // caches, fully-associative, ...) cannot serve optimistic
            // gets. Reject up front rather than silently degrading.
            BlockPos probeBuf[kMaxLookupWays];
            if (shard->array->lookupWays(0, probeBuf, kMaxLookupWays) ==
                0) {
                return Status::invalidArgument(
                    "zkv: read path 'optimistic' requires candidate-"
                    "position enumeration (lookupWays), which array '" +
                    cfg.array.label() + "' does not support");
            }
        }
        store->shards_.push_back(std::move(shard));
    }
    if (cfg.persist.enabled()) {
        // The identity string pins the array shape + seed alongside
        // the shard count the tier's MANIFEST records: replaying logs
        // into a differently-shaped store would scatter keys.
        const std::string identity =
            cfg.array.label() + " blocks=" +
            std::to_string(cfg.array.blocks) +
            " seed=" + std::to_string(cfg.array.seed);
        auto tier_or =
            persist::PersistTier::open(cfg.persist, cfg.shards, identity);
        if (!tier_or) return tier_or.status();
        store->persist_ = std::move(*tier_or);
        ZkvStore* raw = store.get();
        store->persist_->setSnapshotSource(
            [raw](std::uint32_t shard) {
                return raw->captureShardSnapshot(shard);
            });
    }
    return store;
}

std::uint32_t
ZkvStore::numShards() const
{
    return cfg_.shards;
}

std::uint32_t
ZkvStore::shardOf(std::uint64_t key) const
{
    // splitmix64 over (key, store seed): independent of the H3 way
    // hashing inside the shard, so bank selection never correlates
    // with candidate placement.
    return static_cast<std::uint32_t>(zkvMix64(key ^ cfg_.array.seed) %
                                      cfg_.shards);
}

std::optional<std::uint64_t>
ZkvStore::get(std::uint64_t key)
{
    zc_assert(!bytesMode()); // bytes-mode callers use getBytes()
    if (cfg_.readPath == ReadPath::Optimistic) {
        return obsEnabled_ ? getOptimisticTraced(key) : getOptimistic(key);
    }
    if (obsEnabled_) return getTraced(key);
    Shard& sh = *shards_[shardOf(key)];
    std::lock_guard<ShardLock> g(sh.lock);
    sh.stats.gets++;
    AccessContext ctx{key, kNoNextUse};
    BlockPos pos = sh.array->access(key, ctx);
    if (pos == kInvalidPos) return std::nullopt;
    sh.stats.getHits++;
    return sh.mirror->valueAt(pos);
}

Expected<PutResult>
ZkvStore::put(std::uint64_t key, std::uint64_t value)
{
    if (bytesMode()) {
        return Status::invalidArgument(
            "zkv: put(u64) on a bytes-mode store (use putBytes)");
    }
    if (obsEnabled_) return putTraced(key, value);
    if (key == kReservedKey) {
        return Status::invalidArgument(
            "zkv: key " + std::to_string(key) +
            " is reserved (array invalid-address sentinel)");
    }
    const std::uint32_t shard = shardOf(key);
    Shard& sh = *shards_[shard];
    PutResult res;
    std::uint64_t pseq = 0;
    {
        std::lock_guard<ShardLock> g(sh.lock);
        sh.stats.puts++;
        AccessContext ctx{key, kNoNextUse};

        BlockPos pos = sh.array->access(key, ctx);
        if (pos != kInvalidPos) {
            {
                Shard::WriteSection ws(sh);
                sh.mirror->setValue(pos, value);
            }
            sh.stats.putUpdates++;
            if (persist_ != nullptr) {
                pseq = persist_->logPut(shard, key, value);
            }
        } else {
            if (ZC_INJECT_FAULT("store.walk")) {
                return Status::resourceExhausted(
                    "zkv: injected relocation-walk failure (site "
                    "store.walk, shard " +
                    std::to_string(shard) + ")");
            }
            sh.mirror->setPending(value);
            Replacement r = [&] {
                Shard::WriteSection ws(sh);
                return sh.array->insert(key, ctx);
            }();
            res.inserted = true;
            res.candidates = r.candidates;
            res.relocations = r.relocations;
            sh.stats.putInserts++;
            sh.stats.walkCandidates += r.candidates;
            sh.stats.relocations += r.relocations;
            if (r.evictedValid()) {
                res.evicted = true;
                res.evictedKey = r.evictedAddr;
                res.evictedValue = sh.mirror->lastEvicted();
                sh.stats.evictions++;
            }
            if (persist_ != nullptr) {
                // Evict-then-put is the apply order: replaying the two
                // records leaves exactly this shard state.
                if (res.evicted) persist_->logEvict(shard, res.evictedKey);
                pseq = persist_->logPut(shard, key, value);
            }
        }
    }
    // Group-commit wait happens after the lock is released so the
    // shard stays available to other threads during the fsync.
    if (pseq != 0) {
        if (Status s = persist_->waitDurable(shard, pseq); !s.isOk()) {
            return s;
        }
    }
    return res;
}

bool
ZkvStore::erase(std::uint64_t key)
{
    if (obsEnabled_) return eraseTraced(key);
    const std::uint32_t shard = shardOf(key);
    Shard& sh = *shards_[shard];
    bool hit = false;
    std::uint64_t pseq = 0;
    {
        std::lock_guard<ShardLock> g(sh.lock);
        sh.stats.erases++;
        {
            Shard::WriteSection ws(sh);
            hit = sh.array->invalidate(key);
        }
        if (hit) {
            sh.stats.eraseHits++;
            if (persist_ != nullptr) pseq = persist_->logErase(shard, key);
        }
    }
    // The bool API is kept: a durability failure here is sticky and
    // surfaces through the tier's counters and stopPersist().
    if (pseq != 0) {
        Status ignored = persist_->waitDurable(shard, pseq);
        (void)ignored;
    }
    return hit;
}

/*
 * ---- byte-payload values (docs/compression.md) ---------------------
 *
 * The bytes-mode single-op paths below are plain (untraced): bytes
 * mode is Locked-read-path only and the batch path — which the server
 * drives — carries the instrumentation, so per-op spans for byte
 * traffic come from runShardBatch. Compression happens outside the
 * shard lock (codecs are stateless, payloads are <= kZkvMaxValueBytes)
 * so the lock covers only the array mutation, like the u64 paths.
 */

Expected<PutResult>
ZkvStore::putBytes(std::uint64_t key, std::span<const std::uint8_t> value)
{
    if (!bytesMode()) {
        return Status::invalidArgument(
            "zkv: putBytes on a fixed-u64 store (set value.maxBytes)");
    }
    if (key == kReservedKey) {
        return Status::invalidArgument(
            "zkv: key " + std::to_string(key) +
            " is reserved (array invalid-address sentinel)");
    }
    if (value.size() > cfg_.value.maxBytes) {
        return Status::invalidArgument(
            "zkv: value length " + std::to_string(value.size()) +
            " exceeds value.maxBytes (" +
            std::to_string(cfg_.value.maxBytes) + ")");
    }
    const auto rawLen = static_cast<std::uint32_t>(value.size());
    std::vector<std::uint8_t> comp(codec_->maxCompressedSize(value.size()));
    auto n_or = codec_->compress(value.data(), value.size(), comp.data(),
                                 comp.size());
    zc_assert(n_or.hasValue()); // comp is maxCompressedSize-sized
    comp.resize(*n_or);

    const std::uint32_t shard = shardOf(key);
    Shard& sh = *shards_[shard];
    PutResult res;
    std::lock_guard<ShardLock> g(sh.lock);
    sh.stats.puts++;
    AccessContext ctx{key, kNoNextUse};
    BlockPos pos = sh.array->access(key, ctx);
    if (pos != kInvalidPos) {
        {
            Shard::WriteSection ws(sh);
            sh.mirror->setValueBytes(pos, std::move(comp), rawLen);
        }
        sh.stats.putUpdates++;
        return res;
    }
    if (ZC_INJECT_FAULT("store.walk")) {
        return Status::resourceExhausted(
            "zkv: injected relocation-walk failure (site store.walk, "
            "shard " +
            std::to_string(shard) + ")");
    }
    sh.mirror->stagePendingBytes(std::move(comp), rawLen);
    Replacement r = [&] {
        Shard::WriteSection ws(sh);
        return sh.array->insert(key, ctx);
    }();
    res.inserted = true;
    res.candidates = r.candidates;
    res.relocations = r.relocations;
    sh.stats.putInserts++;
    sh.stats.walkCandidates += r.candidates;
    sh.stats.relocations += r.relocations;
    if (r.evictedValid()) {
        // Only the key: the victim's payload dies compressed
        // (PutResult::evictedValue stays 0 in bytes mode).
        res.evicted = true;
        res.evictedKey = r.evictedAddr;
        sh.stats.evictions++;
    }
    return res;
}

Expected<std::optional<std::vector<std::uint8_t>>>
ZkvStore::getBytes(std::uint64_t key)
{
    if (!bytesMode()) {
        return Status::invalidArgument(
            "zkv: getBytes on a fixed-u64 store (set value.maxBytes)");
    }
    Shard& sh = *shards_[shardOf(key)];
    std::lock_guard<ShardLock> g(sh.lock);
    sh.stats.gets++;
    AccessContext ctx{key, kNoNextUse};
    BlockPos pos = sh.array->access(key, ctx);
    if (pos == kInvalidPos) {
        return std::optional<std::vector<std::uint8_t>>{};
    }
    sh.stats.getHits++;
    const std::vector<std::uint8_t>& stored = sh.mirror->bytesAt(pos);
    std::vector<std::uint8_t> out(cfg_.value.maxBytes);
    sh.mirror->noteDecompress();
    auto len_or = codec_->decompress(stored.data(), stored.size(),
                                     out.data(), out.size());
    // A decode failure (corrupt stream, or the compress.codec fault
    // site) surfaces as the codec's Corruption status — the caller
    // never sees torn or partial bytes.
    if (!len_or) return len_or.status();
    out.resize(*len_or);
    return std::optional<std::vector<std::uint8_t>>(std::move(out));
}

ZkvCompressionStats
ZkvStore::compressionTotals() const
{
    ZkvCompressionStats t;
    for (const auto& sh : shards_) {
        std::lock_guard<ShardLock> g(sh->lock);
        t.add(sh->mirror->compressionStats());
    }
    return t;
}

void
ZkvStore::runShardBatch(std::uint32_t shard,
                        std::span<const StoreBatchOp> ops,
                        StoreBatchResult* out)
{
    if (ops.empty()) return;
    zc_assert(shard < shards_.size());

    if (cfg_.readPath == ReadPath::Optimistic) {
        bool allGets = true;
        for (const StoreBatchOp& op : ops) {
            if (op.kind != ObsOp::Get) {
                allGets = false;
                break;
            }
        }
        // Only a pure-get batch may go lock-free: a put between two
        // gets must stay ordered with them, so mixed batches keep the
        // one-lock in-order execution below.
        if (allGets) {
            runShardBatchGetsOptimistic(shard, ops, out);
            return;
        }
    }

    Shard& sh = *shards_[shard];

    const bool traced = obsEnabled_;
    // Records are filled under the lock but pushed to the tracer only
    // after it is released, like the single-op traced paths.
    std::vector<ObsOpRecord> recs;
    if (traced && tracer_ != nullptr) recs.reserve(ops.size());

    // Mutations logged to the durability tier this batch: one wait on
    // the batch's highest seqno covers them all (seqnos are assigned
    // in queue order under the lock held below).
    std::uint64_t persistSeq = 0;
    std::vector<std::size_t> persistIdx;

    std::uint64_t tBatch = 0;
    ShardLock::Acquire acq{};
    if (traced) {
        tBatch = obsNowNs();
        acq = sh.lock.lockInstrumented();
    } else {
        sh.lock.lock();
    }
    std::uint64_t tLocked =
        traced ? (acq.contended ? obsNowNs() : tBatch) : 0;
    {
        std::lock_guard<ShardLock> g(sh.lock, std::adopt_lock);
        // Insert bookkeeping shared by the traced and plain put arms.
        auto applyInsert = [&sh](const Replacement& r,
                                 StoreBatchResult& res, ObsOpRecord& rec) {
            res.inserted = true;
            res.candidates = r.candidates;
            res.relocations = r.relocations;
            rec.flags |= kObsFlagInserted;
            sh.stats.putInserts++;
            sh.stats.walkCandidates += r.candidates;
            sh.stats.relocations += r.relocations;
            if (r.evictedValid()) {
                res.evicted = true;
                res.evictedKey = r.evictedAddr;
                res.evictedValue = sh.mirror->lastEvicted();
                sh.stats.evictions++;
                rec.flags |= kObsFlagEvicted;
            }
        };
        std::uint64_t cursor = tLocked;
        for (std::size_t i = 0; i < ops.size(); i++) {
            const StoreBatchOp& op = ops[i];
            StoreBatchResult& res = out[i];
            res = StoreBatchResult{};

            ObsOpRecord rec;
            rec.op = op.kind;
            rec.key = op.key;
            rec.shard = static_cast<std::uint16_t>(shard);
            if (traced) {
                // The op span starts when the request finished frame
                // decode (when known): queueing up to dispatch is the
                // `net` phase, the batch's one lock wait is attributed
                // to its first op, and later ops' probe phases start
                // where the previous op ended.
                std::uint64_t tDispatch = i == 0 ? tBatch : cursor;
                rec.tsBeginNs =
                    op.enqueueNs != 0 && op.enqueueNs < tDispatch
                        ? op.enqueueNs
                        : tDispatch;
                rec.netNs = obsDurNs(rec.tsBeginNs, tDispatch);
                if (i == 0 && acq.contended) {
                    rec.lockWaitNs = obsDurNs(tBatch, tLocked);
                }
            }

            AccessContext ctx{op.key, kNoNextUse};
            switch (op.kind) {
              case ObsOp::Get: {
                sh.stats.gets++;
                BlockPos pos = sh.array->access(op.key, ctx);
                if (pos != kInvalidPos) {
                    sh.stats.getHits++;
                    if (bytesMode()) {
                        const std::vector<std::uint8_t>& stored =
                            sh.mirror->bytesAt(pos);
                        std::vector<std::uint8_t> outv(
                            cfg_.value.maxBytes);
                        sh.mirror->noteDecompress();
                        auto len_or = codec_->decompress(
                            stored.data(), stored.size(), outv.data(),
                            outv.size());
                        if (!len_or) {
                            // Corrupt stream (or the compress.codec
                            // fault site): structured failure, never
                            // torn bytes.
                            res.code = ErrorCode::Corruption;
                            rec.flags |= kObsFlagError;
                            break;
                        }
                        outv.resize(*len_or);
                        res.valueBytes = std::move(outv);
                    } else {
                        res.value = sh.mirror->valueAt(pos);
                    }
                    res.hit = true;
                    rec.flags |= kObsFlagHit;
                }
                break;
              }
              case ObsOp::Put: {
                if (op.key == kReservedKey) {
                    res.code = ErrorCode::InvalidArgument;
                    rec.flags |= kObsFlagError;
                    break;
                }
                const bool bytes = bytesMode();
                if (bytes &&
                    op.valueBytes.size() > cfg_.value.maxBytes) {
                    res.code = ErrorCode::InvalidArgument;
                    rec.flags |= kObsFlagError;
                    break;
                }
                sh.stats.puts++;
                std::vector<std::uint8_t> comp;
                if (bytes) {
                    comp.resize(codec_->maxCompressedSize(
                        op.valueBytes.size()));
                    auto n_or = codec_->compress(
                        op.valueBytes.data(), op.valueBytes.size(),
                        comp.data(), comp.size());
                    zc_assert(n_or.hasValue());
                    comp.resize(*n_or);
                }
                const auto rawLen =
                    static_cast<std::uint32_t>(op.valueBytes.size());
                std::uint64_t tProbe0 = traced ? obsNowNs() : 0;
                BlockPos pos = sh.array->access(op.key, ctx);
                if (pos != kInvalidPos) {
                    {
                        Shard::WriteSection ws(sh);
                        if (bytes) {
                            sh.mirror->setValueBytes(pos, std::move(comp),
                                                     rawLen);
                        } else {
                            sh.mirror->setValue(pos, op.value);
                        }
                    }
                    sh.stats.putUpdates++;
                    res.hit = true;
                    rec.flags |= kObsFlagHit;
                    if (persist_ != nullptr) {
                        persistSeq =
                            persist_->logPut(shard, op.key, op.value);
                        persistIdx.push_back(i);
                    }
                    break;
                }
                if (ZC_INJECT_FAULT("store.walk")) {
                    res.code = ErrorCode::ResourceExhausted;
                    rec.flags |= kObsFlagError;
                    break;
                }
                if (bytes) {
                    sh.mirror->stagePendingBytes(std::move(comp), rawLen);
                } else {
                    sh.mirror->setPending(op.value);
                }
                if (traced) {
                    std::uint64_t tWalk0 = obsNowNs();
                    rec.probeNs = obsDurNs(tProbe0, tWalk0);
                    Replacement r = [&] {
                        Shard::WriteSection ws(sh);
                        return sh.array->insert(op.key, ctx);
                    }();
                    rec.walkNs = obsDurNs(tWalk0, obsNowNs());
                    rec.candidates = r.candidates;
                    rec.relocations = r.relocations;
                    applyInsert(r, res, rec);
                } else {
                    Replacement r = [&] {
                        Shard::WriteSection ws(sh);
                        return sh.array->insert(op.key, ctx);
                    }();
                    applyInsert(r, res, rec);
                }
                if (persist_ != nullptr) {
                    if (res.evicted) {
                        persist_->logEvict(shard, res.evictedKey);
                    }
                    persistSeq = persist_->logPut(shard, op.key, op.value);
                    persistIdx.push_back(i);
                }
                break;
              }
              case ObsOp::Erase: {
                sh.stats.erases++;
                bool erased = false;
                {
                    Shard::WriteSection ws(sh);
                    erased = sh.array->invalidate(op.key);
                }
                if (erased) {
                    sh.stats.eraseHits++;
                    res.hit = true;
                    rec.flags |= kObsFlagHit;
                    if (persist_ != nullptr) {
                        persistSeq = persist_->logErase(shard, op.key);
                        persistIdx.push_back(i);
                    }
                }
                break;
              }
            }

            if (traced) {
                std::uint64_t tEnd = obsNowNs();
                // The put path above measured probe/walk itself; the
                // other ops fold their whole locked section into probe.
                if (rec.probeNs == 0 && rec.walkNs == 0) {
                    std::uint64_t tOpStart = i == 0 ? tLocked : cursor;
                    rec.probeNs = obsDurNs(tOpStart, tEnd);
                }
                rec.durNs = obsDurNs(rec.tsBeginNs, tEnd);
                cursor = tEnd;
                sh.obs.lockAcquisitions += i == 0 ? 1 : 0;
                sh.obs.lockContended += i == 0 && acq.contended ? 1 : 0;
                sh.obs.lockSpinIters += i == 0 ? acq.spins : 0;
                sh.obs.lockWaitNs += rec.lockWaitNs;
                sh.obs.netNs += rec.netNs;
                sh.obs.probeNs += rec.probeNs;
                sh.obs.walkNs += rec.walkNs;
                sh.obs.opNs += rec.durNs;
                if (tracer_ != nullptr) recs.push_back(rec);
            }
        }
    }
    // Group-commit wait after the lock is released: one wait on the
    // batch's highest seqno covers every mutation it logged.
    if (persistSeq != 0) {
        if (Status s = persist_->waitDurable(shard, persistSeq);
            !s.isOk()) {
            // The state changed but never became durable — surface a
            // structured failure on each op this batch logged rather
            // than acking writes a crash would lose.
            for (std::size_t i : persistIdx) {
                out[i].code = ErrorCode::IoError;
            }
        }
    }
    if (!recs.empty()) {
        ObsThreadChannel* ch = tracer_->channel();
        for (const ObsOpRecord& r : recs) ch->record(r);
    }
}

/*
 * ---- optimistic read path (ReadPath::Optimistic, docs/store.md) ----
 *
 * The reader computes the key's W candidate positions itself
 * (CacheArray::lookupWays is a pure function of the key and the hash
 * matrices — a resident block is always in one of them, Section III-A)
 * and scans the ValueMirror's relaxed atomic key/value mirrors between
 * a ShardSeq readBegin/readValidate pair. Any overlap with a writer's
 * odd window discards the snapshot and retries; after
 * kSeqGetMaxRetries the get is answered under the shard lock. Neither
 * path promotes the hit in the replacement policy — an optimistic-mode
 * shard's eviction order is a pure function of its put/erase sequence,
 * whichever path answers a get.
 */

bool
ZkvStore::tryOptimisticGet(Shard& sh, std::uint64_t key,
                           std::uint32_t& retries, bool& hit,
                           std::uint64_t& value)
{
    BlockPos pos[kMaxLookupWays];
    const std::uint32_t ways = sh.array->lookupWays(key, pos, kMaxLookupWays);
    for (std::uint32_t attempt = 0; attempt <= kSeqGetMaxRetries;
         attempt++) {
        const std::uint64_t begin = sh.seq.readBegin();
        if (begin & 1) {
            // Writer mid-section: probing now could only be wasted
            // work, so count the retry and re-snapshot immediately.
            retries++;
            continue;
        }
        bool h = false;
        std::uint64_t v = 0;
        for (std::uint32_t w = 0; w < ways; w++) {
            if (sh.mirror->keyAt(pos[w]) == key) {
                v = sh.mirror->valueAt(pos[w]);
                h = true;
                break;
            }
        }
        if (sh.seq.readValidate(begin)) {
            hit = h;
            value = v;
            return true;
        }
        retries++;
    }
    return false;
}

std::optional<std::uint64_t>
ZkvStore::getOptimistic(std::uint64_t key)
{
    Shard& sh = *shards_[shardOf(key)];
    std::uint32_t retries = 0;
    bool hit = false;
    std::uint64_t value = 0;
    if (tryOptimisticGet(sh, key, retries, hit, value)) {
        sh.seqc.gets.fetch_add(1, std::memory_order_relaxed);
        sh.seqc.optimistic.fetch_add(1, std::memory_order_relaxed);
        if (hit) sh.seqc.getHits.fetch_add(1, std::memory_order_relaxed);
        if (retries != 0) {
            sh.seqc.retried.fetch_add(retries, std::memory_order_relaxed);
        }
        if (hit) return value;
        return std::nullopt;
    }
    // Locked fallback — still no policy promotion (probe, not access):
    // a get's semantics must not depend on which path answered it.
    sh.seqc.fallback.fetch_add(1, std::memory_order_relaxed);
    sh.seqc.retried.fetch_add(retries, std::memory_order_relaxed);
    std::lock_guard<ShardLock> g(sh.lock);
    sh.stats.gets++;
    BlockPos pos = sh.array->probe(key);
    if (pos == kInvalidPos) return std::nullopt;
    sh.stats.getHits++;
    return sh.mirror->valueAt(pos);
}

std::optional<std::uint64_t>
ZkvStore::getOptimisticTraced(std::uint64_t key)
{
    ObsOpRecord rec;
    rec.op = ObsOp::Get;
    rec.key = key;
    const std::uint32_t shard = shardOf(key);
    rec.shard = static_cast<std::uint16_t>(shard);
    rec.flags |= kObsFlagOptimistic;
    rec.tsBeginNs = obsNowNs();

    Shard& sh = *shards_[shard];
    std::uint32_t retries = 0;
    bool hit = false;
    std::uint64_t value = 0;
    if (tryOptimisticGet(sh, key, retries, hit, value)) {
        std::uint64_t tEnd = obsNowNs();
        rec.durNs = obsDurNs(rec.tsBeginNs, tEnd);
        // The whole lock-free op is one probe; gets never walk, so the
        // candidates field carries the seq retry count instead.
        rec.probeNs = rec.durNs;
        rec.candidates = retries;
        if (hit) rec.flags |= kObsFlagHit;
        sh.seqc.gets.fetch_add(1, std::memory_order_relaxed);
        sh.seqc.optimistic.fetch_add(1, std::memory_order_relaxed);
        if (hit) sh.seqc.getHits.fetch_add(1, std::memory_order_relaxed);
        if (retries != 0) {
            sh.seqc.retried.fetch_add(retries, std::memory_order_relaxed);
        }
        // No sh.obs ns attribution without the lock; the record itself
        // carries the timing and the tracer ring is per-thread SPSC.
        if (tracer_ != nullptr) tracer_->channel()->record(rec);
        if (hit) return value;
        return std::nullopt;
    }

    rec.flags |= kObsFlagSeqFallback;
    rec.candidates = retries;
    sh.seqc.fallback.fetch_add(1, std::memory_order_relaxed);
    sh.seqc.retried.fetch_add(retries, std::memory_order_relaxed);

    std::uint64_t tLockStart = obsNowNs();
    ShardLock::Acquire acq = sh.lock.lockInstrumented();
    std::uint64_t tLocked = acq.contended ? obsNowNs() : tLockStart;
    if (acq.contended) rec.lockWaitNs = obsDurNs(tLockStart, tLocked);

    std::optional<std::uint64_t> out;
    {
        std::lock_guard<ShardLock> g(sh.lock, std::adopt_lock);
        sh.stats.gets++;
        BlockPos pos = sh.array->probe(key);
        std::uint64_t tProbed = obsNowNs();
        rec.probeNs = obsDurNs(tLocked, tProbed);
        if (pos != kInvalidPos) {
            sh.stats.getHits++;
            rec.flags |= kObsFlagHit;
            out = sh.mirror->valueAt(pos);
        }
        rec.durNs = obsDurNs(rec.tsBeginNs, tProbed);
        sh.obs.lockAcquisitions++;
        sh.obs.lockContended += acq.contended ? 1 : 0;
        sh.obs.lockSpinIters += acq.spins;
        sh.obs.lockWaitNs += rec.lockWaitNs;
        sh.obs.probeNs += rec.probeNs;
        sh.obs.opNs += rec.durNs;
    }
    if (tracer_ != nullptr) tracer_->channel()->record(rec);
    return out;
}

void
ZkvStore::runShardBatchGetsOptimistic(std::uint32_t shard,
                                      std::span<const StoreBatchOp> ops,
                                      StoreBatchResult* out)
{
    Shard& sh = *shards_[shard];
    const bool traced = obsEnabled_;

    std::vector<ObsOpRecord> recs;
    if (traced) recs.resize(ops.size());

    // Pass 1: every get tries the lock-free path on its own; the rare
    // failures queue up for one shared lock acquisition below.
    std::vector<std::size_t> fell;
    std::uint64_t nOk = 0;
    std::uint64_t nHit = 0;
    std::uint64_t nRetried = 0;
    for (std::size_t i = 0; i < ops.size(); i++) {
        const StoreBatchOp& op = ops[i];
        StoreBatchResult& res = out[i];
        res = StoreBatchResult{};

        std::uint64_t t0 = 0;
        if (traced) {
            ObsOpRecord& rec = recs[i];
            rec.op = ObsOp::Get;
            rec.key = op.key;
            rec.shard = static_cast<std::uint16_t>(shard);
            rec.flags |= kObsFlagOptimistic;
            t0 = obsNowNs();
            rec.tsBeginNs =
                op.enqueueNs != 0 && op.enqueueNs < t0 ? op.enqueueNs : t0;
            rec.netNs = obsDurNs(rec.tsBeginNs, t0);
        }

        std::uint32_t retries = 0;
        bool hit = false;
        std::uint64_t value = 0;
        if (tryOptimisticGet(sh, op.key, retries, hit, value)) {
            nOk++;
            nRetried += retries;
            if (hit) {
                nHit++;
                res.hit = true;
                res.value = value;
            }
            if (traced) {
                ObsOpRecord& rec = recs[i];
                std::uint64_t tEnd = obsNowNs();
                rec.probeNs = obsDurNs(t0, tEnd);
                rec.durNs = obsDurNs(rec.tsBeginNs, tEnd);
                rec.candidates = retries;
                if (hit) rec.flags |= kObsFlagHit;
            }
        } else {
            nRetried += retries;
            fell.push_back(i);
            if (traced) {
                ObsOpRecord& rec = recs[i];
                rec.flags |= kObsFlagSeqFallback;
                rec.candidates = retries;
            }
        }
    }
    if (nOk != 0) {
        sh.seqc.gets.fetch_add(nOk, std::memory_order_relaxed);
        sh.seqc.optimistic.fetch_add(nOk, std::memory_order_relaxed);
    }
    if (nHit != 0) {
        sh.seqc.getHits.fetch_add(nHit, std::memory_order_relaxed);
    }
    if (nRetried != 0) {
        sh.seqc.retried.fetch_add(nRetried, std::memory_order_relaxed);
    }

    // Pass 2: answer the fallbacks in order under one lock. probe(),
    // not access() — optimistic-mode gets never promote.
    if (!fell.empty()) {
        sh.seqc.fallback.fetch_add(fell.size(), std::memory_order_relaxed);
        std::uint64_t tBatch = 0;
        ShardLock::Acquire acq{};
        if (traced) {
            tBatch = obsNowNs();
            acq = sh.lock.lockInstrumented();
        } else {
            sh.lock.lock();
        }
        std::uint64_t tLocked =
            traced ? (acq.contended ? obsNowNs() : tBatch) : 0;
        {
            std::lock_guard<ShardLock> g(sh.lock, std::adopt_lock);
            std::uint64_t cursor = tLocked;
            for (std::size_t n = 0; n < fell.size(); n++) {
                const std::size_t i = fell[n];
                sh.stats.gets++;
                BlockPos pos = sh.array->probe(ops[i].key);
                if (pos != kInvalidPos) {
                    sh.stats.getHits++;
                    out[i].hit = true;
                    out[i].value = sh.mirror->valueAt(pos);
                }
                if (traced) {
                    ObsOpRecord& rec = recs[i];
                    std::uint64_t tEnd = obsNowNs();
                    if (n == 0 && acq.contended) {
                        rec.lockWaitNs = obsDurNs(tBatch, tLocked);
                    }
                    rec.probeNs = obsDurNs(cursor, tEnd);
                    rec.durNs = obsDurNs(rec.tsBeginNs, tEnd);
                    if (out[i].hit) rec.flags |= kObsFlagHit;
                    cursor = tEnd;
                    sh.obs.lockAcquisitions += n == 0 ? 1 : 0;
                    sh.obs.lockContended += n == 0 && acq.contended ? 1 : 0;
                    sh.obs.lockSpinIters += n == 0 ? acq.spins : 0;
                    sh.obs.lockWaitNs += rec.lockWaitNs;
                    sh.obs.netNs += rec.netNs;
                    sh.obs.probeNs += rec.probeNs;
                    sh.obs.opNs += rec.durNs;
                }
            }
        }
    }

    if (traced && tracer_ != nullptr) {
        ObsThreadChannel* ch = tracer_->channel();
        for (const ObsOpRecord& r : recs) ch->record(r);
    }
}

void
ZkvStore::enableObs(ObsTracer* tracer)
{
    tracer_ = tracer;
    obsEnabled_ = true;
}

void
ZkvStore::disableObs()
{
    obsEnabled_ = false;
    tracer_ = nullptr;
}

ZkvShardObs
ZkvStore::shardObs(std::uint32_t shard) const
{
    zc_assert(shard < shards_.size());
    Shard& sh = *shards_[shard];
    std::lock_guard<ShardLock> g(sh.lock);
    ZkvShardObs o = sh.obs;
    // Fold the lock-free read-path counters into the snapshot; the
    // plain fields in sh.obs stay zero (no writer without the lock).
    o.getOptimistic +=
        sh.seqc.optimistic.load(std::memory_order_relaxed);
    o.getRetried += sh.seqc.retried.load(std::memory_order_relaxed);
    o.getFallback += sh.seqc.fallback.load(std::memory_order_relaxed);
    return o;
}

ZkvShardObs
ZkvStore::obsTotals() const
{
    ZkvShardObs t;
    for (std::uint32_t i = 0; i < shards_.size(); i++) {
        t.add(shardObs(i));
    }
    return t;
}

/*
 * The traced twins below mirror the plain paths exactly — same stats,
 * same fault sites, same array calls — plus timestamps at the phase
 * boundaries (lock acquired, probe done, walk done), the per-shard
 * attribution counters, and one ObsOpRecord pushed to the tracer's
 * per-thread ring after the shard lock is released. Keep any
 * behavioral change to the plain paths in sync here (the equivalence
 * test in tests/test_obs.cpp compares the two paths' results).
 */

std::optional<std::uint64_t>
ZkvStore::getTraced(std::uint64_t key)
{
    ObsOpRecord rec;
    rec.op = ObsOp::Get;
    rec.key = key;
    std::uint32_t shard = shardOf(key);
    rec.shard = static_cast<std::uint16_t>(shard);
    rec.tsBeginNs = obsNowNs();

    Shard& sh = *shards_[shard];
    ShardLock::Acquire acq = sh.lock.lockInstrumented();
    // Timestamp the acquire only when it contended: an uncontended
    // lock costs ~15 ns, below the clock's own resolution, and
    // skipping the read saves one of the 3-4 timestamps per op
    // (docs/telemetry.md overhead table). The acquire cost folds into
    // the probe phase in that case.
    std::uint64_t tLocked = acq.contended ? obsNowNs() : rec.tsBeginNs;
    if (acq.contended) {
        rec.lockWaitNs = obsDurNs(rec.tsBeginNs, tLocked);
    }

    std::optional<std::uint64_t> out;
    {
        std::lock_guard<ShardLock> g(sh.lock, std::adopt_lock);
        sh.stats.gets++;
        AccessContext ctx{key, kNoNextUse};
        BlockPos pos = sh.array->access(key, ctx);
        std::uint64_t tProbed = obsNowNs();
        rec.probeNs = obsDurNs(tLocked, tProbed);
        if (pos != kInvalidPos) {
            sh.stats.getHits++;
            rec.flags |= kObsFlagHit;
            out = sh.mirror->valueAt(pos);
        }
        rec.durNs = obsDurNs(rec.tsBeginNs, tProbed);
        sh.obs.lockAcquisitions++;
        sh.obs.lockContended += acq.contended ? 1 : 0;
        sh.obs.lockSpinIters += acq.spins;
        sh.obs.lockWaitNs += rec.lockWaitNs;
        sh.obs.probeNs += rec.probeNs;
        sh.obs.opNs += rec.durNs;
    }
    if (tracer_ != nullptr) tracer_->channel()->record(rec);
    return out;
}

Expected<PutResult>
ZkvStore::putTraced(std::uint64_t key, std::uint64_t value)
{
    if (key == kReservedKey) {
        return Status::invalidArgument(
            "zkv: key " + std::to_string(key) +
            " is reserved (array invalid-address sentinel)");
    }
    ObsOpRecord rec;
    rec.op = ObsOp::Put;
    rec.key = key;
    std::uint32_t shard = shardOf(key);
    rec.shard = static_cast<std::uint16_t>(shard);
    rec.tsBeginNs = obsNowNs();

    Shard& sh = *shards_[shard];
    ShardLock::Acquire acq = sh.lock.lockInstrumented();
    // Timestamp the acquire only when it contended: an uncontended
    // lock costs ~15 ns, below the clock's own resolution, and
    // skipping the read saves one of the 3-4 timestamps per op
    // (docs/telemetry.md overhead table). The acquire cost folds into
    // the probe phase in that case.
    std::uint64_t tLocked = acq.contended ? obsNowNs() : rec.tsBeginNs;
    if (acq.contended) {
        rec.lockWaitNs = obsDurNs(rec.tsBeginNs, tLocked);
    }

    Expected<PutResult> out = PutResult{};
    std::uint64_t pseq = 0;
    {
        std::lock_guard<ShardLock> g(sh.lock, std::adopt_lock);
        sh.stats.puts++;
        AccessContext ctx{key, kNoNextUse};
        BlockPos pos = sh.array->access(key, ctx);
        std::uint64_t tProbed = obsNowNs();
        rec.probeNs = obsDurNs(tLocked, tProbed);

        std::uint64_t tEnd = tProbed;
        if (pos != kInvalidPos) {
            {
                Shard::WriteSection ws(sh);
                sh.mirror->setValue(pos, value);
            }
            sh.stats.putUpdates++;
            rec.flags |= kObsFlagHit;
            if (persist_ != nullptr) {
                pseq = persist_->logPut(shard, key, value);
            }
        } else if (ZC_INJECT_FAULT("store.walk")) {
            out = Status::resourceExhausted(
                "zkv: injected relocation-walk failure (site store.walk, "
                "shard " +
                std::to_string(shard) + ")");
            rec.flags |= kObsFlagError;
        } else {
            sh.mirror->setPending(value);
            Replacement r = [&] {
                Shard::WriteSection ws(sh);
                return sh.array->insert(key, ctx);
            }();
            tEnd = obsNowNs();
            rec.walkNs = obsDurNs(tProbed, tEnd);
            rec.candidates = r.candidates;
            rec.relocations = r.relocations;
            rec.flags |= kObsFlagInserted;
            PutResult& res = *out;
            res.inserted = true;
            res.candidates = r.candidates;
            res.relocations = r.relocations;
            sh.stats.putInserts++;
            sh.stats.walkCandidates += r.candidates;
            sh.stats.relocations += r.relocations;
            if (r.evictedValid()) {
                res.evicted = true;
                res.evictedKey = r.evictedAddr;
                res.evictedValue = sh.mirror->lastEvicted();
                sh.stats.evictions++;
                rec.flags |= kObsFlagEvicted;
            }
            if (persist_ != nullptr) {
                if (res.evicted) persist_->logEvict(shard, res.evictedKey);
                pseq = persist_->logPut(shard, key, value);
            }
        }
        rec.durNs = obsDurNs(rec.tsBeginNs, tEnd);
        sh.obs.lockAcquisitions++;
        sh.obs.lockContended += acq.contended ? 1 : 0;
        sh.obs.lockSpinIters += acq.spins;
        sh.obs.lockWaitNs += rec.lockWaitNs;
        sh.obs.probeNs += rec.probeNs;
        sh.obs.walkNs += rec.walkNs;
        sh.obs.opNs += rec.durNs;
    }
    if (tracer_ != nullptr) tracer_->channel()->record(rec);
    if (pseq != 0) {
        if (Status s = persist_->waitDurable(shard, pseq); !s.isOk()) {
            return s;
        }
    }
    return out;
}

bool
ZkvStore::eraseTraced(std::uint64_t key)
{
    ObsOpRecord rec;
    rec.op = ObsOp::Erase;
    rec.key = key;
    std::uint32_t shard = shardOf(key);
    rec.shard = static_cast<std::uint16_t>(shard);
    rec.tsBeginNs = obsNowNs();

    Shard& sh = *shards_[shard];
    ShardLock::Acquire acq = sh.lock.lockInstrumented();
    // Timestamp the acquire only when it contended: an uncontended
    // lock costs ~15 ns, below the clock's own resolution, and
    // skipping the read saves one of the 3-4 timestamps per op
    // (docs/telemetry.md overhead table). The acquire cost folds into
    // the probe phase in that case.
    std::uint64_t tLocked = acq.contended ? obsNowNs() : rec.tsBeginNs;
    if (acq.contended) {
        rec.lockWaitNs = obsDurNs(rec.tsBeginNs, tLocked);
    }

    bool hit = false;
    std::uint64_t pseq = 0;
    {
        std::lock_guard<ShardLock> g(sh.lock, std::adopt_lock);
        sh.stats.erases++;
        {
            Shard::WriteSection ws(sh);
            hit = sh.array->invalidate(key);
        }
        std::uint64_t tEnd = obsNowNs();
        rec.probeNs = obsDurNs(tLocked, tEnd);
        if (hit) {
            sh.stats.eraseHits++;
            rec.flags |= kObsFlagHit;
            if (persist_ != nullptr) pseq = persist_->logErase(shard, key);
        }
        rec.durNs = obsDurNs(rec.tsBeginNs, tEnd);
        sh.obs.lockAcquisitions++;
        sh.obs.lockContended += acq.contended ? 1 : 0;
        sh.obs.lockSpinIters += acq.spins;
        sh.obs.lockWaitNs += rec.lockWaitNs;
        sh.obs.probeNs += rec.probeNs;
        sh.obs.opNs += rec.durNs;
    }
    if (tracer_ != nullptr) tracer_->channel()->record(rec);
    // Same contract as the plain path: the bool API is kept, and a
    // durability failure stays visible via the tier's sticky error.
    if (pseq != 0) {
        Status ignored = persist_->waitDurable(shard, pseq);
        (void)ignored;
    }
    return hit;
}

// ---- durability tier -----------------------------------------------

void
ZkvStore::replayPut(std::uint32_t shard, std::uint64_t key,
                    std::uint64_t value)
{
    if (key == kReservedKey) return;
    Shard& sh = *shards_[shard];
    std::lock_guard<ShardLock> g(sh.lock);
    AccessContext ctx{key, kNoNextUse};
    BlockPos pos = sh.array->access(key, ctx);
    if (pos != kInvalidPos) {
        Shard::WriteSection ws(sh);
        sh.mirror->setValue(pos, value);
        return;
    }
    sh.mirror->setPending(value);
    // Replay inserts may themselves evict (capacity): misses after
    // recovery are acceptable, resurrections are not — and since the
    // tier is not active yet, nothing here is re-logged.
    Shard::WriteSection ws(sh);
    (void)sh.array->insert(key, ctx);
}

void
ZkvStore::replayErase(std::uint32_t shard, std::uint64_t key)
{
    Shard& sh = *shards_[shard];
    std::lock_guard<ShardLock> g(sh.lock);
    Shard::WriteSection ws(sh);
    (void)sh.array->invalidate(key);
}

Expected<persist::RecoveryReport>
ZkvStore::recover()
{
    if (persist_ == nullptr) {
        return Status::invalidArgument(
            "zkv: recover() needs persistence configured (set a data "
            "directory)");
    }
    persist::ReplayTarget target;
    target.applyPut = [this](std::uint32_t shard, std::uint64_t key,
                             std::uint64_t value) {
        replayPut(shard, key, value);
    };
    target.applyErase = [this](std::uint32_t shard, std::uint64_t key) {
        replayErase(shard, key);
    };
    auto report_or = persist_->recover(target);
    if (!report_or) return report_or.status();
    if (Status s = persist_->start(); !s.isOk()) return s;
    return report_or;
}

Status
ZkvStore::stopPersist()
{
    if (persist_ == nullptr) return Status::ok();
    return persist_->stop();
}

void
ZkvStore::forEachInShard(
    std::uint32_t shard,
    const std::function<void(std::uint64_t, std::uint64_t)>& fn) const
{
    zc_assert(shard < shards_.size());
    Shard& sh = *shards_[shard];
    std::lock_guard<ShardLock> g(sh.lock);
    sh.array->forEachValid([&](BlockPos pos, Addr addr) {
        fn(addr, sh.mirror->valueAt(pos));
    });
}

persist::SnapshotData
ZkvStore::captureShardSnapshot(std::uint32_t shard) const
{
    zc_assert(persist_ != nullptr);
    zc_assert(shard < shards_.size());
    Shard& sh = *shards_[shard];
    std::lock_guard<ShardLock> g(sh.lock);
    persist::SnapshotData snap;
    // Watermark and enumeration under the same lock acquisition: the
    // image is exactly the state after every op with seqno <= it.
    snap.watermark = persist_->lastSeqno(shard);
    snap.entries.reserve(sh.array->validCount());
    sh.array->forEachValid([&](BlockPos pos, Addr addr) {
        snap.entries.emplace_back(addr, sh.mirror->valueAt(pos));
    });
    return snap;
}

std::uint64_t
ZkvStore::size() const
{
    std::uint64_t n = 0;
    for (const auto& sh : shards_) {
        std::lock_guard<ShardLock> g(sh->lock);
        n += sh->array->validCount();
    }
    return n;
}

ZkvShardStats
ZkvStore::shardStats(std::uint32_t shard) const
{
    zc_assert(shard < shards_.size());
    Shard& sh = *shards_[shard];
    std::lock_guard<ShardLock> g(sh.lock);
    ZkvShardStats s = sh.stats;
    // Lock-free gets count themselves in the shard's atomic seq
    // counters; fold them in so gets/get_hits stay whole-shard truths.
    s.gets += sh.seqc.gets.load(std::memory_order_relaxed);
    s.getHits += sh.seqc.getHits.load(std::memory_order_relaxed);
    return s;
}

ZkvShardStats
ZkvStore::totals() const
{
    ZkvShardStats t;
    for (std::uint32_t i = 0; i < shards_.size(); i++) {
        t.add(shardStats(i));
    }
    return t;
}

namespace {

void
registerShardObsCounters(StatGroup& g, const ZkvShardObs* s,
                         const ZkvSeqCounters* c)
{
    g.addCounter("get_optimistic", "gets answered without the lock", [c] {
        return c->optimistic.load(std::memory_order_relaxed);
    });
    g.addCounter("get_retried", "seqlock validation retries", [c] {
        return c->retried.load(std::memory_order_relaxed);
    });
    g.addCounter("get_fallback", "optimistic gets that took the lock",
                 [c] {
        return c->fallback.load(std::memory_order_relaxed);
    });
    g.addCounter("lock_acquisitions", "instrumented shard-lock takes",
                 [s] { return s->lockAcquisitions; });
    g.addCounter("lock_contended", "lock takes that had to wait",
                 [s] { return s->lockContended; });
    g.addCounter("lock_spin_iters", "TTAS relaxed-test spin iterations",
                 [s] { return s->lockSpinIters; });
    g.addCounter("lock_wait_ns", "summed lock-acquisition wait",
                 [s] { return s->lockWaitNs; });
    g.addCounter("net_ns", "summed decode->dispatch queue time (server)",
                 [s] { return s->netNs; });
    g.addCounter("probe_ns", "summed hash+tag probe time",
                 [s] { return s->probeNs; });
    g.addCounter("walk_ns", "summed relocation-walk time",
                 [s] { return s->walkNs; });
    g.addCounter("op_ns", "summed whole-op time",
                 [s] { return s->opNs; });
}

void
registerShardCounters(StatGroup& g, const ZkvShardStats* s,
                      const ZkvSeqCounters* c)
{
    // gets/get_hits fold in the lock-free path's atomic counters, the
    // same arithmetic shardStats() applies to its snapshot.
    g.addCounter("gets", "get operations", [s, c] {
        return s->gets + c->gets.load(std::memory_order_relaxed);
    });
    g.addCounter("get_hits", "gets that found the key", [s, c] {
        return s->getHits + c->getHits.load(std::memory_order_relaxed);
    });
    g.addCounter("puts", "put operations", [s] { return s->puts; });
    g.addCounter("put_inserts", "puts that installed a new key",
                 [s] { return s->putInserts; });
    g.addCounter("put_updates", "puts that updated in place",
                 [s] { return s->putUpdates; });
    g.addCounter("erases", "erase operations", [s] { return s->erases; });
    g.addCounter("erase_hits", "erases that removed a key",
                 [s] { return s->eraseHits; });
    g.addCounter("evictions", "resident keys displaced by inserts",
                 [s] { return s->evictions; });
    g.addCounter("walk_candidates", "replacement candidates examined",
                 [s] { return s->walkCandidates; });
    g.addCounter("relocations", "walk relocations performed",
                 [s] { return s->relocations; });
}

} // namespace

void
ZkvStore::registerStats(StatGroup& g)
{
    StatGroup& root = g.group("store", "zkv sharded key-value store");
    root.addConst("shards", "shard (bank) count",
                  JsonValue(std::uint64_t{cfg_.shards}));
    root.addConst("array", "per-shard array configuration",
                  JsonValue(cfg_.array.label()));
    root.addConst("lock", "shard lock kind",
                  JsonValue(std::string(shardLockKindName(cfg_.lock))));
    root.addConst("read_path", "get-path mode (docs/store.md)",
                  JsonValue(std::string(readPathName(cfg_.readPath))));
    root.addCounter("resident_keys", "valid keys across all shards",
                    [this] { return size(); });

    // Totals snapshot: one locked sweep per dumped counter keeps the
    // getters trivially consistent with the per-shard groups below.
    StatGroup& tot = root.group("totals", "summed over all shards");
    tot.addCounter("gets", "get operations",
                   [this] { return totals().gets; });
    tot.addCounter("get_hits", "gets that found the key",
                   [this] { return totals().getHits; });
    tot.addCounter("puts", "put operations",
                   [this] { return totals().puts; });
    tot.addCounter("put_inserts", "puts that installed a new key",
                   [this] { return totals().putInserts; });
    tot.addCounter("put_updates", "puts that updated in place",
                   [this] { return totals().putUpdates; });
    tot.addCounter("erases", "erase operations",
                   [this] { return totals().erases; });
    tot.addCounter("erase_hits", "erases that removed a key",
                   [this] { return totals().eraseHits; });
    tot.addCounter("evictions", "resident keys displaced by inserts",
                   [this] { return totals().evictions; });
    tot.addCounter("walk_candidates", "replacement candidates examined",
                   [this] { return totals().walkCandidates; });
    tot.addCounter("relocations", "walk relocations performed",
                   [this] { return totals().relocations; });

    // Latency attribution + lock contention (docs/telemetry.md). All
    // zeros while obs is disabled (the default), so the default stats
    // dump stays deterministic; with obs enabled the *_ns values are
    // wall-clock and belong in the nondeterministic class.
    StatGroup& obs = root.group(
        "obs", "latency attribution and lock contention (traced paths)");
    obs.addCounter("get_optimistic", "gets answered without the lock",
                   [this] { return obsTotals().getOptimistic; });
    obs.addCounter("get_retried", "seqlock validation retries",
                   [this] { return obsTotals().getRetried; });
    obs.addCounter("get_fallback", "optimistic gets that took the lock",
                   [this] { return obsTotals().getFallback; });
    obs.addCounter("lock_acquisitions", "instrumented shard-lock takes",
                   [this] { return obsTotals().lockAcquisitions; });
    obs.addCounter("lock_contended", "lock takes that had to wait",
                   [this] { return obsTotals().lockContended; });
    obs.addCounter("lock_spin_iters", "TTAS relaxed-test spin iterations",
                   [this] { return obsTotals().lockSpinIters; });
    obs.addCounter("lock_wait_ns", "summed lock-acquisition wait",
                   [this] { return obsTotals().lockWaitNs; });
    obs.addCounter("net_ns", "summed decode->dispatch queue time (server)",
                   [this] { return obsTotals().netNs; });
    obs.addCounter("probe_ns", "summed hash+tag probe time",
                   [this] { return obsTotals().probeNs; });
    obs.addCounter("walk_ns", "summed relocation-walk time",
                   [this] { return obsTotals().walkNs; });
    obs.addCounter("op_ns", "summed whole-op time",
                   [this] { return obsTotals().opNs; });

    // Compressed-payload counters exist only in bytes mode, so the
    // default (fixed-u64) stats dump stays byte-identical.
    if (cfg_.value.bytesMode()) {
        StatGroup& comp = root.group(
            "compression", "compressed byte payloads (docs/compression.md)");
        comp.addConst("codec", "value codec",
                      JsonValue(std::string(
                          codecKindName(cfg_.value.codec))));
        comp.addConst("max_value_bytes", "value length cap",
                      JsonValue(std::uint64_t{cfg_.value.maxBytes}));
        comp.addCounter("compress_calls", "payloads compressed (puts)",
                        [this] {
            return compressionTotals().compressCalls;
        });
        comp.addCounter("decompress_calls", "payloads decoded (get hits)",
                        [this] {
            return compressionTotals().decompressCalls;
        });
        comp.addCounter("raw_bytes_total", "pre-codec bytes, all puts",
                        [this] {
            return compressionTotals().rawBytesTotal;
        });
        comp.addCounter("stored_bytes_total", "post-codec bytes, all puts",
                        [this] {
            return compressionTotals().storedBytesTotal;
        });
        comp.addCounter("resident_raw_bytes", "live entries, pre-codec",
                        [this] {
            return compressionTotals().residentRawBytes;
        });
        comp.addCounter("resident_stored_bytes",
                        "live entries, as stored", [this] {
            return compressionTotals().residentStoredBytes;
        });
        comp.addScalar("ratio", "raw/stored bytes over all puts",
                       [this] { return compressionTotals().ratio(); });
    }

    // Durability tier counters exist only when persistence is on, so
    // the default (in-memory) stats dump stays byte-identical.
    if (persist_ != nullptr) {
        persist_->registerStats(
            root.group("persist", "durability tier (docs/durability.md)"));
    }

    for (std::uint32_t i = 0; i < shards_.size(); i++) {
        StatGroup& sh = root.group("shard" + std::to_string(i));
        registerShardCounters(sh, &shards_[i]->stats, &shards_[i]->seqc);
        registerShardObsCounters(sh.group("obs"), &shards_[i]->obs,
                                 &shards_[i]->seqc);
        shards_[i]->array->registerStats(sh.group("array"));
    }
}

} // namespace zc
