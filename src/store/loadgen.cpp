/**
 * @file
 * Load-generator implementation: deterministic per-thread key streams
 * and op mixes, barrier-released workers, wall-clock aggregation.
 */

#include "store/loadgen.hpp"

#include <atomic>
#include <barrier>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/rng.hpp"
#include "common/stats_registry.hpp"
#include "obs/latency_scale.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "trace/workloads.hpp"

namespace zc {

namespace {

using Clock = std::chrono::steady_clock;

// The log-latency helpers (latencyToUnit / histQuantileNs) moved to
// obs/latency_scale.hpp so the live metrics snapshotter reports
// percentiles on exactly the scale these end-of-run reports use.

JsonValue
threadCountersJson(const ThreadStats& t)
{
    JsonValue o = JsonValue::object();
    o.set("ops", JsonValue(t.ops));
    o.set("gets", JsonValue(t.gets));
    o.set("get_hits", JsonValue(t.getHits));
    o.set("puts", JsonValue(t.puts));
    o.set("put_errors", JsonValue(t.putErrors));
    o.set("get_errors", JsonValue(t.getErrors));
    o.set("erases", JsonValue(t.erases));
    o.set("erase_hits", JsonValue(t.eraseHits));
    o.set("evictions", JsonValue(t.evictions));
    o.set("verify_failures", JsonValue(t.verifyFailures));
    return o;
}

JsonValue
latencyJson(const ThreadStats& t)
{
    JsonValue lat = JsonValue::object();
    lat.set("count", JsonValue(t.latencyNs.count()));
    lat.set("mean_ns", JsonValue(t.latencyNs.mean()));
    lat.set("min_ns", JsonValue(t.latencyNs.min()));
    lat.set("max_ns", JsonValue(t.latencyNs.max()));
    lat.set("stddev_ns", JsonValue(t.latencyNs.stddev()));
    lat.set("p50_ns", JsonValue(histQuantileNs(t.latency, 0.50)));
    lat.set("p95_ns", JsonValue(histQuantileNs(t.latency, 0.95)));
    lat.set("p99_ns", JsonValue(histQuantileNs(t.latency, 0.99)));
    JsonValue counts = JsonValue::array();
    for (std::size_t i = 0; i < t.latency.bins(); i++) {
        counts.push(JsonValue(t.latency.binCount(i)));
    }
    lat.set("hist_counts", std::move(counts));
    return lat;
}

} // namespace

Status
LoadGenConfig::validate() const
{
    if (threads == 0) {
        return Status::invalidArgument("loadgen: threads must be > 0");
    }
    if (opsPerThread == 0) {
        return Status::invalidArgument(
            "loadgen: ops-per-thread must be > 0");
    }
    if (getFrac < 0.0 || eraseFrac < 0.0 || getFrac + eraseFrac > 1.0) {
        return Status::invalidArgument(
            "loadgen: op mix needs getFrac, eraseFrac >= 0 and "
            "getFrac + eraseFrac <= 1");
    }
    if (latencyBins == 0) {
        return Status::invalidArgument(
            "loadgen: latencyBins must be > 0");
    }
    if (openLoopRate < 0.0) {
        return Status::invalidArgument(
            "loadgen: openLoopRate must be >= 0 (0 = closed loop)");
    }
    if (obs.anyEnabled() && obs.metricsIntervalMs == 0) {
        return Status::invalidArgument(
            "loadgen: obs.metricsIntervalMs must be > 0");
    }
    if (obs.anyEnabled() && obs.ringCapacity == 0) {
        return Status::invalidArgument(
            "loadgen: obs.ringCapacity must be > 0");
    }
    if (store.value.bytesMode()) {
        if (valueBytesMin < 4) {
            return Status::invalidArgument(
                "loadgen: valueBytesMin must be >= 4 (the payload's "
                "writer-tid prefix)");
        }
        if (valueBytesMax < valueBytesMin) {
            return Status::invalidArgument(
                "loadgen: valueBytesMax must be >= valueBytesMin");
        }
        if (valueBytesMax > store.value.maxBytes) {
            return Status::invalidArgument(
                "loadgen: valueBytesMax " +
                std::to_string(valueBytesMax) +
                " exceeds store.value.maxBytes " +
                std::to_string(store.value.maxBytes));
        }
    }
    return store.validate();
}

ThreadStats
LoadGenResult::aggregate() const
{
    ThreadStats agg(perThread.empty() ? 64 : perThread[0].latency.bins());
    for (const ThreadStats& t : perThread) {
        agg.ops += t.ops;
        agg.gets += t.gets;
        agg.getHits += t.getHits;
        agg.puts += t.puts;
        agg.putErrors += t.putErrors;
        agg.getErrors += t.getErrors;
        agg.erases += t.erases;
        agg.eraseHits += t.eraseHits;
        agg.evictions += t.evictions;
        agg.verifyFailures += t.verifyFailures;
        agg.seconds = std::max(agg.seconds, t.seconds);
        agg.latency.merge(t.latency);
        agg.latencyNs.merge(t.latencyNs);
    }
    return agg;
}

JsonValue
LoadGenResult::timing() const
{
    ThreadStats agg = aggregate();
    JsonValue o = JsonValue::object();
    o.set("seconds", JsonValue(seconds));
    o.set("ops_total", JsonValue(agg.ops));
    o.set("ops_per_sec", JsonValue(opsPerSec));
    o.set("latency", latencyJson(agg));
    JsonValue per = JsonValue::array();
    for (const ThreadStats& t : perThread) {
        JsonValue rec = JsonValue::object();
        rec.set("seconds", JsonValue(t.seconds));
        rec.set("ops_per_sec",
                JsonValue(t.seconds > 0.0
                              ? static_cast<double>(t.ops) / t.seconds
                              : 0.0));
        rec.set("latency", latencyJson(t));
        per.push(std::move(rec));
    }
    o.set("per_thread", std::move(per));
    return o;
}

Expected<LoadGenResult>
runLoadGen(const LoadGenConfig& cfg)
{
    if (Status s = cfg.validate(); !s.isOk()) return s;

    const WorkloadProfile* profile = WorkloadRegistry::find(cfg.workload);
    if (profile == nullptr) {
        return Status::notFound("loadgen: unknown workload '" +
                                cfg.workload + "'");
    }

    auto store_or = ZkvStore::create(cfg.store);
    if (!store_or) return store_or.status();
    std::unique_ptr<ZkvStore> store = std::move(*store_or);

    // With a data directory configured, replay whatever it holds and
    // start the durability tier before any worker issues traffic.
    if (store->persistEnabled()) {
        auto report_or = store->recover();
        if (!report_or) return report_or.status();
    }

    LoadGenResult result;
    result.perThread.assign(cfg.threads, ThreadStats(cfg.latencyBins));

    // Live telemetry (docs/telemetry.md): the tracer receives one
    // compact record per op from the instrumented store paths; the
    // snapshotter samples store totals plus the per-thread live
    // histogram bins below into windowed NDJSON. Both are absent (and
    // the store keeps its uninstrumented paths) unless cfg.obs asks.
    const bool obs_on = cfg.obs.anyEnabled();
    std::unique_ptr<ObsTracer> tracer;
    if (obs_on) {
        ObsTracerConfig tc;
        tc.path = cfg.obs.tracePath;
        tc.ringCapacity = cfg.obs.ringCapacity;
        tracer = std::make_unique<ObsTracer>(std::move(tc));
        store->enableObs(tracer.get());
    }

    // Per-thread atomic copies of the latency bin counts, updated by
    // workers only when obs is on, so the snapshotter can read windowed
    // percentiles mid-run without racing the plain ThreadStats
    // histograms (which stay single-owner until join).
    const std::size_t bins = cfg.latencyBins;
    std::vector<std::atomic<std::uint64_t>> liveBins(
        obs_on ? static_cast<std::size_t>(cfg.threads) * bins : 0);

    std::unique_ptr<MetricsSnapshotter> snap;
    if (obs_on &&
        (!cfg.obs.metricsPath.empty() || !cfg.obs.promPath.empty())) {
        MetricsSnapshotterConfig mc;
        mc.ndjsonPath = cfg.obs.metricsPath;
        mc.promPath = cfg.obs.promPath;
        mc.intervalMs = cfg.obs.metricsIntervalMs;
        ZkvStore* st = store.get();
        auto* live = liveBins.data();
        const std::size_t nthreads = cfg.threads;
        snap = std::make_unique<MetricsSnapshotter>(
            std::move(mc), [st, live, bins, nthreads] {
                MetricsSample s;
                ZkvShardStats t = st->totals();
                s.counters = {
                    {"ops", t.gets + t.puts + t.erases},
                    {"gets", t.gets},
                    {"get_hits", t.getHits},
                    {"puts", t.puts},
                    {"put_inserts", t.putInserts},
                    {"erases", t.erases},
                    {"evictions", t.evictions},
                    {"walk_candidates", t.walkCandidates},
                    {"relocations", t.relocations},
                };
                ZkvShardObs o = st->obsTotals();
                s.counters.emplace_back("lock_contended",
                                        o.lockContended);
                s.counters.emplace_back("lock_wait_ns", o.lockWaitNs);
                if (st->bytesMode()) {
                    ZkvCompressionStats cp = st->compressionTotals();
                    s.counters.emplace_back("compress_calls",
                                            cp.compressCalls);
                    s.counters.emplace_back("decompress_calls",
                                            cp.decompressCalls);
                    s.counters.emplace_back("raw_bytes_total",
                                            cp.rawBytesTotal);
                    s.counters.emplace_back("stored_bytes_total",
                                            cp.storedBytesTotal);
                    s.counters.emplace_back("resident_raw_bytes",
                                            cp.residentRawBytes);
                    s.counters.emplace_back("resident_stored_bytes",
                                            cp.residentStoredBytes);
                }
                if (st->config().readPath == ReadPath::Optimistic) {
                    s.counters.emplace_back("get_optimistic",
                                            o.getOptimistic);
                    s.counters.emplace_back("get_retried", o.getRetried);
                    s.counters.emplace_back("get_fallback",
                                            o.getFallback);
                }
                if (st->persistEnabled()) {
                    persist::PersistTier* tier = st->persistTier();
                    persist::PersistShardCounters pc;
                    for (std::uint32_t i = 0; i < tier->shardCount();
                         i++) {
                        persist::PersistShardCounters c =
                            tier->counters(i);
                        pc.appended += c.appended;
                        pc.dropped += c.dropped;
                        pc.blocked += c.blocked;
                        pc.fsyncs += c.fsyncs;
                        pc.snapshots += c.snapshots;
                        pc.appendNs += c.appendNs;
                        pc.fsyncNs += c.fsyncNs;
                        pc.snapshotNs += c.snapshotNs;
                        pc.queueDepth += c.queueDepth;
                    }
                    s.counters.emplace_back("persist_appended",
                                            pc.appended);
                    s.counters.emplace_back("persist_dropped",
                                            pc.dropped);
                    s.counters.emplace_back("persist_blocked",
                                            pc.blocked);
                    s.counters.emplace_back("persist_fsyncs",
                                            pc.fsyncs);
                    s.counters.emplace_back("persist_snapshots",
                                            pc.snapshots);
                    s.counters.emplace_back("persist_append_ns",
                                            pc.appendNs);
                    s.counters.emplace_back("persist_fsync_ns",
                                            pc.fsyncNs);
                    s.counters.emplace_back("persist_snapshot_ns",
                                            pc.snapshotNs);
                    s.counters.emplace_back("persist_queue_depth",
                                            pc.queueDepth);
                }
                s.latencyBins.assign(bins, 0);
                for (std::size_t i = 0; i < nthreads * bins; i++) {
                    s.latencyBins[i % bins] +=
                        live[i].load(std::memory_order_relaxed);
                }
                return s;
            });
    }

    // Lazily-built profile tables must exist before workers spawn
    // (same prime() discipline as the sweep runner, docs/runner.md).
    WorkloadRegistry::prime();

    std::barrier sync(static_cast<std::ptrdiff_t>(cfg.threads) + 1);
    std::vector<std::thread> workers;
    workers.reserve(cfg.threads);
    for (std::uint32_t tid = 0; tid < cfg.threads; tid++) {
        workers.emplace_back([&, tid] {
            ThreadStats& ts = result.perThread[tid];
            GeneratorPtr gen = WorkloadRegistry::makeCoreGenerator(
                *profile, tid, cfg.threads, cfg.seed);
            // Bytes mode: per-thread payload buffers, reused per op.
            const bool bytes_mode = store->bytesMode();
            std::vector<std::uint8_t> payload;
            std::vector<std::uint8_t> scratch;
            // Op-mix stream independent of the key stream.
            Pcg32 mix(zkvMix64(cfg.seed + tid),
                      /*stream=*/0x6b76ULL + tid);
            if (tracer) {
                // Pre-register with a stable name so trace tids are
                // worker indices, and ops land in this thread's ring.
                tracer->registerThread("worker-" + std::to_string(tid));
            }
            std::atomic<std::uint64_t>* myBins =
                obs_on ? liveBins.data() +
                             static_cast<std::size_t>(tid) * bins
                       : nullptr;

            // Open-loop pacing (net/openloop.hpp, docs/server.md):
            // arrivals are scheduled up front from the target rate and
            // each op's latency is measured from its INTENDED arrival,
            // so a stalled store accrues queueing delay in the
            // histogram instead of silently pacing the generator
            // (coordinated omission).
            std::unique_ptr<ArrivalSchedule> sched;
            if (cfg.openLoopRate > 0.0) {
                sched = std::make_unique<ArrivalSchedule>(
                    cfg.arrivals,
                    cfg.openLoopRate /
                        static_cast<double>(cfg.threads),
                    zkvMix64(cfg.seed ^ 0x6f6cULL) + tid);
            }

            sync.arrive_and_wait();
            auto t0 = Clock::now();
            for (std::uint64_t i = 0; i < cfg.opsPerThread; i++) {
                std::uint64_t key = gen->next().lineAddr;
                double u = mix.uniform();
                auto op0 = Clock::now();
                if (sched) {
                    auto target =
                        t0 + std::chrono::nanoseconds(
                                 sched->nextOffsetNs());
                    if (op0 < target) {
                        std::this_thread::sleep_until(target);
                    }
                    op0 = target; // latency from the intended arrival
                }
                if (u < cfg.getFrac) {
                    ts.gets++;
                    if (bytes_mode) {
                        auto v_or = store->getBytes(key);
                        if (!v_or) {
                            ts.getErrors++;
                        } else if (*v_or) {
                            ts.getHits++;
                            if (!zkvVerifyPayload(key, cfg.threads,
                                                  cfg.valueBytesMin,
                                                  cfg.valueBytesMax,
                                                  **v_or, scratch)) {
                                ts.verifyFailures++;
                            }
                        }
                    } else if (auto v = store->get(key)) {
                        ts.getHits++;
                        // Decode the writer thread from the payload.
                        if (*v - zkvMix64(key) >= cfg.threads) {
                            ts.verifyFailures++;
                        }
                    }
                } else if (u < cfg.getFrac + cfg.eraseFrac) {
                    ts.erases++;
                    if (store->erase(key)) ts.eraseHits++;
                } else {
                    ts.puts++;
                    Expected<PutResult> pr = [&] {
                        if (!bytes_mode) {
                            return store->put(key, zkvMix64(key) + tid);
                        }
                        zkvFillPayload(key, tid,
                                       zkvPayloadLen(key,
                                                     cfg.valueBytesMin,
                                                     cfg.valueBytesMax),
                                       payload);
                        return store->putBytes(key, payload);
                    }();
                    if (!pr) {
                        ts.putErrors++;
                    } else if (pr->evicted) {
                        ts.evictions++;
                    }
                }
                auto op1 = Clock::now();
                ts.ops++;
                auto ns = static_cast<double>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        op1 - op0)
                        .count());
                ts.latencyNs.record(ns);
                ts.latency.record(latencyToUnit(ns));
                if (myBins != nullptr) {
                    myBins[latencyBinIndex(ns, bins)].fetch_add(
                        1, std::memory_order_relaxed);
                }
            }
            ts.seconds =
                std::chrono::duration<double>(Clock::now() - t0).count();
        });
    }

    if (snap) snap->start();
    sync.arrive_and_wait();
    auto t0 = Clock::now();
    for (std::thread& w : workers) w.join();
    result.seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    double total_ops = static_cast<double>(cfg.threads) *
                       static_cast<double>(cfg.opsPerThread);
    result.opsPerSec =
        result.seconds > 0.0 ? total_ops / result.seconds : 0.0;

    // Telemetry teardown order matters: workers are joined (quiesced),
    // so (1) the snapshotter's final window captures the end-of-run
    // totals, (2) the store detaches from the tracer, (3) finish()
    // drains every ring and closes the trace with the exact
    // recorded/dropped accounting against the known op total.
    if (snap) {
        Status s = snap->stop();
        result.obsWindows = snap->windowsEmitted();
        if (!s.isOk()) return s;
    }
    if (tracer) {
        store->disableObs();
        auto sum_or =
            tracer->finish(static_cast<std::uint64_t>(total_ops));
        if (!sum_or) return sum_or.status();
        result.obsRecorded = sum_or->recorded;
        result.obsDropped = sum_or->dropped;
        result.obsThreads = sum_or->threads;
    }

    // Quiesce the durability tier before the stats dump so the
    // persist counters are final, and surface any sticky writer error
    // as a run failure instead of a silent counter.
    if (store->persistEnabled()) {
        if (Status s = store->stopPersist(); !s.isOk()) return s;
    }

    // End-of-run codec accounting (bytes mode): workers are joined, so
    // the totals are final and deterministic for a 1-thread run.
    if (store->bytesMode()) {
        result.compression = store->compressionTotals();
        result.residentKeys = store->size();
    }

    // Deterministic block: the store's stats tree plus per-thread
    // operation counters (workers are joined — the dump is quiesced).
    StatsRegistry reg;
    store->registerStats(reg.root());
    JsonValue det = reg.toJson();
    JsonValue workers_json = JsonValue::array();
    for (const ThreadStats& t : result.perThread) {
        workers_json.push(threadCountersJson(t));
    }
    det.set("workers", std::move(workers_json));
    result.storeStats = std::move(det);
    return result;
}

} // namespace zc
