/**
 * @file
 * Load-generator implementation: deterministic per-thread key streams
 * and op mixes, barrier-released workers, wall-clock aggregation.
 */

#include "store/loadgen.hpp"

#include <barrier>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/rng.hpp"
#include "common/stats_registry.hpp"
#include "trace/workloads.hpp"

namespace zc {

namespace {

using Clock = std::chrono::steady_clock;

/** Map an op latency to the [0,1] histogram domain: log2(1+ns)/32. */
double
latencyToUnit(double ns)
{
    return std::log2(1.0 + ns) / 32.0;
}

/** Invert latencyToUnit for approximate quantile reporting. */
double
unitToLatencyNs(double u)
{
    return std::exp2(32.0 * u) - 1.0;
}

/** Approximate quantile from histogram bins (right-edge inversion). */
double
histQuantileNs(const UnitHistogram& h, double q)
{
    if (h.samples() == 0) return 0.0;
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(h.samples()));
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < h.bins(); i++) {
        acc += h.binCount(i);
        if (acc > target) {
            double edge = (static_cast<double>(i) + 1.0) /
                          static_cast<double>(h.bins());
            return unitToLatencyNs(edge);
        }
    }
    return unitToLatencyNs(1.0);
}

JsonValue
threadCountersJson(const ThreadStats& t)
{
    JsonValue o = JsonValue::object();
    o.set("ops", JsonValue(t.ops));
    o.set("gets", JsonValue(t.gets));
    o.set("get_hits", JsonValue(t.getHits));
    o.set("puts", JsonValue(t.puts));
    o.set("put_errors", JsonValue(t.putErrors));
    o.set("erases", JsonValue(t.erases));
    o.set("erase_hits", JsonValue(t.eraseHits));
    o.set("evictions", JsonValue(t.evictions));
    o.set("verify_failures", JsonValue(t.verifyFailures));
    return o;
}

JsonValue
latencyJson(const ThreadStats& t)
{
    JsonValue lat = JsonValue::object();
    lat.set("count", JsonValue(t.latencyNs.count()));
    lat.set("mean_ns", JsonValue(t.latencyNs.mean()));
    lat.set("min_ns", JsonValue(t.latencyNs.min()));
    lat.set("max_ns", JsonValue(t.latencyNs.max()));
    lat.set("stddev_ns", JsonValue(t.latencyNs.stddev()));
    lat.set("p50_ns", JsonValue(histQuantileNs(t.latency, 0.50)));
    lat.set("p95_ns", JsonValue(histQuantileNs(t.latency, 0.95)));
    lat.set("p99_ns", JsonValue(histQuantileNs(t.latency, 0.99)));
    JsonValue counts = JsonValue::array();
    for (std::size_t i = 0; i < t.latency.bins(); i++) {
        counts.push(JsonValue(t.latency.binCount(i)));
    }
    lat.set("hist_counts", std::move(counts));
    return lat;
}

} // namespace

Status
LoadGenConfig::validate() const
{
    if (threads == 0) {
        return Status::invalidArgument("loadgen: threads must be > 0");
    }
    if (opsPerThread == 0) {
        return Status::invalidArgument(
            "loadgen: ops-per-thread must be > 0");
    }
    if (getFrac < 0.0 || eraseFrac < 0.0 || getFrac + eraseFrac > 1.0) {
        return Status::invalidArgument(
            "loadgen: op mix needs getFrac, eraseFrac >= 0 and "
            "getFrac + eraseFrac <= 1");
    }
    if (latencyBins == 0) {
        return Status::invalidArgument(
            "loadgen: latencyBins must be > 0");
    }
    return store.validate();
}

ThreadStats
LoadGenResult::aggregate() const
{
    ThreadStats agg;
    if (!perThread.empty()) {
        agg.latency = UnitHistogram(perThread[0].latency.bins());
    }
    for (const ThreadStats& t : perThread) {
        agg.ops += t.ops;
        agg.gets += t.gets;
        agg.getHits += t.getHits;
        agg.puts += t.puts;
        agg.putErrors += t.putErrors;
        agg.erases += t.erases;
        agg.eraseHits += t.eraseHits;
        agg.evictions += t.evictions;
        agg.verifyFailures += t.verifyFailures;
        agg.seconds = std::max(agg.seconds, t.seconds);
        agg.latency.merge(t.latency);
        agg.latencyNs.merge(t.latencyNs);
    }
    return agg;
}

JsonValue
LoadGenResult::timing() const
{
    ThreadStats agg = aggregate();
    JsonValue o = JsonValue::object();
    o.set("seconds", JsonValue(seconds));
    o.set("ops_total", JsonValue(agg.ops));
    o.set("ops_per_sec", JsonValue(opsPerSec));
    o.set("latency", latencyJson(agg));
    JsonValue per = JsonValue::array();
    for (const ThreadStats& t : perThread) {
        JsonValue rec = JsonValue::object();
        rec.set("seconds", JsonValue(t.seconds));
        rec.set("ops_per_sec",
                JsonValue(t.seconds > 0.0
                              ? static_cast<double>(t.ops) / t.seconds
                              : 0.0));
        rec.set("latency", latencyJson(t));
        per.push(std::move(rec));
    }
    o.set("per_thread", std::move(per));
    return o;
}

Expected<LoadGenResult>
runLoadGen(const LoadGenConfig& cfg)
{
    if (Status s = cfg.validate(); !s.isOk()) return s;

    const WorkloadProfile* profile = WorkloadRegistry::find(cfg.workload);
    if (profile == nullptr) {
        return Status::notFound("loadgen: unknown workload '" +
                                cfg.workload + "'");
    }

    auto store_or = ZkvStore::create(cfg.store);
    if (!store_or) return store_or.status();
    std::unique_ptr<ZkvStore> store = std::move(*store_or);

    LoadGenResult result;
    result.perThread.resize(cfg.threads);
    for (ThreadStats& t : result.perThread) {
        t.latency = UnitHistogram(cfg.latencyBins);
    }

    // Lazily-built profile tables must exist before workers spawn
    // (same prime() discipline as the sweep runner, docs/runner.md).
    WorkloadRegistry::prime();

    std::barrier sync(static_cast<std::ptrdiff_t>(cfg.threads) + 1);
    std::vector<std::thread> workers;
    workers.reserve(cfg.threads);
    for (std::uint32_t tid = 0; tid < cfg.threads; tid++) {
        workers.emplace_back([&, tid] {
            ThreadStats& ts = result.perThread[tid];
            GeneratorPtr gen = WorkloadRegistry::makeCoreGenerator(
                *profile, tid, cfg.threads, cfg.seed);
            // Op-mix stream independent of the key stream.
            Pcg32 mix(zkvMix64(cfg.seed + tid),
                      /*stream=*/0x6b76ULL + tid);

            sync.arrive_and_wait();
            auto t0 = Clock::now();
            for (std::uint64_t i = 0; i < cfg.opsPerThread; i++) {
                std::uint64_t key = gen->next().lineAddr;
                double u = mix.uniform();
                auto op0 = Clock::now();
                if (u < cfg.getFrac) {
                    ts.gets++;
                    if (auto v = store->get(key)) {
                        ts.getHits++;
                        // Decode the writer thread from the payload.
                        if (*v - zkvMix64(key) >= cfg.threads) {
                            ts.verifyFailures++;
                        }
                    }
                } else if (u < cfg.getFrac + cfg.eraseFrac) {
                    ts.erases++;
                    if (store->erase(key)) ts.eraseHits++;
                } else {
                    ts.puts++;
                    auto pr = store->put(key, zkvMix64(key) + tid);
                    if (!pr) {
                        ts.putErrors++;
                    } else if (pr->evicted) {
                        ts.evictions++;
                    }
                }
                auto op1 = Clock::now();
                ts.ops++;
                auto ns = static_cast<double>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        op1 - op0)
                        .count());
                ts.latencyNs.record(ns);
                ts.latency.record(latencyToUnit(ns));
            }
            ts.seconds =
                std::chrono::duration<double>(Clock::now() - t0).count();
        });
    }

    sync.arrive_and_wait();
    auto t0 = Clock::now();
    for (std::thread& w : workers) w.join();
    result.seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    double total_ops = static_cast<double>(cfg.threads) *
                       static_cast<double>(cfg.opsPerThread);
    result.opsPerSec =
        result.seconds > 0.0 ? total_ops / result.seconds : 0.0;

    // Deterministic block: the store's stats tree plus per-thread
    // operation counters (workers are joined — the dump is quiesced).
    StatsRegistry reg;
    store->registerStats(reg.root());
    JsonValue det = reg.toJson();
    JsonValue workers_json = JsonValue::array();
    for (const ThreadStats& t : result.perThread) {
        workers_json.push(threadCountersJson(t));
    }
    det.set("workers", std::move(workers_json));
    result.storeStats = std::move(det);
    return result;
}

} // namespace zc
