/**
 * @file
 * zkv: a concurrent, sharded in-memory key-value cache backed by the
 * zcache array design.
 *
 * The paper argues that a zcache delivers high associativity with few
 * ways and serial-latency lookups — properties that matter most in a
 * real concurrent store, not just a trace simulator. zkv is that
 * store: N independent shards (bank-per-shard), each a lock-guarded
 * CacheArray built through the existing factory (ZCache by default;
 * set-associative or skew-associative shards as comparison baselines),
 * holding key->value payloads and evicting via the zcache relocation
 * walk. The array/policy split is reused untouched: a shard interposes
 * a *value-mirroring* decorator policy (defined in zkv.cpp) around the
 * configured replacement policy, so payloads travel with blocks through
 * walk relocations exactly as replacement metadata does — the walk
 * logic itself is the simulator's, byte for byte.
 *
 * Concurrency model (docs/store.md): shard-level mutual exclusion, no
 * shared mutable state across shards. Keys are distributed over shards
 * with a splitmix64 mix of the key, independent of the in-shard H3
 * hashing, so shard selection does not correlate with way indexing.
 * Each shard's array seed is derived from the store seed and the shard
 * index (ZkvConfig::shardSpec), making a shard's eviction sequence a
 * pure function of the key sequence it receives — the property the
 * determinism and walk-victim tests in tests/test_store.cpp pin down.
 *
 * Error model: structured Status/Expected (docs/robustness.md), with
 * fault-injection sites store.alloc (shard construction) and
 * store.walk (relocation-walk insert path).
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include <span>

#include "cache/array_factory.hpp"
#include "common/status.hpp"
#include "common/stats_registry.hpp"
#include "common/types.hpp"
#include "compress/codec.hpp"
#include "obs/trace_event.hpp"
#include "persist/persist.hpp"

namespace zc {

class ObsTracer;

/** splitmix64 finalizer (Steele et al.) used for shard selection. */
inline std::uint64_t
zkvMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** How a shard serializes its operations. */
enum class ShardLockKind {
    Mutex, ///< std::mutex — friendly under oversubscription
    Spin,  ///< test-and-set spinlock — lowest latency at low contention
};

inline const char*
shardLockKindName(ShardLockKind k)
{
    return k == ShardLockKind::Mutex ? "mutex" : "spin";
}

/**
 * How get() reads a shard (docs/store.md, "Read path").
 *
 * Locked is the original semantics: every get takes the shard lock and
 * promotes the hit in the replacement policy (an LRU-style touch), so
 * the shard's eviction sequence is a function of gets *and* puts.
 *
 * Optimistic makes the common-case get lock-free via a per-shard
 * seqlock (ShardSeq below): the reader probes the W candidate
 * positions without the lock and retries only if a writer overlapped.
 * Lock-free reads cannot touch the (non-atomic) policy, so optimistic
 * gets — including their locked fallback — never promote recency:
 * eviction order becomes a pure function of the put/erase sequence.
 * That is a semantic switch, not just a performance one, which is why
 * it is opt-in and Locked stays the default.
 */
enum class ReadPath {
    Locked,     ///< every get under the shard lock, hits promote
    Optimistic, ///< seqlock-validated lock-free gets, no promotion
};

inline const char*
readPathName(ReadPath p)
{
    return p == ReadPath::Locked ? "locked" : "optimistic";
}

/**
 * Hard cap on a bytes-mode value. Aligned with the net protocol's
 * 256-byte frame-body budget: 256 minus the 12-byte header, 8-byte
 * key, 2-byte length prefix and 4-byte optional CRC leaves at least
 * this much for the payload (src/net/protocol.hpp pins the arithmetic
 * with static_asserts), so any storable value is also shippable.
 */
inline constexpr std::uint32_t kZkvMaxValueBytes = 224;

/**
 * Value representation (docs/compression.md). Default is the original
 * fixed-u64 mode: put/get carry one machine word and every compressed
 * path below is compiled out of the hot loops by one branch.
 *
 * Setting maxBytes > 0 switches the store to variable-length byte
 * payloads: putBytes/getBytes replace put/get, each value is run
 * through `codec` on the way in and back out on the way out, and the
 * per-shard mirror accounts resident raw vs stored bytes so the
 * realized compression ratio is a first-class stat. Bytes mode is
 * incompatible with ReadPath::Optimistic (payloads are not atomic
 * words, so the seqlock read path cannot snapshot them) and with the
 * durability tier (the op log records u64 values); validate() rejects
 * both combinations up front.
 */
struct ZkvValueConfig
{
    /** Maximum value length in bytes; 0 = fixed u64 values. */
    std::uint32_t maxBytes = 0;

    /** Codec applied to stored payloads (bytes mode only). */
    CodecKind codec = CodecKind::None;

    bool bytesMode() const { return maxBytes != 0; }
};

/** Store-wide configuration. */
struct ZkvConfig
{
    /** Independent shards (banks); keys are split across them. */
    std::uint32_t shards = 4;

    /**
     * Per-shard array shape: kind (ZCache / SetAssoc / SkewAssoc / ...),
     * blocks = per-shard capacity, ways/levels, policy, hash. The seed
     * field is a base — each shard derives its own via shardSpec().
     */
    ArraySpec array;

    ShardLockKind lock = ShardLockKind::Mutex;

    /**
     * Get-path mode. Optimistic requires an array kind that supports
     * candidate-position enumeration (CacheArray::lookupWays — zcache,
     * skew-associative and set-associative shards do); create() rejects
     * the combination otherwise. See ReadPath for the semantic change.
     */
    ReadPath readPath = ReadPath::Locked;

    /**
     * Durability tier (docs/durability.md). Disabled by default
     * (empty data directory): the store is then a pure cache with
     * zero persistence overhead on the op paths. When enabled,
     * create() opens the tier and recover() must run before traffic.
     */
    persist::PersistConfig persist;

    /** Value representation: fixed u64 (default) or compressed byte
     *  payloads. See ZkvValueConfig for the mode rules. */
    ZkvValueConfig value;

    /**
     * The per-shard ArraySpec: identical to `array` except for a
     * splitmix64-derived seed unique to @p shard. Public so tests can
     * build a bare reference array with the exact seed a shard uses
     * (the eviction-matches-walk-victim test in tests/test_store.cpp).
     */
    ArraySpec
    shardSpec(std::uint32_t shard) const
    {
        ArraySpec s = array;
        s.seed = zkvMix64(array.seed + 0x736864ULL * (shard + 1));
        return s;
    }

    /** Field-level validation; create() runs this first. */
    Status
    validate() const
    {
        if (shards == 0) {
            return Status::invalidArgument("zkv: shards must be > 0");
        }
        if (array.kind == ArrayKind::CompressedZ ||
            array.kind == ArrayKind::CompressedSetAssoc) {
            // The byte-budget makeSpace loop can evict several victims
            // per insert, which the put contract (at most one evicted
            // key per PutResult) and the durability log's evict-then-
            // put replay order cannot represent. Compressed *values*
            // are the store-side story: set value.codec instead.
            return Status::invalidArgument(
                "zkv: compressed array kinds are simulator-only (a "
                "byte-budget insert can evict several keys); use "
                "value.maxBytes/value.codec for compressed payloads");
        }
        if (value.bytesMode()) {
            if (value.maxBytes > kZkvMaxValueBytes) {
                return Status::invalidArgument(
                    "zkv: value.maxBytes (" +
                    std::to_string(value.maxBytes) + ") exceeds the " +
                    std::to_string(kZkvMaxValueBytes) +
                    "-byte protocol cap (kZkvMaxValueBytes)");
            }
            if (readPath == ReadPath::Optimistic) {
                return Status::unsupported(
                    "zkv: byte-payload values are incompatible with the "
                    "optimistic read path (payloads are not atomic "
                    "words; the seqlock reader cannot snapshot them)");
            }
            if (persist.enabled()) {
                return Status::unsupported(
                    "zkv: byte-payload values are incompatible with the "
                    "durability tier (the op log records u64 values)");
            }
        }
        if (Status s = persist.validate(); !s.isOk()) return s;
        return validateSpec(array);
    }
};

/** Outcome of a put(). */
struct PutResult
{
    /** False when an existing key's value was updated in place. */
    bool inserted = false;

    /** True when installing the key evicted another resident key. */
    bool evicted = false;
    std::uint64_t evictedKey = 0;
    std::uint64_t evictedValue = 0;

    /** Walk cost of the insert (R and m of Section III-B); 0 on update. */
    std::uint32_t candidates = 0;
    std::uint32_t relocations = 0;
};

/**
 * One operation in a shard batch (the server's dispatch unit,
 * docs/server.md). The network layer groups decoded requests by
 * shardOf(key) and hands each shard's group to runShardBatch, which
 * executes all of them under ONE lock acquisition — the point of
 * batched dispatch: lock traffic amortizes over the batch.
 */
struct StoreBatchOp
{
    ObsOp kind = ObsOp::Get;
    std::uint64_t key = 0;
    std::uint64_t value = 0; ///< puts only (fixed-u64 stores)

    /** Put payload on a bytes-mode store; `value` is ignored there. */
    std::vector<std::uint8_t> valueBytes;

    /**
     * When observability is enabled, the timestamp (obsNowNs) the
     * request finished frame-decode; the traced batch path attributes
     * decode->dispatch time to the `net` phase. 0 = not timed.
     */
    std::uint64_t enqueueNs = 0;
};

/** Outcome of one batched operation; `code` != Ok carries no payload. */
struct StoreBatchResult
{
    ErrorCode code = ErrorCode::Ok;
    bool hit = false;      ///< get/erase found the key
    bool inserted = false; ///< put installed a new key
    bool evicted = false;

    std::uint64_t value = 0; ///< get result (valid iff hit)

    /** Get result on a bytes-mode store (valid iff hit); decompressed
     *  before the batch returns, so a decode failure surfaces as
     *  code = Corruption with the payload cleared, never torn bytes. */
    std::vector<std::uint8_t> valueBytes;

    std::uint64_t evictedKey = 0;
    std::uint64_t evictedValue = 0;
    std::uint32_t candidates = 0;
    std::uint32_t relocations = 0;
};

/**
 * Compressed-payload counters (bytes mode only; all zeros otherwise).
 * The *Total pairs accumulate over every put, the resident pairs track
 * live entries, so realized compression ratio is available both as a
 * workload property (totals) and an occupancy property (resident).
 */
struct ZkvCompressionStats
{
    std::uint64_t compressCalls = 0;
    std::uint64_t decompressCalls = 0;
    std::uint64_t rawBytesTotal = 0;      ///< pre-codec bytes, all puts
    std::uint64_t storedBytesTotal = 0;   ///< post-codec bytes, all puts
    std::uint64_t residentRawBytes = 0;   ///< live entries, pre-codec
    std::uint64_t residentStoredBytes = 0; ///< live entries, as stored

    /** Raw/stored over all puts; 1.0 before any traffic. */
    double
    ratio() const
    {
        return storedBytesTotal != 0
                   ? static_cast<double>(rawBytesTotal) /
                         static_cast<double>(storedBytesTotal)
                   : 1.0;
    }

    void
    add(const ZkvCompressionStats& o)
    {
        compressCalls += o.compressCalls;
        decompressCalls += o.decompressCalls;
        rawBytesTotal += o.rawBytesTotal;
        storedBytesTotal += o.storedBytesTotal;
        residentRawBytes += o.residentRawBytes;
        residentStoredBytes += o.residentStoredBytes;
    }
};

/** Per-shard operation counters (also used for store-wide totals). */
struct ZkvShardStats
{
    std::uint64_t gets = 0;
    std::uint64_t getHits = 0;
    std::uint64_t puts = 0;
    std::uint64_t putInserts = 0;
    std::uint64_t putUpdates = 0;
    std::uint64_t erases = 0;
    std::uint64_t eraseHits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t walkCandidates = 0;
    std::uint64_t relocations = 0;

    void
    add(const ZkvShardStats& o)
    {
        gets += o.gets;
        getHits += o.getHits;
        puts += o.puts;
        putInserts += o.putInserts;
        putUpdates += o.putUpdates;
        erases += o.erases;
        eraseHits += o.eraseHits;
        evictions += o.evictions;
        walkCandidates += o.walkCandidates;
        relocations += o.relocations;
    }
};

/**
 * Per-shard latency attribution and lock-contention counters
 * (docs/telemetry.md). Written only on the instrumented op paths —
 * all zeros while observability is disabled (the default), which
 * keeps stats dumps deterministic; with obs enabled the *_ns fields
 * are wall-clock and belong in the nondeterministic class.
 */
struct ZkvShardObs
{
    std::uint64_t lockAcquisitions = 0; ///< instrumented lock takes
    std::uint64_t lockContended = 0;    ///< takes that had to wait
    std::uint64_t lockSpinIters = 0;    ///< TTAS relaxed-test spins
    std::uint64_t lockWaitNs = 0;       ///< summed acquisition wait
    std::uint64_t netNs = 0;            ///< summed decode->dispatch queue
    std::uint64_t probeNs = 0;          ///< summed hash+tag probe time
    std::uint64_t walkNs = 0;           ///< summed relocation-walk time
    std::uint64_t opNs = 0;             ///< summed whole-op time

    /**
     * Seqlock read-path counters (ReadPath::Optimistic only; all zeros
     * under ReadPath::Locked). Unlike the *_ns fields these are
     * maintained whether or not observability is enabled — they cost
     * one relaxed per-shard fetch_add per get and the scaling study
     * needs them without the tracer. Single-threaded they are exactly
     * deterministic (every optimistic read validates on the first try),
     * so default stats dumps stay byte-stable.
     */
    std::uint64_t getOptimistic = 0; ///< gets answered without the lock
    std::uint64_t getRetried = 0;    ///< seq-validation retry attempts
    std::uint64_t getFallback = 0;   ///< gets that fell back to the lock

    void
    add(const ZkvShardObs& o)
    {
        lockAcquisitions += o.lockAcquisitions;
        lockContended += o.lockContended;
        lockSpinIters += o.lockSpinIters;
        lockWaitNs += o.lockWaitNs;
        netNs += o.netNs;
        probeNs += o.probeNs;
        walkNs += o.walkNs;
        opNs += o.opNs;
        getOptimistic += o.getOptimistic;
        getRetried += o.getRetried;
        getFallback += o.getFallback;
    }
};

/**
 * Mutex-or-spinlock guard with a single type, so shards need no
 * template parameter. Spin mode uses test-and-set with a relaxed
 * test loop (TTAS) — adequate for short shard critical sections.
 */
class ShardLock
{
  public:
    explicit ShardLock(ShardLockKind kind) : kind_(kind) {}

    void
    lock()
    {
        if (kind_ == ShardLockKind::Mutex) {
            mx_.lock();
            return;
        }
        while (flag_.test_and_set(std::memory_order_acquire)) {
            while (flag_.test(std::memory_order_relaxed)) {
            }
        }
    }

    /** What an instrumented acquisition observed. */
    struct Acquire
    {
        bool contended = false;   ///< the uncontended fast path failed
        std::uint32_t spins = 0;  ///< TTAS relaxed-test iterations
    };

    /**
     * lock() that reports whether it had to wait. The traced op paths
     * use this; plain lock() stays the zero-overhead default.
     */
    Acquire
    lockInstrumented()
    {
        if (kind_ == ShardLockKind::Mutex) {
            if (mx_.try_lock()) return {};
            mx_.lock();
            return {true, 0};
        }
        if (!flag_.test_and_set(std::memory_order_acquire)) return {};
        Acquire a{true, 0};
        do {
            while (flag_.test(std::memory_order_relaxed)) a.spins++;
        } while (flag_.test_and_set(std::memory_order_acquire));
        return a;
    }

    void
    unlock()
    {
        if (kind_ == ShardLockKind::Mutex) {
            mx_.unlock();
            return;
        }
        flag_.clear(std::memory_order_release);
    }

  private:
    ShardLockKind kind_;
    std::mutex mx_;
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/**
 * Per-shard seqlock version word (docs/store.md, "Read path").
 *
 * Writers — put/erase and the relocation walk, which stay serialized
 * under the shard's ShardLock — bump the word to odd before any
 * mutation that can move or change an entry and back to even after.
 * Readers snapshot the word, probe without the lock, and accept the
 * result only if the word was even and unchanged across the probe.
 *
 * Memory-order argument (Boehm, "Can seqlocks get along with
 * programming language memory models?", MSPC 2012): the writer's
 * release *fence* after the odd store pairs with the reader's acquire
 * *fence* before the confirming load. If a reader observes any data
 * store from the write section, the fence-to-fence synchronization
 * rule ([atomics.fences]) forces its confirming seq load to observe
 * the odd value, so the read is discarded. Data accesses themselves
 * are relaxed atomics (the ValueMirror's key/value mirrors), which is
 * what keeps the protocol TSan-clean and free of C++ data-race UB.
 * Writers are already mutually excluded by the ShardLock, so the seq
 * updates are plain stores, not RMWs.
 */
class ShardSeq
{
  public:
    /** Writer: enter the odd (write-in-progress) state. Caller must
     *  hold the shard lock. */
    void
    beginWrite()
    {
        seq_.store(seq_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
    }

    /** Writer: back to even; releases the data stores to validators. */
    void
    endWrite()
    {
        seq_.store(seq_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
    }

    /**
     * Reader: snapshot the version. An odd result means a writer is in
     * its critical section — don't bother probing, retry.
     */
    std::uint64_t
    readBegin() const
    {
        return seq_.load(std::memory_order_acquire);
    }

    /** Reader: true iff no writer overlapped since readBegin(). */
    bool
    readValidate(std::uint64_t begin) const
    {
        std::atomic_thread_fence(std::memory_order_acquire);
        return seq_.load(std::memory_order_relaxed) == begin;
    }

  private:
    std::atomic<std::uint64_t> seq_{0};
};

/**
 * Per-shard counters for the lock-free read path, updated with relaxed
 * fetch_adds by readers that by design hold no lock (the shard's plain
 * ZkvShardStats would be a data race). Cache-line aligned so reader
 * counter traffic never false-shares with the shard lock or seq word.
 * Snapshots fold these into ZkvShardStats/ZkvShardObs (shardStats /
 * shardObs), so consumers see one coherent counter set.
 */
struct alignas(64) ZkvSeqCounters
{
    std::atomic<std::uint64_t> gets{0};       ///< lock-free gets issued
    std::atomic<std::uint64_t> getHits{0};    ///< ...that found the key
    std::atomic<std::uint64_t> optimistic{0}; ///< answered without lock
    std::atomic<std::uint64_t> retried{0};    ///< validation retries
    std::atomic<std::uint64_t> fallback{0};   ///< fell back to the lock
};

/**
 * The store. Operations are linearizable per key (each key lives in
 * exactly one shard and every shard operation runs under that shard's
 * lock). Construction is via create() so an impossible configuration
 * or an injected allocation fault surfaces as a structured Status.
 */
class ZkvStore
{
  public:
    static Expected<std::unique_ptr<ZkvStore>> create(const ZkvConfig& cfg);

    ~ZkvStore();

    ZkvStore(const ZkvStore&) = delete;
    ZkvStore& operator=(const ZkvStore&) = delete;

    /** Value for @p key, or nullopt on miss. Hits touch the policy.
     *  Fixed-u64 stores only — bytes-mode callers use getBytes(). */
    std::optional<std::uint64_t> get(std::uint64_t key);

    /**
     * Insert or update @p key. Inserting into a full shard evicts the
     * relocation walk's victim (reported in PutResult). Fails with
     * InvalidArgument for the reserved key, on a bytes-mode store
     * (use putBytes), and ResourceExhausted when the store.walk fault
     * site fires.
     */
    Expected<PutResult> put(std::uint64_t key, std::uint64_t value);

    /** Remove @p key; true iff it was resident. */
    bool erase(std::uint64_t key);

    // ---- byte-payload values (value.maxBytes > 0) ------------------

    /** True when the store holds variable-length byte payloads. */
    bool bytesMode() const { return cfg_.value.bytesMode(); }

    /**
     * Bytes-mode put: compress @p value with the configured codec and
     * insert/update exactly like put(). Fails with InvalidArgument on
     * a fixed-u64 store, for the reserved key, and when the payload
     * exceeds value.maxBytes. In bytes mode an eviction reports only
     * the evicted key — the payload is dropped, not decompressed.
     */
    Expected<PutResult> putBytes(std::uint64_t key,
                                 std::span<const std::uint8_t> value);

    /**
     * Bytes-mode get: nullopt on miss, the decompressed payload on a
     * hit. A decode failure (a corrupt stored stream, or the
     * compress.codec fault site) returns Corruption — never a torn or
     * partial value. Fails with InvalidArgument on a fixed-u64 store.
     * Hits touch the policy, exactly like get().
     */
    Expected<std::optional<std::vector<std::uint8_t>>>
    getBytes(std::uint64_t key);

    /** Store-wide compressed-payload counters (zeros outside bytes
     *  mode); locks each shard in turn like totals(). */
    ZkvCompressionStats compressionTotals() const;

    /**
     * Execute @p ops — all of which must map to @p shard (the caller
     * groups by shardOf) — in order, under a single acquisition of the
     * shard's lock, writing ops[i]'s outcome to out[i]. Semantically
     * identical to issuing the ops one by one (same stats, same fault
     * sites, same walk decisions: the per-shard eviction sequence is a
     * pure function of the key order either way); per-op failures
     * (reserved key -> InvalidArgument, store.walk fault ->
     * ResourceExhausted) land in out[i].code and never abort the rest
     * of the batch. With observability enabled, each op still emits
     * its own ObsOpRecord; lock wait is attributed to the batch's
     * first record and decode->dispatch queueing to the `net` phase.
     */
    void runShardBatch(std::uint32_t shard,
                       std::span<const StoreBatchOp> ops,
                       StoreBatchResult* out);

    std::uint32_t numShards() const;

    /** Shard index for @p key (splitmix64 over key and store seed). */
    std::uint32_t shardOf(std::uint64_t key) const;

    /** Resident keys across all shards (locks each shard in turn). */
    std::uint64_t size() const;

    /** Snapshot of one shard's counters (locks that shard). */
    ZkvShardStats shardStats(std::uint32_t shard) const;

    /** Sum of all shards' counters. */
    ZkvShardStats totals() const;

    /**
     * Switch the op paths onto their instrumented twins: latency
     * attribution (lock-wait / probe / walk split) and lock-contention
     * counters always, plus one ObsOpRecord per op into @p tracer's
     * per-thread ring when non-null (attribution-only mode otherwise).
     * Not thread-safe against in-flight ops — call before workers
     * start, as the load generator does. The tracer must outlive the
     * store or a disableObs() call. Disabled (the default) costs one
     * predicted-not-taken branch per op.
     */
    void enableObs(ObsTracer* tracer);

    /** Back to the uninstrumented paths (same thread-safety caveat). */
    void disableObs();

    bool obsEnabled() const { return obsEnabled_; }

    /** Snapshot of one shard's attribution counters (locks it). */
    ZkvShardObs shardObs(std::uint32_t shard) const;

    /** Sum of all shards' attribution counters. */
    ZkvShardObs obsTotals() const;

    // ---- durability tier (docs/durability.md) ----------------------

    /** True when a data directory was configured at create(). */
    bool persistEnabled() const { return persist_ != nullptr; }

    /**
     * Replay the data directory (snapshot, then log) into the shards
     * and start the writer threads. Required before traffic whenever
     * persistence is configured — a fresh directory recovers trivially
     * to an empty report. Runs exactly once per store.
     */
    Expected<persist::RecoveryReport> recover();

    /**
     * Drain and join the durability tier, surfacing the first sticky
     * writer error (the dtor also stops it, but silently). Safe to
     * call with persistence off (returns Ok).
     */
    Status stopPersist();

    /** The tier itself (counters, waitDurable); null when disabled. */
    persist::PersistTier* persistTier() { return persist_.get(); }

    /**
     * Walk-free iteration over one shard's live (key, value) pairs,
     * under that shard's lock. This is the enumeration primitive the
     * compaction snapshot uses; tests use it to diff store contents
     * against a shadow map without a key probe per entry.
     */
    void forEachInShard(
        std::uint32_t shard,
        const std::function<void(std::uint64_t key, std::uint64_t value)>&
            fn) const;

    /**
     * Point-in-time image of one shard plus the seqno watermark, both
     * read under the shard lock (so the snapshot is exactly the state
     * after every op with seqno <= watermark). Requires persistence.
     */
    persist::SnapshotData
    captureShardSnapshot(std::uint32_t shard) const;

    /**
     * Register the store's stats tree under @p g: config strings, a
     * totals group, and per-shard groups each containing the shard's
     * operation counters plus the underlying array's own stats (tag
     * traffic, walk statistics for zcache shards). Stats are pulled at
     * dump time from live counters; quiesce worker threads before
     * dumping (the load generator dumps after joining its workers).
     */
    void registerStats(StatGroup& g);

    const ZkvConfig& config() const { return cfg_; }

    /** Keys never storable: the array's invalid-address sentinel. */
    static constexpr std::uint64_t kReservedKey =
        static_cast<std::uint64_t>(kInvalidAddr);

    /**
     * Optimistic read attempts before falling back to the shard lock.
     * Retries are cheap (a W-position probe over two cache lines), so
     * a handful rides out a whole relocation walk; the locked fallback
     * bounds the tail so readers cannot starve under a put storm.
     */
    static constexpr std::uint32_t kSeqGetMaxRetries = 4;

    /** Upper bound on lookupWays() fan-out an optimistic reader
     *  stack-allocates for. validateSpec caps ways well below this. */
    static constexpr std::uint32_t kMaxLookupWays = 64;

  private:
    struct Shard;

    explicit ZkvStore(ZkvConfig cfg);

    std::optional<std::uint64_t> getTraced(std::uint64_t key);
    Expected<PutResult> putTraced(std::uint64_t key, std::uint64_t value);
    bool eraseTraced(std::uint64_t key);

    /**
     * The lock-free read attempt: up to kSeqGetMaxRetries seqlock-
     * validated probes of @p key's candidate positions. On success
     * returns true with hit/value filled and the per-shard optimistic
     * counters updated; on false the caller must take the locked
     * fallback. @p retries reports validation failures either way.
     */
    bool tryOptimisticGet(Shard& sh, std::uint64_t key,
                          std::uint32_t& retries, bool& hit,
                          std::uint64_t& value);

    std::optional<std::uint64_t> getOptimistic(std::uint64_t key);
    std::optional<std::uint64_t> getOptimisticTraced(std::uint64_t key);

    /**
     * The all-gets batched twin: every op tries the lock-free path
     * independently; the (rare) failures are answered together under a
     * single lock acquisition. Mixed batches never come here — a put
     * between two gets must stay ordered, so they run fully locked.
     */
    void runShardBatchGetsOptimistic(std::uint32_t shard,
                                     std::span<const StoreBatchOp> ops,
                                     StoreBatchResult* out);

    /** Recovery-only mutators: apply state without counting stats or
     *  re-logging (the tier is not active during replay). */
    void replayPut(std::uint32_t shard, std::uint64_t key,
                   std::uint64_t value);
    void replayErase(std::uint32_t shard, std::uint64_t key);

    ZkvConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;

    /** Bytes-mode payload codec (null outside bytes mode). Codecs are
     *  stateless, so one instance serves every shard concurrently;
     *  scratch buffers are per-call. */
    std::unique_ptr<Codec> codec_;

    // Declared after shards_ so it is destroyed (writer + snapshot
    // threads joined) before the shards its callbacks reference.
    std::unique_ptr<persist::PersistTier> persist_;

    bool obsEnabled_ = false;
    ObsTracer* tracer_ = nullptr;
};

} // namespace zc
