/**
 * @file
 * SHA-1 (FIPS 180-1) — the "exceedingly complex" end of the hash
 * spectrum the paper names in Section III-C, used in Section IV-C to
 * show that strong hashing makes measured associativity distributions
 * identical to the uniformity assumption.
 *
 * Self-contained single-block implementation sufficient for hashing
 * 64-bit line addresses (plus a general-purpose buffer entry point used
 * by the tests against the FIPS test vectors). SHA-1 is of course not
 * cryptographically trustworthy anymore; here it is a *mixing* function
 * exactly as the paper uses it.
 */

#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "hash/hash_function.hpp"

namespace zc {

class Sha1
{
  public:
    using Digest = std::array<std::uint32_t, 5>;

    /** Digest of an arbitrary byte buffer. */
    static Digest
    digest(const void* data, std::size_t len)
    {
        Digest h{0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                 0xC3D2E1F0u};

        // Process full 64-byte blocks, then the padded tail.
        const auto* bytes = static_cast<const std::uint8_t*>(data);
        std::size_t full = len / 64;
        for (std::size_t b = 0; b < full; b++) {
            processBlock(bytes + b * 64, h);
        }

        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        std::uint8_t tail[128] = {0};
        std::size_t rem = len % 64;
        std::memcpy(tail, bytes + full * 64, rem);
        tail[rem] = 0x80;
        std::size_t tail_len = (rem < 56) ? 64 : 128;
        std::uint64_t bit_len = static_cast<std::uint64_t>(len) * 8;
        for (int i = 0; i < 8; i++) {
            tail[tail_len - 1 - i] =
                static_cast<std::uint8_t>(bit_len >> (8 * i));
        }
        processBlock(tail, h);
        if (tail_len == 128) processBlock(tail + 64, h);
        return h;
    }

    /** Hex string of a digest (for test vectors). */
    static std::string
    hex(const Digest& d)
    {
        static const char* k = "0123456789abcdef";
        std::string out;
        for (std::uint32_t w : d) {
            for (int shift = 28; shift >= 0; shift -= 4) {
                out.push_back(k[(w >> shift) & 0xF]);
            }
        }
        return out;
    }

  private:
    static std::uint32_t
    rotl(std::uint32_t v, int s)
    {
        return (v << s) | (v >> (32 - s));
    }

    static void
    processBlock(const std::uint8_t* block, Digest& h)
    {
        std::uint32_t w[80];
        for (int i = 0; i < 16; i++) {
            w[i] = (std::uint32_t{block[4 * i]} << 24) |
                   (std::uint32_t{block[4 * i + 1]} << 16) |
                   (std::uint32_t{block[4 * i + 2]} << 8) |
                   std::uint32_t{block[4 * i + 3]};
        }
        for (int i = 16; i < 80; i++) {
            w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
        }

        std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
        for (int i = 0; i < 80; i++) {
            std::uint32_t f, k;
            if (i < 20) {
                f = (b & c) | (~b & d);
                k = 0x5A827999u;
            } else if (i < 40) {
                f = b ^ c ^ d;
                k = 0x6ED9EBA1u;
            } else if (i < 60) {
                f = (b & c) | (b & d) | (c & d);
                k = 0x8F1BBCDCu;
            } else {
                f = b ^ c ^ d;
                k = 0xCA62C1D6u;
            }
            std::uint32_t t = rotl(a, 5) + f + e + k + w[i];
            e = d;
            d = c;
            c = rotl(b, 30);
            b = a;
            a = t;
        }
        h[0] += a;
        h[1] += b;
        h[2] += c;
        h[3] += d;
        h[4] += e;
    }
};

/**
 * Cache-index hash built on SHA-1: the address (salted per way) is
 * digested and the low output bits index the array. Slow — for
 * experiments validating hash-quality claims, not for the simulator's
 * hot paths (StrongHash is the fast stand-in).
 */
class Sha1Hash final : public HashFunction
{
  public:
    Sha1Hash(std::uint64_t buckets, std::uint64_t seed)
        : buckets_(buckets), seed_(seed)
    {
        zc_assert(isPow2(buckets));
    }

    std::uint64_t
    hash(Addr lineAddr) const override
    {
        std::uint64_t msg[2] = {lineAddr, seed_};
        Sha1::Digest d = Sha1::digest(msg, sizeof msg);
        std::uint64_t v =
            (static_cast<std::uint64_t>(d[0]) << 32) | d[1];
        return v & (buckets_ - 1);
    }

    std::uint64_t buckets() const override { return buckets_; }

    std::string
    name() const override
    {
        return "SHA1(seed=" + std::to_string(seed_) + ")";
    }

  private:
    std::uint64_t buckets_;
    std::uint64_t seed_;
};

} // namespace zc
