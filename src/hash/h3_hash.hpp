/**
 * @file
 * H3 universal hash family (Carter & Wegman, 1977).
 *
 * The paper (Section III-C) uses H3 functions to index each zcache way:
 * low-cost, pairwise-independent, a few XOR gates per output bit in
 * hardware. Software formulation: output bit i is the parity of
 * (addr & q_i) for a random 64-bit row q_i of a per-function matrix.
 *
 * Different ways get statistically independent functions by drawing each
 * matrix from a seeded Pcg32 stream.
 *
 * Matrix members are drawn with an identity component on the low
 * out_bits address bits (row i always includes bit i): addresses that
 * differ only in those bits can then never collide, and — decisive for
 * small arrays like TLBs — the matrix restricted to any input subspace
 * containing the low bits keeps full rank, so no way loses buckets to
 * an unlucky rank-deficient projection. This is still an H3 member
 * (a few XOR gates per output bit); it just excludes the degenerate
 * corner of the family.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "hash/hash_function.hpp"

namespace zc {

class H3Hash final : public HashFunction
{
  public:
    /**
     * @param buckets Number of buckets; must be a power of two.
     * @param seed Seed selecting the random matrix (each way uses a
     *             distinct seed).
     */
    H3Hash(std::uint64_t buckets, std::uint64_t seed)
        : buckets_(buckets), seed_(seed)
    {
        zc_assert(isPow2(buckets));
        std::uint32_t out_bits = log2Floor(buckets);
        Pcg32 rng(seed, /*stream=*/0x9e3779b97f4a7c15ULL);
        rows_.resize(out_bits);
        std::uint64_t low_mask =
            (out_bits >= 64) ? ~std::uint64_t{0}
                             : ((std::uint64_t{1} << out_bits) - 1);
        for (std::uint32_t i = 0; i < out_bits; i++) {
            // Random high part, identity on the low out_bits bits.
            rows_[i] = (rng.next64() & ~low_mask) | (std::uint64_t{1} << i);
        }
    }

    std::uint64_t
    hash(Addr lineAddr) const override
    {
        std::uint64_t out = 0;
        for (std::size_t i = 0; i < rows_.size(); i++) {
            out |= static_cast<std::uint64_t>(popcount(lineAddr & rows_[i]) &
                                              1u)
                   << i;
        }
        return out;
    }

    std::uint64_t buckets() const override { return buckets_; }

    /**
     * The matrix rows (one per output bit). Exposed so WayIndexer can
     * flatten several ways' matrices into one contiguous table and
     * evaluate them without virtual dispatch (hash/way_index.hpp).
     */
    const std::vector<std::uint64_t>& rows() const { return rows_; }

    std::string
    name() const override
    {
        return "H3(seed=" + std::to_string(seed_) + ")";
    }

  private:
    std::uint64_t buckets_;
    std::uint64_t seed_;
    std::vector<std::uint64_t> rows_;
};

} // namespace zc
