/**
 * @file
 * Conventional bit-selection indexing.
 *
 * The default "no hashing" index of a set-associative cache: take
 * log2(buckets) low-order bits of the line address. Pathological strided
 * patterns map to a single set — exactly the behaviour hashed indexing
 * (Section II-A) is designed to avoid, and the baseline Fig. 3a measures.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "hash/hash_function.hpp"

namespace zc {

class BitSelectHash final : public HashFunction
{
  public:
    explicit BitSelectHash(std::uint64_t buckets) : buckets_(buckets)
    {
        zc_assert(isPow2(buckets));
        mask_ = buckets - 1;
    }

    std::uint64_t hash(Addr lineAddr) const override
    {
        return lineAddr & mask_;
    }

    std::uint64_t buckets() const override { return buckets_; }

    std::string name() const override { return "BitSelect"; }

  private:
    std::uint64_t buckets_;
    std::uint64_t mask_;
};

} // namespace zc
