/**
 * @file
 * Factory helpers building per-way hash families for skewed designs.
 */

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/status.hpp"
#include "hash/bit_select_hash.hpp"
#include "hash/folded_xor_hash.hpp"
#include "hash/h3_hash.hpp"
#include "hash/hash_function.hpp"
#include "hash/sha1.hpp"
#include "hash/strong_hash.hpp"

namespace zc {

/** Hash family selector used throughout configs and benches. */
enum class HashKind {
    BitSelect, ///< low-order bits (no hashing)
    FoldedXor, ///< folded XOR
    H3,        ///< H3 universal family (paper default)
    Strong,    ///< full-avalanche mixer (fast SHA-1 stand-in)
    Sha1,      ///< real SHA-1 (Section IV-C's reference; slow)
};

inline const char*
hashKindName(HashKind k)
{
    switch (k) {
      case HashKind::BitSelect: return "bitsel";
      case HashKind::FoldedXor: return "fxor";
      case HashKind::H3: return "h3";
      case HashKind::Strong: return "strong";
      case HashKind::Sha1: return "sha1";
    }
    return "?";
}

/** Every HashKind, for name listings and parse diagnostics. */
inline constexpr std::array<HashKind, 5> kAllHashKinds{
    HashKind::BitSelect, HashKind::FoldedXor, HashKind::H3,
    HashKind::Strong, HashKind::Sha1,
};

/**
 * Parse a hash-family name (the strings hashKindName emits); unknown
 * names yield a structured NotFound error listing every valid name.
 */
inline Expected<HashKind>
parseHashKind(const std::string& name)
{
    for (HashKind k : kAllHashKinds) {
        if (name == hashKindName(k)) return k;
    }
    std::string valid;
    for (HashKind k : kAllHashKinds) {
        if (!valid.empty()) valid += ", ";
        valid += hashKindName(k);
    }
    return Status::notFound("hash: unknown family '" + name +
                            "' (valid: " + valid + ")");
}

/** Build a single hash function of the given kind. */
inline HashPtr
makeHash(HashKind kind, std::uint64_t buckets, std::uint64_t seed)
{
    switch (kind) {
      case HashKind::BitSelect:
        return std::make_unique<BitSelectHash>(buckets);
      case HashKind::FoldedXor:
        return std::make_unique<FoldedXorHash>(buckets, seed);
      case HashKind::H3:
        return std::make_unique<H3Hash>(buckets, seed);
      case HashKind::Strong:
        return std::make_unique<StrongHash>(buckets, seed);
      case HashKind::Sha1:
        return std::make_unique<Sha1Hash>(buckets, seed);
    }
    zc_panic("unknown hash kind");
}

/**
 * Build one hash function per way, with distinct seeds so ways are
 * statistically independent (required by skew/zcache designs).
 */
inline std::vector<HashPtr>
makeHashFamily(HashKind kind, std::uint32_t ways, std::uint64_t buckets,
               std::uint64_t seed)
{
    zc_assert(ways > 0);
    std::vector<HashPtr> fam;
    fam.reserve(ways);
    for (std::uint32_t w = 0; w < ways; w++) {
        // Offset seeds; BitSelect ignores the seed, so a skewed design
        // with BitSelect degenerates to identical ways (documented).
        fam.push_back(makeHash(kind, buckets, seed + 0x51ed2701ULL * (w + 1)));
    }
    return fam;
}

} // namespace zc
