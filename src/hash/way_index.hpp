/**
 * @file
 * Devirtualized per-way index computation for skewed/zcache arrays.
 *
 * A W-way zcache lookup evaluates W hash functions per access, and every
 * walk level evaluates W-1 more per expanded node — on the hot path this
 * made the virtual HashFunction::hash() call the single largest source
 * of call overhead in the simulator. WayIndexer inspects a hash family
 * once at construction: when every way is the same concrete type (H3,
 * folded-XOR, bit-select or the strong mixer) it copies the few words of
 * per-way state into flat contiguous tables and evaluates the family
 * with direct, inlinable code; otherwise it falls back to the virtual
 * interface. The virtual HashFunction hierarchy stays the source of
 * truth for factories and tests — WayIndexer is a pure evaluation
 * cache, and test_walk_equivalence.cpp proves both paths bit-identical
 * for every hash kind.
 *
 * Positions are returned in the array's flat BlockPos space:
 * way * linesPerWay + hash_way(addr).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/types.hpp"
#include "hash/bit_select_hash.hpp"
#include "hash/folded_xor_hash.hpp"
#include "hash/h3_hash.hpp"
#include "hash/hash_function.hpp"
#include "hash/strong_hash.hpp"

namespace zc {

class WayIndexer
{
  public:
    WayIndexer() = default;

    WayIndexer(const std::vector<HashPtr>& hashes,
               std::uint32_t lines_per_way)
    {
        build(hashes, lines_per_way);
    }

    /**
     * Snapshot the family's state. @p hashes must outlive this indexer
     * only in Generic mode (raw pointers are kept); the specialized
     * modes copy everything they need.
     */
    void
    build(const std::vector<HashPtr>& hashes, std::uint32_t lines_per_way)
    {
        zc_assert(!hashes.empty());
        zc_assert(isPow2(lines_per_way));
        ways_ = static_cast<std::uint32_t>(hashes.size());
        linesPerWay_ = lines_per_way;
        mask_ = lines_per_way - 1;
        outBits_ = log2Floor(lines_per_way);

        mode_ = detect(hashes);
        h3Rows_.clear();
        salts_.clear();
        seeds_.clear();
        generic_.clear();
        switch (mode_) {
          case Mode::H3:
            // Way-major flattened matrix: rows of way w start at
            // w * outBits_.
            h3Rows_.reserve(std::size_t{ways_} * outBits_);
            for (const auto& h : hashes) {
                const auto& rows =
                    static_cast<const H3Hash&>(*h).rows();
                zc_assert(rows.size() == outBits_);
                h3Rows_.insert(h3Rows_.end(), rows.begin(), rows.end());
            }
            break;
          case Mode::FoldedXor:
            for (const auto& h : hashes) {
                salts_.push_back(
                    static_cast<const FoldedXorHash&>(*h).saltConstant());
            }
            break;
          case Mode::Strong:
            for (const auto& h : hashes) {
                seeds_.push_back(
                    static_cast<const StrongHash&>(*h).seed());
            }
            break;
          case Mode::BitSelect:
            break; // the mask is the whole state
          case Mode::Generic:
            for (const auto& h : hashes) generic_.push_back(h.get());
            break;
        }
    }

    std::uint32_t ways() const { return ways_; }

    /** Position of @p lineAddr in @p way (flat BlockPos space). */
    BlockPos
    position(std::uint32_t way, Addr lineAddr) const
    {
        std::uint64_t h;
        switch (mode_) {
          case Mode::H3:
            h = h3One(&h3Rows_[std::size_t{way} * outBits_], lineAddr);
            break;
          case Mode::FoldedXor:
            h = foldedOne(lineAddr + salts_[way]);
            break;
          case Mode::BitSelect:
            h = lineAddr & mask_;
            break;
          case Mode::Strong:
            h = strongOne(lineAddr, seeds_[way]);
            break;
          default:
            h = generic_[way]->hash(lineAddr);
            break;
        }
        return static_cast<BlockPos>(way * linesPerWay_ + h);
    }

    /**
     * Compute all W way positions of @p lineAddr in one batched call.
     * @p out must hold ways() entries. One mode dispatch for the whole
     * family; the per-way inner loops run over contiguous state.
     */
    void
    positionsAll(Addr lineAddr, BlockPos* out) const
    {
        switch (mode_) {
          case Mode::H3: {
            const std::uint64_t* rows = h3Rows_.data();
            for (std::uint32_t w = 0; w < ways_; w++) {
                out[w] = static_cast<BlockPos>(
                    w * linesPerWay_ + h3One(rows + std::size_t{w} * outBits_,
                                             lineAddr));
            }
            return;
          }
          case Mode::FoldedXor:
            for (std::uint32_t w = 0; w < ways_; w++) {
                out[w] = static_cast<BlockPos>(
                    w * linesPerWay_ + foldedOne(lineAddr + salts_[w]));
            }
            return;
          case Mode::BitSelect:
            for (std::uint32_t w = 0; w < ways_; w++) {
                out[w] = static_cast<BlockPos>(w * linesPerWay_ +
                                               (lineAddr & mask_));
            }
            return;
          case Mode::Strong:
            for (std::uint32_t w = 0; w < ways_; w++) {
                out[w] = static_cast<BlockPos>(
                    w * linesPerWay_ + strongOne(lineAddr, seeds_[w]));
            }
            return;
          default:
            for (std::uint32_t w = 0; w < ways_; w++) {
                out[w] = static_cast<BlockPos>(
                    w * linesPerWay_ + generic_[w]->hash(lineAddr));
            }
            return;
        }
    }

    /** Evaluation mode, for tests and telemetry. */
    const char*
    modeName() const
    {
        switch (mode_) {
          case Mode::H3: return "h3-batched";
          case Mode::FoldedXor: return "fxor-batched";
          case Mode::BitSelect: return "bitsel-batched";
          case Mode::Strong: return "strong-batched";
          default: return "generic-virtual";
        }
    }

    bool devirtualized() const { return mode_ != Mode::Generic; }

  private:
    enum class Mode { Generic, H3, FoldedXor, BitSelect, Strong };

    static Mode
    detect(const std::vector<HashPtr>& hashes)
    {
        // Specialize only when every way is the same concrete type; a
        // mixed family (bespoke test fixtures) stays on the virtual path.
        if (allOf<H3Hash>(hashes)) return Mode::H3;
        if (allOf<FoldedXorHash>(hashes)) return Mode::FoldedXor;
        if (allOf<BitSelectHash>(hashes)) return Mode::BitSelect;
        if (allOf<StrongHash>(hashes)) return Mode::Strong;
        return Mode::Generic;
    }

    template <typename T>
    static bool
    allOf(const std::vector<HashPtr>& hashes)
    {
        for (const auto& h : hashes) {
            if (dynamic_cast<const T*>(h.get()) == nullptr) return false;
        }
        return true;
    }

    // Mirrors H3Hash::hash() over a flattened row table.
    std::uint64_t
    h3One(const std::uint64_t* rows, Addr lineAddr) const
    {
        std::uint64_t out = 0;
        for (std::uint32_t i = 0; i < outBits_; i++) {
            out |= static_cast<std::uint64_t>(popcount(lineAddr & rows[i]) &
                                              1u)
                   << i;
        }
        return out;
    }

    // Mirrors FoldedXorHash::hash() with the salt pre-added.
    std::uint64_t
    foldedOne(std::uint64_t v) const
    {
        std::uint64_t out = 0;
        while (v != 0) {
            out ^= v & mask_;
            v >>= outBits_;
        }
        return out;
    }

    // Mirrors StrongHash::hash().
    std::uint64_t
    strongOne(Addr lineAddr, std::uint64_t seed) const
    {
        std::uint64_t z = lineAddr + seed * 0x9e3779b97f4a7c15ULL +
                          0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z = z ^ (z >> 31);
        return z & mask_;
    }

    Mode mode_ = Mode::Generic;
    std::uint32_t ways_ = 0;
    std::uint32_t linesPerWay_ = 0;
    std::uint32_t outBits_ = 0;
    std::uint64_t mask_ = 0;
    std::vector<std::uint64_t> h3Rows_; ///< way-major, ways * outBits rows
    std::vector<std::uint64_t> salts_;  ///< folded-XOR additive constants
    std::vector<std::uint64_t> seeds_;  ///< strong-mixer seeds
    std::vector<const HashFunction*> generic_; ///< fallback (non-owning)
};

} // namespace zc
