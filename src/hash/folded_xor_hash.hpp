/**
 * @file
 * Folded-XOR index hash.
 *
 * Cheap alternative to H3: XOR together log2(buckets)-wide slices of the
 * address. Common in real designs (e.g. XOR-based bank interleaving).
 * Included as a mid-quality point between bit selection and H3 for the
 * hash-quality ablations.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "hash/hash_function.hpp"

namespace zc {

class FoldedXorHash final : public HashFunction
{
  public:
    /**
     * @param buckets Power-of-two bucket count.
     * @param salt Optional constant *added* into the address first,
     *             letting different ways use distinct functions. (An
     *             XORed salt would merely XOR a constant into the
     *             output — the same function up to relabeling; addition
     *             propagates carries across fold boundaries.)
     */
    explicit FoldedXorHash(std::uint64_t buckets, std::uint64_t salt = 0)
        : buckets_(buckets), salt_(salt * 0x9e3779b97f4a7c15ULL)
    {
        zc_assert(isPow2(buckets));
        outBits_ = log2Floor(buckets);
        zc_assert(outBits_ > 0);
    }

    std::uint64_t
    hash(Addr lineAddr) const override
    {
        std::uint64_t v = lineAddr + salt_;
        std::uint64_t out = 0;
        while (v != 0) {
            out ^= v & (buckets_ - 1);
            v >>= outBits_;
        }
        return out;
    }

    std::uint64_t buckets() const override { return buckets_; }

    /**
     * The internal additive constant (salt * golden ratio), i.e. exactly
     * what hash() adds to the address. Exposed for WayIndexer's
     * devirtualized evaluation (hash/way_index.hpp).
     */
    std::uint64_t saltConstant() const { return salt_; }

    std::string name() const override { return "FoldedXor"; }

  private:
    std::uint64_t buckets_;
    std::uint64_t salt_;
    std::uint32_t outBits_;
};

} // namespace zc
