/**
 * @file
 * Prime-modulo indexing (Kharbutli et al., HPCA 2004).
 *
 * Background scheme from Section II-A: index = addr mod p where p is the
 * largest prime <= buckets. Spreads strided patterns well but leaves
 * (buckets - p) sets unused; included for the hash-quality comparison
 * benches.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/log.hpp"
#include "hash/hash_function.hpp"

namespace zc {

class PrimeModuloHash final : public HashFunction
{
  public:
    explicit PrimeModuloHash(std::uint64_t buckets) : buckets_(buckets)
    {
        zc_assert(buckets >= 2);
        prime_ = largestPrimeAtMost(buckets);
    }

    std::uint64_t hash(Addr lineAddr) const override
    {
        return lineAddr % prime_;
    }

    std::uint64_t buckets() const override { return buckets_; }

    /** The prime actually used (<= buckets). */
    std::uint64_t prime() const { return prime_; }

    std::string
    name() const override
    {
        return "PrimeModulo(p=" + std::to_string(prime_) + ")";
    }

    /** Largest prime <= n (n >= 2). Trial division; n is a set count. */
    static std::uint64_t
    largestPrimeAtMost(std::uint64_t n)
    {
        zc_assert(n >= 2);
        for (std::uint64_t c = n;; c--) {
            bool prime = c >= 2;
            for (std::uint64_t d = 2; d * d <= c; d++) {
                if (c % d == 0) {
                    prime = false;
                    break;
                }
            }
            if (prime) return c;
        }
    }

  private:
    std::uint64_t buckets_;
    std::uint64_t prime_;
};

} // namespace zc
