/**
 * @file
 * Strong 64-bit mixing hash (SplitMix64 finalizer).
 *
 * Section IV-C notes that replacing H3 with SHA-1 makes measured
 * associativity distributions indistinguishable from the uniformity
 * assumption. We stand in a full-avalanche 64-bit finalizer for SHA-1:
 * it has the property the experiment needs (every output bit depends on
 * every input bit, negligible correlation across seeds) at a tiny fraction
 * of the cost, and the bench exposes it under the `--strong-hash` flag.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "hash/hash_function.hpp"

namespace zc {

class StrongHash final : public HashFunction
{
  public:
    StrongHash(std::uint64_t buckets, std::uint64_t seed)
        : buckets_(buckets), seed_(seed)
    {
        zc_assert(isPow2(buckets));
    }

    std::uint64_t
    hash(Addr lineAddr) const override
    {
        std::uint64_t z = lineAddr + seed_ * 0x9e3779b97f4a7c15ULL +
                          0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z = z ^ (z >> 31);
        return z & (buckets_ - 1);
    }

    std::uint64_t buckets() const override { return buckets_; }

    /** Seed, exposed for WayIndexer's devirtualized evaluation. */
    std::uint64_t seed() const { return seed_; }

    std::string
    name() const override
    {
        return "Strong(seed=" + std::to_string(seed_) + ")";
    }

  private:
    std::uint64_t buckets_;
    std::uint64_t seed_;
};

} // namespace zc
