/**
 * @file
 * Abstract index hash function.
 *
 * A HashFunction maps a line address to a bucket index in [0, buckets).
 * Cache arrays own one HashFunction per way (skew/zcache) or a single one
 * (hashed set-associative). Implementations must be pure functions of the
 * address once constructed so that lookups and walks agree.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hpp"

namespace zc {

class HashFunction
{
  public:
    virtual ~HashFunction() = default;

    /** Map @p lineAddr to a bucket in [0, buckets()). */
    virtual std::uint64_t hash(Addr lineAddr) const = 0;

    /** Number of buckets this function maps into. */
    virtual std::uint64_t buckets() const = 0;

    /** Human-readable name for reports. */
    virtual std::string name() const = 0;
};

using HashPtr = std::unique_ptr<HashFunction>;

} // namespace zc
