/**
 * @file
 * The shared log-scaled latency domain used by every latency histogram
 * in the repo (docs/telemetry.md): nanoseconds are mapped onto [0, 1]
 * as log2(1+ns)/32, so a UnitHistogram with B bins spends 32/B bits of
 * log range per bin — 64 bins ≈ half-a-bit resolution from 1 ns to
 * ~4 s. The load generator's per-op histograms, the live metrics
 * snapshotter's windowed percentiles, and the trace reporter all agree
 * on this scale, so their quantiles are directly comparable.
 */

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/stats.hpp"

namespace zc {

/** Map an op latency to the [0,1] histogram domain: log2(1+ns)/32. */
inline double
latencyToUnit(double ns)
{
    return std::log2(1.0 + ns) / 32.0;
}

/** Invert latencyToUnit for approximate quantile reporting. */
inline double
unitToLatencyNs(double u)
{
    return std::exp2(32.0 * u) - 1.0;
}

/**
 * Bin index a latency of @p ns lands in for a @p bins-bin histogram on
 * this scale — UnitHistogram::record(latencyToUnit(ns)) picks the same
 * bin, so a live atomic mirror of a histogram stays bin-for-bin equal.
 */
inline std::size_t
latencyBinIndex(double ns, std::size_t bins)
{
    double x = std::clamp(latencyToUnit(ns), 0.0, 1.0);
    auto b = static_cast<std::size_t>(x * static_cast<double>(bins));
    return b >= bins ? bins - 1 : b;
}

/** Approximate quantile from histogram bins (right-edge inversion). */
inline double
histQuantileNs(const UnitHistogram& h, double q)
{
    if (h.samples() == 0) return 0.0;
    auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(h.samples()));
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < h.bins(); i++) {
        acc += h.binCount(i);
        if (acc > target) {
            double edge = (static_cast<double>(i) + 1.0) /
                          static_cast<double>(h.bins());
            return unitToLatencyNs(edge);
        }
    }
    return unitToLatencyNs(1.0);
}

/**
 * Quantile over a raw bin-count vector on the same log scale — the
 * windowed form used by the metrics snapshotter, where a window's
 * histogram is the delta of two cumulative snapshots and never lives
 * in a UnitHistogram object.
 */
inline double
binsQuantileNs(const std::vector<std::uint64_t>& counts, double q)
{
    std::uint64_t total = 0;
    for (std::uint64_t c : counts) total += c;
    if (total == 0) return 0.0;
    auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < counts.size(); i++) {
        acc += counts[i];
        if (acc > target) {
            double edge = (static_cast<double>(i) + 1.0) /
                          static_cast<double>(counts.size());
            return unitToLatencyNs(edge);
        }
    }
    return unitToLatencyNs(1.0);
}

} // namespace zc
