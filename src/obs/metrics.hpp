/**
 * @file
 * Windowed metrics time-series for live runs (docs/telemetry.md).
 *
 * The stats registry is pull-model and end-of-run; this layer adds the
 * time axis. A MetricsSnapshotter samples a cumulative MetricsSample
 * from the instrumented system every interval, diffs consecutive
 * samples into windows, and emits one NDJSON record per window
 * (cumulative counters, d_* deltas, *_per_sec rates, windowed
 * hit_rate and p50/p99 latency from the shared log-scaled bins) plus
 * a Prometheus-style text exposition file rewritten atomically.
 *
 * Exactness contract (tested in tests/test_obs.cpp): stop() takes one
 * final sample after the caller has quiesced its workers, so summing
 * any d_* column across all emitted windows reproduces the final
 * cumulative counter exactly — the windows are a partition of the run,
 * not a lossy sampling of it.
 *
 * writeEpochSeries() adapts the simulator's per-epoch samples
 * (CmpSystem's epoch sampler) onto the same NDJSON sink, so simulator
 * sweeps and live store runs feed one downstream tool chain.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/status.hpp"

namespace zc {

/**
 * One cumulative observation of the system. Counters are monotonic
 * since-start totals (the snapshotter forms windows by diffing);
 * gauges are instantaneous values passed through as-is; latencyBins
 * are cumulative counts on the shared log-latency scale
 * (obs/latency_scale.hpp).
 */
struct MetricsSample
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::uint64_t> latencyBins;
};

struct MetricsSnapshotterConfig
{
    /** NDJSON sink, one record per window; empty = disabled. */
    std::string ndjsonPath;

    /** Prometheus text exposition, atomically rewritten per window;
     *  empty = disabled. */
    std::string promPath;

    std::uint32_t intervalMs = 100;

    /** Metric name prefix in the Prometheus exposition. */
    std::string promPrefix = "zkv_";
};

/**
 * Background sampler: calls the SampleFn every intervalMs, diffs into
 * windows, appends NDJSON and rewrites the Prometheus file. start()
 * spawns the thread; stop() joins it and emits the final window —
 * call stop() only after the sampled system has quiesced so the last
 * cumulative sample is the deterministic end-of-run total.
 */
class MetricsSnapshotter
{
  public:
    using SampleFn = std::function<MetricsSample()>;

    MetricsSnapshotter(MetricsSnapshotterConfig cfg, SampleFn sample);
    ~MetricsSnapshotter();

    MetricsSnapshotter(const MetricsSnapshotter&) = delete;
    MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

    void start();

    /** Join the sampler and flush the final window. Idempotent. */
    Status stop();

    std::uint64_t windowsEmitted() const
    {
        return windows_.load(std::memory_order_relaxed);
    }

    const MetricsSnapshotterConfig& config() const { return cfg_; }

  private:
    void samplerMain();
    void emitWindow(const MetricsSample& cur, std::uint64_t now_ns);
    void writeProm(const MetricsSample& cur, const JsonValue& window);

    MetricsSnapshotterConfig cfg_;
    SampleFn sample_;

    MetricsSample prev_;
    std::uint64_t startNs_ = 0;
    std::uint64_t prevNs_ = 0;

    std::atomic<std::uint64_t> windows_{0};
    std::atomic<bool> stopReq_{false};
    std::thread sampler_;
    bool started_ = false;
    bool stopped_ = false;
    bool ioFailed_ = false;
};

/**
 * Write the simulator's per-epoch sample array (the "samples" array
 * CmpSystem registers under system.epochs) to @p path as NDJSON, one
 * record per epoch, each tagged with the epoch index and @p tags
 * (e.g. the sweep point's parameters). Deterministic: pure re-shaping
 * of deterministic stats, no clocks involved. With @p append the file
 * is extended instead of truncated, so a sweep bench can stream every
 * grid point's series into one file, distinguished by its tags (the
 * "epoch" field restarts from 0 at each call).
 */
Status writeEpochSeries(const std::string& path, const JsonValue& samples,
                        const JsonValue& tags, bool append = false);

/** Sanitize a counter name for Prometheus exposition ([a-zA-Z0-9_]). */
std::string promName(const std::string& name);

} // namespace zc
