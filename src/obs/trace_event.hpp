/**
 * @file
 * Compact per-operation trace record for the live-telemetry layer
 * (docs/telemetry.md).
 *
 * The hot path emits exactly ONE fixed-size record per store operation
 * — begin timestamp plus the attribution durations the instrumented
 * path already measured (lock wait, hash/probe, relocation walk) and
 * the walk's outcome. The collector expands each record into the
 * Chrome trace-event spans a human wants to see (op span, nested
 * lock_wait / probe / walk children, an eviction instant), so the ring
 * carries 56 bytes per op instead of five variable events, and
 * "op spans emitted + dropped == ops" is exact by construction.
 */

#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define ZC_OBS_HAVE_TSC 1
#endif

namespace zc {

/** Operation kinds the tracer knows how to label. */
enum class ObsOp : std::uint8_t {
    Get = 0,
    Put = 1,
    Erase = 2,
};

inline const char*
obsOpName(ObsOp op)
{
    switch (op) {
      case ObsOp::Get: return "get";
      case ObsOp::Put: return "put";
      default: return "erase";
    }
}

/** Flag bits of ObsOpRecord::flags. */
enum : std::uint8_t {
    kObsFlagHit = 1u << 0,      ///< get/erase found the key
    kObsFlagInserted = 1u << 1, ///< put installed a new key
    kObsFlagEvicted = 1u << 2,  ///< insert displaced a resident key
    kObsFlagError = 1u << 3,    ///< op failed with a structured Status
    /** Get answered (or attempted) on the lock-free seqlock path
     *  (ReadPath::Optimistic). For such records `candidates` is reused
     *  as the seqlock validation-retry count — gets never walk, so the
     *  field is otherwise always zero and the 48-byte record has no
     *  spare room. */
    kObsFlagOptimistic = 1u << 4,
    /** Optimistic get exhausted its retries and was answered under the
     *  shard lock (the lock_wait/probe phases are the fallback's). */
    kObsFlagSeqFallback = 1u << 5,
};

/** One operation's span + latency attribution (48 bytes). */
struct ObsOpRecord
{
    std::uint64_t tsBeginNs = 0; ///< steady_clock ns at op begin
    std::uint64_t key = 0;

    std::uint32_t durNs = 0;      ///< whole-op duration
    std::uint32_t netNs = 0;      ///< server queue: decode -> dispatch
    std::uint32_t lockWaitNs = 0; ///< shard-lock acquisition wait
    std::uint32_t probeNs = 0;    ///< hash + tag probe (array access)
    std::uint32_t walkNs = 0;     ///< relocation-walk insert (puts)

    std::uint32_t candidates = 0;  ///< walk candidates examined
    std::uint32_t relocations = 0; ///< walk relocations performed

    std::uint16_t shard = 0;
    ObsOp op = ObsOp::Get;
    std::uint8_t flags = 0;
};

/** steady_clock now, in integer nanoseconds. */
inline std::uint64_t
obsSteadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

#ifdef ZC_OBS_HAVE_TSC
namespace obs_detail {

/**
 * Calibrated TSC -> steady_clock-ns mapping. A traced op takes 3-4
 * timestamps, and at ~25 ns per clock_gettime those dominate the
 * instrumentation cost (docs/telemetry.md's overhead table); rdtsc is
 * ~8 ns. Modern x86 has an invariant TSC (constant rate, synchronized
 * across cores), so one process-wide affine map suffices. Calibration
 * spins ~2 ms once, on the first traced op; the ~0.1% rate error only
 * skews absolute span positions, never the producer-side durations,
 * which are differences of nearby readings.
 */
struct TscClock
{
    std::uint64_t tsc0;
    std::uint64_t ns0;
    double nsPerTick;

    TscClock()
    {
        ns0 = obsSteadyNowNs();
        tsc0 = __rdtsc();
        std::uint64_t ns1, tsc1;
        do {
            ns1 = obsSteadyNowNs();
            tsc1 = __rdtsc();
        } while (ns1 - ns0 < 2000000);
        nsPerTick = static_cast<double>(ns1 - ns0) /
                    static_cast<double>(tsc1 - tsc0);
    }
};

inline const TscClock&
tscClock()
{
    static const TscClock clock;
    return clock;
}

} // namespace obs_detail
#endif

/**
 * Trace timestamp in integer nanoseconds on the steady_clock epoch:
 * a calibrated TSC read where the hardware supports it (~8 ns),
 * steady_clock otherwise. All telemetry timestamps come from here so
 * spans and metrics windows share one timeline.
 */
inline std::uint64_t
obsNowNs()
{
#ifdef ZC_OBS_HAVE_TSC
    const obs_detail::TscClock& c = obs_detail::tscClock();
    return c.ns0 +
           static_cast<std::uint64_t>(
               static_cast<double>(__rdtsc() - c.tsc0) * c.nsPerTick);
#else
    return obsSteadyNowNs();
#endif
}

/** Saturating ns delta for the record's uint32 duration fields. */
inline std::uint32_t
obsDurNs(std::uint64_t begin_ns, std::uint64_t end_ns)
{
    std::uint64_t d = end_ns >= begin_ns ? end_ns - begin_ns : 0;
    return d > 0xffffffffULL ? 0xffffffffu
                             : static_cast<std::uint32_t>(d);
}

} // namespace zc
