#include "obs/metrics.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/stats_registry.hpp"
#include "obs/latency_scale.hpp"
#include "obs/trace_event.hpp"

namespace zc {

std::string
promName(const std::string& name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

MetricsSnapshotter::MetricsSnapshotter(MetricsSnapshotterConfig cfg,
                                       SampleFn sample)
    : cfg_(std::move(cfg)), sample_(std::move(sample))
{
}

MetricsSnapshotter::~MetricsSnapshotter()
{
    (void)stop();
}

void
MetricsSnapshotter::start()
{
    if (started_) return;
    started_ = true;
    // Truncate a stale NDJSON file so re-running into the same path
    // never interleaves two runs' windows.
    if (!cfg_.ndjsonPath.empty()) {
        std::ofstream trunc(cfg_.ndjsonPath, std::ios::trunc);
        if (!trunc) ioFailed_ = true;
    }
    startNs_ = obsNowNs();
    prevNs_ = startNs_;
    prev_ = sample_();
    sampler_ = std::thread([this] { samplerMain(); });
}

Status
MetricsSnapshotter::stop()
{
    if (!started_ || stopped_) return Status::ok();
    stopped_ = true;
    stopReq_.store(true, std::memory_order_release);
    if (sampler_.joinable()) sampler_.join();
    // Final window: the system has quiesced, so this sample is the
    // end-of-run total and the emitted deltas partition the whole run.
    emitWindow(sample_(), obsNowNs());
    if (ioFailed_) {
        return Status::ioError("metrics snapshotter: write failed ('" +
                               cfg_.ndjsonPath + "' / '" + cfg_.promPath +
                               "')");
    }
    return Status::ok();
}

void
MetricsSnapshotter::samplerMain()
{
    while (!stopReq_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(cfg_.intervalMs));
        if (stopReq_.load(std::memory_order_acquire)) break;
        emitWindow(sample_(), obsNowNs());
    }
}

void
MetricsSnapshotter::emitWindow(const MetricsSample& cur,
                               std::uint64_t now_ns)
{
    const double window_s =
        static_cast<double>(now_ns - prevNs_) / 1e9;

    JsonValue rec = JsonValue::object();
    rec.set("seq", JsonValue(windows_.load(std::memory_order_relaxed)));
    rec.set("t_ms",
            JsonValue(static_cast<double>(now_ns - startNs_) / 1e6));
    rec.set("window_ms", JsonValue(window_s * 1e3));

    // Cumulative counters, window deltas, and rates. The previous
    // sample may predate a counter's first appearance (e.g. a thread
    // registering late); missing-in-prev means delta-from-zero.
    std::uint64_t dGets = 0, dGetHits = 0;
    bool haveGets = false, haveGetHits = false;
    for (const auto& [name, val] : cur.counters) {
        std::uint64_t before = 0;
        for (const auto& [pname, pval] : prev_.counters) {
            if (pname == name) {
                before = pval;
                break;
            }
        }
        const std::uint64_t d = val >= before ? val - before : 0;
        rec.set(name, JsonValue(val));
        rec.set("d_" + name, JsonValue(d));
        if (window_s > 0.0) {
            rec.set(name + "_per_sec",
                    JsonValue(static_cast<double>(d) / window_s));
        }
        if (name == "gets") {
            dGets = d;
            haveGets = true;
        } else if (name == "get_hits") {
            dGetHits = d;
            haveGetHits = true;
        }
    }
    if (haveGets && haveGetHits && dGets > 0) {
        rec.set("hit_rate", JsonValue(static_cast<double>(dGetHits) /
                                      static_cast<double>(dGets)));
    }
    for (const auto& [name, val] : cur.gauges) {
        rec.set(name, JsonValue(val));
    }

    // Windowed latency percentiles from the cumulative bin deltas.
    if (!cur.latencyBins.empty() &&
        cur.latencyBins.size() == prev_.latencyBins.size()) {
        std::vector<std::uint64_t> delta(cur.latencyBins.size(), 0);
        for (std::size_t i = 0; i < delta.size(); i++) {
            delta[i] = cur.latencyBins[i] >= prev_.latencyBins[i]
                           ? cur.latencyBins[i] - prev_.latencyBins[i]
                           : 0;
        }
        rec.set("p50_ns", JsonValue(binsQuantileNs(delta, 0.50)));
        rec.set("p99_ns", JsonValue(binsQuantileNs(delta, 0.99)));
    } else if (!cur.latencyBins.empty()) {
        rec.set("p50_ns", JsonValue(binsQuantileNs(cur.latencyBins, 0.50)));
        rec.set("p99_ns", JsonValue(binsQuantileNs(cur.latencyBins, 0.99)));
    }

    if (!cfg_.ndjsonPath.empty() &&
        !appendJsonl(cfg_.ndjsonPath, rec)) {
        ioFailed_ = true;
    }
    writeProm(cur, rec);

    prev_ = cur;
    prevNs_ = now_ns;
    windows_.fetch_add(1, std::memory_order_relaxed);
}

void
MetricsSnapshotter::writeProm(const MetricsSample& cur,
                              const JsonValue& window)
{
    if (cfg_.promPath.empty()) return;

    std::string body;
    body.reserve(1024);
    auto emit = [&](const std::string& name, const char* type,
                    double value) {
        std::string m = cfg_.promPrefix + promName(name);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        body += "# TYPE " + m + " " + type + "\n";
        body += m + " " + buf + "\n";
    };
    for (const auto& [name, val] : cur.counters) {
        emit(name + "_total", "counter", static_cast<double>(val));
    }
    for (const auto& [name, val] : cur.gauges) {
        emit(name, "gauge", val);
    }
    for (const char* g : {"hit_rate", "p50_ns", "p99_ns"}) {
        if (const JsonValue* v = window.find(g)) {
            emit(g, "gauge", v->asDouble());
        }
    }

    // Atomic rewrite (tmp + rename) so a concurrent scraper never
    // reads a half-written exposition.
    std::string tmp = cfg_.promPath + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            ioFailed_ = true;
            return;
        }
        out << body;
        if (!out.good()) {
            ioFailed_ = true;
            return;
        }
    }
    if (std::rename(tmp.c_str(), cfg_.promPath.c_str()) != 0) {
        ioFailed_ = true;
    }
}

Status
writeEpochSeries(const std::string& path, const JsonValue& samples,
                 const JsonValue& tags, bool append)
{
    if (!samples.isArray()) {
        return Status::invalidArgument(
            "writeEpochSeries: samples is not an array");
    }
    if (!append) {
        std::ofstream trunc(path, std::ios::trunc);
        if (!trunc) {
            return Status::ioError("writeEpochSeries: cannot open '" +
                                   path + "'");
        }
    }
    for (std::size_t i = 0; i < samples.arr().size(); i++) {
        const JsonValue& s = samples.arr()[i];
        JsonValue rec = JsonValue::object();
        rec.set("epoch", JsonValue(std::uint64_t{i}));
        if (tags.isObject()) {
            for (const auto& [k, v] : tags.obj()) rec.set(k, v);
        }
        if (s.isObject()) {
            for (const auto& [k, v] : s.obj()) rec.set(k, v);
        }
        if (!appendJsonl(path, rec)) {
            return Status::ioError("writeEpochSeries: write failed ('" +
                                   path + "')");
        }
    }
    return Status::ok();
}

} // namespace zc
