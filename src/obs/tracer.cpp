#include "obs/tracer.hpp"

#include <cinttypes>
#include <cstring>

#include "common/fault_injection.hpp"
#include "common/log.hpp"

namespace zc {

namespace {

/** Process-unique tracer ids so the thread-local channel cache can
 *  tell "my cached channel belongs to THIS tracer" apart from a stale
 *  pointer into a destroyed one. */
std::atomic<std::uint64_t> g_nextTracerId{1};

thread_local std::uint64_t t_cachedTracerId = 0;
thread_local ObsThreadChannel* t_cachedChannel = nullptr;

} // namespace

bool
ObsThreadChannel::record(const ObsOpRecord& rec)
{
    // The fault site models "ring full" deterministically so tests can
    // pin the drop accounting without racing a slow collector.
    if (ZC_INJECT_FAULT("collector.overflow") || !ring_.tryPush(rec)) {
        ring_.countDrop();
        return false;
    }
    ring_.countPush();
    return true;
}

ObsTracer::ObsTracer(ObsTracerConfig cfg)
    : cfg_(std::move(cfg)),
      id_(g_nextTracerId.fetch_add(1, std::memory_order_relaxed)),
      originNs_(obsNowNs())
{
    if (!cfg_.path.empty()) {
        out_ = std::fopen(cfg_.path.c_str(), "wb");
        if (out_ == nullptr) {
            ioFailed_ = true;
        } else {
            std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n",
                       out_);
        }
    }
    collector_ = std::thread([this] { collectorMain(); });
}

ObsTracer::~ObsTracer()
{
    if (!finished_) (void)finish(0);
}

ObsThreadChannel*
ObsTracer::channel()
{
    if (t_cachedTracerId == id_ && t_cachedChannel != nullptr) {
        return t_cachedChannel;
    }
    std::string name;
    {
        std::lock_guard<std::mutex> g(channelsMx_);
        name = "worker-" + std::to_string(channels_.size());
    }
    return registerThread(name);
}

ObsThreadChannel*
ObsTracer::registerThread(const std::string& name)
{
    std::lock_guard<std::mutex> g(channelsMx_);
    auto tid = static_cast<std::uint32_t>(channels_.size() + 1);
    channels_.push_back(std::make_unique<ObsThreadChannel>(
        tid, name, cfg_.ringCapacity));
    ObsThreadChannel* ch = channels_.back().get();
    t_cachedTracerId = id_;
    t_cachedChannel = ch;
    return ch;
}

std::uint64_t
ObsTracer::dropped() const
{
    std::lock_guard<std::mutex> g(channelsMx_);
    std::uint64_t n = 0;
    for (const auto& ch : channels_) n += ch->dropped();
    return n;
}

void
ObsTracer::collectorMain()
{
    std::vector<ObsOpRecord> batch;
    batch.reserve(4096);
    while (!stop_.load(std::memory_order_acquire)) {
        drainAll(batch);
        std::this_thread::sleep_for(
            std::chrono::microseconds(cfg_.drainIntervalUs));
    }
}

void
ObsTracer::drainAll(std::vector<ObsOpRecord>& batch)
{
    // Snapshot the channel list; channels are never removed while the
    // tracer lives, so the raw pointers stay valid outside the lock.
    std::vector<ObsThreadChannel*> chans;
    {
        std::lock_guard<std::mutex> g(channelsMx_);
        chans.reserve(channels_.size());
        for (const auto& ch : channels_) chans.push_back(ch.get());
    }
    for (ObsThreadChannel* ch : chans) {
        for (;;) {
            batch.clear();
            if (ch->ring_.popBatch(batch, 4096) == 0) break;
            for (const ObsOpRecord& rec : batch) {
                writeRecord(ch->tid(), rec);
            }
            recorded_.fetch_add(batch.size(),
                                std::memory_order_relaxed);
        }
    }
}

void
ObsTracer::writeEvent(const std::string& json)
{
    if (out_ == nullptr) return;
    if (wroteEvent_) {
        if (std::fputs(",\n", out_) < 0) ioFailed_ = true;
    }
    if (std::fputs(json.c_str(), out_) < 0) ioFailed_ = true;
    wroteEvent_ = true;
}

void
ObsTracer::writeRecord(std::uint32_t tid, const ObsOpRecord& rec)
{
    if (out_ == nullptr) return; // count-only mode

    char buf[512];
    const double ts = static_cast<double>(rec.tsBeginNs - originNs_) / 1e3;
    const double dur = static_cast<double>(rec.durNs) / 1e3;

    // Optimistic-get attribution (docs/store.md, "Read path"): such
    // records reuse the candidates field as the seqlock retry count
    // (gets never walk), and seq_fallback marks a get that exhausted
    // its retries and finished under the shard lock.
    char opt[96];
    opt[0] = '\0';
    if (rec.flags & kObsFlagOptimistic) {
        std::snprintf(opt, sizeof(opt),
                      ",\"optimistic\":true,\"seq_retries\":%u,"
                      "\"seq_fallback\":%s",
                      rec.candidates,
                      (rec.flags & kObsFlagSeqFallback) ? "true" : "false");
    }

    // Whole-op span with the attribution + outcome in args.
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{"
        "\"key\":%" PRIu64 ",\"shard\":%u,\"hit\":%s,\"inserted\":%s,"
        "\"evicted\":%s,\"error\":%s%s}}",
        obsOpName(rec.op), ts, dur, tid, rec.key,
        static_cast<unsigned>(rec.shard),
        (rec.flags & kObsFlagHit) ? "true" : "false",
        (rec.flags & kObsFlagInserted) ? "true" : "false",
        (rec.flags & kObsFlagEvicted) ? "true" : "false",
        (rec.flags & kObsFlagError) ? "true" : "false", opt);
    writeEvent(buf);

    // Nested attribution children, laid out sequentially inside the op
    // span: [net][lock_wait][probe][walk]. Zero-length phases are
    // elided. The net phase exists only on the server's batched
    // dispatch path: frame-decode to shard-dispatch queueing time
    // (docs/server.md).
    double cursor = ts;
    if (rec.netNs > 0) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"net\",\"cat\":\"phase\","
                      "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                      "\"pid\":1,\"tid\":%u}",
                      cursor, static_cast<double>(rec.netNs) / 1e3, tid);
        writeEvent(buf);
    }
    cursor += static_cast<double>(rec.netNs) / 1e3;
    if (rec.lockWaitNs > 0) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"lock_wait\",\"cat\":\"phase\","
                      "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                      "\"pid\":1,\"tid\":%u}",
                      cursor, static_cast<double>(rec.lockWaitNs) / 1e3,
                      tid);
        writeEvent(buf);
    }
    cursor += static_cast<double>(rec.lockWaitNs) / 1e3;
    if (rec.probeNs > 0) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"probe\",\"cat\":\"phase\","
                      "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                      "\"pid\":1,\"tid\":%u}",
                      cursor, static_cast<double>(rec.probeNs) / 1e3,
                      tid);
        writeEvent(buf);
    }
    cursor += static_cast<double>(rec.probeNs) / 1e3;
    if (rec.walkNs > 0) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"walk\",\"cat\":\"phase\","
                      "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                      "\"pid\":1,\"tid\":%u,\"args\":{"
                      "\"candidates\":%u,\"relocations\":%u}}",
                      cursor, static_cast<double>(rec.walkNs) / 1e3, tid,
                      rec.candidates, rec.relocations);
        writeEvent(buf);
    }
    if (rec.flags & kObsFlagEvicted) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"evict\",\"cat\":\"event\","
                      "\"ph\":\"i\",\"ts\":%.3f,\"s\":\"t\","
                      "\"pid\":1,\"tid\":%u}",
                      ts + dur, tid);
        writeEvent(buf);
    }
}

void
ObsTracer::writeMetadata()
{
    if (out_ == nullptr) return;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"args\":{\"name\":\"%s\"}}",
                  cfg_.processName.c_str());
    writeEvent(buf);
    std::lock_guard<std::mutex> g(channelsMx_);
    for (const auto& ch : channels_) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                      ch->tid(), ch->name().c_str());
        writeEvent(buf);
    }
}

Expected<ObsSummary>
ObsTracer::finish(std::uint64_t expected_ops)
{
    if (finished_) return summary_;
    finished_ = true;

    stop_.store(true, std::memory_order_release);
    if (collector_.joinable()) collector_.join();

    // Producers have quiesced (contract) and the collector is gone, so
    // this final drain on the caller's thread empties every ring.
    std::vector<ObsOpRecord> batch;
    batch.reserve(4096);
    drainAll(batch);

    ObsSummary sum;
    sum.recorded = recorded_.load(std::memory_order_relaxed);
    sum.dropped = dropped();
    {
        std::lock_guard<std::mutex> g(channelsMx_);
        sum.threads = channels_.size();
    }

    if (out_ != nullptr) {
        writeMetadata();
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "\n],\"otherData\":{\"ops_recorded\":%" PRIu64
                      ",\"ops_dropped\":%" PRIu64
                      ",\"ops_expected\":%" PRIu64
                      ",\"ts_origin_ns\":%" PRIu64 "}}\n",
                      sum.recorded, sum.dropped, expected_ops, originNs_);
        if (std::fputs(buf, out_) < 0) ioFailed_ = true;
        if (std::fclose(out_) != 0) ioFailed_ = true;
        out_ = nullptr;
    }

    if (ioFailed_) {
        summary_ = Status::ioError("obs tracer: failed writing trace '" +
                                   cfg_.path + "'");
    } else {
        summary_ = sum;
    }
    return summary_;
}

void
ObsTracer::registerStats(StatGroup& g)
{
    StatGroup& t = g.group("tracer", "span-tracing collector");
    t.addCounter("recorded", "op records drained into the trace",
                 [this] { return recorded(); });
    t.addCounter("dropped", "op records lost to full rings",
                 [this] { return dropped(); });
    t.addCounter("threads", "producer channels registered", [this] {
        std::lock_guard<std::mutex> lg(channelsMx_);
        return static_cast<std::uint64_t>(channels_.size());
    });
    t.addConst("ring_capacity", "per-thread ring capacity (records)",
               JsonValue(std::uint64_t{ceilPow2(cfg_.ringCapacity)}));
}

} // namespace zc
