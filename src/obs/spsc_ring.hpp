/**
 * @file
 * Fixed-capacity single-producer/single-consumer ring buffer for the
 * live-telemetry layer (docs/telemetry.md).
 *
 * One ring per instrumented thread: the worker thread is the only
 * producer, the collector thread the only consumer, so the queue needs
 * exactly two atomic indices (acquire/release pairs) and no locks. A
 * full ring never blocks the producer — tryPush fails, the caller
 * counts a drop, and the hot path moves on. Capacity is rounded up to
 * a power of two so the index math is a mask, not a modulo.
 *
 * The drop counter lives here (relaxed atomic, bumped by the producer,
 * read by the collector) so "emitted + dropped == produced" is a local
 * invariant of each ring, testable without global coordination
 * (tests/test_obs.cpp).
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/log.hpp"

namespace zc {

/** Round @p n up to the next power of two (minimum 2). */
inline std::size_t
ceilPow2(std::size_t n)
{
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
}

template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity)
        : slots_(ceilPow2(capacity)), mask_(slots_.size() - 1)
    {
        zc_assert(capacity > 0);
    }

    std::size_t capacity() const { return slots_.size(); }

    /**
     * Producer side: enqueue @p v, or return false when the ring is
     * full (the caller decides whether that is a counted drop). Never
     * blocks, never allocates.
     */
    bool
    tryPush(const T& v)
    {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        if (head - tail >= slots_.size()) return false;
        slots_[head & mask_] = v;
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer side: dequeue up to @p max items into @p out (appended).
     * Returns the number drained.
     */
    std::size_t
    popBatch(std::vector<T>& out, std::size_t max)
    {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        std::uint64_t n = head - tail;
        if (n > max) n = max;
        for (std::uint64_t i = 0; i < n; i++) {
            out.push_back(slots_[(tail + i) & mask_]);
        }
        tail_.store(tail + n, std::memory_order_release);
        return static_cast<std::size_t>(n);
    }

    /** Items currently queued (approximate from either side). */
    std::size_t
    size() const
    {
        return static_cast<std::size_t>(
            head_.load(std::memory_order_acquire) -
            tail_.load(std::memory_order_acquire));
    }

    /** Producer-side drop tally; read by the consumer at any time. */
    void countDrop() { dropped_.fetch_add(1, std::memory_order_relaxed); }

    std::uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Items the producer successfully enqueued (relaxed tally). */
    void countPush() { pushed_.fetch_add(1, std::memory_order_relaxed); }

    std::uint64_t
    pushed() const
    {
        return pushed_.load(std::memory_order_relaxed);
    }

  private:
    std::vector<T> slots_;
    std::size_t mask_;

    // Producer writes head_, consumer writes tail_; keep them on
    // separate cache lines so the SPSC pair never false-shares.
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    alignas(64) std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> pushed_{0};
};

} // namespace zc
