/**
 * @file
 * Live span tracing for concurrent code paths (docs/telemetry.md).
 *
 * Producers (store worker threads) write one fixed-size ObsOpRecord
 * per operation into a per-thread SPSC ring; a background collector
 * thread drains every ring every few milliseconds and streams the
 * records out as Chrome trace-event JSON — loadable in Perfetto /
 * chrome://tracing — expanding each record into an op span with nested
 * lock_wait / probe / walk child spans and an eviction instant.
 *
 * Invariants the tests pin down (tests/test_obs.cpp):
 *  - the hot path NEVER blocks: a full ring counts a drop and moves on;
 *  - per ring, pushed + dropped == records produced, and the collector
 *    drains every pushed record by the time finish() returns — so
 *    "op spans in the file + dropped == ops" reconciles exactly;
 *  - the fault site `collector.overflow` (docs/robustness.md) forces
 *    the drop path deterministically so the accounting is testable
 *    without actually racing the collector.
 *
 * Threads register lazily: the first record() from a thread allocates
 * its channel. A thread should produce into one tracer at a time —
 * interleaving two live tracers from the same thread is correct but
 * allocates a fresh channel on each switch.
 */

#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats_registry.hpp"
#include "common/status.hpp"
#include "obs/spsc_ring.hpp"
#include "obs/trace_event.hpp"

namespace zc {

struct ObsTracerConfig
{
    /** Chrome trace-event JSON output; empty = count-only (no file). */
    std::string path;

    /** Per-thread ring capacity in records (rounded up to 2^k). */
    std::size_t ringCapacity = 1u << 16;

    /** Collector poll interval while rings are empty. */
    std::uint32_t drainIntervalUs = 2000;

    /** Process label in the trace ("zkv" for the store). */
    std::string processName = "zkv";
};

/** End-of-run accounting returned by ObsTracer::finish(). */
struct ObsSummary
{
    std::uint64_t recorded = 0; ///< records drained into the trace
    std::uint64_t dropped = 0;  ///< records lost to full rings
    std::uint64_t threads = 0;  ///< producer channels registered
};

/**
 * One producer thread's lane: its ring plus identity. Obtained from
 * ObsTracer::channel() (lazily, thread-local) or registerThread().
 */
class ObsThreadChannel
{
  public:
    ObsThreadChannel(std::uint32_t tid, std::string name,
                     std::size_t ring_capacity)
        : tid_(tid), name_(std::move(name)), ring_(ring_capacity)
    {
    }

    /**
     * Producer hot path: enqueue @p rec, counting a drop on a full
     * ring (or when the `collector.overflow` fault site fires).
     * Returns false on drop.
     */
    bool record(const ObsOpRecord& rec);

    std::uint32_t tid() const { return tid_; }
    const std::string& name() const { return name_; }
    std::uint64_t dropped() const { return ring_.dropped(); }
    std::uint64_t pushed() const { return ring_.pushed(); }

  private:
    friend class ObsTracer;

    std::uint32_t tid_;
    std::string name_;
    SpscRing<ObsOpRecord> ring_;
};

class ObsTracer
{
  public:
    explicit ObsTracer(ObsTracerConfig cfg);

    /** Finishes (discarding the summary) if finish() was never called. */
    ~ObsTracer();

    ObsTracer(const ObsTracer&) = delete;
    ObsTracer& operator=(const ObsTracer&) = delete;

    /**
     * The calling thread's channel, created on first use. The pointer
     * stays valid for the tracer's lifetime.
     */
    ObsThreadChannel* channel();

    /** Explicit registration with a display name for the trace. */
    ObsThreadChannel* registerThread(const std::string& name);

    /**
     * Stop the collector, drain every ring to the file, close the
     * JSON document and return the accounting. Producers must have
     * quiesced (no record() in flight) before finish() — the load
     * generator calls it after joining its workers. Idempotent; the
     * second call returns the first call's summary. @p expected_ops,
     * when nonzero, is written into the trace's otherData block so
     * offline tooling (scripts/trace_report.py) can reconcile
     * recorded + dropped == expected without out-of-band data.
     */
    Expected<ObsSummary> finish(std::uint64_t expected_ops = 0);

    /** Records drained so far (collector-side tally). */
    std::uint64_t recorded() const
    {
        return recorded_.load(std::memory_order_relaxed);
    }

    /** Sum of all channels' producer-side drop counters. */
    std::uint64_t dropped() const;

    /**
     * Register collector counters under @p g (events recorded/dropped,
     * channels). Values are live; dump after finish() for finals.
     */
    void registerStats(StatGroup& g);

    const ObsTracerConfig& config() const { return cfg_; }

  private:
    void collectorMain();
    void drainAll(std::vector<ObsOpRecord>& batch);
    void writeRecord(std::uint32_t tid, const ObsOpRecord& rec);
    void writeEvent(const std::string& json);
    void writeMetadata();

    ObsTracerConfig cfg_;
    std::uint64_t id_; ///< process-unique, for the thread-local cache
    std::uint64_t originNs_; ///< ts origin: trace times start near 0

    mutable std::mutex channelsMx_;
    std::vector<std::unique_ptr<ObsThreadChannel>> channels_;

    std::FILE* out_ = nullptr;
    bool wroteEvent_ = false;
    bool ioFailed_ = false;

    std::atomic<std::uint64_t> recorded_{0};
    std::atomic<bool> stop_{false};
    std::thread collector_;

    bool finished_ = false;
    Expected<ObsSummary> summary_ = ObsSummary{};
};

} // namespace zc
