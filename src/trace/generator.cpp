#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/bitops.hpp"

namespace zc {

// ---------------------------------------------------------------------
// ZipfGenerator
// ---------------------------------------------------------------------

ZipfGenerator::ZipfGenerator(Addr base, std::uint64_t footprint_lines,
                             double alpha, std::uint64_t seed)
    : base_(base), footprint_(footprint_lines), rng_(seed)
{
    zc_assert(footprint_lines > 0);
    zc_assert(alpha >= 0.0);

    // Cumulative Zipf weights for inverse-transform sampling. For large
    // footprints the table is capped and the tail treated as uniform:
    // beyond a few hundred thousand lines the per-line probabilities are
    // indistinguishable from uniform anyway.
    std::uint64_t table = std::min<std::uint64_t>(footprint_lines, 1u << 20);
    cdf_.resize(table);
    double acc = 0.0;
    for (std::uint64_t i = 0; i < table; i++) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf_[i] = acc;
    }
    for (auto& v : cdf_) v /= acc;

    // Affine permutation spreads rank order over the address region so
    // the hot set is not a contiguous prefix (which would be unnaturally
    // kind to bit-select indexing). The multiplier must be odd.
    permMul_ = (seed | 1) * 0x9e3779b97f4a7c15ULL | 1;
    permAdd_ = seed * 0xbf58476d1ce4e5b9ULL;
}

MemRecord
ZipfGenerator::next()
{
    double u = rng_.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::distance(cdf_.begin(), it));
    if (rank >= cdf_.size()) rank = cdf_.size() - 1;
    std::uint64_t line = (rank * permMul_ + permAdd_) % footprint_;
    MemRecord r;
    r.lineAddr = base_ + line;
    return r;
}

// ---------------------------------------------------------------------
// PointerChaseGenerator
// ---------------------------------------------------------------------

PointerChaseGenerator::PointerChaseGenerator(Addr base,
                                             std::uint64_t footprint_lines,
                                             std::uint64_t seed,
                                             std::uint32_t accesses_per_node)
    : base_(base), repeat_(accesses_per_node)
{
    zc_assert(accesses_per_node >= 1);
    zc_assert(footprint_lines >= 2);
    zc_assert(footprint_lines <= 0xffffffffULL);

    // Sattolo's algorithm builds a single cycle through all lines, so
    // the chase touches the whole footprint before any reuse.
    auto n = static_cast<std::uint32_t>(footprint_lines);
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; i++) perm[i] = i;
    Pcg32 rng(seed);
    for (std::uint32_t i = n - 1; i > 0; i--) {
        std::uint32_t j = rng.below(i);
        std::swap(perm[i], perm[j]);
    }
    nextIdx_.resize(n);
    for (std::uint32_t i = 0; i + 1 < n; i++) nextIdx_[perm[i]] = perm[i + 1];
    nextIdx_[perm[n - 1]] = perm[0];
    cur_ = perm[0];
}

MemRecord
PointerChaseGenerator::next()
{
    MemRecord r;
    r.lineAddr = base_ + cur_;
    if (++emitted_ >= repeat_) {
        emitted_ = 0;
        cur_ = nextIdx_[cur_];
    }
    return r;
}

void
PointerChaseGenerator::skip(std::uint64_t steps)
{
    // A jump of `steps mod n` suffices: the chase is one n-cycle.
    steps %= nextIdx_.size();
    for (std::uint64_t i = 0; i < steps; i++) cur_ = nextIdx_[cur_];
}

// ---------------------------------------------------------------------
// CompositeGenerator
// ---------------------------------------------------------------------

CompositeGenerator::CompositeGenerator(std::vector<MixComponent> components,
                                       double store_frac,
                                       double mean_inst_gap,
                                       std::uint64_t seed)
    : components_(std::move(components)),
      storeFrac_(store_frac),
      meanInstGap_(mean_inst_gap),
      rng_(seed, /*stream=*/0x1405b3ca7dd4cc2bULL)
{
    zc_assert(!components_.empty());
    zc_assert(store_frac >= 0.0 && store_frac <= 1.0);
    zc_assert(mean_inst_gap >= 0.0);
    double acc = 0.0;
    for (const auto& c : components_) {
        zc_assert(c.weight > 0.0);
        acc += c.weight;
        cumWeights_.push_back(acc);
    }
    for (auto& w : cumWeights_) w /= acc;
}

MemRecord
CompositeGenerator::next()
{
    double u = rng_.uniform();
    std::size_t pick = 0;
    while (pick + 1 < cumWeights_.size() && u > cumWeights_[pick]) pick++;

    MemRecord r = components_[pick].gen->next();
    r.type = (rng_.uniform() < storeFrac_) ? AccessType::Store
                                           : AccessType::Load;

    // Geometric gap with the requested mean: p = 1/(1+mean).
    if (meanInstGap_ > 0.0) {
        double p = 1.0 / (1.0 + meanInstGap_);
        double v = rng_.uniform();
        auto gap = static_cast<std::uint32_t>(
            std::log(1.0 - v) / std::log(1.0 - p));
        r.instGap = std::min<std::uint32_t>(gap, 10000);
    } else {
        r.instGap = 0;
    }
    return r;
}

} // namespace zc
