/**
 * @file
 * The 72-workload suite (paper Section V).
 *
 * Mirrors the paper's workload population:
 *  -  6 PARSEC multithreaded applications,
 *  - 10 SPEC OMP multithreaded applications (all but galgel),
 *  - 26 SPEC CPU2006 programs run rate-style (same program on all 32
 *    cores, private address spaces),
 *  - 30 random CPU2006 mixes (32 programs drawn with repetition).
 *
 * Each profile is a parameterized synthetic stream (see generator.hpp)
 * whose structure — hot-set size and skew, streaming footprint and
 * stride, pointer-chase footprint, store fraction, memory intensity,
 * sharing — is chosen to mimic the published memory behaviour of the
 * named benchmark. The names keep the paper's identities (wupwise/apsi
 * are the pathological-stride outliers of Fig. 3a, canneal/cactusADM/mcf
 * are L2-miss-intensive, gamess/ammp are L2-hit-heavy, blackscholes
 * barely touches L2, and so on).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/generator.hpp"

namespace zc {

/** Structure of one program's reference stream. */
struct StreamParams
{
    std::uint64_t hotLines = 0; ///< Zipf hot-set size (0 = none)
    double hotAlpha = 1.0;      ///< Zipf skew
    double hotWeight = 0.0;

    std::uint64_t streamLines = 0; ///< streaming footprint (0 = none)
    std::uint64_t stride = 1;      ///< stream stride in lines
    double streamWeight = 0.0;
    std::uint32_t streamRepeat = 4; ///< accesses per streamed line

    std::uint64_t chaseLines = 0; ///< pointer-chase footprint (0 = none)
    double chaseWeight = 0.0;
    std::uint32_t chaseRepeat = 1; ///< accesses per chased node

    double storeFrac = 0.3;
    double meanInstGap = 5.0; ///< non-mem instructions per access (mean)
};

enum class WorkloadCategory {
    Parsec,
    SpecOmp,
    Spec2006Rate,
    Spec2006Mix,
};

struct WorkloadProfile
{
    std::string name;
    WorkloadCategory category;

    /** Threads share one address space (plus a shared region). */
    bool multithreaded = false;

    /** Fraction of references into the shared region (multithreaded). */
    double sharedFrac = 0.0;

    /** Stream structure (single-app profiles). */
    StreamParams params;

    /** For mixes: per-core CPU2006 program names (index mod size). */
    std::vector<std::string> mixApps;
};

class WorkloadRegistry
{
  public:
    /** All 72 profiles, in paper order (PARSEC, OMP, rate, mixes). */
    static const std::vector<WorkloadProfile>& all();

    /**
     * Profile by name; throws StatusError(NotFound) with a structured
     * diagnostic if unknown — a sweep point naming a bad workload
     * fails alone instead of killing the process.
     */
    static const WorkloadProfile& byName(const std::string& name);

    /** Profile by name without throwing; nullptr when unknown. */
    static const WorkloadProfile* find(const std::string& name);

    /** The 26 single-program CPU2006 profiles (used to build mixes). */
    static const std::vector<WorkloadProfile>& spec2006();

    /**
     * Force the lazily-built profile tables to exist. all() and
     * spec2006() use function-local statics whose initialization is
     * already thread-safe, but the parallel sweep runner calls this
     * before spawning workers so no job ever blocks on (or contends
     * for) first-use construction — lookups from worker threads are
     * then pure reads of immutable data.
     */
    static void prime();

    /**
     * Build core @p core_id's generator for @p profile on a
     * @p num_cores-CMP. Deterministic under @p seed.
     */
    static GeneratorPtr makeCoreGenerator(const WorkloadProfile& profile,
                                          std::uint32_t core_id,
                                          std::uint32_t num_cores,
                                          std::uint64_t seed);

  private:
    static GeneratorPtr makeStream(const StreamParams& p, Addr private_base,
                                   Addr shared_base, double shared_frac,
                                   std::uint64_t seed,
                                   std::uint64_t chase_stagger);
};

} // namespace zc
