#include "trace/trace_io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <new>

#include "common/crc32.hpp"
#include "common/fault_injection.hpp"

namespace zc {

namespace {

struct FileCloser
{
    void operator()(std::FILE* f) const
    {
        if (f) std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/** On-disk record layout (packed, little-endian host assumed). */
struct DiskRecord
{
    std::uint64_t lineAddr;
    std::uint64_t nextUse;
    std::uint32_t instGap;
    std::uint8_t type;
    std::uint8_t pad[3];
};

static_assert(sizeof(DiskRecord) == 24, "stable on-disk layout");

struct Header
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
};

static_assert(sizeof(Header) == 16, "stable on-disk layout");

struct Footer
{
    std::uint32_t crc;
    std::uint32_t magic;
};

static_assert(sizeof(Footer) == 8, "stable on-disk layout");

std::string
describe(const std::string& path, std::uint64_t offset,
         const std::string& what)
{
    return "trace file '" + path + "': " + what + " (byte offset " +
           std::to_string(offset) + ")";
}

/**
 * fwrite with the "trace.write.short_write" fault probe: an injected
 * fault drops the final item, which callers observe as a short write —
 * exactly what a full disk or yanked mount produces.
 */
std::size_t
fwriteFaulty(const void* p, std::size_t size, std::size_t n, std::FILE* f)
{
    if (n > 0 && ZC_INJECT_FAULT("trace.write.short_write")) n -= 1;
    return std::fwrite(p, size, n, f);
}

/** fread with the matching "trace.read.short_read" probe. */
std::size_t
freadFaulty(void* p, std::size_t size, std::size_t n, std::FILE* f)
{
    if (n > 0 && ZC_INJECT_FAULT("trace.read.short_read")) n -= 1;
    return std::fread(p, size, n, f);
}

/** The on-disk size of a trace with @p count records at @p version. */
std::uint64_t
expectedFileSize(std::uint32_t version, std::uint64_t count)
{
    std::uint64_t n = sizeof(Header) + count * sizeof(DiskRecord);
    if (version >= 2) n += sizeof(Footer);
    return n;
}

} // namespace

Status
TraceIo::write(const std::string& path,
               const std::vector<MemRecord>& records)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f || ZC_INJECT_FAULT("trace.write.open")) {
        return Status::ioError("cannot open trace file '" + path +
                               "' for writing: " + std::strerror(errno));
    }

    Crc32 crc;
    std::uint64_t offset = 0;

    Header h{kMagic, kVersion, records.size()};
    if (fwriteFaulty(&h, sizeof h, 1, f.get()) != 1) {
        return Status::ioError(
            describe(path, offset, "header write failed"));
    }
    crc.update(&h, sizeof h);
    offset += sizeof h;

    // Buffered block writes.
    constexpr std::size_t kChunk = 4096;
    std::vector<DiskRecord> buf;
    buf.reserve(kChunk);
    auto flush = [&]() -> Status {
        if (buf.empty()) return Status::ok();
        if (fwriteFaulty(buf.data(), sizeof(DiskRecord), buf.size(),
                         f.get()) != buf.size()) {
            return Status::ioError(
                describe(path, offset, "record write failed"));
        }
        crc.update(buf.data(), buf.size() * sizeof(DiskRecord));
        offset += buf.size() * sizeof(DiskRecord);
        buf.clear();
        return Status::ok();
    };

    for (const MemRecord& r : records) {
        DiskRecord d{};
        d.lineAddr = r.lineAddr;
        d.nextUse = r.nextUse;
        d.instGap = r.instGap;
        d.type = static_cast<std::uint8_t>(r.type);
        buf.push_back(d);
        if (buf.size() == kChunk) {
            if (Status s = flush(); !s.isOk()) return s;
        }
    }
    if (Status s = flush(); !s.isOk()) return s;

    Footer foot{crc.value(), kFooterMagic};
    if (fwriteFaulty(&foot, sizeof foot, 1, f.get()) != 1) {
        return Status::ioError(
            describe(path, offset, "footer write failed"));
    }
    if (std::fflush(f.get()) != 0) {
        return Status::ioError("trace file '" + path +
                               "': flush failed: " + std::strerror(errno));
    }
    return Status::ok();
}

Expected<std::vector<MemRecord>>
TraceIo::read(const std::string& path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        return Status::ioError("cannot open trace file '" + path +
                               "' for reading: " + std::strerror(errno));
    }

    // File size first: v2 headers declare the payload, and the two must
    // agree *before* any allocation happens — a corrupt count field must
    // not translate into a massive reserve().
    if (std::fseek(f.get(), 0, SEEK_END) != 0) {
        return Status::ioError(
            describe(path, 0, "cannot determine file size"));
    }
    long end = std::ftell(f.get());
    if (end < 0) {
        return Status::ioError(
            describe(path, 0, "cannot determine file size"));
    }
    auto file_size = static_cast<std::uint64_t>(end);
    std::rewind(f.get());

    Header h{};
    if (file_size < sizeof h ||
        freadFaulty(&h, sizeof h, 1, f.get()) != 1) {
        return Status::truncated(describe(
            path, file_size,
            "file ends inside the " + std::to_string(sizeof h) +
                "-byte header"));
    }
    if (h.magic != kMagic) {
        return Status::corruption(
            describe(path, 0, "not a zcache trace file (bad magic)"));
    }
    if (h.version != 1 && h.version != kVersion) {
        return Status::unsupported(describe(
            path, 4,
            "unsupported trace version " + std::to_string(h.version) +
                " (this build reads v1 and v2)"));
    }

    std::uint64_t expected = expectedFileSize(h.version, h.count);
    if (file_size < expected) {
        return Status::truncated(describe(
            path, file_size,
            "header declares " + std::to_string(h.count) +
                " records (" + std::to_string(expected) +
                " bytes) but the file holds only " +
                std::to_string(file_size)));
    }
    if (file_size > expected) {
        return Status::corruption(describe(
            path, expected,
            "payload length disagrees with the record count: header "
            "declares " +
                std::to_string(h.count) + " records (" +
                std::to_string(expected) + " bytes) but the file holds " +
                std::to_string(file_size)));
    }

    Crc32 crc;
    crc.update(&h, sizeof h);

    std::vector<MemRecord> out;
    if (ZC_INJECT_FAULT("trace.read.alloc")) {
        return Status::resourceExhausted(
            "trace file '" + path + "': cannot allocate " +
            std::to_string(h.count) + " records");
    }
    try {
        out.reserve(h.count);
    } catch (const std::bad_alloc&) {
        return Status::resourceExhausted(
            "trace file '" + path + "': cannot allocate " +
            std::to_string(h.count) + " records");
    }

    constexpr std::size_t kChunk = 4096;
    std::vector<DiskRecord> buf(static_cast<std::size_t>(
        std::min<std::uint64_t>(kChunk, std::max<std::uint64_t>(h.count, 1))));
    std::uint64_t remaining = h.count;
    std::uint64_t offset = sizeof h;
    while (remaining > 0) {
        std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(kChunk, remaining));
        std::size_t got =
            freadFaulty(buf.data(), sizeof(DiskRecord), want, f.get());
        if (got != want) {
            return Status::truncated(describe(
                path, offset + got * sizeof(DiskRecord),
                "record region short read (" + std::to_string(remaining) +
                    " of " + std::to_string(h.count) +
                    " records outstanding)"));
        }
        crc.update(buf.data(), want * sizeof(DiskRecord));
        for (std::size_t i = 0; i < want; i++) {
            MemRecord r;
            r.lineAddr = buf[i].lineAddr;
            r.nextUse = buf[i].nextUse;
            r.instGap = buf[i].instGap;
            r.type = static_cast<AccessType>(buf[i].type);
            out.push_back(r);
        }
        remaining -= want;
        offset += want * sizeof(DiskRecord);
    }

    if (h.version >= 2) {
        Footer foot{};
        if (freadFaulty(&foot, sizeof foot, 1, f.get()) != 1) {
            return Status::truncated(
                describe(path, offset, "file ends inside the footer"));
        }
        if (foot.magic != kFooterMagic) {
            return Status::corruption(describe(
                path, offset + offsetof(Footer, magic),
                "bad footer magic"));
        }
        if (foot.crc != crc.value()) {
            char want[16], got[16];
            std::snprintf(want, sizeof want, "%08x", crc.value());
            std::snprintf(got, sizeof got, "%08x", foot.crc);
            return Status::corruption(describe(
                path, offset,
                std::string("CRC-32 mismatch: computed ") + want +
                    ", footer records " + got +
                    " — the payload is bit-corrupted"));
        }
    }
    return out;
}

} // namespace zc
