#include "trace/trace_io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <new>

#include "common/crc32.hpp"
#include "common/fault_injection.hpp"

namespace zc {

namespace {

struct FileCloser
{
    void operator()(std::FILE* f) const
    {
        if (f) std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/** On-disk record layout (packed, little-endian host assumed). */
struct DiskRecord
{
    std::uint64_t lineAddr;
    std::uint64_t nextUse;
    std::uint32_t instGap;
    std::uint8_t type;
    std::uint8_t pad[3];
};

static_assert(sizeof(DiskRecord) == 24, "stable on-disk layout");

struct Header
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
};

static_assert(sizeof(Header) == 16, "stable on-disk layout");

struct Footer
{
    std::uint32_t crc;
    std::uint32_t magic;
};

static_assert(sizeof(Footer) == 8, "stable on-disk layout");

std::string
describe(const std::string& path, std::uint64_t offset,
         const std::string& what)
{
    return "trace file '" + path + "': " + what + " (byte offset " +
           std::to_string(offset) + ")";
}

/**
 * fwrite with the "trace.write.short_write" fault probe: an injected
 * fault drops the final item, which callers observe as a short write —
 * exactly what a full disk or yanked mount produces.
 */
std::size_t
fwriteFaulty(const void* p, std::size_t size, std::size_t n, std::FILE* f)
{
    if (n > 0 && ZC_INJECT_FAULT("trace.write.short_write")) n -= 1;
    return std::fwrite(p, size, n, f);
}

/** fread with the matching "trace.read.short_read" probe. */
std::size_t
freadFaulty(void* p, std::size_t size, std::size_t n, std::FILE* f)
{
    if (n > 0 && ZC_INJECT_FAULT("trace.read.short_read")) n -= 1;
    return std::fread(p, size, n, f);
}

/** The on-disk size of a trace with @p count records at @p version. */
std::uint64_t
expectedFileSize(std::uint32_t version, std::uint64_t count)
{
    std::uint64_t n = sizeof(Header) + count * sizeof(DiskRecord);
    if (version >= 2) n += sizeof(Footer);
    return n;
}

/** Records per buffered disk transfer (streaming read refills). */
constexpr std::size_t kReadChunk = 4096;

} // namespace

Status
TraceIo::write(const std::string& path,
               const std::vector<MemRecord>& records)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f || ZC_INJECT_FAULT("trace.write.open")) {
        return Status::ioError("cannot open trace file '" + path +
                               "' for writing: " + std::strerror(errno));
    }

    Crc32 crc;
    std::uint64_t offset = 0;

    Header h{kMagic, kVersion, records.size()};
    if (fwriteFaulty(&h, sizeof h, 1, f.get()) != 1) {
        return Status::ioError(
            describe(path, offset, "header write failed"));
    }
    crc.update(&h, sizeof h);
    offset += sizeof h;

    // Buffered block writes.
    constexpr std::size_t kChunk = 4096;
    std::vector<DiskRecord> buf;
    buf.reserve(kChunk);
    auto flush = [&]() -> Status {
        if (buf.empty()) return Status::ok();
        if (fwriteFaulty(buf.data(), sizeof(DiskRecord), buf.size(),
                         f.get()) != buf.size()) {
            return Status::ioError(
                describe(path, offset, "record write failed"));
        }
        crc.update(buf.data(), buf.size() * sizeof(DiskRecord));
        offset += buf.size() * sizeof(DiskRecord);
        buf.clear();
        return Status::ok();
    };

    for (const MemRecord& r : records) {
        DiskRecord d{};
        d.lineAddr = r.lineAddr;
        d.nextUse = r.nextUse;
        d.instGap = r.instGap;
        d.type = static_cast<std::uint8_t>(r.type);
        buf.push_back(d);
        if (buf.size() == kChunk) {
            if (Status s = flush(); !s.isOk()) return s;
        }
    }
    if (Status s = flush(); !s.isOk()) return s;

    Footer foot{crc.value(), kFooterMagic};
    if (fwriteFaulty(&foot, sizeof foot, 1, f.get()) != 1) {
        return Status::ioError(
            describe(path, offset, "footer write failed"));
    }
    if (std::fflush(f.get()) != 0) {
        return Status::ioError("trace file '" + path +
                               "': flush failed: " + std::strerror(errno));
    }
    return Status::ok();
}

struct TraceReader::Impl
{
    FilePtr f;
    std::string path;
    Crc32 crc;
    std::vector<DiskRecord> buf; ///< fixed chunk; RSS-independent of count
    std::size_t bufPos = 0;
    std::size_t bufLen = 0;
    std::uint64_t remaining = 0; ///< records not yet read from disk
    std::uint64_t offset = 0;    ///< byte offset of the next disk read
    bool done = false;           ///< clean end-of-trace delivered
};

TraceReader::TraceReader() : impl_(std::make_unique<Impl>()) {}

TraceReader::~TraceReader() = default;

Status
TraceReader::open(const std::string& path)
{
    Impl& im = *impl_;
    im.path = path;
    im.f.reset(std::fopen(path.c_str(), "rb"));
    if (!im.f) {
        return Status::ioError("cannot open trace file '" + path +
                               "' for reading: " + std::strerror(errno));
    }

    // File size first: v2 headers declare the payload, and the two must
    // agree *before* any allocation happens — a corrupt count field must
    // not translate into a massive reserve().
    if (std::fseek(im.f.get(), 0, SEEK_END) != 0) {
        return Status::ioError(
            describe(path, 0, "cannot determine file size"));
    }
    long end = std::ftell(im.f.get());
    if (end < 0) {
        return Status::ioError(
            describe(path, 0, "cannot determine file size"));
    }
    auto file_size = static_cast<std::uint64_t>(end);
    std::rewind(im.f.get());

    Header h{};
    if (file_size < sizeof h ||
        freadFaulty(&h, sizeof h, 1, im.f.get()) != 1) {
        return Status::truncated(describe(
            path, file_size,
            "file ends inside the " + std::to_string(sizeof h) +
                "-byte header"));
    }
    if (h.magic != TraceIo::kMagic) {
        return Status::corruption(
            describe(path, 0, "not a zcache trace file (bad magic)"));
    }
    if (h.version != 1 && h.version != TraceIo::kVersion) {
        return Status::unsupported(describe(
            path, 4,
            "unsupported trace version " + std::to_string(h.version) +
                " (this build reads v1 and v2)"));
    }

    std::uint64_t expected = expectedFileSize(h.version, h.count);
    if (file_size < expected) {
        return Status::truncated(describe(
            path, file_size,
            "header declares " + std::to_string(h.count) +
                " records (" + std::to_string(expected) +
                " bytes) but the file holds only " +
                std::to_string(file_size)));
    }
    if (file_size > expected) {
        return Status::corruption(describe(
            path, expected,
            "payload length disagrees with the record count: header "
            "declares " +
                std::to_string(h.count) + " records (" +
                std::to_string(expected) + " bytes) but the file holds " +
                std::to_string(file_size)));
    }

    im.crc.update(&h, sizeof h);
    im.buf.resize(static_cast<std::size_t>(std::min<std::uint64_t>(
        kReadChunk, std::max<std::uint64_t>(h.count, 1))));
    im.remaining = h.count;
    im.offset = sizeof h;
    count_ = h.count;
    version_ = h.version;
    consumed_ = 0;
    return Status::ok();
}

Expected<bool>
TraceReader::next(MemRecord& out)
{
    Impl& im = *impl_;
    if (im.done) return false;

    if (im.bufPos == im.bufLen) {
        if (im.remaining == 0) {
            // End of the record region: v2 proves integrity here.
            if (version_ >= 2) {
                Footer foot{};
                if (freadFaulty(&foot, sizeof foot, 1, im.f.get()) != 1) {
                    return Status::truncated(describe(
                        im.path, im.offset, "file ends inside the footer"));
                }
                if (foot.magic != TraceIo::kFooterMagic) {
                    return Status::corruption(
                        describe(im.path, im.offset + offsetof(Footer, magic),
                                 "bad footer magic"));
                }
                if (foot.crc != im.crc.value()) {
                    char want[16], got[16];
                    std::snprintf(want, sizeof want, "%08x",
                                  im.crc.value());
                    std::snprintf(got, sizeof got, "%08x", foot.crc);
                    return Status::corruption(describe(
                        im.path, im.offset,
                        std::string("CRC-32 mismatch: computed ") + want +
                            ", footer records " + got +
                            " — the payload is bit-corrupted"));
                }
            }
            im.done = true;
            return false;
        }
        std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(kReadChunk, im.remaining));
        std::size_t got = freadFaulty(im.buf.data(), sizeof(DiskRecord),
                                      want, im.f.get());
        if (got != want) {
            return Status::truncated(describe(
                im.path, im.offset + got * sizeof(DiskRecord),
                "record region short read (" + std::to_string(im.remaining) +
                    " of " + std::to_string(count_) +
                    " records outstanding)"));
        }
        im.crc.update(im.buf.data(), want * sizeof(DiskRecord));
        im.remaining -= want;
        im.offset += want * sizeof(DiskRecord);
        im.bufPos = 0;
        im.bufLen = want;
    }

    const DiskRecord& d = im.buf[im.bufPos++];
    out.lineAddr = d.lineAddr;
    out.nextUse = d.nextUse;
    out.instGap = d.instGap;
    out.type = static_cast<AccessType>(d.type);
    consumed_++;
    return true;
}

Expected<std::vector<MemRecord>>
TraceIo::read(const std::string& path)
{
    TraceReader reader;
    if (Status s = reader.open(path); !s.isOk()) return s;

    std::vector<MemRecord> out;
    if (ZC_INJECT_FAULT("trace.read.alloc")) {
        return Status::resourceExhausted(
            "trace file '" + path + "': cannot allocate " +
            std::to_string(reader.count()) + " records");
    }
    try {
        out.reserve(reader.count());
    } catch (const std::bad_alloc&) {
        return Status::resourceExhausted(
            "trace file '" + path + "': cannot allocate " +
            std::to_string(reader.count()) + " records");
    }

    MemRecord r;
    for (;;) {
        auto got = reader.next(r);
        if (!got) return got.status();
        if (!*got) break;
        out.push_back(r);
    }
    return out;
}

} // namespace zc
