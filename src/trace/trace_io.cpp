#include "trace/trace_io.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/log.hpp"

namespace zc {

namespace {

struct FileCloser
{
    void operator()(std::FILE* f) const
    {
        if (f) std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/** On-disk record layout (packed, little-endian host assumed). */
struct DiskRecord
{
    std::uint64_t lineAddr;
    std::uint64_t nextUse;
    std::uint32_t instGap;
    std::uint8_t type;
    std::uint8_t pad[3];
};

static_assert(sizeof(DiskRecord) == 24, "stable on-disk layout");

struct Header
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
};

} // namespace

void
TraceIo::write(const std::string& path,
               const std::vector<MemRecord>& records)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f) zc_fatal("cannot open trace file for writing");

    Header h{kMagic, kVersion, records.size()};
    if (std::fwrite(&h, sizeof h, 1, f.get()) != 1) {
        zc_fatal("trace header write failed");
    }

    // Buffered block writes.
    constexpr std::size_t kChunk = 4096;
    std::vector<DiskRecord> buf;
    buf.reserve(kChunk);
    for (const MemRecord& r : records) {
        DiskRecord d{};
        d.lineAddr = r.lineAddr;
        d.nextUse = r.nextUse;
        d.instGap = r.instGap;
        d.type = static_cast<std::uint8_t>(r.type);
        buf.push_back(d);
        if (buf.size() == kChunk) {
            if (std::fwrite(buf.data(), sizeof(DiskRecord), buf.size(),
                            f.get()) != buf.size()) {
                zc_fatal("trace write failed");
            }
            buf.clear();
        }
    }
    if (!buf.empty() &&
        std::fwrite(buf.data(), sizeof(DiskRecord), buf.size(), f.get()) !=
            buf.size()) {
        zc_fatal("trace write failed");
    }
}

std::vector<MemRecord>
TraceIo::read(const std::string& path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f) zc_fatal("cannot open trace file for reading");

    Header h{};
    if (std::fread(&h, sizeof h, 1, f.get()) != 1) {
        zc_fatal("trace header read failed");
    }
    if (h.magic != kMagic) zc_fatal("not a zcache trace file");
    if (h.version != kVersion) zc_fatal("unsupported trace version");

    std::vector<MemRecord> out;
    out.reserve(h.count);
    constexpr std::size_t kChunk = 4096;
    std::vector<DiskRecord> buf(kChunk);
    std::uint64_t remaining = h.count;
    while (remaining > 0) {
        std::size_t want =
            static_cast<std::size_t>(std::min<std::uint64_t>(kChunk,
                                                             remaining));
        if (std::fread(buf.data(), sizeof(DiskRecord), want, f.get()) !=
            want) {
            zc_fatal("trace truncated");
        }
        for (std::size_t i = 0; i < want; i++) {
            MemRecord r;
            r.lineAddr = buf[i].lineAddr;
            r.nextUse = buf[i].nextUse;
            r.instGap = buf[i].instGap;
            r.type = static_cast<AccessType>(buf[i].type);
            out.push_back(r);
        }
        remaining -= want;
    }
    return out;
}

} // namespace zc
