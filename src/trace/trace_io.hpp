/**
 * @file
 * Binary trace files.
 *
 * Lets users capture reference streams once (from the synthetic
 * generators or from external tools converted to this format) and
 * replay them — e.g. to run OPT against a real application trace, the
 * paper's trace-driven mode. Format: a fixed header followed by packed
 * little-endian records (address, type, instruction gap, next-use).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/mem_record.hpp"

namespace zc {

class TraceIo
{
  public:
    static constexpr std::uint32_t kMagic = 0x5243545Au; // "ZTCR"
    static constexpr std::uint32_t kVersion = 1;

    /** Write @p records to @p path; fatal on I/O failure. */
    static void write(const std::string& path,
                      const std::vector<MemRecord>& records);

    /** Read a trace written by write(); fatal on malformed input. */
    static std::vector<MemRecord> read(const std::string& path);
};

} // namespace zc
