/**
 * @file
 * Binary trace files.
 *
 * Lets users capture reference streams once (from the synthetic
 * generators or from external tools converted to this format) and
 * replay them — e.g. to run OPT against a real application trace, the
 * paper's trace-driven mode.
 *
 * Format v2 (docs/robustness.md):
 *
 *   Header  { magic "ZTCR", version = 2, record count }   16 bytes
 *   Records packed little-endian 24-byte entries
 *           (address, next-use, instruction gap, type)
 *   Footer  { CRC-32 of header + records, magic "ZTCE" }   8 bytes
 *
 * The count lets a reader size the payload before allocating; the CRC
 * detects bit corruption; both together detect truncation with exact
 * byte-offset diagnostics. v1 files (no footer) remain readable.
 *
 * All failure paths are structured (common/status.hpp): read/write
 * report what went wrong and where instead of killing the process, so
 * a sweep job replaying a corrupt trace fails alone.
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "trace/mem_record.hpp"

namespace zc {

class TraceIo
{
  public:
    static constexpr std::uint32_t kMagic = 0x5243545Au;       // "ZTCR"
    static constexpr std::uint32_t kFooterMagic = 0x4543545Au; // "ZTCE"
    static constexpr std::uint32_t kVersion = 2;

    /** Write @p records to @p path (v2: count header + CRC footer). */
    static Status write(const std::string& path,
                        const std::vector<MemRecord>& records);

    /**
     * Read a trace written by write() — v2 or legacy v1. Returns a
     * structured error (path, byte offset, expected vs actual) on
     * missing files, foreign content, truncation, length/count
     * disagreement, or CRC mismatch.
     *
     * Materializes the whole trace; replay paths that only need one
     * record at a time should stream through TraceReader instead and
     * keep peak RSS independent of trace length.
     */
    static Expected<std::vector<MemRecord>> read(const std::string& path);
};

/**
 * Streaming trace reader: constant-memory record-at-a-time access to a
 * v1/v2 trace file with exactly TraceIo::read's validation and
 * diagnostics. open() checks magic/version and that the declared record
 * count agrees with the file size *before* anything is consumed; next()
 * refills a small fixed chunk buffer from disk; for v2 files the
 * CRC-32 footer is verified when the last record has been delivered, so
 * a fully drained stream gives the same corruption guarantees as the
 * materializing read. (Streaming necessarily hands out records before
 * the trailing CRC is seen — only the *end* of the stream proves
 * integrity of the whole.)
 *
 * TraceIo::read() is a thin wrapper: open + drain into a vector.
 */
class TraceReader
{
  public:
    TraceReader();
    ~TraceReader();

    TraceReader(const TraceReader&) = delete;
    TraceReader& operator=(const TraceReader&) = delete;

    /** Open @p path and validate header, size and version. */
    Status open(const std::string& path);

    /** Records the header declares (valid after open()). */
    std::uint64_t count() const { return count_; }

    /** On-disk format version, 1 or 2 (valid after open()). */
    std::uint32_t version() const { return version_; }

    /** Records handed out so far. */
    std::uint64_t consumed() const { return consumed_; }

    /**
     * Pull the next record into @p out. Returns true on success, false
     * at clean end-of-trace (v2: footer magic and CRC verified), or a
     * structured error on truncation/corruption mid-stream.
     */
    Expected<bool> next(MemRecord& out);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    std::uint64_t count_ = 0;
    std::uint32_t version_ = 0;
    std::uint64_t consumed_ = 0;
};

} // namespace zc
