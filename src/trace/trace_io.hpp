/**
 * @file
 * Binary trace files.
 *
 * Lets users capture reference streams once (from the synthetic
 * generators or from external tools converted to this format) and
 * replay them — e.g. to run OPT against a real application trace, the
 * paper's trace-driven mode.
 *
 * Format v2 (docs/robustness.md):
 *
 *   Header  { magic "ZTCR", version = 2, record count }   16 bytes
 *   Records packed little-endian 24-byte entries
 *           (address, next-use, instruction gap, type)
 *   Footer  { CRC-32 of header + records, magic "ZTCE" }   8 bytes
 *
 * The count lets a reader size the payload before allocating; the CRC
 * detects bit corruption; both together detect truncation with exact
 * byte-offset diagnostics. v1 files (no footer) remain readable.
 *
 * All failure paths are structured (common/status.hpp): read/write
 * report what went wrong and where instead of killing the process, so
 * a sweep job replaying a corrupt trace fails alone.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "trace/mem_record.hpp"

namespace zc {

class TraceIo
{
  public:
    static constexpr std::uint32_t kMagic = 0x5243545Au;       // "ZTCR"
    static constexpr std::uint32_t kFooterMagic = 0x4543545Au; // "ZTCE"
    static constexpr std::uint32_t kVersion = 2;

    /** Write @p records to @p path (v2: count header + CRC footer). */
    static Status write(const std::string& path,
                        const std::vector<MemRecord>& records);

    /**
     * Read a trace written by write() — v2 or legacy v1. Returns a
     * structured error (path, byte offset, expected vs actual) on
     * missing files, foreign content, truncation, length/count
     * disagreement, or CRC mismatch.
     */
    static Expected<std::vector<MemRecord>> read(const std::string& path);
};

} // namespace zc
