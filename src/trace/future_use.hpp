/**
 * @file
 * OPT oracle support: next-use annotation and trace replay.
 *
 * OPT (Section VI-B) needs each access to know when its line will next
 * be referenced. The annotator computes that in one backward pass over a
 * pre-generated trace; ReplayGenerator then feeds the annotated records
 * back to the simulator. Next-use indices are core-local (each core's
 * own stream); see DESIGN.md for why that approximation is faithful to
 * the paper's use of OPT.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/log.hpp"
#include "common/status.hpp"
#include "trace/generator.hpp"
#include "trace/mem_record.hpp"
#include "trace/trace_io.hpp"

namespace zc {

class FutureUseAnnotator
{
  public:
    /**
     * Fill nextUse for every record with the *distance* (in records) to
     * the next access of the same line, or kNoNextUse if never
     * re-referenced. Distances — unlike absolute indices — are
     * comparable across the cores of a CMP, which is what a shared-LLC
     * OPT policy ranks on.
     */
    static void
    annotate(std::vector<MemRecord>& records)
    {
        std::unordered_map<Addr, std::uint64_t> next_seen;
        next_seen.reserve(records.size() / 4 + 16);
        for (std::size_t i = records.size(); i > 0; i--) {
            MemRecord& r = records[i - 1];
            auto it = next_seen.find(r.lineAddr);
            r.nextUse = (it == next_seen.end())
                            ? std::numeric_limits<std::uint64_t>::max()
                            : it->second - (i - 1);
            next_seen[r.lineAddr] = i - 1;
        }
    }
};

/** Replays a pre-generated (typically annotated) record sequence. */
class ReplayGenerator final : public AccessGenerator
{
  public:
    explicit ReplayGenerator(std::vector<MemRecord> records)
        : records_(std::move(records))
    {
        zc_assert(!records_.empty());
    }

    MemRecord
    next() override
    {
        zc_assert(pos_ < records_.size());
        return records_[pos_++];
    }

    std::size_t remaining() const { return records_.size() - pos_; }

  private:
    std::vector<MemRecord> records_;
    std::size_t pos_ = 0;
};

/**
 * Streams records straight off a trace file — the non-OPT replay path.
 * Unlike TraceIo::read + ReplayGenerator, peak RSS stays at one chunk
 * buffer regardless of trace length; only OPT (whose backward
 * future-use pass inherently needs the whole trace) must materialize.
 *
 * AccessGenerator has no error channel, so mid-stream corruption or
 * exhaustion surfaces as a StatusError — the sweep engine already
 * captures those per job (docs/robustness.md).
 */
class StreamedTraceGenerator final : public AccessGenerator
{
  public:
    /** Throws StatusError if @p path fails validation on open. */
    explicit StreamedTraceGenerator(const std::string& path) : path_(path)
    {
        throwIfError(reader_.open(path));
    }

    MemRecord
    next() override
    {
        MemRecord r;
        auto got = reader_.next(r);
        if (!got) throw StatusError(got.status());
        if (!*got) {
            throw StatusError(Status::invalidArgument(
                "trace file '" + path_ + "': stream exhausted after " +
                std::to_string(reader_.consumed()) +
                " records (the simulation asked for more)"));
        }
        return r;
    }

    /** Records the file declares / already delivered. */
    std::uint64_t count() const { return reader_.count(); }
    std::uint64_t consumed() const { return reader_.consumed(); }

  private:
    std::string path_;
    TraceReader reader_;
};

/** Materialize @p n records from @p gen (for annotation or tests). */
inline std::vector<MemRecord>
recordTrace(AccessGenerator& gen, std::size_t n)
{
    std::vector<MemRecord> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++) out.push_back(gen.next());
    return out;
}

} // namespace zc
