/**
 * @file
 * Synthetic access-stream generators.
 *
 * The paper evaluates on PARSEC, SPEC OMP and SPEC CPU2006 under Pin;
 * those binaries and traces are not redistributable, so this module
 * provides parameterized synthetic generators whose streams reproduce
 * the *memory-system-relevant* structure of those suites: working-set
 * size, reuse locality (Zipfian hot sets), streaming/strided components,
 * pointer chasing, pathological set-conflict patterns, store fractions
 * and memory intensity. DESIGN.md documents this substitution.
 *
 * All generators are deterministic under their seed, which both makes
 * experiments reproducible and lets OPT runs regenerate the identical
 * stream for the future-use pass.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/mem_record.hpp"

namespace zc {

class AccessGenerator
{
  public:
    virtual ~AccessGenerator() = default;

    /** Produce the next reference. Streams are infinite. */
    virtual MemRecord next() = 0;
};

using GeneratorPtr = std::unique_ptr<AccessGenerator>;

/**
 * Cyclic strided stream over a region: base, base+s, base+2s, ...
 * wrapping at footprint. stride in lines; stride > 1 with a power-of-two
 * value recreates the classic pathological conflict pattern that
 * unhashed set-associative caches suffer from (wupwise/apsi in Fig. 3a).
 *
 * accesses_per_line models within-line spatial locality: each line is
 * referenced that many times before the stream advances (word-by-word
 * walks hit the L1 after the first touch).
 */
class StridedGenerator final : public AccessGenerator
{
  public:
    StridedGenerator(Addr base, std::uint64_t footprint_lines,
                     std::uint64_t stride_lines = 1,
                     std::uint32_t accesses_per_line = 1)
        : base_(base),
          footprint_(footprint_lines),
          stride_(stride_lines),
          repeat_(accesses_per_line)
    {
        zc_assert(footprint_lines > 0);
        zc_assert(stride_lines > 0);
        zc_assert(accesses_per_line >= 1);
    }

    MemRecord
    next() override
    {
        MemRecord r;
        r.lineAddr = base_ + offset_;
        if (++emitted_ >= repeat_) {
            emitted_ = 0;
            offset_ += stride_;
            if (offset_ >= footprint_) offset_ -= footprint_;
        }
        return r;
    }

  private:
    Addr base_;
    std::uint64_t footprint_;
    std::uint64_t stride_;
    std::uint32_t repeat_;
    std::uint32_t emitted_ = 0;
    std::uint64_t offset_ = 0;
};

/** Uniform random references over a region. */
class UniformRandomGenerator final : public AccessGenerator
{
  public:
    UniformRandomGenerator(Addr base, std::uint64_t footprint_lines,
                           std::uint64_t seed)
        : base_(base), footprint_(footprint_lines), rng_(seed)
    {
        zc_assert(footprint_lines > 0);
    }

    MemRecord
    next() override
    {
        MemRecord r;
        r.lineAddr =
            base_ + rng_.next64() % footprint_;
        return r;
    }

  private:
    Addr base_;
    std::uint64_t footprint_;
    Pcg32 rng_;
};

/**
 * Zipfian references over a region: line i (after a seeded permutation)
 * is drawn with probability proportional to 1/(i+1)^alpha. Models hot
 * working sets with temporal locality — the common case in SPEC-like
 * workloads.
 */
class ZipfGenerator final : public AccessGenerator
{
  public:
    ZipfGenerator(Addr base, std::uint64_t footprint_lines, double alpha,
                  std::uint64_t seed);

    MemRecord next() override;

  private:
    Addr base_;
    std::uint64_t footprint_;
    Pcg32 rng_;
    std::vector<double> cdf_;
    std::uint64_t permMul_;
    std::uint64_t permAdd_;
};

/**
 * Pointer-chase: walks a seeded random permutation cycle over the
 * region, one dependent line per step — canneal/mcf-style behaviour with
 * zero spatial locality and full-footprint reuse distance.
 */
class PointerChaseGenerator final : public AccessGenerator
{
  public:
    /**
     * @param accesses_per_node References per visited node (node
     *        payloads larger than one word are read several times
     *        before following the pointer).
     */
    PointerChaseGenerator(Addr base, std::uint64_t footprint_lines,
                          std::uint64_t seed,
                          std::uint32_t accesses_per_node = 1);

    MemRecord next() override;

    /**
     * Advance the chase by @p steps without emitting records. Lets
     * multiple threads walk the same cycle (same seed) from staggered
     * start points.
     */
    void skip(std::uint64_t steps);

  private:
    Addr base_;
    std::vector<std::uint32_t> nextIdx_;
    std::uint32_t cur_ = 0;
    std::uint32_t repeat_;
    std::uint32_t emitted_ = 0;
};

/** One weighted component of a CompositeGenerator. */
struct MixComponent
{
    GeneratorPtr gen;
    double weight;
};

/**
 * Weighted mixture of sub-streams, plus store fraction and a geometric
 * instruction-gap distribution — the full per-core workload model.
 */
class CompositeGenerator final : public AccessGenerator
{
  public:
    /**
     * @param components Sub-generators with selection weights.
     * @param store_frac Fraction of accesses that are stores.
     * @param mean_inst_gap Mean non-memory instructions between accesses.
     * @param seed Mixer RNG seed.
     */
    CompositeGenerator(std::vector<MixComponent> components,
                       double store_frac, double mean_inst_gap,
                       std::uint64_t seed);

    MemRecord next() override;

  private:
    std::vector<MixComponent> components_;
    std::vector<double> cumWeights_;
    double storeFrac_;
    double meanInstGap_;
    Pcg32 rng_;
};

} // namespace zc
