/**
 * @file
 * Memory-reference trace records.
 *
 * Generators emit line-granular records: the address already has the
 * line offset stripped (64-byte lines throughout, per Table I). instGap
 * is the number of non-memory instructions the core executes before this
 * access — the IPC=1 in-order core model charges one cycle each.
 */

#pragma once

#include <cstdint>
#include <limits>

#include "common/types.hpp"

namespace zc {

enum class AccessType : std::uint8_t {
    Load,
    Store,
};

struct MemRecord
{
    Addr lineAddr = 0;
    AccessType type = AccessType::Load;

    /** Non-memory instructions preceding this access. */
    std::uint32_t instGap = 0;

    /**
     * Index of this line's next reference in the same core's stream, or
     * kNoNextUse. Filled by FutureUseAnnotator for OPT runs; ignored
     * otherwise.
     */
    std::uint64_t nextUse = std::numeric_limits<std::uint64_t>::max();
};

} // namespace zc
