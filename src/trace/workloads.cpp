#include "trace/workloads.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace zc {

namespace {

/** Shorthand builders for the profile table. */
StreamParams
hot(std::uint64_t lines, double alpha, double gap, double stores = 0.3)
{
    StreamParams p;
    p.hotLines = lines;
    p.hotAlpha = alpha;
    p.hotWeight = 1.0;
    p.meanInstGap = gap;
    p.storeFrac = stores;
    return p;
}

StreamParams
hotStream(std::uint64_t hot_lines, double alpha, double hot_w,
          std::uint64_t stream_lines, std::uint64_t stride,
          std::uint32_t stream_repeat, double gap, double stores = 0.3)
{
    StreamParams p;
    p.hotLines = hot_lines;
    p.hotAlpha = alpha;
    p.hotWeight = hot_w;
    p.streamLines = stream_lines;
    p.stride = stride;
    p.streamWeight = 1.0 - hot_w;
    p.streamRepeat = stream_repeat;
    p.meanInstGap = gap;
    p.storeFrac = stores;
    return p;
}

StreamParams
hotChase(std::uint64_t hot_lines, double alpha, double hot_w,
         std::uint64_t chase_lines, double gap, double stores = 0.25)
{
    StreamParams p;
    p.hotLines = hot_lines;
    p.hotAlpha = alpha;
    p.hotWeight = hot_w;
    p.chaseLines = chase_lines;
    p.chaseWeight = 1.0 - hot_w;
    p.meanInstGap = gap;
    p.storeFrac = stores;
    return p;
}

WorkloadProfile
mt(const char* name, WorkloadCategory cat, double shared_frac,
   StreamParams params)
{
    WorkloadProfile w;
    w.name = name;
    w.category = cat;
    w.multithreaded = true;
    w.sharedFrac = shared_frac;
    w.params = params;
    return w;
}

WorkloadProfile
rate(const char* name, StreamParams params)
{
    WorkloadProfile w;
    w.name = name;
    w.category = WorkloadCategory::Spec2006Rate;
    w.params = params;
    return w;
}

std::vector<WorkloadProfile>
buildSpec2006()
{
    // 26 CPU2006 programs (paper: all but dealII, tonto, wrf). Footprints
    // are in 64-byte lines; each stream's structure follows the
    // program's published memory behaviour at a coarse level, and the
    // component weights are calibrated so that baseline (SA-4 + H3)
    // L2 MPKIs land in the published 8MB-LLC ranges: ~0.1 for the
    // cache-friendly group (gamess, povray), low single digits for the
    // moderate group, and ~10-30 for the memory-bound group (mcf, lbm,
    // libquantum, cactusADM). Streaming MPKI is approximately
    // 1000 * weight / ((1 + gap) * repeat) since each new streamed line
    // misses the whole hierarchy.
    std::vector<WorkloadProfile> v;
    v.push_back(rate("perlbench", hot(3000, 1.10, 6.0)));
    v.push_back(
        rate("bzip2", hotStream(5000, 0.95, 0.90, 20000, 1, 8, 5.0)));
    v.push_back(rate("gcc", hot(4500, 1.10, 5.5)));
    v.push_back(
        rate("bwaves", hotStream(2000, 1.00, 0.55, 120000, 1, 8, 3.5)));
    v.push_back(rate("gamess", hot(1500, 1.20, 7.0)));
    v.push_back(rate("mcf", hotChase(2500, 1.00, 0.88, 300000, 3.5)));
    v.push_back(
        rate("milc", hotStream(2000, 1.00, 0.55, 150000, 1, 8, 4.0)));
    v.push_back(
        rate("zeusmp", hotStream(5000, 1.00, 0.88, 80000, 1, 4, 4.5)));
    v.push_back(rate("gromacs", hot(4000, 1.10, 6.0)));
    v.push_back(
        rate("cactusADM", hotStream(4000, 1.00, 0.75, 200000, 1, 4, 3.5)));
    v.push_back(
        rate("leslie3d", hotStream(3000, 1.00, 0.65, 100000, 1, 8, 4.0)));
    v.push_back(rate("namd", hot(3500, 1.10, 6.5)));
    v.push_back(rate("gobmk", hot(5500, 1.00, 6.0)));
    v.push_back(
        rate("soplex", hotStream(8000, 0.95, 0.85, 50000, 1, 8, 4.0)));
    v.push_back(rate("povray", hot(1200, 1.30, 7.5)));
    v.push_back(
        rate("calculix", hotStream(5000, 1.05, 0.90, 15000, 1, 8, 5.5)));
    v.push_back(rate("hmmer", hot(2500, 1.10, 5.0)));
    v.push_back(rate("sjeng", hot(5000, 1.10, 6.0)));
    v.push_back(
        rate("GemsFDTD", hotStream(3000, 1.00, 0.55, 250000, 1, 8, 3.5)));
    v.push_back(rate("libquantum", hotStream(1000, 1.00, 0.20, 300000, 1,
                                             16, 3.0, 0.25)));
    v.push_back(
        rate("h264ref", hotStream(4000, 1.10, 0.85, 8000, 1, 8, 5.5)));
    v.push_back(rate("lbm", hotStream(1500, 1.00, 0.30, 350000, 1, 8, 3.0,
                                      0.45)));
    v.push_back(rate("omnetpp", hotChase(6000, 0.95, 0.95, 150000, 4.0)));
    v.push_back(rate("astar", hotChase(5000, 1.00, 0.97, 60000, 4.5)));
    v.push_back(
        rate("sphinx3", hotStream(10000, 1.00, 0.90, 30000, 1, 8, 4.0)));
    v.push_back(rate("xalancbmk", hotChase(8000, 1.00, 0.98, 30000, 4.5)));
    return v;
}

std::vector<WorkloadProfile>
buildAll()
{
    std::vector<WorkloadProfile> v;

    // --- 6 PARSEC (multithreaded) -----------------------------------
    // blackscholes: tiny per-thread working set, compute bound.
    v.push_back(mt("blackscholes", WorkloadCategory::Parsec, 0.05,
                   hot(400, 1.20, 9.0)));
    // canneal: large shared pointer chase, memory bound.
    v.push_back(mt("canneal", WorkloadCategory::Parsec, 0.70,
                   hotChase(3000, 1.00, 0.93, 200000, 4.0)));
    // fluidanimate: mid-size grid, partial sharing.
    v.push_back(mt("fluidanimate", WorkloadCategory::Parsec, 0.15,
                   hotStream(5000, 0.90, 0.90, 40000, 1, 4, 5.0)));
    // freqmine: tree mining, shared FP-tree.
    v.push_back(mt("freqmine", WorkloadCategory::Parsec, 0.20,
                   hot(8000, 1.00, 6.0)));
    // streamcluster: repeated passes over a shared point set.
    v.push_back(mt("streamcluster", WorkloadCategory::Parsec, 0.50,
                   hotStream(2000, 1.00, 0.60, 120000, 1, 8, 4.0)));
    // swaptions: small per-thread simulations.
    v.push_back(mt("swaptions", WorkloadCategory::Parsec, 0.02,
                   hot(1500, 1.15, 7.0)));

    // --- 10 SPEC OMP (multithreaded; all but galgel) -----------------
    // wupwise/apsi: strided walks that pile onto a fraction of the sets
    // under bit-select indexing (the pathological Fig. 3a outliers).
    v.push_back(mt("wupwise", WorkloadCategory::SpecOmp, 0.10,
                   hotStream(4000, 1.00, 0.82, 131072, 8, 2, 4.5)));
    v.push_back(mt("swim", WorkloadCategory::SpecOmp, 0.10,
                   hotStream(3000, 1.00, 0.50, 200000, 1, 8, 3.5)));
    v.push_back(mt("mgrid", WorkloadCategory::SpecOmp, 0.10,
                   hotStream(4000, 1.00, 0.80, 131072, 16, 4, 4.0)));
    v.push_back(mt("applu", WorkloadCategory::SpecOmp, 0.10,
                   hotStream(5000, 1.00, 0.70, 90000, 1, 8, 4.0)));
    v.push_back(mt("equake", WorkloadCategory::SpecOmp, 0.15,
                   hotStream(20000, 0.90, 0.85, 60000, 1, 4, 4.5)));
    v.push_back(mt("apsi", WorkloadCategory::SpecOmp, 0.10,
                   hotStream(3000, 1.00, 0.80, 131072, 16, 2, 4.5)));
    v.push_back(mt("gafort", WorkloadCategory::SpecOmp, 0.20,
                   hot(20000, 0.85, 5.0)));
    v.push_back(mt("fma3d", WorkloadCategory::SpecOmp, 0.15,
                   hotStream(15000, 1.00, 0.85, 50000, 1, 4, 5.0)));
    // art: low-skew working set beyond the LLC — classic thrash.
    v.push_back(mt("art", WorkloadCategory::SpecOmp, 0.25,
                   hot(5000, 0.90, 5.0)));
    // ammp: L2-hit heavy.
    v.push_back(mt("ammp", WorkloadCategory::SpecOmp, 0.15,
                   hot(2500, 1.20, 5.0)));

    // --- 26 SPEC CPU2006, rate mode ----------------------------------
    auto spec = buildSpec2006();
    v.insert(v.end(), spec.begin(), spec.end());

    // --- 30 random CPU2006 mixes -------------------------------------
    for (std::uint32_t m = 0; m < 30; m++) {
        WorkloadProfile w;
        w.name = "cpu2K6rand" + std::to_string(m);
        w.category = WorkloadCategory::Spec2006Mix;
        Pcg32 rng(0x6d1e5 + m, /*stream=*/0x7b1);
        for (std::uint32_t c = 0; c < 32; c++) {
            std::uint32_t pick =
                rng.below(static_cast<std::uint32_t>(spec.size()));
            w.mixApps.push_back(spec[pick].name);
        }
        v.push_back(w);
    }

    zc_assert(v.size() == 72);
    return v;
}

/** Distinct, non-overlapping line-address regions. */
constexpr Addr kPrivateRegion = Addr{1} << 32;
constexpr Addr kSharedBase = Addr{1} << 48;
constexpr Addr kStreamOffset = Addr{1} << 28;
constexpr Addr kChaseOffset = Addr{1} << 29;

} // namespace

const std::vector<WorkloadProfile>&
WorkloadRegistry::all()
{
    static const std::vector<WorkloadProfile> profiles = buildAll();
    return profiles;
}

const std::vector<WorkloadProfile>&
WorkloadRegistry::spec2006()
{
    static const std::vector<WorkloadProfile> profiles = buildSpec2006();
    return profiles;
}

void
WorkloadRegistry::prime()
{
    all();
    spec2006();
}

const WorkloadProfile*
WorkloadRegistry::find(const std::string& name)
{
    for (const auto& w : all()) {
        if (w.name == name) return &w;
    }
    return nullptr;
}

const WorkloadProfile&
WorkloadRegistry::byName(const std::string& name)
{
    if (const WorkloadProfile* w = find(name)) return *w;
    throw StatusError(Status::notFound(
        "workload: unknown name '" + name + "' (the suite has " +
        std::to_string(all().size()) +
        " profiles; see trace/workloads.cpp)"));
}

GeneratorPtr
WorkloadRegistry::makeStream(const StreamParams& p, Addr private_base,
                             Addr shared_base, double shared_frac,
                             std::uint64_t seed,
                             std::uint64_t chase_stagger)
{
    std::vector<MixComponent> comps;

    auto add_region = [&](Addr base, double region_weight,
                          std::uint64_t region_seed, bool shared) {
        if (region_weight <= 0.0) return;
        if (p.hotWeight > 0.0 && p.hotLines > 0) {
            comps.push_back(
                {std::make_unique<ZipfGenerator>(base, p.hotLines,
                                                 p.hotAlpha, region_seed),
                 p.hotWeight * region_weight});
        }
        if (p.streamWeight > 0.0 && p.streamLines > 0) {
            comps.push_back(
                {std::make_unique<StridedGenerator>(
                     base + kStreamOffset, p.streamLines, p.stride,
                     p.streamRepeat),
                 p.streamWeight * region_weight});
        }
        if (p.chaseWeight > 0.0 && p.chaseLines > 0) {
            // Shared chases use a region-wide seed so every thread walks
            // the same cycle, staggered to a different phase of it.
            auto chase = std::make_unique<PointerChaseGenerator>(
                base + kChaseOffset, p.chaseLines,
                shared ? 0xc0ffee : region_seed, p.chaseRepeat);
            if (shared) chase->skip(chase_stagger);
            comps.push_back({std::move(chase),
                             p.chaseWeight * region_weight});
        }
    };

    add_region(private_base, 1.0 - shared_frac, seed, false);
    add_region(shared_base, shared_frac, seed ^ 0x51ab, true);

    zc_assert(!comps.empty());
    return std::make_unique<CompositeGenerator>(
        std::move(comps), p.storeFrac, p.meanInstGap, seed ^ 0xfeed);
}

GeneratorPtr
WorkloadRegistry::makeCoreGenerator(const WorkloadProfile& profile,
                                    std::uint32_t core_id,
                                    std::uint32_t num_cores,
                                    std::uint64_t seed)
{
    zc_assert(num_cores > 0);
    Addr private_base = kPrivateRegion * (core_id + 1);
    std::uint64_t core_seed =
        seed + 0x9e3779b97f4a7c15ULL * (core_id + 1);

    const StreamParams* params = &profile.params;
    if (profile.category == WorkloadCategory::Spec2006Mix) {
        zc_assert(!profile.mixApps.empty());
        const auto& app_name =
            profile.mixApps[core_id % profile.mixApps.size()];
        params = &byName(app_name).params;
    }

    double shared_frac = profile.multithreaded ? profile.sharedFrac : 0.0;
    std::uint64_t stagger =
        params->chaseLines
            ? (params->chaseLines / num_cores) * core_id
            : 0;
    return makeStream(*params, private_base, kSharedBase, shared_frac,
                      core_seed, stagger);
}

} // namespace zc
