/**
 * @file
 * System-wide energy model (McPAT stand-in).
 *
 * Combines per-event energies — core instructions, L1 accesses, L2
 * tag/data traffic (from ArrayStats, so zcache walks and relocations are
 * charged automatically), NoC traversals, DRAM accesses — with static
 * power over the run's cycle count, yielding Joules and BIPS/W for
 * Fig. 5. Constants approximate a 32 nm, 32-core Atom-class CMP (the
 * paper's ~90 W TDP, ~220 mm^2 system); as with CACTI-lite, the
 * reproduced claims are comparative.
 */

#pragma once

#include <cstdint>

#include "common/stats_registry.hpp"
#include "energy/cacti_lite.hpp"

namespace zc {

/** Event counts a simulation run feeds the model. */
struct EnergyEvents
{
    std::uint64_t instructions = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l2TagReads = 0;
    std::uint64_t l2TagWrites = 0;
    std::uint64_t l2DataReads = 0;
    std::uint64_t l2DataWrites = 0;
    std::uint64_t l2Accesses = 0; ///< NoC traversals to L2 banks

    /**
     * Demand hits: each one pays the lookup-mode data premium
     * (lookupDataReadNj - dataReadNj), nonzero for parallel lookups.
     */
    std::uint64_t l2Hits = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t cycles = 0; ///< wall-clock cycles of the run
};

struct SystemEnergyParams
{
    std::uint32_t numCores = 32;
    double frequencyGhz = 2.0;

    // Dynamic energy per event (nJ).
    double coreNjPerInstr = 0.12; ///< Atom-class in-order core
    double l1NjPerAccess = 0.025;
    double nocNjPerL2Access = 0.30; ///< request+response H-tree/NoC hop
    double dramNjPerAccess = 20.0;  ///< 64B DDR3 access incl. I/O

    // Static power (W).
    double coreLeakWEach = 0.30;
    double otherLeakW = 4.0; ///< NoC, MCs, misc uncore

    /** L2 bank model: primitive energies and leakage. */
    BankCosts l2Bank;
    std::uint32_t l2Banks = 8;
};

struct EnergyBreakdown
{
    double coreJ = 0.0;
    double l1J = 0.0;
    double l2J = 0.0;
    double nocJ = 0.0;
    double dramJ = 0.0;
    double staticJ = 0.0;

    double
    totalJ() const
    {
        return coreJ + l1J + l2J + nocJ + dramJ + staticJ;
    }
};

class SystemEnergyModel
{
  public:
    explicit SystemEnergyModel(const SystemEnergyParams& params)
        : params_(params)
    {
    }

    EnergyBreakdown
    energy(const EnergyEvents& ev) const
    {
        EnergyBreakdown b;
        b.coreJ = ev.instructions * params_.coreNjPerInstr * 1e-9;
        b.l1J = ev.l1Accesses * params_.l1NjPerAccess * 1e-9;
        b.l2J = (ev.l2TagReads * params_.l2Bank.tagReadNj +
                 ev.l2TagWrites * params_.l2Bank.tagWriteNj +
                 ev.l2DataReads * params_.l2Bank.dataReadNj +
                 ev.l2DataWrites * params_.l2Bank.dataWriteNj +
                 ev.l2Hits * (params_.l2Bank.lookupDataReadNj -
                              params_.l2Bank.dataReadNj)) *
                1e-9;
        b.nocJ = ev.l2Accesses * params_.nocNjPerL2Access * 1e-9;
        b.dramJ = ev.dramAccesses * params_.dramNjPerAccess * 1e-9;

        double seconds =
            static_cast<double>(ev.cycles) / (params_.frequencyGhz * 1e9);
        double static_w = params_.numCores * params_.coreLeakWEach +
                          params_.l2Banks * params_.l2Bank.leakageMw * 1e-3 +
                          params_.otherLeakW;
        b.staticJ = static_w * seconds;
        return b;
    }

    /** Billions of instructions per second per watt (Fig. 5 metric). */
    double
    bipsPerWatt(const EnergyEvents& ev) const
    {
        double seconds =
            static_cast<double>(ev.cycles) / (params_.frequencyGhz * 1e9);
        if (seconds <= 0.0) return 0.0;
        double bips = static_cast<double>(ev.instructions) / 1e9 / seconds;
        double watts = energy(ev).totalJ() / seconds;
        return watts > 0.0 ? bips / watts : 0.0;
    }

    const SystemEnergyParams& params() const { return params_; }

    /**
     * Register the per-component energy breakdown of @p ev (snapshot
     * values — energy is computed once at end of run, not pulled live).
     */
    void
    registerStats(StatGroup& g, const EnergyEvents& ev) const
    {
        EnergyBreakdown b = energy(ev);
        g.addConst("core_j", "core dynamic energy", JsonValue(b.coreJ));
        g.addConst("l1_j", "L1 dynamic energy", JsonValue(b.l1J));
        g.addConst("l2_j", "L2 tag+data dynamic energy", JsonValue(b.l2J));
        g.addConst("noc_j", "network traversal energy", JsonValue(b.nocJ));
        g.addConst("dram_j", "DRAM access energy", JsonValue(b.dramJ));
        g.addConst("static_j", "leakage over the run", JsonValue(b.staticJ));
        g.addConst("total_j", "total energy", JsonValue(b.totalJ()));
        g.addConst("bips_per_watt", "Fig. 5 efficiency metric",
                   JsonValue(bipsPerWatt(ev)));
    }

  private:
    SystemEnergyParams params_;
};

} // namespace zc
