/**
 * @file
 * CACTI-lite: analytical cache area / latency / energy model.
 *
 * The paper obtains Table II from CACTI 6.5 at 32 nm (low-leakage
 * process for the L2, serial and parallel lookup variants). CACTI is not
 * redistributable here, so this module provides closed-form models
 * calibrated to reproduce the paper's *relative* figures:
 *
 *  - serial lookup, 32-way vs 4-way: ~1.22x area, ~1.23x hit latency,
 *    ~2x hit energy;
 *  - parallel lookup, 32-way vs 4-way: ~1.32x hit latency, ~3.3x hit
 *    energy;
 *  - 16-way costs one extra latency cycle over 4-way at 2 GHz, 32-way
 *    two extra cycles (the Fig. 4 IPC mechanism);
 *  - zcache hit costs track its (small) way count; only the energy per
 *    miss grows with candidates, per the Section III-B E_miss formula.
 *
 * Absolute scales (nJ, mm^2, ns) are set to plausible 32 nm values so
 * that downstream system-energy numbers land in a realistic range; the
 * claims the benches reproduce are all ratios.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace zc {

/** Physical organization of one cache bank. */
struct BankGeometry
{
    std::uint64_t capacityBytes = 1 << 20; // 1 MB bank (Table I)
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 4;
    bool serialLookup = true;
    double frequencyGhz = 2.0;
};

/** Per-bank cost figures produced by the model. */
struct BankCosts
{
    double areaMm2 = 0.0;
    double hitLatencyNs = 0.0;
    std::uint32_t hitLatencyCycles = 0;

    /** Energy of a hit (tag resolution + one data line). */
    double hitEnergyNj = 0.0;

    /** Per-array primitive energies (Section III-B symbols). */
    double tagReadNj = 0.0;   // E_rt: one way's tag
    double tagWriteNj = 0.0;  // E_wt
    double dataReadNj = 0.0;  // E_rd: one directed line read (one way)
    double dataWriteNj = 0.0; // E_wd

    /**
     * Data energy of a demand lookup: equals dataReadNj for serial
     * lookups; for parallel lookups all W ways' wordlines fire before
     * way-select, so it grows with W (the Fig. 5 energy mechanism).
     */
    double lookupDataReadNj = 0.0;

    double leakageMw = 0.0;
};

class CactiLite
{
  public:
    /** Model a conventional (or zcache: same hit path) bank. */
    static BankCosts model(const BankGeometry& geom);

    /**
     * Energy of one replacement in a set-associative bank: re-read of
     * the set's tags plus victim data read + fill write.
     */
    static double setAssocMissEnergyNj(const BankCosts& c,
                                       std::uint32_t ways);

    /**
     * Energy of one zcache replacement (Section III-B):
     * E_miss = R*E_rt + m*(E_rt+E_rd+E_wt+E_wd), plus the fill write.
     *
     * @param candidates R (walk tag reads)
     * @param relocations m (block moves)
     */
    static double zcacheMissEnergyNj(const BankCosts& c,
                                     std::uint32_t candidates,
                                     double relocations);

    /** Tag bits per line for the geometry (status bits included). */
    static std::uint32_t tagBitsPerLine(const BankGeometry& geom);
};

} // namespace zc
