#include "energy/cacti_lite.hpp"

#include <cmath>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace zc {

namespace {

// Calibration constants (see file header). Energies are for a 1 MB bank
// and scale with sqrt(capacity) for the H-tree-dominated components.
// With these values, serial hit energy at 32 ways is 2.01x the 4-way
// figure and parallel is 3.36x — the paper's ~2x and ~3.3x.
constexpr double kDataReadNjBase = 0.19;  // one 64B line from 1MB array
constexpr double kTagUnitNj = 0.004;      // tag-bit-dependent share
constexpr double kTagFixedNj = 0.004;     // tag decoder/H-tree floor
constexpr double kRefTagFrac = 0.1;       // tag_frac the unit refers to
constexpr double kWriteFactor = 1.1;      // writes slightly above reads

constexpr double kSerialLatencyBaseNs = 3.0;  // 4-way serial @ 1MB
constexpr double kSerialLatencySlope = 0.077; // per log2(W/4)
constexpr double kParallelLatencyBaseNs = 2.2;
constexpr double kParallelLatencySlope = 0.107;

constexpr double kDataAreaMm2PerMb = 1.05; // 32nm low-leakage SRAM
constexpr double kLeakageMwPerMb = 150.0;  // low-leakage process

} // namespace

std::uint32_t
CactiLite::tagBitsPerLine(const BankGeometry& geom)
{
    std::uint64_t lines = geom.capacityBytes / geom.lineBytes;
    std::uint64_t sets = lines / geom.ways;
    // 48-bit physical addresses; hashed indexing stores the full block
    // address in the tag (Section II-A), so no index bits are dropped.
    std::uint32_t addr_bits = 48 - log2Ceil(geom.lineBytes);
    (void)sets;
    return addr_bits + 8; // + coherence/valid/dirty/timestamp bits
}

BankCosts
CactiLite::model(const BankGeometry& geom)
{
    zc_assert(geom.ways >= 1);
    zc_assert(geom.capacityBytes >= 64 * 1024);

    double mb = static_cast<double>(geom.capacityBytes) / (1 << 20);
    double size_scale = std::sqrt(mb); // wire-dominated scaling
    double w = static_cast<double>(geom.ways);
    double log_w = std::log2(std::max(1.0, w / 4.0));

    BankCosts c;

    // --- primitive energies ------------------------------------------
    double tag_frac =
        static_cast<double>(tagBitsPerLine(geom)) / (geom.lineBytes * 8);
    c.tagReadNj =
        (kTagFixedNj + kTagUnitNj * (tag_frac / kRefTagFrac)) * size_scale;
    c.tagWriteNj = c.tagReadNj * kWriteFactor;
    c.dataReadNj = kDataReadNjBase * size_scale;
    c.dataWriteNj = c.dataReadNj * kWriteFactor;

    // --- hit energy ---------------------------------------------------
    // A lookup reads W tags. Serial: exactly one data way afterwards.
    // Parallel: all W ways' wordlines fire; way-select gates the output
    // drivers, so data energy grows with W but sub-linearly.
    double tag_lookup = c.tagReadNj * w;
    c.lookupDataReadNj = geom.serialLookup
                             ? c.dataReadNj
                             : c.dataReadNj * (0.8 + 0.06 * w);
    c.hitEnergyNj = tag_lookup + c.lookupDataReadNj;

    // --- latency -------------------------------------------------------
    double base = geom.serialLookup ? kSerialLatencyBaseNs
                                    : kParallelLatencyBaseNs;
    double slope = geom.serialLookup ? kSerialLatencySlope
                                     : kParallelLatencySlope;
    c.hitLatencyNs = base * (1.0 + slope * log_w) * (0.8 + 0.2 * size_scale);
    c.hitLatencyCycles = static_cast<std::uint32_t>(
        std::ceil(c.hitLatencyNs * geom.frequencyGhz));

    // --- area / leakage -------------------------------------------------
    // The data array is capacity-bound; tag area grows with the number
    // of ways (wider tag port and more comparators). At 32 ways total
    // area is ~1.23x the 4-way figure, matching the paper's 1.22x.
    double tag_area = kDataAreaMm2PerMb * mb * tag_frac * (w / 4.0) * 0.35;
    double data_area = kDataAreaMm2PerMb * mb;
    c.areaMm2 = data_area + tag_area;
    c.leakageMw = kLeakageMwPerMb * mb * (c.areaMm2 / data_area);
    return c;
}

double
CactiLite::setAssocMissEnergyNj(const BankCosts& c, std::uint32_t ways)
{
    // The miss lookup already read the set's W tags; the replacement
    // reads the victim line (write-back path) and writes tag + data for
    // the fill.
    return c.tagReadNj * ways + c.dataReadNj + c.tagWriteNj + c.dataWriteNj;
}

double
CactiLite::zcacheMissEnergyNj(const BankCosts& c, std::uint32_t candidates,
                              double relocations)
{
    double walk = c.tagReadNj * candidates;
    double relocs = relocations * (c.tagReadNj + c.dataReadNj +
                                   c.tagWriteNj + c.dataWriteNj);
    double victim_and_fill = c.dataReadNj + c.tagWriteNj + c.dataWriteNj;
    return walk + relocs + victim_and_fill;
}

} // namespace zc
