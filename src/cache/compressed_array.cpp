#include "cache/compressed_array.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace zc {
namespace {

/**
 * Pick the next makeSpace victim: the policy's choice among the
 * incoming line's valid candidate positions (excluding the incoming
 * block itself), falling back to a policy-ranked scan over all valid
 * blocks when the candidate set is exhausted. Deterministic: both
 * paths reduce to the policy's (score, tieBreaker) total order.
 * Returns kInvalidPos when only the incoming block remains.
 */
BlockPos
spaceVictim(CacheArray& arr, Addr incoming)
{
    const BlockPos own = arr.probe(incoming);
    BlockPos ways[64];
    BlockPos cands[64];
    const std::uint32_t n = arr.lookupWays(incoming, ways, 64);
    std::uint32_t c = 0;
    for (std::uint32_t i = 0; i < n; i++) {
        if (ways[i] != own && arr.addrAt(ways[i]) != kInvalidAddr) {
            cands[c++] = ways[i];
        }
    }
    if (c > 0) {
        return arr.policy().select(std::span<const BlockPos>(cands, c));
    }
    BlockPos victim = kInvalidPos;
    arr.forEachValid([&](BlockPos pos, Addr) {
        if (pos == own) return;
        if (victim == kInvalidPos ||
            arr.policy().ordersBefore(pos, victim)) {
            victim = pos;
        }
    });
    return victim;
}

} // namespace

std::uint32_t
SizeMirror::stageInsert(Addr addr)
{
    cfg_.content.fill(addr, line_.data(), line_.size());
    auto size_or = codec_->compress(line_.data(), line_.size(),
                                    scratch_.data(), scratch_.size());
    zc_assert(size_or.hasValue()); // scratch is maxCompressedSize-sized
    const std::uint32_t stored = static_cast<std::uint32_t>(
        std::min<std::size_t>(*size_or, cfg_.lineBytes));
    compressionCalls_++;
    rawBytesTotal_ += cfg_.lineBytes;
    storedBytesTotal_ += stored;
    ratioHist_.record(static_cast<double>(stored) /
                      static_cast<double>(cfg_.lineBytes));
    staged_ = stored;
    stagedValid_ = true;
    return stored;
}

void
SizeMirror::registerCompressionStats(StatGroup& g)
{
    StatGroup& c = g.group("compression", "codec + data-store occupancy");
    c.addString("codec", "compression codec",
                [this] { return std::string(codecKindName(cfg_.codec)); });
    c.addString("content_model", "synthetic line-content mix",
                [this] { return cfg_.content.label(); });
    c.addConst("line_bytes", "uncompressed bytes per line",
               JsonValue(cfg_.lineBytes));
    c.addConst("extra_tag_ratio", "tag entries per data block",
               JsonValue(cfg_.extraTagRatio));
    c.addCounter("compression_calls", "lines compressed on insert",
                 [this] { return compressionCalls_; });
    c.addCounter("raw_bytes_total", "uncompressed bytes across calls",
                 [this] { return rawBytesTotal_; });
    c.addCounter("stored_bytes_total", "stored bytes across calls",
                 [this] { return storedBytesTotal_; });
    c.addCounter("occupied_bytes", "bytes resident in the data store",
                 [this] { return occupiedBytes_; });
    c.addCounter("extra_evictions",
                 "byte-budget evictions beyond the walk's victim",
                 [this] { return extraEvictions_; });
    c.addHistogram("size_ratio", "stored/raw size per compression",
                   &ratioHist_);
}

void
SizeMirror::resetCompressionStats()
{
    compressionCalls_ = 0;
    rawBytesTotal_ = 0;
    storedBytesTotal_ = 0;
    extraEvictions_ = 0;
    ratioHist_ = UnitHistogram(ratioHist_.bins());
    // occupiedBytes_ and sizes_ describe live contents, not history:
    // they survive a stats reset like validCount() does.
}

CompressedZArray::CompressedZArray(std::uint32_t num_blocks,
                                   const ZArrayConfig& zcfg,
                                   std::unique_ptr<SizeMirror> mirror)
    : ZArray(num_blocks, zcfg, std::move(mirror)),
      mirror_(static_cast<SizeMirror*>(&policy())),
      dataBytes_(mirror_->config().dataBudgetBytes(num_blocks))
{
    throwIfError(mirror_->config().validate(num_blocks));
}

Replacement
CompressedZArray::insert(Addr lineAddr, const AccessContext& ctx)
{
    mirror_->stageInsert(lineAddr);
    Replacement r = ZArray::insert(lineAddr, ctx);
    while (mirror_->occupiedBytes() > dataBytes_) {
        const BlockPos victim = spaceVictim(*this, lineAddr);
        if (victim == kInvalidPos) break; // only the incoming block left
        const Addr vaddr = addrAt(victim);
        notifyEviction(victim);
        invalidate(vaddr); // tag write + onEvict releases the bytes
        mirror_->noteExtraEviction();
        r.extraEvictions++;
    }
    return r;
}

std::string
CompressedZArray::name() const
{
    const CompressedArrayConfig& c = mirror_->config();
    return ZArray::name() + " compressed(x" +
           std::to_string(c.extraTagRatio) + ", " +
           codecKindName(c.codec) + ", " +
           std::to_string(c.lineBytes) + "B lines)";
}

void
CompressedZArray::registerStats(StatGroup& g)
{
    ZArray::registerStats(g);
    g.addConst("data_blocks", "uncompressed lines the data store holds",
               JsonValue(numBlocks() / mirror_->config().extraTagRatio));
    g.addConst("data_budget_bytes", "data-store byte budget",
               JsonValue(dataBytes_));
    mirror_->registerCompressionStats(g);
}

CompressedSetAssoc::CompressedSetAssoc(std::uint32_t num_blocks,
                                       std::uint32_t ways,
                                       std::unique_ptr<SizeMirror> mirror,
                                       HashPtr index_hash)
    : SetAssociativeArray(num_blocks, ways, std::move(mirror),
                          std::move(index_hash)),
      mirror_(static_cast<SizeMirror*>(&policy())),
      dataBytes_(mirror_->config().dataBudgetBytes(num_blocks))
{
    throwIfError(mirror_->config().validate(num_blocks));
}

Replacement
CompressedSetAssoc::insert(Addr lineAddr, const AccessContext& ctx)
{
    mirror_->stageInsert(lineAddr);
    Replacement r = SetAssociativeArray::insert(lineAddr, ctx);
    while (mirror_->occupiedBytes() > dataBytes_) {
        const BlockPos victim = spaceVictim(*this, lineAddr);
        if (victim == kInvalidPos) break;
        const Addr vaddr = addrAt(victim);
        notifyEviction(victim);
        invalidate(vaddr);
        mirror_->noteExtraEviction();
        r.extraEvictions++;
    }
    return r;
}

std::string
CompressedSetAssoc::name() const
{
    const CompressedArrayConfig& c = mirror_->config();
    return SetAssociativeArray::name() + " compressed(x" +
           std::to_string(c.extraTagRatio) + ", " +
           codecKindName(c.codec) + ", " +
           std::to_string(c.lineBytes) + "B lines)";
}

void
CompressedSetAssoc::registerStats(StatGroup& g)
{
    SetAssociativeArray::registerStats(g);
    g.addConst("data_blocks", "uncompressed lines the data store holds",
               JsonValue(numBlocks() / mirror_->config().extraTagRatio));
    g.addConst("data_budget_bytes", "data-store byte budget",
               JsonValue(dataBytes_));
    mirror_->registerCompressionStats(g);
}

} // namespace zc
