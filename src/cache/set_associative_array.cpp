#include "cache/set_associative_array.hpp"

#include <vector>

#include "common/log.hpp"

namespace zc {

SetAssociativeArray::SetAssociativeArray(
    std::uint32_t num_blocks, std::uint32_t ways,
    std::unique_ptr<ReplacementPolicy> policy, HashPtr index_hash)
    : CacheArray(num_blocks, std::move(policy)),
      ways_(ways),
      sets_(num_blocks / ways),
      indexHash_(std::move(index_hash)),
      tags_(num_blocks, kInvalidAddr)
{
    zc_assert(ways > 0);
    zc_assert(num_blocks % ways == 0);
    zc_assert(indexHash_ != nullptr);
    zc_assert(indexHash_->buckets() == sets_);
}

std::uint64_t
SetAssociativeArray::setOf(Addr lineAddr) const
{
    std::uint64_t set = indexHash_->hash(lineAddr);
    zc_assert(set < sets_);
    return set;
}

BlockPos
SetAssociativeArray::access(Addr lineAddr, const AccessContext& ctx)
{
    std::uint64_t set = setOf(lineAddr);
    // One associative tag lookup reads all W tags of the set.
    stats_.tagReads += ways_;
    BlockPos base = static_cast<BlockPos>(set * ways_);
    for (std::uint32_t w = 0; w < ways_; w++) {
        if (tags_[base + w] == lineAddr) {
            stats_.dataReads++;
            policy_->onHit(base + w, ctx);
            return base + w;
        }
    }
    return kInvalidPos;
}

BlockPos
SetAssociativeArray::probe(Addr lineAddr) const
{
    std::uint64_t set = setOf(lineAddr);
    BlockPos base = static_cast<BlockPos>(set * ways_);
    for (std::uint32_t w = 0; w < ways_; w++) {
        if (tags_[base + w] == lineAddr) return base + w;
    }
    return kInvalidPos;
}

std::uint32_t
SetAssociativeArray::lookupWays(Addr lineAddr, BlockPos* out,
                                std::uint32_t cap) const
{
    if (cap < ways_) return 0;
    BlockPos base = static_cast<BlockPos>(setOf(lineAddr) * ways_);
    for (std::uint32_t w = 0; w < ways_; w++) out[w] = base + w;
    return ways_;
}

Replacement
SetAssociativeArray::insert(Addr lineAddr, const AccessContext& ctx)
{
    zc_assert(lineAddr != kInvalidAddr);
    zc_assert(probe(lineAddr) == kInvalidPos);

    std::uint64_t set = setOf(lineAddr);
    BlockPos base = static_cast<BlockPos>(set * ways_);

    Replacement r;
    r.candidates = ways_;

    // Prefer an empty way; otherwise ask the policy to rank the set.
    BlockPos victim = kInvalidPos;
    for (std::uint32_t w = 0; w < ways_; w++) {
        if (tags_[base + w] == kInvalidAddr) {
            victim = base + w;
            break;
        }
    }
    if (victim == kInvalidPos) {
        std::vector<BlockPos> cands;
        cands.reserve(ways_);
        for (std::uint32_t w = 0; w < ways_; w++) cands.push_back(base + w);
        victim = policy_->select(cands);
        notifyEviction(victim);
        r.evictedAddr = tags_[victim];
        policy_->onEvict(victim);
        valid_--;
    }

    r.victimPos = victim;
    tags_[victim] = lineAddr;
    stats_.tagWrites++;
    stats_.dataWrites++;
    valid_++;
    policy_->onInsert(victim, ctx);
    return r;
}

bool
SetAssociativeArray::invalidate(Addr lineAddr)
{
    BlockPos pos = probe(lineAddr);
    if (pos == kInvalidPos) return false;
    tags_[pos] = kInvalidAddr;
    stats_.tagWrites++;
    policy_->onEvict(pos);
    valid_--;
    return true;
}

Addr
SetAssociativeArray::addrAt(BlockPos pos) const
{
    zc_assert(pos < numBlocks_);
    return tags_[pos];
}

void
SetAssociativeArray::forEachValid(
    const std::function<void(BlockPos, Addr)>& fn) const
{
    for (BlockPos p = 0; p < numBlocks_; p++) {
        if (tags_[p] != kInvalidAddr) fn(p, tags_[p]);
    }
}

std::uint32_t
SetAssociativeArray::validCount() const
{
    return valid_;
}

std::string
SetAssociativeArray::name() const
{
    return "SetAssoc(ways=" + std::to_string(ways_) +
           ", sets=" + std::to_string(sets_) +
           ", index=" + indexHash_->name() +
           ", repl=" + policy_->name() + ")";
}

} // namespace zc
