/**
 * @file
 * Small Bloom filter over block addresses.
 *
 * Section III-D: "Repeats can be avoided by inserting the addresses
 * visited during the walk in a Bloom filter, and not continuing the walk
 * through addresses that are already represented in the filter." The
 * filter is cleared per replacement, so a fixed, small bit array with two
 * H3-style probes suffices.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/types.hpp"

namespace zc {

class BloomFilter
{
  public:
    /** @param bits Power-of-two filter size in bits. */
    explicit BloomFilter(std::uint32_t bits = 256) : bits_(bits, false)
    {
        zc_assert(isPow2(bits));
        mask_ = bits - 1;
    }

    void
    insert(Addr addr)
    {
        bits_[probe1(addr)] = true;
        bits_[probe2(addr)] = true;
    }

    bool
    mightContain(Addr addr) const
    {
        return bits_[probe1(addr)] && bits_[probe2(addr)];
    }

    void
    clear()
    {
        std::fill(bits_.begin(), bits_.end(), false);
    }

  private:
    std::uint32_t
    probe1(Addr a) const
    {
        a *= 0x9e3779b97f4a7c15ULL;
        return static_cast<std::uint32_t>(a >> 32) & mask_;
    }

    std::uint32_t
    probe2(Addr a) const
    {
        a *= 0xc2b2ae3d27d4eb4fULL;
        return static_cast<std::uint32_t>(a >> 24) & mask_;
    }

    std::vector<bool> bits_;
    std::uint32_t mask_;
};

} // namespace zc
