/**
 * @file
 * Skew-associative cache array (Seznec, ISCA 1993; paper Section II-A).
 *
 * Each way is indexed by a different hash function; replacement
 * candidates are only the W first-level conflicting blocks. Structurally
 * this is exactly a zcache whose walk is limited to one level (the paper
 * evaluates it as "Z4/4"), so the class *is* a ZArray constrained to
 * levels = 1 — by construction the two designs coincide, and tests
 * assert it.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cache/z_array.hpp"

namespace zc {

class SkewAssociativeArray final : public ZArray
{
  public:
    SkewAssociativeArray(std::uint32_t num_blocks, std::uint32_t ways,
                         std::unique_ptr<ReplacementPolicy> policy,
                         HashKind hash_kind = HashKind::H3,
                         std::uint64_t seed = 0x5eed)
        : ZArray(num_blocks, makeConfig(ways, hash_kind, seed),
                 std::move(policy))
    {
    }

    std::string
    name() const override
    {
        return "SkewAssoc(ways=" + std::to_string(ways()) +
               ", repl=" + policy().name() + ")";
    }

  private:
    static ZArrayConfig
    makeConfig(std::uint32_t ways, HashKind hash_kind, std::uint64_t seed)
    {
        ZArrayConfig cfg;
        cfg.ways = ways;
        cfg.levels = 1;
        cfg.hashKind = hash_kind;
        cfg.seed = seed;
        return cfg;
    }
};

} // namespace zc
