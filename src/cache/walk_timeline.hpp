/**
 * @file
 * Replacement-process timing model (paper Fig. 1g and Section III-B).
 *
 * The walk pipelines its tag reads: level l issues (W-1)^l accesses,
 * and a level completes after max(T_tag, accesses) cycles, so
 * T_walk = Σ_{l=0}^{L-1} max(T_tag, (W-1)^l). Relocations then move
 * tag+data down the victim path, one block per data-array round trip.
 * The paper's running example — 3 ways, 3 levels, 4-cycle tag reads,
 * 2 relocations — walks in 12 cycles and completes in 20, "much
 * earlier than the 100 cycles used to retrieve the incoming block from
 * main memory": the whole process hides under the miss, which is why
 * the zcache adds no latency to it.
 */

#pragma once

#include <algorithm>
#include <cstdint>

#include "common/log.hpp"

namespace zc {

struct ReplacementTimeline
{
    std::uint32_t walkCycles = 0;       ///< candidate discovery
    std::uint32_t relocationCycles = 0; ///< data+tag moves down the path
    std::uint32_t totalCycles = 0;

    /** Does the whole process hide under the memory fill? */
    bool
    hiddenUnder(std::uint32_t mem_latency_cycles) const
    {
        return totalCycles <= mem_latency_cycles;
    }
};

class WalkTimelineModel
{
  public:
    /**
     * Timeline of one BFS replacement.
     *
     * @param ways W.
     * @param levels L walked.
     * @param relocations m, the victim's depth (0..L-1).
     * @param tag_cycles Tag-array read latency.
     * @param data_cycles Data-array access latency (a relocation's
     *        read+write round trip pipelines into one such slot).
     */
    static ReplacementTimeline
    bfs(std::uint32_t ways, std::uint32_t levels, std::uint32_t relocations,
        std::uint32_t tag_cycles, std::uint32_t data_cycles)
    {
        zc_assert(ways >= 2);
        zc_assert(levels >= 1);
        zc_assert(relocations < levels);
        ReplacementTimeline t;
        std::uint32_t accesses = 1;
        for (std::uint32_t l = 0; l < levels; l++) {
            t.walkCycles += std::max(tag_cycles, accesses);
            accesses *= (ways - 1);
        }
        t.relocationCycles = relocations * data_cycles;
        t.totalCycles = t.walkCycles + t.relocationCycles;
        return t;
    }

    /**
     * DFS walks cannot pipeline — every step depends on the previous
     * tag read — and relocate once per step on the victim path.
     */
    static ReplacementTimeline
    dfs(std::uint32_t candidates, std::uint32_t relocations,
        std::uint32_t tag_cycles, std::uint32_t data_cycles)
    {
        ReplacementTimeline t;
        t.walkCycles = candidates * tag_cycles;
        t.relocationCycles = relocations * data_cycles;
        t.totalCycles = t.walkCycles + t.relocationCycles;
        return t;
    }
};

} // namespace zc
