#include "cache/z_array.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace zc {

ZArray::ZArray(std::uint32_t num_blocks, const ZArrayConfig& cfg,
               std::unique_ptr<ReplacementPolicy> policy)
    : ZArray(num_blocks, cfg, std::move(policy),
             makeHashFamily(cfg.hashKind, cfg.ways,
                            num_blocks / cfg.ways, cfg.seed))
{
}

ZArray::ZArray(std::uint32_t num_blocks, const ZArrayConfig& cfg,
               std::unique_ptr<ReplacementPolicy> policy,
               std::vector<HashPtr> hashes)
    : CacheArray(num_blocks, std::move(policy)),
      cfg_(cfg),
      linesPerWay_(num_blocks / cfg.ways),
      hashes_(std::move(hashes)),
      tags_(num_blocks, kInvalidAddr),
      rng_(cfg.seed, /*stream=*/0x2545f4914f6cdd1dULL),
      bloom_(256)
{
    zc_assert(cfg.ways >= 2);
    zc_assert(cfg.levels >= 1);
    zc_assert(num_blocks % cfg.ways == 0);
    zc_assert(isPow2(linesPerWay_));
    zc_assert(hashes_.size() == cfg.ways);
    for (const auto& h : hashes_) {
        zc_assert(h != nullptr);
        zc_assert(h->buckets() == linesPerWay_);
    }
    wayIndex_.build(hashes_, linesPerWay_);
    seenEpoch_.assign(num_blocks, 0);
    wayPos_.resize(cfg.ways);
    nodes_.reserve(256);
    cands_.reserve(256);
    candNode_.reserve(256);
}

std::uint32_t
ZArray::nextDedupEpoch()
{
    if (++dedupEpoch_ == 0) {
        std::fill(seenEpoch_.begin(), seenEpoch_.end(), 0u);
        dedupEpoch_ = 1;
    }
    return dedupEpoch_;
}

std::uint32_t
ZArray::nominalCandidates(std::uint32_t ways, std::uint32_t levels)
{
    std::uint32_t r = 0, term = 1;
    for (std::uint32_t l = 0; l < levels; l++) {
        r += ways * term;
        term *= (ways - 1);
    }
    return r;
}

std::uint32_t
ZArray::walkLatency(std::uint32_t ways, std::uint32_t levels,
                    std::uint32_t tag_cycles)
{
    std::uint32_t t = 0, accesses = 1;
    for (std::uint32_t l = 0; l < levels; l++) {
        t += std::max(tag_cycles, accesses);
        accesses *= (ways - 1);
    }
    return t;
}

BlockPos
ZArray::positionOf(std::uint32_t way, Addr lineAddr) const
{
    if (cfg_.referenceWalk) [[unlikely]] {
        std::uint64_t line = hashes_[way]->hash(lineAddr);
        return static_cast<BlockPos>(way * linesPerWay_ + line);
    }
    return wayIndex_.position(way, lineAddr);
}

BlockPos
ZArray::access(Addr lineAddr, const AccessContext& ctx)
{
    // A lookup reads one tag per way (each way has its own index).
    stats_.tagReads += cfg_.ways;
    if (cfg_.referenceWalk) [[unlikely]] {
        for (std::uint32_t w = 0; w < cfg_.ways; w++) {
            BlockPos pos = positionOf(w, lineAddr);
            if (tags_[pos] == lineAddr) {
                stats_.dataReads++;
                policy_->onHit(pos, ctx);
                return pos;
            }
        }
        return kInvalidPos;
    }
    // All W way indices in one batched, devirtualized call.
    wayIndex_.positionsAll(lineAddr, wayPos_.data());
    for (std::uint32_t w = 0; w < cfg_.ways; w++) {
        BlockPos pos = wayPos_[w];
        if (tags_[pos] == lineAddr) {
            stats_.dataReads++;
            policy_->onHit(pos, ctx);
            return pos;
        }
    }
    return kInvalidPos;
}

BlockPos
ZArray::probe(Addr lineAddr) const
{
    for (std::uint32_t w = 0; w < cfg_.ways; w++) {
        BlockPos pos = positionOf(w, lineAddr);
        if (tags_[pos] == lineAddr) return pos;
    }
    return kInvalidPos;
}

std::uint32_t
ZArray::lookupWays(Addr lineAddr, BlockPos* out, std::uint32_t cap) const
{
    if (cap < cfg_.ways) return 0;
    // positionOf (not the wayPos_ scratch buffer): lookupWays must stay
    // free of mutable state so concurrent lock-free readers can call it.
    for (std::uint32_t w = 0; w < cfg_.ways; w++)
        out[w] = positionOf(w, lineAddr);
    return cfg_.ways;
}

bool
ZArray::onAncestorPath(std::int32_t node, BlockPos pos) const
{
    for (std::int32_t i = node; i != -1; i = nodes_[i].parent) {
        if (nodes_[i].pos == pos) return true;
    }
    return false;
}

void
ZArray::pushNode(BlockPos pos, std::uint32_t way, std::int32_t parent)
{
    Addr addr = tags_[pos];
    bool repeat = false;
    if (cfg_.bloomRepeatFilter && addr != kInvalidAddr) {
        repeat = bloom_.mightContain(addr);
        if (!repeat) bloom_.insert(addr);
    }
    nodes_.push_back(WalkNode{pos, addr, way, parent, repeat});
    if (addr == kInvalidAddr) walkFoundEmpty_ = true;
    if (nodes_.size() >= walkCap_) walkCapped_ = true;
}

void
ZArray::expandNode(std::uint32_t node_idx)
{
    // Copy: nodes_ may reallocate while we push children.
    const WalkNode n = nodes_[node_idx];
    if (n.addr == kInvalidAddr) return; // nothing to move out of an empty
    if (n.repeat) {
        zstats_.repeatsTotal++;
        return; // Bloom filter: do not walk through repeats (III-D)
    }
    // One batched call covers the W-1 sibling ways (the node's own way
    // is computed too but skipped — cheaper than W-1 dispatches).
    if (!cfg_.referenceWalk) wayIndex_.positionsAll(n.addr, wayPos_.data());
    for (std::uint32_t w = 0; w < cfg_.ways; w++) {
        if (w == n.way) continue;
        BlockPos pos =
            cfg_.referenceWalk ? positionOf(w, n.addr) : wayPos_[w];
        if (onAncestorPath(static_cast<std::int32_t>(node_idx), pos)) {
            // A cycle back onto this node's own relocation path; such a
            // candidate could not be relocated consistently, so skip it.
            zstats_.repeatsTotal++;
            continue;
        }
        stats_.tagReads++;
        pushNode(pos, w, static_cast<std::int32_t>(node_idx));
        if (walkFoundEmpty_ || walkCapped_) return;
    }
}

void
ZArray::expandSubtree(std::uint32_t root_idx, std::uint32_t levels)
{
    std::size_t frontier_begin = root_idx;
    std::size_t frontier_end = root_idx + 1;
    for (std::uint32_t l = 1; l < levels; l++) {
        if (walkFoundEmpty_ || walkCapped_) return;
        std::size_t children_begin = nodes_.size();
        for (std::size_t i = frontier_begin; i < frontier_end; i++) {
            expandNode(static_cast<std::uint32_t>(i));
            if (walkFoundEmpty_ || walkCapped_) return;
        }
        frontier_begin = children_begin;
        frontier_end = nodes_.size();
        if (frontier_begin == frontier_end) return; // nothing expanded
    }
}

std::uint32_t
ZArray::walkBfs(Addr incoming)
{
    // First-level candidates: the blocks conflicting with the incoming
    // address in each way. Their tags were already read by the missing
    // lookup, so they add no tag-array traffic here.
    if (!cfg_.referenceWalk) wayIndex_.positionsAll(incoming, wayPos_.data());
    for (std::uint32_t w = 0; w < cfg_.ways && !walkCapped_; w++) {
        pushNode(cfg_.referenceWalk ? positionOf(w, incoming) : wayPos_[w],
                 w, -1);
        if (walkFoundEmpty_) break;
    }
    if (walkFoundEmpty_ || walkCapped_) {
        return static_cast<std::uint32_t>(nodes_.size());
    }

    std::size_t level_begin = 0;
    std::size_t level_end = nodes_.size();
    for (std::uint32_t l = 1; l < cfg_.levels; l++) {
        for (std::size_t i = level_begin; i < level_end; i++) {
            expandNode(static_cast<std::uint32_t>(i));
            if (walkFoundEmpty_ || walkCapped_) {
                return static_cast<std::uint32_t>(nodes_.size());
            }
        }
        level_begin = level_end;
        level_end = nodes_.size();
        if (level_begin == level_end) break;
    }
    return static_cast<std::uint32_t>(nodes_.size());
}

std::uint32_t
ZArray::walkDfs(Addr incoming)
{
    if (!cfg_.referenceWalk) wayIndex_.positionsAll(incoming, wayPos_.data());
    for (std::uint32_t w = 0; w < cfg_.ways && !walkCapped_; w++) {
        pushNode(cfg_.referenceWalk ? positionOf(w, incoming) : wayPos_[w],
                 w, -1);
        if (walkFoundEmpty_) break;
    }
    if (walkFoundEmpty_ || walkCapped_) {
        return static_cast<std::uint32_t>(nodes_.size());
    }

    // Single random path, cuckoo-hashing style: L = R / W steps deep for
    // the same candidate count R as the configured BFS walk.
    std::uint32_t target = cfg_.maxCandidates
                               ? cfg_.maxCandidates
                               : nominalCandidates(cfg_.ways, cfg_.levels);
    std::int32_t cur = static_cast<std::int32_t>(rng_.below(cfg_.ways));
    while (nodes_.size() < target) {
        const WalkNode n = nodes_[cur];
        if (n.addr == kInvalidAddr) break;
        if (cfg_.bloomRepeatFilter && n.repeat) {
            zstats_.repeatsTotal++;
            break;
        }
        std::uint32_t w = rng_.below(cfg_.ways - 1);
        if (w >= n.way) w++;
        BlockPos pos = positionOf(w, n.addr);
        if (onAncestorPath(cur, pos)) {
            // Path cycled back on itself; stop extending.
            zstats_.repeatsTotal++;
            break;
        }
        stats_.tagReads++;
        pushNode(pos, w, cur);
        cur = static_cast<std::int32_t>(nodes_.size()) - 1;
        if (walkFoundEmpty_) break;
    }
    return static_cast<std::uint32_t>(nodes_.size());
}

std::int32_t
ZArray::findShallowestEmpty(std::size_t from) const
{
    // nodes_ is in BFS order, so the first empty found is shallowest.
    for (std::size_t i = from; i < nodes_.size(); i++) {
        if (nodes_[i].addr == kInvalidAddr) {
            return static_cast<std::int32_t>(i);
        }
    }
    return -1;
}

std::int32_t
ZArray::selectAmong(std::size_t begin, std::size_t end,
                    std::int32_t extra_idx)
{
    // Deduplicate candidate positions (repeats across branches are legal
    // but must not be offered to the policy twice); keep the shallowest
    // node per position so the relocation chain is shortest.
    cands_.clear();
    candNode_.clear();

    if (cfg_.referenceWalk) [[unlikely]] {
        // Reference dedup: the unordered_set the flat table replaced.
        static thread_local std::unordered_set<BlockPos> seen;
        seen.clear();
        auto consider = [&](std::size_t i) {
            const WalkNode& n = nodes_[i];
            if (seen.insert(n.pos).second) {
                cands_.push_back(n.pos);
                candNode_.push_back(static_cast<std::uint32_t>(i));
            } else {
                zstats_.repeatsTotal++;
            }
        };
        if (extra_idx >= 0) consider(static_cast<std::size_t>(extra_idx));
        for (std::size_t i = begin; i < end; i++) consider(i);
    } else {
        const std::uint32_t epoch = nextDedupEpoch();
        auto consider = [&](std::size_t i) {
            const WalkNode& n = nodes_[i];
            if (seenEpoch_[n.pos] != epoch) {
                seenEpoch_[n.pos] = epoch;
                cands_.push_back(n.pos);
                candNode_.push_back(static_cast<std::uint32_t>(i));
            } else {
                zstats_.repeatsTotal++;
            }
        };
        if (extra_idx >= 0) consider(static_cast<std::size_t>(extra_idx));
        for (std::size_t i = begin; i < end; i++) consider(i);
    }

    zc_assert(!cands_.empty());
    BlockPos victim_pos = policy_->select(cands_);
    for (std::size_t i = 0; i < cands_.size(); i++) {
        if (cands_[i] == victim_pos) {
            return static_cast<std::int32_t>(candNode_[i]);
        }
    }
    zc_panic("policy selected a non-candidate position");
}

Replacement
ZArray::commit(Addr lineAddr, const AccessContext& ctx,
               std::uint32_t victim_idx, std::uint32_t candidates)
{
    Replacement r;
    r.candidates = candidates;

    const WalkNode& victim = nodes_[victim_idx];
    r.victimPos = victim.pos;
    if (victim.addr != kInvalidAddr) {
        notifyEviction(victim.pos);
        r.evictedAddr = victim.addr;
        policy_->onEvict(victim.pos);
        tags_[victim.pos] = kInvalidAddr;
        valid_--;
    } else {
        zstats_.emptyAbsorbed++;
    }

    // Relocate ancestors one step down the path: the victim's parent
    // moves into the victim's (now empty) slot, and so on up to the root,
    // whose slot receives the incoming block.
    std::int32_t cur = static_cast<std::int32_t>(victim_idx);
    while (nodes_[cur].parent != -1) {
        const WalkNode& child = nodes_[cur];
        const WalkNode& par = nodes_[nodes_[cur].parent];
        zc_assert(tags_[par.pos] == par.addr);
        zc_assert(tags_[child.pos] == kInvalidAddr);
        tags_[child.pos] = par.addr;
        tags_[par.pos] = kInvalidAddr;
        policy_->onMove(par.pos, child.pos);
        stats_.tagReads++;
        stats_.tagWrites++;
        stats_.dataReads++;
        stats_.dataWrites++;
        r.relocations++;
        cur = nodes_[cur].parent;
    }

    BlockPos root_pos = nodes_[cur].pos;
    zc_assert(tags_[root_pos] == kInvalidAddr);
    tags_[root_pos] = lineAddr;
    stats_.tagWrites++;
    stats_.dataWrites++;
    valid_++;
    policy_->onInsert(root_pos, ctx);

    zstats_.walks++;
    zstats_.candidatesTotal += candidates;
    zstats_.relocationsTotal += r.relocations;
    return r;
}

Replacement
ZArray::insert(Addr lineAddr, const AccessContext& ctx)
{
    zc_assert(lineAddr != kInvalidAddr);
    zc_assert(probe(lineAddr) == kInvalidPos);

    nodes_.clear();
    walkFoundEmpty_ = false;
    walkCapped_ = false;
    walkCap_ = cfg_.maxCandidates ? cfg_.maxCandidates
                                  : std::numeric_limits<std::uint32_t>::max();
    if (cfg_.bloomRepeatFilter) bloom_.clear();

    std::uint32_t candidates = 0;
    std::int32_t victim_idx = -1;

    switch (cfg_.strategy) {
      case WalkStrategy::Bfs:
        candidates = walkBfs(lineAddr);
        victim_idx = findShallowestEmpty(0);
        if (victim_idx < 0) victim_idx = selectAmong(0, nodes_.size(), -1);
        break;

      case WalkStrategy::Dfs:
        candidates = walkDfs(lineAddr);
        victim_idx = findShallowestEmpty(0);
        if (victim_idx < 0) victim_idx = selectAmong(0, nodes_.size(), -1);
        break;

      case WalkStrategy::Hybrid: {
        candidates = walkBfs(lineAddr);
        victim_idx = findShallowestEmpty(0);
        if (victim_idx < 0) {
            // Phase 2: try to re-insert the phase-1 victim instead of
            // evicting it, doubling the candidate pool with no extra
            // walk-table state (Section III-D).
            std::int32_t v1 = selectAmong(0, nodes_.size(), -1);
            std::size_t phase2_begin = nodes_.size();
            expandSubtree(static_cast<std::uint32_t>(v1), cfg_.levels + 1);
            candidates += static_cast<std::uint32_t>(nodes_.size() -
                                                     phase2_begin);
            victim_idx = findShallowestEmpty(phase2_begin);
            if (victim_idx < 0) {
                victim_idx = selectAmong(phase2_begin, nodes_.size(), v1);
            }
        }
        break;
      }
    }

    zc_assert(victim_idx >= 0);
    if (cfg_.traceCapacity > 0) {
        // Must run before commit(): eviction-priority rank compares
        // policy state at the candidates' pre-relocation positions.
        recordWalkEvent(static_cast<std::uint32_t>(victim_idx), candidates);
    }
    return commit(lineAddr, ctx, static_cast<std::uint32_t>(victim_idx),
                  candidates);
}

std::uint32_t
ZArray::nodeDepth(std::int32_t idx) const
{
    std::uint32_t d = 0;
    for (std::int32_t i = nodes_[idx].parent; i != -1; i = nodes_[i].parent) {
        d++;
    }
    return d;
}

void
ZArray::recordWalkEvent(std::uint32_t victim_idx, std::uint32_t candidates)
{
    WalkEvent ev;
    ev.candidates = candidates;
    ev.capped = walkCapped_;

    const WalkNode& victim = nodes_[victim_idx];
    ev.victimDepth = nodeDepth(static_cast<std::int32_t>(victim_idx));
    ev.emptyAbsorbed = victim.addr == kInvalidAddr;

    // Deepest node expanded; nodes_ is in push order, so the maximum
    // depth is reached by the last node for BFS/DFS and by scanning the
    // (short) table in general.
    std::uint32_t max_depth = 0;
    if (cfg_.referenceWalk) [[unlikely]] {
        std::unordered_set<BlockPos> seen;
        for (std::size_t i = 0; i < nodes_.size(); i++) {
            max_depth =
                std::max(max_depth, nodeDepth(static_cast<std::int32_t>(i)));
            // Eviction-priority rank: distinct valid candidates the
            // policy preferred to evict over the chosen victim.
            if (!ev.emptyAbsorbed && nodes_[i].addr != kInvalidAddr &&
                nodes_[i].pos != victim.pos &&
                seen.insert(nodes_[i].pos).second &&
                policy_->ordersBefore(nodes_[i].pos, victim.pos)) {
                ev.evictionRank++;
            }
        }
    } else {
        const std::uint32_t epoch = nextDedupEpoch();
        for (std::size_t i = 0; i < nodes_.size(); i++) {
            max_depth =
                std::max(max_depth, nodeDepth(static_cast<std::int32_t>(i)));
            // Same short-circuit order as the reference: the dedup stamp
            // happens only for valid non-victim candidates, and the
            // policy comparison only on first sight of a position.
            if (!ev.emptyAbsorbed && nodes_[i].addr != kInvalidAddr &&
                nodes_[i].pos != victim.pos &&
                seenEpoch_[nodes_[i].pos] != epoch) {
                seenEpoch_[nodes_[i].pos] = epoch;
                if (policy_->ordersBefore(nodes_[i].pos, victim.pos)) {
                    ev.evictionRank++;
                }
            }
        }
    }
    ev.levels = max_depth + 1;
    ev.latencyCycles =
        walkLatency(cfg_.ways, ev.levels, cfg_.traceTagCycles);
    ev.hiddenUnderMissLatency =
        ev.latencyCycles <= cfg_.traceMissLatencyCycles;

    traceSummary_.events++;
    if (ev.hiddenUnderMissLatency) traceSummary_.hidden++;
    if (ev.capped) traceSummary_.capped++;
    if (ev.emptyAbsorbed) traceSummary_.emptyAbsorbed++;
    traceSummary_.candidates.record(ev.candidates);
    traceSummary_.victimDepth.record(ev.victimDepth);
    traceSummary_.evictionRank.record(ev.evictionRank);
    traceSummary_.latencyCycles.record(ev.latencyCycles);

    if (trace_.size() < cfg_.traceCapacity) {
        trace_.push_back(ev);
    } else {
        trace_[traceHead_] = ev;
        traceHead_ = (traceHead_ + 1) % trace_.size();
    }
}

std::vector<WalkEvent>
ZArray::walkTraceSnapshot() const
{
    std::vector<WalkEvent> out;
    out.reserve(trace_.size());
    for (std::size_t i = 0; i < trace_.size(); i++) {
        out.push_back(trace_[(traceHead_ + i) % trace_.size()]);
    }
    return out;
}

void
ZArray::registerStats(StatGroup& g)
{
    CacheArray::registerStats(g);
    StatGroup& w = g.group("walk", "zcache replacement-walk statistics");
    w.addCounter("walks", "replacements performed",
                 [this] { return zstats_.walks; });
    w.addCounter("candidates_total", "candidates summed over walks",
                 [this] { return zstats_.candidatesTotal; });
    w.addCounter("relocations_total", "relocations summed over walks",
                 [this] { return zstats_.relocationsTotal; });
    w.addCounter("repeats_total", "repeated/skipped candidates",
                 [this] { return zstats_.repeatsTotal; });
    w.addCounter("empty_absorbed", "fills absorbed by empty slots",
                 [this] { return zstats_.emptyAbsorbed; });
    w.addScalar("avg_candidates", "mean candidates per walk (R observed)",
                [this] { return zstats_.avgCandidates(); });
    w.addScalar("avg_relocations", "mean relocations per walk (m observed)",
                [this] { return zstats_.avgRelocations(); });

    if (!walkTraceEnabled()) return;
    StatGroup& t = g.group("walk_trace",
                           "per-replacement event trace (ring buffer)");
    t.addCounter("events", "walk events traced",
                 [this] { return traceSummary_.events; });
    t.addCounter("hidden", "walks fitting under the miss latency",
                 [this] { return traceSummary_.hidden; });
    t.addCounter("capped", "walks early-stopped by the candidate cap",
                 [this] { return traceSummary_.capped; });
    t.addCounter("empty_absorbed", "walks absorbed by an empty slot",
                 [this] { return traceSummary_.emptyAbsorbed; });
    t.addScalar("victim_depth_mean", "mean victim level (== relocations)",
                [this] { return traceSummary_.victimDepth.mean(); });
    t.addScalar("eviction_rank_mean",
                "mean candidates preferred over the chosen victim",
                [this] { return traceSummary_.evictionRank.mean(); });
    t.addScalar("candidates_stddev", "per-walk candidate-count jitter",
                [this] { return traceSummary_.candidates.stddev(); });
    t.addScalar("latency_cycles_mean", "mean estimated walk latency",
                [this] { return traceSummary_.latencyCycles.mean(); });
    t.addCustom("ring", "retained events, oldest first", [this] {
        JsonValue out = JsonValue::array();
        for (const WalkEvent& ev : walkTraceSnapshot()) {
            JsonValue e = JsonValue::object();
            e.set("candidates", JsonValue(ev.candidates));
            e.set("levels", JsonValue(ev.levels));
            e.set("victim_depth", JsonValue(ev.victimDepth));
            e.set("eviction_rank", JsonValue(ev.evictionRank));
            e.set("latency_cycles", JsonValue(ev.latencyCycles));
            e.set("empty_absorbed", JsonValue(ev.emptyAbsorbed));
            e.set("capped", JsonValue(ev.capped));
            e.set("hidden", JsonValue(ev.hiddenUnderMissLatency));
            out.push(std::move(e));
        }
        return out;
    });
}

bool
ZArray::invalidate(Addr lineAddr)
{
    BlockPos pos = probe(lineAddr);
    if (pos == kInvalidPos) return false;
    tags_[pos] = kInvalidAddr;
    stats_.tagWrites++;
    policy_->onEvict(pos);
    valid_--;
    return true;
}

Addr
ZArray::addrAt(BlockPos pos) const
{
    zc_assert(pos < numBlocks_);
    return tags_[pos];
}

void
ZArray::forEachValid(const std::function<void(BlockPos, Addr)>& fn) const
{
    for (BlockPos p = 0; p < numBlocks_; p++) {
        if (tags_[p] != kInvalidAddr) fn(p, tags_[p]);
    }
}

std::uint32_t
ZArray::validCount() const
{
    return valid_;
}

std::string
ZArray::name() const
{
    const char* strat = cfg_.strategy == WalkStrategy::Bfs
                            ? "bfs"
                            : (cfg_.strategy == WalkStrategy::Dfs ? "dfs"
                                                                  : "hybrid");
    return "ZArray(ways=" + std::to_string(cfg_.ways) +
           ", levels=" + std::to_string(cfg_.levels) + ", R=" +
           std::to_string(nominalCandidates(cfg_.ways, cfg_.levels)) +
           ", walk=" + strat + ", hash=" + hashKindName(cfg_.hashKind) +
           ", repl=" + policy_->name() + ")";
}

} // namespace zc
