#include "cache/column_associative_array.hpp"

#include <vector>

#include "common/log.hpp"

namespace zc {

ColumnAssociativeArray::ColumnAssociativeArray(
    std::uint32_t num_blocks, std::unique_ptr<ReplacementPolicy> policy)
    : CacheArray(num_blocks, std::move(policy)),
      tags_(num_blocks, kInvalidAddr),
      rehash_(num_blocks, 0)
{
    zc_assert(num_blocks >= 2);
    zc_assert(isPow2(num_blocks));
}

BlockPos
ColumnAssociativeArray::primary(Addr lineAddr) const
{
    return static_cast<BlockPos>(lineAddr & (numBlocks_ - 1));
}

void
ColumnAssociativeArray::swap(BlockPos a, BlockPos b)
{
    std::swap(tags_[a], tags_[b]);
    std::swap(rehash_[a], rehash_[b]);
    policy_->onSwap(a, b);
    stats_.tagReads += 2;
    stats_.tagWrites += 2;
    stats_.dataReads += 2;
    stats_.dataWrites += 2;
}

BlockPos
ColumnAssociativeArray::access(Addr lineAddr, const AccessContext& ctx)
{
    BlockPos p1 = primary(lineAddr);
    stats_.tagReads++;
    if (tags_[p1] == lineAddr) {
        stats_.dataReads++;
        policy_->onHit(p1, ctx);
        return p1;
    }

    // Second probe (variable hit latency — the design's cost).
    BlockPos p2 = secondary(lineAddr);
    stats_.tagReads++;
    if (tags_[p2] != lineAddr) return kInvalidPos;

    secondaryHits_++;
    if (tags_[p1] != kInvalidAddr) {
        // Swap so the hot block is found on the first probe next time.
        swap(p1, p2);
        rehash_[p1] = 0;
        rehash_[p2] = 1;
    } else {
        tags_[p1] = lineAddr;
        tags_[p2] = kInvalidAddr;
        rehash_[p1] = 0;
        policy_->onMove(p2, p1);
        stats_.tagWrites += 2;
        stats_.dataReads++;
        stats_.dataWrites++;
    }
    stats_.dataReads++;
    policy_->onHit(p1, ctx);
    return p1;
}

BlockPos
ColumnAssociativeArray::probe(Addr lineAddr) const
{
    BlockPos p1 = primary(lineAddr);
    if (tags_[p1] == lineAddr) return p1;
    BlockPos p2 = secondary(lineAddr);
    if (tags_[p2] == lineAddr) return p2;
    return kInvalidPos;
}

Replacement
ColumnAssociativeArray::insert(Addr lineAddr, const AccessContext& ctx)
{
    zc_assert(lineAddr != kInvalidAddr);
    zc_assert(probe(lineAddr) == kInvalidPos);

    BlockPos p1 = primary(lineAddr);
    BlockPos p2 = secondary(lineAddr);

    Replacement r;
    r.candidates = 2;

    BlockPos slot;
    if (tags_[p1] == kInvalidAddr) {
        slot = p1;
        r.candidates = 1;
    } else if (tags_[p2] == kInvalidAddr) {
        slot = p2;
    } else {
        std::vector<BlockPos> cands{p1, p2};
        slot = policy_->select(cands);
        notifyEviction(slot);
        r.evictedAddr = tags_[slot];
        policy_->onEvict(slot);
        valid_--;
    }

    r.victimPos = slot;
    tags_[slot] = lineAddr;
    rehash_[slot] = (slot == p2) ? 1 : 0;
    stats_.tagWrites++;
    stats_.dataWrites++;
    valid_++;
    policy_->onInsert(slot, ctx);
    return r;
}

bool
ColumnAssociativeArray::invalidate(Addr lineAddr)
{
    BlockPos pos = probe(lineAddr);
    if (pos == kInvalidPos) return false;
    tags_[pos] = kInvalidAddr;
    rehash_[pos] = 0;
    stats_.tagWrites++;
    policy_->onEvict(pos);
    valid_--;
    return true;
}

Addr
ColumnAssociativeArray::addrAt(BlockPos pos) const
{
    zc_assert(pos < numBlocks_);
    return tags_[pos];
}

void
ColumnAssociativeArray::forEachValid(
    const std::function<void(BlockPos, Addr)>& fn) const
{
    for (BlockPos p = 0; p < numBlocks_; p++) {
        if (tags_[p] != kInvalidAddr) fn(p, tags_[p]);
    }
}

std::uint32_t
ColumnAssociativeArray::validCount() const
{
    return valid_;
}

std::string
ColumnAssociativeArray::name() const
{
    return "ColumnAssoc(blocks=" + std::to_string(numBlocks_) +
           ", repl=" + policy_->name() + ")";
}

} // namespace zc
