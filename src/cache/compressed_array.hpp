/**
 * @file
 * Extra-tag compressed cache arrays (docs/compression.md).
 *
 * The zcache decouples associativity from ways; compression decouples
 * *capacity* from physical data slots. A compressed array keeps
 * `extraTagRatio` tag entries per data block's worth of storage — the
 * tag array is the full `blocks` positions, the data store a byte
 * budget of (blocks / extraTagRatio) * lineBytes — so when lines
 * compress well, more blocks are resident than the data store could
 * hold uncompressed (Safecracker's zsim compressed arrays; BDI per
 * Pekhimenko et al.).
 *
 * The design rides the existing array/policy split unchanged:
 *
 *  - A SizeMirror replacement-policy decorator (the zkv ValueMirror
 *    pattern) wraps the configured policy and tracks each position's
 *    stored (compressed) size through the standard notification
 *    protocol — sizes travel with blocks through walk relocations via
 *    onMove/onSwap exactly as replacement metadata does. Victim
 *    selection, scoring and tie-breaking forward to the inner policy
 *    untouched, which is what keeps the bit-identity harness
 *    (tests/test_walk_equivalence.cpp) valid.
 *
 *  - CompressedZArray / CompressedSetAssoc subclass the uncompressed
 *    arrays and extend only insert(): after the normal walk/set
 *    replacement installs the line, a makeSpace loop evicts further
 *    policy-ranked victims from the incoming line's candidate set
 *    until the byte budget holds — an eviction must free enough
 *    *bytes*, so several small victims may go where one uncompressed
 *    victim would have. Extra victims are reported in
 *    Replacement::extraEvictions and flow through the normal
 *    eviction-observer/onEvict funnel, so stats, walk traces and
 *    store mirrors see them like any other eviction.
 *
 * The simulator has no data bytes behind an address, so line content
 * is synthesized deterministically by a ContentModel — a pure
 * function of (address, seed) — making miss-rate-vs-capacity curves
 * exactly reproducible.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/set_associative_array.hpp"
#include "cache/z_array.hpp"
#include "common/stats.hpp"
#include "compress/codec.hpp"

namespace zc {

/** Geometry + codec knobs shared by the compressed array family. */
struct CompressedArrayConfig
{
    /** Modeled bytes per (uncompressed) cache line. */
    std::uint32_t lineBytes = 64;

    /**
     * Tag entries per data block: the array exposes `blocks` tag
     * positions over a data budget of (blocks / extraTagRatio) *
     * lineBytes bytes. 1 = no extra tags (the bit-identity baseline).
     */
    std::uint32_t extraTagRatio = 2;

    CodecKind codec = CodecKind::Bdi;

    /** Synthetic line-content generator (docs/compression.md). */
    ContentModel content;

    Status
    validate(std::uint32_t blocks) const
    {
        if (lineBytes < 8 || lineBytes > 4096 || lineBytes % 8 != 0) {
            return Status::invalidArgument(
                "compressed array: lineBytes (" +
                std::to_string(lineBytes) +
                ") must be a multiple of 8 in [8, 4096]");
        }
        if (extraTagRatio == 0) {
            return Status::invalidArgument(
                "compressed array: extraTagRatio must be >= 1");
        }
        if (blocks % extraTagRatio != 0) {
            return Status::invalidArgument(
                "compressed array: blocks (" + std::to_string(blocks) +
                ") must be divisible by extraTagRatio (" +
                std::to_string(extraTagRatio) + ")");
        }
        return content.validate();
    }

    std::uint64_t
    dataBudgetBytes(std::uint32_t blocks) const
    {
        return static_cast<std::uint64_t>(blocks / extraTagRatio) *
               lineBytes;
    }
};

/**
 * Replacement-policy decorator that mirrors each position's stored
 * (compressed) size alongside the inner policy's metadata, driven
 * entirely by the standard notification protocol. Ranking calls
 * (select / score / tieBreaker) forward to the inner policy
 * unchanged — the byte budget is enforced by the owning array's
 * makeSpace loop, not by perturbing victim choice, which is what
 * keeps extraTagRatio=1 + the null codec bit-identical to the
 * uncompressed array.
 */
class SizeMirror final : public ReplacementPolicy
{
  public:
    SizeMirror(std::unique_ptr<ReplacementPolicy> inner,
               const CompressedArrayConfig& cfg)
        : ReplacementPolicy(inner->numBlocks()),
          inner_(std::move(inner)), cfg_(cfg),
          codec_(makeCodec(cfg.codec)), sizes_(numBlocks(), 0),
          ratioHist_(16), line_(cfg.lineBytes),
          scratch_(codec_->maxCompressedSize(cfg.lineBytes))
    {
    }

    /**
     * Compress @p addr's synthetic content and stage the stored size
     * for the next onInsert. Returns the stored size: the compressed
     * size, capped at lineBytes (an incompressible line is stored
     * raw, never expanded). Called by the owning array immediately
     * before the base-class insert.
     */
    std::uint32_t stageInsert(Addr addr);

    std::uint32_t storedSize(BlockPos pos) const { return sizes_[pos]; }
    std::uint64_t occupiedBytes() const { return occupiedBytes_; }
    std::uint64_t compressionCalls() const { return compressionCalls_; }
    std::uint64_t rawBytesTotal() const { return rawBytesTotal_; }
    std::uint64_t storedBytesTotal() const { return storedBytesTotal_; }
    std::uint64_t extraEvictions() const { return extraEvictions_; }

    void noteExtraEviction() { extraEvictions_++; }

    /** Register the compression counters under @p g. */
    void registerCompressionStats(StatGroup& g);

    void resetCompressionStats();

    // ---- ReplacementPolicy: size mirroring + pure forwarding -------

    void
    onInsert(BlockPos pos, const AccessContext& ctx) override
    {
        zc_assert(stagedValid_);
        stagedValid_ = false;
        occupiedBytes_ -= sizes_[pos];
        occupiedBytes_ += staged_;
        sizes_[pos] = staged_;
        inner_->onInsert(pos, ctx);
    }

    void
    onHit(BlockPos pos, const AccessContext& ctx) override
    {
        inner_->onHit(pos, ctx);
    }

    void
    onMove(BlockPos from, BlockPos to) override
    {
        sizes_[to] = sizes_[from];
        sizes_[from] = 0;
        inner_->onMove(from, to);
    }

    void
    onSwap(BlockPos a, BlockPos b) override
    {
        std::swap(sizes_[a], sizes_[b]);
        inner_->onSwap(a, b);
    }

    void
    onEvict(BlockPos pos) override
    {
        occupiedBytes_ -= sizes_[pos];
        sizes_[pos] = 0;
        inner_->onEvict(pos);
    }

    BlockPos
    select(std::span<const BlockPos> cands) override
    {
        return inner_->select(cands);
    }

    double score(BlockPos pos) const override { return inner_->score(pos); }

    std::uint64_t
    tieBreaker(BlockPos pos) const override
    {
        return inner_->tieBreaker(pos);
    }

    std::string name() const override { return inner_->name(); }

    const CompressedArrayConfig& config() const { return cfg_; }

  private:
    std::unique_ptr<ReplacementPolicy> inner_;
    CompressedArrayConfig cfg_;
    std::unique_ptr<Codec> codec_;

    std::vector<std::uint32_t> sizes_; ///< stored bytes per position
    std::uint64_t occupiedBytes_ = 0;
    std::uint32_t staged_ = 0;
    bool stagedValid_ = false;

    std::uint64_t compressionCalls_ = 0;
    std::uint64_t rawBytesTotal_ = 0;    ///< lineBytes per call
    std::uint64_t storedBytesTotal_ = 0; ///< stored size per call
    std::uint64_t extraEvictions_ = 0;
    UnitHistogram ratioHist_; ///< stored/lineBytes per compression

    std::vector<std::uint8_t> line_;    ///< synthetic content scratch
    std::vector<std::uint8_t> scratch_; ///< compressed-output scratch
};

/**
 * ZArray with extra tags over a byte-budgeted data store. The
 * relocation walk (candidates, victim choice, relocations, traces)
 * is the base class's byte for byte; insert() additionally enforces
 * the byte budget via the makeSpace loop documented above.
 */
class CompressedZArray final : public ZArray
{
  public:
    CompressedZArray(std::uint32_t num_blocks, const ZArrayConfig& zcfg,
                     std::unique_ptr<SizeMirror> mirror);

    Replacement insert(Addr lineAddr, const AccessContext& ctx) override;

    std::string name() const override;
    void registerStats(StatGroup& g) override;

    void
    resetStats() override
    {
        ZArray::resetStats();
        mirror_->resetCompressionStats();
    }

    const SizeMirror& sizeMirror() const { return *mirror_; }
    std::uint64_t dataBudgetBytes() const { return dataBytes_; }

  private:
    SizeMirror* mirror_; ///< the policy_, as its concrete type
    std::uint64_t dataBytes_;
};

/** Set-associative baseline with the same extra-tag/byte-budget
 *  semantics, for compressed-vs-compressed design comparisons. */
class CompressedSetAssoc final : public SetAssociativeArray
{
  public:
    CompressedSetAssoc(std::uint32_t num_blocks, std::uint32_t ways,
                       std::unique_ptr<SizeMirror> mirror,
                       HashPtr index_hash);

    Replacement insert(Addr lineAddr, const AccessContext& ctx) override;

    std::string name() const override;
    void registerStats(StatGroup& g) override;

    void
    resetStats() override
    {
        SetAssociativeArray::resetStats();
        mirror_->resetCompressionStats();
    }

    const SizeMirror& sizeMirror() const { return *mirror_; }
    std::uint64_t dataBudgetBytes() const { return dataBytes_; }

  private:
    SizeMirror* mirror_;
    std::uint64_t dataBytes_;
};

} // namespace zc
