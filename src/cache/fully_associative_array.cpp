#include "cache/fully_associative_array.hpp"

#include <vector>

#include "common/log.hpp"

namespace zc {

FullyAssociativeArray::FullyAssociativeArray(
    std::uint32_t num_blocks, std::unique_ptr<ReplacementPolicy> policy)
    : CacheArray(num_blocks, std::move(policy)),
      tags_(num_blocks, kInvalidAddr)
{
    index_.reserve(num_blocks);
    freeList_.reserve(num_blocks);
    // Fill the free list so that positions are handed out low-first.
    for (std::uint32_t p = num_blocks; p > 0; p--) {
        freeList_.push_back(p - 1);
    }
}

BlockPos
FullyAssociativeArray::access(Addr lineAddr, const AccessContext& ctx)
{
    stats_.tagReads++; // one CAM search
    auto it = index_.find(lineAddr);
    if (it == index_.end()) return kInvalidPos;
    stats_.dataReads++;
    policy_->onHit(it->second, ctx);
    return it->second;
}

BlockPos
FullyAssociativeArray::probe(Addr lineAddr) const
{
    auto it = index_.find(lineAddr);
    return it == index_.end() ? kInvalidPos : it->second;
}

BlockPos
FullyAssociativeArray::pickVictim()
{
    std::vector<BlockPos> cands;
    cands.reserve(index_.size());
    for (const auto& [addr, pos] : index_) cands.push_back(pos);
    return policy_->select(cands);
}

Replacement
FullyAssociativeArray::insert(Addr lineAddr, const AccessContext& ctx)
{
    zc_assert(lineAddr != kInvalidAddr);
    zc_assert(probe(lineAddr) == kInvalidPos);

    Replacement r;
    BlockPos pos;
    if (!freeList_.empty()) {
        pos = freeList_.back();
        freeList_.pop_back();
        r.candidates = 1;
    } else {
        pos = pickVictim();
        r.candidates = static_cast<std::uint32_t>(index_.size());
        notifyEviction(pos);
        r.evictedAddr = tags_[pos];
        policy_->onEvict(pos);
        index_.erase(tags_[pos]);
    }

    r.victimPos = pos;
    tags_[pos] = lineAddr;
    index_.emplace(lineAddr, pos);
    stats_.tagWrites++;
    stats_.dataWrites++;
    policy_->onInsert(pos, ctx);
    return r;
}

bool
FullyAssociativeArray::invalidate(Addr lineAddr)
{
    auto it = index_.find(lineAddr);
    if (it == index_.end()) return false;
    BlockPos pos = it->second;
    index_.erase(it);
    tags_[pos] = kInvalidAddr;
    freeList_.push_back(pos);
    stats_.tagWrites++;
    policy_->onEvict(pos);
    return true;
}

Addr
FullyAssociativeArray::addrAt(BlockPos pos) const
{
    zc_assert(pos < numBlocks_);
    return tags_[pos];
}

void
FullyAssociativeArray::forEachValid(
    const std::function<void(BlockPos, Addr)>& fn) const
{
    for (const auto& [addr, pos] : index_) fn(pos, addr);
}

std::uint32_t
FullyAssociativeArray::validCount() const
{
    return static_cast<std::uint32_t>(index_.size());
}

std::string
FullyAssociativeArray::name() const
{
    return "FullyAssoc(blocks=" + std::to_string(numBlocks_) +
           ", repl=" + policy_->name() + ")";
}

} // namespace zc
