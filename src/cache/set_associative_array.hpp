/**
 * @file
 * Conventional set-associative cache array, with pluggable set-index
 * hashing (Section II-A: plain bit selection or a hash of the block
 * address).
 *
 * Replacement candidates are exactly the W blocks of the indexed set, so
 * R == W: ways and associativity are coupled — the behaviour the zcache
 * breaks.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_array.hpp"
#include "hash/hash_function.hpp"

namespace zc {

class SetAssociativeArray : public CacheArray
{
  public:
    /**
     * @param num_blocks Total blocks; must be a multiple of @p ways.
     * @param ways Set size W.
     * @param policy Replacement policy (sized num_blocks).
     * @param index_hash Set index function over [0, num_blocks/ways).
     */
    SetAssociativeArray(std::uint32_t num_blocks, std::uint32_t ways,
                        std::unique_ptr<ReplacementPolicy> policy,
                        HashPtr index_hash);

    BlockPos access(Addr lineAddr, const AccessContext& ctx) override;
    BlockPos probe(Addr lineAddr) const override;
    std::uint32_t lookupWays(Addr lineAddr, BlockPos* out,
                             std::uint32_t cap) const override;
    Replacement insert(Addr lineAddr, const AccessContext& ctx) override;
    bool invalidate(Addr lineAddr) override;

    Addr addrAt(BlockPos pos) const override;
    void forEachValid(
        const std::function<void(BlockPos, Addr)>& fn) const override;
    std::uint32_t validCount() const override;
    std::string name() const override;

    std::uint32_t ways() const { return ways_; }
    std::uint32_t sets() const { return sets_; }

    void
    registerStats(StatGroup& g) override
    {
        CacheArray::registerStats(g);
        g.addConst("ways", "set size W (== candidates R)",
                   JsonValue(ways_));
        g.addConst("sets", "number of sets", JsonValue(sets_));
    }

  private:
    std::uint64_t setOf(Addr lineAddr) const;

    std::uint32_t ways_;
    std::uint32_t sets_;
    HashPtr indexHash_;
    std::vector<Addr> tags_;
    std::uint32_t valid_ = 0;
};

} // namespace zc
