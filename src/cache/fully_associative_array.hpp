/**
 * @file
 * Fully-associative cache array.
 *
 * Every resident block is a replacement candidate, so the policy's global
 * best is always evicted (eviction priority 1.0 by definition — the
 * reference point of the Section IV framework). Also the standard for
 * conflict-miss accounting: conflict misses of a design are its misses
 * minus the misses of a fully-associative cache of the same size
 * (Section IV, citing Hill & Smith).
 *
 * Lookups use a hash map; this models content-addressable tag search and
 * is an analysis tool, not a hardware proposal.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hpp"

namespace zc {

class FullyAssociativeArray : public CacheArray
{
  public:
    FullyAssociativeArray(std::uint32_t num_blocks,
                          std::unique_ptr<ReplacementPolicy> policy);

    BlockPos access(Addr lineAddr, const AccessContext& ctx) override;
    BlockPos probe(Addr lineAddr) const override;
    Replacement insert(Addr lineAddr, const AccessContext& ctx) override;
    bool invalidate(Addr lineAddr) override;

    Addr addrAt(BlockPos pos) const override;
    void forEachValid(
        const std::function<void(BlockPos, Addr)>& fn) const override;
    std::uint32_t validCount() const override;
    std::string name() const override;

  protected:
    /** Victim selection hook; FullyAssociative offers all valid blocks. */
    virtual BlockPos pickVictim();

    std::unordered_map<Addr, BlockPos> index_;
    std::vector<Addr> tags_;
    std::vector<BlockPos> freeList_;
};

} // namespace zc
