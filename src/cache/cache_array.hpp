/**
 * @file
 * Abstract cache array.
 *
 * Per the paper's model (Section IV-A) a cache splits into a *cache array*
 * — which implements associative lookup and, on a replacement, produces a
 * list of replacement candidates — and a *replacement policy*, which ranks
 * blocks globally. CacheArray is the array half; it owns a
 * ReplacementPolicy and drives it through the position-based notification
 * protocol in replacement/policy.hpp.
 *
 * Arrays expose a flat BlockPos space of numBlocks() positions; the
 * mapping from position to physical (way, line) or (set, way) is private
 * to each implementation.
 *
 * All operations account tag/data array reads and writes in stats() so
 * that energy (Section III-B's E_miss formula) and bandwidth (Section
 * VI-D) analyses can be layered on without touching the arrays.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/log.hpp"
#include "common/stats_registry.hpp"
#include "common/types.hpp"
#include "replacement/policy.hpp"

namespace zc {

/** Tag/data array traffic counters (per array). */
struct ArrayStats
{
    std::uint64_t tagReads = 0;
    std::uint64_t tagWrites = 0;
    std::uint64_t dataReads = 0;
    std::uint64_t dataWrites = 0;

    void
    reset()
    {
        tagReads = tagWrites = dataReads = dataWrites = 0;
    }
};

/** Outcome of a replacement (miss-path insertion). */
struct Replacement
{
    /** Address evicted, or kInvalidAddr if an empty slot absorbed the
     *  fill. */
    Addr evictedAddr = kInvalidAddr;

    /** Position the victim occupied before any relocation. */
    BlockPos victimPos = kInvalidPos;

    /** Replacement candidates examined (R in Section III-B). */
    std::uint32_t candidates = 0;

    /** Block relocations performed (m in Section III-B; 0 for
     *  non-zcache arrays). */
    std::uint32_t relocations = 0;

    /**
     * Additional victims evicted beyond the walk's own, to satisfy a
     * byte budget (compressed arrays' makeSpace, docs/compression.md;
     * 0 for every uncompressed array).
     */
    std::uint32_t extraEvictions = 0;

    bool evictedValid() const { return evictedAddr != kInvalidAddr; }
};

class CacheArray
{
  public:
    /**
     * Called immediately before a *valid* block is evicted on a
     * replacement, with the victim's current position. Used by the
     * Section IV framework to compute eviction priorities. Invalidations
     * (coherence) do not trigger the observer: they are not replacement
     * decisions.
     */
    using EvictionObserver =
        std::function<void(const CacheArray&, BlockPos victim)>;

    CacheArray(std::uint32_t num_blocks,
               std::unique_ptr<ReplacementPolicy> policy)
        : numBlocks_(num_blocks), policy_(std::move(policy))
    {
        zc_assert(num_blocks > 0);
        zc_assert(policy_ != nullptr);
        zc_assert(policy_->numBlocks() == num_blocks);
    }

    virtual ~CacheArray() = default;

    CacheArray(const CacheArray&) = delete;
    CacheArray& operator=(const CacheArray&) = delete;

    std::uint32_t numBlocks() const { return numBlocks_; }

    /**
     * Look up @p lineAddr; on a hit, touch the replacement policy and
     * return the block's position; on a miss return kInvalidPos.
     */
    virtual BlockPos access(Addr lineAddr, const AccessContext& ctx) = 0;

    /**
     * Probe without updating replacement state (e.g. coherence probes,
     * tests). Returns position or kInvalidPos. Does not count traffic.
     */
    virtual BlockPos probe(Addr lineAddr) const = 0;

    /**
     * Enumerate every position @p lineAddr could legally occupy — the W
     * first-level way positions in a zcache/skew array, the indexed
     * set's W slots in a set-associative one. Writes at most @p cap
     * positions to @p out and returns the count, or 0 if the array kind
     * does not support candidate-position enumeration (the default).
     *
     * The contract that makes this usable from a lock-free reader: the
     * result depends only on @p lineAddr and construction-time state
     * (hash matrices, geometry), never on the array's mutable contents,
     * and the call touches no mutable state and counts no traffic. A
     * resident block always sits in one of these positions — zcache
     * relocations only ever move a block between its own candidate
     * positions (Section III-A).
     */
    virtual std::uint32_t
    lookupWays(Addr lineAddr, BlockPos* out, std::uint32_t cap) const
    {
        (void)lineAddr;
        (void)out;
        (void)cap;
        return 0;
    }

    /**
     * Miss path: select a victim among this array's replacement
     * candidates, evict it, make room (relocations in a zcache) and
     * install @p lineAddr. @p lineAddr must not be resident.
     */
    virtual Replacement insert(Addr lineAddr, const AccessContext& ctx) = 0;

    /**
     * Remove @p lineAddr if present (coherence invalidation / back-
     * invalidation). Returns true iff the block was resident.
     */
    virtual bool invalidate(Addr lineAddr) = 0;

    /** Address resident at @p pos, or kInvalidAddr. */
    virtual Addr addrAt(BlockPos pos) const = 0;

    /** Enumerate all valid blocks. */
    virtual void
    forEachValid(const std::function<void(BlockPos, Addr)>& fn) const = 0;

    /** Number of currently valid blocks. */
    virtual std::uint32_t validCount() const = 0;

    /** Human-readable configuration string. */
    virtual std::string name() const = 0;

    ReplacementPolicy& policy() { return *policy_; }
    const ReplacementPolicy& policy() const { return *policy_; }

    const ArrayStats& stats() const { return stats_; }
    virtual void resetStats() { stats_.reset(); }

    /**
     * Register this array's stats into @p g (zsim's initStats idiom).
     * The base registers the common tag/data traffic counters and
     * occupancy; subclasses extend with design-specific stats (walk
     * statistics, victim-buffer hits, ...). Call at most once per array
     * per group — names are unique and re-registration throws. The
     * array must outlive the group.
     */
    virtual void
    registerStats(StatGroup& g)
    {
        g.addString("name", "array configuration", [this] {
            return name();
        });
        g.addCounter("blocks", "total block capacity",
                     [this] { return std::uint64_t{numBlocks_}; });
        g.addCounter("valid_blocks", "currently valid blocks", [this] {
            return std::uint64_t{validCount()};
        });
        g.addCounter("tag_reads", "tag-array read operations",
                     [this] { return stats_.tagReads; });
        g.addCounter("tag_writes", "tag-array write operations",
                     [this] { return stats_.tagWrites; });
        g.addCounter("data_reads", "data-array read operations",
                     [this] { return stats_.dataReads; });
        g.addCounter("data_writes", "data-array write operations",
                     [this] { return stats_.dataWrites; });
        g.addResetHook([this] { resetStats(); });
    }

    void
    setEvictionObserver(EvictionObserver obs)
    {
        observer_ = std::move(obs);
    }

  protected:
    void
    notifyEviction(BlockPos victim) const
    {
        if (observer_) observer_(*this, victim);
    }

    std::uint32_t numBlocks_;
    std::unique_ptr<ReplacementPolicy> policy_;
    ArrayStats stats_;
    EvictionObserver observer_;
};

} // namespace zc
