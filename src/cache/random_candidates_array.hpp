/**
 * @file
 * Random-candidates cache array (paper Section IV-B).
 *
 * "A cache array that returns n randomly selected replacement candidates
 * (with repetition) from all the blocks in the cache always achieves
 * these associativity curves perfectly." Storage and lookup are
 * fully-associative; only victim selection differs — n independent
 * uniform draws over the resident blocks. Unrealizable in hardware, but
 * it meets the uniformity assumption *by construction*, which makes it
 * the reference design that validates F_A(x) = x^n (Fig. 2) and
 * calibrates the framework tests.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/fully_associative_array.hpp"
#include "common/rng.hpp"

namespace zc {

class RandomCandidatesArray final : public FullyAssociativeArray
{
  public:
    /**
     * @param num_candidates n random draws (with repetition) per
     *        replacement.
     */
    RandomCandidatesArray(std::uint32_t num_blocks,
                          std::uint32_t num_candidates,
                          std::unique_ptr<ReplacementPolicy> policy,
                          std::uint64_t seed = 0xcafe)
        : FullyAssociativeArray(num_blocks, std::move(policy)),
          numCandidates_(num_candidates),
          rng_(seed, /*stream=*/0xb5ad4eceda1ce2a9ULL)
    {
        zc_assert(num_candidates >= 1);
    }

    std::uint32_t numCandidates() const { return numCandidates_; }

    std::string
    name() const override
    {
        return "RandomCandidates(blocks=" + std::to_string(numBlocks()) +
               ", n=" + std::to_string(numCandidates_) +
               ", repl=" + policy().name() + ")";
    }

  protected:
    BlockPos
    pickVictim() override
    {
        // Draw n resident positions uniformly, with repetition. The
        // position space is dense ([0, numBlocks)) once the cache has
        // filled, which is the only regime where pickVictim runs.
        std::vector<BlockPos> cands;
        cands.reserve(numCandidates_);
        for (std::uint32_t i = 0; i < numCandidates_; i++) {
            cands.push_back(rng_.below(numBlocks()));
        }
        return policy().select(cands);
    }

  private:
    std::uint32_t numCandidates_;
    Pcg32 rng_;
};

} // namespace zc
