/**
 * @file
 * Factory for the cache-array designs compared in the paper's
 * evaluation, keyed by a compact spec that benches and examples share.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cache/column_associative_array.hpp"
#include "cache/fully_associative_array.hpp"
#include "cache/random_candidates_array.hpp"
#include "cache/set_associative_array.hpp"
#include "cache/skew_associative_array.hpp"
#include "cache/victim_cache_array.hpp"
#include "cache/vway_array.hpp"
#include "cache/z_array.hpp"
#include "common/log.hpp"
#include "hash/hash_factory.hpp"
#include "replacement/policy_factory.hpp"

namespace zc {

/** Which array design to build. */
enum class ArrayKind {
    SetAssoc,         ///< set-associative, pluggable index hash
    SkewAssoc,        ///< skew-associative (Z with L=1)
    ZCache,           ///< zcache
    FullyAssoc,       ///< fully-associative (analysis)
    RandomCandidates, ///< Section IV-B reference design
    VictimCache,      ///< SA main array + FA victim buffer (Section II-B)
    VWay,             ///< oversized tag array + indirection (Section II-B)
    ColumnAssoc,      ///< direct-mapped + rehash location (Section II-B)
};

/** Compact description of an array + policy configuration. */
struct ArraySpec
{
    ArrayKind kind = ArrayKind::ZCache;
    std::uint32_t blocks = 1024;
    std::uint32_t ways = 4;

    /** ZCache walk levels; RandomCandidates candidate count n. */
    std::uint32_t levels = 2;
    std::uint32_t candidates = 16;

    HashKind hashKind = HashKind::H3;
    PolicyKind policy = PolicyKind::Lru;
    WalkStrategy walk = WalkStrategy::Bfs;
    std::uint32_t maxCandidates = 0; ///< zcache early-stop cap (0 = off)
    bool bloomRepeatFilter = false;

    /** ZCache walk-event trace ring-buffer entries (0 = tracing off). */
    std::uint32_t walkTraceCapacity = 0;

    /** VictimCache only: buffer entries on top of `blocks`. */
    std::uint32_t victimBlocks = 16;

    /** VWay only: tag entries per data block. */
    std::uint32_t tagRatio = 2;

    std::uint64_t seed = 0x5eed;

    std::string
    label() const
    {
        switch (kind) {
          case ArrayKind::SetAssoc:
            return "SA" + std::to_string(ways) + "/" +
                   std::string(hashKindName(hashKind));
          case ArrayKind::SkewAssoc:
            return "Skew" + std::to_string(ways);
          case ArrayKind::ZCache:
            return "Z" + std::to_string(ways) + "/" +
                   std::to_string(
                       ZArray::nominalCandidates(ways, levels));
          case ArrayKind::FullyAssoc:
            return "FA";
          case ArrayKind::RandomCandidates:
            return "Rand/" + std::to_string(candidates);
          case ArrayKind::VictimCache:
            return "SA" + std::to_string(ways) + "+V" +
                   std::to_string(victimBlocks);
          case ArrayKind::VWay:
            return "VWay" + std::to_string(ways) + "/" +
                   std::to_string(candidates);
          case ArrayKind::ColumnAssoc:
            return "ColAssoc";
        }
        return "?";
    }
};

inline std::unique_ptr<CacheArray>
makeArray(const ArraySpec& spec)
{
    std::uint32_t policy_blocks = spec.blocks;
    if (spec.kind == ArrayKind::VictimCache) {
        policy_blocks += spec.victimBlocks; // policy spans both arrays
    }
    auto policy = makePolicy(spec.policy, policy_blocks, spec.seed ^ 0x9d2c);
    switch (spec.kind) {
      case ArrayKind::SetAssoc: {
        zc_assert(spec.blocks % spec.ways == 0);
        auto hash = makeHash(spec.hashKind, spec.blocks / spec.ways,
                             spec.seed);
        return std::make_unique<SetAssociativeArray>(
            spec.blocks, spec.ways, std::move(policy), std::move(hash));
      }
      case ArrayKind::SkewAssoc:
        return std::make_unique<SkewAssociativeArray>(
            spec.blocks, spec.ways, std::move(policy), spec.hashKind,
            spec.seed);
      case ArrayKind::ZCache: {
        ZArrayConfig cfg;
        cfg.ways = spec.ways;
        cfg.levels = spec.levels;
        cfg.maxCandidates = spec.maxCandidates;
        cfg.strategy = spec.walk;
        cfg.bloomRepeatFilter = spec.bloomRepeatFilter;
        cfg.hashKind = spec.hashKind;
        cfg.seed = spec.seed;
        cfg.traceCapacity = spec.walkTraceCapacity;
        return std::make_unique<ZArray>(spec.blocks, cfg, std::move(policy));
      }
      case ArrayKind::FullyAssoc:
        return std::make_unique<FullyAssociativeArray>(spec.blocks,
                                                       std::move(policy));
      case ArrayKind::RandomCandidates:
        return std::make_unique<RandomCandidatesArray>(
            spec.blocks, spec.candidates, std::move(policy), spec.seed);
      case ArrayKind::VictimCache: {
        zc_assert(spec.blocks % spec.ways == 0);
        auto hash = makeHash(spec.hashKind, spec.blocks / spec.ways,
                             spec.seed);
        return std::make_unique<VictimCacheArray>(
            spec.blocks, spec.ways, spec.victimBlocks, std::move(policy),
            std::move(hash));
      }
      case ArrayKind::ColumnAssoc:
        return std::make_unique<ColumnAssociativeArray>(spec.blocks,
                                                        std::move(policy));
      case ArrayKind::VWay: {
        std::uint32_t tag_sets =
            spec.blocks * spec.tagRatio / spec.ways;
        auto hash = makeHash(spec.hashKind, tag_sets, spec.seed);
        return std::make_unique<VWayArray>(
            spec.blocks, spec.tagRatio, spec.ways, spec.candidates,
            std::move(policy), std::move(hash), spec.seed);
      }
    }
    zc_panic("unknown array kind");
}

} // namespace zc
