/**
 * @file
 * Factory for the cache-array designs compared in the paper's
 * evaluation, keyed by a compact spec that benches and examples share.
 */

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "cache/column_associative_array.hpp"
#include "cache/compressed_array.hpp"
#include "cache/fully_associative_array.hpp"
#include "cache/random_candidates_array.hpp"
#include "cache/set_associative_array.hpp"
#include "cache/skew_associative_array.hpp"
#include "cache/victim_cache_array.hpp"
#include "cache/vway_array.hpp"
#include "cache/z_array.hpp"
#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/status.hpp"
#include "hash/hash_factory.hpp"
#include "replacement/policy_factory.hpp"

namespace zc {

/** Which array design to build. */
enum class ArrayKind {
    SetAssoc,         ///< set-associative, pluggable index hash
    SkewAssoc,        ///< skew-associative (Z with L=1)
    ZCache,           ///< zcache
    FullyAssoc,       ///< fully-associative (analysis)
    RandomCandidates, ///< Section IV-B reference design
    VictimCache,      ///< SA main array + FA victim buffer (Section II-B)
    VWay,             ///< oversized tag array + indirection (Section II-B)
    ColumnAssoc,      ///< direct-mapped + rehash location (Section II-B)
    CompressedZ,      ///< extra-tag zcache over a byte-budgeted store
    CompressedSetAssoc, ///< extra-tag SA baseline (docs/compression.md)
};

inline const char*
arrayKindName(ArrayKind k)
{
    switch (k) {
      case ArrayKind::SetAssoc: return "set-assoc";
      case ArrayKind::SkewAssoc: return "skew-assoc";
      case ArrayKind::ZCache: return "zcache";
      case ArrayKind::FullyAssoc: return "fully-assoc";
      case ArrayKind::RandomCandidates: return "random-candidates";
      case ArrayKind::VictimCache: return "victim-cache";
      case ArrayKind::VWay: return "vway";
      case ArrayKind::ColumnAssoc: return "column-assoc";
      case ArrayKind::CompressedZ: return "compressed-z";
      case ArrayKind::CompressedSetAssoc: return "compressed-set-assoc";
    }
    return "?";
}

/** Every ArrayKind, for name listings and parse diagnostics. */
inline constexpr std::array<ArrayKind, 10> kAllArrayKinds{
    ArrayKind::SetAssoc,    ArrayKind::SkewAssoc,
    ArrayKind::ZCache,      ArrayKind::FullyAssoc,
    ArrayKind::RandomCandidates, ArrayKind::VictimCache,
    ArrayKind::VWay,        ArrayKind::ColumnAssoc,
    ArrayKind::CompressedZ, ArrayKind::CompressedSetAssoc,
};

/**
 * Parse an array-design name (the strings arrayKindName emits);
 * unknown names yield a structured NotFound error listing every valid
 * name.
 */
inline Expected<ArrayKind>
parseArrayKind(const std::string& name)
{
    for (ArrayKind k : kAllArrayKinds) {
        if (name == arrayKindName(k)) return k;
    }
    std::string valid;
    for (ArrayKind k : kAllArrayKinds) {
        if (!valid.empty()) valid += ", ";
        valid += arrayKindName(k);
    }
    return Status::notFound("array: unknown design '" + name +
                            "' (valid: " + valid + ")");
}

/** Compact description of an array + policy configuration. */
struct ArraySpec
{
    ArrayKind kind = ArrayKind::ZCache;
    std::uint32_t blocks = 1024;
    std::uint32_t ways = 4;

    /** ZCache walk levels; RandomCandidates candidate count n. */
    std::uint32_t levels = 2;
    std::uint32_t candidates = 16;

    HashKind hashKind = HashKind::H3;
    PolicyKind policy = PolicyKind::Lru;
    WalkStrategy walk = WalkStrategy::Bfs;
    std::uint32_t maxCandidates = 0; ///< zcache early-stop cap (0 = off)
    bool bloomRepeatFilter = false;

    /** ZCache walk-event trace ring-buffer entries (0 = tracing off). */
    std::uint32_t walkTraceCapacity = 0;

    /** VictimCache only: buffer entries on top of `blocks`. */
    std::uint32_t victimBlocks = 16;

    /** VWay only: tag entries per data block. */
    std::uint32_t tagRatio = 2;

    /**
     * Compressed kinds only (docs/compression.md): tag entries per
     * data block (blocks = tag positions; the data store budgets
     * (blocks / extraTagRatio) * lineBytes bytes), the modeled line
     * size, the codec, and the synthetic line-content mix.
     */
    std::uint32_t extraTagRatio = 2;
    std::uint32_t lineBytes = 64;
    CodecKind codec = CodecKind::Bdi;
    ContentModel content;

    std::uint64_t seed = 0x5eed;

    std::string
    label() const
    {
        switch (kind) {
          case ArrayKind::SetAssoc:
            return "SA" + std::to_string(ways) + "/" +
                   std::string(hashKindName(hashKind));
          case ArrayKind::SkewAssoc:
            return "Skew" + std::to_string(ways);
          case ArrayKind::ZCache:
            return "Z" + std::to_string(ways) + "/" +
                   std::to_string(
                       ZArray::nominalCandidates(ways, levels));
          case ArrayKind::FullyAssoc:
            return "FA";
          case ArrayKind::RandomCandidates:
            return "Rand/" + std::to_string(candidates);
          case ArrayKind::VictimCache:
            return "SA" + std::to_string(ways) + "+V" +
                   std::to_string(victimBlocks);
          case ArrayKind::VWay:
            return "VWay" + std::to_string(ways) + "/" +
                   std::to_string(candidates);
          case ArrayKind::ColumnAssoc:
            return "ColAssoc";
          case ArrayKind::CompressedZ:
            return "CZ" + std::to_string(ways) + "/" +
                   std::to_string(
                       ZArray::nominalCandidates(ways, levels)) +
                   "x" + std::to_string(extraTagRatio) + "/" +
                   std::string(codecKindName(codec));
          case ArrayKind::CompressedSetAssoc:
            return "CSA" + std::to_string(ways) + "x" +
                   std::to_string(extraTagRatio) + "/" +
                   std::string(codecKindName(codec));
        }
        return "?";
    }
};

/**
 * Field-level validation of an ArraySpec against the constraints the
 * array constructors enforce, with diagnostics naming the offending
 * field and value. makeArray runs this first, so an impossible
 * configuration surfaces as a recoverable StatusError — one failed
 * sweep point — instead of an assertion abort.
 */
inline Status
validateSpec(const ArraySpec& spec)
{
    const std::string kind = arrayKindName(spec.kind);
    auto bad = [&](const std::string& msg) {
        return Status::invalidArgument("array spec (" + kind + "): " + msg);
    };

    if (spec.blocks == 0) return bad("blocks must be > 0");

    bool uses_ways = spec.kind == ArrayKind::SetAssoc ||
                     spec.kind == ArrayKind::SkewAssoc ||
                     spec.kind == ArrayKind::ZCache ||
                     spec.kind == ArrayKind::VictimCache ||
                     spec.kind == ArrayKind::VWay ||
                     spec.kind == ArrayKind::CompressedZ ||
                     spec.kind == ArrayKind::CompressedSetAssoc;
    if (uses_ways) {
        if (spec.ways == 0) return bad("ways must be > 0");
        if (spec.kind != ArrayKind::VWay && spec.blocks % spec.ways != 0) {
            return bad("blocks (" + std::to_string(spec.blocks) +
                       ") must be divisible by ways (" +
                       std::to_string(spec.ways) + ")");
        }
    }

    // The compressed kinds add codec/geometry constraints on top of
    // their uncompressed base's own (shared via the fallthrough below).
    if (spec.kind == ArrayKind::CompressedZ ||
        spec.kind == ArrayKind::CompressedSetAssoc) {
        CompressedArrayConfig ccfg;
        ccfg.lineBytes = spec.lineBytes;
        ccfg.extraTagRatio = spec.extraTagRatio;
        ccfg.codec = spec.codec;
        ccfg.content = spec.content;
        if (Status s = ccfg.validate(spec.blocks); !s.isOk()) return s;
    }

    switch (spec.kind) {
      case ArrayKind::SkewAssoc:
      case ArrayKind::ZCache:
      case ArrayKind::CompressedZ: {
        if (spec.ways < 2) {
            return bad("ways (" + std::to_string(spec.ways) +
                       ") must be >= 2 — one hashed way per candidate "
                       "path");
        }
        if (spec.kind != ArrayKind::SkewAssoc && spec.levels == 0) {
            return bad("levels must be >= 1");
        }
        std::uint32_t lines_per_way = spec.blocks / spec.ways;
        if (!isPow2(lines_per_way)) {
            return bad("blocks/ways (" + std::to_string(lines_per_way) +
                       ") must be a power of two");
        }
        break;
      }
      case ArrayKind::RandomCandidates:
        if (spec.candidates == 0) return bad("candidates must be > 0");
        if (spec.candidates > spec.blocks) {
            return bad("candidates (" + std::to_string(spec.candidates) +
                       ") must not exceed blocks (" +
                       std::to_string(spec.blocks) + ")");
        }
        break;
      case ArrayKind::VictimCache:
        if (spec.victimBlocks == 0) {
            return bad("victimBlocks must be > 0");
        }
        break;
      case ArrayKind::VWay: {
        if (spec.tagRatio == 0) return bad("tagRatio must be >= 1");
        if (spec.candidates == 0) return bad("candidates must be > 0");
        std::uint64_t tag_entries =
            static_cast<std::uint64_t>(spec.blocks) * spec.tagRatio;
        if (tag_entries % spec.ways != 0) {
            return bad("blocks*tagRatio (" + std::to_string(tag_entries) +
                       ") must be divisible by ways (" +
                       std::to_string(spec.ways) + ")");
        }
        break;
      }
      case ArrayKind::ColumnAssoc:
        if (spec.blocks < 2 || !isPow2(spec.blocks)) {
            return bad("blocks (" + std::to_string(spec.blocks) +
                       ") must be a power of two >= 2");
        }
        break;
      case ArrayKind::SetAssoc:
      case ArrayKind::CompressedSetAssoc:
      case ArrayKind::FullyAssoc:
        break;
    }
    return Status::ok();
}

/**
 * Blocks the policy of a spec-built array must span: equal to
 * spec.blocks for every design except the victim cache, whose policy
 * covers the main array plus the victim buffer.
 */
inline std::uint32_t
policyBlocksFor(const ArraySpec& spec)
{
    std::uint32_t policy_blocks = spec.blocks;
    if (spec.kind == ArrayKind::VictimCache) {
        policy_blocks += spec.victimBlocks; // policy spans both arrays
    }
    return policy_blocks;
}

/**
 * Build the array described by @p spec around a caller-supplied policy
 * (sized policyBlocksFor(spec)). Lets callers interpose a decorating
 * policy — the zkv store mirrors key/value payloads through one
 * (src/store/zkv.hpp) — while the array construction stays shared.
 */
inline std::unique_ptr<CacheArray>
makeArray(const ArraySpec& spec, std::unique_ptr<ReplacementPolicy> policy)
{
    throwIfError(validateSpec(spec));
    zc_assert(policy != nullptr);
    zc_assert(policy->numBlocks() == policyBlocksFor(spec));
    switch (spec.kind) {
      case ArrayKind::SetAssoc: {
        auto hash = makeHash(spec.hashKind, spec.blocks / spec.ways,
                             spec.seed);
        return std::make_unique<SetAssociativeArray>(
            spec.blocks, spec.ways, std::move(policy), std::move(hash));
      }
      case ArrayKind::SkewAssoc:
        return std::make_unique<SkewAssociativeArray>(
            spec.blocks, spec.ways, std::move(policy), spec.hashKind,
            spec.seed);
      case ArrayKind::ZCache: {
        ZArrayConfig cfg;
        cfg.ways = spec.ways;
        cfg.levels = spec.levels;
        cfg.maxCandidates = spec.maxCandidates;
        cfg.strategy = spec.walk;
        cfg.bloomRepeatFilter = spec.bloomRepeatFilter;
        cfg.hashKind = spec.hashKind;
        cfg.seed = spec.seed;
        cfg.traceCapacity = spec.walkTraceCapacity;
        return std::make_unique<ZArray>(spec.blocks, cfg, std::move(policy));
      }
      case ArrayKind::FullyAssoc:
        return std::make_unique<FullyAssociativeArray>(spec.blocks,
                                                       std::move(policy));
      case ArrayKind::RandomCandidates:
        return std::make_unique<RandomCandidatesArray>(
            spec.blocks, spec.candidates, std::move(policy), spec.seed);
      case ArrayKind::VictimCache: {
        auto hash = makeHash(spec.hashKind, spec.blocks / spec.ways,
                             spec.seed);
        return std::make_unique<VictimCacheArray>(
            spec.blocks, spec.ways, spec.victimBlocks, std::move(policy),
            std::move(hash));
      }
      case ArrayKind::ColumnAssoc:
        return std::make_unique<ColumnAssociativeArray>(spec.blocks,
                                                        std::move(policy));
      case ArrayKind::VWay: {
        std::uint32_t tag_sets =
            spec.blocks * spec.tagRatio / spec.ways;
        auto hash = makeHash(spec.hashKind, tag_sets, spec.seed);
        return std::make_unique<VWayArray>(
            spec.blocks, spec.tagRatio, spec.ways, spec.candidates,
            std::move(policy), std::move(hash), spec.seed);
      }
      case ArrayKind::CompressedZ: {
        CompressedArrayConfig ccfg;
        ccfg.lineBytes = spec.lineBytes;
        ccfg.extraTagRatio = spec.extraTagRatio;
        ccfg.codec = spec.codec;
        ccfg.content = spec.content;
        auto mirror =
            std::make_unique<SizeMirror>(std::move(policy), ccfg);
        ZArrayConfig cfg;
        cfg.ways = spec.ways;
        cfg.levels = spec.levels;
        cfg.maxCandidates = spec.maxCandidates;
        cfg.strategy = spec.walk;
        cfg.bloomRepeatFilter = spec.bloomRepeatFilter;
        cfg.hashKind = spec.hashKind;
        cfg.seed = spec.seed;
        cfg.traceCapacity = spec.walkTraceCapacity;
        return std::make_unique<CompressedZArray>(spec.blocks, cfg,
                                                  std::move(mirror));
      }
      case ArrayKind::CompressedSetAssoc: {
        CompressedArrayConfig ccfg;
        ccfg.lineBytes = spec.lineBytes;
        ccfg.extraTagRatio = spec.extraTagRatio;
        ccfg.codec = spec.codec;
        ccfg.content = spec.content;
        auto mirror =
            std::make_unique<SizeMirror>(std::move(policy), ccfg);
        auto hash = makeHash(spec.hashKind, spec.blocks / spec.ways,
                             spec.seed);
        return std::make_unique<CompressedSetAssoc>(
            spec.blocks, spec.ways, std::move(mirror), std::move(hash));
      }
    }
    zc_panic("unknown array kind");
}

inline std::unique_ptr<CacheArray>
makeArray(const ArraySpec& spec)
{
    throwIfError(validateSpec(spec));
    return makeArray(spec, makePolicy(spec.policy, policyBlocksFor(spec),
                                      spec.seed ^ 0x9d2c));
}

} // namespace zc
