/**
 * @file
 * Victim-cache organization (Jouppi 1990; paper Section II-B).
 *
 * A conventional set-associative main array backed by a small
 * fully-associative victim buffer: blocks evicted from the main array
 * park in the buffer until re-referenced (swapped back in) or pushed
 * out. One of the background "increase the number of locations"
 * approaches the paper contrasts the zcache against — it helps when
 * conflict victims are re-referenced quickly, but, as the paper notes,
 * "works poorly with a sizable amount of conflict misses in several hot
 * ways", and every main-array miss pays an extra probe.
 *
 * Position space: [0, mainBlocks) is the main array, [mainBlocks,
 * mainBlocks + victimBlocks) the buffer. A single policy spans both, so
 * the Section IV framework measures the composite design directly.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hpp"
#include "hash/hash_function.hpp"

namespace zc {

class VictimCacheArray final : public CacheArray
{
  public:
    /**
     * @param main_blocks Main set-associative array capacity.
     * @param ways Main array set size.
     * @param victim_blocks Fully-associative victim buffer entries.
     * @param policy Spans main + victim positions
     *        (main_blocks + victim_blocks).
     * @param index_hash Main-array set index over main_blocks/ways sets.
     */
    VictimCacheArray(std::uint32_t main_blocks, std::uint32_t ways,
                     std::uint32_t victim_blocks,
                     std::unique_ptr<ReplacementPolicy> policy,
                     HashPtr index_hash);

    BlockPos access(Addr lineAddr, const AccessContext& ctx) override;
    BlockPos probe(Addr lineAddr) const override;
    Replacement insert(Addr lineAddr, const AccessContext& ctx) override;
    bool invalidate(Addr lineAddr) override;

    Addr addrAt(BlockPos pos) const override;
    void forEachValid(
        const std::function<void(BlockPos, Addr)>& fn) const override;
    std::uint32_t validCount() const override;
    std::string name() const override;

    std::uint32_t mainBlocks() const { return mainBlocks_; }
    std::uint32_t victimBlocks() const { return victimBlocks_; }

    /** Hits served by the victim buffer (swap-backs). */
    std::uint64_t victimHits() const { return victimHits_; }

    void
    registerStats(StatGroup& g) override
    {
        CacheArray::registerStats(g);
        g.addConst("main_blocks", "main set-associative array capacity",
                   JsonValue(mainBlocks_));
        g.addConst("victim_blocks", "victim-buffer entries",
                   JsonValue(victimBlocks_));
        g.addCounter("victim_hits", "hits served by the victim buffer",
                     [this] { return victimHits_; });
    }

  private:
    std::uint64_t setOf(Addr lineAddr) const;
    BlockPos probeMain(Addr lineAddr) const;
    BlockPos probeVictim(Addr lineAddr) const;

    /** Evict from a full main set; returns the freed position. */
    BlockPos makeRoomInSet(std::uint64_t set, Addr incoming);

    /** Park @p addr (from main) in the victim buffer. */
    void parkInVictim(Addr addr, BlockPos from_main, Replacement* r);

    std::uint32_t mainBlocks_;
    std::uint32_t ways_;
    std::uint32_t sets_;
    std::uint32_t victimBlocks_;
    HashPtr indexHash_;
    std::vector<Addr> tags_; ///< main then victim positions
    std::unordered_map<Addr, BlockPos> victimIndex_;
    std::uint32_t valid_ = 0;
    std::uint64_t victimHits_ = 0;
};

} // namespace zc
