/**
 * @file
 * V-Way cache (Qureshi, Thompson & Patt, ISCA 2005; paper Section
 * II-B).
 *
 * The tag array is a conventional set-associative structure but holds
 * more entries than the data array (typically 2x), with each valid tag
 * pointing into a non-associative data store. Tag conflicts become
 * rare, and data replacement is *global*: any data block is a
 * candidate, picked here by sampling the replacement policy (standing
 * in for the original's reuse-counter scan). The cost the paper calls
 * out — ~2x tag overhead and serialized tag-then-data access — is the
 * contrast with the zcache, which gets global-quality candidates with
 * ordinary tags.
 *
 * BlockPos space: data block indices [0, dataBlocks). The policy ranks
 * data blocks, so the Section IV framework applies unchanged.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_array.hpp"
#include "common/rng.hpp"
#include "hash/hash_function.hpp"

namespace zc {

class VWayArray final : public CacheArray
{
  public:
    /**
     * @param data_blocks Data-store capacity (this is numBlocks()).
     * @param tag_ratio Tag entries per data block (paper-typical: 2).
     * @param tag_ways Associativity of the tag array.
     * @param global_candidates Data blocks sampled per global
     *        replacement (the reuse-counter-scan stand-in).
     * @param policy Ranks data blocks; sized data_blocks.
     * @param index_hash Tag-set index over
     *        data_blocks*tag_ratio/tag_ways sets.
     */
    VWayArray(std::uint32_t data_blocks, std::uint32_t tag_ratio,
              std::uint32_t tag_ways, std::uint32_t global_candidates,
              std::unique_ptr<ReplacementPolicy> policy,
              HashPtr index_hash, std::uint64_t seed = 0x77a7);

    BlockPos access(Addr lineAddr, const AccessContext& ctx) override;
    BlockPos probe(Addr lineAddr) const override;
    Replacement insert(Addr lineAddr, const AccessContext& ctx) override;
    bool invalidate(Addr lineAddr) override;

    Addr addrAt(BlockPos pos) const override;
    void forEachValid(
        const std::function<void(BlockPos, Addr)>& fn) const override;
    std::uint32_t validCount() const override;
    std::string name() const override;

    std::uint32_t tagEntries() const
    {
        return static_cast<std::uint32_t>(tags_.size());
    }

    /** Fills lost to tag conflicts (should be rare — the design goal). */
    std::uint64_t tagConflictEvictions() const { return tagConflicts_; }

    void
    registerStats(StatGroup& g) override
    {
        CacheArray::registerStats(g);
        g.addConst("tag_entries", "oversized tag-array entries",
                   JsonValue(tagEntries()));
        g.addCounter("tag_conflict_evictions",
                     "fills lost to tag-set conflicts",
                     [this] { return tagConflicts_; });
    }

  private:
    static constexpr std::uint32_t kNoTag = static_cast<std::uint32_t>(-1);

    struct TagEntry
    {
        Addr addr = kInvalidAddr;
        BlockPos dataIdx = kInvalidPos;
        bool valid() const { return addr != kInvalidAddr; }
    };

    std::uint32_t setBase(Addr lineAddr) const;
    std::uint32_t findTag(Addr lineAddr) const;
    void freeDataOfTag(std::uint32_t tag_idx);

    std::uint32_t tagWays_;
    std::uint32_t tagSets_;
    std::uint32_t globalCandidates_;
    HashPtr indexHash_;
    std::vector<TagEntry> tags_;
    std::vector<std::uint32_t> dataOwner_; ///< data block -> tag index
    std::vector<BlockPos> freeData_;
    Pcg32 rng_;
    std::uint64_t tagConflicts_ = 0;
};

} // namespace zc
