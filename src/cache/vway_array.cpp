#include "cache/vway_array.hpp"

#include <vector>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace zc {

VWayArray::VWayArray(std::uint32_t data_blocks, std::uint32_t tag_ratio,
                     std::uint32_t tag_ways,
                     std::uint32_t global_candidates,
                     std::unique_ptr<ReplacementPolicy> policy,
                     HashPtr index_hash, std::uint64_t seed)
    : CacheArray(data_blocks, std::move(policy)),
      tagWays_(tag_ways),
      tagSets_(data_blocks * tag_ratio / tag_ways),
      globalCandidates_(global_candidates),
      indexHash_(std::move(index_hash)),
      tags_(static_cast<std::size_t>(data_blocks) * tag_ratio),
      dataOwner_(data_blocks, kNoTag),
      rng_(seed, /*stream=*/0x632be59bd9b4e019ULL)
{
    zc_assert(tag_ratio >= 1);
    zc_assert(tag_ways >= 1);
    zc_assert((static_cast<std::uint64_t>(data_blocks) * tag_ratio) %
                  tag_ways ==
              0);
    zc_assert(global_candidates >= 1);
    zc_assert(indexHash_ != nullptr);
    zc_assert(indexHash_->buckets() == tagSets_);
    freeData_.reserve(data_blocks);
    for (std::uint32_t p = data_blocks; p > 0; p--) {
        freeData_.push_back(p - 1);
    }
}

std::uint32_t
VWayArray::setBase(Addr lineAddr) const
{
    std::uint64_t set = indexHash_->hash(lineAddr);
    zc_assert(set < tagSets_);
    return static_cast<std::uint32_t>(set * tagWays_);
}

std::uint32_t
VWayArray::findTag(Addr lineAddr) const
{
    std::uint32_t base = setBase(lineAddr);
    for (std::uint32_t w = 0; w < tagWays_; w++) {
        if (tags_[base + w].addr == lineAddr) return base + w;
    }
    return kNoTag;
}

BlockPos
VWayArray::access(Addr lineAddr, const AccessContext& ctx)
{
    stats_.tagReads += tagWays_;
    std::uint32_t t = findTag(lineAddr);
    if (t == kNoTag) return kInvalidPos;
    BlockPos data = tags_[t].dataIdx;
    stats_.dataReads++;
    policy_->onHit(data, ctx);
    return data;
}

BlockPos
VWayArray::probe(Addr lineAddr) const
{
    std::uint32_t t = findTag(lineAddr);
    return t == kNoTag ? kInvalidPos : tags_[t].dataIdx;
}

void
VWayArray::freeDataOfTag(std::uint32_t tag_idx)
{
    TagEntry& e = tags_[tag_idx];
    zc_assert(e.valid());
    dataOwner_[e.dataIdx] = kNoTag;
    freeData_.push_back(e.dataIdx);
    e = TagEntry{};
    stats_.tagWrites++;
}

Replacement
VWayArray::insert(Addr lineAddr, const AccessContext& ctx)
{
    zc_assert(lineAddr != kInvalidAddr);
    zc_assert(probe(lineAddr) == kInvalidPos);

    Replacement r;
    std::uint32_t base = setBase(lineAddr);

    // Find a free tag in the set.
    std::uint32_t tag_idx = kNoTag;
    for (std::uint32_t w = 0; w < tagWays_; w++) {
        if (!tags_[base + w].valid()) {
            tag_idx = base + w;
            break;
        }
    }

    if (tag_idx == kNoTag) {
        // Tag conflict (rare with tag_ratio >= 2): evict the set's
        // least valuable entry and reuse its data block directly.
        tagConflicts_++;
        r.candidates = tagWays_;
        std::vector<BlockPos> cands;
        cands.reserve(tagWays_);
        for (std::uint32_t w = 0; w < tagWays_; w++) {
            cands.push_back(tags_[base + w].dataIdx);
        }
        BlockPos victim_data = policy_->select(cands);
        std::uint32_t victim_tag = dataOwner_[victim_data];
        notifyEviction(victim_data);
        r.evictedAddr = tags_[victim_tag].addr;
        r.victimPos = victim_data;
        policy_->onEvict(victim_data);
        freeDataOfTag(victim_tag);
        tag_idx = victim_tag;
    }

    // Obtain a data block: free one, or global replacement.
    BlockPos data;
    if (!freeData_.empty()) {
        data = freeData_.back();
        freeData_.pop_back();
        if (r.candidates == 0) r.candidates = 1;
    } else {
        // Sample the data store (stand-in for the reuse-counter scan).
        std::vector<BlockPos> cands;
        cands.reserve(globalCandidates_);
        for (std::uint32_t i = 0; i < globalCandidates_; i++) {
            cands.push_back(rng_.below(numBlocks_));
        }
        r.candidates += globalCandidates_;
        data = policy_->select(cands);
        std::uint32_t victim_tag = dataOwner_[data];
        zc_assert(victim_tag != kNoTag);
        notifyEviction(data);
        r.evictedAddr = tags_[victim_tag].addr;
        r.victimPos = data;
        policy_->onEvict(data);
        freeDataOfTag(victim_tag);
        data = freeData_.back();
        freeData_.pop_back();
        stats_.tagReads++; // victim tag access via back-pointer
    }

    tags_[tag_idx] = TagEntry{lineAddr, data};
    dataOwner_[data] = tag_idx;
    stats_.tagWrites++;
    stats_.dataWrites++;
    policy_->onInsert(data, ctx);
    return r;
}

bool
VWayArray::invalidate(Addr lineAddr)
{
    std::uint32_t t = findTag(lineAddr);
    if (t == kNoTag) return false;
    policy_->onEvict(tags_[t].dataIdx);
    freeDataOfTag(t);
    return true;
}

Addr
VWayArray::addrAt(BlockPos pos) const
{
    zc_assert(pos < numBlocks_);
    std::uint32_t owner = dataOwner_[pos];
    return owner == kNoTag ? kInvalidAddr : tags_[owner].addr;
}

void
VWayArray::forEachValid(
    const std::function<void(BlockPos, Addr)>& fn) const
{
    for (BlockPos p = 0; p < numBlocks_; p++) {
        if (dataOwner_[p] != kNoTag) fn(p, tags_[dataOwner_[p]].addr);
    }
}

std::uint32_t
VWayArray::validCount() const
{
    return numBlocks_ - static_cast<std::uint32_t>(freeData_.size());
}

std::string
VWayArray::name() const
{
    return "VWay(data=" + std::to_string(numBlocks_) + ", tags=" +
           std::to_string(tags_.size()) + "x" + std::to_string(tagWays_) +
           "w, sample=" + std::to_string(globalCandidates_) +
           ", repl=" + policy_->name() + ")";
}

} // namespace zc
