/**
 * @file
 * Single-level cache model: array + policy + hit/miss bookkeeping.
 *
 * The standalone composite used by the associativity experiments
 * (Fig. 2/3) and the examples: feed it a reference stream, it performs
 * lookups and miss-path insertions and tracks hit/miss/eviction counts.
 * The multi-level hierarchy of the performance evaluation lives in
 * src/sim and embeds arrays directly.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cache/cache_array.hpp"
#include "common/stats.hpp"

namespace zc {

struct CacheModelStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t relocations = 0;

    /** Byte-budget evictions beyond the walk's victim (compressed
     *  arrays only; docs/compression.md). */
    std::uint64_t extraEvictions = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

class CacheModel
{
  public:
    explicit CacheModel(std::unique_ptr<CacheArray> array)
        : array_(std::move(array))
    {
        zc_assert(array_ != nullptr);
    }

    /**
     * Reference @p lineAddr: on a miss the block is fetched and
     * installed. Returns true on a hit.
     */
    bool
    access(Addr lineAddr, const AccessContext& ctx = {})
    {
        AccessContext c = ctx;
        if (c.lineAddr == kInvalidAddr) c.lineAddr = lineAddr;
        stats_.accesses++;
        if (array_->access(lineAddr, c) != kInvalidPos) {
            stats_.hits++;
            return true;
        }
        stats_.misses++;
        Replacement r = array_->insert(lineAddr, c);
        if (r.evictedValid()) stats_.evictions++;
        stats_.relocations += r.relocations;
        stats_.extraEvictions += r.extraEvictions;
        return false;
    }

    CacheArray& array() { return *array_; }
    const CacheArray& array() const { return *array_; }

    const CacheModelStats& stats() const { return stats_; }
    void resetStats() { stats_ = CacheModelStats{}; }

    std::string name() const { return array_->name(); }

  private:
    std::unique_ptr<CacheArray> array_;
    CacheModelStats stats_;
};

} // namespace zc
