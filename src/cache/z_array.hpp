/**
 * @file
 * The zcache array (Section III) — the paper's primary contribution.
 *
 * Like a skew-associative cache, each of the W ways is indexed by a
 * different hash function and a block can live in exactly one position
 * per way, so hits cost a single W-way lookup. On a replacement, the
 * array *walks* the tag array: the blocks conflicting with the incoming
 * address are first-level candidates; each of those blocks could instead
 * move to its position in any other way, whose current occupants become
 * second-level candidates; and so on — a breadth-first expansion that
 * yields R = W * sum_{l=0}^{L-1} (W-1)^l candidates after L levels. The
 * victim is the policy's best candidate anywhere in the tree; its
 * ancestors are relocated one step down their path to make room, and the
 * incoming block lands in the first-level slot of the victim's root way.
 *
 * Extensions from Section III-D are implemented and selectable:
 *  - early stop (candidate cap) — trades associativity for bandwidth;
 *  - Bloom-filter repeat avoidance;
 *  - DFS (cuckoo-style single-path) walks;
 *  - hybrid BFS+DFS: a second BFS phase tries to re-insert the phase-1
 *    victim, doubling candidates without extra walk-table state.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/bloom_filter.hpp"
#include "cache/cache_array.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "hash/hash_factory.hpp"
#include "hash/hash_function.hpp"
#include "hash/way_index.hpp"

namespace zc {

/** Walk strategy (Section III-D, "Alternative walk strategies"). */
enum class WalkStrategy {
    Bfs,    ///< breadth-first (paper default; hardware walk table)
    Dfs,    ///< depth-first single path (cuckoo-hashing style)
    Hybrid, ///< BFS, then a second BFS rooted at the phase-1 victim
};

/** ZArray configuration. */
struct ZArrayConfig
{
    std::uint32_t ways = 4;

    /**
     * Walk levels L (BFS/Hybrid). L=1 degenerates to a skew-associative
     * cache (first-level candidates only). For Hybrid, each phase uses
     * `levels` levels.
     */
    std::uint32_t levels = 2;

    /**
     * Early-stop cap on replacement candidates (0 = no cap). Models
     * stopping the walk when bandwidth or energy becomes a concern
     * (Section III, "the replacement process can be stopped early").
     */
    std::uint32_t maxCandidates = 0;

    WalkStrategy strategy = WalkStrategy::Bfs;

    /** Avoid re-expanding visited addresses (Section III-D). */
    bool bloomRepeatFilter = false;

    /** Hash family used to index the ways. */
    HashKind hashKind = HashKind::H3;

    /** Seed for hash matrices and the DFS path choice. */
    std::uint64_t seed = 0x5eed;

    /**
     * Walk-event trace: keep the last traceCapacity replacement events
     * in a ring buffer (0 = tracing off, zero overhead). Gives direct
     * visibility into the Section III-B replacement process: per walk,
     * the levels expanded, candidates seen, victim depth, the victim's
     * eviction-priority rank among the candidates, and whether the
     * walk's latency hides under the triggering miss's memory latency.
     */
    std::uint32_t traceCapacity = 0;

    /** Tag access latency (cycles) for the per-walk latency estimate. */
    std::uint32_t traceTagCycles = 2;

    /**
     * Miss latency budget (cycles) a walk must fit under to count as
     * hidden — Table I's 200-cycle memory latency by default.
     */
    std::uint32_t traceMissLatencyCycles = 200;

    /**
     * Test-only: run the pre-optimization reference implementation —
     * per-way virtual hash() calls and std::unordered_set candidate
     * dedup — instead of the batched WayIndexer + epoch-stamped flat
     * dedup. The two paths must produce bit-identical walks, stats and
     * victim choices; tests/test_walk_equivalence.cpp holds them to
     * that. Never enable in production runs: it only costs speed.
     */
    bool referenceWalk = false;
};

/** One traced replacement walk (ZArrayConfig::traceCapacity > 0). */
struct WalkEvent
{
    std::uint32_t candidates = 0;  ///< replacement candidates examined
    std::uint32_t levels = 0;      ///< walk-tree levels expanded
    std::uint32_t victimDepth = 0; ///< victim's level == relocations done
    /**
     * Number of examined candidates the policy preferred to evict over
     * the chosen victim (0 = victim was the best seen). Nonzero when an
     * empty slot absorbed the fill mid-walk or a capped/hybrid walk
     * settled for a worse block.
     */
    std::uint32_t evictionRank = 0;
    std::uint32_t latencyCycles = 0; ///< estimated pipelined walk latency
    bool emptyAbsorbed = false;      ///< fill landed in an empty slot
    bool capped = false;             ///< early-stopped by maxCandidates
    bool hiddenUnderMissLatency = false; ///< latency fits under the miss
};

/** Streaming aggregate over all traced walk events (not just the ring). */
struct WalkTraceSummary
{
    std::uint64_t events = 0;
    std::uint64_t hidden = 0;
    std::uint64_t capped = 0;
    std::uint64_t emptyAbsorbed = 0;
    RunningStat candidates;
    RunningStat victimDepth;
    RunningStat evictionRank;
    RunningStat latencyCycles;
};

/** Aggregate walk statistics (for energy and bandwidth analyses). */
struct ZWalkStats
{
    std::uint64_t walks = 0;            ///< replacements performed
    std::uint64_t candidatesTotal = 0;  ///< sum of candidates over walks
    std::uint64_t relocationsTotal = 0; ///< sum of relocations over walks
    std::uint64_t repeatsTotal = 0;     ///< candidates skipped/repeated
    std::uint64_t emptyAbsorbed = 0;    ///< fills absorbed by empty slots

    double
    avgCandidates() const
    {
        return walks ? static_cast<double>(candidatesTotal) /
                           static_cast<double>(walks)
                     : 0.0;
    }

    double
    avgRelocations() const
    {
        return walks ? static_cast<double>(relocationsTotal) /
                           static_cast<double>(walks)
                     : 0.0;
    }
};

class ZArray : public CacheArray
{
  public:
    /**
     * @param num_blocks Total blocks; must be ways * 2^k.
     * @param cfg Walk/hash configuration.
     * @param policy Replacement policy (sized num_blocks).
     */
    ZArray(std::uint32_t num_blocks, const ZArrayConfig& cfg,
           std::unique_ptr<ReplacementPolicy> policy);

    /**
     * Construct with explicit per-way hash functions (one per way, each
     * over linesPerWay buckets). Used by tests that need fully
     * deterministic walk trees — e.g. the golden reproduction of the
     * paper's Fig. 1 example — and by callers with bespoke families.
     */
    ZArray(std::uint32_t num_blocks, const ZArrayConfig& cfg,
           std::unique_ptr<ReplacementPolicy> policy,
           std::vector<HashPtr> hashes);

    BlockPos access(Addr lineAddr, const AccessContext& ctx) override;
    BlockPos probe(Addr lineAddr) const override;
    std::uint32_t lookupWays(Addr lineAddr, BlockPos* out,
                             std::uint32_t cap) const override;
    Replacement insert(Addr lineAddr, const AccessContext& ctx) override;
    bool invalidate(Addr lineAddr) override;

    Addr addrAt(BlockPos pos) const override;
    void forEachValid(
        const std::function<void(BlockPos, Addr)>& fn) const override;
    std::uint32_t validCount() const override;
    std::string name() const override;

    std::uint32_t ways() const { return cfg_.ways; }
    std::uint32_t linesPerWay() const { return linesPerWay_; }
    const ZArrayConfig& config() const { return cfg_; }
    const ZWalkStats& walkStats() const { return zstats_; }

    /** Streaming aggregate over every traced walk (tracing enabled). */
    const WalkTraceSummary& walkTraceSummary() const { return traceSummary_; }

    /** Retained ring-buffer events, oldest first. */
    std::vector<WalkEvent> walkTraceSnapshot() const;

    bool walkTraceEnabled() const { return cfg_.traceCapacity > 0; }

    void registerStats(StatGroup& g) override;

    void
    resetStats() override
    {
        CacheArray::resetStats();
        zstats_ = ZWalkStats{};
        trace_.clear();
        traceHead_ = 0;
        traceSummary_ = WalkTraceSummary{};
    }

    /**
     * Adjust the early-stop candidate cap at run time (0 = uncapped).
     * Supports the paper's future-work direction of adaptive /
     * software-controlled associativity: "the zcache makes it trivial
     * to increase or reduce associativity with the same hardware
     * design" (Section VIII). See examples/adaptive_assoc.cpp.
     */
    void setMaxCandidates(std::uint32_t cap) { cfg_.maxCandidates = cap; }

    /**
     * Nominal replacement candidates R for a W-way, L-level BFS walk
     * with no repeats: R = W * sum_{l=0}^{L-1} (W-1)^l (Section III-B).
     */
    static std::uint32_t nominalCandidates(std::uint32_t ways,
                                           std::uint32_t levels);

    /**
     * Pipelined walk latency in tag-access units (Section III-B):
     * T_walk = sum_{l=0}^{L-1} max(T_tag, (W-1)^l).
     */
    static std::uint32_t walkLatency(std::uint32_t ways,
                                     std::uint32_t levels,
                                     std::uint32_t tag_cycles);

  private:
    /** One walk-table entry. Parent links give the relocation path. */
    struct WalkNode
    {
        BlockPos pos;
        Addr addr; ///< occupant at walk time; kInvalidAddr if empty slot
        std::uint32_t way;
        std::int32_t parent; ///< index into nodes_, -1 for first level
        bool repeat; ///< Bloom filter saw this address before (III-D)
    };

    BlockPos positionOf(std::uint32_t way, Addr lineAddr) const;
    std::uint32_t nextDedupEpoch();
    bool onAncestorPath(std::int32_t node, BlockPos pos) const;
    void pushNode(BlockPos pos, std::uint32_t way, std::int32_t parent);
    void expandNode(std::uint32_t node_idx);
    void expandSubtree(std::uint32_t root_idx, std::uint32_t levels);
    std::uint32_t walkBfs(Addr incoming);
    std::uint32_t walkDfs(Addr incoming);
    std::int32_t findShallowestEmpty(std::size_t from) const;
    std::int32_t selectAmong(std::size_t begin, std::size_t end,
                             std::int32_t extra_idx);
    Replacement commit(Addr lineAddr, const AccessContext& ctx,
                       std::uint32_t victim_idx, std::uint32_t candidates);
    std::uint32_t nodeDepth(std::int32_t idx) const;
    void recordWalkEvent(std::uint32_t victim_idx,
                         std::uint32_t candidates);

    ZArrayConfig cfg_;
    std::uint32_t linesPerWay_;
    std::vector<HashPtr> hashes_;
    WayIndexer wayIndex_; ///< devirtualized/batched view of hashes_
    std::vector<Addr> tags_;
    std::uint32_t valid_ = 0;
    Pcg32 rng_;
    BloomFilter bloom_;
    ZWalkStats zstats_;

    // Walk scratch state (the hardware walk table); reused across
    // replacements to avoid allocation churn.
    std::vector<WalkNode> nodes_;
    std::uint32_t walkCap_ = 0;
    bool walkFoundEmpty_ = false;
    bool walkCapped_ = false;

    // Epoch-stamped dedup table, sized to the bank: position p was seen
    // in the current dedup pass iff seenEpoch_[p] == dedupEpoch_.
    // Bumping the epoch empties the whole table in O(1) — no per-walk
    // hashing or rehash allocation like the unordered_set it replaced.
    // On uint32 wraparound the table is re-zeroed so stale stamps from
    // 2^32 passes ago can never read as current.
    std::vector<std::uint32_t> seenEpoch_;
    std::uint32_t dedupEpoch_ = 0;

    // More reusable walk scratch (candidate list + batched way indices).
    std::vector<BlockPos> cands_;
    std::vector<std::uint32_t> candNode_;
    std::vector<BlockPos> wayPos_;

    // Walk-event trace ring buffer (cfg_.traceCapacity entries).
    std::vector<WalkEvent> trace_;
    std::size_t traceHead_ = 0;
    WalkTraceSummary traceSummary_;
};

} // namespace zc
