#include "cache/victim_cache_array.hpp"

#include <vector>

#include "common/log.hpp"

namespace zc {

VictimCacheArray::VictimCacheArray(std::uint32_t main_blocks,
                                   std::uint32_t ways,
                                   std::uint32_t victim_blocks,
                                   std::unique_ptr<ReplacementPolicy> policy,
                                   HashPtr index_hash)
    : CacheArray(main_blocks + victim_blocks, std::move(policy)),
      mainBlocks_(main_blocks),
      ways_(ways),
      sets_(main_blocks / ways),
      victimBlocks_(victim_blocks),
      indexHash_(std::move(index_hash)),
      tags_(main_blocks + victim_blocks, kInvalidAddr)
{
    zc_assert(ways >= 1);
    zc_assert(main_blocks % ways == 0);
    zc_assert(victim_blocks >= 1);
    zc_assert(indexHash_ != nullptr);
    zc_assert(indexHash_->buckets() == sets_);
    victimIndex_.reserve(victim_blocks);
}

std::uint64_t
VictimCacheArray::setOf(Addr lineAddr) const
{
    std::uint64_t set = indexHash_->hash(lineAddr);
    zc_assert(set < sets_);
    return set;
}

BlockPos
VictimCacheArray::probeMain(Addr lineAddr) const
{
    BlockPos base = static_cast<BlockPos>(setOf(lineAddr) * ways_);
    for (std::uint32_t w = 0; w < ways_; w++) {
        if (tags_[base + w] == lineAddr) return base + w;
    }
    return kInvalidPos;
}

BlockPos
VictimCacheArray::probeVictim(Addr lineAddr) const
{
    auto it = victimIndex_.find(lineAddr);
    return it == victimIndex_.end() ? kInvalidPos : it->second;
}

BlockPos
VictimCacheArray::probe(Addr lineAddr) const
{
    BlockPos p = probeMain(lineAddr);
    return p != kInvalidPos ? p : probeVictim(lineAddr);
}

BlockPos
VictimCacheArray::access(Addr lineAddr, const AccessContext& ctx)
{
    stats_.tagReads += ways_;
    BlockPos pos = probeMain(lineAddr);
    if (pos != kInvalidPos) {
        stats_.dataReads++;
        policy_->onHit(pos, ctx);
        return pos;
    }

    // Main miss: probe the victim buffer (one CAM search).
    stats_.tagReads++;
    BlockPos vpos = probeVictim(lineAddr);
    if (vpos == kInvalidPos) return kInvalidPos;

    // Victim hit: promote into the main set; the displaced main block
    // (if the set is full) parks in the freed buffer slot — the classic
    // swap, expressed as evict-from-buffer + move + re-insert.
    victimHits_++;
    victimIndex_.erase(lineAddr);
    tags_[vpos] = kInvalidAddr;
    policy_->onEvict(vpos);
    valid_--;

    BlockPos base = static_cast<BlockPos>(setOf(lineAddr) * ways_);
    BlockPos mpos = kInvalidPos;
    for (std::uint32_t w = 0; w < ways_; w++) {
        if (tags_[base + w] == kInvalidAddr) {
            mpos = base + w;
            break;
        }
    }
    if (mpos == kInvalidPos) {
        std::vector<BlockPos> cands;
        cands.reserve(ways_);
        for (std::uint32_t w = 0; w < ways_; w++) cands.push_back(base + w);
        mpos = policy_->select(cands);
        Addr displaced = tags_[mpos];
        tags_[vpos] = displaced;
        victimIndex_.emplace(displaced, vpos);
        policy_->onMove(mpos, vpos);
        tags_[mpos] = kInvalidAddr;
        stats_.tagWrites++;
        stats_.dataReads++;
        stats_.dataWrites++;
    }

    tags_[mpos] = lineAddr;
    stats_.tagWrites++;
    stats_.dataReads++; // serve the hit from the promoted block
    stats_.dataWrites++;
    valid_++;
    policy_->onInsert(mpos, ctx);
    return mpos;
}

void
VictimCacheArray::parkInVictim(Addr addr, BlockPos from_main,
                               Replacement* r)
{
    // Find a free buffer slot, or evict the buffer's worst block.
    BlockPos slot = kInvalidPos;
    for (BlockPos p = mainBlocks_; p < numBlocks_; p++) {
        if (tags_[p] == kInvalidAddr) {
            slot = p;
            break;
        }
    }
    if (slot == kInvalidPos) {
        std::vector<BlockPos> cands;
        cands.reserve(victimBlocks_);
        for (BlockPos p = mainBlocks_; p < numBlocks_; p++) {
            cands.push_back(p);
        }
        slot = policy_->select(cands);
        r->candidates += victimBlocks_;
        notifyEviction(slot);
        r->evictedAddr = tags_[slot];
        r->victimPos = slot;
        victimIndex_.erase(tags_[slot]);
        policy_->onEvict(slot);
        valid_--;
    }

    tags_[slot] = addr;
    victimIndex_.emplace(addr, slot);
    policy_->onMove(from_main, slot);
    tags_[from_main] = kInvalidAddr;
    stats_.tagWrites++;
    stats_.dataReads++;
    stats_.dataWrites++;
    r->relocations++;
}

Replacement
VictimCacheArray::insert(Addr lineAddr, const AccessContext& ctx)
{
    zc_assert(lineAddr != kInvalidAddr);
    zc_assert(probe(lineAddr) == kInvalidPos);

    Replacement r;
    r.candidates = ways_;

    BlockPos base = static_cast<BlockPos>(setOf(lineAddr) * ways_);
    BlockPos mpos = kInvalidPos;
    for (std::uint32_t w = 0; w < ways_; w++) {
        if (tags_[base + w] == kInvalidAddr) {
            mpos = base + w;
            break;
        }
    }
    if (mpos == kInvalidPos) {
        std::vector<BlockPos> cands;
        cands.reserve(ways_);
        for (std::uint32_t w = 0; w < ways_; w++) cands.push_back(base + w);
        mpos = policy_->select(cands);
        parkInVictim(tags_[mpos], mpos, &r);
    }
    if (r.victimPos == kInvalidPos) r.victimPos = mpos;

    tags_[mpos] = lineAddr;
    stats_.tagWrites++;
    stats_.dataWrites++;
    valid_++;
    policy_->onInsert(mpos, ctx);
    return r;
}

bool
VictimCacheArray::invalidate(Addr lineAddr)
{
    BlockPos pos = probeMain(lineAddr);
    if (pos == kInvalidPos) {
        pos = probeVictim(lineAddr);
        if (pos == kInvalidPos) return false;
        victimIndex_.erase(lineAddr);
    }
    tags_[pos] = kInvalidAddr;
    stats_.tagWrites++;
    policy_->onEvict(pos);
    valid_--;
    return true;
}

Addr
VictimCacheArray::addrAt(BlockPos pos) const
{
    zc_assert(pos < numBlocks_);
    return tags_[pos];
}

void
VictimCacheArray::forEachValid(
    const std::function<void(BlockPos, Addr)>& fn) const
{
    for (BlockPos p = 0; p < numBlocks_; p++) {
        if (tags_[p] != kInvalidAddr) fn(p, tags_[p]);
    }
}

std::uint32_t
VictimCacheArray::validCount() const
{
    return valid_;
}

std::string
VictimCacheArray::name() const
{
    return "VictimCache(main=" + std::to_string(mainBlocks_) + "x" +
           std::to_string(ways_) + "w, victims=" +
           std::to_string(victimBlocks_) + ", index=" + indexHash_->name() +
           ", repl=" + policy_->name() + ")";
}

} // namespace zc
