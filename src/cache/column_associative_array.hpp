/**
 * @file
 * Column-associative cache (Agarwal & Pudar, ISCA 1993; paper Section
 * II-B).
 *
 * A direct-mapped array where a block may live in one of two locations:
 * its primary slot h1(a) or the "rehashed" slot h2(a) (classically,
 * h1 with the top index bit flipped). A lookup probes the primary slot
 * first and the secondary slot second; a secondary hit swaps the two
 * blocks so the hot one is found first next time. A rehash bit per
 * line marks blocks living in their secondary location, bounding the
 * second probe.
 *
 * The paper's criticism this implementation makes measurable: variable
 * hit latency (second probes), extra swap traffic on secondary hits,
 * and only two candidate locations per block.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_array.hpp"
#include "common/bitops.hpp"

namespace zc {

class ColumnAssociativeArray final : public CacheArray
{
  public:
    /** @param num_blocks Power-of-two line count. */
    ColumnAssociativeArray(std::uint32_t num_blocks,
                           std::unique_ptr<ReplacementPolicy> policy);

    BlockPos access(Addr lineAddr, const AccessContext& ctx) override;
    BlockPos probe(Addr lineAddr) const override;
    Replacement insert(Addr lineAddr, const AccessContext& ctx) override;
    bool invalidate(Addr lineAddr) override;

    Addr addrAt(BlockPos pos) const override;
    void forEachValid(
        const std::function<void(BlockPos, Addr)>& fn) const override;
    std::uint32_t validCount() const override;
    std::string name() const override;

    /** Hits served from the secondary location (swap performed). */
    std::uint64_t secondaryHits() const { return secondaryHits_; }

  private:
    BlockPos primary(Addr lineAddr) const;
    BlockPos secondary(Addr lineAddr) const
    {
        // Classic rehash: flip the top index bit.
        return primary(lineAddr) ^ (numBlocks_ >> 1);
    }
    void swap(BlockPos a, BlockPos b);

    std::vector<Addr> tags_;
    std::vector<std::uint8_t> rehash_; ///< block lives in secondary slot
    std::uint32_t valid_ = 0;
    std::uint64_t secondaryHits_ = 0;
};

} // namespace zc
