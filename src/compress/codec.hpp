/**
 * @file
 * Value/line compression codecs for the compressed cache tier
 * (docs/compression.md).
 *
 * A Codec turns a small byte payload (a modeled cache line in the
 * simulator, a zkv value in the store) into a self-describing
 * compressed stream and back. The contract mirrors the repo's other
 * pluggable families (arrays, policies, hashes): an enum kind, a
 * parse function with structured NotFound diagnostics, and a factory.
 *
 * Codecs are pure and stateless: compress/decompress depend only on
 * the input bytes, so a compressed array can recompute a line's size
 * at any time and two runs over the same key sequence stay
 * bit-identical. Failure is structured (docs/robustness.md): a
 * malformed stream decodes to Corruption, never to torn output, and
 * the deterministic fault site `compress.codec` forces that path in
 * tests without hand-crafting corrupt streams.
 *
 * The BDI codec follows base-delta-immediate (Pekhimenko et al.,
 * PACT'12), the scheme Safecracker's zsim compressed arrays use: a
 * payload is viewed as 8- or 4-byte words and encoded as one base
 * word plus per-word deltas narrow enough to fit 1, 2 or 4 bytes;
 * degenerate all-zero and repeated-word payloads get dedicated
 * schemes, and anything incompressible falls back to a raw copy so
 * compress never fails and never expands beyond maxCompressedSize().
 */

#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "common/status.hpp"

namespace zc {

/** Which codec to build. */
enum class CodecKind {
    None, ///< passthrough (testing / bit-identity baselines)
    Bdi,  ///< base-delta-immediate with raw fallback
};

inline const char*
codecKindName(CodecKind k)
{
    switch (k) {
      case CodecKind::None: return "none";
      case CodecKind::Bdi: return "bdi";
    }
    return "?";
}

/** Every CodecKind, for name listings and parse diagnostics. */
inline constexpr std::array<CodecKind, 2> kAllCodecKinds{
    CodecKind::None,
    CodecKind::Bdi,
};

/**
 * Parse a codec name (the strings codecKindName emits); unknown names
 * yield a structured NotFound error listing every valid name.
 */
inline Expected<CodecKind>
parseCodecKind(const std::string& name)
{
    for (CodecKind k : kAllCodecKinds) {
        if (name == codecKindName(k)) return k;
    }
    std::string valid;
    for (CodecKind k : kAllCodecKinds) {
        if (!valid.empty()) valid += ", ";
        valid += codecKindName(k);
    }
    return Status::notFound("codec: unknown codec '" + name +
                            "' (valid: " + valid + ")");
}

/**
 * A compression codec. Implementations are stateless and
 * thread-compatible: const methods may be called concurrently.
 */
class Codec
{
  public:
    virtual ~Codec() = default;

    virtual CodecKind kind() const = 0;
    virtual std::string name() const = 0;

    /**
     * Worst-case compressed size of an @p n byte payload. compress()
     * never writes more than this; callers size buffers with it.
     */
    virtual std::size_t maxCompressedSize(std::size_t n) const = 0;

    /**
     * Compress @p n bytes of @p src into @p dst (capacity @p cap,
     * which must be >= maxCompressedSize(n)). Returns the compressed
     * size. Incompressible input falls back to a raw copy — compress
     * fails only on an impossible call (cap too small), reported as
     * InvalidArgument.
     */
    virtual Expected<std::size_t> compress(const std::uint8_t* src,
                                           std::size_t n,
                                           std::uint8_t* dst,
                                           std::size_t cap) const = 0;

    /**
     * Decompress the @p n byte stream at @p src into @p dst (capacity
     * @p cap). Returns the original payload size. A malformed stream
     * — bad scheme byte, declared length exceeding @p cap, stream
     * shorter than its scheme requires — returns Corruption and
     * writes nothing the caller may observe as a torn value. The
     * `compress.codec` fault site fires here so error paths are
     * testable deterministically (docs/robustness.md).
     */
    virtual Expected<std::size_t> decompress(const std::uint8_t* src,
                                             std::size_t n,
                                             std::uint8_t* dst,
                                             std::size_t cap) const = 0;
};

/** Build the codec for @p kind. Never fails (all kinds are total). */
std::unique_ptr<Codec> makeCodec(CodecKind kind);

/**
 * Deterministic synthetic payload content for compressibility
 * studies: the simulator has no real data bytes behind a line
 * address, so compressed arrays synthesize them as a pure function
 * of (address, seed) with a configurable mix of compressibility
 * classes. The same generator fills zkv loadgen value payloads, so
 * the store-side compression ratios are driven by the same knobs.
 *
 * Classes (selected per address by hash, in percent of addresses):
 *   zero     — all-zero payload        (BDI: collapses to a header)
 *   repeat   — one u64 word repeated   (BDI: base + zero deltas)
 *   delta    — base word + small per-word offsets (BDI: 1-byte deltas)
 *   random   — incompressible stream   (BDI: raw fallback)
 * Percents must sum to <= 100; the remainder is random.
 */
struct ContentModel
{
    std::uint32_t zeroPct = 20;
    std::uint32_t repeatPct = 20;
    std::uint32_t deltaPct = 40;
    std::uint64_t seed = 0xc0deULL;

    Status
    validate() const
    {
        if (zeroPct + repeatPct + deltaPct > 100) {
            return Status::invalidArgument(
                "content model: class percents sum to " +
                std::to_string(zeroPct + repeatPct + deltaPct) +
                " (must be <= 100)");
        }
        return Status::ok();
    }

    /** Fill @p dst[0..n) with @p addr's synthetic content. */
    void fill(std::uint64_t addr, std::uint8_t* dst, std::size_t n) const;

    std::string label() const;
};

} // namespace zc
