#include "compress/codec.hpp"

#include <algorithm>

#include "common/fault_injection.hpp"
#include "common/log.hpp"

namespace zc {
namespace {

/**
 * Stream layout (both codecs' compress output): one scheme byte, a
 * u16 LE original-length field, then the scheme's payload. The
 * header makes every stream self-describing, so decompress needs no
 * out-of-band metadata and can validate internal consistency —
 * the property the Corruption error paths rest on.
 */
constexpr std::size_t kHeaderBytes = 3;

/** Payload size cap imposed by the u16 length field. */
constexpr std::size_t kMaxPayload = 0xffff;

enum Scheme : std::uint8_t {
    kRaw = 0,    ///< verbatim copy (incompressible fallback)
    kZeros = 1,  ///< all bytes zero: header only
    kRep8 = 2,   ///< one u64 word repeated: header + 8 bytes
    kB8D1 = 3,   ///< u64 base + 1-byte deltas
    kB8D2 = 4,   ///< u64 base + 2-byte deltas
    kB8D4 = 5,   ///< u64 base + 4-byte deltas
    kB4D1 = 6,   ///< u32 base + 1-byte deltas
    kB4D2 = 7,   ///< u32 base + 2-byte deltas
    kSchemeCount = 8,
};

void
putHeader(std::uint8_t* dst, Scheme s, std::size_t orig)
{
    dst[0] = static_cast<std::uint8_t>(s);
    dst[1] = static_cast<std::uint8_t>(orig & 0xff);
    dst[2] = static_cast<std::uint8_t>((orig >> 8) & 0xff);
}

/** Load the padded word at word index @p i (zero-padded past n). */
template <typename Word>
Word
paddedWord(const std::uint8_t* src, std::size_t n, std::size_t i)
{
    Word w = 0;
    std::size_t off = i * sizeof(Word);
    std::size_t take = std::min(sizeof(Word), n - off);
    std::memcpy(&w, src + off, take);
    return w;
}

template <typename Word>
std::size_t
wordCount(std::size_t n)
{
    return (n + sizeof(Word) - 1) / sizeof(Word);
}

/**
 * Try a base+delta encoding with @p DeltaBytes-wide deltas over
 * @p Word-sized words. The base is the first word (the common BDI
 * simplification); a payload fits iff every word's signed delta from
 * the base fits DeltaBytes. Returns the encoded size, or 0 on no fit.
 */
template <typename Word, std::size_t DeltaBytes>
std::size_t
tryBaseDelta(const std::uint8_t* src, std::size_t n, std::uint8_t* dst)
{
    const std::size_t words = wordCount<Word>(n);
    const Word base = paddedWord<Word>(src, n, 0);
    const std::int64_t lo = -(std::int64_t{1} << (8 * DeltaBytes - 1));
    const std::int64_t hi = (std::int64_t{1} << (8 * DeltaBytes - 1)) - 1;
    std::size_t out = kHeaderBytes;
    std::memcpy(dst + out, &base, sizeof(Word));
    out += sizeof(Word);
    for (std::size_t i = 0; i < words; i++) {
        const Word w = paddedWord<Word>(src, n, i);
        const std::int64_t delta =
            static_cast<std::int64_t>(w) - static_cast<std::int64_t>(base);
        if (delta < lo || delta > hi) return 0;
        const auto d = static_cast<std::uint64_t>(delta);
        std::memcpy(dst + out, &d, DeltaBytes);
        out += DeltaBytes;
    }
    return out;
}

template <typename Word, std::size_t DeltaBytes>
bool
decodeBaseDelta(const std::uint8_t* src, std::size_t n, std::uint8_t* dst,
                std::size_t orig)
{
    const std::size_t words = wordCount<Word>(orig);
    if (n != sizeof(Word) + words * DeltaBytes) return false;
    Word base = 0;
    std::memcpy(&base, src, sizeof(Word));
    std::size_t off = sizeof(Word);
    std::size_t written = 0;
    for (std::size_t i = 0; i < words; i++) {
        std::uint64_t raw = 0;
        std::memcpy(&raw, src + off, DeltaBytes);
        off += DeltaBytes;
        // Sign-extend the delta.
        const std::uint64_t sign = std::uint64_t{1} << (8 * DeltaBytes - 1);
        std::int64_t delta = static_cast<std::int64_t>((raw ^ sign) - sign);
        const Word w = static_cast<Word>(static_cast<std::int64_t>(base) +
                                         delta);
        const std::size_t take = std::min(sizeof(Word), orig - written);
        std::memcpy(dst + written, &w, take);
        written += take;
    }
    return written == orig;
}

class NullCodec final : public Codec
{
  public:
    CodecKind kind() const override { return CodecKind::None; }
    std::string name() const override { return "none"; }

    /** Pure passthrough: no header, size == n, ratio exactly 1. */
    std::size_t
    maxCompressedSize(std::size_t n) const override
    {
        return n;
    }

    Expected<std::size_t>
    compress(const std::uint8_t* src, std::size_t n, std::uint8_t* dst,
             std::size_t cap) const override
    {
        if (cap < n) {
            return Status::invalidArgument(
                "codec none: output capacity " + std::to_string(cap) +
                " < payload " + std::to_string(n));
        }
        if (n != 0) std::memcpy(dst, src, n); // n==0 may carry null ptrs
        return n;
    }

    Expected<std::size_t>
    decompress(const std::uint8_t* src, std::size_t n, std::uint8_t* dst,
               std::size_t cap) const override
    {
        if (ZC_INJECT_FAULT("compress.codec")) {
            return Status::corruption(
                "codec none: injected decompress failure "
                "(compress.codec)");
        }
        if (cap < n) {
            return Status::corruption(
                "codec none: stream length " + std::to_string(n) +
                " exceeds output capacity " + std::to_string(cap));
        }
        if (n != 0) std::memcpy(dst, src, n); // n==0 may carry null ptrs
        return n;
    }
};

class BdiCodec final : public Codec
{
  public:
    CodecKind kind() const override { return CodecKind::Bdi; }
    std::string name() const override { return "bdi"; }

    /** Raw fallback bounds the worst case: header + verbatim bytes. */
    std::size_t
    maxCompressedSize(std::size_t n) const override
    {
        return kHeaderBytes + n;
    }

    Expected<std::size_t>
    compress(const std::uint8_t* src, std::size_t n, std::uint8_t* dst,
             std::size_t cap) const override
    {
        if (n > kMaxPayload) {
            return Status::invalidArgument(
                "codec bdi: payload " + std::to_string(n) +
                " exceeds the u16 length field (" +
                std::to_string(kMaxPayload) + ")");
        }
        if (cap < maxCompressedSize(n)) {
            return Status::invalidArgument(
                "codec bdi: output capacity " + std::to_string(cap) +
                " < maxCompressedSize " +
                std::to_string(maxCompressedSize(n)));
        }
        if (n == 0) {
            putHeader(dst, kZeros, 0);
            return kHeaderBytes;
        }

        // Degenerate schemes first: all-zero, then one repeated u64.
        bool all_zero = true;
        for (std::size_t i = 0; i < n && all_zero; i++) {
            all_zero = src[i] == 0;
        }
        if (all_zero) {
            putHeader(dst, kZeros, n);
            return kHeaderBytes;
        }
        const std::size_t w8 = wordCount<std::uint64_t>(n);
        const std::uint64_t first = paddedWord<std::uint64_t>(src, n, 0);
        bool repeated = true;
        for (std::size_t i = 1; i < w8 && repeated; i++) {
            repeated = paddedWord<std::uint64_t>(src, n, i) == first;
        }
        if (repeated && n >= 8) {
            // n < 8 is one padded word: "repeated" trivially holds but
            // the 8-byte literal would exceed maxCompressedSize(n).
            putHeader(dst, kRep8, n);
            std::memcpy(dst + kHeaderBytes, &first, 8);
            return kHeaderBytes + 8;
        }

        // Base+delta schemes, narrowest delta first; keep the best.
        std::size_t best = 0;
        Scheme best_scheme = kRaw;
        auto consider = [&](Scheme s, std::size_t size) {
            if (size != 0 && (best == 0 || size < best)) {
                best = size;
                best_scheme = s;
            }
        };
        consider(kB8D1, tryBaseDelta<std::uint64_t, 1>(src, n, dst));
        if (best == 0) {
            consider(kB4D1, tryBaseDelta<std::uint32_t, 1>(src, n, dst));
        }
        if (best == 0) {
            consider(kB8D2, tryBaseDelta<std::uint64_t, 2>(src, n, dst));
        }
        if (best == 0) {
            consider(kB4D2, tryBaseDelta<std::uint32_t, 2>(src, n, dst));
        }
        if (best == 0) {
            consider(kB8D4, tryBaseDelta<std::uint64_t, 4>(src, n, dst));
        }
        if (best != 0 && best < kHeaderBytes + n) {
            putHeader(dst, best_scheme, n);
            return best;
        }

        // Incompressible: raw fallback (the passthrough guarantee).
        putHeader(dst, kRaw, n);
        std::memcpy(dst + kHeaderBytes, src, n);
        return kHeaderBytes + n;
    }

    Expected<std::size_t>
    decompress(const std::uint8_t* src, std::size_t n, std::uint8_t* dst,
               std::size_t cap) const override
    {
        if (ZC_INJECT_FAULT("compress.codec")) {
            return Status::corruption(
                "codec bdi: injected decompress failure "
                "(compress.codec)");
        }
        if (n < kHeaderBytes) {
            return Status::corruption(
                "codec bdi: stream of " + std::to_string(n) +
                " byte(s) is shorter than the 3-byte header");
        }
        const std::uint8_t scheme = src[0];
        const std::size_t orig =
            static_cast<std::size_t>(src[1]) |
            (static_cast<std::size_t>(src[2]) << 8);
        if (scheme >= kSchemeCount) {
            return Status::corruption(
                "codec bdi: unknown scheme byte " +
                std::to_string(scheme));
        }
        if (orig > cap) {
            return Status::corruption(
                "codec bdi: declared payload " + std::to_string(orig) +
                " exceeds output capacity " + std::to_string(cap));
        }
        const std::uint8_t* body = src + kHeaderBytes;
        const std::size_t body_n = n - kHeaderBytes;
        bool ok = false;
        switch (static_cast<Scheme>(scheme)) {
          case kRaw:
            ok = body_n == orig;
            if (ok) std::memcpy(dst, body, orig);
            break;
          case kZeros:
            ok = body_n == 0;
            if (ok) std::memset(dst, 0, orig);
            break;
          case kRep8: {
            ok = body_n == 8 && orig > 0;
            if (ok) {
                for (std::size_t off = 0; off < orig; off += 8) {
                    std::memcpy(dst + off, body,
                                std::min<std::size_t>(8, orig - off));
                }
            }
            break;
          }
          case kB8D1:
            ok = decodeBaseDelta<std::uint64_t, 1>(body, body_n, dst, orig);
            break;
          case kB8D2:
            ok = decodeBaseDelta<std::uint64_t, 2>(body, body_n, dst, orig);
            break;
          case kB8D4:
            ok = decodeBaseDelta<std::uint64_t, 4>(body, body_n, dst, orig);
            break;
          case kB4D1:
            ok = decodeBaseDelta<std::uint32_t, 1>(body, body_n, dst, orig);
            break;
          case kB4D2:
            ok = decodeBaseDelta<std::uint32_t, 2>(body, body_n, dst, orig);
            break;
          case kSchemeCount:
            break;
        }
        if (!ok) {
            return Status::corruption(
                "codec bdi: scheme " + std::to_string(scheme) +
                " stream body of " + std::to_string(body_n) +
                " byte(s) is inconsistent with declared payload " +
                std::to_string(orig));
        }
        return orig;
    }
};

/** splitmix64, the repo's standard deterministic mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::unique_ptr<Codec>
makeCodec(CodecKind kind)
{
    switch (kind) {
      case CodecKind::None: return std::make_unique<NullCodec>();
      case CodecKind::Bdi: return std::make_unique<BdiCodec>();
    }
    zc_panic("unknown codec kind");
}

void
ContentModel::fill(std::uint64_t addr, std::uint8_t* dst,
                   std::size_t n) const
{
    const std::uint64_t h = mix64(addr ^ seed);
    const std::uint32_t pick = static_cast<std::uint32_t>(h % 100);
    if (pick < zeroPct) {
        std::memset(dst, 0, n);
        return;
    }
    if (pick < zeroPct + repeatPct) {
        const std::uint64_t word = mix64(h);
        for (std::size_t off = 0; off < n; off += 8) {
            std::memcpy(dst + off, &word,
                        std::min<std::size_t>(8, n - off));
        }
        return;
    }
    if (pick < zeroPct + repeatPct + deltaPct) {
        // Base word plus small (1-byte-delta) per-word offsets.
        const std::uint64_t base = mix64(h ^ 0xba5eULL);
        for (std::size_t i = 0; i * 8 < n; i++) {
            const std::uint64_t w =
                base + (mix64(h + i) & 0x3f); // deltas in [0, 63]
            std::memcpy(dst + i * 8, &w,
                        std::min<std::size_t>(8, n - i * 8));
        }
        return;
    }
    // Incompressible: a full-width splitmix stream.
    for (std::size_t i = 0; i * 8 < n; i++) {
        const std::uint64_t w = mix64((h ^ 0x7a11ULL) + i);
        std::memcpy(dst + i * 8, &w, std::min<std::size_t>(8, n - i * 8));
    }
}

std::string
ContentModel::label() const
{
    return "z" + std::to_string(zeroPct) + "r" + std::to_string(repeatPct) +
           "d" + std::to_string(deltaPct);
}

} // namespace zc
