/**
 * @file
 * LFU — least frequently used.
 *
 * Section IV-A cites LFU as a policy whose global rank is access
 * frequency. Reference counts saturate at a configurable cap and ties are
 * broken by recency so the global order stays total.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "replacement/policy.hpp"

namespace zc {

class LfuPolicy : public ReplacementPolicy
{
  public:
    explicit LfuPolicy(std::uint32_t num_blocks,
                       std::uint32_t count_cap = 255)
        : ReplacementPolicy(num_blocks),
          cap_(count_cap),
          counts_(num_blocks, 0),
          lastTouch_(num_blocks, 0)
    {
    }

    void
    onInsert(BlockPos pos, const AccessContext&) override
    {
        counts_[pos] = 1;
        lastTouch_[pos] = ++clock_;
    }

    void
    onHit(BlockPos pos, const AccessContext&) override
    {
        if (counts_[pos] < cap_) counts_[pos]++;
        lastTouch_[pos] = ++clock_;
    }

    void
    onMove(BlockPos from, BlockPos to) override
    {
        counts_[to] = counts_[from];
        lastTouch_[to] = lastTouch_[from];
    }

    void
    onEvict(BlockPos pos) override
    {
        counts_[pos] = 0;
        lastTouch_[pos] = 0;
    }

    void
    onSwap(BlockPos a, BlockPos b) override
    {
        std::swap(counts_[a], counts_[b]);
        std::swap(lastTouch_[a], lastTouch_[b]);
    }

    double
    score(BlockPos pos) const override
    {
        return static_cast<double>(counts_[pos]);
    }

    std::uint64_t tieBreaker(BlockPos pos) const override
    {
        return lastTouch_[pos];
    }

    std::string name() const override { return "lfu"; }

  private:
    std::uint32_t cap_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint32_t> counts_;
    std::vector<std::uint64_t> lastTouch_;
};

} // namespace zc
