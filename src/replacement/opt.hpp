/**
 * @file
 * Belady's OPT replacement (paper Section VI-B, trace-driven mode).
 *
 * OPT evicts the candidate whose next reference is furthest in the
 * future. The policy itself is trivial once each access carries its
 * next-use time: AccessContext::nextUse is filled in by the
 * FutureUseAnnotator (src/trace) in a preliminary pass over the trace.
 *
 * Footnote 2 of the paper applies here too: with interference across
 * "sets" (skew caches, zcaches), furthest-next-use is a strong heuristic
 * rather than a true optimum, which is exactly how the paper uses it —
 * to decouple replacement-policy ill-effects from associativity effects.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "replacement/policy.hpp"

namespace zc {

class OptPolicy : public ReplacementPolicy
{
  public:
    explicit OptPolicy(std::uint32_t num_blocks)
        : ReplacementPolicy(num_blocks), nextUse_(num_blocks, kNoNextUse)
    {
    }

    void
    onInsert(BlockPos pos, const AccessContext& ctx) override
    {
        nextUse_[pos] = ctx.nextUse;
    }

    void
    onHit(BlockPos pos, const AccessContext& ctx) override
    {
        nextUse_[pos] = ctx.nextUse;
    }

    void
    onMove(BlockPos from, BlockPos to) override
    {
        nextUse_[to] = nextUse_[from];
    }

    void
    onEvict(BlockPos pos) override
    {
        nextUse_[pos] = kNoNextUse;
    }

    void
    onSwap(BlockPos a, BlockPos b) override
    {
        std::swap(nextUse_[a], nextUse_[b]);
    }

    /**
     * Keep-value: negative next-use distance. Blocks never used again
     * (nextUse == kNoNextUse) get -inf-like scores and go first.
     */
    double
    score(BlockPos pos) const override
    {
        return -static_cast<double>(nextUse_[pos]);
    }

    std::string name() const override { return "opt"; }

    std::uint64_t nextUseOf(BlockPos pos) const { return nextUse_[pos]; }

  private:
    std::vector<std::uint64_t> nextUse_;
};

} // namespace zc
