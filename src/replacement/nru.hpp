/**
 * @file
 * NRU — not-recently-used, single reference bit per block.
 *
 * The paper (Section III-E) notes several processors already use policies
 * that need no set ordering (e.g. the Itanium 2 and UltraSPARC T2 NRU
 * variants [20, 41]); NRU is the canonical one, included as an extension
 * policy for zcache studies.
 *
 * Classic NRU clears all reference bits when every candidate is marked.
 * Here the clear is scoped to the candidate list (the zcache has no set to
 * clear), plus a slow global epoch roll to keep the Section IV rank total.
 */

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "replacement/policy.hpp"

namespace zc {

class NruPolicy : public ReplacementPolicy
{
  public:
    explicit NruPolicy(std::uint32_t num_blocks)
        : ReplacementPolicy(num_blocks),
          referenced_(num_blocks, 0),
          seq_(num_blocks, 0)
    {
    }

    void
    onInsert(BlockPos pos, const AccessContext&) override
    {
        referenced_[pos] = 1;
        seq_[pos] = ++clock_;
    }

    void
    onHit(BlockPos pos, const AccessContext&) override
    {
        referenced_[pos] = 1;
        seq_[pos] = ++clock_;
    }

    void
    onMove(BlockPos from, BlockPos to) override
    {
        referenced_[to] = referenced_[from];
        seq_[to] = seq_[from];
    }

    void
    onEvict(BlockPos pos) override
    {
        referenced_[pos] = 0;
        seq_[pos] = 0;
    }

    void
    onSwap(BlockPos a, BlockPos b) override
    {
        std::swap(referenced_[a], referenced_[b]);
        std::swap(seq_[a], seq_[b]);
    }

    BlockPos
    select(std::span<const BlockPos> cands) override
    {
        // Prefer an unreferenced candidate; otherwise clear the candidates'
        // bits (candidate-scoped "epoch") and take the oldest.
        BlockPos best = kInvalidPos;
        for (BlockPos c : cands) {
            if (!referenced_[c] &&
                (best == kInvalidPos || seq_[c] < seq_[best])) {
                best = c;
            }
        }
        if (best != kInvalidPos) return best;

        best = cands[0];
        for (BlockPos c : cands) {
            referenced_[c] = 0;
            if (seq_[c] < seq_[best]) best = c;
        }
        return best;
    }

    double
    score(BlockPos pos) const override
    {
        return static_cast<double>(referenced_[pos]);
    }

    std::uint64_t tieBreaker(BlockPos pos) const override
    {
        return seq_[pos];
    }

    std::string name() const override { return "nru"; }

  private:
    std::uint64_t clock_ = 0;
    std::vector<std::uint8_t> referenced_;
    std::vector<std::uint64_t> seq_;
};

} // namespace zc
