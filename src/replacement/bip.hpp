/**
 * @file
 * BIP — bimodal insertion (Qureshi et al.; the paper's related-work
 * line of better-than-LRU policies [14, 23, 24, 44]).
 *
 * LRU with a different *insertion* point: most fills enter at the LRU
 * end (old timestamp) and only an ε fraction at the MRU end, so a
 * thrashing working set cannot flush the cache — a block must prove
 * reuse (hit once) to gain recency. Needs no set ordering, which makes
 * it a natural zcache policy; `bench/ablation_replacement`-style
 * comparisons and the art-like thrash profiles exercise it.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "replacement/lru.hpp"

namespace zc {

class BipPolicy final : public LruPolicy
{
  public:
    /**
     * @param epsilon Probability a fill is inserted with MRU recency
     *        (the classic value is 1/32).
     */
    explicit BipPolicy(std::uint32_t num_blocks, double epsilon = 1.0 / 32,
                       std::uint64_t seed = 0xb1b)
        : LruPolicy(num_blocks), epsilon_(epsilon), rng_(seed)
    {
    }

    void
    onInsert(BlockPos pos, const AccessContext& ctx) override
    {
        if (rng_.uniform() < epsilon_) {
            LruPolicy::onInsert(pos, ctx); // MRU insertion
            return;
        }
        // LRU-end insertion: the counter still advances (this was an
        // access) but the block gets the floor timestamp, making it
        // older than every normally-touched block — the next natural
        // victim unless it hits first. Ties among LRU-inserted blocks
        // break by position, as a per-set hardware BIP would.
        counter_++;
        timestamps_[pos] = 1;
    }

    std::string name() const override { return "bip"; }

  private:
    double epsilon_;
    Pcg32 rng_;
};

} // namespace zc
