/**
 * @file
 * Tree-PLRU — the set-ordering-dependent policy skewed caches lose.
 *
 * Section II-A: skew-associative caches (and therefore zcaches) "break
 * the concept of a set, so they cannot use replacement policy
 * implementations that rely on set ordering (e.g. using pseudo-LRU to
 * approximate LRU)." Tree-PLRU is that canonical implementation: one
 * bit per internal node of a binary tree over each set's ways.
 *
 * This policy exists to make the constraint concrete (and testable):
 * it requires its candidate list to be exactly one whole, aligned set,
 * and panics otherwise — handing it to a ZArray trips the check. Its
 * global rank for the Section IV framework is the victim-path depth at
 * which a block would be chosen, refined by access recency.
 */

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/types.hpp"
#include "replacement/policy.hpp"

namespace zc {

class TreePlruPolicy final : public ReplacementPolicy
{
  public:
    /**
     * @param num_blocks Total blocks (sets * ways).
     * @param ways Power-of-two set size; positions are set-major
     *        (pos = set * ways + way), as SetAssociativeArray lays out.
     */
    TreePlruPolicy(std::uint32_t num_blocks, std::uint32_t ways)
        : ReplacementPolicy(num_blocks),
          ways_(ways),
          levels_(log2Floor(ways)),
          // One bit per internal node: ways-1 nodes per set.
          bits_(static_cast<std::size_t>(num_blocks / ways) * (ways - 1),
                0),
          seq_(num_blocks, 0)
    {
        zc_assert(ways >= 2 && isPow2(ways));
        zc_assert(num_blocks % ways == 0);
    }

    void
    onInsert(BlockPos pos, const AccessContext&) override
    {
        touch(pos);
    }

    void
    onHit(BlockPos pos, const AccessContext&) override
    {
        touch(pos);
    }

    void
    onMove(BlockPos, BlockPos) override
    {
        zc_panic("Tree-PLRU has per-set state; it cannot follow "
                 "relocations between sets (Section II-A)");
    }

    void
    onEvict(BlockPos pos) override
    {
        seq_[pos] = 0;
    }

    BlockPos
    select(std::span<const BlockPos> cands) override
    {
        // The candidate list must be one aligned, complete set — the
        // structural requirement skewed designs cannot meet.
        zc_assert(cands.size() == ways_);
        std::uint32_t set = cands[0] / ways_;
        for (std::size_t i = 0; i < cands.size(); i++) {
            zc_assert(cands[i] == set * ways_ + i);
        }

        // Walk the tree following the cold direction at every node.
        std::uint8_t* tree = setTree(set);
        std::uint32_t node = 0;
        for (std::uint32_t l = 0; l < levels_; l++) {
            std::uint32_t go_right = tree[node];
            node = 2 * node + 1 + go_right;
        }
        std::uint32_t way = node - (ways_ - 1);
        return set * ways_ + way;
    }

    /**
     * Keep-value for the framework: how deep a block's way agrees with
     * the tree's victim path (deeper agreement = closer to eviction),
     * refined by recency.
     */
    double
    score(BlockPos pos) const override
    {
        std::uint32_t set = pos / ways_;
        std::uint32_t way = pos % ways_;
        const std::uint8_t* tree =
            &bits_[static_cast<std::size_t>(set) * (ways_ - 1)];
        std::uint32_t node = 0;
        std::uint32_t agreement = 0;
        for (std::uint32_t l = 0; l < levels_; l++) {
            std::uint32_t bit = (way >> (levels_ - 1 - l)) & 1;
            if (tree[node] != bit) break;
            agreement++;
            node = 2 * node + 1 + bit;
        }
        return -static_cast<double>(agreement);
    }

    std::uint64_t tieBreaker(BlockPos pos) const override
    {
        return seq_[pos];
    }

    std::string name() const override { return "tree-plru"; }

  private:
    std::uint8_t*
    setTree(std::uint32_t set)
    {
        return &bits_[static_cast<std::size_t>(set) * (ways_ - 1)];
    }

    void
    touch(BlockPos pos)
    {
        // Point every node on the block's path *away* from it.
        std::uint32_t set = pos / ways_;
        std::uint32_t way = pos % ways_;
        std::uint8_t* tree = setTree(set);
        std::uint32_t node = 0;
        for (std::uint32_t l = 0; l < levels_; l++) {
            std::uint32_t bit = (way >> (levels_ - 1 - l)) & 1;
            tree[node] = static_cast<std::uint8_t>(1 - bit);
            node = 2 * node + 1 + bit;
        }
        seq_[pos] = ++clock_;
    }

    std::uint32_t ways_;
    std::uint32_t levels_;
    std::vector<std::uint8_t> bits_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> seq_;
};

} // namespace zc
