/**
 * @file
 * Random replacement.
 *
 * Each block receives a fresh random keep-value on insertion and hit, so
 * selection among candidates and the Section IV global rank are both
 * uniformly random. Deterministic under a fixed seed.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "replacement/policy.hpp"

namespace zc {

class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint32_t num_blocks, std::uint64_t seed = 1)
        : ReplacementPolicy(num_blocks), rng_(seed), lottery_(num_blocks, 0)
    {
    }

    void
    onInsert(BlockPos pos, const AccessContext&) override
    {
        lottery_[pos] = rng_.next64();
    }

    void
    onHit(BlockPos pos, const AccessContext&) override
    {
        lottery_[pos] = rng_.next64();
    }

    void
    onMove(BlockPos from, BlockPos to) override
    {
        lottery_[to] = lottery_[from];
    }

    void
    onEvict(BlockPos pos) override
    {
        lottery_[pos] = 0;
    }

    void
    onSwap(BlockPos a, BlockPos b) override
    {
        std::swap(lottery_[a], lottery_[b]);
    }

    double
    score(BlockPos pos) const override
    {
        // Scale into [0,1) to keep doubles well-conditioned.
        return static_cast<double>(lottery_[pos]) * 0x1.0p-64;
    }

    std::string name() const override { return "random"; }

  private:
    Pcg32 rng_;
    std::vector<std::uint64_t> lottery_;
};

} // namespace zc
