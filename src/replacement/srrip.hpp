/**
 * @file
 * SRRIP — static re-reference interval prediction (Jaleel et al., ISCA
 * 2010; paper reference [24]).
 *
 * The paper calls RRIP out as one of the "latest, highest-performing
 * policies [that] do not rely on set ordering", i.e. a natural fit for
 * zcaches. 2-bit RRPVs by default: insert at 2 (long re-reference
 * interval), promote to 0 on hit, evict an RRPV==3 candidate, aging the
 * candidate list when none qualifies.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "replacement/policy.hpp"

namespace zc {

class SrripPolicy : public ReplacementPolicy
{
  public:
    explicit SrripPolicy(std::uint32_t num_blocks, std::uint32_t rrpv_bits = 2)
        : ReplacementPolicy(num_blocks),
          maxRrpv_((1u << rrpv_bits) - 1),
          rrpv_(num_blocks, maxRrpv_),
          seq_(num_blocks, 0)
    {
        zc_assert(rrpv_bits >= 1 && rrpv_bits <= 8);
    }

    void
    onInsert(BlockPos pos, const AccessContext&) override
    {
        rrpv_[pos] = maxRrpv_ - 1;
        seq_[pos] = ++clock_;
    }

    void
    onHit(BlockPos pos, const AccessContext&) override
    {
        rrpv_[pos] = 0;
        seq_[pos] = ++clock_;
    }

    void
    onMove(BlockPos from, BlockPos to) override
    {
        rrpv_[to] = rrpv_[from];
        seq_[to] = seq_[from];
    }

    void
    onEvict(BlockPos pos) override
    {
        rrpv_[pos] = maxRrpv_;
        seq_[pos] = 0;
    }

    void
    onSwap(BlockPos a, BlockPos b) override
    {
        std::swap(rrpv_[a], rrpv_[b]);
        std::swap(seq_[a], seq_[b]);
    }

    BlockPos
    select(std::span<const BlockPos> cands) override
    {
        // Age the candidate list until one reaches maxRrpv. In a
        // set-associative cache this is the classic per-set aging loop;
        // in a zcache the candidate list plays the role of the set.
        std::uint32_t best_rrpv = 0;
        for (BlockPos c : cands) best_rrpv = std::max(best_rrpv, rrpv_[c]);
        std::uint32_t delta = maxRrpv_ - best_rrpv;
        if (delta > 0) {
            for (BlockPos c : cands) rrpv_[c] += delta;
        }
        BlockPos victim = kInvalidPos;
        for (BlockPos c : cands) {
            if (rrpv_[c] == maxRrpv_ &&
                (victim == kInvalidPos || seq_[c] < seq_[victim])) {
                victim = c;
            }
        }
        zc_assert(victim != kInvalidPos);
        return victim;
    }

    double
    score(BlockPos pos) const override
    {
        return -static_cast<double>(rrpv_[pos]);
    }

    std::uint64_t tieBreaker(BlockPos pos) const override
    {
        return seq_[pos];
    }

    std::string name() const override { return "srrip"; }

  private:
    std::uint32_t maxRrpv_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint32_t> rrpv_;
    std::vector<std::uint64_t> seq_;
};

} // namespace zc
