/**
 * @file
 * Replacement-policy factory shared by benches, examples and tests.
 */

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "common/log.hpp"
#include "common/status.hpp"
#include "replacement/bip.hpp"
#include "replacement/bucketed_lru.hpp"
#include "replacement/lfu.hpp"
#include "replacement/lru.hpp"
#include "replacement/nru.hpp"
#include "replacement/opt.hpp"
#include "replacement/policy.hpp"
#include "replacement/random_policy.hpp"
#include "replacement/srrip.hpp"

namespace zc {

enum class PolicyKind {
    Lru,
    BucketedLru,
    Lfu,
    Random,
    Opt,
    Nru,
    Srrip,
    Bip,
};

inline const char*
policyKindName(PolicyKind k)
{
    switch (k) {
      case PolicyKind::Lru: return "lru";
      case PolicyKind::BucketedLru: return "bucketed-lru";
      case PolicyKind::Lfu: return "lfu";
      case PolicyKind::Random: return "random";
      case PolicyKind::Opt: return "opt";
      case PolicyKind::Nru: return "nru";
      case PolicyKind::Srrip: return "srrip";
      case PolicyKind::Bip: return "bip";
    }
    return "?";
}

/** Every PolicyKind, for name listings and parse diagnostics. */
inline constexpr std::array<PolicyKind, 8> kAllPolicyKinds{
    PolicyKind::Lru,  PolicyKind::BucketedLru, PolicyKind::Lfu,
    PolicyKind::Random, PolicyKind::Opt,       PolicyKind::Nru,
    PolicyKind::Srrip, PolicyKind::Bip,
};

/**
 * Parse a policy name (the strings policyKindName emits). Unknown
 * names yield a structured NotFound error listing every valid name —
 * what CLI flags and config files surface to the user.
 */
inline Expected<PolicyKind>
parsePolicyKind(const std::string& name)
{
    for (PolicyKind k : kAllPolicyKinds) {
        if (name == policyKindName(k)) return k;
    }
    std::string valid;
    for (PolicyKind k : kAllPolicyKinds) {
        if (!valid.empty()) valid += ", ";
        valid += policyKindName(k);
    }
    return Status::notFound("policy: unknown name '" + name +
                            "' (valid: " + valid + ")");
}

inline std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind, std::uint32_t num_blocks, std::uint64_t seed = 1)
{
    if (num_blocks == 0) {
        throw StatusError(Status::invalidArgument(
            "policy: num_blocks must be > 0 (got 0)"));
    }
    switch (kind) {
      case PolicyKind::Lru:
        return std::make_unique<LruPolicy>(num_blocks);
      case PolicyKind::BucketedLru:
        return std::make_unique<BucketedLruPolicy>(num_blocks);
      case PolicyKind::Lfu:
        return std::make_unique<LfuPolicy>(num_blocks);
      case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(num_blocks, seed);
      case PolicyKind::Opt:
        return std::make_unique<OptPolicy>(num_blocks);
      case PolicyKind::Nru:
        return std::make_unique<NruPolicy>(num_blocks);
      case PolicyKind::Srrip:
        return std::make_unique<SrripPolicy>(num_blocks);
      case PolicyKind::Bip:
        return std::make_unique<BipPolicy>(num_blocks, 1.0 / 32, seed);
    }
    zc_panic("unknown policy kind");
}

} // namespace zc
