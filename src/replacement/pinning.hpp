/**
 * @file
 * Block pinning — the paper's Section I motivation made concrete.
 *
 * Transactional memory, thread-level speculation, deterministic replay
 * and similar schemes "use caches to buffer or pin specific blocks.
 * Low associativity makes it difficult to buffer large sets of blocks,
 * limiting the applicability of these schemes or requiring expensive
 * fall-back mechanisms." A pinned block must not be evicted; a
 * replacement whose candidates are *all* pinned forces the fall-back
 * (e.g. a transaction abort).
 *
 * PinningPolicy decorates any ReplacementPolicy: pinned blocks are
 * skipped during victim selection while any unpinned candidate exists;
 * when none exists the forced-eviction counter records the fall-back
 * event and the block is surrendered (and unpinned). The probability of
 * that event is (pinned fraction)^R — with a zcache, R is large at
 * unchanged hit cost, which is precisely why these schemes want one.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "replacement/policy.hpp"

namespace zc {

class PinningPolicy final : public ReplacementPolicy
{
  public:
    explicit PinningPolicy(std::unique_ptr<ReplacementPolicy> inner)
        : ReplacementPolicy(inner->numBlocks()),
          inner_(std::move(inner)),
          pinned_(numBlocks(), 0)
    {
    }

    /** Pin the block at @p pos (idempotent). */
    void
    pin(BlockPos pos)
    {
        zc_assert(pos < numBlocks());
        if (!pinned_[pos]) {
            pinned_[pos] = 1;
            pinnedCount_++;
        }
    }

    void
    unpin(BlockPos pos)
    {
        zc_assert(pos < numBlocks());
        if (pinned_[pos]) {
            pinned_[pos] = 0;
            pinnedCount_--;
        }
    }

    bool isPinned(BlockPos pos) const { return pinned_[pos] != 0; }
    std::uint32_t pinnedCount() const { return pinnedCount_; }

    /**
     * Replacements that found every candidate pinned — the events that
     * would trigger the buffering scheme's fall-back path.
     */
    std::uint64_t forcedEvictions() const { return forcedEvictions_; }

    // -- ReplacementPolicy ------------------------------------------

    void
    onInsert(BlockPos pos, const AccessContext& ctx) override
    {
        // A new block starts unpinned.
        unpin(pos);
        inner_->onInsert(pos, ctx);
    }

    void
    onHit(BlockPos pos, const AccessContext& ctx) override
    {
        inner_->onHit(pos, ctx);
    }

    void
    onMove(BlockPos from, BlockPos to) override
    {
        // The pin travels with the block: relocating a pinned block is
        // fine (it stays resident); evicting it is not.
        if (pinned_[from]) {
            pin(to);
            unpin(from);
        } else {
            unpin(to);
        }
        inner_->onMove(from, to);
    }

    void
    onEvict(BlockPos pos) override
    {
        unpin(pos);
        inner_->onEvict(pos);
    }

    void
    onSwap(BlockPos a, BlockPos b) override
    {
        std::swap(pinned_[a], pinned_[b]);
        inner_->onSwap(a, b);
    }

    BlockPos
    select(std::span<const BlockPos> cands) override
    {
        static thread_local std::vector<BlockPos> unpinned;
        unpinned.clear();
        for (BlockPos c : cands) {
            if (!pinned_[c]) unpinned.push_back(c);
        }
        if (!unpinned.empty()) return inner_->select(unpinned);
        forcedEvictions_++;
        return inner_->select(cands); // fall-back: surrender a pin
    }

    double
    score(BlockPos pos) const override
    {
        // Pinned blocks rank as maximally keep-worthy so the Section IV
        // framework sees the effective eviction preference.
        return pinned_[pos] ? 1e300 : inner_->score(pos);
    }

    std::uint64_t tieBreaker(BlockPos pos) const override
    {
        return inner_->tieBreaker(pos);
    }

    std::string name() const override { return inner_->name() + "+pin"; }

    ReplacementPolicy& inner() { return *inner_; }

  private:
    std::unique_ptr<ReplacementPolicy> inner_;
    std::vector<std::uint8_t> pinned_;
    std::uint32_t pinnedCount_ = 0;
    std::uint64_t forcedEvictions_ = 0;
};

} // namespace zc
