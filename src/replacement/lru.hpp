/**
 * @file
 * Full LRU via global timestamps (paper Section III-E, "Full LRU").
 *
 * A global access counter is incremented on every touch and stored in the
 * touched block's timestamp field. The replacement candidate with the
 * lowest timestamp is evicted. With 64-bit timestamps wrap-around never
 * happens in practice; comparisons are still done as ages relative to the
 * current counter so the policy is also correct under forced small widths
 * (see BucketedLruPolicy, which reuses this machinery).
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "replacement/policy.hpp"

namespace zc {

class LruPolicy : public ReplacementPolicy
{
  public:
    explicit LruPolicy(std::uint32_t num_blocks)
        : ReplacementPolicy(num_blocks), timestamps_(num_blocks, 0)
    {
    }

    void
    onInsert(BlockPos pos, const AccessContext&) override
    {
        touch(pos);
    }

    void
    onHit(BlockPos pos, const AccessContext&) override
    {
        touch(pos);
    }

    void
    onMove(BlockPos from, BlockPos to) override
    {
        timestamps_[to] = timestamps_[from];
    }

    void
    onEvict(BlockPos pos) override
    {
        timestamps_[pos] = 0;
    }

    void
    onSwap(BlockPos a, BlockPos b) override
    {
        std::swap(timestamps_[a], timestamps_[b]);
    }

    /**
     * Keep-value: negative age. The oldest block has the most negative
     * score and is evicted first.
     */
    double
    score(BlockPos pos) const override
    {
        return -static_cast<double>(counter_ - timestamps_[pos]);
    }

    std::string name() const override { return "lru"; }

    std::uint64_t timestampOf(BlockPos pos) const { return timestamps_[pos]; }
    std::uint64_t counter() const { return counter_; }

  protected:
    void
    touch(BlockPos pos)
    {
        counter_++;
        timestamps_[pos] = counter_;
    }

    std::uint64_t counter_ = 0;
    std::vector<std::uint64_t> timestamps_;
};

} // namespace zc
