/**
 * @file
 * Replacement policy interface.
 *
 * The paper (Section II, last paragraph, and Section IV-A) insists that the
 * cache *array* (which produces replacement candidates) and the replacement
 * *policy* (which ranks blocks) are separate concerns. This interface
 * encodes that split:
 *
 *  - the array notifies the policy of insertions, hits, moves (zcache
 *    relocations carry their replacement state with the block), and
 *    evictions, all in terms of opaque block positions;
 *  - on a replacement the array hands the policy its candidate list and the
 *    policy picks the victim;
 *  - for the Section IV associativity framework, every policy exposes a
 *    *total order* over resident blocks through score() / tieBreaker():
 *    lower (score, tie) means "prefer to evict". This is the global rank
 *    the framework normalizes into eviction priorities.
 */

#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>

#include "common/log.hpp"
#include "common/types.hpp"

namespace zc {

/** Sentinel next-use for "never referenced again". */
inline constexpr std::uint64_t kNoNextUse =
    std::numeric_limits<std::uint64_t>::max();

/**
 * Per-access information handed to the policy.
 *
 * nextUse is only meaningful when an OPT oracle annotates the trace; all
 * other policies ignore it.
 */
struct AccessContext
{
    Addr lineAddr = kInvalidAddr;
    std::uint64_t nextUse = kNoNextUse;
};

class ReplacementPolicy
{
  public:
    explicit ReplacementPolicy(std::uint32_t num_blocks)
        : numBlocks_(num_blocks)
    {
        zc_assert(num_blocks > 0);
    }

    virtual ~ReplacementPolicy() = default;

    std::uint32_t numBlocks() const { return numBlocks_; }

    /** A new block was installed at @p pos. */
    virtual void onInsert(BlockPos pos, const AccessContext& ctx) = 0;

    /** The block at @p pos was hit. */
    virtual void onHit(BlockPos pos, const AccessContext& ctx) = 0;

    /**
     * The block at @p from was relocated to @p to (zcache relocation);
     * its replacement metadata travels with it. @p from becomes dead.
     */
    virtual void onMove(BlockPos from, BlockPos to) = 0;

    /**
     * The two live blocks at @p a and @p b exchanged positions
     * (column-associative secondary-hit swap; victim-cache promote).
     * Policies with flat per-block metadata override this with an
     * element swap; set-structured policies may reject it.
     */
    virtual void
    onSwap(BlockPos a, BlockPos b)
    {
        (void)a;
        (void)b;
        zc_panic("policy does not support position swaps");
    }

    /** The block at @p pos was evicted or invalidated. */
    virtual void onEvict(BlockPos pos) = 0;

    /**
     * Pick the victim among @p cands (all valid blocks). Default: minimum
     * (score, tieBreaker). Non-const because some policies (e.g. SRRIP)
     * age state while selecting.
     */
    virtual BlockPos
    select(std::span<const BlockPos> cands)
    {
        zc_assert(!cands.empty());
        BlockPos best = cands[0];
        for (std::size_t i = 1; i < cands.size(); i++) {
            if (ordersBefore(cands[i], best)) best = cands[i];
        }
        return best;
    }

    /**
     * Keep-value of the block at @p pos: higher means more worth keeping.
     * Must be comparable across all resident blocks.
     */
    virtual double score(BlockPos pos) const = 0;

    /** Breaks score ties into a total order. Default: position. */
    virtual std::uint64_t tieBreaker(BlockPos pos) const { return pos; }

    /** True iff block @p a is preferred for eviction over @p b. */
    bool
    ordersBefore(BlockPos a, BlockPos b) const
    {
        double sa = score(a), sb = score(b);
        if (sa != sb) return sa < sb;
        return tieBreaker(a) < tieBreaker(b);
    }

    virtual std::string name() const = 0;

  private:
    std::uint32_t numBlocks_;
};

} // namespace zc
