/**
 * @file
 * Bucketed LRU (paper Section III-E, the policy used in the evaluation).
 *
 * Space-efficient LRU approximation: timestamps are n bits wide and the
 * global counter only increments once every k accesses (the paper uses
 * k = 5% of the cache size and n = 8). Ages are computed in mod-2^n
 * arithmetic so a block that survives a wrap-around simply looks young
 * again — rare by construction.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "replacement/policy.hpp"

namespace zc {

class BucketedLruPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param num_blocks Blocks tracked.
     * @param timestamp_bits Width n of the per-block timestamp (1..32).
     * @param accesses_per_tick k: counter increments every k accesses.
     *        0 selects the paper default of 5% of the cache size.
     */
    BucketedLruPolicy(std::uint32_t num_blocks,
                      std::uint32_t timestamp_bits = 8,
                      std::uint64_t accesses_per_tick = 0)
        : ReplacementPolicy(num_blocks),
          tsBits_(timestamp_bits),
          tsMask_((timestamp_bits >= 32)
                      ? 0xffffffffu
                      : ((1u << timestamp_bits) - 1)),
          accessesPerTick_(accesses_per_tick
                               ? accesses_per_tick
                               : std::max<std::uint64_t>(1, num_blocks / 20)),
          timestamps_(num_blocks, 0),
          seq_(num_blocks, 0)
    {
        zc_assert(timestamp_bits >= 1 && timestamp_bits <= 32);
    }

    void
    onInsert(BlockPos pos, const AccessContext&) override
    {
        touch(pos);
    }

    void
    onHit(BlockPos pos, const AccessContext&) override
    {
        touch(pos);
    }

    void
    onMove(BlockPos from, BlockPos to) override
    {
        timestamps_[to] = timestamps_[from];
        seq_[to] = seq_[from];
    }

    void
    onEvict(BlockPos pos) override
    {
        timestamps_[pos] = counter_ & tsMask_;
        seq_[pos] = 0;
    }

    void
    onSwap(BlockPos a, BlockPos b) override
    {
        std::swap(timestamps_[a], timestamps_[b]);
        std::swap(seq_[a], seq_[b]);
    }

    /** Keep-value: negative mod-2^n age relative to the current counter. */
    double
    score(BlockPos pos) const override
    {
        std::uint32_t age =
            (static_cast<std::uint32_t>(counter_) - timestamps_[pos]) &
            tsMask_;
        return -static_cast<double>(age);
    }

    /**
     * Victim selection sees only the coarse buckets, with position as
     * the arbitrary (hardware-like) tie-break — narrow timestamps must
     * genuinely cost accuracy, or the Section III-E design-space claim
     * would hold vacuously.
     */
    BlockPos
    select(std::span<const BlockPos> cands) override
    {
        zc_assert(!cands.empty());
        BlockPos best = cands[0];
        for (std::size_t i = 1; i < cands.size(); i++) {
            if (score(cands[i]) < score(best)) best = cands[i];
        }
        return best;
    }

    /**
     * Within a bucket (same coarse timestamp) ties are broken by a
     * fine-grained access sequence so the Section IV rank is still a
     * total order. This refinement is for measurement only; select()
     * above deliberately ignores it.
     */
    std::uint64_t tieBreaker(BlockPos pos) const override
    {
        return seq_[pos];
    }

    std::string name() const override { return "bucketed-lru"; }

    std::uint64_t accessesPerTick() const { return accessesPerTick_; }
    std::uint32_t timestampBits() const { return tsBits_; }

  private:
    void
    touch(BlockPos pos)
    {
        accesses_++;
        if (accesses_ % accessesPerTick_ == 0) counter_++;
        timestamps_[pos] = static_cast<std::uint32_t>(counter_) & tsMask_;
        seq_[pos] = accesses_;
    }

    std::uint32_t tsBits_;
    std::uint32_t tsMask_;
    std::uint64_t accessesPerTick_;
    std::uint64_t accesses_ = 0;
    std::uint64_t counter_ = 0;
    std::vector<std::uint32_t> timestamps_;
    std::vector<std::uint64_t> seq_;
};

} // namespace zc
