/**
 * @file
 * ZkvServer implementation: epoll event loop, per-round batched shard
 * dispatch, graceful drain (design notes in server.hpp and
 * docs/server.md).
 */

#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace zc::net {

// The wire cap and the store cap are one contract: a max-size stored
// payload must fit a single frame (docs/compression.md).
static_assert(kMaxValueBytes == kZkvMaxValueBytes,
              "net frame payload cap must match the store's value cap");

namespace {

Status
errnoStatus(const std::string& what)
{
    return Status::ioError("server: " + what + ": " +
                           std::strerror(errno));
}

} // namespace

ZkvServer::ZkvServer(ZkvServerConfig cfg) : cfg_(std::move(cfg)) {}

ZkvServer::~ZkvServer()
{
    for (auto& [fd, c] : conns_) ::close(fd);
    conns_.clear();
    if (listenFd_ >= 0) ::close(listenFd_);
    if (wakeFd_ >= 0) ::close(wakeFd_);
    if (epollFd_ >= 0) ::close(epollFd_);
}

Expected<std::unique_ptr<ZkvServer>>
ZkvServer::create(const ZkvServerConfig& cfg)
{
    if (Status s = cfg.validate(); !s.isOk()) return s;

    auto store_or = ZkvStore::create(cfg.store);
    if (!store_or) return store_or.status();

    auto srv = std::unique_ptr<ZkvServer>(new ZkvServer(cfg));
    srv->store_ = std::move(*store_or);

    if (Status s = srv->setupListener(); !s.isOk()) return s;
    if (Status s = srv->setupLoop(); !s.isOk()) return s;

    // Live telemetry (docs/telemetry.md): trace records flow from the
    // store's instrumented batch path; the snapshotter samples store
    // totals plus the server's own counters.
    if (cfg.obs.anyEnabled()) {
        if (!cfg.obs.tracePath.empty()) {
            ObsTracerConfig tc;
            tc.path = cfg.obs.tracePath;
            tc.ringCapacity = cfg.obs.ringCapacity;
            tc.processName = "zkv_server";
            srv->tracer_ = std::make_unique<ObsTracer>(std::move(tc));
            srv->store_->enableObs(srv->tracer_.get());
        } else {
            // Metrics-only mode still wants the instrumented op paths
            // (net_ns / lock_wait_ns attribution) without a trace
            // file: a count-only tracer sinks the records.
            ObsTracerConfig tc;
            tc.ringCapacity = cfg.obs.ringCapacity;
            srv->tracer_ = std::make_unique<ObsTracer>(std::move(tc));
            srv->store_->enableObs(srv->tracer_.get());
        }
        if (!cfg.obs.metricsPath.empty() || !cfg.obs.promPath.empty()) {
            MetricsSnapshotterConfig mc;
            mc.ndjsonPath = cfg.obs.metricsPath;
            mc.promPath = cfg.obs.promPath;
            mc.intervalMs = cfg.obs.metricsIntervalMs;
            ZkvServer* raw = srv.get();
            srv->snap_ = std::make_unique<MetricsSnapshotter>(
                std::move(mc), [raw] {
                    MetricsSample s;
                    ZkvShardStats t = raw->store_->totals();
                    ZkvServerStats sv = raw->stats();
                    s.counters = {
                        {"ops", t.gets + t.puts + t.erases},
                        {"gets", t.gets},
                        {"get_hits", t.getHits},
                        {"puts", t.puts},
                        {"put_inserts", t.putInserts},
                        {"erases", t.erases},
                        {"evictions", t.evictions},
                        {"relocations", t.relocations},
                        {"net_frames_in", sv.framesIn},
                        {"net_frames_out", sv.framesOut},
                        {"net_bytes_in", sv.bytesIn},
                        {"net_bytes_out", sv.bytesOut},
                        {"net_batches", sv.batches},
                        {"net_batched_ops", sv.batchedOps},
                        {"net_accepted", sv.accepted},
                        {"net_closed", sv.closed},
                        {"net_protocol_errors", sv.protocolErrors},
                        {"net_mode_errors", sv.modeErrors},
                    };
                    if (raw->store_->bytesMode()) {
                        ZkvCompressionStats cp =
                            raw->store_->compressionTotals();
                        s.counters.emplace_back("compress_calls",
                                                cp.compressCalls);
                        s.counters.emplace_back("decompress_calls",
                                                cp.decompressCalls);
                        s.counters.emplace_back("raw_bytes_total",
                                                cp.rawBytesTotal);
                        s.counters.emplace_back("stored_bytes_total",
                                                cp.storedBytesTotal);
                        s.counters.emplace_back("resident_raw_bytes",
                                                cp.residentRawBytes);
                        s.counters.emplace_back("resident_stored_bytes",
                                                cp.residentStoredBytes);
                    }
                    ZkvShardObs o = raw->store_->obsTotals();
                    s.counters.emplace_back("net_ns", o.netNs);
                    s.counters.emplace_back("lock_wait_ns", o.lockWaitNs);
                    return s;
                });
        }
    }
    return srv;
}

Status
ZkvServer::setupListener()
{
    listenFd_ = ::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0) return errnoStatus("socket");

    int one = 1;
    (void)::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
        return Status::invalidArgument(
            "server: host '" + cfg_.host +
            "' is not a valid IPv4 address");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        return errnoStatus("bind " + cfg_.host + ":" +
                           std::to_string(cfg_.port));
    }
    if (::listen(listenFd_, cfg_.backlog) != 0) {
        return errnoStatus("listen");
    }

    // Resolve the kernel-assigned port in the ephemeral (--port=0)
    // hermetic-test mode.
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound),
                      &blen) != 0) {
        return errnoStatus("getsockname");
    }
    port_ = ntohs(bound.sin_port);
    return Status::ok();
}

Status
ZkvServer::setupLoop()
{
    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0) return errnoStatus("epoll_create1");

    wakeFd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wakeFd_ < 0) return errnoStatus("eventfd");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev) != 0) {
        return errnoStatus("epoll_ctl(listen)");
    }
    ev.data.fd = wakeFd_;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev) != 0) {
        return errnoStatus("epoll_ctl(wake)");
    }
    return Status::ok();
}

void
ZkvServer::shutdown()
{
    shutdownReq_.store(true, std::memory_order_release);
    // One write(2) on an eventfd: async-signal-safe, so SIGTERM
    // handlers may call shutdown() directly (bench/zkv_server.cpp).
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wakeFd_, &one, sizeof(one));
}

void
ZkvServer::acceptReady()
{
    for (;;) {
        int fd = ::accept4(listenFd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            st_.acceptErrors.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (ZC_INJECT_FAULT("net.accept")) {
            // Model a post-accept setup failure: the client sees an
            // immediate close (loadgen counts it as a transport error
            // and reconnects, docs/robustness.md).
            st_.acceptErrors.fetch_add(1, std::memory_order_relaxed);
            ::close(fd);
            continue;
        }
        if (conns_.size() >= cfg_.maxConnections) {
            st_.rejectedConns.fetch_add(1, std::memory_order_relaxed);
            ::close(fd);
            continue;
        }
        int one = 1;
        (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                           sizeof(one));
        Conn c;
        c.fd = fd;
        c.id = nextConnId_++;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            st_.acceptErrors.fetch_add(1, std::memory_order_relaxed);
            ::close(fd);
            continue;
        }
        conns_.emplace(fd, std::move(c));
        st_.accepted.fetch_add(1, std::memory_order_relaxed);
    }
}

bool
ZkvServer::readReady(Conn& c)
{
    if (ZC_INJECT_FAULT("net.read")) {
        st_.readErrors.fetch_add(1, std::memory_order_relaxed);
        closeConn(c.fd);
        return false;
    }
    std::uint8_t buf[4096];
    for (;;) {
        ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            c.in.insert(c.in.end(), buf, buf + n);
            c.sawBytes = true;
            st_.bytesIn.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
            if (static_cast<std::size_t>(n) < sizeof(buf)) break;
            continue;
        }
        if (n == 0) {
            c.readClosed = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        st_.readErrors.fetch_add(1, std::memory_order_relaxed);
        closeConn(c.fd);
        return false;
    }
    if (!decodeFrames(c)) return false;
    if (c.readClosed && c.out.empty() && !hasPendingFor(c)) {
        // Peer is gone and nothing is owed: a clean close. Bytes of a
        // partial frame count as a truncated stream.
        if (!c.in.empty()) {
            st_.protocolErrors.fetch_add(1, std::memory_order_relaxed);
        }
        closeConn(c.fd);
        return false;
    }
    return true;
}

bool
ZkvServer::hasPendingFor(const Conn& c) const
{
    for (const PendingReq& p : pending_) {
        if (p.fd == c.fd && p.connId == c.id) return true;
    }
    return false;
}

bool
ZkvServer::decodeFrames(Conn& c)
{
    std::size_t off = 0;
    const bool obs_on = store_->obsEnabled();
    while (off < c.in.size()) {
        if (ZC_INJECT_FAULT("net.frame")) {
            st_.protocolErrors.fetch_add(1, std::memory_order_relaxed);
            closeConn(c.fd);
            return false;
        }
        Request req;
        auto consumed_or =
            decodeRequest(c.in.data() + off, c.in.size() - off, &req);
        if (!consumed_or) {
            // Framing is desynchronized; no resync point exists
            // (protocol.hpp), so the connection is closed.
            st_.protocolErrors.fetch_add(1, std::memory_order_relaxed);
            closeConn(c.fd);
            return false;
        }
        if (*consumed_or == 0) break; // partial frame: read more
        off += *consumed_or;
        st_.framesIn.fetch_add(1, std::memory_order_relaxed);

        PendingReq p;
        p.fd = c.fd;
        p.connId = c.id;
        p.ping = req.type == MsgType::Ping;
        // A GET/PUT whose bytes flag disagrees with the store's mode is
        // answered with InvalidArgument instead of being dispatched —
        // the frame parsed fine, only the value representation is wrong
        // (protocol.hpp). ERASE/PING are representation-free.
        if ((req.type == MsgType::Get || req.type == MsgType::Put) &&
            req.bytes != store_->bytesMode()) {
            p.modeErr = true;
        }
        if (!p.ping && !p.modeErr) p.shard = store_->shardOf(req.key);
        if (obs_on) p.enqueueNs = obsNowNs();
        p.req = std::move(req);
        pending_.push_back(std::move(p));
    }
    if (off > 0) c.in.erase(c.in.begin(), c.in.begin() + off);
    return true;
}

void
ZkvServer::dispatchRound()
{
    if (pending_.empty()) return;

    // Group this round's store ops by shard and execute each group
    // under ONE lock acquisition (ZkvStore::runShardBatch).
    const std::uint32_t nsh = store_->numShards();
    if (shardOps_.size() != nsh) {
        shardOps_.resize(nsh);
        shardRes_.resize(nsh);
    }
    std::vector<std::uint32_t> touched;
    for (PendingReq& p : pending_) {
        if (p.ping || p.modeErr) continue;
        StoreBatchOp op;
        op.key = p.req.key;
        op.value = p.req.value;
        if (p.req.bytes && p.req.type == MsgType::Put) {
            op.valueBytes = std::move(p.req.valueBytes);
        }
        op.enqueueNs = p.enqueueNs;
        switch (p.req.type) {
          case MsgType::Get: op.kind = ObsOp::Get; break;
          case MsgType::Put: op.kind = ObsOp::Put; break;
          default: op.kind = ObsOp::Erase; break;
        }
        if (shardOps_[p.shard].empty()) touched.push_back(p.shard);
        p.batchSlot = shardOps_[p.shard].size();
        shardOps_[p.shard].push_back(op);
    }
    for (std::uint32_t s : touched) {
        shardRes_[s].resize(shardOps_[s].size());
        store_->runShardBatch(s, shardOps_[s], shardRes_[s].data());
        st_.batches.fetch_add(1, std::memory_order_relaxed);
        st_.batchedOps.fetch_add(shardOps_[s].size(),
                                 std::memory_order_relaxed);
    }

    // Serialize responses back in decode order, so pipelined requests
    // on one connection always complete in order.
    for (PendingReq& p : pending_) {
        auto it = conns_.find(p.fd);
        if (it == conns_.end() || it->second.id != p.connId) continue;
        Conn& c = it->second;

        Response resp;
        resp.type = p.req.type;
        resp.id = p.req.id;
        resp.crc = p.req.crc; // CRC echo: protect iff the request did
        resp.bytes = p.req.bytes; // mode echo (protocol.hpp)
        if (p.ping) {
            st_.pings.fetch_add(1, std::memory_order_relaxed);
        } else if (p.modeErr) {
            st_.modeErrors.fetch_add(1, std::memory_order_relaxed);
            resp.status = ErrorCode::InvalidArgument;
        } else {
            StoreBatchResult& r = shardRes_[p.shard][p.batchSlot];
            resp.status = r.code;
            if (r.hit) resp.rflags |= kRespFlagHit;
            if (r.inserted) resp.rflags |= kRespFlagInserted;
            if (r.evicted) resp.rflags |= kRespFlagEvicted;
            resp.value = r.value;
            if (p.req.bytes && p.req.type == MsgType::Get) {
                resp.valueBytes = std::move(r.valueBytes);
            }
            resp.candidates = r.candidates;
            resp.relocations = r.relocations;
            resp.evictedKey = r.evictedKey;
            resp.evictedValue = r.evictedValue;
        }
        encodeResponse(resp, c.out);
        st_.framesOut.fetch_add(1, std::memory_order_relaxed);
    }
    pending_.clear();
    for (std::uint32_t s : touched) {
        shardOps_[s].clear();
        shardRes_[s].clear();
    }
}

bool
ZkvServer::flushOut(Conn& c)
{
    while (c.outSent < c.out.size()) {
        if (ZC_INJECT_FAULT("net.write")) {
            st_.writeErrors.fetch_add(1, std::memory_order_relaxed);
            closeConn(c.fd);
            return false;
        }
        ssize_t n = ::send(c.fd, c.out.data() + c.outSent,
                           c.out.size() - c.outSent, MSG_NOSIGNAL);
        if (n > 0) {
            c.outSent += static_cast<std::size_t>(n);
            st_.bytesOut.fetch_add(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        st_.writeErrors.fetch_add(1, std::memory_order_relaxed);
        closeConn(c.fd);
        return false;
    }
    if (c.outSent == c.out.size()) {
        c.out.clear();
        c.outSent = 0;
    }
    updateEpollInterest(c);
    if (c.readClosed && c.out.empty()) {
        closeConn(c.fd);
        return false;
    }
    return true;
}

void
ZkvServer::updateEpollInterest(Conn& c)
{
    bool want = !c.out.empty();
    if (want == c.wantWrite) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.fd = c.fd;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_MOD, c.fd, &ev) == 0) {
        c.wantWrite = want;
    }
}

void
ZkvServer::closeConn(int fd)
{
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    (void)::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(it);
    st_.closed.fetch_add(1, std::memory_order_relaxed);
}

void
ZkvServer::beginDrain()
{
    if (draining_) return;
    draining_ = true;
    drainDeadlineNs_ =
        obsNowNs() +
        static_cast<std::uint64_t>(cfg_.drainTimeoutMs) * 1000000ull;
    // Stop accepting; existing connections get their in-flight
    // requests executed and responses flushed before closing.
    if (listenFd_ >= 0) {
        (void)::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

Status
ZkvServer::serve()
{
    constexpr int kMaxEvents = 64;
    epoll_event evs[kMaxEvents];
    std::vector<int> fds; // iteration snapshot; closeConn mutates conns_

    if (snap_) snap_->start();

    for (;;) {
        int timeout_ms = draining_ ? 10 : 200;
        int n = ::epoll_wait(epollFd_, evs, kMaxEvents, timeout_ms);
        if (n < 0) {
            if (errno == EINTR) continue;
            return errnoStatus("epoll_wait");
        }

        bool wake = false;
        for (int i = 0; i < n; i++) {
            int fd = evs[i].data.fd;
            if (fd == wakeFd_) {
                std::uint64_t tok;
                while (::read(wakeFd_, &tok, sizeof(tok)) > 0) {}
                wake = true;
                continue;
            }
            if (fd == listenFd_) {
                acceptReady();
                continue;
            }
            auto it = conns_.find(fd);
            if (it == conns_.end()) continue;
            if ((evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
                if (!readReady(it->second)) continue;
            }
            if ((evs[i].events & EPOLLOUT) != 0) {
                it = conns_.find(fd);
                if (it != conns_.end()) (void)flushOut(it->second);
            }
        }

        if ((wake || shutdownReq_.load(std::memory_order_acquire)) &&
            !draining_) {
            beginDrain();
        }

        if (draining_) {
            // Forced read sweep: pick up whatever the kernel already
            // buffered, whether or not epoll flagged it this round.
            fds.clear();
            for (auto& [fd, c] : conns_) {
                c.sawBytes = false;
                fds.push_back(fd);
            }
            for (int fd : fds) {
                auto it = conns_.find(fd);
                if (it != conns_.end()) (void)readReady(it->second);
            }
        }

        dispatchRound();

        fds.clear();
        for (auto& [fd, c] : conns_) {
            if (!c.out.empty()) fds.push_back(fd);
        }
        for (int fd : fds) {
            auto it = conns_.find(fd);
            if (it != conns_.end()) (void)flushOut(it->second);
        }

        if (draining_) {
            // A connection is quiescent once nothing is owed (output
            // flushed, no complete frame buffered) and this round's
            // read made no progress.
            fds.clear();
            for (auto& [fd, c] : conns_) {
                if (c.out.empty() && !c.sawBytes) fds.push_back(fd);
            }
            for (int fd : fds) {
                st_.drained.fetch_add(1, std::memory_order_relaxed);
                closeConn(fd);
            }
            if (conns_.empty()) break;
            if (obsNowNs() >= drainDeadlineNs_) {
                fds.clear();
                for (auto& [fd, c] : conns_) fds.push_back(fd);
                for (int fd : fds) {
                    st_.drainAborted.fetch_add(
                        1, std::memory_order_relaxed);
                    closeConn(fd);
                }
                break;
            }
        }
    }

    // Telemetry teardown (loadgen.cpp order): the loop has quiesced,
    // so the final metrics window captures end-of-run totals, then
    // the store detaches and the tracer closes with exact accounting
    // against the executed-op total.
    Status out = Status::ok();
    if (snap_) {
        Status s = snap_->stop();
        if (!s.isOk()) out = s;
    }
    if (tracer_) {
        store_->disableObs();
        auto sum_or = tracer_->finish(
            st_.batchedOps.load(std::memory_order_relaxed));
        if (!sum_or && out.isOk()) out = sum_or.status();
    }
    return out;
}

ZkvServerStats
ZkvServer::stats() const
{
    ZkvServerStats s;
    s.accepted = st_.accepted.load(std::memory_order_relaxed);
    s.closed = st_.closed.load(std::memory_order_relaxed);
    s.framesIn = st_.framesIn.load(std::memory_order_relaxed);
    s.framesOut = st_.framesOut.load(std::memory_order_relaxed);
    s.bytesIn = st_.bytesIn.load(std::memory_order_relaxed);
    s.bytesOut = st_.bytesOut.load(std::memory_order_relaxed);
    s.pings = st_.pings.load(std::memory_order_relaxed);
    s.batches = st_.batches.load(std::memory_order_relaxed);
    s.batchedOps = st_.batchedOps.load(std::memory_order_relaxed);
    s.protocolErrors =
        st_.protocolErrors.load(std::memory_order_relaxed);
    s.modeErrors = st_.modeErrors.load(std::memory_order_relaxed);
    s.readErrors = st_.readErrors.load(std::memory_order_relaxed);
    s.writeErrors = st_.writeErrors.load(std::memory_order_relaxed);
    s.acceptErrors = st_.acceptErrors.load(std::memory_order_relaxed);
    s.rejectedConns = st_.rejectedConns.load(std::memory_order_relaxed);
    s.drained = st_.drained.load(std::memory_order_relaxed);
    s.drainAborted = st_.drainAborted.load(std::memory_order_relaxed);
    return s;
}

void
ZkvServer::registerStats(StatGroup& g)
{
    StatGroup& srv = g.group("server", "zkv TCP server (docs/server.md)");
    srv.addConst("host", "bound address", JsonValue(cfg_.host));
    srv.addCounter("port", "bound TCP port",
                   [this] { return std::uint64_t{port_}; });
    srv.addCounter("connections", "currently open connections",
                   [this] { return std::uint64_t{conns_.size()}; });
    srv.addCounter("accepted", "connections accepted",
                   [this] { return stats().accepted; });
    srv.addCounter("closed", "connections closed",
                   [this] { return stats().closed; });
    srv.addCounter("frames_in", "request frames decoded",
                   [this] { return stats().framesIn; });
    srv.addCounter("frames_out", "response frames encoded",
                   [this] { return stats().framesOut; });
    srv.addCounter("bytes_in", "payload bytes received",
                   [this] { return stats().bytesIn; });
    srv.addCounter("bytes_out", "payload bytes sent",
                   [this] { return stats().bytesOut; });
    srv.addCounter("pings", "ping frames answered",
                   [this] { return stats().pings; });
    srv.addCounter("batches", "shard batches dispatched",
                   [this] { return stats().batches; });
    srv.addCounter("batched_ops", "store ops executed via batches",
                   [this] { return stats().batchedOps; });
    srv.addCounter("protocol_errors", "framing errors (conn closed)",
                   [this] { return stats().protocolErrors; });
    srv.addCounter("mode_errors", "bytes-flag/store-mode mismatches",
                   [this] { return stats().modeErrors; });
    srv.addCounter("read_errors", "socket read failures",
                   [this] { return stats().readErrors; });
    srv.addCounter("write_errors", "socket write failures",
                   [this] { return stats().writeErrors; });
    srv.addCounter("accept_errors", "accept/setup failures",
                   [this] { return stats().acceptErrors; });
    srv.addCounter("rejected_conns", "accepts over maxConnections",
                   [this] { return stats().rejectedConns; });
    srv.addCounter("drained", "connections closed clean in drain",
                   [this] { return stats().drained; });
    srv.addCounter("drain_aborted", "connections force-closed at drain "
                                    "deadline",
                   [this] { return stats().drainAborted; });
    store_->registerStats(g);
    if (tracer_) tracer_->registerStats(g.group("obs"));
}

} // namespace zc::net
