/**
 * @file
 * ZkvClient: a small blocking client for the zkv wire protocol
 * (net/protocol.hpp) — the reference peer for ZkvServer, used by the
 * e2e tests and as the transport layer under bench/net_loadgen.cpp.
 *
 * The API has two levels:
 *
 *  - typed round trips: get / put / erase / ping encode one request,
 *    block for its response, and map the response's status byte back
 *    into a structured Status;
 *  - pipelining primitives: sendRaw() writes a request without
 *    waiting, recvResponse() blocks for the next response frame.
 *    ZkvServer preserves per-connection order, so K sendRaw calls
 *    followed by K recvResponse calls see responses in send order.
 *
 * When cfg.crc is set every request carries a CRC-32 trailer; the
 * server echoes the protection on its responses, and decode verifies
 * it (ErrorCode::Corruption on mismatch).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "net/protocol.hpp"

namespace zc::net {

struct ZkvClientConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    /** CRC-protect every request frame (server echoes it back). */
    bool crc = false;

    /** connect() retries while the server's backlog warms up. */
    std::uint32_t connectRetries = 20;
    std::uint32_t connectRetryMs = 50;
};

class ZkvClient
{
  public:
    static Expected<std::unique_ptr<ZkvClient>>
    connect(const ZkvClientConfig& cfg);

    ~ZkvClient();

    ZkvClient(const ZkvClient&) = delete;
    ZkvClient& operator=(const ZkvClient&) = delete;

    /** One blocking round trip; checks the response id echoes ours. */
    Expected<Response> call(MsgType type, std::uint64_t key,
                            std::uint64_t value = 0);

    /** The resident value, or nullopt on a clean miss. */
    Expected<std::optional<std::uint64_t>> get(std::uint64_t key);

    /** PutResult-shaped response (inserted / evicted / walk cost). */
    Expected<Response> put(std::uint64_t key, std::uint64_t value);

    /** True when the key was resident and got removed. */
    Expected<bool> erase(std::uint64_t key);

    Status ping();

    // ---- bytes mode (kFrameFlagBytes; docs/compression.md) ---------

    /** Byte-payload put against a bytes-mode server. The payload must
     *  be <= kMaxValueBytes (InvalidArgument otherwise). */
    Expected<Response> putBytes(std::uint64_t key,
                                std::span<const std::uint8_t> value);

    /** Byte-payload get: nullopt on a clean miss, the stored bytes on
     *  a hit. A mode-mismatched server answers InvalidArgument. */
    Expected<std::optional<std::vector<std::uint8_t>>>
    getBytes(std::uint64_t key);

    /** Write one request now and return; pair with recvResponse(). */
    Status sendRaw(const Request& req);

    /** Block until the next response frame decodes (or the stream
     *  errors: Truncated on EOF mid-stream, Corruption on framing). */
    Expected<Response> recvResponse();

    /** Next request id this client will assign (for pipelined ids). */
    std::uint64_t nextId() const { return nextId_; }

    int fd() const { return fd_; }

  private:
    ZkvClient() = default;

    /** Assign an id, send @p req, block for the echoed response. */
    Expected<Response> roundTrip(Request& req);

    int fd_ = -1;
    bool crc_ = false;
    std::uint64_t nextId_ = 1;
    std::vector<std::uint8_t> rbuf_;
    std::vector<std::uint8_t> wbuf_;
};

} // namespace zc::net
