/**
 * @file
 * Open-loop arrival schedules for load generation (docs/server.md).
 *
 * A closed-loop generator issues the next request when the previous one
 * returns, so a slow server silently throttles its own measurement —
 * the coordinated-omission trap: stall-time latency never gets sampled
 * because no requests were scheduled during the stall. An open-loop
 * generator instead fixes the arrival times up front from a target
 * rate and measures every operation's latency from its *intended*
 * arrival, whether or not the generator (or server) was keeping up.
 * Queueing delay during a stall then lands in the histogram where it
 * belongs, which is what makes throughput-vs-p99 curves honest.
 *
 * ArrivalSchedule produces the intended arrival offsets, in
 * nanoseconds from the run start, as a deterministic function of
 * (kind, rate, seed):
 *
 *  - Fixed:   arrival i at round(i * 1e9 / rate) — a metronome;
 *             computed multiplicatively so no drift accumulates.
 *  - Poisson: exponential inter-arrival gaps with mean 1e9 / rate
 *             (a memoryless open-loop client population, the standard
 *             model for independent users).
 *
 * Shared by the over-the-wire generator (bench/net_loadgen.cpp) and
 * the in-process store loadgen's --open-loop mode
 * (bench/store_loadgen.cpp), so the two measure identical workloads.
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace zc {

enum class ArrivalKind {
    Fixed,   ///< evenly spaced arrivals at exactly the target rate
    Poisson, ///< exponential gaps, mean 1/rate (memoryless clients)
};

inline const char*
arrivalKindName(ArrivalKind k)
{
    return k == ArrivalKind::Fixed ? "fixed" : "poisson";
}

inline Expected<ArrivalKind>
parseArrivalKind(const std::string& name)
{
    if (name == "fixed") return ArrivalKind::Fixed;
    if (name == "poisson") return ArrivalKind::Poisson;
    return Status::invalidArgument("openloop: unknown arrival kind '" +
                                   name + "' (valid: fixed, poisson)");
}

/**
 * Deterministic intended-arrival generator. nextOffsetNs() returns the
 * next arrival's offset from the run start; offsets are nondecreasing.
 */
class ArrivalSchedule
{
  public:
    ArrivalSchedule(ArrivalKind kind, double ops_per_sec,
                    std::uint64_t seed)
        : kind_(kind),
          gapNs_(1e9 / ops_per_sec),
          rng_(seed, /*stream=*/0x6f70656eULL)
    {
        zc_assert(ops_per_sec > 0.0);
    }

    std::uint64_t
    nextOffsetNs()
    {
        if (kind_ == ArrivalKind::Fixed) {
            double t = static_cast<double>(n_++) * gapNs_;
            return static_cast<std::uint64_t>(std::llround(t));
        }
        // Exponential inter-arrival: -ln(1-u) * mean. uniform() is in
        // [0, 1), so 1-u is in (0, 1] and the log is finite.
        double gap = -std::log(1.0 - rng_.uniform()) * gapNs_;
        accumNs_ += gap;
        n_++;
        return static_cast<std::uint64_t>(std::llround(accumNs_));
    }

    std::uint64_t issued() const { return n_; }
    ArrivalKind kind() const { return kind_; }

  private:
    ArrivalKind kind_;
    double gapNs_;
    Pcg32 rng_;
    std::uint64_t n_ = 0;
    double accumNs_ = 0.0;
};

} // namespace zc
