/**
 * @file
 * ZkvServer: a single-threaded, non-blocking epoll event loop serving
 * the zkv wire protocol (net/protocol.hpp) over TCP, with batched
 * shard dispatch into a ZkvStore (docs/server.md).
 *
 * Event-loop shape: one epoll instance watches the listening socket,
 * an eventfd (the shutdown doorbell — async-signal-safe to ring from
 * a SIGTERM handler), and every client connection, all level-
 * triggered. Each loop round drains readable sockets into
 * per-connection buffers, decodes every complete frame, then executes
 * the round's decoded requests grouped by shardOf(key): one
 * ZkvStore::runShardBatch call per touched shard takes that shard's
 * lock ONCE for the whole group, so under pipelining the lock traffic
 * amortizes over the batch. Responses are serialized back in each
 * connection's decode order — pipelined requests on one connection
 * always complete in order — and flushed with at most one write()
 * per connection per round, amortizing syscalls the same way.
 *
 * Shutdown: shutdown() (or the doorbell) closes the listener and
 * enters drain mode: buffered and already-readable requests are still
 * executed and their responses flushed; a connection closes once it
 * has gone quiescent (no buffered output, no partial frame making
 * progress). Connections still active at cfg.drainTimeoutMs are
 * force-closed and counted in stats().drainAborted.
 *
 * Error model: structured Status (docs/robustness.md). A framing
 * error on a connection closes that connection (the stream cannot be
 * resynchronized); socket errors close the connection; only listener
 * setup and epoll failures fail serve() itself. Fault-injection
 * sites: net.accept, net.read, net.write, net.frame.
 *
 * Live telemetry (docs/telemetry.md): when cfg.obs asks, the store's
 * instrumented paths trace every executed op, with the server
 * extending each op's span backwards to its frame-decode time — the
 * `net` child phase is decode-to-dispatch queueing — and a
 * MetricsSnapshotter samples store + server counters into windowed
 * NDJSON / Prometheus files.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/stats_registry.hpp"
#include "net/protocol.hpp"
#include "store/zkv.hpp"

namespace zc {

class ObsTracer;
class MetricsSnapshotter;

namespace net {

/** Server-side live-telemetry sinks (all off by default). */
struct ZkvServerObsConfig
{
    std::string tracePath;   ///< Chrome trace-event JSON; "" = off
    std::string metricsPath; ///< windowed NDJSON; "" = off
    std::string promPath;    ///< Prometheus exposition; "" = off
    std::uint32_t metricsIntervalMs = 100;
    std::uint32_t ringCapacity = 1u << 16;

    bool
    anyEnabled() const
    {
        return !tracePath.empty() || !metricsPath.empty() ||
               !promPath.empty();
    }
};

struct ZkvServerConfig
{
    /** Bind address. Tests use 127.0.0.1 with port 0 (ephemeral). */
    std::string host = "127.0.0.1";

    /** TCP port; 0 asks the kernel for an ephemeral port, which
     *  create() resolves and port() reports — the hermetic-CI mode. */
    std::uint16_t port = 0;

    ZkvConfig store;

    int backlog = 128;
    std::uint32_t maxConnections = 1024;

    /** Drain budget after shutdown before force-closing stragglers. */
    std::uint32_t drainTimeoutMs = 2000;

    ZkvServerObsConfig obs;

    Status
    validate() const
    {
        if (host.empty()) {
            return Status::invalidArgument("server: host must be set");
        }
        if (maxConnections == 0) {
            return Status::invalidArgument(
                "server: maxConnections must be > 0");
        }
        return store.validate();
    }
};

/** Monotonic server counters (snapshot via ZkvServer::stats()). */
struct ZkvServerStats
{
    std::uint64_t accepted = 0;  ///< connections accepted
    std::uint64_t closed = 0;    ///< connections closed (any reason)
    std::uint64_t framesIn = 0;  ///< request frames decoded
    std::uint64_t framesOut = 0; ///< response frames encoded
    std::uint64_t bytesIn = 0;
    std::uint64_t bytesOut = 0;
    std::uint64_t pings = 0;        ///< ping frames answered
    std::uint64_t batches = 0;      ///< runShardBatch calls issued
    std::uint64_t batchedOps = 0;   ///< store ops executed via batches
    std::uint64_t protocolErrors = 0; ///< framing errors (conn closed)
    std::uint64_t modeErrors = 0;    ///< bytes-flag/store-mode mismatches
    std::uint64_t readErrors = 0;
    std::uint64_t writeErrors = 0;
    std::uint64_t acceptErrors = 0;
    std::uint64_t rejectedConns = 0; ///< over maxConnections
    std::uint64_t drained = 0;       ///< conns closed clean in drain
    std::uint64_t drainAborted = 0;  ///< conns force-closed at deadline
};

class ZkvServer
{
  public:
    /** Build the store, bind + listen (resolving an ephemeral port),
     *  and set up epoll; serve() then runs the loop. */
    static Expected<std::unique_ptr<ZkvServer>>
    create(const ZkvServerConfig& cfg);

    ~ZkvServer();

    ZkvServer(const ZkvServer&) = delete;
    ZkvServer& operator=(const ZkvServer&) = delete;

    /** The bound TCP port (the resolved one when cfg.port was 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Run the event loop on the calling thread until shutdown() (or a
     * doorbell ring) and the subsequent drain complete. Returns Ok
     * after a clean drain; a Status only for loop-fatal conditions
     * (epoll failure, telemetry sink I/O errors at teardown).
     */
    Status serve();

    /**
     * Ring the shutdown doorbell. Safe from any thread and from a
     * signal handler (a single write(2) on an eventfd). serve()
     * finishes its drain and returns.
     */
    void shutdown();

    /** Counter snapshot (loop-thread writes, relaxed reads). */
    ZkvServerStats stats() const;

    ZkvStore& store() { return *store_; }

    /** Register server + store (+ tracer) stats under @p g. */
    void registerStats(StatGroup& g);

  private:
    explicit ZkvServer(ZkvServerConfig cfg);

    struct Conn
    {
        int fd = -1;
        std::uint64_t id = 0; ///< unique per accept; guards fd reuse
        std::vector<std::uint8_t> in;  ///< unparsed request bytes
        std::vector<std::uint8_t> out; ///< unflushed response bytes
        std::size_t outSent = 0; ///< bytes of `out` already written
        bool wantWrite = false;  ///< EPOLLOUT armed
        bool readClosed = false; ///< peer EOF seen
        bool sawBytes = false;   ///< read progress this drain round
    };

    /** One decoded request awaiting dispatch this round. */
    struct PendingReq
    {
        int fd = -1;
        std::uint64_t connId = 0; ///< must still match conns_[fd].id
        Request req;
        bool ping = false;           ///< answered inline, no store op
        bool modeErr = false;        ///< bytes-flag/store-mode mismatch
        std::uint32_t shard = 0;
        std::uint64_t enqueueNs = 0; ///< decode time (0 if obs off)
        std::size_t batchSlot = 0;   ///< index into the shard batch
    };

    Status setupListener();
    Status setupLoop();

    void acceptReady();
    /** Drain readable bytes; false = connection died (and was closed). */
    bool readReady(Conn& c);
    /** Decode frames into pending_; false = framing error (conn closed). */
    bool decodeFrames(Conn& c);
    /** Does @p c still have decoded-but-undispatched requests? */
    bool hasPendingFor(const Conn& c) const;
    /** Execute pending_ grouped by shard; append responses in order. */
    void dispatchRound();
    /** Flush c.out; false = connection died (and was closed). */
    bool flushOut(Conn& c);
    void updateEpollInterest(Conn& c);
    void closeConn(int fd);
    void beginDrain();
    bool drainComplete() const;

    ZkvServerConfig cfg_;
    std::unique_ptr<ZkvStore> store_;

    int listenFd_ = -1;
    int epollFd_ = -1;
    int wakeFd_ = -1; ///< eventfd shutdown doorbell
    std::uint16_t port_ = 0;

    std::unordered_map<int, Conn> conns_;
    std::uint64_t nextConnId_ = 1;
    std::vector<PendingReq> pending_; ///< this round's decoded requests

    /** Per-shard dispatch scratch, reused across rounds. */
    std::vector<std::vector<StoreBatchOp>> shardOps_;
    std::vector<std::vector<StoreBatchResult>> shardRes_;

    bool draining_ = false;
    std::uint64_t drainDeadlineNs_ = 0;
    std::atomic<bool> shutdownReq_{false};

    /** Loop-thread-written counters; stats readers use relaxed loads. */
    struct AtomicStats
    {
        std::atomic<std::uint64_t> accepted{0}, closed{0};
        std::atomic<std::uint64_t> framesIn{0}, framesOut{0};
        std::atomic<std::uint64_t> bytesIn{0}, bytesOut{0};
        std::atomic<std::uint64_t> pings{0};
        std::atomic<std::uint64_t> batches{0}, batchedOps{0};
        std::atomic<std::uint64_t> protocolErrors{0}, modeErrors{0};
        std::atomic<std::uint64_t> readErrors{0}, writeErrors{0};
        std::atomic<std::uint64_t> acceptErrors{0}, rejectedConns{0};
        std::atomic<std::uint64_t> drained{0}, drainAborted{0};
    };
    AtomicStats st_;

    std::unique_ptr<ObsTracer> tracer_;
    std::unique_ptr<MetricsSnapshotter> snap_;
};

} // namespace net
} // namespace zc
