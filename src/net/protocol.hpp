/**
 * @file
 * zkv wire protocol: compact length-prefixed binary frames for
 * GET / PUT / ERASE / PING over TCP (docs/server.md has the full byte
 * layout and the rationale).
 *
 * Frame layout (all integers little-endian on the wire):
 *
 *     u32 len      — byte length of everything AFTER this field
 *     u8  magic    — 0x5A ('Z')
 *     u8  version  — kProtoVersion (1)
 *     u8  type     — MsgType (get/put/erase/ping)
 *     u8  flags    — bit 0: trailing CRC present; bit 1: response
 *     u64 id       — request id, echoed verbatim in the response
 *     ...payload   — fixed size per (type, request/response)
 *     [u32 crc]    — CRC-32 (common/crc32.hpp) over header + payload,
 *                    present iff flags bit 0 is set
 *
 * Request payloads: GET/ERASE carry the u64 key, PUT carries key +
 * value, PING is empty. Response payloads start with a u8 status
 * (ErrorCode) and a u8 result-flags byte (hit / inserted / evicted);
 * when status == Ok, GET adds the u64 value and PUT adds the walk cost
 * (u32 candidates, u32 relocations) plus the evicted key/value pair
 * (zeros unless the evicted flag is set).
 *
 * Byte-payload frames (flags bit 2, kFrameFlagBytes) are the wire form
 * of the store's bytes mode (docs/compression.md): a PUT request's
 * value becomes [u16 len][len bytes] after the key, and a GET response
 * with status == Ok becomes [u16 len][len bytes] in place of the u64
 * value (len = 0 on a miss). GET/ERASE/PING requests and PUT/ERASE/
 * PING responses keep their fixed layouts — the flag on them only
 * declares which mode the sender speaks, so a mode mismatch is caught
 * at dispatch, not mis-parsed. Lengths above kMaxValueBytes are
 * rejected (InvalidArgument), and a declared length that disagrees
 * with the actual frame size is Corruption.
 *
 * Decoding is streaming-friendly: decodeRequest / decodeResponse
 * consume at most one frame from a byte window, returning 0 when the
 * window holds only a partial frame (read more and retry) and a
 * structured Status for unrecoverable framing errors, with exact codes
 * the tests pin down (tests/test_net.cpp):
 *
 *   - Corruption        bad magic, payload-length mismatch, CRC
 *                       mismatch, or a frame shorter than its header
 *   - Unsupported       unknown protocol version
 *   - InvalidArgument   oversized frame (len > kMaxFrameBody) or an
 *                       unknown message type
 *   - Truncated         (helper truncatedAtEof) a connection that
 *                       ended mid-frame
 *
 * A framing error means the byte stream is desynchronized; the server
 * closes the connection rather than guess at a resync point.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace zc::net {

inline constexpr std::uint8_t kProtoMagic = 0x5A;
inline constexpr std::uint8_t kProtoVersion = 1;

/** Frame header bytes after the u32 length prefix. */
inline constexpr std::size_t kHeaderBytes = 12;

/** Hard ceiling on a frame body (header + payload + crc). */
inline constexpr std::size_t kMaxFrameBody = 256;

/**
 * Largest byte-payload value a frame can carry. Sized so the biggest
 * bytes-mode frame — a PUT request: header + u64 key + u16 length +
 * payload + optional CRC — still fits kMaxFrameBody, which the
 * static_assert pins down. The store's kZkvMaxValueBytes mirrors this
 * (asserted equal where both headers meet, src/net/server.cpp).
 */
inline constexpr std::size_t kMaxValueBytes = 224;

static_assert(kHeaderBytes + 8 + 2 + kMaxValueBytes + 4 <= kMaxFrameBody,
              "a max-size bytes PUT request must fit one frame");

/** Frame flag bits. */
enum : std::uint8_t {
    kFrameFlagCrc = 1u << 0,   ///< body ends with a CRC-32
    kFrameFlagResp = 1u << 1,  ///< response frame (server -> client)
    kFrameFlagBytes = 1u << 2, ///< byte-payload (bytes-mode) frame
};

/** Response result-flag bits (Response::rflags). */
enum : std::uint8_t {
    kRespFlagHit = 1u << 0,      ///< get/erase found the key
    kRespFlagInserted = 1u << 1, ///< put installed a new key
    kRespFlagEvicted = 1u << 2,  ///< insert displaced a resident key
};

enum class MsgType : std::uint8_t {
    Get = 0,
    Put = 1,
    Erase = 2,
    Ping = 3,
};

inline const char*
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::Get: return "get";
      case MsgType::Put: return "put";
      case MsgType::Erase: return "erase";
      case MsgType::Ping: return "ping";
    }
    return "?";
}

/** One decoded request frame. */
struct Request
{
    MsgType type = MsgType::Ping;
    std::uint64_t id = 0;
    std::uint64_t key = 0;
    std::uint64_t value = 0; ///< puts only (fixed-u64 mode)

    /**
     * Byte-payload PUT value (bytes mode, valid iff `bytes`). OWNED:
     * the server keeps decoded requests past the read buffer's
     * compaction, so the payload never aliases the connection buffer.
     */
    std::vector<std::uint8_t> valueBytes;

    bool bytes = false; ///< kFrameFlagBytes was set
    bool crc = false;   ///< frame carried (and passed) a CRC
};

/** One decoded response frame. */
struct Response
{
    MsgType type = MsgType::Ping;
    std::uint64_t id = 0;
    ErrorCode status = ErrorCode::Ok;
    std::uint8_t rflags = 0;

    std::uint64_t value = 0; ///< get payload (valid iff kRespFlagHit)

    /** Byte-payload GET result (bytes mode; empty on a miss). OWNED,
     *  like Request::valueBytes. */
    std::vector<std::uint8_t> valueBytes;

    /** Put walk cost + evicted pair (docs/store.md). */
    std::uint32_t candidates = 0;
    std::uint32_t relocations = 0;
    std::uint64_t evictedKey = 0;
    std::uint64_t evictedValue = 0;

    bool bytes = false; ///< kFrameFlagBytes was set
    bool crc = false;   ///< frame carried (and passed) a CRC

    bool hit() const { return (rflags & kRespFlagHit) != 0; }
    bool inserted() const { return (rflags & kRespFlagInserted) != 0; }
    bool evicted() const { return (rflags & kRespFlagEvicted) != 0; }
};

/** Append @p req as a complete frame (with CRC iff req.crc) to @p out. */
void encodeRequest(const Request& req, std::vector<std::uint8_t>& out);

/** Append @p resp as a complete frame (with CRC iff resp.crc). */
void encodeResponse(const Response& resp, std::vector<std::uint8_t>& out);

/**
 * Try to decode one request frame from the first @p n bytes at @p p.
 * Returns the byte count consumed (> 0, frame complete, *out filled),
 * 0 when the window holds only a partial frame, or a Status for a
 * fatal framing error (see the file comment for the exact codes).
 */
Expected<std::size_t> decodeRequest(const std::uint8_t* p, std::size_t n,
                                    Request* out);

/** decodeRequest's twin for response frames. */
Expected<std::size_t> decodeResponse(const std::uint8_t* p, std::size_t n,
                                     Response* out);

/** The Status a reader reports when its stream ends mid-frame. */
inline Status
truncatedAtEof(std::size_t have)
{
    return Status::truncated("net: connection closed mid-frame (" +
                             std::to_string(have) +
                             " byte(s) of an incomplete frame buffered)");
}

} // namespace zc::net
