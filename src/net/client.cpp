/**
 * @file
 * ZkvClient implementation: blocking connect/send/recv over the zkv
 * wire protocol (design notes in client.hpp, docs/server.md).
 */

#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace zc::net {

namespace {

Status
errnoStatus(const std::string& what)
{
    return Status::ioError("client: " + what + ": " +
                           std::strerror(errno));
}

} // namespace

ZkvClient::~ZkvClient()
{
    if (fd_ >= 0) ::close(fd_);
}

Expected<std::unique_ptr<ZkvClient>>
ZkvClient::connect(const ZkvClientConfig& cfg)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg.port);
    if (::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1) {
        return Status::invalidArgument(
            "client: host '" + cfg.host +
            "' is not a valid IPv4 address");
    }

    int fd = -1;
    for (std::uint32_t attempt = 0;; attempt++) {
        fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) return errnoStatus("socket");
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
            break;
        }
        int err = errno;
        ::close(fd);
        fd = -1;
        // The listener may still be warming up (a test's server
        // thread), or an injected net.accept fault reset us.
        if ((err == ECONNREFUSED || err == ECONNRESET ||
             err == EINTR) &&
            attempt < cfg.connectRetries) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(cfg.connectRetryMs));
            continue;
        }
        errno = err;
        return errnoStatus("connect " + cfg.host + ":" +
                           std::to_string(cfg.port));
    }

    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto cli = std::unique_ptr<ZkvClient>(new ZkvClient());
    cli->fd_ = fd;
    cli->crc_ = cfg.crc;
    return cli;
}

Status
ZkvClient::sendRaw(const Request& req)
{
    wbuf_.clear();
    encodeRequest(req, wbuf_);
    std::size_t sent = 0;
    while (sent < wbuf_.size()) {
        ssize_t n = ::send(fd_, wbuf_.data() + sent,
                           wbuf_.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return errnoStatus("send");
        }
        sent += static_cast<std::size_t>(n);
    }
    return Status::ok();
}

Expected<Response>
ZkvClient::recvResponse()
{
    for (;;) {
        if (!rbuf_.empty()) {
            Response resp;
            auto consumed_or =
                decodeResponse(rbuf_.data(), rbuf_.size(), &resp);
            if (!consumed_or) return consumed_or.status();
            if (*consumed_or > 0) {
                rbuf_.erase(rbuf_.begin(),
                            rbuf_.begin() +
                                static_cast<std::ptrdiff_t>(
                                    *consumed_or));
                return resp;
            }
        }
        std::uint8_t buf[4096];
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n == 0) return truncatedAtEof(rbuf_.size());
        if (n < 0) {
            if (errno == EINTR) continue;
            return errnoStatus("recv");
        }
        rbuf_.insert(rbuf_.end(), buf, buf + n);
    }
}

Expected<Response>
ZkvClient::roundTrip(Request& req)
{
    req.id = nextId_++;
    req.crc = crc_;
    if (Status s = sendRaw(req); !s.isOk()) return s;
    auto resp_or = recvResponse();
    if (!resp_or) return resp_or.status();
    if (resp_or->id != req.id) {
        return Status::corruption(
            "client: response id " + std::to_string(resp_or->id) +
            " does not echo request id " + std::to_string(req.id) +
            " (stream desynchronized)");
    }
    return resp_or;
}

Expected<Response>
ZkvClient::call(MsgType type, std::uint64_t key, std::uint64_t value)
{
    Request req;
    req.type = type;
    req.key = key;
    req.value = value;
    return roundTrip(req);
}

Expected<Response>
ZkvClient::putBytes(std::uint64_t key, std::span<const std::uint8_t> value)
{
    if (value.size() > kMaxValueBytes) {
        return Status::invalidArgument(
            "client: putBytes payload " + std::to_string(value.size()) +
            " exceeds the " + std::to_string(kMaxValueBytes) +
            "-byte cap");
    }
    Request req;
    req.type = MsgType::Put;
    req.key = key;
    req.bytes = true;
    req.valueBytes.assign(value.begin(), value.end());
    auto resp_or = roundTrip(req);
    if (!resp_or) return resp_or.status();
    if (resp_or->status != ErrorCode::Ok) {
        return Status(resp_or->status, "client: putBytes(" +
                                           std::to_string(key) +
                                           ") failed server-side");
    }
    return resp_or;
}

Expected<std::optional<std::vector<std::uint8_t>>>
ZkvClient::getBytes(std::uint64_t key)
{
    Request req;
    req.type = MsgType::Get;
    req.key = key;
    req.bytes = true;
    auto resp_or = roundTrip(req);
    if (!resp_or) return resp_or.status();
    if (resp_or->status != ErrorCode::Ok) {
        return Status(resp_or->status, "client: getBytes(" +
                                           std::to_string(key) +
                                           ") failed server-side");
    }
    if (!resp_or->hit()) {
        return std::optional<std::vector<std::uint8_t>>{};
    }
    return std::optional<std::vector<std::uint8_t>>{
        std::move(resp_or->valueBytes)};
}

Expected<std::optional<std::uint64_t>>
ZkvClient::get(std::uint64_t key)
{
    auto resp_or = call(MsgType::Get, key);
    if (!resp_or) return resp_or.status();
    if (resp_or->status != ErrorCode::Ok) {
        return Status(resp_or->status, "client: get(" +
                                           std::to_string(key) +
                                           ") failed server-side");
    }
    if (!resp_or->hit()) return std::optional<std::uint64_t>{};
    return std::optional<std::uint64_t>{resp_or->value};
}

Expected<Response>
ZkvClient::put(std::uint64_t key, std::uint64_t value)
{
    auto resp_or = call(MsgType::Put, key, value);
    if (!resp_or) return resp_or.status();
    if (resp_or->status != ErrorCode::Ok) {
        return Status(resp_or->status, "client: put(" +
                                           std::to_string(key) +
                                           ") failed server-side");
    }
    return resp_or;
}

Expected<bool>
ZkvClient::erase(std::uint64_t key)
{
    auto resp_or = call(MsgType::Erase, key);
    if (!resp_or) return resp_or.status();
    if (resp_or->status != ErrorCode::Ok) {
        return Status(resp_or->status, "client: erase(" +
                                           std::to_string(key) +
                                           ") failed server-side");
    }
    return resp_or->hit();
}

Status
ZkvClient::ping()
{
    auto resp_or = call(MsgType::Ping, 0);
    if (!resp_or) return resp_or.status();
    if (resp_or->status != ErrorCode::Ok) {
        return Status(resp_or->status, "client: ping failed");
    }
    return Status::ok();
}

} // namespace zc::net
