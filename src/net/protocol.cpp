/**
 * @file
 * Wire-protocol encode/decode (see protocol.hpp for the byte layout).
 * Encoding is explicit byte-at-a-time little-endian so frames are
 * identical across host endianness; the CRC is computed over the body
 * (header + payload) exactly as it appears on the wire.
 */

#include "net/protocol.hpp"

#include <cstdio>

#include "common/crc32.hpp"
#include "common/log.hpp"

namespace zc::net {

namespace {

void
putU8(std::vector<std::uint8_t>& b, std::uint8_t v)
{
    b.push_back(v);
}

void
putU16(std::vector<std::uint8_t>& b, std::uint16_t v)
{
    b.push_back(static_cast<std::uint8_t>(v));
    b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t>& b, std::uint32_t v)
{
    b.push_back(static_cast<std::uint8_t>(v));
    b.push_back(static_cast<std::uint8_t>(v >> 8));
    b.push_back(static_cast<std::uint8_t>(v >> 16));
    b.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
putU64(std::vector<std::uint8_t>& b, std::uint64_t v)
{
    putU32(b, static_cast<std::uint32_t>(v));
    putU32(b, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t
getU16(const std::uint8_t* p)
{
    return static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(p[0]) |
        (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t
getU32(const std::uint8_t* p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t
getU64(const std::uint8_t* p)
{
    return static_cast<std::uint64_t>(getU32(p)) |
           (static_cast<std::uint64_t>(getU32(p + 4)) << 32);
}

std::size_t
requestPayloadBytes(MsgType t)
{
    switch (t) {
      case MsgType::Get:
      case MsgType::Erase: return 8;
      case MsgType::Put: return 16;
      case MsgType::Ping: return 0;
    }
    return 0;
}

std::size_t
responsePayloadBytes(MsgType t, ErrorCode status)
{
    // Every response starts with [status u8][rflags u8]; error
    // responses stop there.
    if (status != ErrorCode::Ok) return 2;
    switch (t) {
      case MsgType::Get: return 2 + 8;
      case MsgType::Put: return 2 + 4 + 4 + 8 + 8;
      case MsgType::Erase:
      case MsgType::Ping: return 2;
    }
    return 2;
}

void
finishFrame(std::vector<std::uint8_t>& out, std::size_t frame_start,
            bool with_crc)
{
    if (with_crc) {
        std::uint32_t crc = Crc32::of(out.data() + frame_start + 4,
                                      out.size() - frame_start - 4);
        putU32(out, crc);
    }
    std::uint32_t body =
        static_cast<std::uint32_t>(out.size() - frame_start - 4);
    out[frame_start + 0] = static_cast<std::uint8_t>(body);
    out[frame_start + 1] = static_cast<std::uint8_t>(body >> 8);
    out[frame_start + 2] = static_cast<std::uint8_t>(body >> 16);
    out[frame_start + 3] = static_cast<std::uint8_t>(body >> 24);
}

/**
 * Shared header validation: consumes nothing; on success sets *body to
 * the frame's body length (the window is known to hold it all).
 * Returns consumed=0 ("need more bytes") via the bool.
 */
Expected<bool>
checkFrame(const std::uint8_t* p, std::size_t n, bool expect_response,
           std::size_t* body_out)
{
    if (n < 4) return false;
    std::size_t body = getU32(p);
    if (body > kMaxFrameBody) {
        return Status::invalidArgument(
            "net: oversized frame (body " + std::to_string(body) +
            " > max " + std::to_string(kMaxFrameBody) + ")");
    }
    if (body < kHeaderBytes) {
        return Status::corruption(
            "net: frame body " + std::to_string(body) +
            " shorter than the " + std::to_string(kHeaderBytes) +
            "-byte header");
    }
    if (n < 4 + body) return false;

    const std::uint8_t* h = p + 4;
    if (h[0] != kProtoMagic) {
        return Status::corruption("net: bad frame magic 0x" + [&] {
            char buf[3];
            std::snprintf(buf, sizeof(buf), "%02x", h[0]);
            return std::string(buf);
        }());
    }
    if (h[1] != kProtoVersion) {
        return Status::unsupported(
            "net: protocol version " + std::to_string(h[1]) +
            " (this build speaks version " +
            std::to_string(kProtoVersion) + ")");
    }
    if (h[2] > static_cast<std::uint8_t>(MsgType::Ping)) {
        return Status::invalidArgument("net: unknown message type " +
                                       std::to_string(h[2]));
    }
    const std::uint8_t flags = h[3];
    const bool is_resp = (flags & kFrameFlagResp) != 0;
    if (is_resp != expect_response) {
        return Status::corruption(
            is_resp ? "net: response frame on the request stream"
                    : "net: request frame on the response stream");
    }
    if (flags & kFrameFlagCrc) {
        if (body < kHeaderBytes + 4) {
            return Status::corruption(
                "net: CRC flag set on a frame too short to carry one");
        }
        std::uint32_t want = getU32(p + 4 + body - 4);
        std::uint32_t got = Crc32::of(p + 4, body - 4);
        if (want != got) {
            return Status::corruption(
                "net: frame CRC mismatch (stored " +
                std::to_string(want) + ", computed " +
                std::to_string(got) + ")");
        }
    }
    *body_out = body;
    return true;
}

} // namespace

void
encodeRequest(const Request& req, std::vector<std::uint8_t>& out)
{
    const std::size_t start = out.size();
    putU32(out, 0); // length back-patched by finishFrame
    putU8(out, kProtoMagic);
    putU8(out, kProtoVersion);
    putU8(out, static_cast<std::uint8_t>(req.type));
    putU8(out, static_cast<std::uint8_t>(
                   (req.crc ? kFrameFlagCrc : 0) |
                   (req.bytes ? kFrameFlagBytes : 0)));
    putU64(out, req.id);
    switch (req.type) {
      case MsgType::Get:
      case MsgType::Erase: putU64(out, req.key); break;
      case MsgType::Put:
        putU64(out, req.key);
        if (req.bytes) {
            zc_assert(req.valueBytes.size() <= kMaxValueBytes);
            putU16(out,
                   static_cast<std::uint16_t>(req.valueBytes.size()));
            out.insert(out.end(), req.valueBytes.begin(),
                       req.valueBytes.end());
        } else {
            putU64(out, req.value);
        }
        break;
      case MsgType::Ping: break;
    }
    finishFrame(out, start, req.crc);
}

void
encodeResponse(const Response& resp, std::vector<std::uint8_t>& out)
{
    const std::size_t start = out.size();
    putU32(out, 0);
    putU8(out, kProtoMagic);
    putU8(out, kProtoVersion);
    putU8(out, static_cast<std::uint8_t>(resp.type));
    putU8(out, static_cast<std::uint8_t>(
                   kFrameFlagResp | (resp.crc ? kFrameFlagCrc : 0) |
                   (resp.bytes ? kFrameFlagBytes : 0)));
    putU64(out, resp.id);
    putU8(out, static_cast<std::uint8_t>(resp.status));
    putU8(out, resp.rflags);
    if (resp.status == ErrorCode::Ok) {
        switch (resp.type) {
          case MsgType::Get:
            if (resp.bytes) {
                zc_assert(resp.valueBytes.size() <= kMaxValueBytes);
                putU16(out, static_cast<std::uint16_t>(
                                resp.valueBytes.size()));
                out.insert(out.end(), resp.valueBytes.begin(),
                           resp.valueBytes.end());
            } else {
                putU64(out, resp.value);
            }
            break;
          case MsgType::Put:
            putU32(out, resp.candidates);
            putU32(out, resp.relocations);
            putU64(out, resp.evictedKey);
            putU64(out, resp.evictedValue);
            break;
          case MsgType::Erase:
          case MsgType::Ping: break;
        }
    }
    finishFrame(out, start, resp.crc);
}

Expected<std::size_t>
decodeRequest(const std::uint8_t* p, std::size_t n, Request* out)
{
    std::size_t body = 0;
    auto ok = checkFrame(p, n, /*expect_response=*/false, &body);
    if (!ok) return ok.status();
    if (!*ok) return std::size_t{0};

    const std::uint8_t* h = p + 4;
    Request req;
    req.type = static_cast<MsgType>(h[2]);
    req.bytes = (h[3] & kFrameFlagBytes) != 0;
    req.crc = (h[3] & kFrameFlagCrc) != 0;
    req.id = getU64(h + 4);

    const std::uint8_t* pl = h + kHeaderBytes;
    const std::size_t crc_bytes = req.crc ? 4 : 0;
    if (req.bytes && req.type == MsgType::Put) {
        // Variable-length payload: key + u16 length + that many bytes.
        if (body < kHeaderBytes + 10 + crc_bytes) {
            return Status::corruption(
                "net: bytes put request too short for its key and "
                "length fields");
        }
        req.key = getU64(pl);
        const std::size_t len = getU16(pl + 8);
        if (len > kMaxValueBytes) {
            return Status::invalidArgument(
                "net: bytes put value length " + std::to_string(len) +
                " exceeds the " + std::to_string(kMaxValueBytes) +
                "-byte cap");
        }
        if (body != kHeaderBytes + 10 + len + crc_bytes) {
            return Status::corruption(
                "net: bytes put request body is " + std::to_string(body) +
                " bytes, want " +
                std::to_string(kHeaderBytes + 10 + len + crc_bytes) +
                " for its declared value length");
        }
        req.valueBytes.assign(pl + 10, pl + 10 + len);
        *out = std::move(req);
        return 4 + body;
    }

    const std::size_t payload = requestPayloadBytes(req.type);
    if (body != kHeaderBytes + payload + crc_bytes) {
        return Status::corruption(
            "net: " + std::string(msgTypeName(req.type)) +
            " request body is " + std::to_string(body) + " bytes, want " +
            std::to_string(kHeaderBytes + payload + crc_bytes));
    }
    switch (req.type) {
      case MsgType::Get:
      case MsgType::Erase: req.key = getU64(pl); break;
      case MsgType::Put:
        req.key = getU64(pl);
        req.value = getU64(pl + 8);
        break;
      case MsgType::Ping: break;
    }
    *out = std::move(req);
    return 4 + body;
}

Expected<std::size_t>
decodeResponse(const std::uint8_t* p, std::size_t n, Response* out)
{
    std::size_t body = 0;
    auto ok = checkFrame(p, n, /*expect_response=*/true, &body);
    if (!ok) return ok.status();
    if (!*ok) return std::size_t{0};

    const std::uint8_t* h = p + 4;
    Response resp;
    resp.type = static_cast<MsgType>(h[2]);
    resp.bytes = (h[3] & kFrameFlagBytes) != 0;
    resp.crc = (h[3] & kFrameFlagCrc) != 0;
    resp.id = getU64(h + 4);

    const std::uint8_t* pl = h + kHeaderBytes;
    const std::size_t crc_bytes = resp.crc ? 4 : 0;
    if (body < kHeaderBytes + 2 + crc_bytes) {
        return Status::corruption(
            "net: response body too short for status bytes");
    }
    const std::uint8_t status_raw = pl[0];
    if (status_raw > static_cast<std::uint8_t>(ErrorCode::Internal)) {
        return Status::corruption("net: response status byte " +
                                  std::to_string(status_raw) +
                                  " is not an ErrorCode");
    }
    resp.status = static_cast<ErrorCode>(status_raw);
    resp.rflags = pl[1];

    if (resp.bytes && resp.type == MsgType::Get &&
        resp.status == ErrorCode::Ok) {
        // Variable-length payload: u16 length + that many bytes.
        if (body < kHeaderBytes + 4 + crc_bytes) {
            return Status::corruption(
                "net: bytes get response too short for its length "
                "field");
        }
        const std::size_t len = getU16(pl + 2);
        if (len > kMaxValueBytes) {
            return Status::invalidArgument(
                "net: bytes get value length " + std::to_string(len) +
                " exceeds the " + std::to_string(kMaxValueBytes) +
                "-byte cap");
        }
        if (body != kHeaderBytes + 4 + len + crc_bytes) {
            return Status::corruption(
                "net: bytes get response body is " +
                std::to_string(body) + " bytes, want " +
                std::to_string(kHeaderBytes + 4 + len + crc_bytes) +
                " for its declared value length");
        }
        resp.valueBytes.assign(pl + 4, pl + 4 + len);
        *out = std::move(resp);
        return 4 + body;
    }

    const std::size_t payload = responsePayloadBytes(resp.type, resp.status);
    if (body != kHeaderBytes + payload + crc_bytes) {
        return Status::corruption(
            "net: " + std::string(msgTypeName(resp.type)) +
            " response body is " + std::to_string(body) +
            " bytes, want " +
            std::to_string(kHeaderBytes + payload + crc_bytes));
    }
    if (resp.status == ErrorCode::Ok) {
        switch (resp.type) {
          case MsgType::Get: resp.value = getU64(pl + 2); break;
          case MsgType::Put:
            resp.candidates = getU32(pl + 2);
            resp.relocations = getU32(pl + 6);
            resp.evictedKey = getU64(pl + 10);
            resp.evictedValue = getU64(pl + 18);
            break;
          case MsgType::Erase:
          case MsgType::Ping: break;
        }
    }
    *out = resp;
    return 4 + body;
}

} // namespace zc::net
