/**
 * @file
 * Work-stealing thread pool for coarse-grained experiment jobs.
 *
 * Each worker (a std::jthread) owns a bounded deque; submit()
 * round-robins tasks across the queues and blocks when every queue is
 * at capacity, giving natural backpressure to producers that enumerate
 * huge grids. Workers pop their own queue front-first and steal from
 * other queues back-first, so a worker stuck on a long simulation never
 * strands the jobs queued behind it.
 *
 * The pool makes no attempt at lock-free cleverness: sweep jobs are
 * whole cache-simulation runs (milliseconds to minutes), so queue
 * operations are nowhere near the critical path. Tasks must not throw —
 * fault isolation belongs to the job wrapper (see sweep.hpp), which
 * converts exceptions into JobOutcome records; a task that nevertheless
 * leaks an exception panics with a clear message rather than
 * std::terminate's silence.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stop_token>
#include <thread>
#include <vector>

#include "common/log.hpp"

namespace zc {

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * @param threads        worker count; 0 = hardware concurrency.
     * @param queue_capacity bound on queued (not yet running) tasks
     *                       across all workers; 0 = 4 per worker.
     */
    explicit ThreadPool(unsigned threads = 0, std::size_t queue_capacity = 0)
    {
        if (threads == 0) {
            threads = std::thread::hardware_concurrency();
            if (threads == 0) threads = 1;
        }
        if (queue_capacity == 0) queue_capacity = 4 * threads;
        perQueueCap_ = (queue_capacity + threads - 1) / threads;
        if (perQueueCap_ == 0) perQueueCap_ = 1;
        for (unsigned i = 0; i < threads; i++) {
            queues_.push_back(std::make_unique<WorkQueue>());
        }
        for (unsigned i = 0; i < threads; i++) {
            workers_.emplace_back(
                [this, i](std::stop_token st) { workerLoop(st, i); });
        }
    }

    /** Drains every submitted task, then stops and joins the workers. */
    ~ThreadPool()
    {
        waitIdle();
        for (auto& w : workers_) w.request_stop();
        {
            // Taking the lock orders the stop request against a worker
            // evaluating its wait predicate, so none sleeps through it.
            std::lock_guard<std::mutex> g(mx_);
        }
        workCv_.notify_all();
        // jthread joins on destruction.
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue @p task; blocks while all worker queues are full. Safe to
     * call from multiple producer threads.
     */
    void
    submit(Task task)
    {
        zc_assert(task);
        inflight_.fetch_add(1, std::memory_order_relaxed);
        std::size_t start = rr_.fetch_add(1, std::memory_order_relaxed) %
                            queues_.size();
        for (;;) {
            for (std::size_t i = 0; i < queues_.size(); i++) {
                WorkQueue& q = *queues_[(start + i) % queues_.size()];
                std::unique_lock<std::mutex> lk(q.mx);
                if (q.dq.size() >= perQueueCap_) continue;
                q.dq.push_back(std::move(task));
                lk.unlock();
                {
                    std::lock_guard<std::mutex> g(mx_);
                    queued_++;
                }
                workCv_.notify_one();
                return;
            }
            std::unique_lock<std::mutex> lk(mx_);
            spaceCv_.wait(lk, [this] {
                return queued_ < queues_.size() * perQueueCap_;
            });
        }
    }

    /** Block until every task submitted so far has finished running. */
    void
    waitIdle()
    {
        std::unique_lock<std::mutex> lk(mx_);
        idleCv_.wait(lk, [this] {
            return inflight_.load(std::memory_order_acquire) == 0;
        });
    }

  private:
    struct WorkQueue
    {
        std::mutex mx;
        std::deque<Task> dq;
    };

    bool
    tryTake(std::size_t self, Task& out)
    {
        // Own queue first (front: submission order), then steal from
        // the other queues' tails.
        for (std::size_t i = 0; i < queues_.size(); i++) {
            WorkQueue& q = *queues_[(self + i) % queues_.size()];
            std::lock_guard<std::mutex> g(q.mx);
            if (q.dq.empty()) continue;
            if (i == 0) {
                out = std::move(q.dq.front());
                q.dq.pop_front();
            } else {
                out = std::move(q.dq.back());
                q.dq.pop_back();
            }
            return true;
        }
        return false;
    }

    void
    workerLoop(std::stop_token st, std::size_t self)
    {
        for (;;) {
            Task task;
            if (tryTake(self, task)) {
                {
                    std::lock_guard<std::mutex> g(mx_);
                    queued_--;
                }
                spaceCv_.notify_one();
                try {
                    task();
                } catch (...) {
                    zc_panic("ThreadPool task leaked an exception; wrap "
                             "jobs with runGrid for fault isolation");
                }
                if (inflight_.fetch_sub(1, std::memory_order_acq_rel) ==
                    1) {
                    {
                        std::lock_guard<std::mutex> g(mx_);
                    }
                    idleCv_.notify_all();
                }
                continue;
            }
            std::unique_lock<std::mutex> lk(mx_);
            bool have_work =
                workCv_.wait(lk, st, [this] { return queued_ > 0; });
            if (!have_work) return; // stop requested with nothing queued
        }
    }

    std::vector<std::unique_ptr<WorkQueue>> queues_;
    std::size_t perQueueCap_ = 1;

    std::mutex mx_; ///< guards queued_ and the sleep/space/idle CVs
    std::condition_variable_any workCv_;
    std::condition_variable spaceCv_;
    std::condition_variable idleCv_;
    std::size_t queued_ = 0;            ///< queued, not yet running
    std::atomic<std::size_t> inflight_{0}; ///< queued + running
    std::atomic<std::size_t> rr_{0};

    std::vector<std::jthread> workers_; ///< last member: joins first
};

} // namespace zc
