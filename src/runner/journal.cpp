#include "runner/journal.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstring>

#include <unistd.h>

#include "common/crc32.hpp"
#include "common/fault_injection.hpp"
#include "common/framed_log.hpp"
#include "common/json.hpp"

namespace zc {

namespace {

constexpr int kJournalVersion = 1;

std::string
errnoMessage()
{
    return std::strerror(errno);
}

/**
 * Every field that shapes a run, in declaration order. The fingerprint
 * hashes this, so editing any parameter of any point invalidates old
 * journals instead of silently mixing incompatible results.
 */
JsonValue
paramsJson(const RunParams& p)
{
    JsonValue o = JsonValue::object();
    o.set("workload", JsonValue(p.workload));
    o.set("serial_lookup", JsonValue(p.serialLookup));
    o.set("warmup_instr", JsonValue(p.warmupInstr));
    o.set("measure_instr", JsonValue(p.measureInstr));
    o.set("seed", JsonValue(p.seed));
    o.set("epoch_instr", JsonValue(p.epochInstr));
    o.set("walk_trace_capacity", JsonValue(p.walkTraceCapacity));

    JsonValue s = JsonValue::object();
    s.set("kind", JsonValue(std::string(arrayKindName(p.l2Spec.kind))));
    s.set("blocks", JsonValue(p.l2Spec.blocks));
    s.set("ways", JsonValue(p.l2Spec.ways));
    s.set("levels", JsonValue(p.l2Spec.levels));
    s.set("candidates", JsonValue(p.l2Spec.candidates));
    s.set("hash", JsonValue(std::string(hashKindName(p.l2Spec.hashKind))));
    s.set("policy", JsonValue(std::string(policyKindName(p.l2Spec.policy))));
    s.set("walk", JsonValue(static_cast<std::uint64_t>(p.l2Spec.walk)));
    s.set("max_candidates", JsonValue(p.l2Spec.maxCandidates));
    s.set("bloom", JsonValue(p.l2Spec.bloomRepeatFilter));
    s.set("victim_blocks", JsonValue(p.l2Spec.victimBlocks));
    s.set("tag_ratio", JsonValue(p.l2Spec.tagRatio));
    s.set("spec_seed", JsonValue(p.l2Spec.seed));
    o.set("l2_spec", std::move(s));

    const SystemConfig& b = p.base;
    JsonValue c = JsonValue::object();
    c.set("num_cores", JsonValue(b.numCores));
    c.set("frequency_ghz", JsonValue(b.frequencyGhz));
    c.set("line_bytes", JsonValue(b.lineBytes));
    c.set("l1_size", JsonValue(static_cast<std::uint64_t>(b.l1SizeBytes)));
    c.set("l1_ways", JsonValue(b.l1Ways));
    c.set("l1_latency", JsonValue(b.l1LatencyCycles));
    c.set("l2_size", JsonValue(b.l2SizeBytes));
    c.set("l2_banks", JsonValue(b.l2Banks));
    c.set("l2_serial", JsonValue(b.l2SerialLookup));
    c.set("l1_to_l2", JsonValue(b.l1ToL2Cycles));
    c.set("upgrade_cycles", JsonValue(b.upgradeCycles));
    c.set("mem_controllers", JsonValue(b.memControllers));
    c.set("mem_latency", JsonValue(b.memLatencyCycles));
    c.set("code_lines", JsonValue(b.codeLines));
    c.set("code_jump_prob", JsonValue(b.codeJumpProb));
    c.set("instr_per_code_line", JsonValue(b.instrPerCodeLine));
    c.set("code_next_use", JsonValue(b.codeNextUseDistance));
    c.set("walk_throttle", JsonValue(b.walkThrottle));
    c.set("walk_token_window", JsonValue(b.walkTokenWindow));
    c.set("epoch_instr", JsonValue(b.epochInstr));
    c.set("seed", JsonValue(b.seed));
    o.set("base", std::move(c));
    return o;
}

JsonValue
entryToJson(const SweepJournal::Entry& e)
{
    JsonValue o = JsonValue::object();
    o.set("index", JsonValue(static_cast<std::uint64_t>(e.index)));
    o.set("ok", JsonValue(e.ok));
    o.set("attempts", JsonValue(e.attempts));
    o.set("timed_out", JsonValue(e.timedOut));
    o.set("error", JsonValue(e.error));
    if (e.ok) o.set("result", runResultToJson(e.result));
    return o;
}

Expected<SweepJournal::Entry>
entryFromJson(const JsonValue& v)
{
    auto bad = [](const char* what) {
        return Status::corruption(
            std::string("journal record: missing or mistyped field '") +
            what + "'");
    };
    if (!v.isObject()) {
        return Status::corruption("journal record: not a JSON object");
    }
    SweepJournal::Entry e;
    const JsonValue* idx = v.find("index");
    if (!idx || idx->kind() != JsonValue::Kind::U64) return bad("index");
    e.index = static_cast<std::size_t>(idx->asU64());
    const JsonValue* ok = v.find("ok");
    if (!ok || ok->kind() != JsonValue::Kind::Bool) return bad("ok");
    e.ok = ok->asBool();
    const JsonValue* att = v.find("attempts");
    if (!att || att->kind() != JsonValue::Kind::U64) return bad("attempts");
    e.attempts = static_cast<std::uint32_t>(att->asU64());
    const JsonValue* to = v.find("timed_out");
    if (!to || to->kind() != JsonValue::Kind::Bool) return bad("timed_out");
    e.timedOut = to->asBool();
    const JsonValue* err = v.find("error");
    if (!err || err->kind() != JsonValue::Kind::Str) return bad("error");
    e.error = err->asString();
    if (e.ok) {
        const JsonValue* res = v.find("result");
        if (!res) return bad("result");
        auto r = runResultFromJson(*res);
        if (!r) return r.status();
        e.result = std::move(*r);
    }
    return e;
}

/**
 * The line framing itself (TAG <crc32hex> <payload>\n, validation,
 * fsync'd append) lives in common/framed_log.hpp, shared with the zkv
 * persistence op log; these wrappers keep the journal's error prefix.
 */
Expected<std::string_view>
unframe(std::string_view line, const char* tag)
{
    return framed::unframeTextLine(line, tag);
}

Status
writeLine(std::FILE* f, const std::string& path, const char* tag,
          const std::string& payload)
{
    return framed::writeTextLine(f, "journal '" + path + "'", tag,
                                 payload);
}

std::string
headerPayload(const SweepSpec& spec)
{
    char fp[16];
    std::snprintf(fp, sizeof fp, "%08x", SweepJournal::fingerprint(spec));
    JsonValue h = JsonValue::object();
    h.set("version", JsonValue(kJournalVersion));
    h.set("name", JsonValue(spec.name));
    h.set("points", JsonValue(static_cast<std::uint64_t>(spec.size())));
    h.set("base_seed", JsonValue(spec.baseSeed));
    h.set("fingerprint", JsonValue(std::string(fp)));
    return h.str();
}

} // namespace

std::uint32_t
SweepJournal::fingerprint(const SweepSpec& spec)
{
    Crc32 crc;
    crc.update(spec.name.data(), spec.name.size());
    std::uint64_t meta[2] = {spec.baseSeed, spec.size()};
    crc.update(meta, sizeof meta);
    for (const SweepPoint& p : spec.points) {
        std::string s = paramsJson(p.params).str();
        crc.update(s.data(), s.size());
        JsonValue tags = JsonValue::object();
        for (const auto& [k, v] : p.tags) tags.set(k, v);
        std::string t = tags.str();
        crc.update(t.data(), t.size());
    }
    return crc.value();
}

Expected<SweepJournal>
SweepJournal::create(const std::string& path, const SweepSpec& spec)
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) {
        return Status::ioError("journal '" + path +
                               "': cannot create: " + errnoMessage());
    }
    SweepJournal j;
    j.f_ = f;
    j.path_ = path;
    if (Status s = writeLine(f, path, "ZCJH", headerPayload(spec));
        !s.isOk()) {
        return s;
    }
    return j;
}

Expected<SweepJournal::Resumed>
SweepJournal::resume(const std::string& path, const SweepSpec& spec)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
        return Status::ioError("journal '" + path +
                               "': cannot open for resume: " +
                               errnoMessage());
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        text.append(buf, n);
    }
    bool read_err = std::ferror(f) != 0;
    std::fclose(f);
    if (read_err) {
        return Status::ioError("journal '" + path +
                               "': read failed: " + errnoMessage());
    }

    Resumed out;
    std::size_t pos = 0;
    std::size_t valid_end = 0; ///< byte offset past the last clean record
    bool header_ok = false;
    Status tail_error = Status::ok();

    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            tail_error = Status::truncated(
                "journal '" + path + "': torn record at byte offset " +
                std::to_string(pos) + " (no trailing newline)");
            break;
        }
        std::string_view line(text.data() + pos, nl - pos);
        const char* tag = header_ok ? "ZCJR" : "ZCJH";
        auto payload = unframe(line, tag);
        if (!payload) {
            tail_error = Status::corruption(
                "journal '" + path + "': record at byte offset " +
                std::to_string(pos) + ": " + payload.status().message());
            break;
        }
        auto parsed = JsonValue::parse(*payload);
        if (!parsed) {
            tail_error = Status::corruption(
                "journal '" + path + "': record at byte offset " +
                std::to_string(pos) + ": unparseable JSON payload");
            break;
        }
        if (!header_ok) {
            // Header mismatches are refusals, not salvage: resuming a
            // different grid's journal would silently mix results.
            const JsonValue* ver = parsed->find("version");
            if (!ver || ver->kind() != JsonValue::Kind::U64 ||
                ver->asU64() != static_cast<std::uint64_t>(kJournalVersion)) {
                return Status::unsupported(
                    "journal '" + path +
                    "': unknown journal version (want " +
                    std::to_string(kJournalVersion) + ")");
            }
            const JsonValue* pts = parsed->find("points");
            const JsonValue* fp = parsed->find("fingerprint");
            char want_fp[16];
            std::snprintf(want_fp, sizeof want_fp, "%08x",
                          fingerprint(spec));
            if (!pts || pts->kind() != JsonValue::Kind::U64 ||
                pts->asU64() != spec.size() || !fp ||
                fp->kind() != JsonValue::Kind::Str ||
                fp->asString() != want_fp) {
                const JsonValue* nm = parsed->find("name");
                std::string whose =
                    nm && nm->kind() == JsonValue::Kind::Str
                        ? "'" + nm->asString() + "'"
                        : "<unnamed>";
                return Status::invalidArgument(
                    "journal '" + path + "': belongs to sweep " + whose +
                    " with a different grid (fingerprint mismatch); "
                    "refusing to resume — delete it or pass the journal "
                    "for this exact sweep");
            }
            header_ok = true;
        } else {
            auto entry = entryFromJson(*parsed);
            if (!entry) {
                tail_error = Status::corruption(
                    "journal '" + path + "': record at byte offset " +
                    std::to_string(pos) + ": " + entry.status().message());
                break;
            }
            if (entry->index >= spec.size()) {
                tail_error = Status::corruption(
                    "journal '" + path + "': record at byte offset " +
                    std::to_string(pos) + ": point index " +
                    std::to_string(entry->index) + " out of range");
                break;
            }
            out.entries.push_back(std::move(*entry));
        }
        pos = nl + 1;
        valid_end = pos;
    }

    if (!header_ok) {
        if (!tail_error.isOk()) return tail_error;
        return Status::corruption("journal '" + path +
                                  "': empty file (missing header)");
    }
    if (!tail_error.isOk()) {
        // Salvage: keep the clean prefix, drop the damaged tail, warn.
        std::fprintf(stderr,
                     "warning: %s; salvaged %zu completed point(s), "
                     "truncating to %zu bytes and re-running the rest\n",
                     tail_error.str().c_str(), out.entries.size(),
                     valid_end);
        if (::truncate(path.c_str(),
                       static_cast<off_t>(valid_end)) != 0) {
            return Status::ioError("journal '" + path +
                                   "': cannot truncate damaged tail: " +
                                   errnoMessage());
        }
    }

    std::FILE* af = std::fopen(path.c_str(), "ab");
    if (!af) {
        return Status::ioError("journal '" + path +
                               "': cannot reopen for append: " +
                               errnoMessage());
    }
    out.journal.f_ = af;
    out.journal.path_ = path;
    return out;
}

Status
SweepJournal::append(const Entry& e)
{
    if (!f_) {
        return Status::internal("journal append on a closed journal");
    }
    if (ZC_INJECT_FAULT("journal.write")) {
        return Status::ioError(
            "fault injection: induced journal write failure at site "
            "'journal.write'");
    }
    return writeLine(f_, path_, "ZCJR", entryToJson(e).str());
}

} // namespace zc
