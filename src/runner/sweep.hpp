/**
 * @file
 * Parallel sweep engine: declarative experiment grids executed on a
 * thread pool with deterministic results and per-job fault isolation.
 *
 * Three layers (docs/runner.md):
 *
 *  - runGrid<R>(count, fn, opts): the generic engine. Runs fn(0..count)
 *    on a ThreadPool, captures exceptions into GridOutcome records with
 *    one bounded retry, reports live progress on stderr, and returns
 *    the outcomes **in grid order** — never in completion order.
 *  - SweepSpec: a grid of RunParams points with JSON tags identifying
 *    each point in bench reports, plus an optional base seed from which
 *    every point derives a deterministic seed (a pure function of the
 *    grid index — independent of thread count and scheduling).
 *  - SweepRunner: executes a SweepSpec's points through runExperiment.
 *
 * Determinism contract: given the same spec, the outcome vector (and
 * every RunResult in it) is byte-identical for any --jobs=N, because
 * (a) each point's parameters — seed included — are fixed before any
 * job starts, (b) jobs share no mutable state (see the audit in
 * docs/runner.md), and (c) results are indexed by grid position.
 */

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/status.hpp"
#include "common/watchdog.hpp"
#include "runner/thread_pool.hpp"
#include "sim/experiment.hpp"

namespace zc {

/** Execution knobs shared by runGrid and SweepRunner. */
struct SweepOptions
{
    /** Worker threads; 0 = hardware concurrency (the --jobs flag). */
    unsigned jobs = 0;

    /** Attempts per job: 2 = one bounded retry after a failure. */
    std::uint32_t maxAttempts = 2;

    /** Live progress line on stderr (completed/total, ETA, in flight). */
    bool progress = true;

    /** Progress label; SweepRunner defaults it to the spec name. */
    std::string label = "sweep";

    /**
     * Per-attempt wall-clock budget in milliseconds (--job-timeout).
     * Armed as a cooperative JobWatchdog around each attempt; a job
     * that blows it is recorded with timedOut set and never retried
     * (a hung job would just hang again). 0 = no deadline.
     */
    std::uint64_t jobTimeoutMs = 0;

    /**
     * Exponential backoff before retries: attempt n sleeps
     * retryBackoffMs * 2^(n-2) ms first. 0 (default) retries
     * immediately — transient failures inside a single process rarely
     * need a pause, but fault-injection and flaky-I/O sweeps do.
     */
    std::uint64_t retryBackoffMs = 0;

    /**
     * Crash-resume journal (runner/journal.hpp), SweepRunner only.
     * journalPath starts a fresh journal (truncating any existing
     * file); resumePath loads completed points from an existing
     * journal first — or starts fresh when the file does not exist —
     * then appends. Setting both is allowed; resumePath wins.
     */
    std::string journalPath;
    std::string resumePath;
};

/** One grid point's execution record; `result` is valid iff `ok`. */
template <typename Result>
struct GridOutcome
{
    std::size_t index = 0;
    bool ok = false;
    std::uint32_t attempts = 0;
    bool timedOut = false; ///< cancelled by the per-job watchdog
    std::string error;     ///< per-attempt messages, empty when clean
    Result result{};
};

namespace detail {

/**
 * Thread-safe stderr progress line. On a TTY it rewrites one line in
 * place; in logs (CI) it prints a full line roughly every tenth of the
 * grid. Progress is cosmetic: it never touches stdout, so text reports
 * stay byte-identical whether it is on or off.
 */
class ProgressMeter
{
  public:
    ProgressMeter(std::string label, std::size_t total, bool enabled);
    void jobStarted();
    void jobFinished(bool ok);
    void finish();

  private:
    void emit(bool final_line);
    std::string eta() const;

    std::string label_;
    std::size_t total_;
    bool enabled_;
    bool tty_;
    std::chrono::steady_clock::time_point start_;
    std::mutex mx_;
    std::size_t started_ = 0;
    std::size_t done_ = 0;
    std::size_t failed_ = 0;
    std::size_t nextMark_ = 0; ///< non-TTY: next `done_` worth a line
};

unsigned defaultJobs();

/** Append one attempt's failure message to an outcome's error log. */
void appendAttemptError(std::string& log, std::uint32_t attempt,
                        const char* what);

/**
 * Failure categories that no amount of retrying fixes: the same
 * impossible configuration or unknown name fails identically every
 * attempt, so the engine records them after one try.
 */
inline bool
isPermanentError(ErrorCode c)
{
    return c == ErrorCode::InvalidArgument || c == ErrorCode::NotFound ||
           c == ErrorCode::Unsupported;
}

} // namespace detail

/**
 * Run fn(index) for every index in [0, count) on @p opts.jobs workers.
 * Returns outcomes in grid order. A job that throws is retried (with
 * exponential backoff when opts.retryBackoffMs is set) up to
 * opts.maxAttempts times — except permanent errors (invalid-argument,
 * not-found, unsupported), which fail once, and watchdog timeouts,
 * which mark the outcome timedOut and are never retried. A job that
 * keeps failing yields ok == false with every attempt's message, and
 * never aborts the rest of the sweep.
 *
 * @p onOutcome, when set, is invoked once per finished job — success
 * or failure — serialized under an internal mutex, in completion
 * order. The sweep journal hooks in here; anything slow in the hook
 * throttles the whole pool.
 */
template <typename Result, typename Fn>
std::vector<GridOutcome<Result>>
runGrid(std::size_t count, Fn fn, const SweepOptions& opts = {},
        const std::function<void(const GridOutcome<Result>&)>& onOutcome = {})
{
    std::vector<GridOutcome<Result>> out(count);
    for (std::size_t i = 0; i < count; i++) out[i].index = i;
    if (!opts.journalPath.empty() || !opts.resumePath.empty()) {
        // Journaling lives in SweepRunner (which knows how to persist a
        // RunResult); a raw grid has no serializer for its Result type.
        std::fprintf(stderr,
                     "warning: %s: this driver does not journal its "
                     "grid; ignoring --journal/--resume\n",
                     opts.label.c_str());
    }
    if (count == 0) return out;

    unsigned jobs = opts.jobs ? opts.jobs : detail::defaultJobs();
    if (jobs > count) jobs = static_cast<unsigned>(count);
    detail::ProgressMeter meter(opts.label, count, opts.progress);
    std::mutex hook_mx;
    {
        ThreadPool pool(jobs, 2 * static_cast<std::size_t>(jobs));
        for (std::size_t i = 0; i < count; i++) {
            pool.submit([&, i] {
                meter.jobStarted();
                GridOutcome<Result>& o = out[i];
                for (std::uint32_t attempt = 1;
                     attempt <= opts.maxAttempts && !o.ok; attempt++) {
                    o.attempts = attempt;
                    if (attempt > 1 && opts.retryBackoffMs > 0) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(opts.retryBackoffMs
                                                      << (attempt - 2)));
                    }
                    try {
                        ScopedWatchdog wd(opts.jobTimeoutMs);
                        o.result = fn(i);
                        o.ok = true;
                    } catch (const StatusError& e) {
                        detail::appendAttemptError(o.error, attempt,
                                                   e.what());
                        if (e.code() == ErrorCode::Timeout) {
                            o.timedOut = true;
                            break;
                        }
                        if (detail::isPermanentError(e.code())) break;
                    } catch (const std::exception& e) {
                        detail::appendAttemptError(o.error, attempt,
                                                   e.what());
                    } catch (...) {
                        detail::appendAttemptError(o.error, attempt,
                                                   "non-standard exception");
                    }
                }
                meter.jobFinished(o.ok);
                if (onOutcome) {
                    std::lock_guard<std::mutex> g(hook_mx);
                    onOutcome(o);
                }
            });
        }
        pool.waitIdle();
    }
    meter.finish();
    return out;
}

/** Failed-job count of any outcome vector. */
template <typename Result>
std::size_t
gridFailures(const std::vector<GridOutcome<Result>>& outcomes)
{
    std::size_t n = 0;
    for (const auto& o : outcomes) n += o.ok ? 0 : 1;
    return n;
}

/** One experiment in a sweep: full parameters plus identifying tags. */
struct SweepPoint
{
    RunParams params;
    JsonValue::Object tags; ///< report keys (workload, design, ...)
};

/** A declarative grid of runExperiment calls. */
struct SweepSpec
{
    std::string name; ///< report/progress label

    /**
     * When nonzero, every point's RunParams::seed is overridden with
     * pointSeed(baseSeed, index) before execution. Zero (the default)
     * keeps the seeds the points were declared with, so ported benches
     * reproduce their historical outputs exactly.
     */
    std::uint64_t baseSeed = 0;

    std::vector<SweepPoint> points;

    SweepPoint&
    add(RunParams params, JsonValue::Object tags = {})
    {
        points.push_back(SweepPoint{std::move(params), std::move(tags)});
        return points.back();
    }

    std::size_t size() const { return points.size(); }

    /**
     * The per-job seed derivation: splitmix64 over (base, index), a
     * pure function of the grid position. Stable across releases —
     * recorded results depend on it.
     */
    static std::uint64_t pointSeed(std::uint64_t base, std::size_t index);
};

using RunOutcome = GridOutcome<RunResult>;

/**
 * Executes a SweepSpec. Primes shared lazy singletons (the workload
 * registry) before spawning workers, so jobs are data-race-free by
 * construction, then fans runExperiment out through runGrid.
 *
 * With opts.journalPath or opts.resumePath set, every completed point
 * streams into a crash-resume journal (runner/journal.hpp) as it
 * finishes, and a resume run executes only the points the journal is
 * missing — producing byte-identical outcomes (and hence stdout /
 * --json reports) to an uninterrupted run, because journaled outcomes
 * round-trip exactly and outcomes are ordered by grid index either
 * way.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {}) : opts_(std::move(opts)) {}

    /**
     * Run every point; outcomes are returned in grid order. Throws
     * StatusError when journaling is requested but the journal cannot
     * be created, is corrupt beyond its header, or belongs to a
     * different grid (fingerprint mismatch) — a structured refusal
     * benches turn into a usage-error exit, never silent mixing.
     */
    std::vector<RunOutcome> run(const SweepSpec& spec) const;

    /**
     * Print one stderr line per failed outcome (index, tags, attempts,
     * error) and return the failure count — benches turn this into a
     * nonzero exit code without losing the completed points.
     */
    static std::size_t reportFailures(const SweepSpec& spec,
                                      const std::vector<RunOutcome>& outs);

  private:
    SweepOptions opts_;
};

} // namespace zc
