/**
 * @file
 * Crash-resumable sweep journal (docs/robustness.md).
 *
 * An append-only, CRC-framed, fsync'd record of completed grid points.
 * The runner appends one line per finished point as it completes, so a
 * sweep killed at any instant — SIGKILL included — loses at most the
 * points still in flight. Re-running with --resume=<journal> loads the
 * completed outcomes, verifies that the journal belongs to *this* grid
 * (a fingerprint over every point's full parameters), executes only the
 * missing points, and produces byte-identical stdout and --json output
 * to an uninterrupted run.
 *
 * On-disk format, one line per record, text so it greps and diffs:
 *
 *   ZCJH <crc32hex> <header-json>\n     (exactly once, first line)
 *   ZCJR <crc32hex> <outcome-json>\n    (zero or more)
 *
 * The CRC covers the JSON payload bytes exactly. A torn or corrupt
 * line invalidates itself and everything after it: resume salvages the
 * longest valid prefix, warns on stderr, truncates the tail, and
 * re-runs the lost points. A header that does not match the current
 * spec (different grid, edited parameters) is a structured refusal —
 * resuming someone else's journal would silently mix results.
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "runner/sweep.hpp"

namespace zc {

class SweepJournal
{
  public:
    /** One completed grid point, as journaled. `result` valid iff ok. */
    struct Entry
    {
        std::size_t index = 0;
        bool ok = false;
        std::uint32_t attempts = 0;
        bool timedOut = false;
        std::string error;
        RunResult result;
    };

    /** A resumed journal: the reopened file plus the salvaged entries. */
    struct Resumed;

    SweepJournal() = default;
    ~SweepJournal() { close(); }

    SweepJournal(SweepJournal&& other) noexcept
        : f_(other.f_), path_(std::move(other.path_))
    {
        other.f_ = nullptr;
    }

    SweepJournal&
    operator=(SweepJournal&& other) noexcept
    {
        if (this != &other) {
            close();
            f_ = other.f_;
            path_ = std::move(other.path_);
            other.f_ = nullptr;
        }
        return *this;
    }

    SweepJournal(const SweepJournal&) = delete;
    SweepJournal& operator=(const SweepJournal&) = delete;

    /** Start a fresh journal at @p path (truncates), writing the header. */
    static Expected<SweepJournal> create(const std::string& path,
                                         const SweepSpec& spec);

    /**
     * Reopen @p path for resume: verify the header belongs to @p spec,
     * load every valid entry (salvaging the longest clean prefix when a
     * record is torn or corrupt, with a stderr warning naming the byte
     * offset), truncate the invalid tail, and leave the file open for
     * appends.
     */
    static Expected<Resumed> resume(const std::string& path,
                                    const SweepSpec& spec);

    /**
     * Append one completed point: CRC-framed line, flushed and fsync'd
     * before returning, so a crash after append() never loses it.
     */
    Status append(const Entry& e);

    bool isOpen() const { return f_ != nullptr; }
    const std::string& path() const { return path_; }

    /**
     * Grid identity: CRC-32 over the spec name, base seed, and every
     * point's complete parameters and tags. Any edit to the grid — one
     * field of one point — changes it, which is what makes resuming
     * against the wrong journal detectable.
     */
    static std::uint32_t fingerprint(const SweepSpec& spec);

  private:
    void
    close()
    {
        if (f_) {
            std::fclose(f_);
            f_ = nullptr;
        }
    }

    std::FILE* f_ = nullptr;
    std::string path_;
};

struct SweepJournal::Resumed
{
    SweepJournal journal;
    std::vector<Entry> entries;
};

} // namespace zc
