/**
 * @file
 * Shared workload-suite selection for the bench sweep specs.
 *
 * The performance (Fig. 4/5) and bandwidth (Section VI-D) harnesses
 * each kept a private reduced suite and the Fig. 5 top-10-by-MPKI
 * selection inline; this header is the single home for both, so every
 * sweep spec draws from the same lists and ranking rule.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "trace/workloads.hpp"

namespace zc::suite {

/**
 * Reduced suite for quick Fig. 4 / Fig. 5 runs: a spread of behaviours
 * (hit-heavy, miss-intensive, streaming, random mixes) including the
 * five workloads the paper plots in Fig. 5.
 */
inline const std::vector<std::string>&
quickPerformance()
{
    static const std::vector<std::string> kSuite{
        "blackscholes", "canneal",   "fluidanimate", "streamcluster",
        "wupwise",      "apsi",      "ammp",         "art",
        "gamess",       "mcf",       "cactusADM",    "lbm",
        "libquantum",   "omnetpp",   "soplex",       "gcc",
        "sphinx3",      "milc",      "xalancbmk",    "cpu2K6rand0",
        "cpu2K6rand1",  "cpu2K6rand2",
    };
    return kSuite;
}

/** Reduced suite for the Section VI-D bandwidth analysis. */
inline const std::vector<std::string>&
quickBandwidth()
{
    static const std::vector<std::string> kSuite{
        "blackscholes", "gamess",  "ammp",       "gcc",
        "soplex",       "milc",    "omnetpp",    "canneal",
        "cactusADM",    "lbm",     "libquantum", "mcf",
        "wupwise",      "sphinx3", "cpu2K6rand0",
    };
    return kSuite;
}

/**
 * Resolve a --workloads flag value: "all" yields the full 72-workload
 * registry (in paper order); anything else yields @p quick.
 */
inline std::vector<std::string>
resolve(const std::string& flag_value, const std::vector<std::string>& quick)
{
    if (flag_value != "all") return quick;
    std::vector<std::string> names;
    for (const auto& w : WorkloadRegistry::all()) names.push_back(w.name);
    return names;
}

/**
 * The Fig. 5 "top-10 L2-miss-intensive" rule, generalized: the @p n
 * suite members with the largest @p metric, in descending order (ties
 * broken by name, descending — the historical ordering, kept so
 * regenerated reports diff clean against recorded ones).
 */
inline std::vector<std::string>
topByMetric(const std::vector<std::string>& suite,
            const std::function<double(const std::string&)>& metric,
            std::size_t n)
{
    std::vector<std::pair<double, std::string>> ranked;
    ranked.reserve(suite.size());
    for (const auto& wl : suite) ranked.emplace_back(metric(wl), wl);
    std::sort(ranked.rbegin(), ranked.rend());
    std::vector<std::string> top;
    for (std::size_t i = 0; i < std::min(n, ranked.size()); i++) {
        top.push_back(ranked[i].second);
    }
    return top;
}

} // namespace zc::suite
