#include "runner/sweep.hpp"

#include <cinttypes>
#include <cstdio>
#include <thread>

#include <unistd.h>

#include "runner/journal.hpp"
#include "trace/workloads.hpp"

namespace zc {

namespace detail {

unsigned
defaultJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

void
appendAttemptError(std::string& log, std::uint32_t attempt,
                   const char* what)
{
    if (!log.empty()) log += "; ";
    log += "attempt " + std::to_string(attempt) + ": " + what;
}

ProgressMeter::ProgressMeter(std::string label, std::size_t total,
                             bool enabled)
    : label_(std::move(label)), total_(total), enabled_(enabled),
      tty_(isatty(fileno(stderr)) != 0),
      start_(std::chrono::steady_clock::now())
{
    // Non-TTY logs get ~10 lines per sweep instead of a rewritten one.
    nextMark_ = total_ >= 10 ? total_ / 10 : 1;
}

std::string
ProgressMeter::eta() const
{
    if (done_ == 0) return "--";
    using namespace std::chrono;
    double elapsed =
        duration_cast<duration<double>>(steady_clock::now() - start_)
            .count();
    double left = elapsed / static_cast<double>(done_) *
                  static_cast<double>(total_ - done_);
    char buf[32];
    if (left >= 60.0) {
        std::snprintf(buf, sizeof buf, "%dm%02ds",
                      static_cast<int>(left) / 60,
                      static_cast<int>(left) % 60);
    } else {
        std::snprintf(buf, sizeof buf, "%ds", static_cast<int>(left));
    }
    return buf;
}

void
ProgressMeter::emit(bool final_line)
{
    // Caller holds mx_. One formatted buffer, one write: concurrent
    // meters (nested grids) cannot shear each other's lines.
    char buf[256];
    std::size_t in_flight = started_ - done_;
    if (final_line) {
        using namespace std::chrono;
        double elapsed =
            duration_cast<duration<double>>(steady_clock::now() - start_)
                .count();
        std::snprintf(buf, sizeof buf,
                      "%s%s: %zu/%zu done (%zu failed) in %.1fs\n",
                      tty_ ? "\r" : "", label_.c_str(), done_, total_,
                      failed_, elapsed);
    } else if (tty_) {
        std::snprintf(buf, sizeof buf,
                      "\r%s: %zu/%zu done (%zu failed), %zu in flight, "
                      "ETA %s   ",
                      label_.c_str(), done_, total_, failed_, in_flight,
                      eta().c_str());
    } else {
        std::snprintf(buf, sizeof buf,
                      "%s: %zu/%zu done (%zu failed), %zu in flight, "
                      "ETA %s\n",
                      label_.c_str(), done_, total_, failed_, in_flight,
                      eta().c_str());
    }
    std::fputs(buf, stderr);
    std::fflush(stderr);
}

void
ProgressMeter::jobStarted()
{
    if (!enabled_) return;
    std::lock_guard<std::mutex> g(mx_);
    started_++;
    if (tty_) emit(false);
}

void
ProgressMeter::jobFinished(bool ok)
{
    if (!enabled_) return;
    std::lock_guard<std::mutex> g(mx_);
    done_++;
    if (!ok) failed_++;
    if (tty_) {
        emit(false);
    } else if (done_ >= nextMark_ && done_ < total_) {
        emit(false);
        nextMark_ = done_ + (total_ >= 10 ? total_ / 10 : 1);
    }
}

void
ProgressMeter::finish()
{
    if (!enabled_) return;
    std::lock_guard<std::mutex> g(mx_);
    emit(true);
}

} // namespace detail

std::uint64_t
SweepSpec::pointSeed(std::uint64_t base, std::size_t index)
{
    // splitmix64 (Steele et al.); the golden-ratio stride separates
    // consecutive indices before mixing.
    std::uint64_t x =
        base + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::vector<RunOutcome>
SweepRunner::run(const SweepSpec& spec) const
{
    // Touch lazily-initialized shared singletons once, on this thread,
    // before any worker exists (see docs/runner.md, shared-state audit).
    WorkloadRegistry::prime();

    SweepOptions opts = opts_;
    if (!spec.name.empty()) opts.label = spec.name;

    auto point = [&spec](std::size_t i) {
        RunParams p = spec.points[i].params;
        if (spec.baseSeed != 0) {
            p.seed = SweepSpec::pointSeed(spec.baseSeed, i);
        }
        return runExperiment(p);
    };

    if (opts.journalPath.empty() && opts.resumePath.empty()) {
        return runGrid<RunResult>(spec.points.size(), point, opts);
    }

    // Journaled path. Resume loads the completed points first; both
    // paths then stream every newly finished point to disk.
    const std::string path =
        !opts.resumePath.empty() ? opts.resumePath : opts.journalPath;
    bool resuming =
        !opts.resumePath.empty() && ::access(path.c_str(), F_OK) == 0;
    // The journaling happens here, through runGrid's outcome hook —
    // strip the paths so the generic engine does not warn about them.
    opts.journalPath.clear();
    opts.resumePath.clear();

    std::vector<RunOutcome> out(spec.size());
    for (std::size_t i = 0; i < spec.size(); i++) out[i].index = i;
    std::vector<char> done(spec.size(), 0);

    SweepJournal journal;
    if (resuming) {
        auto resumed = SweepJournal::resume(path, spec);
        if (!resumed.hasValue()) throw StatusError(resumed.status());
        journal = std::move(resumed->journal);
        for (SweepJournal::Entry& e : resumed->entries) {
            RunOutcome& o = out[e.index];
            o.ok = e.ok;
            o.attempts = e.attempts;
            o.timedOut = e.timedOut;
            o.error = std::move(e.error);
            o.result = std::move(e.result);
            done[e.index] = 1;
        }
    } else {
        auto fresh = SweepJournal::create(path, spec);
        if (!fresh.hasValue()) throw StatusError(fresh.status());
        journal = std::move(*fresh);
    }

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < spec.size(); i++) {
        if (!done[i]) pending.push_back(i);
    }

    // A journal append failure (disk full, injected fault) must not
    // kill the sweep — the run's results are still good, only the
    // ability to resume is lost. Warn once and keep going.
    bool append_failed = false;
    auto sub = runGrid<RunResult>(
        pending.size(), [&](std::size_t j) { return point(pending[j]); },
        opts, [&](const GridOutcome<RunResult>& so) {
            SweepJournal::Entry e;
            e.index = pending[so.index];
            e.ok = so.ok;
            e.attempts = so.attempts;
            e.timedOut = so.timedOut;
            e.error = so.error;
            if (so.ok) e.result = so.result;
            if (Status s = journal.append(e);
                !s.isOk() && !append_failed) {
                append_failed = true;
                std::fprintf(stderr,
                             "warning: sweep journaling lost (resume "
                             "will re-run later points): %s\n",
                             s.str().c_str());
            }
        });

    for (auto& so : sub) {
        RunOutcome& o = out[pending[so.index]];
        o.ok = so.ok;
        o.attempts = so.attempts;
        o.timedOut = so.timedOut;
        o.error = std::move(so.error);
        o.result = std::move(so.result);
    }
    return out;
}

std::size_t
SweepRunner::reportFailures(const SweepSpec& spec,
                            const std::vector<RunOutcome>& outs)
{
    std::size_t failures = 0;
    for (const auto& o : outs) {
        if (o.ok) continue;
        failures++;
        std::string tags;
        if (o.index < spec.points.size()) {
            for (const auto& [k, v] : spec.points[o.index].tags) {
                if (!tags.empty()) tags += " ";
                tags += k + "=" + v.str();
            }
        }
        std::fprintf(stderr,
                     "sweep '%s': point %zu {%s} %s after %" PRIu32
                     " attempt(s): %s\n",
                     spec.name.c_str(), o.index, tags.c_str(),
                     o.timedOut ? "timed out" : "failed", o.attempts,
                     o.error.c_str());
    }
    return failures;
}

} // namespace zc
